// Recovery-at-scale guard: the headline claim of the scale-out resilience
// work is that time-to-recover from a single intra-domain link failure is
// governed by the failing domain, not the world size — TTR at 4096 ranks
// stays within a small constant factor of TTR at 256 ranks. This test
// measures it and writes BENCH_recover.json so CI (and readers) get the
// numbers in machine-readable form.
package adapcc

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"adapcc/internal/chaos"
	"adapcc/internal/scale"
	"adapcc/internal/topology"
)

const (
	scaleTopo256 = "rail:groups=8,servers=4,rails=8"
	// ttrScaleFactor bounds TTR growth from 256 to 4096 ranks (16x world):
	// recovery is domain-local, so the only admissible growth is the mild
	// deepening of the per-domain timeline, not anything world-sized.
	ttrScaleFactor = 4.0
)

// recoverRow is one measurement in BENCH_recover.json.
type recoverRow struct {
	Topo        string  `json:"topo"`
	Ranks       int     `json:"ranks"`
	Workers     int     `json:"workers"`
	WallMs      float64 `json:"wall_ms"`
	VirtualMs   float64 `json:"virtual_ms"`
	TTRMaxMs    float64 `json:"ttr_max_ms"`
	DomainLocal uint64  `json:"recoveries_domain_local"`
	Boundary    uint64  `json:"recoveries_boundary"`
	Deadlines   uint64  `json:"deadlines"`
	Retransmits uint64  `json:"retransmits"`
	Reroutes    uint64  `json:"reroutes"`
	Checksum    string  `json:"checksum"`
}

// runRecoverySweep kills rank 0's ring-successor NVLink edge permanently at
// t=0 and runs the guarded sweep to completion. The fault is asserted to be
// domain-local before the run and via the recovery fold after it.
func runRecoverySweep(tb testing.TB, topoName string, workers int) (*scale.Result, recoverRow) {
	tb.Helper()
	spec, err := topology.ParseTopo(topoName)
	if err != nil {
		tb.Fatal(err)
	}
	topo, err := spec.Build()
	if err != nil {
		tb.Fatal(err)
	}
	g := topo.Graph
	// Ranks 0 and 1 share server 0 (rank order is server-major), and rank 1
	// is rank 0's ring successor — the same first hop the sweep routes.
	g0, _ := g.GPUByRank(0)
	g1, _ := g.GPUByRank(1)
	path := g.ShortestPath(g0, g1)
	if len(path) < 2 {
		tb.Fatalf("no route rank 0 -> 1 on %s", topoName)
	}
	ge, ok := g.EdgeBetween(path[0], path[1])
	if !ok {
		tb.Fatal("no first-hop edge")
	}
	part, err := topology.NewPartition(g, topo.NodeDomain)
	if err != nil {
		tb.Fatal(err)
	}
	if part.EdgeCross[ge] >= 0 || part.EdgeDomain[ge] != part.NodeDomain[g0] {
		tb.Fatalf("edge %d is not domain-local to rank 0", ge)
	}
	cs := chaos.Spec{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.LinkDown, Start: 0, Edge: ge, Rank: -1}, // permanent
	}}
	res, err := scale.Run(scale.Options{Topo: topo, Workers: workers, Seed: 1, Chaos: &cs})
	if err != nil {
		tb.Fatalf("%s: faulted sweep failed: %v", topoName, err)
	}
	rec := res.Recovery
	if rec == nil || rec.DomainLocal == 0 {
		tb.Fatalf("%s: no domain-local recovery recorded: %+v", topoName, rec)
	}
	if rec.Boundary != 0 || res.RecoveryEvents.Boundary != 0 {
		tb.Fatalf("%s: intra-domain link kill escalated to boundary recovery: fold %+v fabric %+v",
			topoName, rec, res.RecoveryEvents)
	}
	if rec.TimeToRecoverMax <= 0 {
		tb.Fatalf("%s: recovered with non-positive TTR: %+v", topoName, rec)
	}
	return res, recoverRow{
		Topo:        res.Name,
		Ranks:       res.Ranks,
		Workers:     res.Workers,
		WallMs:      float64(res.Wall) / float64(time.Millisecond),
		VirtualMs:   float64(res.Elapsed) / float64(time.Millisecond),
		TTRMaxMs:    float64(rec.TimeToRecoverMax) / float64(time.Millisecond),
		DomainLocal: rec.DomainLocal,
		Boundary:    rec.Boundary,
		Deadlines:   rec.Deadlines,
		Retransmits: rec.Retransmits,
		Reroutes:    rec.Reroutes,
		Checksum:    jsonHex(res.Checksum),
	}
}

// TestRecoveryScaleGuard measures time-to-recover for the identical
// single-link failure at 256 and 1024 ranks (and 4096 with
// ADAPCC_SCALE_BENCH=1), asserts sublinear TTR growth, and writes
// BENCH_recover.json. The data checksum of every faulted run is already
// validated against the closed-form sums inside scale.Run, so passing this
// guard also certifies survivor-sum exactness at each world size.
func TestRecoveryScaleGuard(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	workers := procs
	if workers < 2 {
		workers = 2
	}

	r256, row256 := runRecoverySweep(t, scaleTopo256, workers)
	r1024, row1024 := runRecoverySweep(t, scaleTopo1024, workers)
	rows := []recoverRow{row256, row1024}

	ttr256 := r256.Recovery.TimeToRecoverMax
	ttr1024 := r1024.Recovery.TimeToRecoverMax
	t.Logf("TTR: 256 ranks %v, 1024 ranks %v", ttr256, ttr1024)
	if float64(ttr1024) > ttrScaleFactor*float64(ttr256) {
		t.Errorf("TTR grew superlinearly with world size: 256 ranks %v -> 1024 ranks %v (> %.1fx)",
			ttr256, ttr1024, ttrScaleFactor)
	}

	if os.Getenv("ADAPCC_SCALE_BENCH") == "1" {
		r4096, row4096 := runRecoverySweep(t, scaleTopo4096, workers)
		rows = append(rows, row4096)
		ttr4096 := r4096.Recovery.TimeToRecoverMax
		t.Logf("TTR: 4096 ranks %v (%.2fx of 256)", ttr4096, float64(ttr4096)/float64(ttr256))
		if float64(ttr4096) > ttrScaleFactor*float64(ttr256) {
			t.Errorf("TTR at 4096 ranks (%v) exceeds %.1fx of 256 ranks (%v): recovery is not domain-local",
				ttr4096, ttrScaleFactor, ttr256)
		}
	}

	out, err := json.MarshalIndent(struct {
		GOMAXPROCS int          `json:"gomaxprocs"`
		Rows       []recoverRow `json:"rows"`
	}{procs, rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_recover.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Package adapcc is a from-scratch Go reproduction of "AdapCC: Making
// Collective Communication in Distributed Machine Learning Adaptive"
// (Zhao, Zhang, Wu — ICDCS 2024): an adaptive collective-communication
// library that profiles link performance at run time, synthesises
// per-collective communication strategies (routing, chunk sizes,
// aggregation control, M parallel sub-collectives), reacts to stragglers
// with ski-rental-scheduled partial communication over relay GPUs, and
// reconstructs its graphs mid-training without restarts.
//
// The GPU/RDMA testbed of the paper is replaced by a deterministic
// discrete-event simulation (see DESIGN.md for the substitution map); all
// collectives move real float32 data so correctness is testable end to
// end. The public entry points live in internal/core (the AdapCC API),
// internal/backend (the shared harness) and internal/experiments (one
// runner per paper figure). See README.md for a tour and EXPERIMENTS.md
// for paper-vs-measured results.
package adapcc

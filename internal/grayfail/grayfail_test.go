package grayfail

import (
	"testing"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// grayEnv is a one-hop network fabric with the congestion plane enabled:
// NIC a → switch x → switch y, the x→y edge being the watched hot port.
func grayEnv(t *testing.T) (*sim.Engine, *fabric.Fabric, *fabric.Congest, topology.EdgeID) {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.Node{Kind: topology.KindNIC, Server: 0, Index: 0, Rank: -1})
	x := g.AddNode(topology.Node{Kind: topology.KindSwitch, Server: -1, Rank: -1})
	y := g.AddNode(topology.Node{Kind: topology.KindSwitch, Server: -1, Rank: -1})
	g.AddEdge(topology.Edge{From: a, To: x, Type: topology.LinkRDMA, Alpha: time.Microsecond, BandwidthBps: 1e9})
	hot := g.AddEdge(topology.Edge{From: x, To: y, Type: topology.LinkRDMA, Alpha: time.Microsecond, BandwidthBps: 1e9})
	eng := sim.NewEngine(1)
	fab := fabric.New(eng, g)
	c := fab.EnableCongestion(fabric.CongestOptions{PFCThreshold: 64 << 20})
	return eng, fab, c, hot
}

// backlog keeps the hot port busy so samples are informative.
func backlog(fab *fabric.Fabric, edge topology.EdgeID, n int, size int64) {
	for i := 0; i < n; i++ {
		fab.Send(edge, size, nil, nil)
	}
}

// TestGrayfailDegradeAndRestore: a collided link under load draws a
// degraded verdict within a few sampling intervals; once the collision
// clears, the tightly-tuned health probes promote it back and a restored
// verdict fires.
func TestGrayfailDegradeAndRestore(t *testing.T) {
	eng, fab, c, hot := grayEnv(t)
	var events []Event
	m := New(eng, fab, Options{}, func(ev Event) { events = append(events, ev) })
	m.Watch(hot)
	m.Start()

	eng.At(0, func() {
		c.SetCollision(hot, 0.3)
		backlog(fab, hot, 10, 256<<10)
	})
	eng.At(sim.Time(20*time.Millisecond), func() { c.SetCollision(hot, 1) })
	eng.At(sim.Time(80*time.Millisecond), func() { m.Stop() })
	eng.Run()

	if len(events) < 2 {
		t.Fatalf("got %d events, want degraded then restored: %+v", len(events), events)
	}
	deg := events[0]
	if deg.Verdict != VerdictDegraded || deg.Edge != hot {
		t.Fatalf("first event = %+v, want degraded on edge %d", deg, hot)
	}
	if deg.At > sim.Time(2*time.Millisecond) {
		t.Errorf("degraded verdict at %v; detection should take a few sampling intervals", deg.At)
	}
	if deg.Ratio >= 0.55 {
		t.Errorf("degraded ratio %g, want < DegradeBelow", deg.Ratio)
	}
	res := events[len(events)-1]
	if res.Verdict != VerdictRestored || res.Edge != hot {
		t.Fatalf("last event = %+v, want restored on edge %d", res, hot)
	}
	if res.At < sim.Time(20*time.Millisecond) {
		t.Errorf("restored at %v, before the collision cleared", res.At)
	}
	if m.Degraded(hot) {
		t.Error("link still marked degraded after restore")
	}
	if v := m.Verdicts(); v[VerdictDegraded] != 1 || v[VerdictRestored] != 1 {
		t.Errorf("verdict tallies %v, want one degraded and one restored", v)
	}

	reg := metrics.New()
	m.ExportMetrics(reg, "w", eng.Now())
	got := reg.Counter("adapcc_grayfail_verdicts_total", "",
		"world", "w", "verdict", "degraded").Value()
	if got != 1 {
		t.Errorf("exported degraded counter = %g, want 1", got)
	}
}

// TestGrayfailCondemnsPersistent: a link that never recovers exhausts the
// health machinery's relapses and is condemned.
func TestGrayfailCondemnsPersistent(t *testing.T) {
	eng, fab, c, hot := grayEnv(t)
	var events []Event
	m := New(eng, fab, Options{}, func(ev Event) { events = append(events, ev) })
	m.Watch(hot)
	m.Start()
	eng.At(0, func() {
		c.SetCollision(hot, 0.1) // forever
		backlog(fab, hot, 12, 256<<10)
	})
	eng.At(sim.Time(400*time.Millisecond), func() { m.Stop() })
	eng.Run()
	if len(events) < 2 {
		t.Fatalf("got %d events, want degraded then condemned: %+v", len(events), events)
	}
	if events[0].Verdict != VerdictDegraded {
		t.Fatalf("first event %+v, want degraded", events[0])
	}
	last := events[len(events)-1]
	if last.Verdict != VerdictCondemned {
		t.Fatalf("last event %+v, want condemned", last)
	}
	if last.SuspectedFor <= 0 {
		t.Error("condemn event carries no suspicion duration")
	}
}

// TestGrayfailIdleLinkStaysQuiet: an idle (or barely loaded) link produces
// no samples and no verdicts, whatever its multiplier — no traffic, no
// evidence.
func TestGrayfailIdleLinkStaysQuiet(t *testing.T) {
	eng, fab, c, hot := grayEnv(t)
	var events []Event
	m := New(eng, fab, Options{}, func(ev Event) { events = append(events, ev) })
	m.Watch(hot)
	m.Start()
	eng.At(0, func() { c.SetCollision(hot, 0.2) })
	eng.At(sim.Time(10*time.Millisecond), func() {
		fab.Send(hot, 1<<10, nil, nil) // 1 KiB: below MinQueueBytes
	})
	eng.At(sim.Time(30*time.Millisecond), func() { m.Stop() })
	eng.Run()
	if len(events) != 0 {
		t.Fatalf("idle link drew verdicts: %+v", events)
	}
}

// Package grayfail detects in-fabric congestion as a *gray* failure: a link
// that still delivers every byte, just slowly. The classic fault loop
// (deadline miss → exclude → heal) cannot see it — a congested link never
// misses a liveness deadline outright, it just drags the collective's tail.
//
// The Monitor samples each watched link on a fixed virtual-time cadence and
// compares achieved throughput against the link's profiled baseline. A
// sample only counts when the link is backlogged (queue occupancy above
// MinQueueBytes): an idle link transfers nothing and proves nothing. The
// per-link utilization ratio is folded into an EWMA; when the EWMA sits
// below DegradeBelow for DegradeAfter consecutive backlogged samples, the
// monitor issues a *degraded* verdict — not dead — and hands the link to a
// tightly-tuned health.Monitor (DeadlineMult barely above nominal, so a
// probe through a still-congested port misses and relapses) whose
// quarantine→probation→healthy machinery decides when the link has
// un-degraded. Promotions surface as restored verdicts; links that never
// recover are condemned.
//
// Hysteresis lives in three places: the EWMA itself, the DegradeAfter
// streak, and the health machinery's K-streak probation — so an ECMP hash
// flap does not thrash the strategy layer.
package grayfail

import (
	"sort"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Verdict classifies a gray-failure event.
type Verdict int

const (
	// VerdictDegraded: the link is alive but persistently under-delivering.
	VerdictDegraded Verdict = iota
	// VerdictRestored: the health machinery promoted the link back.
	VerdictRestored
	// VerdictCondemned: the link never recovered; treat it as dead.
	VerdictCondemned
)

func (v Verdict) String() string {
	switch v {
	case VerdictDegraded:
		return "degraded"
	case VerdictRestored:
		return "restored"
	case VerdictCondemned:
		return "condemned"
	default:
		return "verdict(?)"
	}
}

// Options tunes the detector. Zero values take defaults.
type Options struct {
	// Interval is the sampling cadence (default 200µs).
	Interval time.Duration
	// Alpha is the EWMA weight of each new sample (default 0.3).
	Alpha float64
	// DegradeBelow is the utilization ratio under which a backlogged sample
	// counts against the link (default 0.55 — safely below the congestion
	// plane's default degradation floor yet far above a PFC pause trickle).
	DegradeBelow float64
	// RecoverAbove resets the bad-sample streak (default 0.85). The gap
	// between the two thresholds is the detector's own hysteresis band.
	RecoverAbove float64
	// DegradeAfter is the consecutive-bad-sample streak that triggers the
	// degraded verdict (default 3).
	DegradeAfter int
	// MinQueueBytes is the backlog below which a sample is uninformative and
	// skipped (default 64 KiB).
	MinQueueBytes int64
	// Heal tunes the un-degrade machinery. The defaults here differ from
	// health's own: probes are large (1 MiB) with a deadline barely above
	// nominal (×1.2), so a probe across a still-congested port fails — which
	// is exactly the "is it still slow?" question, not "is it alive?".
	Heal health.Options
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 200 * time.Microsecond
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.3
	}
	if o.DegradeBelow <= 0 {
		o.DegradeBelow = 0.55
	}
	if o.RecoverAbove <= 0 {
		o.RecoverAbove = 0.85
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	if o.MinQueueBytes <= 0 {
		o.MinQueueBytes = 64 << 10
	}
	h := &o.Heal
	if h.ProbeBytes <= 0 {
		h.ProbeBytes = 1 << 20
	}
	if h.DeadlineMult <= 0 {
		h.DeadlineMult = 1.2
	}
	if h.DeadlineFloor <= 0 {
		h.DeadlineFloor = time.Microsecond
	}
	if h.Quarantine <= 0 {
		h.Quarantine = 2 * time.Millisecond
	}
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = 500 * time.Microsecond
	}
	if h.ProbationK <= 0 {
		h.ProbationK = 3
	}
	if h.GiveUpAfter <= 0 {
		h.GiveUpAfter = 6
	}
	if h.MaxQuarantine <= 0 {
		h.MaxQuarantine = 50 * time.Millisecond
	}
	return o
}

// Event is one verdict, handed to the monitor's callback on the owning
// engine's event loop.
type Event struct {
	Edge     topology.EdgeID
	From, To topology.NodeID
	Verdict  Verdict
	// Ratio is the EWMA utilization at verdict time (degraded verdicts).
	Ratio float64
	At    sim.Time
	// SuspectedFor is how long the bad streak ran before the degraded
	// verdict, or how long the link was degraded before restore/condemn —
	// the detector's contribution to time-to-adapt.
	SuspectedFor time.Duration
}

// watch is one link's detector state.
type watch struct {
	edge        topology.EdgeID
	baselineBps float64 // profiled nominal service rate at Watch time
	lastBytes   int64
	ewma        float64
	primed      bool
	badStreak   int
	badSince    sim.Time
	degraded    bool
	degradedAt  sim.Time
}

// Monitor watches links for gray failures. Single-threaded on its engine;
// in a sharded sweep each domain runs its own Monitor over its own fabric.
type Monitor struct {
	eng     *sim.Engine
	fab     *fabric.Fabric
	g       *topology.Graph
	opts    Options
	onEvent func(Event)
	heal    *health.Monitor

	links   map[topology.EdgeID]*watch
	order   []topology.EdgeID // deterministic sampling order
	running bool
	stopped bool

	verdicts map[Verdict]int
}

// New builds a monitor over a fabric. onEvent receives every verdict; links
// arrive via Watch and sampling starts at Start.
func New(eng *sim.Engine, fab *fabric.Fabric, opts Options, onEvent func(Event)) *Monitor {
	m := &Monitor{
		eng:      eng,
		fab:      fab,
		g:        fab.Graph(),
		opts:     opts.withDefaults(),
		onEvent:  onEvent,
		links:    make(map[topology.EdgeID]*watch),
		verdicts: make(map[Verdict]int),
	}
	m.heal = health.New(eng, fab, nil, m.opts.Heal, health.Hooks{
		OnHeal:    m.onHeal,
		OnCondemn: m.onCondemn,
	})
	return m
}

// Options returns the effective (default-filled) options.
func (m *Monitor) Options() Options { return m.opts }

// Watch adds a link to the sampled set (idempotent). Its baseline is the
// link's current nominal service rate — call after profiling, before chaos.
func (m *Monitor) Watch(edge topology.EdgeID) {
	if m.stopped {
		return
	}
	if _, ok := m.links[edge]; ok {
		return
	}
	e := m.g.Edge(edge)
	m.links[edge] = &watch{
		edge:        edge,
		baselineBps: e.BandwidthBps * m.fab.Scale(edge),
		lastBytes:   m.fab.BytesDelivered(edge),
	}
	m.order = append(m.order, edge)
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
}

// Start begins the sampling loop. Call once, from before the run or an
// event on the engine.
func (m *Monitor) Start() {
	if m.running || m.stopped {
		return
	}
	m.running = true
	m.eng.After(m.opts.Interval, m.tick)
}

// Stop retires the monitor: no further samples or verdicts, and the health
// machinery is stopped so the engine can drain.
func (m *Monitor) Stop() {
	m.stopped = true
	m.heal.Stop()
}

// Degraded reports whether a watched link currently holds a degraded
// verdict.
func (m *Monitor) Degraded(edge topology.EdgeID) bool {
	w := m.links[edge]
	return w != nil && w.degraded
}

// Verdicts returns how many verdicts of each kind have fired.
func (m *Monitor) Verdicts() map[Verdict]int {
	out := make(map[Verdict]int, len(m.verdicts))
	for k, v := range m.verdicts {
		out[k] = v
	}
	return out
}

// ExportMetrics writes the verdict tallies into a registry as
// adapcc_grayfail_verdicts_total{world,verdict}. Call after the run: the
// registry is not written from concurrent domain events.
func (m *Monitor) ExportMetrics(reg *metrics.Registry, world string, at sim.Time) {
	for _, v := range []Verdict{VerdictDegraded, VerdictRestored, VerdictCondemned} {
		if n := m.verdicts[v]; n > 0 {
			reg.Counter("adapcc_grayfail_verdicts_total",
				"gray-failure verdicts issued by the congestion detector",
				"world", world, "verdict", v.String()).Add(at, float64(n))
		}
	}
}

func (m *Monitor) tick() {
	if m.stopped {
		return
	}
	now := m.eng.Now()
	for _, eid := range m.order {
		m.sample(m.links[eid], now)
	}
	m.eng.After(m.opts.Interval, m.tick)
}

func (m *Monitor) sample(w *watch, now sim.Time) {
	delivered := m.fab.BytesDelivered(w.edge)
	delta := delivered - w.lastBytes
	w.lastBytes = delivered
	if w.degraded {
		return // the health machinery owns the link until it rules
	}
	// The queue must be backlogged for the ratio to mean anything: count
	// what is still waiting plus what just left.
	backlog := m.fab.QueueBytes(w.edge) + delta
	if backlog < m.opts.MinQueueBytes || w.baselineBps <= 0 {
		return
	}
	expect := w.baselineBps * m.opts.Interval.Seconds()
	ratio := float64(delta) / expect
	if ratio > 1 {
		ratio = 1
	}
	if !w.primed {
		w.ewma, w.primed = ratio, true
	} else {
		w.ewma = m.opts.Alpha*ratio + (1-m.opts.Alpha)*w.ewma
	}
	switch {
	case w.ewma < m.opts.DegradeBelow:
		if w.badStreak == 0 {
			w.badSince = now
		}
		w.badStreak++
		if w.badStreak >= m.opts.DegradeAfter {
			m.degrade(w, now)
		}
	case w.ewma > m.opts.RecoverAbove:
		w.badStreak = 0
	}
}

func (m *Monitor) degrade(w *watch, now sim.Time) {
	w.degraded = true
	w.degradedAt = now
	m.verdicts[VerdictDegraded]++
	e := m.g.Edge(w.edge)
	if m.onEvent != nil {
		m.onEvent(Event{
			Edge: w.edge, From: e.From, To: e.To,
			Verdict: VerdictDegraded, Ratio: w.ewma, At: now,
			SuspectedFor: now - w.badSince,
		})
	}
	m.heal.WatchLink(e.From, e.To)
}

// matching returns the watched links between a healed/condemned node pair
// (the health monitor reports pairs, we watch directed edges).
func (m *Monitor) matching(from, to topology.NodeID) []*watch {
	var out []*watch
	for _, eid := range m.order {
		w := m.links[eid]
		e := m.g.Edge(eid)
		lo, hi := e.From, e.To
		if hi < lo {
			lo, hi = hi, lo
		}
		if lo == from && hi == to && w.degraded {
			out = append(out, w)
		}
	}
	return out
}

func (m *Monitor) onHeal(ev health.Event) {
	if m.stopped {
		return
	}
	now := m.eng.Now()
	for _, w := range m.matching(ev.From, ev.To) {
		w.degraded = false
		w.badStreak = 0
		w.primed = false
		w.lastBytes = m.fab.BytesDelivered(w.edge)
		m.verdicts[VerdictRestored]++
		e := m.g.Edge(w.edge)
		if m.onEvent != nil {
			m.onEvent(Event{
				Edge: w.edge, From: e.From, To: e.To,
				Verdict: VerdictRestored, Ratio: w.ewma, At: now,
				SuspectedFor: now - w.degradedAt,
			})
		}
	}
}

func (m *Monitor) onCondemn(ev health.Event) {
	if m.stopped {
		return
	}
	now := m.eng.Now()
	for _, w := range m.matching(ev.From, ev.To) {
		m.verdicts[VerdictCondemned]++
		e := m.g.Edge(w.edge)
		if m.onEvent != nil {
			m.onEvent(Event{
				Edge: w.edge, From: e.From, To: e.To,
				Verdict: VerdictCondemned, Ratio: w.ewma, At: now,
				SuspectedFor: now - w.degradedAt,
			})
		}
	}
}

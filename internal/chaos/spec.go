// Package chaos is the deterministic fault-injection engine: it turns a
// seed-driven schedule of link and worker faults into simulation events
// (bandwidth re-scaling, transfer loss/stall verdicts, kernel stalls) so
// the recovery path — detect, retransmit, re-synthesize — can be exercised
// and replayed bit-identically. Faults never touch the recovery machinery
// directly; they only perturb the fabric and devices through the same
// public hooks the experiments use, so everything the executor observes is
// an ordinary (if hostile) timeline.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"adapcc/internal/topology"
)

// Kind names one fault archetype.
type Kind string

const (
	// LinkDown zeroes an edge's bandwidth for the window (permanent when
	// the window is open-ended): in-flight chunks stall until deadline.
	LinkDown Kind = "down"
	// LinkFlap toggles an edge between dead and healthy every Period.
	LinkFlap Kind = "flap"
	// Degrade collapses an edge's bandwidth to Scale for the window (the
	// NIC-degradation scenario of Fig. 17/18 made adversarial).
	Degrade Kind = "degrade"
	// Loss drops each new transfer on the edge with probability Prob
	// during the window (blackholed until a deadline reclaims it).
	Loss Kind = "loss"
	// Hold parks each new transfer on the edge for Stall before it enters
	// the link during the window (a paused queue / flapping port buffer).
	Hold Kind = "hold"
	// Crash kills a worker mid-collective: every link touching its GPU
	// goes down permanently and its kernels never retire.
	Crash Kind = "crash"
	// Hang stalls a worker's kernels for the window, then recovers.
	Hang Kind = "hang"
	// Straggler adds Stall to every kernel the worker launches during the
	// window (a slowdown, not a fault — recovery must NOT trigger).
	Straggler Kind = "straggler"
	// Incast parks a standing phantom load of Fanin×256 KiB on the edge's
	// egress queue for the window (a fan-in burst the collective cannot
	// see), driving queue-occupancy degradation and possibly PFC.
	Incast Kind = "incast"
	// HashCollide halves (Scale, default 0.5) the edge's service rate for
	// the window — an ECMP hash collision from the victim flow's view.
	// "link=" is accepted as an alias of "edge=".
	HashCollide Kind = "hashcollide"
	// PFCStorm forces a rogue pause assertion onto a port for the window:
	// real traffic then piles up behind it and the congestion plane spreads
	// pause frames upstream on its own. Target an edge, or a pod (the pod's
	// first switch→switch uplink, sharded engine only).
	PFCStorm Kind = "pfcstorm"
)

// allKinds is the parse-time vocabulary; RandomSpec draws only from
// classicKinds so historical soak schedules replay unchanged, and
// congestion kinds come from RandomCongestSpec (they need a fabric with
// the congestion plane enabled).
var allKinds = []Kind{LinkDown, LinkFlap, Degrade, Loss, Hold, Crash, Hang, Straggler,
	Incast, HashCollide, PFCStorm}

var classicKinds = []Kind{LinkDown, LinkFlap, Degrade, Loss, Hold, Crash, Hang, Straggler}

// congestKind reports whether the kind is one of the congestion kinds,
// which drive the fabric's congestion plane instead of scales/verdicts.
func (k Kind) congestKind() bool { return k == Incast || k == HashCollide || k == PFCStorm }

// PerformanceOnly reports whether every fault in the spec is a congestion
// kind — faults that slow traffic down but never drop, corrupt or reorder
// it. A performance-only schedule needs no recovery machinery: the sweep
// finishes on its own, just later.
func (s Spec) PerformanceOnly() bool {
	for _, f := range s.Faults {
		if !f.Kind.congestKind() {
			return false
		}
	}
	return true
}

// Fault is one scheduled fault. Edge faults set Edge; worker faults set
// Rank. Start is relative to Engine.Arm; Dur of 0 means open-ended for
// windowed kinds (down/degrade/loss/hold/hang) and is invalid for flap.
type Fault struct {
	Kind  Kind
	Start time.Duration
	Dur   time.Duration
	// Edge is the target link (down/flap/degrade/loss/hold), -1 otherwise.
	Edge topology.EdgeID
	// Rank is the target worker (crash/hang/straggler), -1 otherwise.
	Rank int
	// Scale is the surviving bandwidth fraction for degrade.
	Scale float64
	// Prob is the per-transfer drop probability for loss.
	Prob float64
	// Period is the flap toggle interval.
	Period time.Duration
	// Stall is the per-transfer park delay (hold) or per-kernel extra
	// latency (straggler).
	Stall time.Duration
	// Fanin is the incast fan-in degree (phantom load = Fanin×256 KiB).
	Fanin int
	// Pod targets a pfcstorm at a pod instead of a named edge (Edge takes
	// precedence when both are set). Parsed clauses default to -1.
	Pod int
}

// Spec is a complete chaos schedule: a seed (driving every probabilistic
// decision, so one Spec replays one timeline) plus the fault list.
type Spec struct {
	Seed   int64
	Faults []Fault
}

// String renders the spec in the grammar ParseSpec accepts.
func (s Spec) String() string {
	parts := make([]string, 0, len(s.Faults)+1)
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	for _, f := range s.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// String renders one fault clause, e.g. "loss@2ms+10ms:edge=7,prob=0.3".
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", f.Kind, f.Start)
	if f.Dur > 0 {
		fmt.Fprintf(&b, "+%s", f.Dur)
	}
	var kv []string
	if f.Edge >= 0 {
		kv = append(kv, fmt.Sprintf("edge=%d", f.Edge))
	}
	if f.Rank >= 0 {
		kv = append(kv, fmt.Sprintf("rank=%d", f.Rank))
	}
	if f.Scale > 0 {
		kv = append(kv, fmt.Sprintf("scale=%g", f.Scale))
	}
	if f.Prob > 0 {
		kv = append(kv, fmt.Sprintf("prob=%g", f.Prob))
	}
	if f.Period > 0 {
		kv = append(kv, fmt.Sprintf("period=%s", f.Period))
	}
	if f.Stall > 0 {
		kv = append(kv, fmt.Sprintf("stall=%s", f.Stall))
	}
	if f.Kind == Incast && f.Fanin > 0 {
		kv = append(kv, fmt.Sprintf("fanin=%d", f.Fanin))
	}
	if f.Kind == PFCStorm && f.Pod >= 0 {
		kv = append(kv, fmt.Sprintf("pod=%d", f.Pod))
	}
	if len(kv) > 0 {
		b.WriteByte(':')
		b.WriteString(strings.Join(kv, ","))
	}
	return b.String()
}

// ParseSpec parses the compact chaos grammar:
//
//	spec   := clause (';' clause)*
//	clause := "seed=" int
//	        | kind '@' dur ['+' dur] [':' key '=' val (',' key '=' val)*]
//	kind   := down|flap|degrade|loss|hold|crash|hang|straggler
//	        | incast|hashcollide|pfcstorm
//	key    := edge|link|rank|scale|prob|period|stall|fanin|pod
//
// Durations use Go syntax ("5ms", "1.5s"). Example:
//
//	seed=7;down@5ms+20ms:edge=3;crash@10ms:rank=2;loss@0s+50ms:edge=7,prob=0.3
func ParseSpec(s string) (Spec, error) {
	spec := Spec{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("chaos: bad seed %q: %v", rest, err)
			}
			spec.Seed = seed
			continue
		}
		f, err := parseFault(clause)
		if err != nil {
			return Spec{}, err
		}
		spec.Faults = append(spec.Faults, f)
	}
	sort.SliceStable(spec.Faults, func(i, j int) bool {
		return spec.Faults[i].Start < spec.Faults[j].Start
	})
	return spec, nil
}

func parseFault(clause string) (Fault, error) {
	f := Fault{Edge: -1, Rank: -1, Pod: -1}
	head, params, _ := strings.Cut(clause, ":")
	kindStr, when, ok := strings.Cut(head, "@")
	if !ok {
		return f, fmt.Errorf("chaos: clause %q lacks '@start'", clause)
	}
	f.Kind = Kind(kindStr)
	known := false
	for _, k := range allKinds {
		if f.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return f, fmt.Errorf("chaos: unknown fault kind %q", kindStr)
	}
	startStr, durStr, hasDur := strings.Cut(when, "+")
	start, err := time.ParseDuration(startStr)
	if err != nil {
		return f, fmt.Errorf("chaos: bad start in %q: %v", clause, err)
	}
	f.Start = start
	if hasDur {
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return f, fmt.Errorf("chaos: bad duration in %q: %v", clause, err)
		}
		f.Dur = dur
	}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return f, fmt.Errorf("chaos: bad param %q in %q", kv, clause)
			}
			switch key {
			case "edge", "link":
				n, err := strconv.Atoi(val)
				if err != nil {
					return f, fmt.Errorf("chaos: bad %s %q: %v", key, val, err)
				}
				f.Edge = topology.EdgeID(n)
			case "rank":
				n, err := strconv.Atoi(val)
				if err != nil {
					return f, fmt.Errorf("chaos: bad rank %q: %v", val, err)
				}
				f.Rank = n
			case "scale":
				if f.Scale, err = strconv.ParseFloat(val, 64); err != nil {
					return f, fmt.Errorf("chaos: bad scale %q: %v", val, err)
				}
			case "prob":
				if f.Prob, err = strconv.ParseFloat(val, 64); err != nil {
					return f, fmt.Errorf("chaos: bad prob %q: %v", val, err)
				}
			case "period":
				if f.Period, err = time.ParseDuration(val); err != nil {
					return f, fmt.Errorf("chaos: bad period %q: %v", val, err)
				}
			case "stall":
				if f.Stall, err = time.ParseDuration(val); err != nil {
					return f, fmt.Errorf("chaos: bad stall %q: %v", val, err)
				}
			case "fanin":
				if f.Fanin, err = strconv.Atoi(val); err != nil {
					return f, fmt.Errorf("chaos: bad fanin %q: %v", val, err)
				}
			case "pod":
				if f.Pod, err = strconv.Atoi(val); err != nil {
					return f, fmt.Errorf("chaos: bad pod %q: %v", val, err)
				}
			default:
				return f, fmt.Errorf("chaos: unknown param %q in %q", key, clause)
			}
		}
	}
	return f, f.validate()
}

func (f Fault) validate() error {
	edgeKind := f.Kind == LinkDown || f.Kind == LinkFlap || f.Kind == Degrade ||
		f.Kind == Loss || f.Kind == Hold || f.Kind == Incast || f.Kind == HashCollide
	if edgeKind && f.Edge < 0 {
		return fmt.Errorf("chaos: %s needs edge=", f.Kind)
	}
	if f.Kind == PFCStorm {
		if f.Edge < 0 && f.Pod < 0 {
			return fmt.Errorf("chaos: pfcstorm needs edge= or pod=")
		}
	} else if !edgeKind && f.Rank < 0 {
		return fmt.Errorf("chaos: %s needs rank=", f.Kind)
	}
	switch f.Kind {
	case LinkFlap:
		if f.Period <= 0 {
			return fmt.Errorf("chaos: flap needs period=")
		}
		if f.Dur <= 0 {
			return fmt.Errorf("chaos: flap needs a bounded +duration")
		}
	case Degrade:
		if f.Scale <= 0 || f.Scale >= 1 {
			return fmt.Errorf("chaos: degrade needs scale in (0,1), got %g", f.Scale)
		}
	case Loss:
		if f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("chaos: loss needs prob in (0,1], got %g", f.Prob)
		}
	case Hold:
		if f.Stall <= 0 {
			return fmt.Errorf("chaos: hold needs stall=")
		}
	case Straggler:
		if f.Stall <= 0 {
			return fmt.Errorf("chaos: straggler needs stall=")
		}
	case Hang:
		if f.Dur <= 0 {
			return fmt.Errorf("chaos: hang needs a bounded +duration (use crash for permanence)")
		}
	case Incast:
		if f.Fanin != 0 && f.Fanin < 2 {
			return fmt.Errorf("chaos: incast needs fanin >= 2, got %d", f.Fanin)
		}
	case HashCollide:
		if f.Scale != 0 && (f.Scale <= 0 || f.Scale >= 1) {
			return fmt.Errorf("chaos: hashcollide needs scale in (0,1), got %g", f.Scale)
		}
	case PFCStorm:
		if f.Pod < -1 {
			return fmt.Errorf("chaos: bad pod %d", f.Pod)
		}
	}
	if f.Start < 0 || f.Dur < 0 {
		return fmt.Errorf("chaos: negative time in %s fault", f.Kind)
	}
	return nil
}

// RandomSpec draws a schedule of n faults from the seed over the given
// graph within the horizon: the soak test's generator. Faults target
// random edges and ranks; kinds that would be unrecoverable by
// construction on tiny clusters (crashing every worker) are naturally
// bounded because at most one crash is drawn.
func RandomSpec(seed int64, g *topology.Graph, n int, horizon time.Duration) Spec {
	rng := rand.New(rand.NewSource(seed))
	edges := g.NumEdges()
	var ranks []int
	for _, id := range g.GPUs() {
		ranks = append(ranks, g.Node(id).Rank)
	}
	spec := Spec{Seed: seed}
	crashed := false
	for i := 0; i < n; i++ {
		k := classicKinds[rng.Intn(len(classicKinds))]
		if k == Crash {
			if crashed || len(ranks) <= 2 {
				k = LinkDown // keep >= 2 survivors possible
			} else {
				crashed = true
			}
		}
		f := Fault{
			Kind:  k,
			Start: time.Duration(rng.Int63n(int64(horizon))),
			Edge:  -1,
			Rank:  -1,
			Pod:   -1,
		}
		window := horizon / 4
		switch k {
		case LinkDown:
			f.Edge = topology.EdgeID(rng.Intn(edges))
			if rng.Intn(2) == 0 { // half transient, half permanent
				f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
			}
		case LinkFlap:
			f.Edge = topology.EdgeID(rng.Intn(edges))
			f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
			f.Period = f.Dur/time.Duration(2+rng.Intn(6)) + time.Microsecond
		case Degrade:
			f.Edge = topology.EdgeID(rng.Intn(edges))
			f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
			f.Scale = 0.02 + 0.5*rng.Float64()
		case Loss:
			f.Edge = topology.EdgeID(rng.Intn(edges))
			f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
			f.Prob = 0.05 + 0.6*rng.Float64()
		case Hold:
			f.Edge = topology.EdgeID(rng.Intn(edges))
			f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
			f.Stall = time.Duration(1 + rng.Int63n(int64(5*time.Millisecond)))
		case Crash:
			f.Rank = ranks[rng.Intn(len(ranks))]
		case Hang:
			f.Rank = ranks[rng.Intn(len(ranks))]
			f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
		case Straggler:
			f.Rank = ranks[rng.Intn(len(ranks))]
			f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
			f.Stall = time.Duration(1 + rng.Int63n(int64(2*time.Millisecond)))
		}
		spec.Faults = append(spec.Faults, f)
	}
	sort.SliceStable(spec.Faults, func(i, j int) bool {
		return spec.Faults[i].Start < spec.Faults[j].Start
	})
	return spec
}

// RandomLinkSpec draws a schedule of n link faults (down/flap/degrade/
// loss/hold — no worker faults) from the seed over the given graph within
// the horizon: the generator behind the sharded chaos soaks, where worker
// faults would need the kernel model the scale sweep does not simulate.
// Loss probabilities are kept low and loss windows short so a bounded
// retransmission budget can ride out the window.
func RandomLinkSpec(seed int64, g *topology.Graph, n int, horizon time.Duration) Spec {
	rng := rand.New(rand.NewSource(seed))
	edges := g.NumEdges()
	linkKinds := []Kind{LinkDown, LinkFlap, Degrade, Loss, Hold}
	spec := Spec{Seed: seed}
	for i := 0; i < n; i++ {
		k := linkKinds[rng.Intn(len(linkKinds))]
		f := Fault{
			Kind:  k,
			Start: time.Duration(rng.Int63n(int64(horizon))),
			Edge:  topology.EdgeID(rng.Intn(edges)),
			Rank:  -1,
			Pod:   -1,
		}
		window := horizon / 4
		f.Dur = time.Duration(1 + rng.Int63n(int64(window)))
		switch k {
		case LinkFlap:
			f.Period = f.Dur/time.Duration(2+rng.Intn(6)) + time.Microsecond
		case Degrade:
			f.Scale = 0.05 + 0.5*rng.Float64()
		case Loss:
			f.Prob = 0.02 + 0.2*rng.Float64()
		case Hold:
			f.Stall = time.Duration(1 + rng.Int63n(int64(200*time.Microsecond)))
		}
		spec.Faults = append(spec.Faults, f)
	}
	sort.SliceStable(spec.Faults, func(i, j int) bool {
		return spec.Faults[i].Start < spec.Faults[j].Start
	})
	return spec
}

// RandomCongestSpec draws a schedule of n congestion faults (incast /
// hashcollide / pfcstorm — performance-only, nothing is ever lost) from
// the seed within the horizon, targeting random network edges of the
// graph: the generator behind the congestion soaks. The target fabric must
// have its congestion plane enabled.
func RandomCongestSpec(seed int64, g *topology.Graph, n int, horizon time.Duration) Spec {
	rng := rand.New(rand.NewSource(seed))
	var netEdges []topology.EdgeID
	for _, e := range g.Edges() {
		if e.Type.Network() {
			netEdges = append(netEdges, e.ID)
		}
	}
	kinds := []Kind{Incast, HashCollide, PFCStorm}
	spec := Spec{Seed: seed}
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		f := Fault{
			Kind:  k,
			Start: time.Duration(rng.Int63n(int64(horizon))),
			Edge:  netEdges[rng.Intn(len(netEdges))],
			Rank:  -1,
			Pod:   -1,
		}
		f.Dur = time.Duration(1 + rng.Int63n(int64(horizon/4)))
		switch k {
		case Incast:
			f.Fanin = 2 + rng.Intn(15)
		case HashCollide:
			f.Scale = 0.1 + 0.8*rng.Float64()
		}
		spec.Faults = append(spec.Faults, f)
	}
	sort.SliceStable(spec.Faults, func(i, j int) bool {
		return spec.Faults[i].Start < spec.Faults[j].Start
	})
	return spec
}

// Window is one fault's resolved activity interval on its target — the
// fault-end visibility heal soaks assert against without peeking at engine
// internals. End of 0 means open-ended (permanent): a crash, or a windowed
// kind armed without a duration.
type Window struct {
	Kind Kind
	// Edge is the targeted link (-1 for worker faults); Rank the targeted
	// worker (-1 for link faults). A crash is reported on the rank only,
	// even though it also kills the adjacent links.
	Edge topology.EdgeID
	Rank int
	// Start/End are relative to Engine.Arm, like Fault.Start.
	Start, End time.Duration
}

// Covers reports whether the window is active at t (relative to Arm).
func (w Window) Covers(t time.Duration) bool {
	return t >= w.Start && (w.End == 0 || t < w.End)
}

// Permanent reports whether the window never closes.
func (w Window) Permanent() bool { return w.End == 0 }

// Windows resolves the schedule into per-fault activity windows, in
// schedule order.
func (s Spec) Windows() []Window {
	out := make([]Window, 0, len(s.Faults))
	for _, f := range s.Faults {
		w := Window{Kind: f.Kind, Edge: f.Edge, Rank: f.Rank, Start: f.Start}
		if f.Kind != Crash && f.Dur > 0 {
			w.End = f.Start + f.Dur
		}
		out = append(out, w)
	}
	return out
}

// EdgeFaultEnd returns when the last fault window targeting the edge
// closes, and whether any of them is permanent (in which case the returned
// end covers only the bounded ones). An edge with no windows returns
// (0, false).
func (s Spec) EdgeFaultEnd(edge topology.EdgeID) (end time.Duration, permanent bool) {
	for _, w := range s.Windows() {
		if w.Edge != edge {
			continue
		}
		if w.Permanent() {
			permanent = true
			continue
		}
		if w.End > end {
			end = w.End
		}
	}
	return end, permanent
}

// RankFaultEnd is EdgeFaultEnd for worker faults.
func (s Spec) RankFaultEnd(rank int) (end time.Duration, permanent bool) {
	for _, w := range s.Windows() {
		if w.Rank < 0 || w.Rank != rank {
			continue
		}
		if w.Permanent() {
			permanent = true
			continue
		}
		if w.End > end {
			end = w.End
		}
	}
	return end, permanent
}

// Horizon returns when the last bounded fault window closes and whether any
// window is permanent — after (horizon, false), the infrastructure is fully
// healthy again and healing should eventually re-admit everything.
func (s Spec) Horizon() (end time.Duration, permanent bool) {
	for _, w := range s.Windows() {
		if w.Permanent() {
			permanent = true
			continue
		}
		if w.End > end {
			end = w.End
		}
	}
	return end, permanent
}

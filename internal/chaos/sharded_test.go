package chaos

import (
	"strings"
	"testing"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// shardedFixture builds a two-group rail topology partitioned by its own
// grouping, ready to arm a chaos schedule against.
func shardedFixture(t *testing.T) (*topology.Topo, *fabric.Sharded) {
	t.Helper()
	topo, err := topology.RailSpec{Groups: 2, Servers: 2, Rails: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := topology.NewPartition(topo.Graph, topo.NodeDomain)
	if err != nil {
		t.Fatal(err)
	}
	return topo, fabric.NewSharded(part, 1)
}

// TestShardedRejectsKernelFaults: hang and straggler need the kernel model
// the scale sweep does not simulate; arming them must fail loudly instead
// of silently doing nothing.
func TestShardedRejectsKernelFaults(t *testing.T) {
	for _, kind := range []Kind{Hang, Straggler} {
		_, sh := shardedFixture(t)
		e := NewSharded(sh, Spec{Faults: []Fault{
			{Kind: kind, Start: time.Millisecond, Dur: time.Millisecond, Edge: -1, Rank: 0},
		}})
		err := e.Arm()
		if err == nil {
			t.Fatalf("%s fault armed without error", kind)
		}
		if !strings.Contains(err.Error(), "kernel model") {
			t.Errorf("%s rejection does not explain itself: %v", kind, err)
		}
	}
}

// TestShardedRejectsBadTargets: out-of-range edges and unknown crash ranks
// fail at Arm time.
func TestShardedRejectsBadTargets(t *testing.T) {
	topo, sh := shardedFixture(t)
	e := NewSharded(sh, Spec{Faults: []Fault{
		{Kind: LinkDown, Start: 0, Edge: topology.EdgeID(topo.Graph.NumEdges()), Rank: -1},
	}})
	if e.Arm() == nil {
		t.Error("out-of-range edge armed without error")
	}
	_, sh2 := shardedFixture(t)
	e2 := NewSharded(sh2, Spec{Faults: []Fault{
		{Kind: Crash, Start: 0, Edge: -1, Rank: 9999},
	}})
	if e2.Arm() == nil {
		t.Error("crash of unknown rank armed without error")
	}
}

// TestRandomLinkSpecLinkOnly: the soak generator draws only link faults
// (the sharded sweep has no kernel model), targets existing edges, and
// stays inside the horizon, deterministically per seed.
func TestRandomLinkSpecLinkOnly(t *testing.T) {
	topo, _ := shardedFixture(t)
	horizon := 10 * time.Millisecond
	spec := RandomLinkSpec(42, topo.Graph, 50, horizon)
	if len(spec.Faults) != 50 {
		t.Fatalf("%d faults, want 50", len(spec.Faults))
	}
	for i, f := range spec.Faults {
		switch f.Kind {
		case LinkDown, LinkFlap, Degrade, Loss, Hold:
		default:
			t.Errorf("fault %d has non-link kind %s", i, f.Kind)
		}
		if f.Rank != -1 {
			t.Errorf("fault %d targets rank %d, want -1", i, f.Rank)
		}
		if f.Edge < 0 || int(f.Edge) >= topo.Graph.NumEdges() {
			t.Errorf("fault %d targets edge %d of a %d-edge graph", i, f.Edge, topo.Graph.NumEdges())
		}
		if f.Start < 0 || f.Start >= horizon {
			t.Errorf("fault %d starts at %v, outside [0, %v)", i, f.Start, horizon)
		}
		if i > 0 && f.Start < spec.Faults[i-1].Start {
			t.Errorf("faults not sorted by start: %v after %v", f.Start, spec.Faults[i-1].Start)
		}
	}
	again := RandomLinkSpec(42, topo.Graph, 50, horizon)
	if spec.String() != again.String() {
		t.Error("same seed produced different schedules")
	}
	if other := RandomLinkSpec(43, topo.Graph, 50, horizon); spec.String() == other.String() {
		t.Error("different seeds produced the identical schedule")
	}
}

// TestShardedScheduleDeterminism: the same armed schedule replays the same
// injected-fault counters regardless of the worker count, including the
// per-domain loss rng decisions.
func TestShardedScheduleDeterminism(t *testing.T) {
	run := func(workers int) Counters {
		topo, sh := shardedFixture(t)
		g := topo.Graph
		spec := RandomLinkSpec(7, g, 8, 2*time.Millisecond)
		// Add a guaranteed-active loss window over a used edge so the rng
		// actually gets consulted.
		src, _ := g.GPUByRank(0)
		dst, _ := g.GPUByRank(1)
		path := g.ShortestPath(src, dst)
		ge, ok := g.EdgeBetween(path[0], path[1])
		if !ok {
			t.Fatal("no first-hop edge")
		}
		spec.Faults = append(spec.Faults,
			Fault{Kind: Loss, Start: 0, Dur: 5 * time.Millisecond, Edge: ge, Rank: -1, Prob: 0.5})
		e := NewSharded(sh, spec)
		if err := e.Arm(); err != nil {
			t.Fatal(err)
		}
		d := sh.Partition().RankDomain[0]
		for i := 0; i < 32; i++ {
			at := sim.Time(i) * sim.Time(100*time.Microsecond)
			sh.Engine(d).At(at, func() {
				sh.SendPath(path, 64<<10, nil, func(any) {})
			})
		}
		sh.Run(workers)
		return e.Counters()
	}
	c1, c2 := run(1), run(4)
	if c1 != c2 {
		t.Fatalf("counters diverge across worker counts: %+v vs %+v", c1, c2)
	}
	if c1.ScaleEvents == 0 {
		t.Error("schedule injected no scale events")
	}
	if c1.Drops == 0 {
		t.Error("0.5-loss window over 32 transfers dropped nothing")
	}
}

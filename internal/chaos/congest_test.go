package chaos

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func TestParseSpecCongestRoundTrip(t *testing.T) {
	in := "seed=9;incast@1ms+4ms:edge=2,fanin=12;hashcollide@2ms+3ms:link=5,scale=0.4;" +
		"pfcstorm@3ms+2ms:pod=1;pfcstorm@1ms+1ms:edge=7"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Faults) != 4 {
		t.Fatalf("parsed %d faults, want 4", len(spec.Faults))
	}
	// ParseSpec stable-sorts by start time: incast@1ms, pfcstorm@1ms,
	// hashcollide@2ms, pfcstorm@3ms.
	if spec.Faults[0].Fanin != 12 || spec.Faults[2].Edge != 5 || spec.Faults[3].Pod != 1 {
		t.Errorf("congestion params lost in parse: %+v", spec.Faults)
	}
	respec, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", spec.String(), err)
	}
	for i := range spec.Faults {
		if spec.Faults[i] != respec.Faults[i] {
			t.Errorf("fault %d changed across round trip: %+v vs %+v",
				i, spec.Faults[i], respec.Faults[i])
		}
	}
}

func TestParseSpecCongestRejects(t *testing.T) {
	bad := map[string]string{
		"incast@1ms+2ms":                     "needs edge=",
		"incast@1ms+2ms:edge=0,fanin=1":      "fanin",
		"hashcollide@1ms+2ms:edge=0,scale=2": "scale in (0,1)",
		"pfcstorm@1ms+2ms":                   "edge= or pod=",
		"pfcstorm@1ms+2ms:rank=0":            "edge= or pod=",
	}
	for in, frag := range bad {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseSpec(%q) error %q lacks %q", in, err, frag)
		}
	}
}

// TestErrUnsupportedKindTyped: the sharded engine's kernel-fault rejection
// and both engines' congestion-without-plane rejections carry the typed
// sentinel, so callers can branch with errors.Is.
func TestErrUnsupportedKindTyped(t *testing.T) {
	for _, kind := range []Kind{Hang, Straggler} {
		_, sh := shardedFixture(t)
		e := NewSharded(sh, Spec{Faults: []Fault{
			{Kind: kind, Start: time.Millisecond, Dur: time.Millisecond, Edge: -1, Rank: 0, Pod: -1},
		}})
		if err := e.Arm(); !errors.Is(err, ErrUnsupportedKind) {
			t.Errorf("sharded %s rejection is not ErrUnsupportedKind: %v", kind, err)
		}
	}

	// Congestion kinds on a sharded fabric without the congestion plane.
	_, sh := shardedFixture(t)
	e := NewSharded(sh, Spec{Faults: []Fault{
		{Kind: Incast, Start: 0, Dur: time.Millisecond, Edge: 0, Rank: -1, Pod: -1},
	}})
	if err := e.Arm(); !errors.Is(err, ErrUnsupportedKind) {
		t.Errorf("sharded incast without congestion plane: %v", err)
	}

	// Same on the monolithic engine.
	eng, fab, _ := congestFixture(t)
	_ = eng
	ch := New(eng, fab, nil, Spec{Faults: []Fault{
		{Kind: PFCStorm, Start: 0, Dur: time.Millisecond, Edge: 0, Rank: -1, Pod: -1},
	}})
	if err := ch.Arm(); !errors.Is(err, ErrUnsupportedKind) {
		t.Errorf("monolithic pfcstorm without congestion plane: %v", err)
	}

	// A classic link fault does NOT carry the sentinel.
	_, sh2 := shardedFixture(t)
	e2 := NewSharded(sh2, Spec{Faults: []Fault{
		{Kind: LinkDown, Start: 0, Dur: time.Millisecond, Edge: topology.EdgeID(1 << 20), Rank: -1, Pod: -1},
	}})
	if err := e2.Arm(); err == nil || errors.Is(err, ErrUnsupportedKind) {
		t.Errorf("bad-target rejection misclassified as ErrUnsupportedKind: %v", err)
	}
}

// congestFixture is a two-pod fat-tree on a monolithic fabric, the smallest
// topology with pod uplinks for congestion faults to target.
func congestFixture(t *testing.T) (*sim.Engine, *fabric.Fabric, *topology.Topo) {
	t.Helper()
	topo, err := topology.FatTreeSpec{Pods: 2, Servers: 1, GPUs: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(5)
	return eng, fabric.New(eng, topo.Graph), topo
}

// TestCongestFaultsDriveThePlane: an armed schedule of all three congestion
// kinds actually moves the fabric's congestion plane — phantom load appears
// during the incast window, the collision multiplier during hashcollide,
// and the pod's uplink is pause-throttled during the pfcstorm — and every
// window closes cleanly.
func TestCongestFaultsDriveThePlane(t *testing.T) {
	eng, fab, topo := congestFixture(t)
	c := fab.EnableCongestion(fabric.CongestOptions{PFCThreshold: 16 << 20})
	hot, ok := podUplink(topo.Graph, 0)
	if !ok {
		t.Fatal("pod 0 has no uplink")
	}
	storm, ok := podUplink(topo.Graph, 1)
	if !ok {
		t.Fatal("pod 1 has no uplink")
	}
	spec, err := ParseSpec(fmt.Sprintf(
		"seed=3;incast@0s+2ms:edge=%d,fanin=4;hashcollide@3ms+2ms:edge=%d,scale=0.25;pfcstorm@6ms+2ms:pod=1",
		hot, hot))
	if err != nil {
		t.Fatal(err)
	}
	ch := New(eng, fab, nil, spec)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}
	eng.At(sim.Time(time.Millisecond), func() {
		if q := fab.QueueBytes(hot); q < 4*(256<<10) {
			t.Errorf("incast window: queue %d B, want >= 1 MiB of phantom load", q)
		}
	})
	eng.At(sim.Time(4*time.Millisecond), func() {
		if got := c.Factor(hot); got != 0.25 {
			t.Errorf("hashcollide window: factor %g, want 0.25", got)
		}
	})
	eng.At(sim.Time(7*time.Millisecond), func() {
		if !c.Paused(storm) {
			t.Error("pfcstorm window: pod-1 uplink not pause-throttled")
		}
	})
	eng.At(sim.Time(9*time.Millisecond), func() {
		if c.Paused(storm) || c.Factor(hot) != 1 || fab.QueueBytes(hot) != 0 {
			t.Errorf("windows closed dirty: paused=%v factor=%g queue=%d",
				c.Paused(storm), c.Factor(hot), fab.QueueBytes(hot))
		}
	})
	eng.Run()
	if got := ch.Counters().CongestEvents; got != 6 {
		t.Errorf("CongestEvents = %d, want 6 (three on/off window pairs)", got)
	}
}

// TestShardedCongestSchedule: the same congestion schedule armed on a
// partitioned fabric drives the per-domain congestion planes, counts its
// transitions, and replays bit-identically for any worker count while a
// real transfer crosses the stormed pod.
func TestShardedCongestSchedule(t *testing.T) {
	run := func(workers int) (sim.Time, uint64, int, Counters) {
		topo, err := topology.FatTreeSpec{Pods: 2, Servers: 1, GPUs: 1}.Build()
		if err != nil {
			t.Fatal(err)
		}
		part, err := topo.Partition()
		if err != nil {
			t.Fatal(err)
		}
		sh := fabric.NewSharded(part, 11)
		sc := sh.EnableCongestion(fabric.CongestOptions{PFCThreshold: 128 << 10, PauseScale: 0.01})
		storm, ok := podUplink(part.Graph, 1)
		if !ok {
			t.Fatal("pod 1 has no uplink")
		}
		spec, err := ParseSpec(fmt.Sprintf(
			"seed=5;pfcstorm@0s+4ms:pod=1;incast@1ms+2ms:edge=%d,fanin=3", storm))
		if err != nil {
			t.Fatal(err)
		}
		ch := NewSharded(sh, spec)
		if err := ch.Arm(); err != nil {
			t.Fatal(err)
		}
		g := part.Graph
		src, _ := g.GPUByRank(1) // pod 1: sends must cross the stormed uplink
		dst, _ := g.GPUByRank(0)
		path := g.ShortestPath(src, dst)
		if path == nil {
			t.Fatal("no cross-pod path")
		}
		arrivals := 0
		srcDom := part.RankDomain[1]
		for i := 0; i < 4; i++ {
			d := sim.Time(time.Duration(i) * 50 * time.Microsecond)
			sh.Engine(srcDom).At(d, func() {
				sh.SendPath(path, 32<<10, nil, func(any) { arrivals++ })
			})
		}
		sh.Run(workers)
		var latest sim.Time
		for d := 0; d < part.Domains; d++ {
			if now := sh.Engine(d).Now(); now > latest {
				latest = now
			}
		}
		return latest, sc.PauseFrames(), arrivals, ch.Counters()
	}
	t1, f1, a1, c1 := run(1)
	if a1 != 4 {
		t.Fatalf("%d of 4 transfers arrived; congestion must be performance-only", a1)
	}
	if c1.CongestEvents != 4 {
		t.Errorf("CongestEvents = %d, want 4", c1.CongestEvents)
	}
	for _, w := range []int{2, 4} {
		tw, fw, aw, cw := run(w)
		if tw != t1 || fw != f1 || aw != a1 || cw != c1 {
			t.Fatalf("workers=%d diverged: (time=%v frames=%d arrivals=%d %+v) != (%v, %d, %d, %+v)",
				w, tw, fw, aw, cw, t1, f1, a1, c1)
		}
	}
}

package chaos_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/chaos"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/health"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// soakHeal is a generous healing profile: quarantines stay short so the
// soak timelines are bounded, and GiveUpAfter is high enough that a link
// flapping through its whole fault window is never condemned — only
// genuinely permanent faults exhaust it.
func soakHeal() health.Options {
	return health.Options{
		Quarantine:    500 * time.Microsecond,
		ProbeInterval: 200 * time.Microsecond,
		ProbationK:    3,
		ProbeBytes:    256 << 10,
		DeadlineFloor: 200 * time.Microsecond,
		GiveUpAfter:   50,
		MaxQuarantine: 2 * time.Millisecond,
	}
}

// pairOf normalises an edge to its undirected (lo, hi) node pair.
func pairOf(g *topology.Graph, eid topology.EdgeID) [2]topology.NodeID {
	e := g.Edge(eid)
	lo, hi := e.From, e.To
	if hi < lo {
		lo, hi = hi, lo
	}
	return [2]topology.NodeID{lo, hi}
}

// bothDirections appends f for eid and its reverse edge (same window).
func bothDirections(g *topology.Graph, spec *chaos.Spec, f chaos.Fault, eid topology.EdgeID) {
	f.Edge = eid
	spec.Faults = append(spec.Faults, f)
	e := g.Edge(eid)
	if rev, ok := g.EdgeBetween(e.To, e.From); ok {
		f.Edge = rev
		spec.Faults = append(spec.Faults, f)
	}
}

// linkSchedule builds a seeded link-only fault schedule: a few closed
// down/flap/degrade windows on distinct links, plus (for odd seeds) one
// permanently dead link. Both directions of each link share the window, so
// "the link recovered" is well defined.
func linkSchedule(seed int64, g *topology.Graph) (chaos.Spec, map[[2]topology.NodeID]bool) {
	rng := rand.New(rand.NewSource(seed * 7919))
	edges := g.Edges()
	perm := rng.Perm(len(edges))
	spec := chaos.Spec{Seed: seed}
	permanent := make(map[[2]topology.NodeID]bool)

	// Edges() lists both directions of a link separately; draw until the
	// undirected pair is fresh so windows never overlap on one link.
	usedPairs := make(map[[2]topology.NodeID]bool)
	pick := 0
	nextEdge := func() (topology.EdgeID, bool) {
		for pick < len(perm) {
			eid := edges[perm[pick]].ID
			pick++
			if p := pairOf(g, eid); !usedPairs[p] {
				usedPairs[p] = true
				return eid, true
			}
		}
		return 0, false
	}

	n := 2 + rng.Intn(2) // 2–3 recoverable windows
	for i := 0; i < n; i++ {
		eid, ok := nextEdge()
		if !ok {
			break
		}
		f := chaos.Fault{
			Rank:  -1,
			Start: time.Duration(rng.Intn(5000)) * time.Microsecond,
			Dur:   time.Duration(1000+rng.Intn(7000)) * time.Microsecond,
		}
		switch rng.Intn(3) {
		case 0:
			f.Kind = chaos.LinkDown
		case 1:
			f.Kind = chaos.LinkFlap
			f.Period = time.Duration(200+rng.Intn(800)) * time.Microsecond
		default:
			f.Kind = chaos.Degrade
			f.Scale = 0.0001
		}
		bothDirections(g, &spec, f, eid)
	}
	if seed%2 == 1 {
		if eid, ok := nextEdge(); ok {
			bothDirections(g, &spec, chaos.Fault{
				Kind: chaos.LinkDown, Rank: -1,
				Start: time.Duration(rng.Intn(3000)) * time.Microsecond,
			}, eid) // Dur 0: open-ended, never recovers
			permanent[pairOf(g, eid)] = true
		}
	}
	return spec, permanent
}

// TestHealLinkScheduleProperties is the healing property test: under any
// seeded link-only flap schedule, (a) a completed collective still sums
// exactly over its survivors, (b) once the engine drains, every link whose
// fault window closed has been re-admitted — the exclusion set is a subset
// of the permanently dead pairs — and (c) a permanently dead link is never
// promoted back to health.
func TestHealLinkScheduleProperties(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
			if err != nil {
				t.Fatal(err)
			}
			env, err := backend.NewEnv(c, seed)
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.New(env, core.WithSkipProfiling())
			if err != nil {
				t.Fatal(err)
			}
			g := env.Graph
			spec, permanent := linkSchedule(seed, g)
			// Cross-check the generator against the schedule's own
			// fault-end view: exactly the permanent pairs report an
			// open-ended window.
			for _, w := range spec.Windows() {
				if w.Kind != chaos.Crash && w.Edge >= 0 {
					if w.Permanent() != permanent[pairOf(g, w.Edge)] {
						t.Fatalf("window %+v permanence disagrees with generator", w)
					}
				}
			}
			ch := chaos.New(env.Engine, env.Fabric, env.GPUs, spec)
			if err := ch.Arm(); err != nil {
				t.Fatal(err)
			}

			var healedPairs [][2]topology.NodeID
			ranks := env.AllRanks()
			const bytes = 1 << 20
			inputs := backend.MakeInputs(ranks, bytes)
			var res core.ResilientResult
			var resErr error
			done := false
			err = a.RunResilient(backend.Request{
				Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
			}, func(r core.ResilientResult, err error) { res, resErr, done = r, err, true },
				core.WithRecovery(soakRecovery()),
				core.WithHeal(core.HealOptions{
					Options: soakHeal(),
					OnHeal: func(ev health.Event) {
						if ev.Kind == health.KindLink {
							lo, hi := ev.From, ev.To
							if hi < lo {
								lo, hi = hi, lo
							}
							healedPairs = append(healedPairs, [2]topology.NodeID{lo, hi})
						}
					},
				}))
			if err != nil {
				t.Fatal(err)
			}
			env.Engine.Run() // must drain: heal or condemn every watch
			if !done {
				t.Fatal("neither completion nor clean failure")
			}

			// (a) completion implies exact sums over the survivors.
			if resErr == nil {
				elems := int(bytes / 4)
				want := make([]float32, elems)
				for _, r := range res.Survivors {
					for i, v := range inputs[r] {
						want[i] += v
					}
				}
				for _, r := range res.Survivors {
					o := res.Result.Outputs[r]
					for i := 0; i < elems; i += 251 {
						diff := o[i] - want[i]
						if diff < -1e-3 || diff > 1e-3 {
							t.Fatalf("survivor %d elem %d = %v, want %v", r, i, o[i], want[i])
						}
					}
				}
			} else {
				t.Logf("cleanly failed: %v", resErr)
			}

			// (b) every closed-window link was re-admitted.
			for _, p := range a.ExcludedLinks() {
				if !permanent[p] {
					t.Errorf("link %v still excluded after drain but its fault window closed", p)
				}
			}
			// (c) a permanently dead link never heals.
			for _, p := range healedPairs {
				if permanent[p] {
					t.Errorf("permanently dead link %v was promoted back to health", p)
				}
			}
		})
	}
}

// healOutcome extends the soak outcome with the healing counters; replays
// of one seed must reproduce it exactly.
type healOutcome struct {
	soakOutcome
	Healed    int
	Condemned int
	Excluded  string
}

// runHealSoak is runSoak with healing enabled on top of the random chaos
// schedule (which also throws rank faults at the monitor).
func runHealSoak(t *testing.T, seed int64) healOutcome {
	t.Helper()
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(env, core.WithSkipProfiling())
	if err != nil {
		t.Fatal(err)
	}
	spec := chaos.RandomSpec(seed, env.Graph, 4, 10*time.Millisecond)
	ch := chaos.New(env.Engine, env.Fabric, env.GPUs, spec)
	if err := ch.Arm(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	ranks := env.AllRanks()
	const bytes = 1 << 20
	inputs := backend.MakeInputs(ranks, bytes)
	var res core.ResilientResult
	var resErr error
	done := false
	err = a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r core.ResilientResult, err error) {
		res, resErr, done = r, err, true
	}, core.WithRecovery(soakRecovery()), core.WithHeal(core.HealOptions{Options: soakHeal()}))
	if err != nil {
		t.Fatalf("seed %d: RunResilient: %v", seed, err)
	}
	env.Engine.Run()
	if !done {
		t.Fatalf("seed %d: neither completion nor clean failure", seed)
	}

	out := healOutcome{
		soakOutcome: soakOutcome{
			Attempts:  res.Attempts,
			Events:    len(res.Events),
			Survivors: fmt.Sprint(res.Survivors),
			Elapsed:   res.Elapsed,
			Chaos:     ch.Counters(),
			Recovery:  env.Exec.RecoveryStats(),
		},
		Healed:    a.Healer().Healed(),
		Condemned: a.Healer().Condemned(),
		Excluded:  fmt.Sprint(a.ExcludedLinks()),
	}
	if resErr != nil {
		out.Err = resErr.Error()
	} else if len(res.Survivors) > 0 {
		out.SumProbe = res.Result.Outputs[res.Survivors[0]][0]
	}
	return out
}

// TestHealSoak re-runs the random chaos schedules with healing enabled:
// every seed must drain (the monitor either heals or condemns every watch,
// so background probing cannot keep the engine alive forever) and replay
// bit-identically, healing counters included.
func TestHealSoak(t *testing.T) {
	healedTotal, condemnedTotal := 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			first := runHealSoak(t, seed)
			replay := runHealSoak(t, seed)
			if first != replay {
				t.Errorf("seed %d heal timeline not reproducible:\n first: %+v\nreplay: %+v",
					seed, first, replay)
			}
			healedTotal += first.Healed
			condemnedTotal += first.Condemned
		})
	}
	if healedTotal+condemnedTotal == 0 {
		t.Log("no watches across 8 seeds — schedules never faulted the runs")
	}
}

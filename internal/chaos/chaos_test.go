package chaos

import (
	"strings"
	"testing"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "seed=42;down@5ms+20ms:edge=3;flap@1ms+8ms:edge=2,period=1ms;" +
		"degrade@0s+10ms:edge=1,scale=0.25;loss@2ms+30ms:edge=7,prob=0.3;" +
		"hold@1ms+5ms:edge=4,stall=2ms;crash@10ms:rank=2;hang@3ms+6ms:rank=1;" +
		"straggler@0s+40ms:rank=3,stall=500us"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 {
		t.Errorf("seed = %d, want 42", spec.Seed)
	}
	if len(spec.Faults) != 8 {
		t.Fatalf("parsed %d faults, want 8", len(spec.Faults))
	}
	respec, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", spec.String(), err)
	}
	if respec.Seed != spec.Seed || len(respec.Faults) != len(spec.Faults) {
		t.Fatalf("round trip changed the spec: %q vs %q", spec.String(), respec.String())
	}
	for i := range spec.Faults {
		if spec.Faults[i] != respec.Faults[i] {
			t.Errorf("fault %d changed across round trip: %+v vs %+v",
				i, spec.Faults[i], respec.Faults[i])
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := map[string]string{
		"explode@1ms:edge=0":         "unknown fault kind",
		"down@1ms":                   "needs edge=",
		"crash@1ms":                  "needs rank=",
		"flap@1ms+5ms:edge=0":        "needs period=",
		"flap@1ms:edge=0,period=1ms": "bounded",
		"degrade@1ms:edge=0,scale=2": "scale in (0,1)",
		"loss@1ms:edge=0,prob=0":     "prob in (0,1]",
		"hold@1ms:edge=0":            "needs stall=",
		"hang@1ms:rank=0":            "bounded",
		"down@xyz:edge=0":            "bad start",
		"down@1ms:edge=0,wat=1":      "unknown param",
		"seed=notanumber":            "bad seed",
		"straggler@1ms+2ms:rank=0":   "needs stall=",
		"down@1ms:edge=zero":         "bad edge",
	}
	for in, frag := range bad {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseSpec(%q) error %q lacks %q", in, err, frag)
		}
	}
}

// chaosEnv is a two-GPU, one-bidirectional-link fabric for injector tests.
func chaosEnv(t *testing.T) (*sim.Engine, *fabric.Fabric, topology.EdgeID, topology.EdgeID) {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 0})
	b := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 1})
	fwd, rev := g.AddBidirectional(topology.Edge{
		From: a, To: b, Type: topology.LinkNVLink, BandwidthBps: 1e9,
	})
	eng := sim.NewEngine(3)
	return eng, fabric.New(eng, g), fwd, rev
}

func TestLossWindowDrops(t *testing.T) {
	eng, fab, fwd, _ := chaosEnv(t)
	spec, err := ParseSpec("seed=1;loss@1ms+2ms:edge=0,prob=1")
	if err != nil {
		t.Fatal(err)
	}
	ch := New(eng, fab, nil, spec)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}
	var before, inside, after bool
	fab.Send(fwd, 1000, nil, func(any) { before = true })
	eng.At(2*time.Millisecond, func() {
		fab.Send(fwd, 1000, nil, func(any) { inside = true })
	})
	eng.At(4*time.Millisecond, func() {
		fab.Send(fwd, 1000, nil, func(any) { after = true })
	})
	eng.Run()
	if !before || !after {
		t.Errorf("deliveries outside the loss window: before=%v after=%v, want true/true", before, after)
	}
	if inside {
		t.Error("prob=1 loss window delivered a transfer")
	}
	if c := ch.Counters(); c.Drops != 1 {
		t.Errorf("Drops = %d, want 1", c.Drops)
	}
	if n := fab.ParkedTransfers(fwd); n != 1 {
		t.Errorf("ParkedTransfers = %d, want 1 (blackholed)", n)
	}
}

func TestHoldWindowDelays(t *testing.T) {
	eng, fab, fwd, _ := chaosEnv(t)
	spec, err := ParseSpec("hold@0s+10ms:edge=0,stall=3ms")
	if err != nil {
		t.Fatal(err)
	}
	ch := New(eng, fab, nil, spec)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}
	var at time.Duration = -1
	fab.Send(fwd, 1000, nil, func(any) { at = eng.Now() })
	eng.Run()
	if at < 0 {
		t.Fatal("held transfer never delivered")
	}
	if at < 3*time.Millisecond {
		t.Errorf("held transfer arrived at %v, want >= 3ms", at)
	}
	if c := ch.Counters(); c.Holds != 1 {
		t.Errorf("Holds = %d, want 1", c.Holds)
	}
}

func TestDownRestoresConfiguredScale(t *testing.T) {
	eng, fab, fwd, _ := chaosEnv(t)
	fab.SetScale(fwd, 0.5) // the experiment had degraded this link already
	spec, err := ParseSpec("down@1ms+2ms:edge=0")
	if err != nil {
		t.Fatal(err)
	}
	ch := New(eng, fab, nil, spec)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(2 * time.Millisecond)
	if s := fab.Scale(fwd); s != 0 {
		t.Errorf("scale during down window = %v, want 0", s)
	}
	eng.Run()
	if s := fab.Scale(fwd); s != 0.5 {
		t.Errorf("restored scale = %v, want the configured 0.5", s)
	}
	if c := ch.Counters(); c.ScaleEvents != 2 {
		t.Errorf("ScaleEvents = %d, want 2", c.ScaleEvents)
	}
}

func TestFlapTogglesAndHeals(t *testing.T) {
	eng, fab, fwd, _ := chaosEnv(t)
	spec, err := ParseSpec("flap@1ms+4ms:edge=0,period=1ms")
	if err != nil {
		t.Fatal(err)
	}
	ch := New(eng, fab, nil, spec)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if s := fab.Scale(fwd); s != 1 {
		t.Errorf("scale after flap window = %v, want healed 1", s)
	}
	if c := ch.Counters(); c.ScaleEvents < 4 {
		t.Errorf("ScaleEvents = %d, want >= 4 toggles", c.ScaleEvents)
	}
	// A transfer sent after the window is unaffected.
	ok := false
	fab.Send(fwd, 1000, nil, func(any) { ok = true })
	eng.Run()
	if !ok {
		t.Error("post-flap transfer never delivered")
	}
}

func TestArmRejectsBadTargets(t *testing.T) {
	eng, fab, _, _ := chaosEnv(t)
	spec, _ := ParseSpec("down@1ms:edge=99")
	if err := New(eng, fab, nil, spec).Arm(); err == nil {
		t.Error("Arm accepted an out-of-range edge")
	}
	spec, _ = ParseSpec("crash@1ms:rank=5")
	if err := New(eng, fab, nil, spec).Arm(); err == nil {
		t.Error("Arm accepted an unknown rank")
	}
}

func TestRandomSpecDeterministicAndValid(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 0})
	b := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 1})
	c := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 2})
	g.AddBidirectional(topology.Edge{From: a, To: b, Type: topology.LinkNVLink, BandwidthBps: 1e9})
	g.AddBidirectional(topology.Edge{From: b, To: c, Type: topology.LinkNVLink, BandwidthBps: 1e9})
	for seed := int64(1); seed <= 20; seed++ {
		s1 := RandomSpec(seed, g, 6, 20*time.Millisecond)
		s2 := RandomSpec(seed, g, 6, 20*time.Millisecond)
		if s1.String() != s2.String() {
			t.Fatalf("seed %d: RandomSpec not deterministic:\n%s\n%s", seed, s1, s2)
		}
		if len(s1.Faults) != 6 {
			t.Fatalf("seed %d: %d faults, want 6", seed, len(s1.Faults))
		}
		for _, f := range s1.Faults {
			if err := f.validate(); err != nil {
				t.Errorf("seed %d: invalid random fault %q: %v", seed, f, err)
			}
		}
		// The grammar must round-trip whatever RandomSpec draws.
		if _, err := ParseSpec(s1.String()); err != nil {
			t.Errorf("seed %d: RandomSpec output unparseable: %v", seed, err)
		}
	}
}

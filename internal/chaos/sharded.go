package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Sharded schedules a Spec against a partitioned fabric. The schedule is
// written in global terms — global edge ids, global ranks — and every fault
// is routed to the domain that owns its target: bandwidth transitions run
// as events on the owning domain's engine, and loss/hold verdicts draw from
// that domain's private rand. All mutable state is therefore partitioned by
// domain and touched only from that domain's events, which is what keeps a
// chaos-laden sweep bit-identical for any worker count (the per-domain rngs
// are consumed in domain event order, which sim.Parallel fixes).
//
// Supported kinds are the link faults (down/flap/degrade/loss/hold), crash
// (which kills every edge adjacent to the rank's GPU — all owned by one
// domain, since GPU-adjacent links never cross), and the congestion kinds
// (incast/hashcollide/pfcstorm, which need Sharded.EnableCongestion). Hang
// and straggler need the kernel model, which the scale sweep does not
// simulate; Arm rejects them with ErrUnsupportedKind rather than silently
// no-oping.
type Sharded struct {
	sh   *fabric.Sharded
	part *topology.Partition
	spec Spec

	rngs []*rand.Rand
	// lossWin/holdWin are read-only after Arm: windows are looked up from
	// many domains concurrently, but never mutated during Run.
	lossWin map[topology.EdgeID][]window
	holdWin map[topology.EdgeID][]window
	// saved and counters are per-domain, each entry owned by its domain.
	saved    []map[topology.EdgeID]float64
	counters []Counters
	armed    bool
}

// NewSharded builds a chaos engine over a partitioned fabric. Nothing
// happens until Arm.
func NewSharded(sh *fabric.Sharded, spec Spec) *Sharded {
	part := sh.Partition()
	e := &Sharded{
		sh:       sh,
		part:     part,
		spec:     spec,
		rngs:     make([]*rand.Rand, part.Domains),
		lossWin:  make(map[topology.EdgeID][]window),
		holdWin:  make(map[topology.EdgeID][]window),
		saved:    make([]map[topology.EdgeID]float64, part.Domains),
		counters: make([]Counters, part.Domains),
	}
	for d := 0; d < part.Domains; d++ {
		e.rngs[d] = rand.New(rand.NewSource(spec.Seed + int64(d+1)*0x517cc1b727220a95))
		e.saved[d] = make(map[topology.EdgeID]float64)
	}
	return e
}

// Spec returns the armed schedule.
func (e *Sharded) Spec() Spec { return e.spec }

// Counters folds the per-domain injection tallies. Only meaningful once Run
// has returned (or before it starts).
func (e *Sharded) Counters() Counters {
	var out Counters
	for _, c := range e.counters {
		out.ScaleEvents += c.ScaleEvents
		out.Drops += c.Drops
		out.Holds += c.Holds
		out.KernelStalls += c.KernelStalls
		out.CongestEvents += c.CongestEvents
	}
	return out
}

// Arm validates the spec against the global graph, installs the sharded
// injector, and schedules every fault on its owning domain's engine,
// relative to that engine's current virtual time. Arm may be called once,
// before Run.
func (e *Sharded) Arm() error {
	if e.armed {
		return fmt.Errorf("chaos: already armed")
	}
	g := e.part.Graph
	for _, f := range e.spec.Faults {
		if f.Edge >= 0 && int(f.Edge) >= g.NumEdges() {
			return fmt.Errorf("chaos: fault %q targets edge %d of a %d-edge graph",
				f.String(), f.Edge, g.NumEdges())
		}
		switch f.Kind {
		case Hang, Straggler:
			return fmt.Errorf("chaos: %w: %s faults need the kernel model, which the sharded sweep does not simulate (fault %q)",
				ErrUnsupportedKind, f.Kind, f.String())
		case Crash:
			if _, ok := g.GPUByRank(f.Rank); !ok {
				return fmt.Errorf("chaos: fault %q targets unknown rank %d", f.String(), f.Rank)
			}
		}
		if f.Kind.congestKind() {
			if e.sh.Congestion() == nil {
				return fmt.Errorf("chaos: %w: %s fault %q needs the congestion plane (Sharded.EnableCongestion)",
					ErrUnsupportedKind, f.Kind, f.String())
			}
			if f.Kind == PFCStorm && f.Edge < 0 {
				if _, ok := podUplink(g, f.Pod); !ok {
					return fmt.Errorf("chaos: fault %q targets pod %d, which has no switch uplink",
						f.String(), f.Pod)
				}
			}
		}
	}
	e.armed = true
	for _, f := range e.spec.Faults {
		e.arm(f)
	}
	e.sh.SetInjector(e)
	return nil
}

// domainOf returns the domain owning an edge fault's target.
func (e *Sharded) domainOf(ge topology.EdgeID) int { return e.part.EdgeDomain[ge] }

func (e *Sharded) arm(f Fault) {
	switch f.Kind {
	case LinkDown, LinkFlap, Degrade:
		d := e.domainOf(f.Edge)
		eng := e.sh.Engine(d)
		now := eng.Now()
		start := now + f.Start
		end := sim.Time(0)
		if f.Dur > 0 {
			end = start + f.Dur
		}
		switch f.Kind {
		case LinkDown:
			eng.Do(start, func() { e.setScale(d, f.Edge, 0) })
			if end != 0 {
				eng.Do(end, func() { e.restoreScale(d, f.Edge) })
			}
		case LinkFlap:
			downNow := true
			for t := start; t < end; t += f.Period {
				if downNow {
					eng.Do(t, func() { e.setScale(d, f.Edge, 0) })
				} else {
					eng.Do(t, func() { e.restoreScale(d, f.Edge) })
				}
				downNow = !downNow
			}
			eng.Do(end, func() { e.restoreScale(d, f.Edge) })
		case Degrade:
			scale := f.Scale
			eng.Do(start, func() { e.setScale(d, f.Edge, scale) })
			if end != 0 {
				eng.Do(end, func() { e.restoreScale(d, f.Edge) })
			}
		}
	case Loss, Hold:
		d := e.domainOf(f.Edge)
		start := e.sh.Engine(d).Now() + f.Start
		end := sim.Time(0)
		if f.Dur > 0 {
			end = start + f.Dur
		}
		if f.Kind == Loss {
			e.lossWin[f.Edge] = append(e.lossWin[f.Edge], window{start: start, end: end, prob: f.Prob})
		} else {
			e.holdWin[f.Edge] = append(e.holdWin[f.Edge], window{start: start, end: end, delay: f.Stall})
		}
	case Crash:
		// Every edge adjacent to the GPU is intra-server, hence owned by
		// the rank's home domain: one event there kills them all.
		id, ok := e.part.Graph.GPUByRank(f.Rank)
		if !ok {
			return
		}
		d := e.part.NodeDomain[id]
		eng := e.sh.Engine(d)
		start := eng.Now() + f.Start
		edges := append([]topology.EdgeID(nil), e.part.Graph.Out(id)...)
		edges = append(edges, e.part.Graph.In(id)...)
		eng.Do(start, func() {
			for _, ge := range edges {
				e.setScale(d, ge, 0)
			}
		})
	case Incast, HashCollide, PFCStorm:
		ge := f.Edge
		if ge < 0 {
			ge, _ = podUplink(e.part.Graph, f.Pod) // validated in Arm
		}
		d := e.domainOf(ge)
		eng := e.sh.Engine(d)
		now := eng.Now()
		start := now + f.Start
		end := sim.Time(0)
		if f.Dur > 0 {
			end = start + f.Dur
		}
		sc := e.sh.Congestion()
		switch f.Kind {
		case Incast:
			fanin := f.Fanin
			if fanin <= 0 {
				fanin = defaultFanin
			}
			load := int64(fanin) * incastFlowBytes
			eng.Do(start, func() { sc.SetPhantomGlobal(ge, load); e.counters[d].CongestEvents++ })
			if end != 0 {
				eng.Do(end, func() { sc.SetPhantomGlobal(ge, 0); e.counters[d].CongestEvents++ })
			}
		case HashCollide:
			scale := f.Scale
			if scale <= 0 || scale >= 1 {
				scale = 0.5
			}
			eng.Do(start, func() { sc.SetCollisionGlobal(ge, scale); e.counters[d].CongestEvents++ })
			if end != 0 {
				eng.Do(end, func() { sc.SetCollisionGlobal(ge, 1); e.counters[d].CongestEvents++ })
			}
		case PFCStorm:
			eng.Do(start, func() { sc.ForcePauseGlobal(ge, true); e.counters[d].CongestEvents++ })
			if end != 0 {
				eng.Do(end, func() { sc.ForcePauseGlobal(ge, false); e.counters[d].CongestEvents++ })
			}
		}
	}
}

// setScale collapses a global edge's bandwidth from its owning domain,
// remembering the healthy value once so restores return what the
// experiment had configured.
func (e *Sharded) setScale(d int, ge topology.EdgeID, scale float64) {
	if _, ok := e.saved[d][ge]; !ok {
		e.saved[d][ge] = e.sh.ScaleGlobal(ge)
	}
	e.sh.SetScaleGlobal(ge, scale)
	e.counters[d].ScaleEvents++
}

func (e *Sharded) restoreScale(d int, ge topology.EdgeID) {
	prev, ok := e.saved[d][ge]
	if !ok {
		return
	}
	e.sh.SetScaleGlobal(ge, prev)
	e.counters[d].ScaleEvents++
}

// Admit implements fabric.Injector over global edge ids (the sharded fabric
// translates each domain's local admissions before calling here). The
// clock, the rand, and the counters are all the owning domain's own, so
// concurrent admissions from different domains never share state.
func (e *Sharded) Admit(ge topology.EdgeID, size int64) (fabric.Verdict, time.Duration) {
	d := e.part.EdgeDomain[ge]
	now := e.sh.Engine(d).Now()
	for _, w := range e.lossWin[ge] {
		if w.covers(now) && e.rngs[d].Float64() < w.prob {
			e.counters[d].Drops++
			return fabric.VerdictDrop, 0
		}
	}
	for _, w := range e.holdWin[ge] {
		if w.covers(now) {
			e.counters[d].Holds++
			return fabric.VerdictHold, w.delay
		}
	}
	return fabric.VerdictPass, 0
}

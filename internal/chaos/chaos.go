package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"adapcc/internal/device"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// ChaosPID is the trace process id of the chaos track (the executor uses
// 1..N for ranks and 10000 for the network).
const ChaosPID = 20000

// crashStall is the kernel delay modelling a dead worker: far beyond any
// stall timeout, finite so the engine still drains.
const crashStall = 1e6 * time.Second

// ErrUnsupportedKind marks a fault kind the arming engine cannot simulate
// (e.g. kernel-model kinds on the sharded sweep, or congestion kinds on a
// fabric without the congestion plane). Callers detect it with errors.Is
// and can degrade gracefully instead of treating the spec as malformed.
var ErrUnsupportedKind = errors.New("fault kind unsupported by this engine")

// Incast defaults applied at arm time: an unspecified fan-in counts 8
// senders, each contributing one 256 KiB flow of standing queue load.
const (
	defaultFanin    = 8
	incastFlowBytes = 256 << 10
)

// Counters tallies what the engine actually did — the observability side of
// injection, matched against the executor's RecoveryStats in tests.
type Counters struct {
	// ScaleEvents counts bandwidth re-scales fired (down/flap/degrade
	// transitions, crash link kills, restorations included).
	ScaleEvents int
	// Drops / Holds count transfers blackholed / parked by Admit.
	Drops int
	Holds int
	// KernelStalls counts kernels that were given extra latency.
	KernelStalls int
	// CongestEvents counts congestion-plane transitions fired (incast /
	// hashcollide / pfcstorm window edges).
	CongestEvents int
}

// Engine schedules a Spec against a fabric and its devices. All
// probabilistic decisions come from a rand seeded by Spec.Seed and are
// consumed in deterministic simulation order, so a fixed (spec, workload)
// pair replays one bit-identical timeline.
type Engine struct {
	eng  *sim.Engine
	fab  *fabric.Fabric
	g    *topology.Graph
	gpus map[int]*device.GPU
	rng  *rand.Rand
	spec Spec

	lossWin  map[topology.EdgeID][]window
	holdWin  map[topology.EdgeID][]window
	saved    map[topology.EdgeID]float64 // pre-fault scale, for restoration
	stalls   map[int][]stallRule
	counters Counters
	tracer   *trace.Tracer
	cm       *chaosMetrics // nil when metrics are disabled
	armed    bool
}

// chaosMetrics mirrors Counters into a metrics registry, stamped with the
// virtual time each injection fired (see SetMetrics).
type chaosMetrics struct {
	scaleEvents   *metrics.Counter
	drops         *metrics.Counter
	holds         *metrics.Counter
	kernelStalls  *metrics.Counter
	congestEvents *metrics.Counter
}

// window is an edge-local fault interval. end of 0 means open-ended.
type window struct {
	start, end sim.Time
	prob       float64
	delay      time.Duration
}

func (w window) covers(now sim.Time) bool {
	return now >= w.start && (w.end == 0 || now < w.end)
}

// stallRule is a worker-local kernel-delay interval.
type stallRule struct {
	start, end sim.Time // end of 0 means forever (crash)
	delay      time.Duration
	untilEnd   bool // hang: stall to the end of the window, not a fixed delay
}

// New builds a chaos engine for a fabric and its GPUs. Nothing happens
// until Arm.
func New(eng *sim.Engine, fab *fabric.Fabric, gpus map[int]*device.GPU, spec Spec) *Engine {
	return &Engine{
		eng:     eng,
		fab:     fab,
		g:       fab.Graph(),
		gpus:    gpus,
		rng:     rand.New(rand.NewSource(spec.Seed)),
		spec:    spec,
		lossWin: make(map[topology.EdgeID][]window),
		holdWin: make(map[topology.EdgeID][]window),
		saved:   make(map[topology.EdgeID]float64),
		stalls:  make(map[int][]stallRule),
	}
}

// SetTracer mirrors injected faults onto a trace track ("chaos" category).
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// SetMetrics mirrors the injection counters into a metrics registry (nil
// removes it), so chaos activity appears next to the recovery metrics it
// provokes.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		e.cm = nil
		return
	}
	e.cm = &chaosMetrics{
		scaleEvents: reg.Counter("adapcc_chaos_scale_events_total",
			"bandwidth re-scales fired by the chaos engine"),
		drops: reg.Counter("adapcc_chaos_drops_total",
			"transfers blackholed by injected loss"),
		holds: reg.Counter("adapcc_chaos_holds_total",
			"transfers parked by injected stalls"),
		kernelStalls: reg.Counter("adapcc_chaos_kernel_stalls_total",
			"kernels delayed by straggler/hang injection"),
		congestEvents: reg.Counter("adapcc_chaos_congest_events_total",
			"congestion-plane transitions fired (incast/hashcollide/pfcstorm)"),
	}
}

// Counters returns a snapshot of injection activity.
func (e *Engine) Counters() Counters { return e.counters }

// Spec returns the armed schedule.
func (e *Engine) Spec() Spec { return e.spec }

// Arm validates the spec against the topology, installs the fabric
// injector and device stall hooks, and schedules every fault relative to
// the current virtual time. Arm may be called once.
func (e *Engine) Arm() error {
	if e.armed {
		return fmt.Errorf("chaos: already armed")
	}
	for _, f := range e.spec.Faults {
		if f.Edge >= 0 && int(f.Edge) >= e.g.NumEdges() {
			return fmt.Errorf("chaos: fault %q targets edge %d of a %d-edge graph",
				f.String(), f.Edge, e.g.NumEdges())
		}
		if f.Rank >= 0 {
			if _, ok := e.gpus[f.Rank]; !ok {
				return fmt.Errorf("chaos: fault %q targets unknown rank %d", f.String(), f.Rank)
			}
		}
		if f.Kind.congestKind() {
			if e.fab.Congestion() == nil {
				return fmt.Errorf("chaos: %w: %s fault %q needs the congestion plane (fabric.EnableCongestion)",
					ErrUnsupportedKind, f.Kind, f.String())
			}
			if f.Kind == PFCStorm && f.Edge < 0 {
				if _, ok := e.podUplink(f.Pod); !ok {
					return fmt.Errorf("chaos: fault %q targets pod %d, which has no switch uplink",
						f.String(), f.Pod)
				}
			}
		}
	}
	e.armed = true
	now := e.eng.Now()
	for _, f := range e.spec.Faults {
		e.arm(f, now)
	}
	e.fab.SetInjector(e)
	for rank, gpu := range e.gpus {
		if rules := e.stalls[rank]; len(rules) > 0 {
			gpu.SetKernelStall(e.stallFn(rules))
		}
	}
	return nil
}

func (e *Engine) arm(f Fault, now sim.Time) {
	start := now + f.Start
	end := sim.Time(0)
	if f.Dur > 0 {
		end = start + f.Dur
	}
	switch f.Kind {
	case LinkDown:
		e.eng.Do(start, func() { e.setScale(f.Edge, 0, "down") })
		if end != 0 {
			e.eng.Do(end, func() { e.restoreScale(f.Edge, "up") })
		}
	case LinkFlap:
		downNow := true
		for t := start; t < end; t += f.Period {
			if downNow {
				e.eng.Do(t, func() { e.setScale(f.Edge, 0, "flap-down") })
			} else {
				e.eng.Do(t, func() { e.restoreScale(f.Edge, "flap-up") })
			}
			downNow = !downNow
		}
		e.eng.Do(end, func() { e.restoreScale(f.Edge, "flap-end") })
	case Degrade:
		scale := f.Scale
		e.eng.Do(start, func() { e.setScale(f.Edge, scale, "degrade") })
		if end != 0 {
			e.eng.Do(end, func() { e.restoreScale(f.Edge, "restore") })
		}
	case Loss:
		e.lossWin[f.Edge] = append(e.lossWin[f.Edge], window{start: start, end: end, prob: f.Prob})
	case Hold:
		e.holdWin[f.Edge] = append(e.holdWin[f.Edge], window{start: start, end: end, delay: f.Stall})
	case Crash:
		rank := f.Rank
		e.eng.Do(start, func() { e.crash(rank) })
		e.stalls[rank] = append(e.stalls[rank], stallRule{start: start, delay: crashStall})
	case Hang:
		e.stalls[f.Rank] = append(e.stalls[f.Rank], stallRule{start: start, end: end, untilEnd: true})
	case Straggler:
		e.stalls[f.Rank] = append(e.stalls[f.Rank], stallRule{start: start, end: end, delay: f.Stall})
	case Incast:
		fanin := f.Fanin
		if fanin <= 0 {
			fanin = defaultFanin
		}
		load := int64(fanin) * incastFlowBytes
		edge := f.Edge
		e.eng.Do(start, func() {
			e.congestEvent(edge, fmt.Sprintf("incast on (%d B)", load), func(c *fabric.Congest) {
				c.SetPhantom(edge, load)
			})
		})
		if end != 0 {
			e.eng.Do(end, func() {
				e.congestEvent(edge, "incast off", func(c *fabric.Congest) { c.SetPhantom(edge, 0) })
			})
		}
	case HashCollide:
		scale := f.Scale
		if scale <= 0 || scale >= 1 {
			scale = 0.5
		}
		edge := f.Edge
		e.eng.Do(start, func() {
			e.congestEvent(edge, fmt.Sprintf("hashcollide on (×%g)", scale), func(c *fabric.Congest) {
				c.SetCollision(edge, scale)
			})
		})
		if end != 0 {
			e.eng.Do(end, func() {
				e.congestEvent(edge, "hashcollide off", func(c *fabric.Congest) { c.SetCollision(edge, 1) })
			})
		}
	case PFCStorm:
		edge := f.Edge
		if edge < 0 {
			edge, _ = e.podUplink(f.Pod) // validated in Arm
		}
		e.eng.Do(start, func() {
			e.congestEvent(edge, "pfcstorm on", func(c *fabric.Congest) { c.ForcePause(edge, true) })
		})
		if end != 0 {
			e.eng.Do(end, func() {
				e.congestEvent(edge, "pfcstorm off", func(c *fabric.Congest) { c.ForcePause(edge, false) })
			})
		}
	}
}

// congestEvent applies one congestion-plane transition, counting and
// tracing it like the scale-event path does.
func (e *Engine) congestEvent(edge topology.EdgeID, what string, fn func(*fabric.Congest)) {
	fn(e.fab.Congestion())
	e.counters.CongestEvents++
	if e.cm != nil {
		e.cm.congestEvents.Inc(e.eng.Now())
	}
	e.traceInstant(fmt.Sprintf("%s edge %d", what, edge), int(edge))
}

// podUplink resolves a pod id to the pod's first leaf→spine uplink (lowest
// edge id): the port a pfcstorm targets when given pod= instead of edge=.
func (e *Engine) podUplink(pod int) (topology.EdgeID, bool) {
	return podUplink(e.g, pod)
}

func podUplink(g *topology.Graph, pod int) (topology.EdgeID, bool) {
	for _, ed := range g.Edges() {
		if ed.Type.Network() &&
			g.Node(ed.From).Kind == topology.KindSwitch && g.Node(ed.From).Index == pod &&
			g.Node(ed.To).Kind == topology.KindSwitch {
			return ed.ID, true
		}
	}
	return 0, false
}

// crash kills every link touching the rank's GPU node, both directions.
func (e *Engine) crash(rank int) {
	id, ok := e.g.GPUByRank(rank)
	if !ok {
		return
	}
	for _, eid := range e.g.Out(id) {
		e.setScale(eid, 0, "crash")
	}
	for _, eid := range e.g.In(id) {
		e.setScale(eid, 0, "crash")
	}
	e.traceInstant(fmt.Sprintf("crash rank %d", rank), int(id))
}

// setScale zeroes/collapses an edge, remembering the healthy value once so
// flap and nested windows restore what the experiment had configured, not
// a hardcoded 1.0.
func (e *Engine) setScale(edge topology.EdgeID, scale float64, what string) {
	if _, ok := e.saved[edge]; !ok {
		e.saved[edge] = e.fab.Scale(edge)
	}
	e.fab.SetScale(edge, scale)
	e.counters.ScaleEvents++
	if e.cm != nil {
		e.cm.scaleEvents.Inc(e.eng.Now())
	}
	e.traceInstant(fmt.Sprintf("%s edge %d (scale %g)", what, edge, scale), int(edge))
}

func (e *Engine) restoreScale(edge topology.EdgeID, what string) {
	prev, ok := e.saved[edge]
	if !ok {
		return // restore without a preceding fault transition: no-op
	}
	e.fab.SetScale(edge, prev)
	e.counters.ScaleEvents++
	if e.cm != nil {
		e.cm.scaleEvents.Inc(e.eng.Now())
	}
	e.traceInstant(fmt.Sprintf("%s edge %d (scale %g)", what, edge, prev), int(edge))
}

// Admit implements fabric.Injector: consulted once per transfer entering a
// link, it applies the loss and hold windows covering the current instant.
func (e *Engine) Admit(edge topology.EdgeID, size int64) (fabric.Verdict, time.Duration) {
	now := e.eng.Now()
	for _, w := range e.lossWin[edge] {
		if w.covers(now) && e.rng.Float64() < w.prob {
			e.counters.Drops++
			if e.cm != nil {
				e.cm.drops.Inc(now)
			}
			e.traceInstant(fmt.Sprintf("drop %dB edge %d", size, edge), int(edge))
			return fabric.VerdictDrop, 0
		}
	}
	for _, w := range e.holdWin[edge] {
		if w.covers(now) {
			e.counters.Holds++
			if e.cm != nil {
				e.cm.holds.Inc(now)
			}
			e.traceInstant(fmt.Sprintf("hold %dB edge %d for %v", size, edge, w.delay), int(edge))
			return fabric.VerdictHold, w.delay
		}
	}
	return fabric.VerdictPass, 0
}

// stallFn composes a rank's stall rules into the single device hook: the
// largest applicable delay wins (a crashed worker is not rescued by an
// overlapping straggler window).
func (e *Engine) stallFn(rules []stallRule) func(now sim.Time) time.Duration {
	return func(now sim.Time) time.Duration {
		var d time.Duration
		for _, r := range rules {
			if now < r.start || (r.end != 0 && now >= r.end) {
				continue
			}
			delay := r.delay
			if r.untilEnd {
				delay = r.end - now
			}
			if delay > d {
				d = delay
			}
		}
		if d > 0 {
			e.counters.KernelStalls++
			if e.cm != nil {
				e.cm.kernelStalls.Inc(now)
			}
		}
		return d
	}
}

func (e *Engine) traceInstant(name string, tid int) {
	if e.tracer == nil {
		return
	}
	e.tracer.Add(trace.Event{
		Name:  name,
		Cat:   "chaos",
		PID:   ChaosPID,
		TID:   tid,
		Start: e.eng.Now(),
		Phase: trace.Instant,
	})
}

package chaos_test

import (
	"fmt"
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/chaos"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// soakOutcome is everything a soak run observes; two runs of the same seed
// must produce identical outcomes (invariant 7: determinism under a fixed
// chaos seed).
type soakOutcome struct {
	Err       string
	Attempts  int
	Events    int
	Survivors string
	Elapsed   time.Duration
	Chaos     chaos.Counters
	Recovery  collective.RecoveryStats
	SumProbe  float32 // out[0] on the lowest survivor, AllReduce only
}

// soakRecovery keeps detection latencies small so a soak run's virtual
// timeline stays in the tens of milliseconds.
func soakRecovery() collective.Recovery {
	return collective.Recovery{
		DeadlineMult:  2,
		DeadlineFloor: 200 * time.Microsecond,
		MaxRetries:    3,
		Backoff:       100 * time.Microsecond,
		StallTimeout:  50 * time.Millisecond,
	}
}

// runSoak executes one seeded chaos schedule against one primitive on the
// heterogeneous testbed and verifies the recovery contract: the engine
// drains (no hang), completion implies correct aggregates over exactly the
// surviving ranks, and failure is a clean exclusion error.
func runSoak(t *testing.T, seed int64, prim strategy.Primitive) soakOutcome {
	t.Helper()
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(env, core.WithSkipProfiling())
	if err != nil {
		t.Fatal(err)
	}
	spec := chaos.RandomSpec(seed, env.Graph, 4, 10*time.Millisecond)
	ch := chaos.New(env.Engine, env.Fabric, env.GPUs, spec)
	if err := ch.Arm(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	ranks := env.AllRanks()
	const bytes = 1 << 20
	inputs := backend.MakeInputs(ranks, bytes)
	var res core.ResilientResult
	var resErr error
	done := false
	err = a.RunResilient(backend.Request{
		Primitive: prim, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r core.ResilientResult, err error) {
		res, resErr, done = r, err, true
	}, core.WithRecovery(soakRecovery()))
	if err != nil {
		t.Fatalf("seed %d: RunResilient: %v", seed, err)
	}
	env.Engine.Run() // a hang here is a failed soak: the engine must drain
	if !done {
		t.Fatalf("seed %d: neither completion nor clean failure", seed)
	}

	out := soakOutcome{
		Attempts:  res.Attempts,
		Events:    len(res.Events),
		Survivors: fmt.Sprint(res.Survivors),
		Elapsed:   res.Elapsed,
		Chaos:     ch.Counters(),
		Recovery:  env.Exec.RecoveryStats(),
	}
	if resErr != nil {
		out.Err = resErr.Error()
		return out
	}

	// Completion: every survivor must hold a full-length output, and for
	// AllReduce the values must be the exact sum over the survivor set —
	// which also proves no chunk was aggregated twice (a double delivery
	// would inflate the sums).
	elems := int(bytes / 4)
	if len(res.Survivors) < 2 {
		t.Fatalf("seed %d: completed with %d survivors", seed, len(res.Survivors))
	}
	for _, r := range res.Survivors {
		o := res.Result.Outputs[r]
		if len(o) != elems {
			t.Fatalf("seed %d: survivor %d output has %d elems, want %d", seed, r, len(o), elems)
		}
	}
	if prim == strategy.AllReduce {
		want := make([]float32, elems)
		for _, r := range res.Survivors {
			for i, v := range inputs[r] {
				want[i] += v
			}
		}
		for _, r := range res.Survivors {
			o := res.Result.Outputs[r]
			for i := 0; i < elems; i += 251 {
				diff := o[i] - want[i]
				if diff < -1e-3 || diff > 1e-3 {
					t.Fatalf("seed %d: survivor %d elem %d = %v, want %v (survivors %v)",
						seed, r, i, o[i], want[i], res.Survivors)
				}
			}
		}
		out.SumProbe = res.Result.Outputs[res.Survivors[0]][0]
	}
	return out
}

// TestChaosSoak: for each seed, a random fault schedule (link down/flap,
// bandwidth collapse, chunk loss/stall, worker crash/hang, stragglers) runs
// against AllReduce and AlltoAll on the heterogeneous testbed. Every run
// must terminate — completing with correct aggregates over the survivors or
// cleanly reporting an exclusion error — and replaying a seed must
// reproduce its timeline bit-identically.
func TestChaosSoak(t *testing.T) {
	prims := []struct {
		name string
		p    strategy.Primitive
	}{
		{"AllReduce", strategy.AllReduce},
		{"AlltoAll", strategy.AlltoAll},
	}
	completed, recovered, injected := 0, 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		for _, pr := range prims {
			pr := pr
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", pr.name, seed), func(t *testing.T) {
				first := runSoak(t, seed, pr.p)
				replay := runSoak(t, seed, pr.p)
				if first != replay {
					t.Errorf("seed %d timeline not reproducible:\n first: %+v\nreplay: %+v",
						seed, first, replay)
				}
				injected += first.Chaos.ScaleEvents + first.Chaos.Drops +
					first.Chaos.Holds + first.Chaos.KernelStalls
				recovered += first.Recovery.Deadlines + first.Recovery.LinkFaults +
					first.Recovery.StallFaults
				if first.Err == "" {
					completed++
				} else {
					t.Logf("seed %d %s cleanly failed: %s", seed, pr.name, first.Err)
				}
			})
		}
	}
	if completed == 0 {
		t.Error("no soak run completed a collective — schedules may be unrecoverable by construction")
	}
	if injected == 0 {
		t.Error("no chaos activity across 8 seeds — the schedules never touched the runs")
	}
	if recovered == 0 {
		t.Error("no detection activity across 8 seeds — faults were injected but never observed")
	}
}

package relay

import (
	"time"
)

// Decision is the coordinator's per-cycle choice.
type Decision int

// Coordinator decisions.
const (
	// DecideWait keeps waiting for stragglers (renting).
	DecideWait Decision = iota + 1
	// DecideProceed triggers phase-1 partial communication among ready
	// workers (buying).
	DecideProceed
)

// String names the decision for logs and tests.
func (d Decision) String() string {
	if d == DecideProceed {
		return "proceed"
	}
	return "wait"
}

// BreakEven is the deterministic ski-rental policy of Sec. IV-C(1): keep
// waiting while the accumulated waiting cost is below the current buying
// cost; buy (start partial communication) once it would exceed it. The
// classic analysis gives this rule a competitive ratio of 2.
//
// Waiting cost accumulates one cycle per decision cycle. The buying cost —
// the estimated time of phase 1 + phase 2 — varies between cycles as more
// workers become ready, so it is re-evaluated at every decision.
type BreakEven struct{}

// Decide returns DecideProceed when the waited duration has reached the
// current buying cost.
func (BreakEven) Decide(waited, buyCost time.Duration) Decision {
	if waited >= buyCost {
		return DecideProceed
	}
	return DecideWait
}

// AlwaysWait is the baseline policy of existing libraries (NCCL): always
// wait for every worker. Used by the relay-policy ablation bench.
type AlwaysWait struct{}

// Decide always returns DecideWait.
func (AlwaysWait) Decide(waited, buyCost time.Duration) Decision { return DecideWait }

// AlwaysProceed starts partial communication at the first decision cycle.
// Used by the relay-policy ablation bench.
type AlwaysProceed struct{}

// Decide always returns DecideProceed.
func (AlwaysProceed) Decide(waited, buyCost time.Duration) Decision { return DecideProceed }

// Policy abstracts the wait-vs-proceed rule.
type Policy interface {
	Decide(waited, buyCost time.Duration) Decision
}

var (
	_ Policy = BreakEven{}
	_ Policy = AlwaysWait{}
	_ Policy = AlwaysProceed{}
)

// CostEstimator predicts communication times for the coordinator's buying
// cost (Sec. IV-C: S divided by the aggregate bandwidth B of the graph).
type CostEstimator interface {
	// PartialTime estimates phase 1: the collective among the ready
	// workers, with the given relays assisting.
	PartialTime(ready, relays []int) time.Duration
	// CatchupTime estimates phase 2: broadcasting the late workers'
	// tensors and locally combining them.
	CatchupTime(late []int) time.Duration
	// FullTime estimates the collective over all workers at once.
	FullTime(all []int) time.Duration
}

// VolumeEstimator is the paper's closed-form estimate: communicated volume
// S over aggregate bandwidth B, where S depends on the primitive
// (AllReduce: 2(N−1)×tensor, AlltoAll: N×tensor, Broadcast: tensor) and B
// accumulates the profiled link bandwidth available to the participant
// set.
type VolumeEstimator struct {
	// TensorBytes is each worker's tensor size.
	TensorBytes int64
	// Volume computes S for n participating workers.
	Volume func(tensorBytes int64, n int) int64
	// BandwidthBps returns the aggregate bandwidth B of a worker set
	// (with relays contributing their links).
	BandwidthBps func(ready, relays []int) float64
}

var _ CostEstimator = (*VolumeEstimator)(nil)

// AllReduceVolume is S = 2(N−1) × tensor.
func AllReduceVolume(tensorBytes int64, n int) int64 {
	if n < 2 {
		return 0
	}
	return 2 * int64(n-1) * tensorBytes
}

// AlltoAllVolume is S = N × tensor.
func AlltoAllVolume(tensorBytes int64, n int) int64 { return int64(n) * tensorBytes }

// BroadcastVolume is S = tensor.
func BroadcastVolume(tensorBytes int64, n int) int64 { return tensorBytes }

// PartialTime implements CostEstimator.
func (e *VolumeEstimator) PartialTime(ready, relays []int) time.Duration {
	return e.est(e.Volume(e.TensorBytes, len(ready)), ready, relays)
}

// CatchupTime implements CostEstimator: phase 2 broadcasts each late
// worker's tensor to the group and merges locally.
func (e *VolumeEstimator) CatchupTime(late []int) time.Duration {
	if len(late) == 0 {
		return 0
	}
	return e.est(int64(len(late))*e.TensorBytes, late, nil)
}

// FullTime implements CostEstimator.
func (e *VolumeEstimator) FullTime(all []int) time.Duration {
	return e.est(e.Volume(e.TensorBytes, len(all)), all, nil)
}

func (e *VolumeEstimator) est(volume int64, ready, relays []int) time.Duration {
	if volume <= 0 {
		return 0
	}
	bw := e.BandwidthBps(ready, relays)
	if bw <= 0 {
		return time.Hour // effectively infinite: never worth buying
	}
	return time.Duration(float64(volume) / bw * float64(time.Second))
}

package relay

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// fig7Graph reproduces the paper's Fig. 7 scenario: a 4-GPU reduce chain
// GPU3 → GPU1, GPU2 → GPU1, GPU1 → GPU0 where GPU1 may act as a relay. All
// four GPUs share one server with a full NVLink mesh.
func fig7Graph(t *testing.T) (*topology.Graph, strategy.SubCollective) {
	t.Helper()
	c, err := topology.NewCluster(topology.TransportRDMA, topology.ServerSpec{
		GPUs: []topology.GPUModel{topology.GPUA100, topology.GPUA100, topology.GPUA100, topology.GPUA100},
		NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	node := func(rank int) topology.NodeID {
		id, ok := g.GPUByRank(rank)
		if !ok {
			t.Fatalf("rank %d missing", rank)
		}
		return id
	}
	sc := strategy.SubCollective{
		ID: 0, Bytes: 1 << 20, ChunkBytes: 1 << 18, Root: 0,
		Flows: []strategy.Flow{
			{ID: 0, SrcRank: 2, DstRank: 1, Path: []topology.NodeID{node(2), node(1)}},
			{ID: 1, SrcRank: 3, DstRank: 1, Path: []topology.NodeID{node(3), node(1)}},
			{ID: 2, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{node(1), node(0)}},
		},
	}
	return g, sc
}

func TestTuplesAllActive(t *testing.T) {
	g, sc := fig7Graph(t)
	active := map[int]bool{0: true, 1: true, 2: true, 3: true}
	tuples := Tuples(g, &sc, strategy.Reduce, active)
	want := map[int]Tuple{
		0: {IsActive: true, HasRecv: true, HasKernel: true, HasSend: false},
		1: {IsActive: true, HasRecv: true, HasKernel: true, HasSend: true},
		2: {IsActive: true, HasRecv: false, HasKernel: false, HasSend: true},
		3: {IsActive: true, HasRecv: false, HasKernel: false, HasSend: true},
	}
	for rank, w := range want {
		if got := tuples[rank]; got != w {
			t.Errorf("rank %d tuple = %+v, want %+v", rank, got, w)
		}
	}
}

// TestTuplesFig7b reproduces Fig. 7(b): GPU1 is a relay (inactive). With
// both GPU2 and GPU3 active, GPU1 still aggregates their two streams; GPU0
// aggregates the merged stream with its local data.
func TestTuplesFig7b(t *testing.T) {
	g, sc := fig7Graph(t)
	active := map[int]bool{0: true, 1: false, 2: true, 3: true}
	tuples := Tuples(g, &sc, strategy.Reduce, active)
	want := map[int]Tuple{
		0: {IsActive: true, HasRecv: true, HasKernel: true, HasSend: false},
		1: {IsActive: false, HasRecv: true, HasKernel: true, HasSend: true},
		2: {IsActive: true, HasRecv: false, HasKernel: false, HasSend: true},
		3: {IsActive: true, HasRecv: false, HasKernel: false, HasSend: true},
	}
	for rank, w := range want {
		if got := tuples[rank]; got != w {
			t.Errorf("rank %d tuple = %+v, want %+v", rank, got, w)
		}
	}
}

// TestTuplesRelaySingleStream: only GPU3 active upstream of relay GPU1 —
// the paper's rule (2): the relay forwards without launching a kernel.
func TestTuplesRelaySingleStream(t *testing.T) {
	g, sc := fig7Graph(t)
	active := map[int]bool{0: true, 1: false, 2: false, 3: true}
	tuples := Tuples(g, &sc, strategy.Reduce, active)
	r1 := tuples[1]
	if r1.HasKernel {
		t.Error("relay with one active stream should not launch a kernel")
	}
	if !r1.HasRecv || !r1.HasSend {
		t.Errorf("relay should still receive and send: %+v", r1)
	}
	// GPU2 is inactive and receives nothing: fully idle.
	r2 := tuples[2]
	if r2.HasRecv || r2.HasSend || r2.HasKernel || r2.IsActive {
		t.Errorf("idle rank 2 tuple = %+v, want all false", r2)
	}
}

func TestTuplesNoUpstreamActive(t *testing.T) {
	g, sc := fig7Graph(t)
	active := map[int]bool{0: true, 1: true, 2: false, 3: false}
	tuples := Tuples(g, &sc, strategy.Reduce, active)
	r1 := tuples[1]
	if r1.HasRecv {
		t.Error("no active upstream: hasRecv must be false")
	}
	if r1.HasKernel {
		t.Error("nothing received: no kernel")
	}
	if !r1.HasSend {
		t.Error("active rank with successor must send its local data")
	}
}

func TestTuplesBroadcastNoKernel(t *testing.T) {
	g, sc := fig7Graph(t)
	// Reverse flows to make an out-tree from rank 0.
	for i := range sc.Flows {
		f := &sc.Flows[i]
		f.SrcRank, f.DstRank = f.DstRank, f.SrcRank
		for l, r := 0, len(f.Path)-1; l < r; l, r = l+1, r-1 {
			f.Path[l], f.Path[r] = f.Path[r], f.Path[l]
		}
	}
	active := map[int]bool{0: true, 1: true, 2: true, 3: true}
	tuples := Tuples(g, &sc, strategy.Broadcast, active)
	for rank, tp := range tuples {
		if tp.HasKernel {
			t.Errorf("broadcast rank %d has kernel", rank)
		}
	}
}

func TestBreakEvenPolicy(t *testing.T) {
	var p BreakEven
	if got := p.Decide(4*time.Millisecond, 10*time.Millisecond); got != DecideWait {
		t.Errorf("under break-even: %v, want wait", got)
	}
	if got := p.Decide(10*time.Millisecond, 10*time.Millisecond); got != DecideProceed {
		t.Errorf("at break-even: %v, want proceed", got)
	}
	if got := p.Decide(11*time.Millisecond, 10*time.Millisecond); got != DecideProceed {
		t.Errorf("past break-even: %v, want proceed", got)
	}
}

// Ski-rental competitiveness: for any straggler arrival time and buying
// cost, the break-even rule's total cost (wait + chosen action) is at most
// 2× the offline optimum (+ one cycle of quantisation).
func TestBreakEvenCompetitive(t *testing.T) {
	const cycle = time.Millisecond
	f := func(arrivalMs, buyMs uint16) bool {
		arrival := time.Duration(arrivalMs%2000) * time.Millisecond
		buy := time.Duration(buyMs%200+1) * time.Millisecond

		// Online: wait in cycles until break-even or arrival.
		var online time.Duration
		var waited time.Duration
		for {
			if waited >= arrival {
				online = waited // straggler arrived while renting
				break
			}
			if (BreakEven{}).Decide(waited, buy) == DecideProceed {
				online = waited + buy
				break
			}
			waited += cycle
		}
		opt := arrival
		if buy < opt {
			opt = buy
		}
		return online <= 2*opt+cycle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeEstimator(t *testing.T) {
	e := &VolumeEstimator{
		TensorBytes: 100 << 20,
		Volume:      AllReduceVolume,
		BandwidthBps: func(ready, relays []int) float64 {
			return float64(len(ready)+len(relays)) * 1e9
		},
	}
	// 4 ready: S = 2·3·100MB = 600MB at 4 GB/s = 150 ms.
	got := e.PartialTime([]int{0, 1, 2, 3}, nil)
	want := time.Duration(float64(600<<20) / 4e9 * float64(time.Second))
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("PartialTime = %v, want ≈%v", got, want)
	}
	if e.CatchupTime(nil) != 0 {
		t.Error("empty catch-up should cost 0")
	}
	if e.CatchupTime([]int{7}) <= 0 {
		t.Error("catch-up for one late worker should cost > 0")
	}
	if AllReduceVolume(100, 1) != 0 {
		t.Error("single-worker allreduce volume should be 0")
	}
	if AlltoAllVolume(100, 4) != 400 {
		t.Error("alltoall volume wrong")
	}
	if BroadcastVolume(100, 4) != 100 {
		t.Error("broadcast volume wrong")
	}
}

// coordHarness wires a coordinator to scripted communication callbacks.
type coordHarness struct {
	eng      *sim.Engine
	co       *Coordinator
	events   []string
	commTime time.Duration
}

func newCoordHarness(t *testing.T, world []int, policy Policy) *coordHarness {
	t.Helper()
	h := &coordHarness{eng: sim.NewEngine(7), commTime: 20 * time.Millisecond}
	est := &VolumeEstimator{
		TensorBytes: 10 << 20,
		Volume:      AllReduceVolume,
		BandwidthBps: func(ready, relays []int) float64 {
			return float64(len(ready)) * 12.5e9
		},
	}
	co, err := NewCoordinator(Config{
		Engine:    h.eng,
		World:     world,
		Policy:    policy,
		Estimator: est,
		RPCDelay:  func() time.Duration { return 100 * time.Microsecond },
		Callbacks: Callbacks{
			StartFull: func(ranks []int, done func()) {
				h.events = append(h.events, "full")
				h.eng.After(h.commTime, done)
			},
			StartPhase1: func(ready, relays []int, done func()) {
				h.events = append(h.events, "phase1")
				h.eng.After(h.commTime, done)
			},
			StartPhase2: func(participants, late []int, done func()) {
				h.events = append(h.events, "phase2")
				h.eng.After(h.commTime/4, done)
			},
			OnFault: func(faulty []int) {
				h.events = append(h.events, "fault")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.co = co
	return h
}

func (h *coordHarness) run(t *testing.T, readyAt map[int]time.Duration) time.Duration {
	t.Helper()
	var elapsed time.Duration = -1
	start := h.eng.Now()
	h.co.BeginIteration(func() { elapsed = h.eng.Now() - start })
	for rank, at := range readyAt {
		rank := rank
		h.eng.At(start+at, func() { h.co.WorkerReady(rank) })
	}
	h.eng.Run()
	if elapsed < 0 {
		t.Fatal("iteration never completed")
	}
	return elapsed
}

func TestCoordinatorFullWhenTogether(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond,
		2: 2 * time.Millisecond, 3: 2 * time.Millisecond,
	})
	if len(h.events) != 1 || h.events[0] != "full" {
		t.Fatalf("events = %v, want [full]", h.events)
	}
	st := h.co.Stats()
	if st.FullRuns != 1 || st.PartialRuns != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCoordinatorPartialOnStraggler(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
		3: 100 * time.Millisecond, // past break-even, within the fault deadline
	})
	wantPrefix := []string{"phase1", "phase2"}
	if len(h.events) != 2 {
		t.Fatalf("events = %v, want %v", h.events, wantPrefix)
	}
	for i, w := range wantPrefix {
		if h.events[i] != w {
			t.Fatalf("events = %v, want %v", h.events, wantPrefix)
		}
	}
	st := h.co.Stats()
	if st.RelayCounts[3] != 1 {
		t.Errorf("rank 3 relay count = %d, want 1", st.RelayCounts[3])
	}
	if st.RelayProbability(3) != 1.0 {
		t.Errorf("relay probability = %v, want 1", st.RelayProbability(3))
	}
}

func TestCoordinatorAlwaysWaitNeverPartial(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, AlwaysWait{})
	elapsed := h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
		3: 300 * time.Millisecond,
	})
	if len(h.events) != 1 || h.events[0] != "full" {
		t.Fatalf("events = %v, want [full]", h.events)
	}
	if elapsed < 300*time.Millisecond {
		t.Errorf("always-wait finished in %v, should have waited for the straggler", elapsed)
	}
}

func TestCoordinatorBreakEvenBeatsAlwaysWait(t *testing.T) {
	ready := map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
		3: 400 * time.Millisecond,
	}
	hWait := newCoordHarness(t, []int{0, 1, 2, 3}, AlwaysWait{})
	tWait := hWait.run(t, ready)
	hBE := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})
	tBE := hBE.run(t, ready)
	if tBE >= tWait {
		t.Errorf("break-even (%v) not faster than always-wait (%v) under a heavy straggler", tBE, tWait)
	}
}

func TestCoordinatorFaultExclusion(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})
	// Rank 3 never becomes ready: after phase 1 and T_fault it must be
	// excluded, and the iteration completes without phase 2.
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
	})
	foundFault := false
	for _, e := range h.events {
		if e == "fault" {
			foundFault = true
		}
	}
	if !foundFault {
		t.Fatalf("events = %v, want fault exclusion", h.events)
	}
	alive := h.co.Alive()
	sort.Ints(alive)
	if len(alive) != 3 || alive[0] != 0 || alive[2] != 2 {
		t.Fatalf("alive = %v, want [0 1 2]", alive)
	}
	st := h.co.Stats()
	if len(st.FaultedRanks) != 1 || st.FaultedRanks[0] != 3 {
		t.Errorf("faulted = %v, want [3]", st.FaultedRanks)
	}

	// The next iteration proceeds with the survivors only.
	h.events = nil
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
	})
	if len(h.events) != 1 || h.events[0] != "full" {
		t.Fatalf("post-fault events = %v, want [full]", h.events)
	}
}

func TestCoordinatorLateArrivalDuringPhase1(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})
	// Rank 3 becomes ready while phase 1 runs: phase 2 must still
	// deliver its tensor (no fault).
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
		3: 60 * time.Millisecond,
	})
	for _, e := range h.events {
		if e == "fault" {
			t.Fatalf("events = %v: worker wrongly declared faulty", h.events)
		}
	}
	if h.events[len(h.events)-1] != "phase2" {
		t.Fatalf("events = %v, want trailing phase2", h.events)
	}
}

func TestCoordinatorRPCSamplesRecorded(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1}, BreakEven{})
	h.run(t, map[int]time.Duration{0: time.Millisecond, 1: time.Millisecond})
	st := h.co.Stats()
	if len(st.RPCSamples) != 2 {
		t.Fatalf("RPC samples = %d, want 2", len(st.RPCSamples))
	}
}

func TestDefaultRPCDelayDistribution(t *testing.T) {
	eng := sim.NewEngine(3)
	co := &Coordinator{rng: eng.Fork()}
	n := 5000
	under := 0
	for i := 0; i < n; i++ {
		if co.defaultRPCDelay() < 1500*time.Microsecond {
			under++
		}
	}
	frac := float64(under) / float64(n)
	// Fig. 19d: ~90% of negotiation latencies below 1.5 ms.
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("fraction under 1.5ms = %.3f, want ≈0.90", frac)
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	est := &VolumeEstimator{TensorBytes: 1, Volume: AllReduceVolume,
		BandwidthBps: func(a, b []int) float64 { return 1 }}
	cb := Callbacks{
		StartFull:   func([]int, func()) {},
		StartPhase1: func([]int, []int, func()) {},
		StartPhase2: func([]int, []int, func()) {},
	}
	bad := []Config{
		{World: []int{0, 1}, Estimator: est, Callbacks: cb},           // no engine
		{Engine: eng, World: []int{0}, Estimator: est, Callbacks: cb}, // 1 worker
		{Engine: eng, World: []int{0, 1}, Callbacks: cb},              // no estimator
		{Engine: eng, World: []int{0, 1}, Estimator: est},             // no callbacks
	}
	for i, cfg := range bad {
		if _, err := NewCoordinator(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestReadmitRestoresWorker(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})
	// Rank 3 faults in iteration 1.
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond, 2: time.Millisecond,
	})
	if got := len(h.co.Alive()); got != 3 {
		t.Fatalf("alive = %d after fault, want 3", got)
	}
	// The worker restarts and rejoins.
	h.co.Readmit(3)
	if got := len(h.co.Alive()); got != 4 {
		t.Fatalf("alive = %d after readmit, want 4", got)
	}
	// A rank outside the world is ignored.
	h.co.Readmit(99)
	if got := len(h.co.Alive()); got != 4 {
		t.Fatalf("alive = %d after bogus readmit, want 4", got)
	}
	// Next iteration runs with all four again.
	h.events = nil
	h.run(t, map[int]time.Duration{
		0: time.Millisecond, 1: time.Millisecond,
		2: time.Millisecond, 3: time.Millisecond,
	})
	if len(h.events) != 1 || h.events[0] != "full" {
		t.Fatalf("post-readmit events = %v, want [full]", h.events)
	}
}

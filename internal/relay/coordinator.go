package relay

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// DefaultCycle is the coordinator's decision period (the paper uses 5 ms).
const DefaultCycle = 5 * time.Millisecond

// DefaultFaultMultiple scales the fault-detection threshold: T_fault is
// five times the duration since the fastest worker became ready.
const DefaultFaultMultiple = 5.0

// DefaultMinFaultDelay floors the fault deadline so that structurally slow
// workers (e.g. V100s doing the same batch as A100s) are never mistaken
// for crashes when communication is much faster than the compute spread.
// PyTorch Elastic's keep-alive is 15 s; AdapCC can be far more aggressive
// but still needs a floor.
const DefaultMinFaultDelay = 2 * time.Second

// Callbacks connect the coordinator to the communication executor. Each
// Start* callback must eventually invoke done exactly once (in virtual
// time) when the corresponding communication finishes.
type Callbacks struct {
	// StartFull runs the collective over all (non-excluded) workers.
	StartFull func(ranks []int, done func())
	// StartPhase1 runs the partial collective among ready workers with
	// the given relays assisting.
	StartPhase1 func(ready, relays []int, done func())
	// StartPhase2 broadcasts the late workers' tensors for catch-up
	// aggregation among all participants.
	StartPhase2 func(participants, late []int, done func())
	// OnFault reports workers excluded after exceeding T_fault. The
	// training side must redistribute the data loader so the global
	// batch size stays constant (Sec. IV-C(2)).
	OnFault func(faulty []int)
	// OnReadmit reports workers returned to the group (elastic healing or
	// an explicit Readmit). The training side redistributes the data
	// loader back, shrinking per-GPU batches to the original share.
	OnReadmit func(readmitted []int)
}

// Config parameterises a Coordinator.
type Config struct {
	Engine *sim.Engine
	// World lists all worker ranks.
	World []int
	// Cycle is the decision period (default DefaultCycle).
	Cycle time.Duration
	// Policy decides wait-vs-proceed (default BreakEven).
	Policy Policy
	// Estimator prices the buying option.
	Estimator CostEstimator
	// FaultMultiple scales T_fault (default DefaultFaultMultiple).
	FaultMultiple float64
	// MinFaultDelay floors the post-phase-1 fault deadline (default
	// DefaultMinFaultDelay).
	MinFaultDelay time.Duration
	// RPCDelay models the worker→coordinator notification latency
	// (Fig. 19d). Nil installs a lognormal with 90th percentile ≈1.5 ms.
	RPCDelay  func() time.Duration
	Callbacks Callbacks
}

// LinkFault is a chunk-granularity fault report from the communication
// executor (a link that exhausted its retransmission budget, or a rank whose
// device hung mid-collective) — the fine-grained sibling of the T_fault
// worker path.
type LinkFault struct {
	// Edge and its endpoints on the logical graph; Edge is -1 when the
	// fault is a rank-level stall with no single link to blame.
	Edge     topology.EdgeID
	From, To topology.NodeID
	// Rank is the implicated worker to exclude, or -1 to only record the
	// link (the controller re-routes around it without shrinking the
	// worker set).
	Rank int
	// At is the virtual time of the detection.
	At time.Duration
}

// Stats aggregates coordinator telemetry across iterations.
type Stats struct {
	Iterations   int
	FullRuns     int         // iterations where everyone was awaited
	PartialRuns  int         // iterations with phase-1/phase-2 split
	RelayCounts  map[int]int // times each rank served as a relay
	RPCSamples   []time.Duration
	WaitTime     time.Duration // total time spent waiting for stragglers
	FaultedRanks []int
	// ReadmittedRanks are workers returned to the group via Readmit, in
	// application order (a rank can appear once per fault/heal cycle).
	ReadmittedRanks []int
	// LinkFaults are the chunk-granularity fault reports received via
	// ReportLinkFault, in arrival order.
	LinkFaults []LinkFault
}

// RelayProbability returns the fraction of iterations each rank relayed
// (Fig. 15).
func (s *Stats) RelayProbability(rank int) float64 {
	if s.Iterations == 0 {
		return 0
	}
	return float64(s.RelayCounts[rank]) / float64(s.Iterations)
}

// Coordinator is the rank-0 control loop of Sec. IV-C. It is single-
// iteration re-entrant: BeginIteration must not be called again until the
// previous iteration's onComplete fired.
type Coordinator struct {
	cfg   Config
	rng   *rand.Rand
	stats Stats

	excluded map[int]bool

	// per-iteration state
	inIteration  bool
	ready        map[int]bool
	firstReadyAt sim.Time
	anyReady     bool
	started      bool // communication already triggered
	ticker       *sim.Ticker
	iterStart    sim.Time
	onComplete   func()
	phase1Ready  map[int]bool
	faultEvent   *sim.Event
	phase1Done   bool
	phase2Going  bool
	// pendingReadmit queues Readmit calls that arrive mid-iteration; they
	// apply at the iteration boundary (finish), since a worker cannot join
	// a collective already being decided.
	pendingReadmit []int
}

// NewCoordinator validates the config and builds a coordinator.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("relay: nil engine")
	}
	if len(cfg.World) < 2 {
		return nil, fmt.Errorf("relay: world of %d workers (need >= 2)", len(cfg.World))
	}
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("relay: nil estimator")
	}
	if cfg.Callbacks.StartFull == nil || cfg.Callbacks.StartPhase1 == nil || cfg.Callbacks.StartPhase2 == nil {
		return nil, fmt.Errorf("relay: missing communication callbacks")
	}
	if cfg.Cycle <= 0 {
		cfg.Cycle = DefaultCycle
	}
	if cfg.Policy == nil {
		cfg.Policy = BreakEven{}
	}
	if cfg.FaultMultiple <= 0 {
		cfg.FaultMultiple = DefaultFaultMultiple
	}
	if cfg.MinFaultDelay <= 0 {
		cfg.MinFaultDelay = DefaultMinFaultDelay
	}
	c := &Coordinator{
		cfg:      cfg,
		rng:      cfg.Engine.Fork(),
		excluded: make(map[int]bool),
	}
	c.stats.RelayCounts = make(map[int]int)
	if c.cfg.RPCDelay == nil {
		c.cfg.RPCDelay = c.defaultRPCDelay
	}
	return c, nil
}

// defaultRPCDelay draws from a lognormal with median ≈0.7 ms and 90th
// percentile ≈1.5 ms, matching Fig. 19d.
func (c *Coordinator) defaultRPCDelay() time.Duration {
	const (
		mu    = -7.264 // ln(0.0007)
		sigma = 0.595
	)
	sec := math.Exp(mu + sigma*c.rng.NormFloat64())
	return time.Duration(sec * float64(time.Second))
}

// Stats returns a snapshot of accumulated telemetry.
func (c *Coordinator) Stats() Stats {
	out := c.stats
	out.RelayCounts = make(map[int]int, len(c.stats.RelayCounts))
	for k, v := range c.stats.RelayCounts {
		out.RelayCounts[k] = v
	}
	out.RPCSamples = append([]time.Duration(nil), c.stats.RPCSamples...)
	out.FaultedRanks = append([]int(nil), c.stats.FaultedRanks...)
	out.ReadmittedRanks = append([]int(nil), c.stats.ReadmittedRanks...)
	out.LinkFaults = append([]LinkFault(nil), c.stats.LinkFaults...)
	return out
}

// ReportLinkFault feeds a chunk-granularity fault detection into the
// coordinator, alongside the T_fault worker path: the report is recorded,
// and if it implicates a rank that rank is excluded exactly as a T_fault
// exclusion would (stats, OnFault callback, and — mid-iteration — the
// pending decision re-evaluated, since the excluded rank may be the one
// everyone was waiting on).
func (c *Coordinator) ReportLinkFault(f LinkFault) {
	c.stats.LinkFaults = append(c.stats.LinkFaults, f)
	if f.Rank < 0 || c.excluded[f.Rank] {
		return
	}
	known := false
	for _, r := range c.cfg.World {
		if r == f.Rank {
			known = true
			break
		}
	}
	if !known {
		return
	}
	c.excluded[f.Rank] = true
	c.stats.FaultedRanks = append(c.stats.FaultedRanks, f.Rank)
	if c.cfg.Callbacks.OnFault != nil {
		c.cfg.Callbacks.OnFault([]int{f.Rank})
	}
	if !c.inIteration {
		return
	}
	if !c.started && c.anyReady && c.allReady() {
		c.startFull()
		return
	}
	if c.started && c.phase1Done && !c.phase2Going {
		c.maybeStartPhase2()
	}
}

// Readmit returns a previously excluded (faulted) worker to the training
// group — the elastic-scaling counterpart of fault exclusion: a recovered
// worker rejoins from the next iteration without any job restart. Mid-
// iteration calls defer to the iteration boundary (the rank has computed
// nothing this iteration and cannot join a collective already being
// decided). It is a no-op for unknown or never-excluded ranks.
func (c *Coordinator) Readmit(rank int) {
	known := false
	for _, r := range c.cfg.World {
		if r == rank {
			known = true
			break
		}
	}
	if !known || !c.excluded[rank] {
		return
	}
	for _, r := range c.pendingReadmit {
		if r == rank {
			return
		}
	}
	if c.inIteration {
		c.pendingReadmit = append(c.pendingReadmit, rank)
		return
	}
	c.applyReadmit([]int{rank})
}

func (c *Coordinator) applyReadmit(ranks []int) {
	var applied []int
	for _, r := range ranks {
		if !c.excluded[r] {
			continue
		}
		delete(c.excluded, r)
		applied = append(applied, r)
	}
	if len(applied) == 0 {
		return
	}
	c.stats.ReadmittedRanks = append(c.stats.ReadmittedRanks, applied...)
	if c.cfg.Callbacks.OnReadmit != nil {
		c.cfg.Callbacks.OnReadmit(applied)
	}
}

// Alive returns the non-excluded worker ranks.
func (c *Coordinator) Alive() []int {
	var out []int
	for _, r := range c.cfg.World {
		if !c.excluded[r] {
			out = append(out, r)
		}
	}
	return out
}

// BeginIteration arms the coordinator for one training iteration.
// onComplete fires when the iteration's communication (full, or phase 1 +
// phase 2) has finished.
func (c *Coordinator) BeginIteration(onComplete func()) {
	if c.inIteration {
		panic("relay: BeginIteration while an iteration is in flight")
	}
	c.inIteration = true
	c.ready = make(map[int]bool)
	c.anyReady = false
	c.started = false
	c.phase1Done = false
	c.phase2Going = false
	c.phase1Ready = nil
	c.iterStart = c.cfg.Engine.Now()
	c.onComplete = onComplete
	c.stats.Iterations++
}

// WorkerReady notifies the coordinator (after the RPC delay) that a worker
// finished computing its tensors.
func (c *Coordinator) WorkerReady(rank int) {
	if c.excluded[rank] {
		return
	}
	delay := c.cfg.RPCDelay()
	c.stats.RPCSamples = append(c.stats.RPCSamples, delay)
	c.cfg.Engine.After(delay, func() { c.markReady(rank) })
}

func (c *Coordinator) markReady(rank int) {
	if !c.inIteration || c.excluded[rank] || c.ready[rank] {
		return
	}
	c.ready[rank] = true
	if !c.anyReady {
		c.anyReady = true
		c.firstReadyAt = c.cfg.Engine.Now()
		if !c.started {
			c.ticker = sim.NewTicker(c.cfg.Engine, c.cfg.Cycle, c.decide)
		}
	}
	if !c.started && c.allReady() {
		// Everyone arrived before the break-even point: trigger the
		// full collective immediately, like existing libraries do.
		c.startFull()
		return
	}
	if c.started && !c.phase2Going && c.phase1Done {
		c.maybeStartPhase2()
	}
}

func (c *Coordinator) allReady() bool {
	for _, r := range c.Alive() {
		if !c.ready[r] {
			return false
		}
	}
	return true
}

func (c *Coordinator) lateRanks() []int {
	var late []int
	for _, r := range c.Alive() {
		if !c.ready[r] {
			late = append(late, r)
		}
	}
	return late
}

func (c *Coordinator) readyRanks() []int {
	var out []int
	for _, r := range c.Alive() {
		if c.ready[r] {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// decide runs once per cycle until communication starts.
func (c *Coordinator) decide() {
	if c.started || !c.inIteration {
		return
	}
	eng := c.cfg.Engine
	if c.allReady() {
		c.startFull()
		return
	}
	ready := c.readyRanks()
	if len(ready) < 2 {
		return // nothing to communicate yet
	}
	late := c.lateRanks()
	waited := eng.Now() - c.firstReadyAt
	c.stats.WaitTime += c.cfg.Cycle
	buy := c.cfg.Estimator.PartialTime(ready, late) + c.cfg.Estimator.CatchupTime(late)
	if c.cfg.Policy.Decide(waited, buy) == DecideProceed {
		c.startPhase1(ready, late)
	}
}

func (c *Coordinator) stopTicker() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

func (c *Coordinator) startFull() {
	c.started = true
	c.stopTicker()
	c.stats.FullRuns++
	ranks := c.readyRanks()
	c.cfg.Callbacks.StartFull(ranks, func() { c.finish() })
}

func (c *Coordinator) startPhase1(ready, relays []int) {
	c.started = true
	c.stopTicker()
	c.stats.PartialRuns++
	for _, r := range relays {
		c.stats.RelayCounts[r]++
	}
	c.phase1Ready = make(map[int]bool, len(ready))
	for _, r := range ready {
		c.phase1Ready[r] = true
	}
	c.cfg.Callbacks.StartPhase1(ready, relays, func() { c.onPhase1Done() })
}

func (c *Coordinator) onPhase1Done() {
	c.phase1Done = true
	eng := c.cfg.Engine
	if c.allReady() {
		c.maybeStartPhase2()
		return
	}
	// Arm the fault deadline: five times the span from the fastest
	// worker's readiness to phase-1 completion (Sec. IV-C(2)).
	span := eng.Now() - c.firstReadyAt
	deadline := time.Duration(c.cfg.FaultMultiple * float64(span))
	if deadline < c.cfg.MinFaultDelay {
		deadline = c.cfg.MinFaultDelay
	}
	c.faultEvent = eng.After(deadline, func() {
		c.faultEvent = nil
		c.declareFaults()
	})
}

func (c *Coordinator) maybeStartPhase2() {
	if !c.phase1Done || c.phase2Going || !c.allReady() {
		return
	}
	if c.faultEvent != nil {
		c.cfg.Engine.Cancel(c.faultEvent)
		c.faultEvent = nil
	}
	c.phase2Going = true
	// Late workers: alive ranks that missed phase 1.
	var late []int
	for _, r := range c.Alive() {
		if !c.phase1Ready[r] {
			late = append(late, r)
		}
	}
	if len(late) == 0 {
		c.finish()
		return
	}
	c.cfg.Callbacks.StartPhase2(c.Alive(), late, func() { c.finish() })
}

// declareFaults excludes workers that never became ready and proceeds with
// the survivors (continued training without restart).
func (c *Coordinator) declareFaults() {
	var faulty []int
	for _, r := range c.Alive() {
		if !c.ready[r] {
			faulty = append(faulty, r)
			c.excluded[r] = true
		}
	}
	if len(faulty) > 0 {
		c.stats.FaultedRanks = append(c.stats.FaultedRanks, faulty...)
		if c.cfg.Callbacks.OnFault != nil {
			c.cfg.Callbacks.OnFault(faulty)
		}
	}
	c.maybeStartPhase2()
}

func (c *Coordinator) finish() {
	if !c.inIteration {
		return
	}
	c.inIteration = false
	c.stopTicker()
	if c.faultEvent != nil {
		c.cfg.Engine.Cancel(c.faultEvent)
		c.faultEvent = nil
	}
	if len(c.pendingReadmit) > 0 {
		pending := c.pendingReadmit
		c.pendingReadmit = nil
		c.applyReadmit(pending)
	}
	done := c.onComplete
	c.onComplete = nil
	if done != nil {
		done()
	}
}

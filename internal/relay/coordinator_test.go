package relay

import (
	"testing"
	"time"
)

func TestPolicyStringsAndStubs(t *testing.T) {
	if DecideWait.String() != "wait" || DecideProceed.String() != "proceed" {
		t.Error("decision strings wrong")
	}
	if (AlwaysWait{}).Decide(time.Hour, 0) != DecideWait {
		t.Error("AlwaysWait proceeded")
	}
	if (AlwaysProceed{}).Decide(0, time.Hour) != DecideProceed {
		t.Error("AlwaysProceed waited")
	}
}

func TestVolumeEstimatorFullTime(t *testing.T) {
	e := &VolumeEstimator{
		TensorBytes: 1 << 20,
		Volume:      AllReduceVolume,
		BandwidthBps: func(ready, relays []int) float64 {
			return 1e9
		},
	}
	all := []int{0, 1, 2, 3}
	// S = 2(N-1) x tensor = 6 MiB at 1 GB/s.
	want := time.Duration(float64(6<<20) / 1e9 * float64(time.Second))
	got := e.FullTime(all)
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("FullTime = %v, want %v", got, want)
	}
	// Degenerate: single worker has nothing to allreduce.
	if e.FullTime([]int{0}) != 0 {
		t.Error("single-worker full time not free")
	}
	// Zero bandwidth: effectively never buy.
	zero := &VolumeEstimator{
		TensorBytes:  1 << 20,
		Volume:       AllReduceVolume,
		BandwidthBps: func([]int, []int) float64 { return 0 },
	}
	if zero.FullTime(all) < time.Hour {
		t.Error("zero-bandwidth estimate should be effectively infinite")
	}
}

func TestRelayProbabilityAccounting(t *testing.T) {
	var s Stats
	if s.RelayProbability(0) != 0 {
		t.Error("zero-iteration stats report a relay probability")
	}
	s.Iterations = 4
	s.RelayCounts = map[int]int{2: 3}
	if got := s.RelayProbability(2); got != 0.75 {
		t.Errorf("RelayProbability(2) = %v, want 0.75", got)
	}
	if got := s.RelayProbability(1); got != 0 {
		t.Errorf("RelayProbability(1) = %v, want 0", got)
	}
}

// TestReportLinkFaultExclusion: chunk-granularity fault reports land in the
// stats, and a report implicating a rank excludes it exactly like the
// T_fault path — once, with the OnFault callback, surviving Readmit.
func TestReportLinkFaultExclusion(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, BreakEven{})

	// A pure link report (Rank -1) is recorded but excludes nobody.
	h.co.ReportLinkFault(LinkFault{Edge: 5, From: 1, To: 2, Rank: -1, At: time.Millisecond})
	if st := h.co.Stats(); len(st.LinkFaults) != 1 || len(st.FaultedRanks) != 0 {
		t.Fatalf("after link-only report: %d link faults, faulted %v", len(st.LinkFaults), st.FaultedRanks)
	}
	if got := h.co.Alive(); len(got) != 4 {
		t.Fatalf("link-only report shrank the worker set to %v", got)
	}

	// Implicating rank 2 excludes it and fires OnFault.
	h.co.ReportLinkFault(LinkFault{Edge: -1, Rank: 2, At: 2 * time.Millisecond})
	if got := h.co.Alive(); len(got) != 3 {
		t.Fatalf("alive = %v, want rank 2 gone", got)
	}
	for _, r := range h.co.Alive() {
		if r == 2 {
			t.Fatal("rank 2 still alive after implicating report")
		}
	}
	if len(h.events) != 1 || h.events[0] != "fault" {
		t.Fatalf("events = %v, want [fault]", h.events)
	}

	// Duplicate and unknown-rank reports are recorded, nothing else.
	h.co.ReportLinkFault(LinkFault{Edge: -1, Rank: 2, At: 3 * time.Millisecond})
	h.co.ReportLinkFault(LinkFault{Edge: -1, Rank: 99, At: 3 * time.Millisecond})
	st := h.co.Stats()
	if len(st.LinkFaults) != 4 {
		t.Errorf("LinkFaults = %d, want all 4 reports recorded", len(st.LinkFaults))
	}
	if len(st.FaultedRanks) != 1 || st.FaultedRanks[0] != 2 {
		t.Errorf("FaultedRanks = %v, want [2]", st.FaultedRanks)
	}
	if len(h.events) != 1 {
		t.Errorf("events = %v, want no second fault callback", h.events)
	}

	// Readmission brings the rank back.
	h.co.Readmit(2)
	if got := h.co.Alive(); len(got) != 4 {
		t.Errorf("alive after readmit = %v, want all 4", got)
	}
}

// TestReportLinkFaultUnblocksIteration: everyone is waiting on one straggler
// when a link fault implicates it; the pending decision must be re-evaluated
// so the iteration proceeds with the survivors instead of hanging until the
// T_fault deadline.
func TestReportLinkFaultUnblocksIteration(t *testing.T) {
	h := newCoordHarness(t, []int{0, 1, 2, 3}, AlwaysWait{})
	var elapsed time.Duration = -1
	h.co.BeginIteration(func() { elapsed = h.eng.Now() })
	for _, r := range []int{0, 1, 2} {
		r := r
		h.eng.At(time.Millisecond, func() { h.co.WorkerReady(r) })
	}
	// Rank 3 never reports ready; its fault arrives at 5 ms.
	h.eng.At(5*time.Millisecond, func() {
		h.co.ReportLinkFault(LinkFault{Edge: 9, From: 3, To: 7, Rank: 3, At: h.eng.Now()})
	})
	h.eng.Run()
	if elapsed < 0 {
		t.Fatal("iteration never completed after the straggler faulted")
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("iteration took %v; fault should unblock well before any T_fault deadline", elapsed)
	}
	found := false
	for _, ev := range h.events {
		if ev == "full" {
			found = true
		}
	}
	if !found {
		t.Errorf("events = %v, want a full run among the survivors", h.events)
	}
}

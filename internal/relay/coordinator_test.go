package relay

import (
	"testing"
	"time"
)

func TestPolicyStringsAndStubs(t *testing.T) {
	if DecideWait.String() != "wait" || DecideProceed.String() != "proceed" {
		t.Error("decision strings wrong")
	}
	if (AlwaysWait{}).Decide(time.Hour, 0) != DecideWait {
		t.Error("AlwaysWait proceeded")
	}
	if (AlwaysProceed{}).Decide(0, time.Hour) != DecideProceed {
		t.Error("AlwaysProceed waited")
	}
}

func TestVolumeEstimatorFullTime(t *testing.T) {
	e := &VolumeEstimator{
		TensorBytes: 1 << 20,
		Volume:      AllReduceVolume,
		BandwidthBps: func(ready, relays []int) float64 {
			return 1e9
		},
	}
	all := []int{0, 1, 2, 3}
	// S = 2(N-1) x tensor = 6 MiB at 1 GB/s.
	want := time.Duration(float64(6<<20) / 1e9 * float64(time.Second))
	got := e.FullTime(all)
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("FullTime = %v, want %v", got, want)
	}
	// Degenerate: single worker has nothing to allreduce.
	if e.FullTime([]int{0}) != 0 {
		t.Error("single-worker full time not free")
	}
	// Zero bandwidth: effectively never buy.
	zero := &VolumeEstimator{
		TensorBytes:  1 << 20,
		Volume:       AllReduceVolume,
		BandwidthBps: func([]int, []int) float64 { return 0 },
	}
	if zero.FullTime(all) < time.Hour {
		t.Error("zero-bandwidth estimate should be effectively infinite")
	}
}

func TestRelayProbabilityAccounting(t *testing.T) {
	var s Stats
	if s.RelayProbability(0) != 0 {
		t.Error("zero-iteration stats report a relay probability")
	}
	s.Iterations = 4
	s.RelayCounts = map[int]int{2: 3}
	if got := s.RelayProbability(2); got != 0.75 {
		t.Errorf("RelayProbability(2) = %v, want 0.75", got)
	}
	if got := s.RelayProbability(1); got != 0 {
		t.Errorf("RelayProbability(1) = %v, want 0", got)
	}
}

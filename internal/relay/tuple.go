// Package relay implements AdapCC's adaptive relay control (paper
// Sec. IV-C): the rank-0 coordinator that collects per-worker tensor-ready
// times, decides each 5 ms cycle between waiting for stragglers and starting a
// partial collective (via the break-even ski-rental rule), assigns
// non-ready workers' GPUs as relays, schedules the phase-2 catch-up
// communication, detects faulty workers, and derives the per-GPU behaviour
// tuple <isActive, hasRecv, hasKernel, hasSend> that lets the executor
// apply arbitrary relay control on a fixed communication graph (Fig. 7).
package relay

import (
	"errors"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// Tuple is the GPU behaviour abstraction of Sec. IV-C(3).
type Tuple struct {
	// IsActive: the worker is ready for communication (not a relay).
	IsActive bool
	// HasRecv: the GPU must wait to receive data from predecessors —
	// set when any (transitively reachable) upstream rank is active.
	HasRecv bool
	// HasKernel: an aggregation kernel must be launched.
	HasKernel bool
	// HasSend: the GPU sends data to a successor.
	HasSend bool
}

// Tuples derives the behaviour tuple of every GPU node participating in a
// sub-collective, given which ranks are active. The rules follow the paper
// exactly:
//
//   - isActive: provided by the coordinator.
//   - hasRecv: recursively check whether any predecessor has data to send;
//     set as soon as an active rank is found upstream.
//   - hasKernel: set for reducing primitives unless (1) hasRecv is unset —
//     the rank only forwards its local data; (2) the rank is a relay
//     (inactive) with exactly one active upstream source — it just relays
//     that single stream; or (3) the synthesizer routed flows through the
//     node without aggregation (the node is not a flow terminal).
//   - hasSend: unset when both isActive and hasRecv are false, and for
//     ranks without a successor (e.g. the root of a reduce tree).
func Tuples(g *topology.Graph, sc *strategy.SubCollective, p strategy.Primitive, active map[int]bool) map[int]Tuple {
	ios := sc.NodeLinks()

	// activeUpstream[node] = number of *distinct active GPU ranks* whose
	// data transits or originates at the node, computed by walking each
	// flow: a flow contributes its source's activity to every node it
	// passes, and (transitively) the activity it has absorbed at its
	// origin via earlier-terminating flows. Process flows in dependency
	// order (origins after their feeders) so absorption composes.
	// carried[n]: active ranks whose data transits n (including data
	// terminating there) — drives hasRecv. held[n]: active ranks whose
	// data n owns after aggregation (flows terminating at n) — only held
	// data merges into n's own continuation flow; pass-through traffic
	// does not.
	carried := make(map[topology.NodeID]map[int]bool)
	held := make(map[topology.NodeID]map[int]bool)
	add := func(m map[topology.NodeID]map[int]bool, n topology.NodeID, ranks map[int]bool) {
		if m[n] == nil {
			m[n] = make(map[int]bool)
		}
		for r := range ranks {
			m[n][r] = true
		}
	}

	order, err := FlowDependencyOrder(sc)
	if err != nil {
		// Cyclic flow sets cannot occur for validated strategies; fall
		// back to flow index order to stay total.
		order = make([]int, len(sc.Flows))
		for i := range order {
			order[i] = i
		}
	}
	for _, fi := range order {
		f := &sc.Flows[fi]
		load := make(map[int]bool)
		if active[f.SrcRank] {
			load[f.SrcRank] = true
		}
		// Data absorbed at the origin from flows that terminated there.
		for r := range held[f.Path[0]] {
			load[r] = true
		}
		for _, node := range f.Path[1:] {
			add(carried, node, load)
		}
		add(held, f.Path[len(f.Path)-1], load)
	}

	tuples := make(map[int]Tuple)
	for node, io := range ios {
		n := g.Node(node)
		if n.Kind != topology.KindGPU {
			continue
		}
		rank := n.Rank
		t := Tuple{IsActive: active[rank]}

		t.HasRecv = len(carried[node]) > 0

		if p.NeedsAggregation() {
			switch {
			case !t.HasRecv:
				// (1) nothing to receive: send local data only.
			case !io.Terminal:
				// (3) synthesizer routes flows through without
				// aggregation.
			case !t.IsActive && len(held[node]) == 1:
				// (2) pure relay of a single active stream.
			default:
				t.HasKernel = true
			}
		}

		hasSucc := len(io.Succs) > 0
		t.HasSend = hasSucc && (t.IsActive || t.HasRecv)
		tuples[rank] = t
	}
	return tuples
}

// FlowDependencyOrder orders flows so that any flow terminating at node o
// precedes flows originating at o. The executor uses the same order to
// propagate data-carrying information.
func FlowDependencyOrder(sc *strategy.SubCollective) ([]int, error) {
	n := len(sc.Flows)
	terminatesAt := make(map[topology.NodeID][]int)
	for i := range sc.Flows {
		p := sc.Flows[i].Path
		terminatesAt[p[len(p)-1]] = append(terminatesAt[p[len(p)-1]], i)
	}
	indeg := make([]int, n)
	deps := make([][]int, n)
	for i := range sc.Flows {
		for _, j := range terminatesAt[sc.Flows[i].Path[0]] {
			deps[j] = append(deps[j], i)
			indeg[i]++
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		order = append(order, f)
		for _, d := range deps[f] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != n {
		return nil, errCyclicFlows
	}
	return order, nil
}

var errCyclicFlows = errors.New("relay: cyclic flow set")

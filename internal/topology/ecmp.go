package topology

// Flow-keyed equal-cost multipath (ECMP) routing. Real fabrics hash each
// flow's 5-tuple at every switch and pick among the equal-cost next hops;
// different flows between the same endpoints spread over the spine layer,
// and an unlucky pair of hashes can collide on one uplink while its twins
// idle — the gray failure the congestion plane reproduces. ECMPPath is the
// simulator's stand-in: a deterministic hash of (flow key, hop depth,
// current node) picks among the minimum-hop next hops, so a given key
// always routes the same way (replay-stable at any worker count) while
// distinct keys fan out across equal-cost uplinks.

// ECMPPath returns a minimum-hop path from src to dst chosen by flow-keyed
// hashing over equal-cost next hops, or nil if unreachable. The same
// (graph, src, dst, key) always yields the same path.
func (g *Graph) ECMPPath(src, dst NodeID, key uint64) []NodeID {
	return g.ECMPPathAvoid(src, dst, key, nil)
}

// ECMPPathAvoid is ECMPPath restricted to edges for which avoid returns
// false — the soft-avoidance primitive the adaptive layer uses to steer
// flows off degraded (but still alive) links. Returns nil if every route
// is avoided.
func (g *Graph) ECMPPathAvoid(src, dst NodeID, key uint64, avoid func(EdgeID) bool) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	// Reverse BFS from dst over the admitted edges: dist[n] = hops n→dst.
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, eid := range g.in[cur] {
			if avoid != nil && avoid(eid) {
				continue
			}
			from := g.edges[eid].From
			if dist[from] != -1 {
				continue
			}
			dist[from] = dist[cur] + 1
			queue = append(queue, from)
		}
	}
	if dist[src] == -1 {
		return nil
	}
	// Forward walk: at every hop, the equal-cost candidates are the
	// admitted out-neighbours one step closer to dst, ordered by node id
	// (the ordering is part of the route's definition — it must not depend
	// on edge insertion order), and the flow hash picks one.
	path := make([]NodeID, 0, dist[src]+1)
	path = append(path, src)
	var cand []NodeID
	for cur := src; cur != dst; {
		cand = cand[:0]
		for _, eid := range g.out[cur] {
			if avoid != nil && avoid(eid) {
				continue
			}
			if next := g.edges[eid].To; dist[next] == dist[cur]-1 {
				cand = append(cand, next)
			}
		}
		sortNodeIDs(cand)
		cur = cand[ecmpHash(key, uint64(len(path)), uint64(cur))%uint64(len(cand))]
		path = append(path, cur)
	}
	return path
}

// ecmpHash mixes (flow key, hop depth, switch id) with a splitmix64-style
// finalizer — the simulator's analogue of a switch's per-hop 5-tuple hash.
func ecmpHash(key, depth, node uint64) uint64 {
	x := key ^ depth*0x9e3779b97f4a7c15 ^ node*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package topology

import (
	"fmt"
	"time"
)

// CrossEdge is one directed logical edge whose endpoints live in different
// simulation domains. The edge is owned by its source domain: serialization
// (the β·size occupancy, including contention with every other transfer on
// the edge) is simulated there over SrcEdge, whose latency is zeroed; the
// original link latency α is then paid as the cross-domain post delay. The
// arrival therefore lands at exactly the virtual time a monolithic
// simulation would produce, and the minimum α over all cross edges is the
// conservative lookahead that keeps the partitioned schedule causal.
type CrossEdge struct {
	// Global is the original edge, with global node ids and the full α.
	Global Edge
	// Src and Dst are the source and destination domains.
	Src, Dst int
	// SrcEdge is the serialization leg in the source domain's subgraph:
	// a copy of Global with α = 0, ending at a ghost copy of the target
	// node.
	SrcEdge EdgeID
	// DstNode is the destination node's local id in the destination
	// domain's subgraph.
	DstNode NodeID
}

// Partition splits a logical graph into per-domain subgraphs for the
// partitioned event engine (sim.Parallel): every node belongs to exactly
// one domain, intra-domain edges are replicated into the domain's
// subgraph, and edges crossing domains become CrossEdges. Only network
// edges may cross: NVLink and PCIe stay inside a server, so a partition
// that splits a server is rejected.
type Partition struct {
	// Graph is the original, unpartitioned graph.
	Graph *Graph
	// Domains is the number of domains.
	Domains int
	// NodeDomain maps each global node to its domain.
	NodeDomain []int
	// Subs are the per-domain subgraphs. GPU ranks are renumbered to be
	// contiguous from 0 within each domain (see GlobalRanks).
	Subs []*Graph
	// ToLocal maps a global node id to its local id in its home domain.
	ToLocal []NodeID
	// GlobalRanks maps (domain, local rank) back to the global rank.
	GlobalRanks [][]int
	// RankDomain and RankLocal map a global rank to its domain and local
	// rank.
	RankDomain []int
	RankLocal  []int
	// Cross lists every domain-crossing edge.
	Cross []CrossEdge
	// EdgeLocal maps a global edge to its local edge id — in its own
	// domain's subgraph for intra-domain edges, or the serialization leg
	// in the source domain for cross edges.
	EdgeLocal []EdgeID
	// EdgeDomain maps a global edge to the domain that simulates it (the
	// domain of its From node).
	EdgeDomain []int
	// EdgeCross maps a global edge to its index in Cross, or -1.
	EdgeCross []int
	// Lookahead is the minimum α over all cross edges (0 when nothing
	// crosses, i.e. a single-domain partition).
	Lookahead time.Duration
}

// NewPartition builds the partition of g induced by nodeDomain, which must
// assign every node a domain in [0, D) with every domain non-empty.
func NewPartition(g *Graph, nodeDomain []int) (*Partition, error) {
	if len(nodeDomain) != g.NumNodes() {
		return nil, fmt.Errorf("topology: partition assigns %d nodes, graph has %d", len(nodeDomain), g.NumNodes())
	}
	domains := 0
	for n, d := range nodeDomain {
		if d < 0 {
			return nil, fmt.Errorf("topology: node %d assigned negative domain %d", n, d)
		}
		if d+1 > domains {
			domains = d + 1
		}
	}
	if domains == 0 {
		return nil, fmt.Errorf("topology: empty partition")
	}
	seen := make([]bool, domains)
	for _, d := range nodeDomain {
		seen[d] = true
	}
	for d, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("topology: domain %d of %d is empty", d, domains)
		}
	}

	p := &Partition{
		Graph:      g,
		Domains:    domains,
		NodeDomain: append([]int(nil), nodeDomain...),
		Subs:       make([]*Graph, domains),
		ToLocal:    make([]NodeID, g.NumNodes()),
		EdgeLocal:  make([]EdgeID, g.NumEdges()),
		EdgeDomain: make([]int, g.NumEdges()),
		EdgeCross:  make([]int, g.NumEdges()),
	}
	for i := range p.Subs {
		p.Subs[i] = NewGraph()
	}

	// Home nodes, in global order. GPU local ranks are renumbered
	// contiguously per domain in global-rank order so each subgraph
	// validates on its own.
	nextRank := make([]int, domains)
	p.GlobalRanks = make([][]int, domains)
	totalRanks := 0
	for _, n := range g.Nodes() {
		if n.Kind == KindGPU {
			totalRanks++
		}
	}
	p.RankDomain = make([]int, totalRanks)
	p.RankLocal = make([]int, totalRanks)
	for _, n := range g.Nodes() {
		d := nodeDomain[n.ID]
		local := n
		if n.Kind == KindGPU {
			local.Rank = nextRank[d]
			nextRank[d]++
			p.GlobalRanks[d] = append(p.GlobalRanks[d], n.Rank)
			p.RankDomain[n.Rank] = d
			p.RankLocal[n.Rank] = local.Rank
		}
		p.ToLocal[n.ID] = p.Subs[d].AddNode(local)
	}

	// Edges: intra-domain edges replicate; cross edges get a serialization
	// leg in the source domain, ending at a ghost copy of the target node.
	ghosts := make([]map[NodeID]NodeID, domains) // global target -> local ghost
	for i := range ghosts {
		ghosts[i] = make(map[NodeID]NodeID)
	}
	for _, e := range g.Edges() {
		src, dst := nodeDomain[e.From], nodeDomain[e.To]
		p.EdgeDomain[e.ID] = src
		if src == dst {
			local := e
			local.From = p.ToLocal[e.From]
			local.To = p.ToLocal[e.To]
			p.EdgeLocal[e.ID] = p.Subs[src].AddEdge(local)
			p.EdgeCross[e.ID] = -1
			continue
		}
		if !e.Type.Network() {
			return nil, fmt.Errorf("topology: partition splits a server: %v edge %v -> %v crosses domains %d/%d",
				e.Type, g.Node(e.From), g.Node(e.To), src, dst)
		}
		if e.Alpha <= 0 {
			return nil, fmt.Errorf("topology: cross-domain edge %v -> %v has no latency; the partition would have zero lookahead",
				g.Node(e.From), g.Node(e.To))
		}
		ghost, ok := ghosts[src][e.To]
		if !ok {
			gn := g.Node(e.To)
			gn.Rank = -1 // ghosts carry no rank even if (impossibly) a GPU
			ghost = p.Subs[src].AddNode(gn)
			ghosts[src][e.To] = ghost
		}
		leg := e
		leg.From = p.ToLocal[e.From]
		leg.To = ghost
		leg.Alpha = 0 // α is paid by the cross-domain post instead
		legID := p.Subs[src].AddEdge(leg)
		p.EdgeLocal[e.ID] = legID
		p.EdgeCross[e.ID] = len(p.Cross)
		p.Cross = append(p.Cross, CrossEdge{
			Global: e, Src: src, Dst: dst,
			SrcEdge: legID, DstNode: p.ToLocal[e.To],
		})
		if p.Lookahead == 0 || e.Alpha < p.Lookahead {
			p.Lookahead = e.Alpha
		}
	}

	for d, sub := range p.Subs {
		if err := sub.Validate(); err != nil {
			return nil, fmt.Errorf("topology: domain %d subgraph invalid: %w", d, err)
		}
	}
	return p, nil
}

// Ranks returns the total number of GPU ranks across all domains.
func (p *Partition) Ranks() int { return len(p.RankDomain) }

// DomainRanks returns how many ranks live in domain d.
func (p *Partition) DomainRanks(d int) int { return len(p.GlobalRanks[d]) }

// LocalGPU returns the local node id of a global rank's GPU in its home
// domain's subgraph.
func (p *Partition) LocalGPU(rank int) (domain int, node NodeID) {
	d := p.RankDomain[rank]
	id, ok := p.Subs[d].GPUByRank(p.RankLocal[rank])
	if !ok {
		panic(fmt.Sprintf("topology: rank %d lost in partition", rank))
	}
	return d, id
}

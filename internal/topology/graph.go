package topology

import "fmt"

// Graph is the logical communication graph: GPU and NIC nodes connected by
// directed edges. It is immutable after construction; run-time link state
// (queues, live bandwidth) lives in the fabric, and profiled α–β values live
// in profile.Report.
type Graph struct {
	nodes []Node
	edges []Edge
	out   [][]EdgeID
	in    [][]EdgeID
	// byPair maps (from,to) to the edge id; at most one edge per ordered
	// pair (parallel physical links are modelled as one fatter edge).
	byPair map[[2]NodeID]EdgeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byPair: make(map[[2]NodeID]EdgeID)}
}

// AddNode appends a node, assigning and returning its NodeID. The caller's
// Server/Index/Rank/Kind fields are preserved.
func (g *Graph) AddNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return n.ID
}

// AddEdge appends a directed edge, assigning and returning its EdgeID.
// Adding a second edge between the same ordered pair panics: the logical
// graph is a simple directed graph by construction.
func (g *Graph) AddEdge(e Edge) EdgeID {
	if !g.valid(e.From) || !g.valid(e.To) {
		panic(fmt.Sprintf("topology: edge %v->%v references unknown node", e.From, e.To))
	}
	if e.From == e.To {
		panic(fmt.Sprintf("topology: self-loop on node %v", e.From))
	}
	key := [2]NodeID{e.From, e.To}
	if _, dup := g.byPair[key]; dup {
		panic(fmt.Sprintf("topology: duplicate edge %v->%v", e.From, e.To))
	}
	e.ID = EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], e.ID)
	g.in[e.To] = append(g.in[e.To], e.ID)
	g.byPair[key] = e.ID
	return e.ID
}

// AddBidirectional adds the edge and its reverse with identical properties,
// returning both ids (forward first).
func (g *Graph) AddBidirectional(e Edge) (EdgeID, EdgeID) {
	fwd := g.AddEdge(e)
	rev := e
	rev.From, rev.To = e.To, e.From
	return fwd, g.AddEdge(rev)
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// SetEdgeProps overwrites the α–β properties of an edge (used by the
// profiler to install measured values). A zero PerStreamBps in props leaves
// the existing per-stream cap untouched.
func (g *Graph) SetEdgeProps(id EdgeID, props Edge) {
	g.edges[id].Alpha = props.Alpha
	g.edges[id].BandwidthBps = props.BandwidthBps
	if props.PerStreamBps != 0 {
		g.edges[id].PerStreamBps = props.PerStreamBps
	}
}

// Out returns the ids of edges leaving n. The returned slice must not be
// modified.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// In returns the ids of edges entering n. The returned slice must not be
// modified.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// EdgeBetween returns the edge id from one node to another, if present.
func (g *Graph) EdgeBetween(from, to NodeID) (EdgeID, bool) {
	id, ok := g.byPair[[2]NodeID{from, to}]
	return id, ok
}

// Nodes returns a copy of all nodes.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// GPUs returns the ids of all GPU nodes in rank order.
func (g *Graph) GPUs() []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindGPU {
			ids = append(ids, n.ID)
		}
	}
	// Nodes are added in rank order by the builder, but sort defensively
	// by rank so callers can index the result by rank.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && g.nodes[ids[j]].Rank < g.nodes[ids[j-1]].Rank; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// NICs returns the ids of all NIC nodes.
func (g *Graph) NICs() []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Kind == KindNIC {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// GPUByRank returns the node id of the GPU with the given global rank.
func (g *Graph) GPUByRank(rank int) (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Kind == KindGPU && n.Rank == rank {
			return n.ID, true
		}
	}
	return 0, false
}

// Switch returns the core switch node id, if the graph has one.
func (g *Graph) Switch() (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Kind == KindSwitch {
			return n.ID, true
		}
	}
	return 0, false
}

// NICOfServer returns the id of the idx-th NIC on a server.
func (g *Graph) NICOfServer(server, idx int) (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Kind == KindNIC && n.Server == server && n.Index == idx {
			return n.ID, true
		}
	}
	return 0, false
}

// SameServer reports whether two nodes live on the same server.
func (g *Graph) SameServer(a, b NodeID) bool {
	return g.nodes[a].Server == g.nodes[b].Server
}

// CloneFilteredEdges returns a new graph with every node of g (preserving
// NodeIDs, so rank lookups and paths stay valid across both graphs) and
// only the edges for which keep returns true. EdgeIDs are renumbered
// densely. The fault-recovery path synthesizes over such a clone: a
// strategy routed on it references nodes only, so it stays executable on
// the original graph while structurally avoiding the excluded links.
func (g *Graph) CloneFilteredEdges(keep func(Edge) bool) *Graph {
	out := NewGraph()
	for _, n := range g.nodes {
		out.AddNode(n)
	}
	for _, e := range g.edges {
		if keep(e) {
			out.AddEdge(e)
		}
	}
	return out
}

// ShortestPath returns the node sequence of a minimum-hop path from src to
// dst (inclusive), or nil if unreachable. Ties are broken deterministically
// by edge insertion order.
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	prev := make([]NodeID, len(g.nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, eid := range g.out[cur] {
			next := g.edges[eid].To
			if prev[next] != -1 {
				continue
			}
			prev[next] = cur
			if next == dst {
				return g.tracePath(prev, src, dst)
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// ShortestPathAvoid is ShortestPath restricted to edges for which avoid
// returns false — the re-routing primitive of the resilience layer, which
// detours around blacklisted (faulted) links without mutating the graph.
// Among equal-hop detours the lexicographically smallest node sequence
// wins, so the chosen route is a function of the graph and the avoid set
// alone — independent of edge insertion order, and therefore identical
// when recomputed on any domain of a partitioned run. Returns nil if
// every route is avoided.
//
// A nil predicate degrades to plain ShortestPath (which keeps its
// historical insertion-order tie-break, pinning legacy routes).
func (g *Graph) ShortestPathAvoid(src, dst NodeID, avoid func(EdgeID) bool) []NodeID {
	if avoid == nil {
		return g.ShortestPath(src, dst)
	}
	if src == dst {
		return []NodeID{src}
	}
	prev := make([]NodeID, len(g.nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []NodeID{src}
	var scratch []NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Expand neighbours in ascending node order: with a FIFO queue and
		// first-touch predecessors, each BFS level is then discovered in the
		// lexicographic order of its members' smallest paths, so the traced
		// path is the lexicographically smallest among minimum-hop ones.
		scratch = scratch[:0]
		for _, eid := range g.out[cur] {
			if avoid(eid) {
				continue
			}
			scratch = append(scratch, g.edges[eid].To)
		}
		sortNodeIDs(scratch)
		for _, next := range scratch {
			if prev[next] != -1 {
				continue
			}
			prev[next] = cur
			if next == dst {
				return g.tracePath(prev, src, dst)
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// sortNodeIDs insertion-sorts a small node-id slice in place (out-degrees
// in our topologies are tiny, so this beats sort.Slice on the hot path).
func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func (g *Graph) tracePath(prev []NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path
}

// Validate checks structural invariants: GPU ranks are unique and contiguous
// from 0, every server has at least one NIC if the graph spans multiple
// servers, and edge endpoints respect physical possibility (network edges
// connect NICs on different servers; NVLink edges connect GPUs on the same
// server; PCIe edges connect a GPU and a NIC on the same server).
func (g *Graph) Validate() error {
	ranks := make(map[int]bool)
	servers := make(map[int]bool)
	nicServers := make(map[int]bool)
	for _, n := range g.nodes {
		if n.Kind != KindSwitch {
			servers[n.Server] = true
		}
		switch n.Kind {
		case KindGPU:
			if ranks[n.Rank] {
				return fmt.Errorf("duplicate GPU rank %d", n.Rank)
			}
			ranks[n.Rank] = true
		case KindNIC:
			nicServers[n.Server] = true
		}
	}
	for r := 0; r < len(ranks); r++ {
		if !ranks[r] {
			return fmt.Errorf("GPU ranks not contiguous: missing rank %d of %d", r, len(ranks))
		}
	}
	if len(servers) > 1 {
		for s := range servers {
			if !nicServers[s] {
				return fmt.Errorf("server %d has no NIC in a multi-server graph", s)
			}
		}
	}
	for _, e := range g.edges {
		from, to := g.nodes[e.From], g.nodes[e.To]
		switch e.Type {
		case LinkNVLink:
			if from.Kind != KindGPU || to.Kind != KindGPU || from.Server != to.Server {
				return fmt.Errorf("edge %d: NVLink must connect GPUs on one server (%v -> %v)", e.ID, from, to)
			}
		case LinkPCIe:
			if from.Server != to.Server {
				return fmt.Errorf("edge %d: PCIe edge crosses servers (%v -> %v)", e.ID, from, to)
			}
			if from.Kind == to.Kind {
				return fmt.Errorf("edge %d: PCIe edge must connect a GPU and a NIC (%v -> %v)", e.ID, from, to)
			}
		case LinkRDMA, LinkTCP:
			// NIC↔switch (server ports) or switch↔switch (the multi-tier
			// fabrics of generated datacenter topologies: leaf↔spine,
			// rail↔spine, leaf↔leaf).
			ok := (from.Kind == KindNIC && to.Kind == KindSwitch) ||
				(from.Kind == KindSwitch && to.Kind == KindNIC) ||
				(from.Kind == KindSwitch && to.Kind == KindSwitch)
			if !ok {
				return fmt.Errorf("edge %d: network edge must connect a NIC and a switch, or two switches (%v -> %v)", e.ID, from, to)
			}
		default:
			return fmt.Errorf("edge %d: unknown link type %v", e.ID, e.Type)
		}
		if e.BandwidthBps <= 0 {
			return fmt.Errorf("edge %d: non-positive bandwidth %v", e.ID, e.BandwidthBps)
		}
		if e.Alpha < 0 {
			return fmt.Errorf("edge %d: negative latency %v", e.ID, e.Alpha)
		}
	}
	return nil
}

package topology

import "testing"

// diamondGraph builds src → {a, b} → dst with the middle nodes' edges
// inserted in the given order, yielding two equal-cost detours.
func diamondGraph(swapInsertion bool) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	g := NewGraph()
	src := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	a := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	b := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	dst := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	mids := []NodeID{a, b}
	if swapInsertion {
		mids = []NodeID{b, a}
	}
	for _, mid := range mids {
		g.AddEdge(Edge{From: src, To: mid, Type: LinkRDMA, BandwidthBps: 1e9})
		g.AddEdge(Edge{From: mid, To: dst, Type: LinkRDMA, BandwidthBps: 1e9})
	}
	return g, src, a, b, dst
}

// TestShortestPathAvoidLexTieBreak: among equal-hop detours the
// lexicographically smallest node sequence must win regardless of edge
// insertion order — the regression for congestion reroutes replaying
// bit-identically at any worker count, where each domain rebuilds the
// detour independently.
func TestShortestPathAvoidLexTieBreak(t *testing.T) {
	for _, swap := range []bool{false, true} {
		g, src, a, _, dst := diamondGraph(swap)
		path := g.ShortestPathAvoid(src, dst, func(EdgeID) bool { return false })
		want := []NodeID{src, a, dst} // a < b, so src→a→dst is lex-smaller
		if len(path) != len(want) {
			t.Fatalf("swap=%v: path %v, want %v", swap, path, want)
		}
		for i := range want {
			if path[i] != want[i] {
				t.Fatalf("swap=%v: path %v, want %v (insertion order leaked into tie-break)", swap, path, want)
			}
		}
	}
}

// TestShortestPathAvoidLexPrefersShorter: the lex tie-break must never
// trade hops for node order — cost still dominates.
func TestShortestPathAvoidLexPrefersShorter(t *testing.T) {
	g := NewGraph()
	src := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	mid := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	dst := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	far := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
	g.AddEdge(Edge{From: src, To: mid, Type: LinkRDMA, BandwidthBps: 1e9})
	g.AddEdge(Edge{From: mid, To: far, Type: LinkRDMA, BandwidthBps: 1e9})
	g.AddEdge(Edge{From: far, To: dst, Type: LinkRDMA, BandwidthBps: 1e9})
	g.AddEdge(Edge{From: mid, To: dst, Type: LinkRDMA, BandwidthBps: 1e9})
	path := g.ShortestPathAvoid(src, dst, func(EdgeID) bool { return false })
	if len(path) != 3 || path[1] != mid {
		t.Fatalf("path %v, want the 2-hop route via %v", path, mid)
	}
}

// TestECMPPathValid: every keyed path on a fat-tree is a minimum-hop route
// between its endpoints, and the same key always picks the same path.
func TestECMPPathValid(t *testing.T) {
	topo, err := FatTreeSpec{Pods: 4, Servers: 2, GPUs: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(15) // last pod → cross-pod route over the spines
	base := g.ShortestPath(src, dst)
	for key := uint64(0); key < 32; key++ {
		path := g.ECMPPath(src, dst, key)
		if path == nil {
			t.Fatalf("key %d: no path", key)
		}
		if len(path) != len(base) {
			t.Fatalf("key %d: path %v has %d hops, shortest is %d", key, path, len(path)-1, len(base)-1)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("key %d: path %v does not connect %v→%v", key, path, src, dst)
		}
		for i := 0; i+1 < len(path); i++ {
			if _, ok := g.EdgeBetween(path[i], path[i+1]); !ok {
				t.Fatalf("key %d: path %v uses non-edge %v→%v", key, path, path[i], path[i+1])
			}
		}
		again := g.ECMPPath(src, dst, key)
		for i := range path {
			if again[i] != path[i] {
				t.Fatalf("key %d: non-deterministic path %v vs %v", key, path, again)
			}
		}
	}
}

// TestECMPPathSpreads: with several equal-cost spines, distinct flow keys
// must not all collapse onto one uplink.
func TestECMPPathSpreads(t *testing.T) {
	topo, err := FatTreeSpec{Pods: 4, Servers: 2, GPUs: 2, Spines: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(15)
	spines := make(map[NodeID]bool)
	for key := uint64(0); key < 64; key++ {
		path := g.ECMPPath(src, dst, key)
		for _, n := range path {
			if node := g.Node(n); node.Kind == KindSwitch && node.Index >= 4 {
				spines[n] = true
			}
		}
	}
	if len(spines) < 2 {
		t.Fatalf("64 flow keys used %d spine(s); ECMP is not spreading", len(spines))
	}
}

// TestECMPPathAvoid: avoiding one spine's uplinks steers every key off it;
// avoiding everything returns nil.
func TestECMPPathAvoid(t *testing.T) {
	topo, err := FatTreeSpec{Pods: 4, Servers: 2, GPUs: 2, Spines: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(15)
	var banned NodeID = -1
	for _, n := range g.Nodes() {
		if n.Kind == KindSwitch && n.Index >= 4 {
			banned = n.ID
			break
		}
	}
	if banned == -1 {
		t.Fatal("no spine found")
	}
	avoid := func(ge EdgeID) bool {
		e := g.Edge(ge)
		return e.From == banned || e.To == banned
	}
	for key := uint64(0); key < 32; key++ {
		path := g.ECMPPathAvoid(src, dst, key, avoid)
		if path == nil {
			t.Fatalf("key %d: no path with one of four spines avoided", key)
		}
		for _, n := range path {
			if n == banned {
				t.Fatalf("key %d: path %v crosses avoided spine %v", key, path, banned)
			}
		}
	}
	if p := g.ECMPPathAvoid(src, dst, 0, func(EdgeID) bool { return true }); p != nil {
		t.Fatalf("path %v found with every edge avoided", p)
	}
	if p := g.ECMPPathAvoid(src, src, 0, func(EdgeID) bool { return true }); len(p) != 1 || p[0] != src {
		t.Fatalf("self path = %v, want [%v]", p, src)
	}
}

package topology

import "time"

// GPUModel identifies a GPU generation. The catalog values below set NVLink
// bandwidth and relative compute throughput; they are calibrated to the
// ratios the paper's testbed exhibits (A100 vs V100, NVLink gens, PCIe 3/4),
// not to any single vendor datasheet number.
type GPUModel int

// Supported GPU models.
const (
	GPUA100 GPUModel = iota + 1
	GPUV100
	GPUH100
	GPUM40
)

// String names the GPU generation.
func (m GPUModel) String() string {
	switch m {
	case GPUA100:
		return "A100"
	case GPUV100:
		return "V100"
	case GPUH100:
		return "H100"
	case GPUM40:
		return "M40"
	default:
		return "GPU?"
	}
}

// NVLinkBps returns the per-direction bandwidth of one NVLink peer
// connection in bytes/second, or 0 if the model has no NVLink.
func (m GPUModel) NVLinkBps() float64 {
	switch m {
	case GPUH100:
		return 450e9 // NVLink 4.0 class
	case GPUA100:
		return 150e9 // NVLink 3.0 class
	case GPUV100:
		return 60e9 // NVLink 2.0 class
	default:
		return 0 // M40 era: PCIe only
	}
}

// ComputeScale returns relative training throughput (A100 ≡ 1.0). The
// straggler model divides per-iteration compute time by this factor.
func (m GPUModel) ComputeScale() float64 {
	switch m {
	case GPUH100:
		return 2.2
	case GPUA100:
		return 1.0
	case GPUV100:
		return 0.45
	case GPUM40:
		return 0.12
	default:
		return 1.0
	}
}

// PCIeGen identifies a PCIe generation (x16 effective host link bandwidth).
type PCIeGen int

// Supported PCIe generations.
const (
	PCIe3 PCIeGen = 3
	PCIe4 PCIeGen = 4
	PCIe5 PCIeGen = 5
)

// Bps returns the effective x16 bandwidth in bytes per second.
func (g PCIeGen) Bps() float64 {
	switch g {
	case PCIe5:
		return 48e9
	case PCIe4:
		return 24e9
	default:
		return 12e9
	}
}

// Nominal per-message latencies of the link classes. The profiler estimates
// these at run time; the fabric uses them as ground truth.
const (
	NVLinkAlpha = 2 * time.Microsecond
	PCIeAlpha   = 3 * time.Microsecond
	RDMAAlpha   = 5 * time.Microsecond
	TCPAlpha    = 30 * time.Microsecond
)

// TCPPerStreamBps is the peak bandwidth one TCP stream achieves due to
// kernel-space overhead (the paper measures ~20 Gbps per channel on a
// 100 Gbps NIC, Sec. VI-D). Parallel streams share the NIC up to its full
// capacity.
const TCPPerStreamBps = 2.5e9

// Gbps converts gigabits per second to bytes per second.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// NICSpec describes one network interface card.
type NICSpec struct {
	// BandwidthBps is the full-duplex line rate in bytes per second.
	BandwidthBps float64
}

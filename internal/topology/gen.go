package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file generates datacenter-scale cluster topologies — fat-tree,
// rail-optimized and multi-NIC leaf fabrics — parameterized by pods/rails,
// oversubscription and NIC rates, together with the domain assignment the
// partitioned event engine needs. The shapes follow the multi-NIC /
// rail-optimized GPU-cluster layouts described in "Demystifying NCCL"
// (PAPERS.md); the paper's 6-server testbed (internal/cluster) remains the
// single-switch special case.

// Spec is a generated-topology specification. Name returns a canonical
// string that ParseTopo round-trips (the scale analogue of
// cluster.ParseCase naming).
type Spec interface {
	Name() string
	Build() (*Topo, error)
}

// Topo is a generated topology: the physical cluster, the logical graph
// with its multi-tier switch fabric, the domain each node belongs to, and
// the declared one-direction bisection capacity of the canonical half/half
// cut (pods or groups 0..D/2-1 versus the rest), which the property tests
// check against the generated edges.
type Topo struct {
	Spec       Spec
	Cluster    *Cluster
	Graph      *Graph
	NodeDomain []int
	Domains    int
	Bisection  float64
}

// Partition splits the topology's graph along its domain assignment.
func (t *Topo) Partition() (*Partition, error) {
	return NewPartition(t.Graph, t.NodeDomain)
}

// FatTreeSpec is a two-tier fat-tree: every pod has one leaf switch
// aggregating its servers' NICs, and all pods share a spine layer. The pod
// uplink totals Servers×NIC/Oversub, split evenly over the spines. Each
// pod is one simulation domain; spines are distributed round-robin over
// the pod domains.
type FatTreeSpec struct {
	Pods    int     // number of pods (= domains)
	Servers int     // servers per pod
	GPUs    int     // GPUs per server
	Spines  int     // spine switches shared by all pods
	Oversub float64 // pod uplink oversubscription factor (>= 1)
	NICGbps float64 // per-server NIC line rate in Gbit/s
}

func (s FatTreeSpec) withDefaults() FatTreeSpec {
	if s.Servers == 0 {
		s.Servers = 4
	}
	if s.GPUs == 0 {
		s.GPUs = 8
	}
	if s.Spines == 0 {
		s.Spines = max(1, s.Pods/2)
	}
	if s.Oversub == 0 {
		s.Oversub = 1
	}
	if s.NICGbps == 0 {
		s.NICGbps = 100
	}
	return s
}

// Name returns the canonical round-trippable form.
func (s FatTreeSpec) Name() string {
	s = s.withDefaults()
	return fmt.Sprintf("fattree:pods=%d,servers=%d,gpus=%d,spines=%d,oversub=%s,nic=%s",
		s.Pods, s.Servers, s.GPUs, s.Spines, fmtF(s.Oversub), fmtF(s.NICGbps))
}

// Build materialises the fat-tree.
func (s FatTreeSpec) Build() (*Topo, error) {
	s = s.withDefaults()
	if s.Pods < 1 || s.Servers < 1 || s.GPUs < 1 || s.Spines < 1 {
		return nil, fmt.Errorf("topology: %s: all counts must be positive", s.Name())
	}
	if s.Oversub < 1 || s.NICGbps <= 0 {
		return nil, fmt.Errorf("topology: %s: oversub must be >= 1 and nic positive", s.Name())
	}
	nicBps := Gbps(s.NICGbps)
	specs := make([]ServerSpec, s.Pods*s.Servers)
	for i := range specs {
		specs[i] = genServer(s.GPUs, 1, nicBps)
	}
	cl, err := NewCluster(TransportRDMA, specs...)
	if err != nil {
		return nil, err
	}
	g, nicIDs, dom, err := genServerGraph(cl, false, func(server int) int { return server / s.Servers })
	if err != nil {
		return nil, err
	}

	uplink := float64(s.Servers) * nicBps / s.Oversub
	leaves := make([]NodeID, s.Pods)
	for p := 0; p < s.Pods; p++ {
		leaves[p] = g.AddNode(Node{Kind: KindSwitch, Server: -1, Index: p, Rank: -1})
		*dom = append(*dom, p)
		for srv := p * s.Servers; srv < (p+1)*s.Servers; srv++ {
			g.AddBidirectional(Edge{
				From: nicIDs[srv][0], To: leaves[p],
				Type: LinkRDMA, Alpha: RDMAAlpha / 2, BandwidthBps: nicBps,
			})
		}
	}
	for sp := 0; sp < s.Spines; sp++ {
		spine := g.AddNode(Node{Kind: KindSwitch, Server: -1, Index: s.Pods + sp, Rank: -1})
		*dom = append(*dom, sp%s.Pods)
		for p := 0; p < s.Pods; p++ {
			g.AddBidirectional(Edge{
				From: leaves[p], To: spine,
				Type: LinkRDMA, Alpha: RDMAAlpha / 2, BandwidthBps: uplink / float64(s.Spines),
			})
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: %s: %w", s.Name(), err)
	}
	return &Topo{
		Spec: s, Cluster: cl, Graph: g, NodeDomain: *dom, Domains: s.Pods,
		Bisection: float64(s.Pods/2) * uplink,
	}, nil
}

// RailSpec is a rail-optimized cluster (the DGX-style layout of
// "Demystifying NCCL"): every server has Rails GPUs and Rails NICs, GPU i
// is wired to NIC i only, and NIC i of every server in a group connects to
// the group's rail-i switch. Rail switches of rail i across groups meet at
// a per-rail spine. Each group is one simulation domain; per-rail spines
// are distributed round-robin over the group domains.
type RailSpec struct {
	Groups  int     // rail-optimized groups (= domains)
	Servers int     // servers per group
	Rails   int     // rails = NICs per server = GPUs per server
	Oversub float64 // rail uplink oversubscription factor (>= 1)
	NICGbps float64 // per-NIC line rate in Gbit/s
}

func (s RailSpec) withDefaults() RailSpec {
	if s.Servers == 0 {
		s.Servers = 4
	}
	if s.Rails == 0 {
		s.Rails = 8
	}
	if s.Oversub == 0 {
		s.Oversub = 1
	}
	if s.NICGbps == 0 {
		s.NICGbps = 100
	}
	return s
}

// Name returns the canonical round-trippable form.
func (s RailSpec) Name() string {
	s = s.withDefaults()
	return fmt.Sprintf("rail:groups=%d,servers=%d,rails=%d,oversub=%s,nic=%s",
		s.Groups, s.Servers, s.Rails, fmtF(s.Oversub), fmtF(s.NICGbps))
}

// Build materialises the rail-optimized cluster.
func (s RailSpec) Build() (*Topo, error) {
	s = s.withDefaults()
	if s.Groups < 1 || s.Servers < 1 || s.Rails < 1 {
		return nil, fmt.Errorf("topology: %s: all counts must be positive", s.Name())
	}
	if s.Oversub < 1 || s.NICGbps <= 0 {
		return nil, fmt.Errorf("topology: %s: oversub must be >= 1 and nic positive", s.Name())
	}
	nicBps := Gbps(s.NICGbps)
	specs := make([]ServerSpec, s.Groups*s.Servers)
	for i := range specs {
		specs[i] = genServer(s.Rails, s.Rails, nicBps)
	}
	cl, err := NewCluster(TransportRDMA, specs...)
	if err != nil {
		return nil, err
	}
	g, nicIDs, dom, err := genServerGraph(cl, true, func(server int) int { return server / s.Servers })
	if err != nil {
		return nil, err
	}

	uplink := float64(s.Servers) * nicBps / s.Oversub
	rails := make([][]NodeID, s.Groups) // [group][rail]
	idx := 0
	for grp := 0; grp < s.Groups; grp++ {
		rails[grp] = make([]NodeID, s.Rails)
		for r := 0; r < s.Rails; r++ {
			rails[grp][r] = g.AddNode(Node{Kind: KindSwitch, Server: -1, Index: idx, Rank: -1})
			*dom = append(*dom, grp)
			idx++
			for srv := grp * s.Servers; srv < (grp+1)*s.Servers; srv++ {
				g.AddBidirectional(Edge{
					From: nicIDs[srv][r], To: rails[grp][r],
					Type: LinkRDMA, Alpha: RDMAAlpha / 2, BandwidthBps: nicBps,
				})
			}
		}
	}
	if s.Groups > 1 {
		for r := 0; r < s.Rails; r++ {
			spine := g.AddNode(Node{Kind: KindSwitch, Server: -1, Index: idx, Rank: -1})
			*dom = append(*dom, r%s.Groups)
			idx++
			for grp := 0; grp < s.Groups; grp++ {
				g.AddBidirectional(Edge{
					From: rails[grp][r], To: spine,
					Type: LinkRDMA, Alpha: RDMAAlpha / 2, BandwidthBps: uplink,
				})
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: %s: %w", s.Name(), err)
	}
	return &Topo{
		Spec: s, Cluster: cl, Graph: g, NodeDomain: *dom, Domains: s.Groups,
		Bisection: float64(s.Groups/2) * float64(s.Rails) * uplink,
	}, nil
}

// MultiNICSpec is a flat multi-NIC cluster: every server has several NICs
// (every GPU can use any local NIC), servers are grouped under leaf
// switches, and the leaves form a full mesh. Each group is one simulation
// domain.
type MultiNICSpec struct {
	Servers int     // total servers (must be divisible by Group)
	GPUs    int     // GPUs per server
	NICs    int     // NICs per server
	Group   int     // servers per leaf switch (= per domain)
	Oversub float64 // leaf uplink oversubscription factor (>= 1)
	NICGbps float64 // per-NIC line rate in Gbit/s
}

func (s MultiNICSpec) withDefaults() MultiNICSpec {
	if s.GPUs == 0 {
		s.GPUs = 8
	}
	if s.NICs == 0 {
		s.NICs = 4
	}
	if s.Group == 0 {
		s.Group = max(1, s.Servers/4)
	}
	if s.Oversub == 0 {
		s.Oversub = 1
	}
	if s.NICGbps == 0 {
		s.NICGbps = 100
	}
	return s
}

// Name returns the canonical round-trippable form.
func (s MultiNICSpec) Name() string {
	s = s.withDefaults()
	return fmt.Sprintf("multinic:servers=%d,gpus=%d,nics=%d,group=%d,oversub=%s,nic=%s",
		s.Servers, s.GPUs, s.NICs, s.Group, fmtF(s.Oversub), fmtF(s.NICGbps))
}

// Build materialises the multi-NIC cluster.
func (s MultiNICSpec) Build() (*Topo, error) {
	s = s.withDefaults()
	if s.Servers < 1 || s.GPUs < 1 || s.NICs < 1 || s.Group < 1 {
		return nil, fmt.Errorf("topology: %s: all counts must be positive", s.Name())
	}
	if s.Servers%s.Group != 0 {
		return nil, fmt.Errorf("topology: %s: %d servers not divisible by group size %d", s.Name(), s.Servers, s.Group)
	}
	if s.Oversub < 1 || s.NICGbps <= 0 {
		return nil, fmt.Errorf("topology: %s: oversub must be >= 1 and nic positive", s.Name())
	}
	nicBps := Gbps(s.NICGbps)
	groups := s.Servers / s.Group
	specs := make([]ServerSpec, s.Servers)
	for i := range specs {
		specs[i] = genServer(s.GPUs, s.NICs, nicBps)
	}
	cl, err := NewCluster(TransportRDMA, specs...)
	if err != nil {
		return nil, err
	}
	g, nicIDs, dom, err := genServerGraph(cl, false, func(server int) int { return server / s.Group })
	if err != nil {
		return nil, err
	}

	leaves := make([]NodeID, groups)
	for grp := 0; grp < groups; grp++ {
		leaves[grp] = g.AddNode(Node{Kind: KindSwitch, Server: -1, Index: grp, Rank: -1})
		*dom = append(*dom, grp)
		for srv := grp * s.Group; srv < (grp+1)*s.Group; srv++ {
			for _, nic := range nicIDs[srv] {
				g.AddBidirectional(Edge{
					From: nic, To: leaves[grp],
					Type: LinkRDMA, Alpha: RDMAAlpha / 2, BandwidthBps: nicBps,
				})
			}
		}
	}
	uplink := float64(s.Group*s.NICs) * nicBps / s.Oversub
	if groups > 1 {
		pair := uplink / float64(groups-1)
		for a := 0; a < groups; a++ {
			for b := a + 1; b < groups; b++ {
				g.AddBidirectional(Edge{
					From: leaves[a], To: leaves[b],
					Type: LinkRDMA, Alpha: RDMAAlpha, BandwidthBps: pair,
				})
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: %s: %w", s.Name(), err)
	}
	bisect := 0.0
	if groups > 1 {
		half := groups / 2
		bisect = float64(half) * float64(groups-half) * uplink / float64(groups-1)
	}
	return &Topo{
		Spec: s, Cluster: cl, Graph: g, NodeDomain: *dom, Domains: groups,
		Bisection: bisect,
	}, nil
}

// genServer builds one generated-cluster server: gpus A100s (full NVLink
// mesh), nics NICs at nicBps each.
func genServer(gpus, nics int, nicBps float64) ServerSpec {
	n := make([]NICSpec, nics)
	for i := range n {
		n[i] = NICSpec{BandwidthBps: nicBps}
	}
	g := make([]GPUModel, gpus)
	for i := range g {
		g[i] = GPUA100
	}
	return ServerSpec{GPUs: g, NICs: n}
}

// genServerGraph builds the intra-server part of a generated topology's
// graph — GPU and NIC nodes, NVLink mesh, PCIe host links — mirroring
// Cluster.LogicalGraph but leaving the network fabric to the caller. With
// rail set, GPU i is wired only to NIC i (the rail-optimized property);
// otherwise every GPU reaches every local NIC. It returns the per-server
// NIC node ids and the node→domain assignment so far (a pointer so the
// caller can keep appending switch domains).
func genServerGraph(c *Cluster, rail bool, domainOf func(server int) int) (*Graph, [][]NodeID, *[]int, error) {
	g := NewGraph()
	var dom []int
	rank := 0
	gpuIDs := make([][]NodeID, len(c.Servers))
	nicIDs := make([][]NodeID, len(c.Servers))
	for si, srv := range c.Servers {
		for gi := range srv.GPUs {
			id := g.AddNode(Node{Kind: KindGPU, Server: si, Index: gi, Rank: rank})
			gpuIDs[si] = append(gpuIDs[si], id)
			dom = append(dom, domainOf(si))
			rank++
		}
		for ni := range srv.NICs {
			id := g.AddNode(Node{Kind: KindNIC, Server: si, Index: ni, Rank: -1})
			nicIDs[si] = append(nicIDs[si], id)
			dom = append(dom, domainOf(si))
		}
	}
	for si, srv := range c.Servers {
		for _, pair := range srv.nvlinkPairs() {
			a, b := pair[0], pair[1]
			bw := srv.GPUs[a].NVLinkBps()
			if other := srv.GPUs[b].NVLinkBps(); other < bw {
				bw = other
			}
			g.AddBidirectional(Edge{
				From: gpuIDs[si][a], To: gpuIDs[si][b],
				Type: LinkNVLink, Alpha: NVLinkAlpha, BandwidthBps: bw,
			})
		}
		for gi, gid := range gpuIDs[si] {
			for ni, nid := range nicIDs[si] {
				if rail && gi != ni {
					continue
				}
				g.AddBidirectional(Edge{
					From: gid, To: nid,
					Type: LinkPCIe, Alpha: PCIeAlpha, BandwidthBps: srv.PCIe.Bps(),
				})
			}
		}
	}
	return g, nicIDs, &dom, nil
}

// ParseTopo parses a generated-topology name: "kind:key=value,...", e.g.
// "rail:groups=8,servers=16,rails=8" or "fattree:pods=8,oversub=2".
// Omitted keys take the spec's defaults; Spec.Name always prints every key
// canonically, so ParseTopo(spec.Name()) round-trips exactly.
func ParseTopo(s string) (Spec, error) {
	kind, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	kv, err := parseKV(rest)
	if err != nil {
		return nil, fmt.Errorf("topology: spec %q: %w", s, err)
	}
	geti := func(key string) (int, bool, error) {
		v, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		delete(kv, key)
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, false, fmt.Errorf("bad %s=%q", key, v)
		}
		return n, true, nil
	}
	getf := func(key string) (float64, bool, error) {
		v, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		delete(kv, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return 0, false, fmt.Errorf("bad %s=%q", key, v)
		}
		return f, true, nil
	}
	var spec Spec
	switch strings.ToLower(kind) {
	case "fattree":
		var ft FatTreeSpec
		err = firstErr(
			setInt(&ft.Pods, "pods", geti), setInt(&ft.Servers, "servers", geti),
			setInt(&ft.GPUs, "gpus", geti), setInt(&ft.Spines, "spines", geti),
			setFloat(&ft.Oversub, "oversub", getf), setFloat(&ft.NICGbps, "nic", getf),
		)
		spec = ft.withDefaults()
	case "rail":
		var r RailSpec
		err = firstErr(
			setInt(&r.Groups, "groups", geti), setInt(&r.Servers, "servers", geti),
			setInt(&r.Rails, "rails", geti),
			setFloat(&r.Oversub, "oversub", getf), setFloat(&r.NICGbps, "nic", getf),
		)
		spec = r.withDefaults()
	case "multinic":
		var m MultiNICSpec
		err = firstErr(
			setInt(&m.Servers, "servers", geti), setInt(&m.GPUs, "gpus", geti),
			setInt(&m.NICs, "nics", geti), setInt(&m.Group, "group", geti),
			setFloat(&m.Oversub, "oversub", getf), setFloat(&m.NICGbps, "nic", getf),
		)
		spec = m.withDefaults()
	default:
		return nil, fmt.Errorf("topology: unknown topology kind %q (want fattree, rail or multinic)", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("topology: spec %q: %w", s, err)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("topology: spec %q: unknown key(s) %v", s, keys)
	}
	return spec, nil
}

func parseKV(s string) (map[string]string, error) {
	kv := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return kv, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed parameter %q", part)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func setInt(dst *int, key string, get func(string) (int, bool, error)) error {
	v, ok, err := get(key)
	if err != nil {
		return err
	}
	if ok {
		*dst = v
	}
	return nil
}

func setFloat(dst *float64, key string, get func(string) (float64, bool, error)) error {
	v, ok, err := get(key)
	if err != nil {
		return err
	}
	if ok {
		*dst = v
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fmtF formats a float for canonical topology names.
func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Package topology models the physical layout of a training cluster (servers,
// GPUs, NICs, NUMA nodes, PCIe switches) and the logical communication graph
// AdapCC routes collectives over: GPU and NIC nodes connected by NVLink,
// PCIe and network edges (paper Sec. III, Fig. 5a).
package topology

import (
	"fmt"
	"time"
)

// NodeID identifies a node in a logical Graph.
type NodeID int

// EdgeID identifies a directed edge in a logical Graph.
type EdgeID int

// NodeKind distinguishes the two node classes of the logical graph.
type NodeKind int

// Logical graph node kinds.
const (
	KindGPU NodeKind = iota + 1
	KindNIC
	// KindSwitch is the network core: every NIC connects to it with an
	// uplink (egress port) and a downlink (ingress port) edge, so a
	// server's total network bandwidth is bounded by its NIC ports —
	// while any instance pair can still communicate directly (the
	// paper's fully-connected instance-to-instance view).
	KindSwitch
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindGPU:
		return "gpu"
	case KindNIC:
		return "nic"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// LinkType classifies a logical edge. AdapCC profiles NVLink and network
// links; PCIe transfers are overlapped with network transmission and carry
// nominal parameters only (paper Sec. IV-B).
type LinkType int

// Logical link types.
const (
	LinkNVLink LinkType = iota + 1
	LinkPCIe
	LinkRDMA
	LinkTCP
)

// String names the link type.
func (t LinkType) String() string {
	switch t {
	case LinkNVLink:
		return "nvlink"
	case LinkPCIe:
		return "pcie"
	case LinkRDMA:
		return "rdma"
	case LinkTCP:
		return "tcp"
	default:
		return fmt.Sprintf("link(%d)", int(t))
	}
}

// Network reports whether the link crosses servers.
func (t LinkType) Network() bool { return t == LinkRDMA || t == LinkTCP }

// Transport selects the inter-server network stack for a cluster build.
type Transport int

// Inter-server transports (paper Sec. II-A: NICs range 1–200 Gbps and use
// either RDMA or TCP stacks).
const (
	TransportRDMA Transport = iota + 1
	TransportTCP
)

// String names the inter-server transport.
func (t Transport) String() string {
	switch t {
	case TransportRDMA:
		return "rdma"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// LinkType returns the logical link type realised by this transport.
func (t Transport) LinkType() LinkType {
	if t == TransportTCP {
		return LinkTCP
	}
	return LinkRDMA
}

// Node is a vertex of the logical communication graph.
type Node struct {
	ID     NodeID
	Kind   NodeKind
	Server int // instance index within the job
	Index  int // GPU or NIC index within the server
	Rank   int // global worker rank for GPUs; -1 for NICs
}

// String renders a compact node identity ("gpu2@s1(rank6)").
func (n Node) String() string {
	switch n.Kind {
	case KindGPU:
		return fmt.Sprintf("gpu%d@s%d(rank%d)", n.Index, n.Server, n.Rank)
	case KindSwitch:
		return "core-switch"
	default:
		return fmt.Sprintf("nic%d@s%d", n.Index, n.Server)
	}
}

// Edge is a directed logical link with its nominal α–β properties. The
// profiler refines Alpha/BandwidthBps at run time; the fabric additionally
// applies time-varying bandwidth schedules.
type Edge struct {
	ID   EdgeID
	From NodeID
	To   NodeID
	Type LinkType

	// Alpha is the per-message latency (the α of the α–β cost model).
	Alpha time.Duration
	// BandwidthBps is the link bandwidth in bytes per second (1/β).
	BandwidthBps float64
	// PerStreamBps caps the bandwidth a single stream can extract, or 0
	// for no cap. Models the ~20 Gbps single-TCP-channel kernel-space
	// ceiling the paper observes (Sec. VI-D).
	PerStreamBps float64
}

// Beta returns the inverse bandwidth in seconds per byte.
func (e Edge) Beta() float64 {
	if e.BandwidthBps <= 0 {
		return 0
	}
	return 1 / e.BandwidthBps
}

// TransferTime returns α + β·size for a message of the given size, using the
// nominal link parameters.
func (e Edge) TransferTime(size int64) time.Duration {
	if e.BandwidthBps <= 0 {
		return e.Alpha
	}
	return e.Alpha + time.Duration(float64(size)/e.BandwidthBps*float64(time.Second))
}

package topology

import "testing"

// TestShortestPathAvoidNilPredicate: a nil predicate degrades to plain
// shortest-path routing.
func TestShortestPathAvoidNilPredicate(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(3)
	want := g.ShortestPath(src, dst)
	got := g.ShortestPathAvoid(src, dst, nil)
	if len(got) != len(want) {
		t.Fatalf("nil-predicate path %v != ShortestPath %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-predicate path %v != ShortestPath %v", got, want)
		}
	}
}

// TestShortestPathAvoidDetours: blacklisting the direct NVLink edge between
// two same-server GPUs forces a detour that really avoids it.
func TestShortestPathAvoidDetours(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(1)
	direct, ok := g.EdgeBetween(src, dst)
	if !ok {
		t.Fatal("no direct NVLink edge between same-server GPUs")
	}
	path := g.ShortestPathAvoid(src, dst, func(ge EdgeID) bool { return ge == direct })
	if path == nil {
		t.Fatal("no detour found around the NVLink edge (PCIe route exists)")
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("detour %v does not connect %v -> %v", path, src, dst)
	}
	if len(path) < 3 {
		t.Fatalf("detour %v still direct", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if ge, ok := g.EdgeBetween(path[i], path[i+1]); ok && ge == direct {
			t.Fatalf("detour %v still uses avoided edge %d", path, direct)
		}
	}
}

// TestShortestPathAvoidDisconnected: avoiding every edge out of the source
// disconnects it — the router must return nil, not panic or loop.
func TestShortestPathAvoidDisconnected(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(3)
	avoid := make(map[EdgeID]bool)
	for _, ge := range g.Out(src) {
		avoid[ge] = true
	}
	if p := g.ShortestPathAvoid(src, dst, func(ge EdgeID) bool { return avoid[ge] }); p != nil {
		t.Fatalf("path %v found with every source edge avoided", p)
	}
}

// TestShortestPathAvoidSelf: the self path survives any predicate.
func TestShortestPathAvoidSelf(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.GPUByRank(0)
	if p := g.ShortestPathAvoid(src, src, func(EdgeID) bool { return true }); len(p) != 1 || p[0] != src {
		t.Errorf("self path = %v, want [%v]", p, src)
	}
}

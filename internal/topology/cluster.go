package topology

import (
	"fmt"
)

// ServerSpec describes one physical server (cloud instance): its GPUs, NICs
// and internal layout. The layout fields (NUMA and PCIe-switch placement)
// are the ground truth the Detector must rediscover through probing.
type ServerSpec struct {
	GPUs []GPUModel
	NICs []NICSpec

	PCIe PCIeGen

	// NVLinkPairs lists GPU index pairs directly connected by NVLink.
	// Nil means "full mesh among NVLink-capable GPUs". An explicit empty
	// (non-nil, zero-length) slice means no NVLink at all — the
	// resource-fragmentation case where NCCL falls back to PCIe rings
	// (paper Sec. II-A).
	NVLinkPairs [][2]int

	// NUMACount is the number of NUMA nodes (default 2).
	NUMACount int
	// GPUNuma[i] is the NUMA node of GPU i (default: first half on 0,
	// second half on 1).
	GPUNuma []int
	// NICNuma[i] is the NUMA node of NIC i (default: all on node 0).
	NICNuma []int
	// GPUSwitch[i] is the PCIe switch id of GPU i (default: one switch
	// per NUMA node, GPUs follow their NUMA node).
	GPUSwitch []int
	// NICSwitch[i] is the PCIe switch id of NIC i (default: switch of
	// the NIC's NUMA node).
	NICSwitch []int
}

// normalize fills defaulted layout fields and validates sizes.
func (s *ServerSpec) normalize() error {
	if len(s.GPUs) == 0 {
		return fmt.Errorf("server has no GPUs")
	}
	if len(s.NICs) == 0 {
		return fmt.Errorf("server has no NICs")
	}
	if s.PCIe == 0 {
		s.PCIe = PCIe4
	}
	if s.NUMACount <= 0 {
		s.NUMACount = 2
	}
	if s.GPUNuma == nil {
		s.GPUNuma = make([]int, len(s.GPUs))
		for i := range s.GPUNuma {
			s.GPUNuma[i] = i * s.NUMACount / len(s.GPUs)
		}
	}
	if len(s.GPUNuma) != len(s.GPUs) {
		return fmt.Errorf("GPUNuma has %d entries for %d GPUs", len(s.GPUNuma), len(s.GPUs))
	}
	if s.NICNuma == nil {
		s.NICNuma = make([]int, len(s.NICs))
	}
	if len(s.NICNuma) != len(s.NICs) {
		return fmt.Errorf("NICNuma has %d entries for %d NICs", len(s.NICNuma), len(s.NICs))
	}
	if s.GPUSwitch == nil {
		s.GPUSwitch = make([]int, len(s.GPUs))
		copy(s.GPUSwitch, s.GPUNuma)
	}
	if len(s.GPUSwitch) != len(s.GPUs) {
		return fmt.Errorf("GPUSwitch has %d entries for %d GPUs", len(s.GPUSwitch), len(s.GPUs))
	}
	if s.NICSwitch == nil {
		s.NICSwitch = make([]int, len(s.NICs))
		copy(s.NICSwitch, s.NICNuma)
	}
	if len(s.NICSwitch) != len(s.NICs) {
		return fmt.Errorf("NICSwitch has %d entries for %d NICs", len(s.NICSwitch), len(s.NICs))
	}
	for i, n := range s.GPUNuma {
		if n < 0 || n >= s.NUMACount {
			return fmt.Errorf("GPU %d on invalid NUMA node %d", i, n)
		}
	}
	for i, n := range s.NICNuma {
		if n < 0 || n >= s.NUMACount {
			return fmt.Errorf("NIC %d on invalid NUMA node %d", i, n)
		}
	}
	return nil
}

// nvlinkPairs resolves the NVLink pair list (nil → full mesh of capable
// GPUs).
func (s *ServerSpec) nvlinkPairs() [][2]int {
	if s.NVLinkPairs != nil {
		return s.NVLinkPairs
	}
	var pairs [][2]int
	for i := 0; i < len(s.GPUs); i++ {
		if s.GPUs[i].NVLinkBps() == 0 {
			continue
		}
		for j := i + 1; j < len(s.GPUs); j++ {
			if s.GPUs[j].NVLinkBps() == 0 {
				continue
			}
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// Cluster is the physical description of a training job's resources: the
// set of servers and the inter-server transport. It is the ground truth
// behind detection probes and the source of the logical graph.
type Cluster struct {
	Servers   []ServerSpec
	Transport Transport
}

// NewCluster validates and normalizes the server specs.
func NewCluster(transport Transport, servers ...ServerSpec) (*Cluster, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("topology: cluster needs at least one server")
	}
	if transport != TransportRDMA && transport != TransportTCP {
		return nil, fmt.Errorf("topology: unknown transport %v", transport)
	}
	c := &Cluster{Transport: transport, Servers: make([]ServerSpec, len(servers))}
	copy(c.Servers, servers)
	for i := range c.Servers {
		if err := c.Servers[i].normalize(); err != nil {
			return nil, fmt.Errorf("topology: server %d: %w", i, err)
		}
	}
	return c, nil
}

// NumGPUs returns the total GPU (worker) count.
func (c *Cluster) NumGPUs() int {
	n := 0
	for _, s := range c.Servers {
		n += len(s.GPUs)
	}
	return n
}

// RankLocation returns the server and local GPU index of a global rank
// (ranks are assigned server-major: server 0's GPUs first).
func (c *Cluster) RankLocation(rank int) (server, gpu int, err error) {
	r := rank
	for si, s := range c.Servers {
		if r < len(s.GPUs) {
			return si, r, nil
		}
		r -= len(s.GPUs)
	}
	return 0, 0, fmt.Errorf("topology: rank %d out of range (cluster has %d GPUs)", rank, c.NumGPUs())
}

// ModelOfRank returns the GPU model backing a global rank.
func (c *Cluster) ModelOfRank(rank int) (GPUModel, error) {
	s, g, err := c.RankLocation(rank)
	if err != nil {
		return 0, err
	}
	return c.Servers[s].GPUs[g], nil
}

// LogicalGraph builds the logical communication graph of the cluster
// (Fig. 5a): one GPU node per worker, one NIC node per NIC; NVLink edges
// between paired local GPUs, PCIe edges between every GPU and every local
// NIC, and NIC port edges through a network-core switch connecting all
// servers (instance-to-instance connectivity is a full mesh through the
// core, with per-port capacity). Edge properties are the nominal hardware
// values; the profiler refines them later.
func (c *Cluster) LogicalGraph() (*Graph, error) {
	g := NewGraph()
	rank := 0
	gpuIDs := make([][]NodeID, len(c.Servers))
	nicIDs := make([][]NodeID, len(c.Servers))
	for si, srv := range c.Servers {
		for gi := range srv.GPUs {
			id := g.AddNode(Node{Kind: KindGPU, Server: si, Index: gi, Rank: rank})
			gpuIDs[si] = append(gpuIDs[si], id)
			rank++
		}
		for ni := range srv.NICs {
			id := g.AddNode(Node{Kind: KindNIC, Server: si, Index: ni, Rank: -1})
			nicIDs[si] = append(nicIDs[si], id)
		}
	}

	for si, srv := range c.Servers {
		for _, pair := range srv.nvlinkPairs() {
			a, b := pair[0], pair[1]
			if a < 0 || b < 0 || a >= len(srv.GPUs) || b >= len(srv.GPUs) || a == b {
				return nil, fmt.Errorf("topology: server %d: invalid NVLink pair %v", si, pair)
			}
			bw := srv.GPUs[a].NVLinkBps()
			if other := srv.GPUs[b].NVLinkBps(); other < bw {
				bw = other
			}
			if bw == 0 {
				return nil, fmt.Errorf("topology: server %d: NVLink pair %v between non-NVLink GPUs", si, pair)
			}
			g.AddBidirectional(Edge{
				From: gpuIDs[si][a], To: gpuIDs[si][b],
				Type: LinkNVLink, Alpha: NVLinkAlpha, BandwidthBps: bw,
			})
		}
		for _, gid := range gpuIDs[si] {
			for _, nid := range nicIDs[si] {
				g.AddBidirectional(Edge{
					From: gid, To: nid,
					Type: LinkPCIe, Alpha: PCIeAlpha, BandwidthBps: srv.PCIe.Bps(),
				})
			}
		}
	}

	// Network core: each NIC gets an uplink (egress port) and downlink
	// (ingress port) to one switch node, so a server's aggregate network
	// bandwidth is bounded by its NIC ports while all instance pairs
	// remain directly connected. The per-hop latency is half the
	// end-to-end link latency so NIC-to-NIC cost matches the physical
	// connection.
	if len(c.Servers) > 1 {
		linkType := c.Transport.LinkType()
		alpha := RDMAAlpha / 2
		perStream := 0.0
		if c.Transport == TransportTCP {
			alpha = TCPAlpha / 2
			perStream = TCPPerStreamBps
		}
		sw := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
		for si := range c.Servers {
			for _, nid := range nicIDs[si] {
				bw := c.Servers[si].NICs[g.Node(nid).Index].BandwidthBps
				g.AddEdge(Edge{
					From: nid, To: sw,
					Type: linkType, Alpha: alpha,
					BandwidthBps: bw, PerStreamBps: perStream,
				})
				g.AddEdge(Edge{
					From: sw, To: nid,
					Type: linkType, Alpha: alpha,
					BandwidthBps: bw, PerStreamBps: perStream,
				})
			}
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: built invalid graph: %w", err)
	}
	return g, nil
}

package topology

import (
	"math"
	"strings"
	"testing"
	"time"
)

// genSpecs is the spec matrix the property tests sweep: every generator,
// several shapes, with and without oversubscription.
func genSpecs() []Spec {
	return []Spec{
		FatTreeSpec{Pods: 2, Servers: 2, GPUs: 2, Spines: 1},
		FatTreeSpec{Pods: 4, Servers: 4, GPUs: 4, Spines: 2, Oversub: 2},
		FatTreeSpec{Pods: 8, Servers: 4, GPUs: 8, Spines: 4, NICGbps: 200},
		RailSpec{Groups: 1, Servers: 2, Rails: 2},
		RailSpec{Groups: 4, Servers: 2, Rails: 4, Oversub: 2},
		RailSpec{Groups: 8, Servers: 4, Rails: 8, NICGbps: 400},
		MultiNICSpec{Servers: 4, GPUs: 2, NICs: 2, Group: 2},
		MultiNICSpec{Servers: 8, GPUs: 4, NICs: 2, Group: 2, Oversub: 4},
		MultiNICSpec{Servers: 16, GPUs: 8, NICs: 4, Group: 4},
	}
}

// TestTopoConnected checks the first structural property: every generated
// graph is strongly connected (BFS over directed edges reaches all nodes),
// so any rank can talk to any other rank.
func TestTopoConnected(t *testing.T) {
	for _, spec := range genSpecs() {
		topo, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		g := topo.Graph
		visited := make([]bool, g.NumNodes())
		queue := []NodeID{0}
		visited[0] = true
		seen := 1
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, eid := range g.Out(cur) {
				next := g.Edge(eid).To
				if !visited[next] {
					visited[next] = true
					seen++
					queue = append(queue, next)
				}
			}
		}
		if seen != g.NumNodes() {
			t.Errorf("%s: only %d of %d nodes reachable from node 0", spec.Name(), seen, g.NumNodes())
		}
	}
}

// TestTopoBisection checks the declared bisection bandwidth against the
// actual cut: summing the capacity of directed edges from the first half of
// the domains to the second half must equal Topo.Bisection.
func TestTopoBisection(t *testing.T) {
	for _, spec := range genSpecs() {
		topo, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if topo.Domains < 2 {
			if topo.Bisection != 0 {
				t.Errorf("%s: single-domain topology declares bisection %v", spec.Name(), topo.Bisection)
			}
			continue
		}
		half := topo.Domains / 2
		var cut float64
		for _, e := range topo.Graph.Edges() {
			if topo.NodeDomain[e.From] < half && topo.NodeDomain[e.To] >= half {
				cut += e.BandwidthBps
			}
		}
		if math.Abs(cut-topo.Bisection) > 1e-6*topo.Bisection {
			t.Errorf("%s: cut capacity %.3g Bps != declared bisection %.3g Bps", spec.Name(), cut, topo.Bisection)
		}
	}
}

// TestTopoNameRoundTrip checks ParseTopo(spec.Name()) reproduces the spec
// exactly (the scale analogue of cluster.ParseCase round-tripping).
func TestTopoNameRoundTrip(t *testing.T) {
	for _, spec := range genSpecs() {
		parsed, err := ParseTopo(spec.Name())
		if err != nil {
			t.Fatalf("ParseTopo(%q): %v", spec.Name(), err)
		}
		if parsed.Name() != spec.Name() {
			t.Errorf("round trip: %q -> %q", spec.Name(), parsed.Name())
		}
	}
	// Partial specs take defaults but still round-trip through Name.
	partial, err := ParseTopo("rail:groups=8")
	if err != nil {
		t.Fatalf("partial spec: %v", err)
	}
	if !strings.Contains(partial.Name(), "groups=8") || !strings.Contains(partial.Name(), "servers=4") {
		t.Errorf("partial spec name %q missing explicit or defaulted key", partial.Name())
	}
	if reparsed, err := ParseTopo(partial.Name()); err != nil || reparsed.Name() != partial.Name() {
		t.Errorf("partial round trip: %q -> %q (%v)", partial.Name(), reparsed, err)
	}
	for _, bad := range []string{
		"mesh:servers=4",        // unknown kind
		"rail:groups=8,bogus=1", // unknown key
		"rail:groups=x",         // malformed int
		"fattree:pods=2,pods=4", // duplicate key
		"multinic:servers",      // missing value
		"fattree:oversub=-1",    // negative float
	} {
		if _, err := ParseTopo(bad); err == nil {
			t.Errorf("ParseTopo(%q) accepted an invalid spec", bad)
		}
	}
}

// TestTopoRailWiring pins the rail-optimized property: GPU i connects only
// to NIC i on its server.
func TestTopoRailWiring(t *testing.T) {
	topo, err := RailSpec{Groups: 2, Servers: 2, Rails: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range topo.Graph.Edges() {
		if e.Type != LinkPCIe {
			continue
		}
		from, to := topo.Graph.Node(e.From), topo.Graph.Node(e.To)
		if from.Index != to.Index {
			t.Fatalf("rail violation: PCIe edge between %v and %v (different indices)", from, to)
		}
	}
}

// TestTopoPartition checks the generated domain assignment survives
// NewPartition: ranks distribute evenly, lookahead is the network α, cross
// edges only appear between switch tiers, and per-domain subgraphs carry
// contiguous local ranks that map back to the global numbering.
func TestTopoPartition(t *testing.T) {
	for _, spec := range genSpecs() {
		topo, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		p, err := topo.Partition()
		if err != nil {
			t.Fatalf("%s: partition: %v", spec.Name(), err)
		}
		if p.Domains != topo.Domains {
			t.Errorf("%s: partition has %d domains, topo declares %d", spec.Name(), p.Domains, topo.Domains)
		}
		if p.Ranks() != topo.Cluster.NumGPUs() {
			t.Errorf("%s: partition has %d ranks, cluster has %d", spec.Name(), p.Ranks(), topo.Cluster.NumGPUs())
		}
		want := p.Ranks() / p.Domains
		for d := 0; d < p.Domains; d++ {
			if p.DomainRanks(d) != want {
				t.Errorf("%s: domain %d has %d ranks, want %d", spec.Name(), d, p.DomainRanks(d), want)
			}
		}
		if p.Domains > 1 {
			if len(p.Cross) == 0 {
				t.Errorf("%s: multi-domain partition has no cross edges", spec.Name())
			}
			if p.Lookahead != RDMAAlpha/2 && p.Lookahead != RDMAAlpha {
				t.Errorf("%s: lookahead %v is not a network hop latency", spec.Name(), p.Lookahead)
			}
		}
		for _, ce := range p.Cross {
			if !ce.Global.Type.Network() {
				t.Errorf("%s: non-network cross edge %v", spec.Name(), ce.Global.Type)
			}
			if leg := p.Subs[ce.Src].Edge(ce.SrcEdge); leg.Alpha != 0 {
				t.Errorf("%s: serialization leg keeps α=%v (should be folded into the post delay)", spec.Name(), leg.Alpha)
			}
		}
		// Round-trip every global rank through the local numbering.
		for r := 0; r < p.Ranks(); r++ {
			d, local := p.LocalGPU(r)
			n := p.Subs[d].Node(local)
			if p.GlobalRanks[d][n.Rank] != r {
				t.Errorf("%s: rank %d maps to domain %d local %d which maps back to %d",
					spec.Name(), r, d, n.Rank, p.GlobalRanks[d][n.Rank])
			}
		}
	}
}

// TestPartitionRejectsSplitServer checks the guard: assigning two GPUs of
// one server to different domains must fail (NVLink cannot cross domains).
func TestPartitionRejectsSplitServer(t *testing.T) {
	topo, err := FatTreeSpec{Pods: 2, Servers: 1, GPUs: 2, Spines: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	dom := append([]int(nil), topo.NodeDomain...)
	gpus := topo.Graph.GPUs()
	dom[gpus[0]] = 0
	dom[gpus[1]] = 1
	if _, err := NewPartition(topo.Graph, dom); err == nil || !strings.Contains(err.Error(), "splits a server") {
		t.Fatalf("expected split-server error, got %v", err)
	}
}

// TestPartitionSingleDomain checks the degenerate all-in-one partition:
// no cross edges, zero lookahead, subgraph identical in size to the input.
func TestPartitionSingleDomain(t *testing.T) {
	topo, err := RailSpec{Groups: 2, Servers: 2, Rails: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	dom := make([]int, topo.Graph.NumNodes())
	p, err := NewPartition(topo.Graph, dom)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cross) != 0 || p.Lookahead != 0 {
		t.Fatalf("single-domain partition has %d cross edges, lookahead %v", len(p.Cross), p.Lookahead)
	}
	if p.Subs[0].NumNodes() != topo.Graph.NumNodes() || p.Subs[0].NumEdges() != topo.Graph.NumEdges() {
		t.Fatalf("single-domain subgraph %d nodes/%d edges, want %d/%d",
			p.Subs[0].NumNodes(), p.Subs[0].NumEdges(), topo.Graph.NumNodes(), topo.Graph.NumEdges())
	}
}

// TestTopoScaleCounts sanity-checks the thousand-rank shapes the sweep
// benchmark uses: 1024 and 4096 ranks materialise with the expected node
// counts in well under a second.
func TestTopoScaleCounts(t *testing.T) {
	start := time.Now()
	for _, tc := range []struct {
		spec  Spec
		ranks int
	}{
		{RailSpec{Groups: 16, Servers: 8, Rails: 8}, 1024},
		{RailSpec{Groups: 32, Servers: 16, Rails: 8}, 4096},
		{FatTreeSpec{Pods: 16, Servers: 8, GPUs: 8, Spines: 8}, 1024},
	} {
		topo, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Name(), err)
		}
		if got := topo.Cluster.NumGPUs(); got != tc.ranks {
			t.Errorf("%s: %d ranks, want %d", tc.spec.Name(), got, tc.ranks)
		}
		if _, err := topo.Partition(); err != nil {
			t.Errorf("%s: partition: %v", tc.spec.Name(), err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("scale topology construction took %v", elapsed)
	}
}

package topology

import (
	"testing"
	"time"
)

func twoServerCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(TransportRDMA,
		ServerSpec{
			GPUs: []GPUModel{GPUA100, GPUA100},
			NICs: []NICSpec{{BandwidthBps: Gbps(100)}},
		},
		ServerSpec{
			GPUs: []GPUModel{GPUV100, GPUV100},
			NICs: []NICSpec{{BandwidthBps: Gbps(50)}},
		},
	)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestLogicalGraphStructure(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatalf("LogicalGraph: %v", err)
	}
	if got := len(g.GPUs()); got != 4 {
		t.Errorf("GPU nodes = %d, want 4", got)
	}
	if got := len(g.NICs()); got != 2 {
		t.Errorf("NIC nodes = %d, want 2", got)
	}
	// 2 NVLink pairs ×2 dirs + 4 GPU-NIC PCIe pairs ×2 dirs + 2 NICs ×
	// (uplink+downlink)
	if got := g.NumEdges(); got != 4+8+4 {
		t.Errorf("edges = %d, want 16", got)
	}
	if _, ok := g.Switch(); !ok {
		t.Error("multi-server graph lacks a core switch")
	}
}

func TestRanksAreServerMajor(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		id, ok := g.GPUByRank(rank)
		if !ok {
			t.Fatalf("rank %d missing", rank)
		}
		n := g.Node(id)
		wantServer, wantIdx := rank/2, rank%2
		if n.Server != wantServer || n.Index != wantIdx {
			t.Errorf("rank %d at server %d idx %d, want server %d idx %d",
				rank, n.Server, n.Index, wantServer, wantIdx)
		}
	}
}

func TestNVLinkBandwidthIsMinOfPair(t *testing.T) {
	c, err := NewCluster(TransportRDMA, ServerSpec{
		GPUs: []GPUModel{GPUA100, GPUV100},
		NICs: []NICSpec{{BandwidthBps: Gbps(100)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.GPUByRank(0)
	b, _ := g.GPUByRank(1)
	eid, ok := g.EdgeBetween(a, b)
	if !ok {
		t.Fatal("no NVLink edge between local GPUs")
	}
	if got, want := g.Edge(eid).BandwidthBps, GPUV100.NVLinkBps(); got != want {
		t.Errorf("mixed-pair NVLink bandwidth = %v, want min %v", got, want)
	}
}

func TestNetworkPortEdgesMatchNICRate(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	sw, ok := g.Switch()
	if !ok {
		t.Fatal("no core switch")
	}
	nic1, _ := g.NICOfServer(1, 0) // 50 Gbps server
	up, ok := g.EdgeBetween(nic1, sw)
	if !ok {
		t.Fatal("uplink missing")
	}
	down, ok := g.EdgeBetween(sw, nic1)
	if !ok {
		t.Fatal("downlink missing")
	}
	for _, eid := range []EdgeID{up, down} {
		if got, want := g.Edge(eid).BandwidthBps, Gbps(50); got != want {
			t.Errorf("port bandwidth = %v, want NIC rate %v", got, want)
		}
	}
}

func TestTCPTransportSetsPerStreamCap(t *testing.T) {
	c := twoServerCluster(t)
	c.Transport = TransportTCP
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := g.Switch()
	nic0, _ := g.NICOfServer(0, 0)
	eid, _ := g.EdgeBetween(nic0, sw)
	e := g.Edge(eid)
	if e.Type != LinkTCP {
		t.Errorf("link type = %v, want tcp", e.Type)
	}
	if e.PerStreamBps != TCPPerStreamBps {
		t.Errorf("per-stream cap = %v, want %v", e.PerStreamBps, TCPPerStreamBps)
	}
	if e.Alpha != TCPAlpha/2 {
		t.Errorf("per-hop alpha = %v, want %v", e.Alpha, TCPAlpha/2)
	}
}

func TestFragmentedServerHasNoNVLink(t *testing.T) {
	c, err := NewCluster(TransportRDMA, ServerSpec{
		GPUs:        []GPUModel{GPUA100, GPUA100, GPUA100, GPUA100},
		NICs:        []NICSpec{{BandwidthBps: Gbps(100)}},
		NVLinkPairs: [][2]int{},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Type == LinkNVLink {
			t.Fatal("fragmented server still has NVLink edges")
		}
	}
}

func TestShortestPathCrossServer(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.GPUByRank(0)
	dst, _ := g.GPUByRank(3)
	path := g.ShortestPath(src, dst)
	if len(path) != 5 {
		t.Fatalf("path = %v, want GPU→NIC→switch→NIC→GPU (5 nodes)", path)
	}
	kinds := []NodeKind{KindGPU, KindNIC, KindSwitch, KindNIC, KindGPU}
	for i, id := range path {
		if g.Node(id).Kind != kinds[i] {
			t.Errorf("hop %d kind = %v, want %v", i, g.Node(id).Kind, kinds[i])
		}
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := g.GPUByRank(0)
	if p := g.ShortestPath(src, src); len(p) != 1 || p[0] != src {
		t.Errorf("self path = %v, want [%v]", p, src)
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
	}{
		{
			name: "duplicate rank",
			build: func() *Graph {
				g := NewGraph()
				g.AddNode(Node{Kind: KindGPU, Rank: 0})
				g.AddNode(Node{Kind: KindGPU, Rank: 0})
				return g
			},
		},
		{
			name: "gap in ranks",
			build: func() *Graph {
				g := NewGraph()
				g.AddNode(Node{Kind: KindGPU, Rank: 0})
				g.AddNode(Node{Kind: KindGPU, Rank: 2})
				return g
			},
		},
		{
			name: "nvlink across servers",
			build: func() *Graph {
				g := NewGraph()
				a := g.AddNode(Node{Kind: KindGPU, Server: 0, Rank: 0})
				b := g.AddNode(Node{Kind: KindGPU, Server: 1, Rank: 1})
				n0 := g.AddNode(Node{Kind: KindNIC, Server: 0, Rank: -1})
				n1 := g.AddNode(Node{Kind: KindNIC, Server: 1, Rank: -1})
				sw := g.AddNode(Node{Kind: KindSwitch, Server: -1, Rank: -1})
				g.AddEdge(Edge{From: n0, To: sw, Type: LinkRDMA, BandwidthBps: 1})
				g.AddEdge(Edge{From: sw, To: n1, Type: LinkRDMA, BandwidthBps: 1})
				g.AddEdge(Edge{From: a, To: b, Type: LinkNVLink, BandwidthBps: 1})
				return g
			},
		},
		{
			name: "network edge between NICs directly",
			build: func() *Graph {
				g := NewGraph()
				g.AddNode(Node{Kind: KindGPU, Server: 0, Rank: 0})
				a := g.AddNode(Node{Kind: KindNIC, Server: 0, Index: 0, Rank: -1})
				b := g.AddNode(Node{Kind: KindNIC, Server: 1, Index: 0, Rank: -1})
				g.AddNode(Node{Kind: KindGPU, Server: 1, Rank: 1})
				g.AddEdge(Edge{From: a, To: b, Type: LinkRDMA, BandwidthBps: 1})
				return g
			},
		},
		{
			name: "zero bandwidth",
			build: func() *Graph {
				g := NewGraph()
				a := g.AddNode(Node{Kind: KindGPU, Server: 0, Rank: 0})
				b := g.AddNode(Node{Kind: KindGPU, Server: 0, Rank: 1})
				g.AddEdge(Edge{From: a, To: b, Type: LinkNVLink})
				return g
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.build().Validate(); err == nil {
				t.Error("Validate accepted an invalid graph")
			}
		})
	}
}

func TestAddEdgeRejectsDuplicatesAndSelfLoops(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindGPU, Rank: 0})
	b := g.AddNode(Node{Kind: KindGPU, Rank: 1})
	g.AddEdge(Edge{From: a, To: b, Type: LinkNVLink, BandwidthBps: 1})

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate edge", func() {
		g.AddEdge(Edge{From: a, To: b, Type: LinkNVLink, BandwidthBps: 1})
	})
	mustPanic("self loop", func() {
		g.AddEdge(Edge{From: a, To: a, Type: LinkNVLink, BandwidthBps: 1})
	})
	mustPanic("unknown node", func() {
		g.AddEdge(Edge{From: a, To: 99, Type: LinkNVLink, BandwidthBps: 1})
	})
}

func TestEdgeTransferTime(t *testing.T) {
	e := Edge{Alpha: 10 * time.Microsecond, BandwidthBps: 1e9}
	got := e.TransferTime(1e6) // 1 MB at 1 GB/s = 1 ms
	want := 10*time.Microsecond + time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	if beta := e.Beta(); beta != 1e-9 {
		t.Errorf("Beta = %v, want 1e-9", beta)
	}
}

func TestRankLocation(t *testing.T) {
	c := twoServerCluster(t)
	tests := []struct {
		rank, server, gpu int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 0}, {3, 1, 1},
	}
	for _, tt := range tests {
		s, g, err := c.RankLocation(tt.rank)
		if err != nil {
			t.Fatalf("rank %d: %v", tt.rank, err)
		}
		if s != tt.server || g != tt.gpu {
			t.Errorf("rank %d at (%d,%d), want (%d,%d)", tt.rank, s, g, tt.server, tt.gpu)
		}
	}
	if _, _, err := c.RankLocation(4); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := ServerSpec{
		GPUs: []GPUModel{GPUA100, GPUA100, GPUA100, GPUA100},
		NICs: []NICSpec{{BandwidthBps: Gbps(100)}},
	}
	if err := s.normalize(); err != nil {
		t.Fatal(err)
	}
	if s.NUMACount != 2 {
		t.Errorf("NUMACount = %d, want 2", s.NUMACount)
	}
	wantNuma := []int{0, 0, 1, 1}
	for i, n := range s.GPUNuma {
		if n != wantNuma[i] {
			t.Errorf("GPUNuma[%d] = %d, want %d", i, n, wantNuma[i])
		}
	}
	if s.NICNuma[0] != 0 {
		t.Errorf("NICNuma[0] = %d, want 0", s.NICNuma[0])
	}
	if s.PCIe != PCIe4 {
		t.Errorf("PCIe = %v, want Gen4 default", s.PCIe)
	}
}

func TestSpecNormalizeErrors(t *testing.T) {
	tests := []struct {
		name string
		spec ServerSpec
	}{
		{"no gpus", ServerSpec{NICs: []NICSpec{{BandwidthBps: 1}}}},
		{"no nics", ServerSpec{GPUs: []GPUModel{GPUA100}}},
		{
			"numa size mismatch",
			ServerSpec{
				GPUs:    []GPUModel{GPUA100, GPUA100},
				NICs:    []NICSpec{{BandwidthBps: 1}},
				GPUNuma: []int{0},
			},
		},
		{
			"numa out of range",
			ServerSpec{
				GPUs:      []GPUModel{GPUA100},
				NICs:      []NICSpec{{BandwidthBps: 1}},
				NUMACount: 2,
				GPUNuma:   []int{5},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := tt.spec
			if err := spec.normalize(); err == nil {
				t.Error("normalize accepted invalid spec")
			}
		})
	}
}

func TestStringersAndCatalog(t *testing.T) {
	// Kind/link/transport strings (also exercise unknown values).
	if KindGPU.String() != "gpu" || KindNIC.String() != "nic" || KindSwitch.String() != "switch" {
		t.Error("node kind strings wrong")
	}
	if NodeKind(99).String() == "" || LinkType(99).String() == "" || Transport(99).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if LinkNVLink.String() != "nvlink" || LinkPCIe.String() != "pcie" ||
		LinkRDMA.String() != "rdma" || LinkTCP.String() != "tcp" {
		t.Error("link strings wrong")
	}
	if !LinkRDMA.Network() || !LinkTCP.Network() || LinkNVLink.Network() || LinkPCIe.Network() {
		t.Error("Network() wrong")
	}
	if TransportRDMA.String() != "rdma" || TransportTCP.String() != "tcp" {
		t.Error("transport strings wrong")
	}
	if TransportRDMA.LinkType() != LinkRDMA || TransportTCP.LinkType() != LinkTCP {
		t.Error("transport link types wrong")
	}

	// GPU catalog monotonicity: newer generations are faster.
	if !(GPUH100.NVLinkBps() > GPUA100.NVLinkBps() && GPUA100.NVLinkBps() > GPUV100.NVLinkBps()) {
		t.Error("NVLink bandwidths not ordered by generation")
	}
	if GPUM40.NVLinkBps() != 0 {
		t.Error("M40 should have no NVLink")
	}
	if !(GPUH100.ComputeScale() > GPUA100.ComputeScale() && GPUA100.ComputeScale() > GPUV100.ComputeScale() && GPUV100.ComputeScale() > GPUM40.ComputeScale()) {
		t.Error("compute scales not ordered")
	}
	for _, m := range []GPUModel{GPUA100, GPUV100, GPUH100, GPUM40} {
		if m.String() == "" || m.String() == "GPU?" {
			t.Errorf("model %d has no name", m)
		}
	}
	if GPUModel(99).String() != "GPU?" {
		t.Error("unknown model string")
	}
	if !(PCIe5.Bps() > PCIe4.Bps() && PCIe4.Bps() > PCIe3.Bps()) {
		t.Error("PCIe generations not ordered")
	}
	if Gbps(8) != 1e9 {
		t.Errorf("Gbps(8) = %v, want 1e9 B/s", Gbps(8))
	}
}

func TestNodeAndEdgeStrings(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	id, _ := g.GPUByRank(0)
	if s := g.Node(id).String(); s != "gpu0@s0(rank0)" {
		t.Errorf("gpu string = %q", s)
	}
	sw, _ := g.Switch()
	if s := g.Node(sw).String(); s != "core-switch" {
		t.Errorf("switch string = %q", s)
	}
	nic, _ := g.NICOfServer(1, 0)
	if s := g.Node(nic).String(); s != "nic0@s1" {
		t.Errorf("nic string = %q", s)
	}
}

func TestModelOfRankAndErrors(t *testing.T) {
	c := twoServerCluster(t)
	m, err := c.ModelOfRank(3)
	if err != nil || m != GPUV100 {
		t.Fatalf("ModelOfRank(3) = %v, %v", m, err)
	}
	if _, err := c.ModelOfRank(99); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := NewCluster(TransportRDMA); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster(Transport(9), ServerSpec{GPUs: []GPUModel{GPUA100}, NICs: []NICSpec{{BandwidthBps: 1}}}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestSingleServerHasNoSwitch(t *testing.T) {
	c, err := NewCluster(TransportRDMA, ServerSpec{
		GPUs: []GPUModel{GPUA100, GPUA100},
		NICs: []NICSpec{{BandwidthBps: Gbps(100)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Switch(); ok {
		t.Fatal("single-server graph should not build a core switch")
	}
	for _, e := range g.Edges() {
		if e.Type.Network() {
			t.Fatal("single-server graph has network edges")
		}
	}
}

func TestSetEdgeProps(t *testing.T) {
	g, err := twoServerCluster(t).LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	eid := g.Edges()[0].ID
	g.SetEdgeProps(eid, Edge{Alpha: 7 * time.Microsecond, BandwidthBps: 123})
	e := g.Edge(eid)
	if e.Alpha != 7*time.Microsecond || e.BandwidthBps != 123 {
		t.Fatalf("props not applied: %+v", e)
	}
	// Zero per-stream cap leaves the existing value.
	g.SetEdgeProps(eid, Edge{Alpha: e.Alpha, BandwidthBps: e.BandwidthBps, PerStreamBps: 55})
	if g.Edge(eid).PerStreamBps != 55 {
		t.Fatal("per-stream cap not applied")
	}
	g.SetEdgeProps(eid, Edge{Alpha: e.Alpha, BandwidthBps: e.BandwidthBps})
	if g.Edge(eid).PerStreamBps != 55 {
		t.Fatal("zero per-stream cap overwrote existing value")
	}
}

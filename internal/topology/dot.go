package topology

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the logical graph in Graphviz DOT form: one subgraph
// cluster per server, GPUs as boxes, NICs as hexagons, the core switch as a
// diamond, and one undirected-looking edge per bidirectional link pair
// labelled with its type and bandwidth. Render with
//
//	dot -Tsvg topo.dot -o topo.svg
func (g *Graph) WriteDOT(w io.Writer) error {
	p := &errWriter{w: w}
	p.printf("digraph topology {\n")
	p.printf("  rankdir=LR;\n")
	p.printf("  node [fontname=\"Helvetica\", fontsize=10];\n")
	p.printf("  edge [fontname=\"Helvetica\", fontsize=8];\n")

	byServer := make(map[int][]Node)
	var switches []Node
	for _, n := range g.nodes {
		if n.Kind == KindSwitch {
			switches = append(switches, n)
			continue
		}
		byServer[n.Server] = append(byServer[n.Server], n)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer {
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		p.printf("  subgraph cluster_server%d {\n", s)
		p.printf("    label=\"server %d\"; style=rounded;\n", s)
		for _, n := range byServer[s] {
			switch n.Kind {
			case KindGPU:
				p.printf("    n%d [label=\"gpu%d\\nrank %d\", shape=box, style=filled, fillcolor=\"#c6dbef\"];\n",
					n.ID, n.Index, n.Rank)
			default:
				p.printf("    n%d [label=\"nic%d\", shape=hexagon, style=filled, fillcolor=\"#fdd0a2\"];\n",
					n.ID, n.Index)
			}
		}
		p.printf("  }\n")
	}
	for _, n := range switches {
		p.printf("  n%d [label=\"core switch\", shape=diamond, style=filled, fillcolor=\"#e5e5e5\"];\n", n.ID)
	}

	// Collapse each bidirectional pair to one rendered edge.
	seen := make(map[[2]NodeID]bool)
	for _, e := range g.edges {
		rev := [2]NodeID{e.To, e.From}
		if seen[rev] {
			continue
		}
		seen[[2]NodeID{e.From, e.To}] = true
		_, hasRev := g.EdgeBetween(e.To, e.From)
		dirAttr := ", dir=both"
		if !hasRev {
			dirAttr = ""
		}
		p.printf("  n%d -> n%d [label=\"%v\\n%.0f GB/s\"%s%s];\n",
			e.From, e.To, e.Type, e.BandwidthBps/1e9, dirAttr, edgeStyle(e.Type))
	}
	p.printf("}\n")
	return p.err
}

func edgeStyle(t LinkType) string {
	switch t {
	case LinkNVLink:
		return ", color=\"#2171b5\", penwidth=2"
	case LinkRDMA:
		return ", color=\"#238b45\""
	case LinkTCP:
		return ", color=\"#cb181d\", style=dashed"
	default:
		return ""
	}
}

// errWriter folds write errors so the printers stay uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (p *errWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

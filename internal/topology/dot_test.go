package topology_test

import (
	"errors"
	"strings"
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/topology"
)

func TestWriteDOTStructure(t *testing.T) {
	c, err := topology.NewCluster(topology.TransportRDMA,
		cluster.A100Server(2), cluster.V100Server(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()

	if !strings.HasPrefix(dot, "digraph topology {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("output is not a closed digraph")
	}
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces")
	}
	for _, want := range []string{
		"subgraph cluster_server0", "subgraph cluster_server1",
		"core switch", "rank 0", "rank 3",
		"nvlink", "rdma",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// One node statement per graph node.
	nodes := strings.Count(dot, "  n") + strings.Count(dot, "    n")
	if nodes < g.NumNodes() {
		t.Errorf("%d node/edge statements for %d nodes", nodes, g.NumNodes())
	}
	// Bidirectional pairs collapse: rendered edges = pairs/2.
	if got, want := strings.Count(dot, "->"), g.NumEdges()/2; got != want {
		t.Errorf("%d rendered edges, want %d (one per bidirectional pair)", got, want)
	}
	if !strings.Contains(dot, "dir=both") {
		t.Error("bidirectional pairs not marked dir=both")
	}
}

func TestWriteDOTSingleServerNoSwitch(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "core switch") {
		t.Error("single-server graph rendered a core switch")
	}
}

// failAfter errors on the nth write, exercising error propagation.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriteFailed
	}
	f.n--
	return len(p), nil
}

var errWriteFailed = errors.New("write failed")

func TestWriteDOTPropagatesWriteErrors(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&failAfter{n: 3}); err == nil {
		t.Error("write error swallowed")
	}
}

package backend

import (
	"errors"
	"testing"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// TestRequestValidate is the table over the self-consistency rules every
// backend entry point enforces before touching the fabric.
func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		// field names the expected ErrInvalidRequest.Field; "" means valid.
		field string
	}{
		{"minimal allreduce", Request{Primitive: strategy.AllReduce, Bytes: 1}, ""},
		{"explicit ranks", Request{Primitive: strategy.AlltoAll, Bytes: 64, Ranks: []int{0, 1, 2}}, ""},
		{"rooted with member root", Request{Primitive: strategy.Broadcast, Bytes: 64, Ranks: []int{1, 3}, Root: 3}, ""},
		{"rooted with default root", Request{Primitive: strategy.Reduce, Bytes: 64, Ranks: []int{1, 3}, Root: -1}, ""},
		{"allreduce ignores zero root", Request{Primitive: strategy.AllReduce, Bytes: 64, Ranks: []int{4, 5}}, ""},

		{"zero bytes", Request{Primitive: strategy.AllReduce}, "Bytes"},
		{"negative bytes", Request{Primitive: strategy.AllReduce, Bytes: -8}, "Bytes"},
		{"unknown primitive", Request{Primitive: strategy.Primitive(99), Bytes: 8}, "Primitive"},
		{"empty rank set", Request{Primitive: strategy.AllReduce, Bytes: 8, Ranks: []int{}}, "Ranks"},
		{"negative rank", Request{Primitive: strategy.AllReduce, Bytes: 8, Ranks: []int{0, -2}}, "Ranks"},
		{"duplicate rank", Request{Primitive: strategy.AllReduce, Bytes: 8, Ranks: []int{0, 1, 0}}, "Ranks"},
		{"root outside ranks", Request{Primitive: strategy.Broadcast, Bytes: 8, Ranks: []int{1, 2}, Root: 7}, "Root"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.Validate()
			if c.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var inv *ErrInvalidRequest
			if !errors.As(err, &inv) {
				t.Fatalf("Validate() = %v, want *ErrInvalidRequest", err)
			}
			if inv.Field != c.field {
				t.Fatalf("Field = %q, want %q (err: %v)", inv.Field, c.field, err)
			}
		})
	}
}

// TestRequestValidateIn adds the world checks: explicit ranks and rooted
// roots must name GPUs of the environment.
func TestRequestValidateIn(t *testing.T) {
	c, err := topology.NewCluster(topology.TransportRDMA, topology.ServerSpec{
		GPUs: []topology.GPUModel{topology.GPUA100, topology.GPUA100},
		NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
		PCIe: topology.PCIe4,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		req   Request
		field string
	}{
		{"all GPUs", Request{Primitive: strategy.AllReduce, Bytes: 8}, ""},
		{"both ranks", Request{Primitive: strategy.AllReduce, Bytes: 8, Ranks: []int{0, 1}}, ""},
		{"rank beyond world", Request{Primitive: strategy.AllReduce, Bytes: 8, Ranks: []int{0, 2}}, "Ranks"},
		{"rooted ghost root, nil ranks", Request{Primitive: strategy.Broadcast, Bytes: 8, Root: 9}, "Root"},
		{"self-check still first", Request{Primitive: strategy.AllReduce, Bytes: 0, Ranks: []int{0, 9}}, "Bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.ValidateIn(env)
			if c.field == "" {
				if err != nil {
					t.Fatalf("ValidateIn() = %v, want nil", err)
				}
				return
			}
			var inv *ErrInvalidRequest
			if !errors.As(err, &inv) {
				t.Fatalf("ValidateIn() = %v, want *ErrInvalidRequest", err)
			}
			if inv.Field != c.field {
				t.Fatalf("Field = %q, want %q (err: %v)", inv.Field, c.field, err)
			}
		})
	}
}

package backend

import (
	"fmt"

	"adapcc/internal/strategy"
)

// ErrInvalidRequest reports a malformed collective Request. Every backend
// entry point (AdapCC and the baselines) validates the request once before
// touching the fabric, so callers can rely on one typed error — and one
// set of rules — instead of per-backend fmt.Errorf conventions. Match it
// with errors.As.
type ErrInvalidRequest struct {
	// Field names the offending Request field.
	Field string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *ErrInvalidRequest) Error() string {
	return fmt.Sprintf("backend: invalid request: %s: %s", e.Field, e.Reason)
}

func invalid(field, format string, args ...any) error {
	return &ErrInvalidRequest{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the request for self-consistency: positive byte count, a
// known primitive, no negative or duplicate ranks, and a root that is a
// member of the explicit rank set when both are given. A negative Root
// means "backend default" and is always acceptable; membership of ranks in
// the actual topology needs an environment — see ValidateIn.
func (r Request) Validate() error {
	if r.Bytes <= 0 {
		return invalid("Bytes", "%d must be positive", r.Bytes)
	}
	switch r.Primitive {
	case strategy.Reduce, strategy.Broadcast, strategy.AllReduce, strategy.AlltoAll:
	default:
		return invalid("Primitive", "unknown primitive %v", r.Primitive)
	}
	if r.Ranks != nil && len(r.Ranks) == 0 {
		return invalid("Ranks", "empty rank set (use nil for every GPU)")
	}
	// Root only means something for rooted primitives; AllReduce and
	// AlltoAll callers routinely leave it at the zero value.
	rooted := r.Primitive == strategy.Reduce || r.Primitive == strategy.Broadcast
	rootSeen := !rooted || r.Root < 0 || r.Ranks == nil
	for i, a := range r.Ranks {
		if a < 0 {
			return invalid("Ranks", "negative rank %d", a)
		}
		if a == r.Root {
			rootSeen = true
		}
		for _, b := range r.Ranks[:i] {
			if a == b {
				return invalid("Ranks", "duplicate rank %d", a)
			}
		}
	}
	if !rootSeen {
		return invalid("Root", "root %d is not in Ranks %v", r.Root, r.Ranks)
	}
	return nil
}

// ValidateIn is Validate plus the world-dependent checks: every explicit
// rank — and a non-negative Root even when Ranks is nil — must name a GPU
// of the environment.
func (r Request) ValidateIn(env *Env) error {
	if err := r.Validate(); err != nil {
		return err
	}
	for _, a := range r.Ranks {
		if _, ok := env.Graph.GPUByRank(a); !ok {
			return invalid("Ranks", "rank %d is not a GPU of this cluster", a)
		}
	}
	if r.Root >= 0 && (r.Primitive == strategy.Reduce || r.Primitive == strategy.Broadcast) {
		if _, ok := env.Graph.GPUByRank(r.Root); !ok {
			return invalid("Root", "root %d is not a GPU of this cluster", r.Root)
		}
	}
	return nil
}

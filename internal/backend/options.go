package backend

import "adapcc/internal/fabric"

// RunConfig collects the per-invocation options of Backend.Run. Callers
// use the With* functional options; backends resolve the final config with
// BuildRunConfig. The zero value is the plain collective: full strategy,
// no relays, default traffic class.
type RunConfig struct {
	// Relays lists non-ready workers that participate relay-only in a
	// partial collective over the ready ranks (AdapCC Sec. IV-B). Only the
	// AdapCC backend honours it; baselines have no relay concept.
	Relays []int
	// FastPath selects the pre-synthesised fast-recovery strategy instead
	// of a fresh full synthesis (AdapCC only).
	FastPath bool
	// Group labels the collective with a communicator-group name for
	// per-group metrics and tracing. Empty = ungrouped.
	Group string
	// Class is the fabric traffic class the collective's chunks compete
	// under at shared links. Zero is the default best-effort class.
	Class fabric.ClassID
}

// RunOption customises one Backend.Run invocation.
type RunOption func(*RunConfig)

// WithRelays runs the collective as a partial aggregation over the
// request's ranks, with the given non-ready workers attached relay-only.
// Zero relays still request partial semantics (only req.Ranks contribute).
func WithRelays(relays ...int) RunOption {
	return func(c *RunConfig) {
		if relays == nil {
			relays = []int{}
		}
		c.Relays = relays
	}
}

// WithFastPath uses the backend's pre-synthesised fast-recovery strategy.
func WithFastPath() RunOption {
	return func(c *RunConfig) { c.FastPath = true }
}

// WithGroup runs the collective on behalf of a named communicator group,
// under that group's fabric traffic class.
func WithGroup(name string, class fabric.ClassID) RunOption {
	return func(c *RunConfig) { c.Group, c.Class = name, class }
}

// BuildRunConfig resolves functional options into a RunConfig.
func BuildRunConfig(opts []RunOption) RunConfig {
	var c RunConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Package backend defines the common interface through which the
// evaluation harness drives AdapCC and the baseline communication systems
// (NCCL, MSCCL, Blink) over the same simulated fabric, so every comparison
// in the reproduced figures runs identical workloads on identical hardware
// models.
package backend

import (
	"fmt"
	"time"

	"adapcc/internal/collective"
	"adapcc/internal/device"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/payload"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// Request describes one collective invocation.
type Request struct {
	Primitive strategy.Primitive
	// Bytes is the per-GPU tensor size.
	Bytes int64
	// Ranks are the participating workers (nil = every GPU).
	Ranks []int
	// Root for Reduce/Broadcast; ignored otherwise.
	Root int
	// Mode selects the data plane (Dense default). Timing-only sweeps use
	// Phantom: no float32 tensors are materialised and the measured
	// timeline is identical to the Dense run of the same seed.
	Mode payload.Mode
	// Inputs holds each participating rank's tensor. Dense mode only;
	// backends that only need timing may be driven with synthetic inputs
	// from MakeInputs, or with Mode set to Phantom and no Inputs at all.
	Inputs map[int][]float32
	// OnDone receives the result.
	OnDone func(collective.Result)
}

// Backend is a collective communication system under test.
type Backend interface {
	// Name identifies the system in printed tables.
	Name() string
	// Run starts the collective; completion is signalled via
	// req.OnDone on the simulation engine. Run validates the request
	// (ValidateIn) before touching the fabric. Options customise one
	// invocation; backends without the corresponding machinery (e.g.
	// relays on the fixed-graph baselines) ignore them.
	Run(req Request, opts ...RunOption) error
}

// Env bundles the shared simulated hardware a backend runs on.
type Env struct {
	Cluster *topology.Cluster
	Graph   *topology.Graph
	Engine  *sim.Engine
	Fabric  *fabric.Fabric
	GPUs    map[int]*device.GPU
	Exec    *collective.Executor
	// Metrics is the registry installed by SetMetrics (nil = disabled).
	Metrics *metrics.Registry
}

// SetMetrics installs (or, with nil, removes) a metrics registry across the
// whole hardware environment: every fabric link, every GPU and the
// collective executor record into it.
func (e *Env) SetMetrics(reg *metrics.Registry) {
	e.Metrics = reg
	e.Fabric.SetMetrics(reg)
	e.Exec.SetMetrics(reg)
	for _, g := range e.GPUs {
		g.SetMetrics(reg)
	}
}

// NewEnv builds the hardware environment for a cluster.
func NewEnv(c *topology.Cluster, seed int64) (*Env, error) {
	g, err := c.LogicalGraph()
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	fab := fabric.New(eng, g)
	gpus := make(map[int]*device.GPU, c.NumGPUs())
	for _, id := range g.GPUs() {
		n := g.Node(id)
		model, err := c.ModelOfRank(n.Rank)
		if err != nil {
			return nil, err
		}
		gpus[n.Rank] = device.New(eng, model, n.Rank)
	}
	return &Env{
		Cluster: c,
		Graph:   g,
		Engine:  eng,
		Fabric:  fab,
		GPUs:    gpus,
		Exec:    collective.NewExecutor(fab, gpus),
	}, nil
}

// AllRanks returns every GPU rank of the environment.
func (e *Env) AllRanks() []int {
	out := make([]int, 0, len(e.GPUs))
	for _, id := range e.Graph.GPUs() {
		out = append(out, e.Graph.Node(id).Rank)
	}
	return out
}

// MakeInputs builds deterministic per-rank tensors for a request.
func MakeInputs(ranks []int, bytes int64) map[int][]float32 {
	elems := int(bytes / 4)
	in := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		v := make([]float32, elems)
		for i := range v {
			v[i] = float32(r+1) + float32(i%7)
		}
		in[r] = v
	}
	return in
}

// MakePayloads builds deterministic per-rank payloads for a request: dense
// wraps MakeInputs tensors, phantom synthesises provenance-only inputs.
func MakePayloads(ranks []int, bytes int64, mode payload.Mode) map[int]payload.Payload {
	out := make(map[int]payload.Payload, len(ranks))
	if mode == payload.Phantom {
		elems := int(bytes / 4)
		for _, r := range ranks {
			out[r] = payload.PhantomInput(r, elems)
		}
		return out
	}
	for r, v := range MakeInputs(ranks, bytes) {
		out[r] = payload.WrapDense(v)
	}
	return out
}

// Measure synchronously runs one collective on a backend and returns the
// elapsed virtual time (it drains the engine). Phantom requests skip input
// materialisation entirely. Options pass through to Backend.Run.
func Measure(env *Env, b Backend, req Request, opts ...RunOption) (time.Duration, error) {
	if req.Inputs == nil && req.Mode == payload.Dense {
		ranks := req.Ranks
		if ranks == nil {
			ranks = env.AllRanks()
		}
		req.Inputs = MakeInputs(ranks, req.Bytes)
	}
	var elapsed time.Duration = -1
	userDone := req.OnDone
	req.OnDone = func(r collective.Result) {
		elapsed = r.Elapsed
		if userDone != nil {
			userDone(r)
		}
	}
	if err := b.Run(req, opts...); err != nil {
		return 0, err
	}
	env.Engine.Run()
	if elapsed < 0 {
		return 0, fmt.Errorf("backend %s never completed", b.Name())
	}
	return elapsed, nil
}

// AlgoBandwidth runs a collective and reports the algorithm bandwidth in
// bytes/second (Sec. VI-C metric).
func AlgoBandwidth(env *Env, b Backend, req Request, opts ...RunOption) (float64, error) {
	elapsed, err := Measure(env, b, req, opts...)
	if err != nil {
		return 0, err
	}
	return collective.AlgoBandwidthBps(req.Bytes, elapsed), nil
}

package backend

import (
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func TestNewEnvBuildsAllPieces(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if env.Engine == nil || env.Fabric == nil || env.Exec == nil || env.Graph == nil {
		t.Fatal("missing environment pieces")
	}
	ranks := env.AllRanks()
	if len(ranks) != 8 {
		t.Fatalf("ranks = %d, want 8", len(ranks))
	}
	for i, r := range ranks {
		if r != i {
			t.Fatalf("ranks not contiguous: %v", ranks)
		}
		gpu, ok := env.GPUs[r]
		if !ok {
			t.Fatalf("rank %d has no GPU", r)
		}
		wantModel := topology.GPUA100
		if r >= 4 {
			wantModel = topology.GPUV100
		}
		if gpu.Model() != wantModel {
			t.Errorf("rank %d model = %v, want %v", r, gpu.Model(), wantModel)
		}
	}
}

func TestMakeInputsShape(t *testing.T) {
	in := MakeInputs([]int{0, 3}, 1024)
	if len(in) != 2 {
		t.Fatalf("inputs = %d ranks", len(in))
	}
	if len(in[0]) != 256 || len(in[3]) != 256 {
		t.Fatal("wrong element counts")
	}
	if in[0][0] == in[3][0] {
		t.Fatal("ranks should get distinct patterns")
	}
}

// fakeBackend completes instantly for Measure-path tests.
type fakeBackend struct {
	fail bool
	seen Request
}

func (f *fakeBackend) Name() string { return "fake" }
func (f *fakeBackend) Run(req Request, _ ...RunOption) error {
	f.seen = req
	if f.fail {
		return errFake
	}
	req.OnDone(collective.Result{Elapsed: 42})
	return nil
}

var errFake = errorf("fake failure")

type errorf string

func (e errorf) Error() string { return string(e) }

func TestMeasureFillsInputsAndReturnsElapsed(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBackend{}
	elapsed, err := Measure(env, fb, Request{Primitive: strategy.AllReduce, Bytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 42 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if fb.seen.Inputs == nil {
		t.Fatal("Measure did not synthesise inputs")
	}
	if len(fb.seen.Inputs) != 2 {
		t.Fatalf("inputs for %d ranks, want 2", len(fb.seen.Inputs))
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(env, &fakeBackend{fail: true}, Request{Bytes: 64}); err == nil {
		t.Fatal("backend error swallowed")
	}
}

func TestAlgoBandwidth(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := AlgoBandwidth(env, &fakeBackend{}, Request{Bytes: 42})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(42) / (42e-9) // 42 bytes in 42 ns
	if bw != want {
		t.Fatalf("bandwidth = %v, want %v", bw, want)
	}
}

func TestAlgoBandwidthMetric(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBackend{}
	const bytes = 10 << 20
	// The fake completes in a fixed 42 ns.
	bw, err := AlgoBandwidth(env, fb, Request{Primitive: strategy.AllReduce, Bytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(bytes) / (42e-9)
	if d := bw/want - 1; d > 0.01 || d < -0.01 {
		t.Errorf("AlgoBandwidth = %v, want %v", bw, want)
	}
	// A backend whose Run errors propagates the error.
	if _, err := AlgoBandwidth(env, &fakeBackend{fail: true},
		Request{Primitive: strategy.AllReduce, Bytes: bytes}); err == nil {
		t.Error("backend error swallowed")
	}
}

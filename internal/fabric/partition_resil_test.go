package fabric

import (
	"testing"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// recordingInjector admits everything and records the edge ids it was
// consulted with. Safe only under a single worker.
type recordingInjector struct {
	seen map[topology.EdgeID]int
}

func (ri *recordingInjector) Admit(edge topology.EdgeID, size int64) (Verdict, time.Duration) {
	ri.seen[edge]++
	return VerdictPass, 0
}

// TestShardedInjectorSeesGlobalIDs: the admission hook installed through
// Sharded.SetInjector must be consulted with GLOBAL edge ids, for both a
// transfer wholly inside a non-zero domain (whose local edge numbering
// differs from the global one) and a cross-domain transfer's boundary leg.
func TestShardedInjectorSeesGlobalIDs(t *testing.T) {
	topo, s := shardedWorld(t, nil)
	g := topo.Graph
	inj := &recordingInjector{seen: make(map[topology.EdgeID]int)}
	s.SetInjector(inj)

	// Rank 4 -> 5 lives wholly in domain 1; rank 0 -> 4 crosses domains.
	want := make(map[topology.EdgeID]bool)
	for _, tc := range []struct{ src, dst int }{{4, 5}, {0, 4}} {
		tc := tc
		path := pathBetween(t, g, tc.src, tc.dst)
		for i := 0; i+1 < len(path); i++ {
			if ge, ok := g.EdgeBetween(path[i], path[i+1]); ok {
				want[ge] = true
			}
		}
		d := s.Partition().RankDomain[tc.src]
		s.Engine(d).At(0, func() {
			s.SendPath(path, 1<<20, nil, func(any) {})
		})
	}
	s.Run(1)

	if len(inj.seen) == 0 {
		t.Fatal("injector never consulted")
	}
	for ge := range inj.seen {
		if !want[ge] {
			t.Errorf("injector consulted with edge %d, not a global edge of either path (local id leaked?)", ge)
		}
	}
	for ge := range want {
		if inj.seen[ge] == 0 {
			t.Errorf("path edge %d never admitted", ge)
		}
	}
}

// TestShardedScaleGlobalStallAndResume: SetScaleGlobal routes through the
// owning domain's fabric shard — zeroing an edge in domain 1 stalls a
// transfer over it, and restoring the scale from that domain's events
// releases it.
func TestShardedScaleGlobalStallAndResume(t *testing.T) {
	topo, s := shardedWorld(t, nil)
	g := topo.Graph
	path := pathBetween(t, g, 4, 5) // wholly inside domain 1
	ge, ok := g.EdgeBetween(path[0], path[1])
	if !ok {
		t.Fatal("no first-hop edge")
	}
	d := s.Partition().EdgeDomain[ge]
	if d == 0 {
		t.Fatalf("edge %d owned by domain 0; want a non-zero domain to exercise id translation", ge)
	}

	s.SetScaleGlobal(ge, 0)
	if got := s.ScaleGlobal(ge); got != 0 {
		t.Fatalf("ScaleGlobal after zeroing = %v, want 0", got)
	}

	var arrived sim.Time
	restore := sim.Time(2 * time.Millisecond)
	s.Engine(d).At(0, func() {
		s.SendPath(path, 1<<20, nil, func(any) { arrived = s.Engine(d).Now() })
	})
	s.Engine(d).At(restore, func() { s.SetScaleGlobal(ge, 1) })
	s.Run(2)

	if arrived == 0 {
		t.Fatal("transfer never arrived after the edge was restored")
	}
	if arrived < restore {
		t.Errorf("transfer arrived at %v, before the dead edge was restored at %v", arrived, restore)
	}
	if got := s.ScaleGlobal(ge); got != 1 {
		t.Errorf("ScaleGlobal after restore = %v, want 1", got)
	}
}

// TestShardedAbortGenerations: the generation check of Fabric.Abort is
// preserved across SendPath — an abort in the send's instant reclaims the
// transfer, while an abort after delivery reports false (and a zero handle
// is inert).
func TestShardedAbortGenerations(t *testing.T) {
	topo, s := shardedWorld(t, nil)
	g := topo.Graph
	path := pathBetween(t, g, 4, 5)
	d := s.Partition().RankDomain[4]

	var zero GlobalTransfer
	if zero.Valid() || s.Abort(zero) {
		t.Error("zero GlobalTransfer is not inert")
	}

	delivered := 0
	var hAborted, hDelivered GlobalTransfer
	abortedEarly := false
	s.Engine(d).At(0, func() {
		hAborted = s.SendPath(path, 1<<20, nil, func(any) { delivered++ })
		if !hAborted.Valid() {
			t.Error("SendPath returned an invalid handle")
		}
		abortedEarly = s.Abort(hAborted)
		hDelivered = s.SendPath(path, 1<<20, nil, func(any) { delivered++ })
	})
	s.Run(1)

	if !abortedEarly {
		t.Error("abort in the send's instant did not reclaim the transfer")
	}
	if delivered != 1 {
		t.Fatalf("%d deliveries, want exactly 1 (aborted send must not arrive)", delivered)
	}
	if s.Abort(hDelivered) {
		t.Error("abort after delivery reported success (generation check lost)")
	}
	if s.Abort(hAborted) {
		t.Error("double abort reported success")
	}
}

// TestShardedCrossAbortAfterFlight: once a cross-domain send's payload has
// cleared its serialization leg, the handle no longer aborts it.
func TestShardedCrossAbortAfterFlight(t *testing.T) {
	topo, s := shardedWorld(t, nil)
	g := topo.Graph
	path := pathBetween(t, g, 0, 4)
	d := s.Partition().RankDomain[0]
	delivered := false
	var h GlobalTransfer
	s.Engine(d).At(0, func() {
		h = s.SendPath(path, 1<<20, nil, func(any) { delivered = true })
	})
	s.Run(2)
	if !delivered {
		t.Fatal("cross-domain transfer never arrived")
	}
	if s.Abort(h) {
		t.Error("abort succeeded after the cross-domain payload delivered")
	}
}

// TestShardedRecoveryCounters: per-domain recovery tallies fold across
// domains by locality.
func TestShardedRecoveryCounters(t *testing.T) {
	_, s := shardedWorld(t, nil)
	s.RecordRecovery(0, false)
	s.RecordRecovery(0, false)
	s.RecordRecovery(1, true)
	got := s.RecoveryEvents()
	if got.DomainLocal != 2 || got.Boundary != 1 {
		t.Errorf("RecoveryEvents = %+v, want {DomainLocal:2 Boundary:1}", got)
	}
}

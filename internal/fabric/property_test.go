package fabric

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"adapcc/internal/topology"
)

// sendSpec is one randomly generated transfer in the property tests.
type sendSpec struct {
	Size   uint16 // +1, scaled to bytes
	Stream uint8  // stream group (folded to a few ids)
	Delay  uint16 // enqueue time in microseconds
}

// TestConservationProperty: for any schedule of transfers on one link, every
// transfer is delivered exactly once and BytesDelivered equals the sum of
// sizes — the fluid model neither loses nor invents bytes, whatever the
// stream mix.
func TestConservationProperty(t *testing.T) {
	f := func(specs []sendSpec) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 64 {
			specs = specs[:64]
		}
		eng, fab, eid := lineGraph(t, topology.Edge{
			Alpha: 2 * time.Microsecond, BandwidthBps: 1e9, PerStreamBps: 3e8,
		})
		var want int64
		delivered := make(map[int]bool)
		for i, sp := range specs {
			i := i
			size := int64(sp.Size)%100_000 + 1
			want += size
			stream := StreamID(int(sp.Stream)%5 + 1)
			at := time.Duration(sp.Delay) * time.Microsecond
			eng.At(at, func() {
				fab.SendStream(eid, stream, size, i, func(p any) {
					idx := p.(int)
					if delivered[idx] {
						t.Errorf("transfer %d delivered twice", idx)
					}
					delivered[idx] = true
				})
			})
		}
		eng.Run()
		if len(delivered) != len(specs) {
			t.Errorf("%d of %d transfers delivered", len(delivered), len(specs))
			return false
		}
		if got := fab.BytesDelivered(eid); got != want {
			t.Errorf("BytesDelivered = %d, want %d", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStreamFIFOProperty: transfers enqueued on one stream at one time
// deliver in enqueue order, whatever their sizes — the convoy-effect fix
// (FIFO within a stream) must hold for arbitrary schedules.
func TestStreamFIFOProperty(t *testing.T) {
	f := func(sizes []uint16, competing uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
		var order []int
		for i, raw := range sizes {
			i := i
			fab.SendStream(eid, 1, int64(raw)%50_000+1, i, func(p any) {
				order = append(order, p.(int))
			})
		}
		// Competing streams must not reorder stream 1.
		for c := 0; c < int(competing)%4; c++ {
			fab.SendStream(eid, StreamID(10+c), 30_000, -1, func(any) {})
		}
		eng.Run()
		if len(order) != len(sizes) {
			t.Errorf("delivered %d of %d", len(order), len(sizes))
			return false
		}
		for i, got := range order {
			if got != i {
				t.Errorf("position %d delivered transfer %d (out of order)", i, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStallRestoreProperty: for any schedule of transfers interrupted by a
// scale→0→restore window, every transfer still delivers exactly once, in
// FIFO order within its stream, and nothing serialises while the link is
// stalled. This is the SetScale path a chaos link-down/flap fault exercises;
// before the completion-horizon guard a near-zero rate could overflow the
// next-completion arithmetic into a negative deadline and spin the engine.
func TestStallRestoreProperty(t *testing.T) {
	f := func(specs []sendSpec, stallAt, stallLen uint16) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 32 {
			specs = specs[:32]
		}
		// α = 0 so delivery time equals serialisation-completion time and
		// the "nothing delivered while stalled" assertion is exact.
		eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
		t0 := time.Duration(stallAt) * time.Microsecond
		t1 := t0 + time.Duration(int(stallLen)%5000+1)*time.Microsecond
		eng.At(t0, func() { fab.SetScale(eid, 0) })
		eng.At(t1, func() { fab.SetScale(eid, 1) })

		sort.SliceStable(specs, func(i, j int) bool { return specs[i].Delay < specs[j].Delay })
		var want int64
		delivered := make(map[int]int)
		perStream := make(map[StreamID][]int) // delivery order observed
		expect := make(map[StreamID][]int)    // enqueue order expected
		ok := true
		for i, sp := range specs {
			i := i
			size := int64(sp.Size)%100_000 + 1
			want += size
			stream := StreamID(int(sp.Stream)%3 + 1)
			at := time.Duration(sp.Delay) * time.Microsecond
			expect[stream] = append(expect[stream], i)
			eng.At(at, func() {
				fab.SendStream(eid, stream, size, i, func(p any) {
					idx := p.(int)
					delivered[idx]++
					perStream[stream] = append(perStream[stream], idx)
					if now := eng.Now(); now > t0 && now < t1 {
						t.Errorf("transfer %d delivered at %v inside stall window (%v, %v)",
							idx, now, t0, t1)
						ok = false
					}
				})
			})
		}
		eng.Run()
		for i := range specs {
			if delivered[i] != 1 {
				t.Errorf("transfer %d delivered %d times", i, delivered[i])
				ok = false
			}
		}
		for stream, got := range perStream {
			for k, idx := range got {
				if idx != expect[stream][k] {
					t.Errorf("stream %d position %d: delivered %d, want %d (FIFO broken across stall)",
						stream, k, idx, expect[stream][k])
					ok = false
					break
				}
			}
		}
		if got := fab.BytesDelivered(eid); got != want {
			t.Errorf("BytesDelivered = %d, want %d", got, want)
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNoFasterThanWireProperty: no transfer ever finishes before its ideal
// exclusive serialisation time α + size/BW, regardless of contention.
func TestNoFasterThanWireProperty(t *testing.T) {
	f := func(specs []sendSpec) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 32 {
			specs = specs[:32]
		}
		const bw = 1e9
		alpha := 5 * time.Microsecond
		eng, fab, eid := lineGraph(t, topology.Edge{Alpha: alpha, BandwidthBps: bw})
		ok := true
		for _, sp := range specs {
			size := int64(sp.Size)%100_000 + 1
			stream := StreamID(int(sp.Stream)%3 + 1)
			at := time.Duration(sp.Delay) * time.Microsecond
			minDur := alpha + time.Duration(float64(size)/bw*float64(time.Second))
			eng.At(at, func() {
				start := eng.Now()
				fab.SendStream(eid, stream, size, nil, func(any) {
					if eng.Now()-start < minDur-time.Nanosecond {
						t.Errorf("transfer of %d bytes took %v, wire floor %v",
							size, eng.Now()-start, minDur)
						ok = false
					}
				})
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package fabric

import (
	"testing"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// arrivalFunc adapts a func to the Arrival interface for class sends.
type arrivalFunc func(any)

func (f arrivalFunc) OnArrive(p any) { f(p) }

// TestWFQWeightSplit: two equal-priority classes at weights 2:1 split a
// link 2:1 while both are live, and the survivor reclaims the whole link.
func TestWFQWeightSplit(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	heavy := f.NewClass(Class{Name: "heavy", Weight: 2})
	light := f.NewClass(Class{Name: "light", Weight: 1})
	var tHeavy, tLight sim.Time = -1, -1
	f.SendStreamClassTo(eid, f.NewStreamID(), heavy, 1_000_000, nil,
		arrivalFunc(func(any) { tHeavy = eng.Now() }))
	f.SendStreamClassTo(eid, f.NewStreamID(), light, 1_000_000, nil,
		arrivalFunc(func(any) { tLight = eng.Now() }))
	eng.Run()
	// heavy runs at 2/3 GB/s → 1 MB done at 1.5 ms. light ran at 1/3 GB/s
	// until then (0.5 MB through), finishes the rest at line rate → 2 ms.
	approxDuration(t, tHeavy, 1500*time.Microsecond, 10*time.Microsecond, "weight-2 flow")
	approxDuration(t, tLight, 2*time.Millisecond, 10*time.Microsecond, "weight-1 flow")
}

// TestWFQPriorityBlocksUnstartedBulk: with a latency class queued at the
// same instant as a bulk chunk, the higher priority runs at full line rate
// and the bulk chunk does not start until it drains — strict priority for
// chunks that have not yet been granted bandwidth.
func TestWFQPriorityBlocksUnstartedBulk(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	bulk := f.NewClass(Class{Name: "bulk", Priority: 0})
	hot := f.NewClass(Class{Name: "hot", Priority: 1})
	var tBulk, tHot sim.Time = -1, -1
	f.SendStreamClassTo(eid, f.NewStreamID(), bulk, 1_000_000, nil,
		arrivalFunc(func(any) { tBulk = eng.Now() }))
	f.SendStreamClassTo(eid, f.NewStreamID(), hot, 1_000_000, nil,
		arrivalFunc(func(any) { tHot = eng.Now() }))
	eng.Run()
	// hot: 1 MB at the full 1 GB/s → 1 ms. bulk starts only then → 2 ms.
	approxDuration(t, tHot, time.Millisecond, 10*time.Microsecond, "priority flow")
	approxDuration(t, tBulk, 2*time.Millisecond, 10*time.Microsecond, "bulk flow")
}

// TestWFQNoMidChunkPreemption: a bulk chunk that already holds bandwidth
// keeps being served when a higher-priority chunk arrives — the scheduler
// shares the link instead of parking the half-sent chunk (no mid-chunk
// preemption; chunk transmission is atomic once started).
func TestWFQNoMidChunkPreemption(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	bulk := f.NewClass(Class{Name: "bulk", Priority: 0})
	hot := f.NewClass(Class{Name: "hot", Priority: 1})
	var tBulk, tHot sim.Time = -1, -1
	f.SendStreamClassTo(eid, f.NewStreamID(), bulk, 2_000_000, nil,
		arrivalFunc(func(any) { tBulk = eng.Now() }))
	eng.After(time.Millisecond, func() {
		f.SendStreamClassTo(eid, f.NewStreamID(), hot, 2_000_000, nil,
			arrivalFunc(func(any) { tHot = eng.Now() }))
	})
	eng.Run()
	// At 1 ms the bulk chunk is half sent and stays in the serving set next
	// to the new priority chunk: both at 0.5 GB/s. Bulk's remaining 1 MB
	// drains by 3 ms; hot then finishes its last 1 MB at line rate by 4 ms.
	// (A preemptive scheduler would invert this: hot at 3 ms, bulk at 4 ms.)
	approxDuration(t, tBulk, 3*time.Millisecond, 10*time.Microsecond, "started bulk chunk")
	approxDuration(t, tHot, 4*time.Millisecond, 10*time.Microsecond, "late priority chunk")
}

// TestWFQClassWeightCountedOnce: a class's weight is split across its own
// streams, not multiplied by them — a group cannot grow its link share by
// opening more streams.
func TestWFQClassWeightCountedOnce(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	wide := f.NewClass(Class{Name: "wide", Weight: 1})
	narrow := f.NewClass(Class{Name: "narrow", Weight: 1})
	var tWide1, tWide2, tNarrow sim.Time = -1, -1, -1
	f.SendStreamClassTo(eid, f.NewStreamID(), wide, 1_000_000, nil,
		arrivalFunc(func(any) { tWide1 = eng.Now() }))
	f.SendStreamClassTo(eid, f.NewStreamID(), wide, 1_000_000, nil,
		arrivalFunc(func(any) { tWide2 = eng.Now() }))
	f.SendStreamClassTo(eid, f.NewStreamID(), narrow, 1_000_000, nil,
		arrivalFunc(func(any) { tNarrow = eng.Now() }))
	eng.Run()
	// Each class holds 0.5 GB/s; wide splits its half over two streams.
	// narrow: 1 MB at 0.5 GB/s → 2 ms. wide streams: 0.5 MB through at
	// 2 ms, the remaining 0.5 MB each at 0.5 GB/s → 3 ms.
	approxDuration(t, tNarrow, 2*time.Millisecond, 10*time.Microsecond, "single-stream class")
	approxDuration(t, tWide1, 3*time.Millisecond, 10*time.Microsecond, "two-stream class, stream 1")
	approxDuration(t, tWide2, 3*time.Millisecond, 10*time.Microsecond, "two-stream class, stream 2")
}

// TestWFQDefaultClassUnchanged: traffic without a class (ClassID 0) keeps
// the historical per-head equal split even when named classes exist.
func TestWFQDefaultClassUnchanged(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	f.NewClass(Class{Name: "idle", Weight: 4}) // registered, no traffic
	var t1, t2 sim.Time = -1, -1
	f.SendStream(eid, f.NewStreamID(), 1_000_000, nil, func(any) { t1 = eng.Now() })
	f.SendStream(eid, f.NewStreamID(), 1_000_000, nil, func(any) { t2 = eng.Now() })
	eng.Run()
	approxDuration(t, t1, 2*time.Millisecond, 10*time.Microsecond, "default flow 1")
	approxDuration(t, t2, 2*time.Millisecond, 10*time.Microsecond, "default flow 2")
}

// Package fabric is the simulated data plane: it moves chunks of bytes over
// the logical topology graph under a fluid bandwidth-sharing model.
//
// Each directed edge is an independent fluid link: the transfers active on
// the link share its (time-varying) bandwidth equally, with an optional
// per-stream cap (models the single-TCP-channel kernel ceiling). A transfer
// occupies exactly one link — multi-hop movement is store-and-forward at
// chunk granularity, which is precisely the pipelining behaviour AdapCC's
// optimisation model (paper Eq. 2–6) reasons about. Link latency α is added
// after serialisation and does not occupy the link.
//
// The fabric replaces NVLink/PCIe/RDMA/TCP hardware: contention, chunk
// pipelining, heterogeneous rates and mid-training bandwidth changes all
// emerge from this model.
//
// The fabric is a pure timing plane: a transfer's duration depends only on
// the byte size declared to Send, never on the payload value, which rides
// along as an opaque token and is handed back to onArrive untouched. In
// practice that token is a payload.Payload view — dense (real float32
// data) or phantom (length + provenance metadata) — and this indifference
// is what lets dense and phantom runs produce bit-identical timelines.
package fabric

import (
	"fmt"
	"math"
	"time"

	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// completion slack: a transfer whose remaining bytes fall below this is done
// (absorbs float rounding between rate integration and event timestamps).
const epsilonBytes = 1e-3

// maxScheduleSeconds bounds the horizon of a completion event. A nearly-zero
// link rate can push a transfer's finish time past what time.Duration can
// represent; converting that float would overflow into a negative duration
// and the completion event would spin at the current instant forever. Beyond
// this horizon (~31 virtual years) the link is treated as stalled, exactly
// like scale zero: a future SetScale or Abort reschedules it.
const maxScheduleSeconds = 1e9

// StreamID groups transfers that belong to one logical stream (e.g. the
// pipelined chunks of one flow in one transmission context). A link's
// per-stream bandwidth cap applies to the whole group, not to each chunk:
// this is what limits a single TCP channel to ~20 Gbps no matter how many
// chunks it pipelines, while distinct streams aggregate. Zero means "its
// own stream".
type StreamID int64

// ClassID names a registered traffic class. The zero value is the default
// class: priority 0, and — uniquely — every default-class stream counts as
// its own weight-1 flow, which reproduces the historical equal per-stream
// split exactly. Register non-default classes with NewClass.
type ClassID int32

// Class describes one traffic class for the link scheduler. Arbitration at
// each link is strict-priority between classes and weighted-fair within a
// priority level, at chunk granularity: a chunk already on the wire is
// never preempted, but once it completes, waiting higher-priority chunks
// are served before lower-priority ones, and same-priority classes split
// bandwidth in proportion to Weight (counted once per class, not per
// stream — a class with many streams does not multiply its share).
type Class struct {
	// Name labels the class in metrics (adapcc_link_class_share).
	Name string
	// Priority orders classes at a link: higher strictly wins. Default 0.
	Priority int
	// Weight is the fair-share weight among serving classes of the top
	// priority level. Non-positive weights are registered as 1.
	Weight float64
}

// Arrival is the interface form of an arrival callback: the fabric calls
// OnArrive(payload) when the transfer completes. Hot callers pre-bind the
// callback state in the receiver, so posting a chunk allocates no closure.
type Arrival interface{ OnArrive(payload any) }

// Transfer is one in-flight chunk on one link. The handle returned by the
// Send family is valid until the transfer completes; completed transfers
// are recycled for later sends. Callers that may outlive the transfer (e.g.
// retransmission watchdogs) must pair the handle with its Gen and go
// through Abort, which rejects stale generations.
type Transfer struct {
	link      *link
	stream    StreamID
	class     ClassID
	remaining float64
	rate      float64 // bytes/sec currently granted
	payload   any
	onArrive  func(payload any)
	arr       Arrival
	size      int64
	started   sim.Time
	gen       uint64 // identity stamp; 0 only on recycled structs
}

// Size returns the transfer's total size in bytes.
func (t *Transfer) Size() int64 { return t.size }

// Gen returns the transfer's generation stamp. A (handle, gen) pair is the
// only safe way to refer to a transfer asynchronously: the struct is pooled,
// so by the time a watchdog fires the handle may describe a different send.
func (t *Transfer) Gen() uint64 { return t.gen }

// Call fires the transfer's arrival callback and recycles the struct. The
// fabric schedules it (as a pooled simulation event) one link latency α
// after serialisation completes; it is not for external use.
func (t *Transfer) Call() {
	payload, onArrive, arr := t.payload, t.onArrive, t.arr
	f := t.link.fab
	*t = Transfer{}
	f.free = append(f.free, t)
	if arr != nil {
		arr.OnArrive(payload)
		return
	}
	onArrive(payload)
}

// Verdict is an Injector's decision about one transfer entering a link.
type Verdict int

const (
	// VerdictPass admits the transfer normally.
	VerdictPass Verdict = iota
	// VerdictDrop blackholes the transfer: it is parked outside the
	// link's bandwidth accounting and never delivers. Only Abort (a
	// retransmission deadline) reclaims it — this models chunk loss.
	VerdictDrop
	// VerdictHold parks the transfer for the returned delay before it
	// enters the link — this models a mid-path stall (a paused queue, a
	// flapping port buffering traffic).
	VerdictHold
)

// Injector is the fault-injection hook consulted once per send. A nil
// injector (the default) costs a single pointer comparison on the send
// path; the chaos engine installs one to impose loss and stall windows.
type Injector interface {
	Admit(edge topology.EdgeID, size int64) (Verdict, time.Duration)
}

// Fabric simulates the data plane over a logical graph.
type Fabric struct {
	eng      *sim.Engine
	graph    *topology.Graph
	links    []*link
	streamID StreamID
	uniqueID StreamID
	free     []*Transfer // recycled transfer structs
	genCount uint64
	inj      Injector
	classes  []Class
	reg      *metrics.Registry // lazily resolves per-class link-share gauges
	cong     *Congest          // nil when the congestion plane is disabled
}

// SetInjector installs (or, with nil, removes) the fault-injection hook.
func (f *Fabric) SetInjector(inj Injector) { f.inj = inj }

// NewStreamID allocates a fresh logical stream identifier.
func (f *Fabric) NewStreamID() StreamID {
	f.streamID++
	return f.streamID
}

// NewClass registers a traffic class and returns its id. Classes are
// append-only for the fabric's lifetime: a ClassID handed out stays valid
// and keeps its priority and weight.
func (f *Fabric) NewClass(c Class) ClassID {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("class%d", len(f.classes))
	}
	f.classes = append(f.classes, c)
	return ClassID(len(f.classes) - 1)
}

// ClassInfo returns the definition of a registered class.
func (f *Fabric) ClassInfo(id ClassID) Class { return f.classes[id] }

// New builds a fabric over the graph. Every edge starts at its nominal
// bandwidth (scale 1.0).
func New(eng *sim.Engine, graph *topology.Graph) *Fabric {
	f := &Fabric{eng: eng, graph: graph,
		classes: []Class{{Name: "default", Priority: 0, Weight: 1}}}
	f.links = make([]*link, graph.NumEdges())
	for i := range f.links {
		f.links[i] = &link{
			fab:    f,
			edge:   graph.Edge(topology.EdgeID(i)),
			scale:  1.0,
			cscale: 1.0,
		}
	}
	return f
}

// Engine returns the simulation engine driving this fabric.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Graph returns the logical graph the fabric runs over.
func (f *Fabric) Graph() *topology.Graph { return f.graph }

// Send starts transferring size bytes over a single edge as its own
// stream. onArrive fires (with the payload) once serialisation and the
// link latency α complete. Size must be positive.
func (f *Fabric) Send(edge topology.EdgeID, size int64, payload any, onArrive func(payload any)) *Transfer {
	return f.SendStream(edge, 0, size, payload, onArrive)
}

// SendStream starts a transfer that belongs to the given logical stream
// (0 = independent). Concurrent transfers of one stream share a single
// per-stream bandwidth allowance on the link.
func (f *Fabric) SendStream(edge topology.EdgeID, stream StreamID, size int64, payload any, onArrive func(payload any)) *Transfer {
	return f.send(edge, stream, size, payload, onArrive, nil)
}

// SendStreamTo is SendStream with an interface arrival callback (see
// Arrival): the per-chunk hot path of the collective executor uses it so
// posting a chunk allocates no closure.
func (f *Fabric) SendStreamTo(edge topology.EdgeID, stream StreamID, size int64, payload any, arr Arrival) *Transfer {
	return f.sendClass(edge, stream, 0, size, payload, nil, arr)
}

// SendStreamClassTo is SendStreamTo under a registered traffic class: the
// chunk competes at every shared link with that class's priority and
// weight. Class 0 is the default best-effort class.
func (f *Fabric) SendStreamClassTo(edge topology.EdgeID, stream StreamID, class ClassID, size int64, payload any, arr Arrival) *Transfer {
	return f.sendClass(edge, stream, class, size, payload, nil, arr)
}

func (f *Fabric) send(edge topology.EdgeID, stream StreamID, size int64, payload any, onArrive func(payload any), arr Arrival) *Transfer {
	return f.sendClass(edge, stream, 0, size, payload, onArrive, arr)
}

func (f *Fabric) sendClass(edge topology.EdgeID, stream StreamID, class ClassID, size int64, payload any, onArrive func(payload any), arr Arrival) *Transfer {
	if size <= 0 {
		panic(fmt.Sprintf("fabric: transfer size %d must be positive", size))
	}
	if stream == 0 {
		// Unique group: negative ids never collide with NewStreamID.
		f.uniqueID--
		stream = f.uniqueID
	}
	l := f.links[edge]
	var t *Transfer
	if n := len(f.free); n > 0 {
		t = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	} else {
		t = new(Transfer)
	}
	f.genCount++
	*t = Transfer{
		link:      l,
		stream:    stream,
		class:     class,
		remaining: float64(size),
		size:      size,
		payload:   payload,
		onArrive:  onArrive,
		arr:       arr,
		started:   f.eng.Now(),
		gen:       f.genCount,
	}
	if f.inj != nil {
		switch v, d := f.inj.Admit(edge, size); v {
		case VerdictDrop:
			l.parked = append(l.parked, t)
			return t
		case VerdictHold:
			l.parked = append(l.parked, t)
			gen := t.gen
			f.eng.After(d, func() { f.release(t, gen) })
			return t
		}
	}
	l.advance()
	l.active = append(l.active, t)
	l.reallocate()
	if f.cong != nil {
		f.cong.touch(edge)
	}
	return t
}

// release moves a held transfer from the parked list onto the link proper.
// The generation check makes it a no-op if the transfer was aborted (and
// possibly recycled into a different send) in the meantime.
func (f *Fabric) release(t *Transfer, gen uint64) {
	if t.gen != gen || t.link == nil {
		return
	}
	l := t.link
	for i, p := range l.parked {
		if p != t {
			continue
		}
		l.parked = append(l.parked[:i], l.parked[i+1:]...)
		l.advance()
		l.active = append(l.active, t)
		l.reallocate()
		if f.cong != nil {
			f.cong.touch(l.edge.ID)
		}
		return
	}
}

// Abort withdraws an in-flight or parked transfer, recycling it without
// firing its arrival callback, and reports whether it did. False means the
// (handle, gen) pair no longer names a live transfer: it was delivered —
// possibly with its arrival callback still pending behind the link latency
// α — or already aborted. Callers (retransmission deadlines) must treat
// false as "the chunk got through after all" and do nothing.
func (f *Fabric) Abort(t *Transfer, gen uint64) bool {
	if t == nil || gen == 0 || t.gen != gen || t.link == nil {
		return false
	}
	l := t.link
	for i, p := range l.parked {
		if p == t {
			l.parked = append(l.parked[:i], l.parked[i+1:]...)
			l.bytesAborted += t.size
			if l.lm != nil {
				l.lm.aborted.Add(f.eng.Now(), float64(t.size))
			}
			f.recycle(t)
			return true
		}
	}
	// Integrate progress first: a transfer that completed exactly now is
	// delivered, not aborted.
	l.advance()
	for i, p := range l.active {
		if p != t {
			continue
		}
		copy(l.active[i:], l.active[i+1:])
		l.active[len(l.active)-1] = nil
		l.active = l.active[:len(l.active)-1]
		l.bytesAborted += t.size
		if l.lm != nil {
			l.lm.aborted.Add(f.eng.Now(), float64(t.size))
		}
		f.recycle(t)
		l.reallocate()
		if f.cong != nil {
			f.cong.touch(l.edge.ID)
		}
		return true
	}
	return false
}

func (f *Fabric) recycle(t *Transfer) {
	*t = Transfer{}
	f.free = append(f.free, t)
}

// SendBetween is a convenience that sends over the edge from one node to
// another; it returns an error if no such edge exists.
func (f *Fabric) SendBetween(from, to topology.NodeID, size int64, payload any, onArrive func(payload any)) (*Transfer, error) {
	eid, ok := f.graph.EdgeBetween(from, to)
	if !ok {
		return nil, fmt.Errorf("fabric: no edge %v -> %v", from, to)
	}
	return f.Send(eid, size, payload, onArrive), nil
}

// SetScale changes the live bandwidth of an edge to scale × nominal
// (volatile-network and interference experiments use this; it is the
// simulator's analogue of `tc`). In-flight transfers immediately see the new
// rate. Scale 0 stalls the link.
func (f *Fabric) SetScale(edge topology.EdgeID, scale float64) {
	if scale < 0 {
		scale = 0
	}
	l := f.links[edge]
	l.advance()
	l.scale = scale
	l.reallocate()
	if f.cong != nil {
		f.cong.touch(edge)
	}
}

// Scale returns the current bandwidth multiplier of an edge.
func (f *Fabric) Scale(edge topology.EdgeID) float64 { return f.links[edge].scale }

// LiveBandwidthBps returns the instantaneous total bandwidth of an edge,
// including any congestion-plane service-rate reduction.
func (f *Fabric) LiveBandwidthBps(edge topology.EdgeID) float64 {
	l := f.links[edge]
	return l.edge.BandwidthBps * l.scale * l.cscale
}

// BytesDelivered returns the cumulative bytes fully serialised on an edge.
func (f *Fabric) BytesDelivered(edge topology.EdgeID) int64 { return f.links[edge].bytesDone }

// ActiveTransfers returns the number of in-flight transfers on an edge.
func (f *Fabric) ActiveTransfers(edge topology.EdgeID) int { return len(f.links[edge].active) }

// ParkedTransfers returns the number of transfers held off an edge by the
// injector (dropped or stalled, not yet aborted or released).
func (f *Fabric) ParkedTransfers(edge topology.EdgeID) int { return len(f.links[edge].parked) }

// BytesAborted returns the cumulative bytes withdrawn from an edge via
// Abort. Together with BytesDelivered and the in-flight set this preserves
// the conservation ledger: every admitted byte is delivered, aborted, or
// still in flight/parked.
func (f *Fabric) BytesAborted(edge topology.EdgeID) int64 { return f.links[edge].bytesAborted }

// SetServerIngressScale applies a bandwidth scale to every network edge
// entering the given server (the paper's Fig. 2a scenario: server B's
// ingress degrades under cross-traffic).
func (f *Fabric) SetServerIngressScale(server int, scale float64) {
	for _, e := range f.graph.Edges() {
		if !e.Type.Network() {
			continue
		}
		if f.graph.Node(e.To).Server == server {
			f.SetScale(e.ID, scale)
		}
	}
}

// SetServerNetworkScale applies a bandwidth scale to every network edge
// touching the given server, in either direction.
func (f *Fabric) SetServerNetworkScale(server int, scale float64) {
	for _, e := range f.graph.Edges() {
		if !e.Type.Network() {
			continue
		}
		if f.graph.Node(e.To).Server == server || f.graph.Node(e.From).Server == server {
			f.SetScale(e.ID, scale)
		}
	}
}

// link is the per-edge fluid model state.
type link struct {
	fab   *Fabric
	edge  topology.Edge
	scale float64
	// cscale is the congestion plane's service-rate multiplier (queue
	// occupancy degradation, ECMP collisions, PFC pause). Always 1.0 when
	// congestion is disabled; composed multiplicatively with scale.
	cscale float64
	active []*Transfer
	// parked holds injector-withheld transfers: they consume no bandwidth
	// and deliver nothing until released (VerdictHold) or aborted.
	parked       []*Transfer
	lastUpdate   sim.Time
	nextEv       *sim.Event
	bytesDone    int64
	bytesAborted int64
	// reused scratch for reallocate's stream grouping and class
	// arbitration (hot path: no per-call allocations once warmed up).
	streams     []StreamID
	heads       []*Transfer
	serving     []*Transfer
	classIDs    []ClassID
	classN      []int
	classGrant  []float64
	classGauges []*metrics.Gauge // indexed by ClassID; lazily resolved
	lm          *linkMetrics     // nil when metrics are disabled
}

// advance integrates transferred bytes up to the current virtual time and
// delivers any transfer that completed exactly now.
func (l *link) advance() {
	now := l.fab.eng.Now()
	dt := (now - l.lastUpdate).Seconds()
	l.lastUpdate = now
	if dt > 0 {
		for _, t := range l.active {
			t.remaining -= t.rate * dt
		}
	}
	// Filter in place: the backing array is reused across calls, so the
	// per-event integration step allocates nothing.
	still := l.active[:0]
	for _, t := range l.active {
		if t.remaining <= epsilonBytes {
			l.deliver(t)
			continue
		}
		still = append(still, t)
	}
	for i := len(still); i < len(l.active); i++ {
		l.active[i] = nil
	}
	l.active = still
}

// reallocate recomputes per-transfer rates and schedules the next
// completion event. Within one stream the transfers are served FIFO — the
// whole stream allowance goes to the oldest in-flight chunk — matching
// in-order byte-stream delivery; an equal split would make queued chunks
// of a stream complete together (a convoy), which breaks downstream chunk
// pipelining.
//
// Across streams the arbitration is class-aware, at chunk granularity:
//
//   - Only the highest priority present among the stream heads is served,
//     except that a chunk already mid-transmission is never preempted —
//     it keeps (its share of) the link until it completes, and newly
//     arrived higher-priority chunks share with it until then.
//   - Serving classes split capacity by weight. A named class's weight is
//     counted once no matter how many of its streams are serving (the
//     class splits its own share FIFO-fairly among them), so a group
//     cannot grow its link share by opening more streams. Default-class
//     (ClassID 0) streams are each their own weight-1 flow, which makes a
//     fabric with no registered classes behave exactly like the
//     historical equal per-stream split.
//   - The per-stream cap still applies to each head after weighting.
func (l *link) reallocate() {
	if l.nextEv != nil {
		l.fab.eng.Cancel(l.nextEv)
		l.nextEv = nil
	}
	if len(l.active) == 0 {
		if l.lm != nil {
			l.lm.utilization.Set(l.fab.eng.Now(), 0)
		}
		return
	}
	// A link carries few distinct streams at once, so linear scans over
	// reused scratch slices beat per-call map allocations on the hot path.
	classes := l.fab.classes
	seen := l.streams[:0]
	heads := l.heads[:0]
	maxPrio := math.MinInt64
	for _, t := range l.active { // insertion order = FIFO per stream
		found := false
		for _, s := range seen {
			if s == t.stream {
				found = true
				break
			}
		}
		if found {
			t.rate = 0 // queued behind its stream's head
			continue
		}
		seen = append(seen, t.stream)
		heads = append(heads, t)
		if p := classes[t.class].Priority; p > maxPrio {
			maxPrio = p
		}
	}
	l.streams = seen
	l.heads = heads
	// Serving set: top-priority heads plus any head already on the wire
	// (remaining < size ⇒ it has received bandwidth; no mid-chunk
	// preemption). Everything else waits at rate 0.
	serving := l.serving[:0]
	for _, t := range heads {
		if classes[t.class].Priority == maxPrio || t.remaining < float64(t.size) {
			serving = append(serving, t)
		} else {
			t.rate = 0
		}
	}
	l.serving = serving
	// Weight accounting: each default-class head contributes 1; each named
	// class contributes its weight once, split over its serving heads.
	cids := l.classIDs[:0]
	cns := l.classN[:0]
	totalW := 0.0
	for _, t := range serving {
		if t.class == 0 {
			totalW++
			continue
		}
		idx := -1
		for i, id := range cids {
			if id == t.class {
				idx = i
				break
			}
		}
		if idx < 0 {
			cids = append(cids, t.class)
			cns = append(cns, 1)
			totalW += classes[t.class].Weight
		} else {
			cns[idx]++
		}
	}
	l.classIDs, l.classN = cids, cns
	capacity := l.edge.BandwidthBps * l.scale * l.cscale
	grant := l.classGrant[:0]
	for range cids {
		grant = append(grant, 0)
	}
	l.classGrant = grant
	soonest := math.Inf(1)
	granted := 0.0
	for _, t := range serving {
		var share float64
		if t.class == 0 {
			share = capacity / totalW
		} else {
			for i, id := range cids {
				if id == t.class {
					share = capacity * classes[t.class].Weight / totalW / float64(cns[i])
					break
				}
			}
		}
		if cap := l.edge.PerStreamBps; cap > 0 && cap < share {
			share = cap
		}
		t.rate = share
		granted += share
		if t.class != 0 {
			for i, id := range cids {
				if id == t.class {
					grant[i] += share
					break
				}
			}
		}
		if share > 0 {
			if sec := t.remaining / share; sec < soonest {
				soonest = sec
			}
		}
	}
	if l.lm != nil {
		now := l.fab.eng.Now()
		l.lm.queueDepth.Observe(now, float64(len(l.active)))
		util := 0.0
		if capacity > 0 {
			util = granted / capacity
		}
		l.lm.utilization.Set(now, util)
		for i, id := range cids {
			share := 0.0
			if capacity > 0 {
				share = grant[i] / capacity
			}
			l.classShareGauge(id).Set(now, share)
		}
	}
	if math.IsInf(soonest, 1) || soonest > maxScheduleSeconds {
		return // link stalled; a future SetScale (or Abort) will reschedule
	}
	// Round up to the next nanosecond: rounding down could fire the
	// completion event fractionally early and spin without progress.
	d := time.Duration(math.Ceil(soonest * float64(time.Second)))
	l.nextEv = l.fab.eng.CallAfter(d, l)
}

// Call handles the link's next-completion event: it integrates progress and
// recomputes rates. The handle discipline of Engine.CallAfter holds because
// nextEv is dropped here before anything else can observe it, and dropped
// at the (single) Cancel site in reallocate.
func (l *link) Call() {
	l.nextEv = nil
	l.advance()
	l.reallocate()
	if l.fab.cong != nil {
		l.fab.cong.touch(l.edge.ID)
	}
}

// deliver finishes a transfer: counts its bytes and fires the arrival
// callback after the link latency α. The transfer itself is the scheduled
// callback (see Transfer.Call), so delivery allocates nothing; it is
// recycled once the callback has fired.
func (l *link) deliver(t *Transfer) {
	l.bytesDone += t.size
	if l.lm != nil {
		now := l.fab.eng.Now()
		l.lm.bytes.Add(now, float64(t.size))
		l.lm.wait.ObserveDuration(now, time.Duration(now-t.started))
	}
	if t.onArrive == nil && t.arr == nil {
		*t = Transfer{}
		l.fab.free = append(l.fab.free, t)
		return
	}
	l.fab.eng.DoCallAfter(l.edge.Alpha, t)
}

package fabric

import "adapcc/internal/topology"

// The congestion plane models the in-fabric gray failures of real Ethernet
// datacenter fabrics on the simulated fluid links:
//
//   - Per-port egress queues. A port's occupancy is the bytes still
//     serializing on its edge plus any injected standing load ("phantom"
//     cross traffic, e.g. an incast fan-in the collective cannot see).
//   - Queue-occupancy service degradation. Past a knee, a port serves at a
//     degraded rate (head-of-line blocking, pause-frame duty cycles, switch
//     buffer pressure folded into one multiplier), linear down to a floor
//     at the PFC threshold.
//   - ECMP hash collisions. A collision multiplier models two flows hashed
//     onto one uplink from the victim flow's point of view: the port
//     serves the watched traffic at a fraction of nominal.
//   - PFC (priority flow control). When a port's queue crosses the
//     threshold it asserts pause frames one hop upstream — every network
//     port feeding its switch drops to a trickle (PauseScale) until the
//     hot queue drains below the release mark (hysteresis). A single hot
//     port can therefore storm a pod, which is exactly the gray-failure
//     scenario the detection layer must catch.
//
// Congestion is performance-only by construction: it changes service
// rates, never drops or reorders bytes, so survivor sums stay exact and
// dense↔phantom timelines stay bit-identical. All state lives per-fabric
// (per-domain in a Sharded), is touched only from the owning engine's
// events, and costs one nil pointer check on the send path when disabled.

// CongestOptions tunes the congestion plane. Zero values take defaults.
type CongestOptions struct {
	// PFCThreshold is the queue occupancy (bytes) at which a port asserts
	// pause upstream. Default 1 MiB.
	PFCThreshold int64
	// PFCRelease is the occupancy at which an asserting port releases its
	// pause (must be below PFCThreshold for hysteresis). Default
	// PFCThreshold/2.
	PFCRelease int64
	// PauseScale is the service-rate multiplier of a paused port. It must
	// be positive: a paused port serves a trickle, so queues always drain,
	// pause release always eventually fires, and a run that never adapts
	// still terminates. Default 0.02.
	PauseScale float64
	// DegradeKnee is the occupancy at which queue-driven degradation
	// starts. Default PFCThreshold/2.
	DegradeKnee int64
	// DegradeFloor is the service multiplier at PFCThreshold occupancy
	// (degradation is linear between the knee and the threshold). Default
	// 0.5.
	DegradeFloor float64
}

func (o CongestOptions) withDefaults() CongestOptions {
	if o.PFCThreshold <= 0 {
		o.PFCThreshold = 1 << 20
	}
	if o.PFCRelease <= 0 {
		o.PFCRelease = o.PFCThreshold / 2
	}
	if o.PauseScale <= 0 {
		o.PauseScale = 0.02
	}
	if o.DegradeKnee <= 0 {
		o.DegradeKnee = o.PFCThreshold / 2
	}
	if o.DegradeFloor <= 0 {
		o.DegradeFloor = 0.5
	}
	return o
}

// port is the per-edge congestion state. Only network-type edges are
// managed; intra-server NVLink/PCIe edges keep multiplier 1 forever.
type port struct {
	managed   bool
	phantom   int64   // injected standing queue bytes (incast cross traffic)
	collide   float64 // ECMP-collision service multiplier (1 = none)
	pausedBy  int     // pause assertions currently received from downstream
	forced    int     // pfcstorm: rogue pause frames forced onto this port
	asserting bool    // this port is currently pausing its upstreams
	pauseTx   uint64  // pause-frame assertions sent by this port
	maxQueue  int64   // high-water occupancy, for post-run histograms
}

// Congest is one fabric's congestion plane. All methods must be called
// from events on the fabric's engine (or before the run starts); in a
// Sharded each domain has its own Congest (see Sharded.EnableCongestion).
type Congest struct {
	fab   *Fabric
	opts  CongestOptions
	ports []port
	// upstream overrides the one-hop pause propagation walk. The default
	// (nil) walks the local graph's in-edges; Sharded installs a
	// global-graph walk that posts deltas to foreign owning domains,
	// because a domain's subgraph does not contain foreign in-edges at its
	// ghost nodes.
	upstream func(edge topology.EdgeID, delta int)
	frames   uint64 // total pause-frame assertions
}

// EnableCongestion installs the congestion plane on the fabric and returns
// it. Call once, before traffic starts.
func (f *Fabric) EnableCongestion(opts CongestOptions) *Congest {
	if f.cong != nil {
		return f.cong
	}
	c := &Congest{fab: f, opts: opts.withDefaults(), ports: make([]port, f.graph.NumEdges())}
	for i := range c.ports {
		if f.graph.Edge(topology.EdgeID(i)).Type.Network() {
			c.ports[i] = port{managed: true, collide: 1}
		}
	}
	f.cong = c
	return c
}

// Congestion returns the fabric's congestion plane, or nil when disabled.
func (f *Fabric) Congestion() *Congest { return f.cong }

// QueueBytes returns the current egress-queue occupancy of an edge: bytes
// still serializing plus any injected phantom load. It is a pure read —
// progress since the last link event is accounted without mutating it.
func (f *Fabric) QueueBytes(edge topology.EdgeID) int64 {
	l := f.links[edge]
	dt := (f.eng.Now() - l.lastUpdate).Seconds()
	sum := 0.0
	for _, t := range l.active {
		rem := t.remaining
		if dt > 0 {
			rem -= t.rate * dt
		}
		if rem > 0 {
			sum += rem
		}
	}
	q := int64(sum)
	if f.cong != nil {
		q += f.cong.ports[edge].phantom
	}
	return q
}

// Options returns the effective (default-filled) options.
func (c *Congest) Options() CongestOptions { return c.opts }

// SetPhantom installs a standing phantom load of the given bytes on an
// edge's queue (0 clears it) — the injection hook for incast windows.
func (c *Congest) SetPhantom(edge topology.EdgeID, bytes int64) {
	if !c.ports[edge].managed {
		return
	}
	c.ports[edge].phantom = bytes
	c.touch(edge)
}

// SetCollision sets an edge's ECMP-collision service multiplier (1 clears
// it) — the injection hook for hashcollide windows.
func (c *Congest) SetCollision(edge topology.EdgeID, factor float64) {
	if !c.ports[edge].managed {
		return
	}
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	c.ports[edge].collide = factor
	c.touch(edge)
}

// ForcePause forces (or, with on=false, withdraws) a rogue pause assertion
// onto an edge — the injection hook for pfcstorm windows: the port itself
// is paused as if a broken peer were flooding it with pause frames, its
// real queue then builds past the threshold, and the storm spreads
// upstream on its own.
func (c *Congest) ForcePause(edge topology.EdgeID, on bool) {
	if !c.ports[edge].managed {
		return
	}
	if on {
		c.ports[edge].forced++
	} else if c.ports[edge].forced > 0 {
		c.ports[edge].forced--
	}
	c.touch(edge)
}

// PauseDelta applies a pause assertion delta received from a downstream
// port (the propagation primitive; Sharded posts these across domains).
func (c *Congest) PauseDelta(edge topology.EdgeID, delta int) {
	if !c.ports[edge].managed {
		return
	}
	c.ports[edge].pausedBy += delta
	c.touch(edge)
}

// Paused reports whether an edge is currently pause-throttled.
func (c *Congest) Paused(edge topology.EdgeID) bool {
	p := &c.ports[edge]
	return p.managed && p.pausedBy+p.forced > 0
}

// Factor returns the edge's current effective service multiplier.
func (c *Congest) Factor(edge topology.EdgeID) float64 { return c.factor(edge) }

// PauseFrames returns the total pause-frame assertions sent on this
// fabric's ports.
func (c *Congest) PauseFrames() uint64 { return c.frames }

// MaxQueueBytes returns the high-water queue occupancy observed on an
// edge (for post-run queue-depth histograms).
func (c *Congest) MaxQueueBytes(edge topology.EdgeID) int64 { return c.ports[edge].maxQueue }

// factor composes the edge's service multiplier: ECMP collision times
// either the pause trickle (when any pause is asserted on the port) or the
// queue-occupancy degradation curve.
func (c *Congest) factor(edge topology.EdgeID) float64 {
	p := &c.ports[edge]
	if !p.managed {
		return 1
	}
	m := p.collide
	if p.pausedBy+p.forced > 0 {
		return m * c.opts.PauseScale
	}
	occ := c.fab.QueueBytes(edge)
	switch {
	case occ <= c.opts.DegradeKnee:
		return m
	case occ >= c.opts.PFCThreshold:
		return m * c.opts.DegradeFloor
	}
	frac := float64(occ-c.opts.DegradeKnee) / float64(c.opts.PFCThreshold-c.opts.DegradeKnee)
	return m * (1 - frac*(1-c.opts.DegradeFloor))
}

// touch re-evaluates one port after its state may have changed: it applies
// the current service multiplier and runs the PFC assert/release
// hysteresis. Called (nil-guarded) from every occupancy-changing site in
// the fabric — send, delivery, release, abort, rescale — so assertion
// state is always in sync with occupancy. Pause propagation terminates:
// pausing an upstream port changes its rate, not its occupancy, so the
// cascade can only flip each port once per instant.
func (c *Congest) touch(edge topology.EdgeID) {
	p := &c.ports[edge]
	if !p.managed {
		return
	}
	m := c.factor(edge)
	l := c.fab.links[edge]
	if l.cscale != m {
		l.advance()
		l.cscale = m
		l.reallocate()
	}
	occ := c.fab.QueueBytes(edge)
	if occ > p.maxQueue {
		p.maxQueue = occ
	}
	if !p.asserting && occ >= c.opts.PFCThreshold {
		p.asserting = true
		p.pauseTx++
		c.frames++
		c.propagate(edge, +1)
	} else if p.asserting && occ <= c.opts.PFCRelease {
		p.asserting = false
		c.propagate(edge, -1)
	}
}

// propagate sends a pause delta one hop upstream: to every network port
// feeding the congested edge's source switch.
func (c *Congest) propagate(edge topology.EdgeID, delta int) {
	if c.upstream != nil {
		c.upstream(edge, delta)
		return
	}
	from := c.fab.graph.Edge(edge).From
	for _, ue := range c.fab.graph.In(from) {
		c.PauseDelta(ue, delta)
	}
}

package fabric

import (
	"math"
	"testing"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// lineGraph builds a 2-node graph with one directed edge of the given
// properties and returns (engine, fabric, edge id).
func lineGraph(t *testing.T, e topology.Edge) (*sim.Engine, *Fabric, topology.EdgeID) {
	t.Helper()
	g := topology.NewGraph()
	a := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 0})
	b := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 1})
	e.From, e.To = a, b
	if e.Type == 0 {
		e.Type = topology.LinkNVLink
	}
	eid := g.AddEdge(e)
	eng := sim.NewEngine(1)
	return eng, New(eng, g), eid
}

func approxDuration(t *testing.T, got, want time.Duration, tol time.Duration, msg string) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Errorf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestSingleTransferTiming(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{
		Alpha: 10 * time.Microsecond, BandwidthBps: 1e9,
	})
	var arrived sim.Time = -1
	f.Send(eid, 1_000_000, "chunk", func(any) { arrived = eng.Now() })
	eng.Run()
	// 1 MB at 1 GB/s = 1 ms serialisation + 10 µs α.
	approxDuration(t, arrived, time.Millisecond+10*time.Microsecond, time.Microsecond, "arrival")
}

func TestPayloadRoundTrips(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	var got any
	f.Send(eid, 100, 42, func(p any) { got = p })
	eng.Run()
	if got != 42 {
		t.Fatalf("payload = %v, want 42", got)
	}
}

func TestFairSharingDoublesTime(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	var t1, t2 sim.Time = -1, -1
	f.Send(eid, 1_000_000, nil, func(any) { t1 = eng.Now() })
	f.Send(eid, 1_000_000, nil, func(any) { t2 = eng.Now() })
	eng.Run()
	// Both share the link: each sees 0.5 GB/s, finishing together at 2 ms.
	approxDuration(t, t1, 2*time.Millisecond, 10*time.Microsecond, "transfer 1")
	approxDuration(t, t2, 2*time.Millisecond, 10*time.Microsecond, "transfer 2")
}

func TestShortTransferReleasesBandwidth(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	var tBig sim.Time = -1
	f.Send(eid, 2_000_000, nil, func(any) { tBig = eng.Now() })
	f.Send(eid, 500_000, nil, func(any) {})
	eng.Run()
	// Small transfer: 0.5 MB at 0.5 GB/s → done at 1 ms; big transfer has
	// 1.5 MB left, now at full rate → +1.5 ms → 2.5 ms total.
	approxDuration(t, tBig, 2500*time.Microsecond, 10*time.Microsecond, "big transfer")
}

func TestPerStreamCapLimitsSingleStream(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{
		Type:         topology.LinkTCP,
		BandwidthBps: 12.5e9, // 100 Gbps NIC
		PerStreamBps: 2.5e9,  // 20 Gbps per stream
	})
	var done sim.Time = -1
	f.Send(eid, 25_000_000, nil, func(any) { done = eng.Now() })
	eng.Run()
	// One stream is capped at 2.5 GB/s: 25 MB → 10 ms, not 2 ms.
	approxDuration(t, done, 10*time.Millisecond, 50*time.Microsecond, "capped stream")
}

func TestParallelStreamsAggregateUnderCap(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{
		Type:         topology.LinkTCP,
		BandwidthBps: 12.5e9,
		PerStreamBps: 2.5e9,
	})
	var last sim.Time
	for i := 0; i < 4; i++ {
		f.Send(eid, 25_000_000, nil, func(any) { last = eng.Now() })
	}
	eng.Run()
	// 4 streams × 2.5 GB/s = 10 GB/s aggregate (still under the 12.5 GB/s
	// line rate): each 25 MB stream finishes at 10 ms, same as one alone —
	// the fabric lets parallel streams multiply TCP throughput.
	approxDuration(t, last, 10*time.Millisecond, 50*time.Microsecond, "4 capped streams")
}

func TestManyStreamsHitLineRate(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{
		Type:         topology.LinkTCP,
		BandwidthBps: 12.5e9,
		PerStreamBps: 2.5e9,
	})
	var last sim.Time
	for i := 0; i < 10; i++ {
		f.Send(eid, 12_500_000, nil, func(any) { last = eng.Now() })
	}
	eng.Run()
	// 10 streams want 25 GB/s but the link carries 12.5 GB/s: fair share
	// 1.25 GB/s each → 12.5 MB per stream takes 10 ms.
	approxDuration(t, last, 10*time.Millisecond, 50*time.Microsecond, "line-rate saturation")
}

func TestSetScaleMidFlight(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	var done sim.Time = -1
	f.Send(eid, 2_000_000, nil, func(any) { done = eng.Now() })
	eng.At(time.Millisecond, func() { f.SetScale(eid, 0.5) })
	eng.Run()
	// First 1 ms at 1 GB/s moves 1 MB; remaining 1 MB at 0.5 GB/s takes
	// 2 ms → total 3 ms.
	approxDuration(t, done, 3*time.Millisecond, 10*time.Microsecond, "rescaled transfer")
}

func TestStalledLinkResumes(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	var done sim.Time = -1
	f.Send(eid, 1_000_000, nil, func(any) { done = eng.Now() })
	eng.At(500*time.Microsecond, func() { f.SetScale(eid, 0) })
	eng.At(10*time.Millisecond, func() { f.SetScale(eid, 1) })
	eng.Run()
	// 0.5 ms of transfer + 9.5 ms stalled + 0.5 ms remaining = 10.5 ms.
	approxDuration(t, done, 10500*time.Microsecond, 10*time.Microsecond, "stall and resume")
	if done < 0 {
		t.Fatal("transfer never completed after stall")
	}
}

func TestBytesDeliveredAccumulates(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	for i := 0; i < 5; i++ {
		f.Send(eid, 1000, nil, nil)
	}
	eng.Run()
	if got := f.BytesDelivered(eid); got != 5000 {
		t.Fatalf("BytesDelivered = %d, want 5000", got)
	}
}

func TestActiveTransfersTracked(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	f.Send(eid, 1_000_000, nil, nil)
	f.Send(eid, 1_000_000, nil, nil)
	if got := f.ActiveTransfers(eid); got != 2 {
		t.Fatalf("ActiveTransfers = %d, want 2", got)
	}
	eng.Run()
	if got := f.ActiveTransfers(eid); got != 0 {
		t.Fatalf("ActiveTransfers after run = %d, want 0", got)
	}
}

func TestZeroSizePanics(t *testing.T) {
	_, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	defer func() {
		if recover() == nil {
			t.Error("zero-size Send did not panic")
		}
	}()
	f.Send(eid, 0, nil, nil)
}

func TestSendBetweenUnknownEdge(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddNode(topology.Node{Kind: topology.KindGPU, Rank: 0})
	b := g.AddNode(topology.Node{Kind: topology.KindGPU, Rank: 1})
	g.AddEdge(topology.Edge{From: a, To: b, Type: topology.LinkNVLink, BandwidthBps: 1e9})
	eng := sim.NewEngine(1)
	f := New(eng, g)
	if _, err := f.SendBetween(b, a, 100, nil, nil); err == nil {
		t.Error("SendBetween on missing reverse edge succeeded")
	}
	if _, err := f.SendBetween(a, b, 100, nil, nil); err != nil {
		t.Errorf("SendBetween on existing edge failed: %v", err)
	}
}

func TestServerIngressScale(t *testing.T) {
	c, err := topology.NewCluster(topology.TransportRDMA,
		topology.ServerSpec{GPUs: []topology.GPUModel{topology.GPUA100}, NICs: []topology.NICSpec{{BandwidthBps: 1e9}}},
		topology.ServerSpec{GPUs: []topology.GPUModel{topology.GPUA100}, NICs: []topology.NICSpec{{BandwidthBps: 1e9}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	f := New(eng, g)
	f.SetServerIngressScale(1, 0.25)
	for _, e := range g.Edges() {
		if !e.Type.Network() {
			continue
		}
		want := 1.0
		if g.Node(e.To).Server == 1 {
			want = 0.25
		}
		if got := f.Scale(e.ID); got != want {
			t.Errorf("edge %v scale = %v, want %v", e.ID, got, want)
		}
	}
}

// Sanity: exact throughput accounting — N transfers of random sizes on one
// link finish in exactly total/bandwidth seconds regardless of arrival
// interleaving (work conservation).
func TestWorkConservation(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	rng := eng.Fork()
	var total int64
	var last sim.Time
	n := 50
	for i := 0; i < n; i++ {
		size := int64(rng.Intn(1_000_000) + 1)
		total += size
		at := sim.Time(rng.Intn(1000)) // all arrive within the first µs
		eng.At(at, func() {
			f.Send(eid, size, nil, func(any) {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		})
	}
	eng.Run()
	want := time.Duration(float64(total) / 1e9 * float64(time.Second))
	got := last
	if math.Abs(float64(got-want)) > float64(50*time.Microsecond) {
		t.Fatalf("all transfers done at %v, want ≈%v (total %d bytes)", got, want, total)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	run := func() []time.Duration {
		eng, f, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
		rng := eng.Fork()
		var arrivals []time.Duration
		for i := 0; i < 20; i++ {
			size := int64(rng.Intn(100_000) + 1)
			eng.At(sim.Time(rng.Intn(100)), func() {
				f.Send(eid, size, nil, func(any) {
					arrivals = append(arrivals, eng.Now())
				})
			})
		}
		eng.Run()
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different arrival counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSharedStreamSharesCap(t *testing.T) {
	eng, f, eid := lineGraph(t, topology.Edge{
		Type:         topology.LinkTCP,
		BandwidthBps: 12.5e9,
		PerStreamBps: 2.5e9,
	})
	// Four pipelined chunks of ONE logical stream: they share a single
	// 2.5 GB/s allowance, so 4 × 6.25 MB takes 10 ms — no faster than a
	// single 25 MB transfer would.
	sid := f.NewStreamID()
	var last sim.Time
	for i := 0; i < 4; i++ {
		f.SendStream(eid, sid, 6_250_000, nil, func(any) { last = eng.Now() })
	}
	eng.Run()
	approxDuration(t, last, 10*time.Millisecond, 50*time.Microsecond, "shared-stream chunks")
}

func TestDistinctStreamIDs(t *testing.T) {
	_, f, _ := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	a, b := f.NewStreamID(), f.NewStreamID()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("stream ids not unique: %v %v", a, b)
	}
}

package fabric

import (
	"testing"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// shardedWorld builds a Sharded over a small rail-optimized topology with
// the given domain assignment (nil = the topology's own grouping).
func shardedWorld(t *testing.T, nodeDomain []int) (*topology.Topo, *Sharded) {
	t.Helper()
	topo, err := topology.RailSpec{Groups: 2, Servers: 2, Rails: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nodeDomain == nil {
		nodeDomain = topo.NodeDomain
	}
	part, err := topology.NewPartition(topo.Graph, nodeDomain)
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewSharded(part, 1)
}

// pathBetween routes between two global ranks on the global graph.
func pathBetween(t *testing.T, g *topology.Graph, a, b int) []topology.NodeID {
	t.Helper()
	na, _ := g.GPUByRank(a)
	nb, _ := g.GPUByRank(b)
	path := g.ShortestPath(na, nb)
	if path == nil {
		t.Fatalf("no path between ranks %d and %d", a, b)
	}
	return path
}

// TestShardedMatchesMonolithic is the fabric-layer timing-equivalence
// property: the same multi-hop transfers — one crossing the partition
// boundary, one staying inside a domain — arrive at the same virtual time
// whether the graph runs monolithically (trivial one-domain partition) or
// partitioned, with one worker or several.
func TestShardedMatchesMonolithic(t *testing.T) {
	run := func(nodeDomain []int, workers int) (sim.Time, []sim.Time) {
		topo, s := shardedWorld(t, nodeDomain)
		// Cross-group transfer (rank 0 -> rank 7) and intra-server transfer
		// (rank 2 -> rank 3), both launched at t=0, plus a contending
		// transfer sharing rank 0's PCIe uplink. Arrivals record into
		// distinct slice slots: each slot is written by exactly one domain.
		type tc struct{ src, dst int }
		cases := []tc{{0, 7}, {2, 3}, {0, 6}}
		arrivals := make([]sim.Time, len(cases))
		for i, c := range cases {
			i, c := i, c
			path := pathBetween(t, topo.Graph, c.src, c.dst)
			d := s.Partition().RankDomain[c.src]
			s.Engine(d).At(0, func() {
				s.SendPath(path, 1<<20, i, func(p any) {
					arrivals[p.(int)] = s.Engine(s.Partition().RankDomain[c.dst]).Now()
				})
			})
		}
		s.Run(workers)
		return s.Parallel().Now(), arrivals
	}

	topo, _ := shardedWorld(t, nil)
	mono := make([]int, topo.Graph.NumNodes()) // all zeros: one domain
	refNow, refArr := run(mono, 1)
	if refNow == 0 {
		t.Fatalf("reference run incomplete: now=%v arrivals=%v", refNow, refArr)
	}
	for _, workers := range []int{1, 4} {
		now, arr := run(nil, workers)
		if now != refNow {
			t.Errorf("workers=%d: final time %v != monolithic %v", workers, now, refNow)
		}
		for i, at := range refArr {
			if at == 0 {
				t.Errorf("transfer %d never arrived in reference run", i)
			}
			if arr[i] != at {
				t.Errorf("workers=%d: transfer %d arrived at %v, monolithic %v", workers, i, arr[i], at)
			}
		}
	}
}

// TestShardedCrossContention checks that serialization of a cross-domain
// transfer contends in the source domain: two simultaneous transfers over
// the same cross edge take twice as long as one.
func TestShardedCrossContention(t *testing.T) {
	elapsed := func(n int) sim.Time {
		topo, s := shardedWorld(t, nil)
		path := pathBetween(t, topo.Graph, 0, 4) // group 0 -> group 1
		src := s.Partition().RankDomain[0]
		for i := 0; i < n; i++ {
			s.Engine(src).At(0, func() {
				s.SendPath(path, 8<<20, nil, func(any) {})
			})
		}
		s.Run(2)
		return s.Parallel().Now()
	}
	one, two := elapsed(1), elapsed(2)
	if two <= one {
		t.Fatalf("two contending transfers (%v) not slower than one (%v)", two, one)
	}
}

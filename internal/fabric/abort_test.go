package fabric

import (
	"testing"
	"time"

	"adapcc/internal/topology"
)

// testInjector scripts verdicts for the next sends, then passes everything.
type testInjector struct {
	verdicts []Verdict
	delay    time.Duration
}

func (ti *testInjector) Admit(topology.EdgeID, int64) (Verdict, time.Duration) {
	if len(ti.verdicts) == 0 {
		return VerdictPass, 0
	}
	v := ti.verdicts[0]
	ti.verdicts = ti.verdicts[1:]
	return v, ti.delay
}

// TestAbortActive: withdrawing an in-flight transfer suppresses its arrival,
// moves its bytes to the aborted ledger, and leaves the link consistent for
// later traffic.
func TestAbortActive(t *testing.T) {
	eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	arrived := 0
	tr := fab.Send(eid, 1_000_000, nil, func(any) { arrived++ })
	gen := tr.Gen()
	eng.RunFor(100 * time.Microsecond) // ~10% serialised
	if !fab.Abort(tr, gen) {
		t.Fatal("Abort of an in-flight transfer returned false")
	}
	if fab.Abort(tr, gen) {
		t.Error("second Abort of the same (handle, gen) returned true")
	}
	eng.Run()
	if arrived != 0 {
		t.Errorf("aborted transfer arrived %d times", arrived)
	}
	if got := fab.BytesAborted(eid); got != 1_000_000 {
		t.Errorf("BytesAborted = %d, want 1000000", got)
	}
	if got := fab.BytesDelivered(eid); got != 0 {
		t.Errorf("BytesDelivered = %d, want 0", got)
	}
	if n := fab.ActiveTransfers(eid); n != 0 {
		t.Errorf("ActiveTransfers = %d, want 0", n)
	}

	// The link still works afterwards.
	ok := false
	fab.Send(eid, 1000, nil, func(any) { ok = true })
	eng.Run()
	if !ok {
		t.Error("transfer after abort never delivered")
	}
}

// TestAbortLimbo: once a transfer has fully serialised, its arrival callback
// is committed (pending behind α); Abort must refuse so the chunk is not
// both delivered and retransmitted.
func TestAbortLimbo(t *testing.T) {
	alpha := 50 * time.Microsecond
	eng, fab, eid := lineGraph(t, topology.Edge{Alpha: alpha, BandwidthBps: 1e9})
	arrived := 0
	size := int64(1_000_000) // 1 ms serialisation
	tr := fab.Send(eid, size, nil, func(any) { arrived++ })
	gen := tr.Gen()
	eng.RunFor(1*time.Millisecond + alpha/2) // serialised, arrival still pending
	if fab.Abort(tr, gen) {
		t.Fatal("Abort during the latency limbo returned true")
	}
	eng.Run()
	if arrived != 1 {
		t.Errorf("transfer arrived %d times, want exactly 1", arrived)
	}
	if got := fab.BytesAborted(eid); got != 0 {
		t.Errorf("BytesAborted = %d, want 0", got)
	}
}

// TestAbortAfterDelivery: a stale (handle, gen) pair — the struct was
// recycled, possibly into a different live transfer — never aborts anything.
func TestAbortAfterDelivery(t *testing.T) {
	eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	tr := fab.Send(eid, 1000, nil, func(any) {})
	gen := tr.Gen()
	eng.Run()
	if fab.Abort(tr, gen) {
		t.Error("Abort with a stale generation returned true")
	}
	// Recycle the struct into a new transfer; the old gen must not kill it.
	arrived := false
	tr2 := fab.Send(eid, 2000, nil, func(any) { arrived = true })
	if tr2 == tr && tr2.Gen() == gen {
		t.Fatal("generation reused across recycling")
	}
	if fab.Abort(tr, gen) {
		t.Error("stale gen aborted a recycled transfer")
	}
	eng.Run()
	if !arrived {
		t.Error("recycled transfer never delivered")
	}
}

// TestAbortParked: a blackholed (VerdictDrop) transfer never delivers on its
// own and is reclaimed by Abort — the loss + retransmission-deadline cycle.
func TestAbortParked(t *testing.T) {
	eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	fab.SetInjector(&testInjector{verdicts: []Verdict{VerdictDrop}})
	arrived := false
	tr := fab.Send(eid, 5000, nil, func(any) { arrived = true })
	eng.RunFor(time.Second)
	if arrived {
		t.Fatal("blackholed transfer delivered")
	}
	if n := fab.ParkedTransfers(eid); n != 1 {
		t.Fatalf("ParkedTransfers = %d, want 1", n)
	}
	if !fab.Abort(tr, tr.Gen()) {
		t.Fatal("Abort of a parked transfer returned false")
	}
	if n := fab.ParkedTransfers(eid); n != 0 {
		t.Errorf("ParkedTransfers = %d after abort, want 0", n)
	}
	if got := fab.BytesAborted(eid); got != 5000 {
		t.Errorf("BytesAborted = %d, want 5000", got)
	}
}

// TestHoldDelaysDelivery: a held (VerdictHold) transfer delivers exactly
// once, no earlier than hold + serialisation.
func TestHoldDelaysDelivery(t *testing.T) {
	hold := 3 * time.Millisecond
	eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	fab.SetInjector(&testInjector{verdicts: []Verdict{VerdictHold}, delay: hold})
	size := int64(1_000_000) // 1 ms serialisation
	arrivals := 0
	var at time.Duration
	fab.Send(eid, size, nil, func(any) { arrivals++; at = eng.Now() })
	eng.Run()
	if arrivals != 1 {
		t.Fatalf("held transfer arrived %d times, want 1", arrivals)
	}
	if want := hold + time.Millisecond; at < want {
		t.Errorf("held transfer arrived at %v, floor %v", at, want)
	}
}

// TestHoldAbortedBeforeRelease: aborting a held transfer wins the race with
// its scheduled release; the release must not resurrect it.
func TestHoldAbortedBeforeRelease(t *testing.T) {
	eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	fab.SetInjector(&testInjector{verdicts: []Verdict{VerdictHold}, delay: 10 * time.Millisecond})
	arrived := false
	tr := fab.Send(eid, 5000, nil, func(any) { arrived = true })
	gen := tr.Gen()
	eng.RunFor(time.Millisecond)
	if !fab.Abort(tr, gen) {
		t.Fatal("Abort of a held transfer returned false")
	}
	eng.Run() // the release event fires here and must be a no-op
	if arrived {
		t.Error("aborted held transfer delivered after its release fired")
	}
	if n := fab.ActiveTransfers(eid); n != 0 {
		t.Errorf("ActiveTransfers = %d, want 0", n)
	}
}

// TestConservationWithAborts: delivered + aborted bytes account for every
// admitted byte once the engine drains, whatever mix of aborts happens.
func TestConservationWithAborts(t *testing.T) {
	eng, fab, eid := lineGraph(t, topology.Edge{BandwidthBps: 1e9})
	sizes := []int64{10_000, 250_000, 1_000_000, 40_000, 777_777, 5}
	var total, deliveredBytes int64
	type handle struct {
		tr  *Transfer
		gen uint64
		sz  int64
	}
	var hs []handle
	for i, sz := range sizes {
		sz := sz
		total += sz
		tr := fab.Send(eid, sz, nil, func(any) { deliveredBytes += sz })
		hs = append(hs, handle{tr, tr.Gen(), sz})
		_ = i
	}
	// Abort every other transfer partway through.
	eng.RunFor(200 * time.Microsecond)
	var abortedBytes int64
	for i, h := range hs {
		if i%2 == 1 {
			if fab.Abort(h.tr, h.gen) {
				abortedBytes += h.sz
			}
		}
	}
	eng.Run()
	if got := fab.BytesAborted(eid); got != abortedBytes {
		t.Errorf("BytesAborted = %d, want %d", got, abortedBytes)
	}
	if deliveredBytes+abortedBytes != total {
		t.Errorf("delivered %d + aborted %d != admitted %d",
			deliveredBytes, abortedBytes, total)
	}
	if got := fab.BytesDelivered(eid); got != deliveredBytes {
		t.Errorf("BytesDelivered = %d, want %d", got, deliveredBytes)
	}
}

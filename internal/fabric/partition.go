package fabric

import (
	"fmt"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Sharded is the partitioned data plane: one independent Fabric per
// simulation domain, coordinated by a sim.Parallel whose lookahead is the
// partition's minimum cross-domain link latency.
//
// Callers address the data plane in global terms — global edge ids and
// global node paths — and Sharded routes each transfer to the owning
// domain's fabric. An intra-domain edge behaves exactly as in a monolithic
// Fabric. A cross-domain edge is simulated in two halves that reproduce the
// monolithic timing bit for bit: serialization (with all its contention)
// runs in the source domain over the partition's zero-α leg, and the link
// latency α is then paid as the cross-domain post delay, so the arrival
// callback fires in the destination domain at exactly serialization-end+α —
// the same instant a single-engine simulation would deliver it.
//
// With a single-domain partition there are no cross edges and sim.Parallel
// drains the lone engine directly, so a Sharded over the trivial partition
// is byte-identical in timing to a plain Fabric over the global graph.
type Sharded struct {
	par  *sim.Parallel
	part *topology.Partition
	fabs []*Fabric
	// globalEdge[d][local] maps domain d's local edge ids back to global
	// edge ids (every subgraph edge — intra-domain replica or cross-edge
	// serialization leg — comes from exactly one global edge).
	globalEdge [][]topology.EdgeID
	// recov counts recovery events per domain, split by fault locality.
	// Each entry is written only from its owning domain's events, so the
	// slice is race-free under the worker pool; fold with RecoveryEvents.
	recov []RecoveryCounters
}

// RecoveryCounters tallies recovery events recorded against one domain (see
// RecordRecovery), split by the locality of the fault that triggered them.
type RecoveryCounters struct {
	// DomainLocal counts recoveries from faults on edges whose re-route
	// stayed inside the owning domain.
	DomainLocal uint64
	// Boundary counts recoveries from faults on cross-domain (or
	// foreign-domain) edges.
	Boundary uint64
}

// NewSharded builds one fabric per domain of the partition. Domain d's
// engine is seeded with seed+d, so a given (partition, seed) pair fully
// determines the simulation regardless of worker count.
func NewSharded(part *topology.Partition, seed int64) *Sharded {
	par := sim.NewParallel(part.Lookahead)
	s := &Sharded{
		par:        par,
		part:       part,
		fabs:       make([]*Fabric, part.Domains),
		globalEdge: make([][]topology.EdgeID, part.Domains),
		recov:      make([]RecoveryCounters, part.Domains),
	}
	for d := 0; d < part.Domains; d++ {
		_, eng := par.NewDomain(fmt.Sprintf("domain%d", d), seed+int64(d))
		s.fabs[d] = New(eng, part.Subs[d])
		s.globalEdge[d] = make([]topology.EdgeID, part.Subs[d].NumEdges())
	}
	for ge := 0; ge < part.Graph.NumEdges(); ge++ {
		d := part.EdgeDomain[ge]
		s.globalEdge[d][part.EdgeLocal[ge]] = topology.EdgeID(ge)
	}
	return s
}

// Parallel returns the coordinator.
func (s *Sharded) Parallel() *sim.Parallel { return s.par }

// Partition returns the topology partition the fabrics are built over.
func (s *Sharded) Partition() *topology.Partition { return s.part }

// Fabric returns domain d's fabric.
func (s *Sharded) Fabric(d int) *Fabric { return s.fabs[d] }

// Engine returns domain d's engine (for scheduling domain-local events).
func (s *Sharded) Engine(d int) *sim.Engine { return s.par.Domain(d) }

// Run executes all domains to completion on the given worker count. The
// result is deterministic for any worker count (see sim.Parallel).
func (s *Sharded) Run(workers int) { s.par.Run(workers) }

// GlobalEdge maps domain d's local edge id back to the global edge id.
func (s *Sharded) GlobalEdge(d int, local topology.EdgeID) topology.EdgeID {
	return s.globalEdge[d][local]
}

// SetInjector installs (or, with nil, removes) an admission-control hook on
// every domain fabric. The injector sees global edge ids — each domain's
// local admissions are translated through the partition's reverse edge map
// before the injector is consulted — so one chaos schedule written against
// the global graph drives all domains, including the serialization legs of
// cross-domain boundary links. The injector's Admit is called from domain
// events concurrently across domains; it must keep any mutable state
// per-domain (see chaos.Sharded).
func (s *Sharded) SetInjector(inj Injector) {
	for d := range s.fabs {
		if inj == nil {
			s.fabs[d].SetInjector(nil)
			continue
		}
		s.fabs[d].SetInjector(&shardInjector{inj: inj, toGlobal: s.globalEdge[d]})
	}
}

// shardInjector adapts a global-edge-id injector to one domain's fabric.
type shardInjector struct {
	inj      Injector
	toGlobal []topology.EdgeID
}

func (si *shardInjector) Admit(edge topology.EdgeID, size int64) (Verdict, time.Duration) {
	return si.inj.Admit(si.toGlobal[edge], size)
}

// SetScaleGlobal re-scales a global edge's bandwidth on the owning domain's
// fabric. It must be called from that domain's events (or before Run): the
// owning domain is EdgeDomain[ge], i.e. the domain of the edge's From node.
func (s *Sharded) SetScaleGlobal(ge topology.EdgeID, scale float64) {
	s.fabs[s.part.EdgeDomain[ge]].SetScale(s.part.EdgeLocal[ge], scale)
}

// ScaleGlobal reads a global edge's current bandwidth scale. Like
// SetScaleGlobal it is only safe from the owning domain's events.
func (s *Sharded) ScaleGlobal(ge topology.EdgeID) float64 {
	return s.fabs[s.part.EdgeDomain[ge]].Scale(s.part.EdgeLocal[ge])
}

// GlobalTransfer is an abortable handle on the first hop of a guarded send.
// The zero value is inert (Abort returns false).
type GlobalTransfer struct {
	fab *Fabric
	tr  *Transfer
	gen uint64
}

// Valid reports whether the handle refers to a transfer at all.
func (h GlobalTransfer) Valid() bool { return h.tr != nil }

// Abort withdraws a guarded send while it still occupies its first hop,
// reclaiming the bandwidth; it returns false once the payload has cleared
// that hop (the generation check of Fabric.Abort, preserved across
// SendGlobal/SendPath — a transfer that delivered or forwarded in the same
// instant wins). Like the send itself, Abort must be called from the first
// hop's owning domain.
func (s *Sharded) Abort(h GlobalTransfer) bool {
	if h.tr == nil {
		return false
	}
	return h.fab.Abort(h.tr, h.gen)
}

// RecordRecovery counts one recovery event against domain d, classified by
// fault locality. Call only from domain d's events; read the fold with
// RecoveryEvents after Run.
func (s *Sharded) RecordRecovery(d int, boundary bool) {
	if boundary {
		s.recov[d].Boundary++
	} else {
		s.recov[d].DomainLocal++
	}
}

// RecoveryEvents folds the per-domain recovery counters. Only meaningful
// once Run has returned (or before it starts).
func (s *Sharded) RecoveryEvents() RecoveryCounters {
	var out RecoveryCounters
	for _, c := range s.recov {
		out.DomainLocal += c.DomainLocal
		out.Boundary += c.Boundary
	}
	return out
}

// ShardedCongest addresses the per-domain congestion planes in global
// terms, mirroring SetScaleGlobal's ownership discipline: every mutation
// must come from the owning domain's events (or before Run), where the
// owning domain is EdgeDomain[ge]. chaos.Sharded's congestion kinds are
// the intended caller.
type ShardedCongest struct {
	sh    *Sharded
	congs []*Congest
}

// EnableCongestion installs a congestion plane on every domain fabric with
// one-hop pause propagation over the *global* graph: a domain's subgraph
// does not contain foreign in-edges at its ghost nodes, so the upstream
// walk enumerates global in-edges and posts pause deltas to foreign owning
// domains with the partition's lookahead as the propagation delay (the
// simulated flight time of a pause frame across the boundary).
func (s *Sharded) EnableCongestion(opts CongestOptions) *ShardedCongest {
	sc := &ShardedCongest{sh: s, congs: make([]*Congest, s.part.Domains)}
	for d := range s.fabs {
		sc.congs[d] = s.fabs[d].EnableCongestion(opts)
	}
	for d := range s.fabs {
		d := d
		sc.congs[d].upstream = func(local topology.EdgeID, delta int) {
			ge := s.globalEdge[d][local]
			from := s.part.Graph.Edge(ge).From
			for _, ue := range s.part.Graph.In(from) {
				if !s.part.Graph.Edge(ue).Type.Network() {
					continue
				}
				dd := s.part.EdgeDomain[ue]
				le := s.part.EdgeLocal[ue]
				if dd == d {
					sc.congs[d].PauseDelta(le, delta)
					continue
				}
				delta := delta
				s.par.Post(d, dd, s.part.Lookahead, func() {
					sc.congs[dd].PauseDelta(le, delta)
				})
			}
		}
	}
	return sc
}

// Congestion returns the sharded congestion plane, or nil when disabled.
func (s *Sharded) Congestion() *ShardedCongest {
	if s.fabs[0].Congestion() == nil {
		return nil
	}
	sc := &ShardedCongest{sh: s, congs: make([]*Congest, len(s.fabs))}
	for d := range s.fabs {
		sc.congs[d] = s.fabs[d].Congestion()
	}
	return sc
}

// Domain returns domain d's congestion plane.
func (sc *ShardedCongest) Domain(d int) *Congest { return sc.congs[d] }

// SetPhantomGlobal installs a standing phantom load on a global edge's
// queue. Owning-domain events only.
func (sc *ShardedCongest) SetPhantomGlobal(ge topology.EdgeID, bytes int64) {
	sc.congs[sc.sh.part.EdgeDomain[ge]].SetPhantom(sc.sh.part.EdgeLocal[ge], bytes)
}

// SetCollisionGlobal sets a global edge's ECMP-collision multiplier.
// Owning-domain events only.
func (sc *ShardedCongest) SetCollisionGlobal(ge topology.EdgeID, factor float64) {
	sc.congs[sc.sh.part.EdgeDomain[ge]].SetCollision(sc.sh.part.EdgeLocal[ge], factor)
}

// ForcePauseGlobal forces (or withdraws) a rogue pause assertion on a
// global edge. Owning-domain events only.
func (sc *ShardedCongest) ForcePauseGlobal(ge topology.EdgeID, on bool) {
	sc.congs[sc.sh.part.EdgeDomain[ge]].ForcePause(sc.sh.part.EdgeLocal[ge], on)
}

// PausedGlobal reports whether a global edge is currently pause-throttled.
// Owning-domain events only.
func (sc *ShardedCongest) PausedGlobal(ge topology.EdgeID) bool {
	return sc.congs[sc.sh.part.EdgeDomain[ge]].Paused(sc.sh.part.EdgeLocal[ge])
}

// MaxQueueBytesGlobal returns a global edge's high-water queue occupancy.
// Only meaningful once Run has returned (or from owning-domain events).
func (sc *ShardedCongest) MaxQueueBytesGlobal(ge topology.EdgeID) int64 {
	return sc.congs[sc.sh.part.EdgeDomain[ge]].MaxQueueBytes(sc.sh.part.EdgeLocal[ge])
}

// PauseFrames folds the per-domain pause-frame counters. Only meaningful
// once Run has returned (or before it starts).
func (sc *ShardedCongest) PauseFrames() uint64 {
	var total uint64
	for _, c := range sc.congs {
		total += c.PauseFrames()
	}
	return total
}

// SendGlobal transfers size bytes over one global edge. Like Fabric.Send,
// onArrive fires after serialization plus the edge's α — but in the domain
// owning the edge's destination node, which for a cross-domain edge differs
// from the domain that simulates the serialization. It must be called from
// the source domain (an event on that domain's engine, or before Run). The
// returned handle aborts the transfer while it is still serializing (see
// Abort); for a cross edge the handle covers the serialization leg — once
// the payload is in the α-flight of the cross-domain post it is considered
// delivered and Abort reports false.
func (s *Sharded) SendGlobal(ge topology.EdgeID, size int64, payload any, onArrive func(payload any)) GlobalTransfer {
	d := s.part.EdgeDomain[ge]
	local := s.part.EdgeLocal[ge]
	fab := s.fabs[d]
	var tr *Transfer
	if ci := s.part.EdgeCross[ge]; ci >= 0 {
		ce := s.part.Cross[ci]
		tr = fab.Send(local, size, payload, func(p any) {
			s.par.Post(ce.Src, ce.Dst, ce.Global.Alpha, func() { onArrive(p) })
		})
	} else {
		tr = fab.Send(local, size, payload, onArrive)
	}
	return GlobalTransfer{fab: fab, tr: tr, gen: tr.Gen()}
}

// SendPath store-and-forwards size bytes along a path of global node ids:
// the payload fully serializes over each hop before entering the next, each
// hop simulated in (and contending within) the domain that owns it.
// onArrive fires in the final node's domain. Panics if consecutive path
// nodes are not connected in the global graph. The returned handle aborts
// the transfer while it still occupies the first hop (owned by the sender's
// domain); past that it reports false, the "already left the sender"
// semantics the recovery layer's retransmissions rely on.
func (s *Sharded) SendPath(path []topology.NodeID, size int64, payload any, onArrive func(payload any)) GlobalTransfer {
	if len(path) < 2 {
		panic(fmt.Sprintf("fabric: path %v has no hops", path))
	}
	return s.hop(path, 0, size, payload, onArrive)
}

func (s *Sharded) hop(path []topology.NodeID, i int, size int64, payload any, onArrive func(payload any)) GlobalTransfer {
	ge, ok := s.part.Graph.EdgeBetween(path[i], path[i+1])
	if !ok {
		panic(fmt.Sprintf("fabric: path hop %v -> %v has no edge", path[i], path[i+1]))
	}
	if i+2 == len(path) {
		return s.SendGlobal(ge, size, payload, onArrive)
	}
	return s.SendGlobal(ge, size, payload, func(p any) { s.hop(path, i+1, size, p, onArrive) })
}

package fabric

import (
	"fmt"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Sharded is the partitioned data plane: one independent Fabric per
// simulation domain, coordinated by a sim.Parallel whose lookahead is the
// partition's minimum cross-domain link latency.
//
// Callers address the data plane in global terms — global edge ids and
// global node paths — and Sharded routes each transfer to the owning
// domain's fabric. An intra-domain edge behaves exactly as in a monolithic
// Fabric. A cross-domain edge is simulated in two halves that reproduce the
// monolithic timing bit for bit: serialization (with all its contention)
// runs in the source domain over the partition's zero-α leg, and the link
// latency α is then paid as the cross-domain post delay, so the arrival
// callback fires in the destination domain at exactly serialization-end+α —
// the same instant a single-engine simulation would deliver it.
//
// With a single-domain partition there are no cross edges and sim.Parallel
// drains the lone engine directly, so a Sharded over the trivial partition
// is byte-identical in timing to a plain Fabric over the global graph.
type Sharded struct {
	par  *sim.Parallel
	part *topology.Partition
	fabs []*Fabric
}

// NewSharded builds one fabric per domain of the partition. Domain d's
// engine is seeded with seed+d, so a given (partition, seed) pair fully
// determines the simulation regardless of worker count.
func NewSharded(part *topology.Partition, seed int64) *Sharded {
	par := sim.NewParallel(part.Lookahead)
	s := &Sharded{par: par, part: part, fabs: make([]*Fabric, part.Domains)}
	for d := 0; d < part.Domains; d++ {
		_, eng := par.NewDomain(fmt.Sprintf("domain%d", d), seed+int64(d))
		s.fabs[d] = New(eng, part.Subs[d])
	}
	return s
}

// Parallel returns the coordinator.
func (s *Sharded) Parallel() *sim.Parallel { return s.par }

// Partition returns the topology partition the fabrics are built over.
func (s *Sharded) Partition() *topology.Partition { return s.part }

// Fabric returns domain d's fabric.
func (s *Sharded) Fabric(d int) *Fabric { return s.fabs[d] }

// Engine returns domain d's engine (for scheduling domain-local events).
func (s *Sharded) Engine(d int) *sim.Engine { return s.par.Domain(d) }

// Run executes all domains to completion on the given worker count. The
// result is deterministic for any worker count (see sim.Parallel).
func (s *Sharded) Run(workers int) { s.par.Run(workers) }

// SendGlobal transfers size bytes over one global edge. Like Fabric.Send,
// onArrive fires after serialization plus the edge's α — but in the domain
// owning the edge's destination node, which for a cross-domain edge differs
// from the domain that simulates the serialization. It must be called from
// the source domain (an event on that domain's engine, or before Run).
func (s *Sharded) SendGlobal(ge topology.EdgeID, size int64, payload any, onArrive func(payload any)) {
	d := s.part.EdgeDomain[ge]
	local := s.part.EdgeLocal[ge]
	if ci := s.part.EdgeCross[ge]; ci >= 0 {
		ce := s.part.Cross[ci]
		s.fabs[d].Send(local, size, payload, func(p any) {
			s.par.Post(ce.Src, ce.Dst, ce.Global.Alpha, func() { onArrive(p) })
		})
		return
	}
	s.fabs[d].Send(local, size, payload, onArrive)
}

// SendPath store-and-forwards size bytes along a path of global node ids:
// the payload fully serializes over each hop before entering the next, each
// hop simulated in (and contending within) the domain that owns it.
// onArrive fires in the final node's domain. Panics if consecutive path
// nodes are not connected in the global graph.
func (s *Sharded) SendPath(path []topology.NodeID, size int64, payload any, onArrive func(payload any)) {
	if len(path) < 2 {
		panic(fmt.Sprintf("fabric: path %v has no hops", path))
	}
	s.hop(path, 0, size, payload, onArrive)
}

func (s *Sharded) hop(path []topology.NodeID, i int, size int64, payload any, onArrive func(payload any)) {
	ge, ok := s.part.Graph.EdgeBetween(path[i], path[i+1])
	if !ok {
		panic(fmt.Sprintf("fabric: path hop %v -> %v has no edge", path[i], path[i+1]))
	}
	if i+2 == len(path) {
		s.SendGlobal(ge, size, payload, onArrive)
		return
	}
	s.SendGlobal(ge, size, payload, func(p any) { s.hop(path, i+1, size, p, onArrive) })
}

package fabric

import (
	"testing"
	"time"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// congestChain builds NIC_a → SW_x → SW_y (network edges only, forward
// direction) plus a second feeder NIC_b → SW_x, and returns the graph so
// the test can enable congestion and inspect ports. Edge x→y is the "hot"
// port; its upstream ports are the two NIC feeders.
func congestChain(t *testing.T) (*sim.Engine, *Fabric, *topology.Graph) {
	t.Helper()
	g := topology.NewGraph()
	ga := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 0, Rank: 0})
	a := g.AddNode(topology.Node{Kind: topology.KindNIC, Server: 0, Index: 0, Rank: -1})
	gb := g.AddNode(topology.Node{Kind: topology.KindGPU, Server: 1, Rank: 1})
	b := g.AddNode(topology.Node{Kind: topology.KindNIC, Server: 1, Index: 0, Rank: -1})
	x := g.AddNode(topology.Node{Kind: topology.KindSwitch, Server: -1, Rank: -1})
	y := g.AddNode(topology.Node{Kind: topology.KindSwitch, Server: -1, Rank: -1})
	g.AddEdge(topology.Edge{From: ga, To: a, Type: topology.LinkPCIe, BandwidthBps: 64e9})
	g.AddEdge(topology.Edge{From: gb, To: b, Type: topology.LinkPCIe, BandwidthBps: 64e9})
	g.AddEdge(topology.Edge{From: a, To: x, Type: topology.LinkRDMA, Alpha: time.Microsecond, BandwidthBps: 1e9})
	g.AddEdge(topology.Edge{From: b, To: x, Type: topology.LinkRDMA, Alpha: time.Microsecond, BandwidthBps: 1e9})
	g.AddEdge(topology.Edge{From: x, To: y, Type: topology.LinkRDMA, Alpha: time.Microsecond, BandwidthBps: 1e9})
	eng := sim.NewEngine(1)
	return eng, New(eng, g), g
}

func edgeOf(t *testing.T, g *topology.Graph, from, to topology.NodeID) topology.EdgeID {
	t.Helper()
	id, ok := g.EdgeBetween(from, to)
	if !ok {
		t.Fatalf("no edge %v→%v", from, to)
	}
	return id
}

// TestCongestDegradeSlowsTransfer: queue occupancy past the knee degrades
// the service rate, so a transfer under phantom load finishes later than
// the same transfer on an idle port — but still finishes, with all bytes.
func TestCongestDegradeSlowsTransfer(t *testing.T) {
	run := func(phantom int64) (sim.Time, int64) {
		eng, f, g := congestChain(t)
		c := f.EnableCongestion(CongestOptions{PFCThreshold: 1 << 20})
		hot := edgeOf(t, g, 4, 5) // x→y
		if phantom > 0 {
			c.SetPhantom(hot, phantom)
		}
		var done sim.Time = -1
		f.Send(hot, 500_000, nil, func(any) { done = eng.Now() })
		eng.Run()
		return done, f.BytesDelivered(hot)
	}
	base, bytes := run(0)
	if base < 0 || bytes != 500_000 {
		t.Fatalf("idle run: done=%v bytes=%d", base, bytes)
	}
	slow, bytes := run(900 << 10) // between knee (512 KiB) and threshold
	if slow < 0 || bytes != 500_000 {
		t.Fatalf("degraded run: done=%v bytes=%d", slow, bytes)
	}
	if slow <= base {
		t.Fatalf("degraded transfer (%v) not slower than idle (%v)", slow, base)
	}
}

// TestCongestCollisionHalvesRate: a 0.5 collision multiplier doubles the
// serialisation time.
func TestCongestCollisionHalvesRate(t *testing.T) {
	eng, f, g := congestChain(t)
	c := f.EnableCongestion(CongestOptions{})
	hot := edgeOf(t, g, 4, 5)
	c.SetCollision(hot, 0.5)
	var done sim.Time = -1
	f.Send(hot, 100_000, nil, func(any) { done = eng.Now() })
	eng.Run()
	// 100 KB at 0.5 GB/s = 200 µs + 1 µs α.
	approxDuration(t, done, 201*time.Microsecond, 2*time.Microsecond, "collided transfer")
}

// TestCongestPFCPausesUpstream: pushing the hot port's queue over the
// threshold asserts pause one hop upstream — the feeder NICs' ports drop
// to the pause trickle — and draining below the release mark releases
// them. Pause frames are counted.
func TestCongestPFCPausesUpstream(t *testing.T) {
	eng, f, g := congestChain(t)
	c := f.EnableCongestion(CongestOptions{PFCThreshold: 1 << 20, PauseScale: 0.01})
	hot := edgeOf(t, g, 4, 5)  // x→y
	upA := edgeOf(t, g, 1, 4)  // a→x
	upB := edgeOf(t, g, 3, 4)  // b→x
	pcie := edgeOf(t, g, 0, 1) // GPU→NIC: not a network port, never paused

	eng.At(0, func() {
		c.SetPhantom(hot, 2<<20) // storm: 2 MiB standing load
		if !c.Paused(upA) || !c.Paused(upB) {
			t.Errorf("upstream ports not paused: a→x=%v b→x=%v", c.Paused(upA), c.Paused(upB))
		}
		if c.Paused(pcie) {
			t.Error("PCIe edge paused; PFC must only touch network ports")
		}
		if got := c.Factor(upA); got != 0.01 {
			t.Errorf("paused upstream factor = %v, want 0.01", got)
		}
		c.SetPhantom(hot, 0) // drain below release
		if c.Paused(upA) || c.Paused(upB) {
			t.Error("upstream ports still paused after the hot queue drained")
		}
	})
	eng.Run()
	if c.PauseFrames() == 0 {
		t.Error("no pause frames counted")
	}
	if c.MaxQueueBytes(hot) < 2<<20 {
		t.Errorf("hot-port high-water queue %d, want >= 2 MiB", c.MaxQueueBytes(hot))
	}
}

// TestCongestForcePauseStorms: forcing a pause on the hot port makes real
// traffic pile up behind it until the queue crosses the threshold, which
// asserts pause upstream (the storm); withdrawing the forced pause lets
// the queue drain and the upstreams release. Every byte still arrives.
func TestCongestForcePauseStorms(t *testing.T) {
	eng, f, g := congestChain(t)
	c := f.EnableCongestion(CongestOptions{PFCThreshold: 256 << 10, PauseScale: 0.01})
	hot := edgeOf(t, g, 4, 5)
	upA := edgeOf(t, g, 1, 4)
	delivered := 0
	eng.At(0, func() { c.ForcePause(hot, true) })
	// Feed the hot port: 8 × 64 KiB = 512 KiB > threshold.
	for i := 0; i < 8; i++ {
		d := time.Duration(i) * 10 * time.Microsecond
		eng.At(sim.Time(d), func() {
			f.Send(hot, 64<<10, nil, func(any) { delivered++ })
		})
	}
	stormed := false
	eng.At(sim.Time(time.Millisecond), func() {
		stormed = c.Paused(upA)
		c.ForcePause(hot, false)
	})
	eng.Run()
	if !stormed {
		t.Error("upstream port not paused while the forced-paused port's queue was full")
	}
	if delivered != 8 {
		t.Fatalf("%d of 8 transfers delivered; congestion must be performance-only", delivered)
	}
	if c.Paused(upA) {
		t.Error("upstream port still paused after the run drained")
	}
}

// TestShardedCongestCrossDomainStorm: on a 2-domain partition, a forced
// pause on a boundary port storms the *foreign* feeder via a posted pause
// delta, and the sharded run stays bit-identical across worker counts.
func TestShardedCongestCrossDomainStorm(t *testing.T) {
	build := func() (*Sharded, *ShardedCongest, *topology.Partition) {
		topo, err := topology.FatTreeSpec{Pods: 2, Servers: 1, GPUs: 1}.Build()
		if err != nil {
			t.Fatal(err)
		}
		part, err := topo.Partition()
		if err != nil {
			t.Fatal(err)
		}
		sh := NewSharded(part, 7)
		sc := sh.EnableCongestion(CongestOptions{PFCThreshold: 128 << 10, PauseScale: 0.01})
		return sh, sc, part
	}
	run := func(workers int) (sim.Time, uint64, int) {
		sh, sc, part := build()
		// Route rank 0 → rank 1 through the spine; storm the pod-1 leaf's
		// uplink to the spine (owned by domain 1's leaf... the edge's From
		// domain), then feed it from rank 0's side.
		g := part.Graph
		src, _ := g.GPUByRank(0)
		dst, _ := g.GPUByRank(1)
		path := g.ShortestPath(src, dst)
		if path == nil {
			t.Fatal("no cross-pod path")
		}
		// Hot edge: the last network hop into pod 1 (spine→leaf_1), whose
		// upstream walk reaches the leaf_0→spine port owned by domain 0.
		var hot topology.EdgeID = 0
		found := false
		for i := 0; i+1 < len(path); i++ {
			e, _ := g.EdgeBetween(path[i], path[i+1])
			if g.Node(path[i]).Kind == topology.KindSwitch && g.Node(path[i+1]).Kind == topology.KindSwitch {
				hot = e
				found = g.Node(path[i+1]).Index < 2 // into a leaf
			}
		}
		if !found {
			// Fall back: any switch→switch edge into pod 1's leaf.
			for _, e := range g.Edges() {
				if g.Node(e.From).Kind == topology.KindSwitch && g.Node(e.To).Kind == topology.KindSwitch &&
					g.Node(e.To).Index == 1 {
					hot = e.ID
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatal("no spine→leaf edge found")
		}
		hotDom := part.EdgeDomain[hot]
		sh.Engine(hotDom).At(0, func() { sc.ForcePauseGlobal(hot, true) })
		arrivals := 0
		srcDom := part.RankDomain[0]
		for i := 0; i < 6; i++ {
			d := sim.Time(time.Duration(i) * 20 * time.Microsecond)
			sh.Engine(srcDom).At(d, func() {
				sh.SendPath(path, 32<<10, nil, func(any) { arrivals++ })
			})
		}
		sh.Engine(hotDom).At(sim.Time(5*time.Millisecond), func() { sc.ForcePauseGlobal(hot, false) })
		sh.Run(workers)
		var latest sim.Time
		for d := 0; d < part.Domains; d++ {
			if now := sh.Engine(d).Now(); now > latest {
				latest = now
			}
		}
		return latest, sc.PauseFrames(), arrivals
	}
	t1, f1, a1 := run(1)
	if a1 != 6 {
		t.Fatalf("%d of 6 transfers arrived under the storm", a1)
	}
	if f1 == 0 {
		t.Error("no pause frames under a forced-pause storm with live traffic")
	}
	for _, w := range []int{2, 4} {
		tw, fw, aw := run(w)
		if tw != t1 || fw != f1 || aw != a1 {
			t.Fatalf("workers=%d: (time=%v frames=%d arrivals=%d) != workers=1 (%v, %d, %d)",
				w, tw, fw, aw, t1, f1, a1)
		}
	}
}

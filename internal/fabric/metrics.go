package fabric

import (
	"strconv"

	"adapcc/internal/metrics"
)

// linkMetrics is one link's pre-resolved instrument bundle. Instruments are
// resolved once in SetMetrics so the per-event hot paths (deliver,
// reallocate, Abort) never touch the registry's name tables; a nil bundle —
// the default — costs one pointer comparison per hook.
type linkMetrics struct {
	bytes       *metrics.Counter   // bytes fully serialised
	aborted     *metrics.Counter   // bytes withdrawn via Abort
	utilization *metrics.Gauge     // share of live capacity granted
	queueDepth  *metrics.Histogram // in-flight transfers at reallocate
	wait        *metrics.Histogram // send-to-delivery time per transfer
}

// SetMetrics installs (or, with nil, removes) the metrics registry. Each
// link records bytes delivered/aborted, instantaneous utilization, queue
// depth and per-transfer wait time, labelled by edge id and link type;
// links carrying classed traffic additionally record the per-class
// bandwidth share (adapcc_link_class_share, labelled by class name).
func (f *Fabric) SetMetrics(reg *metrics.Registry) {
	f.reg = reg
	for _, l := range f.links {
		l.classGauges = nil
		if reg == nil {
			l.lm = nil
			continue
		}
		id := strconv.Itoa(int(l.edge.ID))
		typ := l.edge.Type.String()
		l.lm = &linkMetrics{
			bytes: reg.Counter("adapcc_link_bytes_total",
				"bytes fully serialised per link", "link", id, "type", typ),
			aborted: reg.Counter("adapcc_link_bytes_aborted_total",
				"bytes withdrawn from a link via Abort", "link", id, "type", typ),
			utilization: reg.Gauge("adapcc_link_utilization",
				"share of a link's live bandwidth granted to transfers", "link", id, "type", typ),
			queueDepth: reg.Histogram("adapcc_link_queue_depth",
				"in-flight transfers on a link at each rate reallocation",
				metrics.DepthBuckets, "link", id, "type", typ),
			wait: reg.Histogram("adapcc_link_wait_seconds",
				"virtual send-to-delivery time per transfer",
				metrics.DurationBuckets, "link", id, "type", typ),
		}
	}
}

// classShareGauge resolves (once per link and class) the gauge recording
// what fraction of the link's live bandwidth a traffic class currently
// holds. Only called with metrics enabled and classed traffic serving, so
// the default hot path never reaches it.
func (l *link) classShareGauge(id ClassID) *metrics.Gauge {
	for int(id) >= len(l.classGauges) {
		l.classGauges = append(l.classGauges, nil)
	}
	g := l.classGauges[id]
	if g == nil {
		g = l.fab.reg.Gauge("adapcc_link_class_share",
			"share of a link's live bandwidth held by a traffic class",
			"link", strconv.Itoa(int(l.edge.ID)), "class", l.fab.classes[id].Name)
		l.classGauges[id] = g
	}
	return g
}

// Package detect implements AdapCC's Detector (paper Sec. IV-A): it infers
// each instance's internal layout — which NUMA node each NIC is closest to,
// which GPUs share a PCIe switch, and which GPUs share their switch with a
// NIC — purely from probe measurements, then treats instance-to-instance
// connectivity as a full mesh.
//
// The three probes mirror the paper exactly:
//
//  1. NIC/NUMA affinity: pin the local rank0 host thread to each NUMA node
//     and loop a socket back to each NIC; the smallest latency wins.
//  2. GPU/PCIe-switch co-location: two GPUs copy 20 MB to the CPU
//     concurrently (8 parallel transmissions); depressed bandwidth reveals a
//     shared switch.
//  3. NIC PCIe locality: a GPU copies to the CPU while the CPU loops back to
//     the NIC; depressed copy bandwidth reveals a shared switch.
//
// On real hardware the measurements come from CUDA memcpy and sockets; here
// a Prober backed by the ground-truth topology.Cluster synthesises them with
// realistic noise, so the inference logic runs unchanged.
package detect

import (
	"fmt"
	"math/rand"
	"time"

	"adapcc/internal/topology"
)

// Prober supplies raw measurements. Implementations must be deterministic
// given their random source.
type Prober interface {
	// LoopbackLatency measures a socket loopback to nic from a host
	// thread bound to the given NUMA node.
	LoopbackLatency(server, numa, nic int) time.Duration
	// SoloCopyBandwidth measures gpu's host-copy bandwidth with the PCIe
	// fabric otherwise idle (bytes/sec).
	SoloCopyBandwidth(server, gpu int) float64
	// ConcurrentCopyBandwidth measures gpuA's host-copy bandwidth while
	// gpuB copies simultaneously (bytes/sec).
	ConcurrentCopyBandwidth(server, gpuA, gpuB int) float64
	// CopyDuringLoopback measures gpu's host-copy bandwidth while the CPU
	// drives a loopback through nic (bytes/sec).
	CopyDuringLoopback(server, gpu, nic int) float64
}

// Decision thresholds and probe repetition counts.
const (
	probeReps = 5
	// A concurrent copy below this fraction of solo bandwidth implies a
	// shared PCIe switch.
	switchShareThreshold = 0.75
	// A copy-during-loopback below this fraction of solo bandwidth
	// implies the GPU shares its switch with the NIC.
	nicShareThreshold = 0.85
)

// Per-probe simulated costs, calibrated so that a 4-GPU server's full
// detection takes ≈1.2 s (the paper's measured constant, Fig. 19c
// discussion). Probing runs concurrently on all servers, so job-level
// inference time is the slowest server's time.
const (
	loopbackProbeCost = 1 * time.Millisecond
	pairProbeCost     = 30 * time.Millisecond
	nicProbeCost      = 20 * time.Millisecond
)

// ServerLayout is the inferred layout of one server.
type ServerLayout struct {
	// NICAffinityNuma[n] is the NUMA node inferred closest to NIC n.
	NICAffinityNuma []int
	// SwitchGroups partitions GPU indices into inferred PCIe-switch
	// groups (each group sorted ascending; groups ordered by first GPU).
	SwitchGroups [][]int
	// GPUSharesNICSwitch[g][n] reports whether GPU g was inferred to
	// share a PCIe switch with NIC n.
	GPUSharesNICSwitch [][]bool
}

// SameSwitch reports whether the layout places two GPUs on one switch.
func (l *ServerLayout) SameSwitch(a, b int) bool {
	for _, grp := range l.SwitchGroups {
		var hasA, hasB bool
		for _, g := range grp {
			hasA = hasA || g == a
			hasB = hasB || g == b
		}
		if hasA || hasB {
			return hasA && hasB
		}
	}
	return false
}

// Result is the detector's output for the whole job.
type Result struct {
	Layouts []ServerLayout
	// Graph is the logical communication graph (Fig. 5a) with nominal
	// edge properties; the Profiler refines them.
	Graph *topology.Graph
	// InferenceTime is the simulated wall time of detection. Probing runs
	// concurrently on every server, so this is the slowest server's
	// probe time — constant in job scale (Sec. VI-E: 1.2 s).
	InferenceTime time.Duration
}

// Detect runs the three probe stages on every server and assembles the
// logical topology.
func Detect(c *topology.Cluster, p Prober) (*Result, error) {
	if c == nil || p == nil {
		return nil, fmt.Errorf("detect: nil cluster or prober")
	}
	res := &Result{Layouts: make([]ServerLayout, len(c.Servers))}
	var slowest time.Duration
	for si := range c.Servers {
		layout, cost, err := detectServer(c, p, si)
		if err != nil {
			return nil, fmt.Errorf("detect: server %d: %w", si, err)
		}
		res.Layouts[si] = layout
		if cost > slowest {
			slowest = cost
		}
	}
	res.InferenceTime = slowest

	g, err := c.LogicalGraph()
	if err != nil {
		return nil, fmt.Errorf("detect: building logical graph: %w", err)
	}
	res.Graph = g
	return res, nil
}

func detectServer(c *topology.Cluster, p Prober, si int) (ServerLayout, time.Duration, error) {
	srv := c.Servers[si]
	nGPU, nNIC := len(srv.GPUs), len(srv.NICs)
	var cost time.Duration

	// Stage 1: NIC/NUMA affinity via pinned loopback latency.
	layout := ServerLayout{NICAffinityNuma: make([]int, nNIC)}
	for nic := 0; nic < nNIC; nic++ {
		best, bestNuma := time.Duration(1<<62), -1
		for numa := 0; numa < srv.NUMACount; numa++ {
			lat := medianLatency(probeReps, func() time.Duration {
				return p.LoopbackLatency(si, numa, nic)
			})
			cost += probeReps * loopbackProbeCost
			if lat < best {
				best, bestNuma = lat, numa
			}
		}
		layout.NICAffinityNuma[nic] = bestNuma
	}

	// Stage 2: pairwise GPU switch co-location.
	solo := make([]float64, nGPU)
	for g := 0; g < nGPU; g++ {
		solo[g] = medianBandwidth(probeReps, func() float64 {
			return p.SoloCopyBandwidth(si, g)
		})
		cost += probeReps * pairProbeCost / 2
		if solo[g] <= 0 {
			return ServerLayout{}, 0, fmt.Errorf("GPU %d solo bandwidth %v not positive", g, solo[g])
		}
	}
	parent := make([]int, nGPU)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for a := 0; a < nGPU; a++ {
		for b := a + 1; b < nGPU; b++ {
			bw := medianBandwidth(probeReps, func() float64 {
				return p.ConcurrentCopyBandwidth(si, a, b)
			})
			cost += probeReps * pairProbeCost
			if bw < switchShareThreshold*solo[a] {
				parent[find(a)] = find(b)
			}
		}
	}
	groups := make(map[int][]int)
	for g := 0; g < nGPU; g++ {
		root := find(g)
		groups[root] = append(groups[root], g)
	}
	for g := 0; g < nGPU; g++ {
		// Emit each group once, when visiting its smallest member
		// (members were appended in ascending order above).
		if grp := groups[find(g)]; len(grp) > 0 && grp[0] == g {
			layout.SwitchGroups = append(layout.SwitchGroups, grp)
		}
	}

	// Stage 3: NIC PCIe locality.
	layout.GPUSharesNICSwitch = make([][]bool, nGPU)
	for g := 0; g < nGPU; g++ {
		layout.GPUSharesNICSwitch[g] = make([]bool, nNIC)
		for nic := 0; nic < nNIC; nic++ {
			bw := medianBandwidth(probeReps, func() float64 {
				return p.CopyDuringLoopback(si, g, nic)
			})
			cost += probeReps * nicProbeCost
			layout.GPUSharesNICSwitch[g][nic] = bw < nicShareThreshold*solo[g]
		}
	}
	return layout, cost, nil
}

func medianLatency(n int, probe func() time.Duration) time.Duration {
	vals := make([]time.Duration, n)
	for i := range vals {
		vals[i] = probe()
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[n/2]
}

func medianBandwidth(n int, probe func() float64) float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = probe()
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[n/2]
}

// HardwareProber synthesises probe measurements from the ground-truth
// cluster description, with multiplicative measurement noise. It stands in
// for the CUDA/socket measurements of the real system.
type HardwareProber struct {
	cluster *topology.Cluster
	rng     *rand.Rand
	// Noise is the relative standard deviation of measurement noise
	// (default 0.03).
	Noise float64
}

var _ Prober = (*HardwareProber)(nil)

// NewHardwareProber returns a prober over the cluster using rng for noise.
func NewHardwareProber(c *topology.Cluster, rng *rand.Rand) *HardwareProber {
	return &HardwareProber{cluster: c, rng: rng, Noise: 0.03}
}

const (
	baseLoopbackLatency  = 20 * time.Microsecond
	crossNumaPenalty     = 12 * time.Microsecond
	sharedSwitchFraction = 0.55 // concurrent copies on one switch see ~55% of solo
	nicContentionFrac    = 0.70 // copy during NIC loopback on shared switch
)

// LoopbackLatency implements Prober.
func (hp *HardwareProber) LoopbackLatency(server, numa, nic int) time.Duration {
	srv := hp.cluster.Servers[server]
	lat := baseLoopbackLatency
	if srv.NICNuma[nic] != numa {
		lat += crossNumaPenalty
	}
	return time.Duration(float64(lat) * hp.noise())
}

// SoloCopyBandwidth implements Prober.
func (hp *HardwareProber) SoloCopyBandwidth(server, gpu int) float64 {
	srv := hp.cluster.Servers[server]
	return srv.PCIe.Bps() * hp.noise()
}

// ConcurrentCopyBandwidth implements Prober.
func (hp *HardwareProber) ConcurrentCopyBandwidth(server, gpuA, gpuB int) float64 {
	srv := hp.cluster.Servers[server]
	bw := srv.PCIe.Bps()
	if gpuA != gpuB && srv.GPUSwitch[gpuA] == srv.GPUSwitch[gpuB] {
		bw *= sharedSwitchFraction
	}
	return bw * hp.noise()
}

// CopyDuringLoopback implements Prober.
func (hp *HardwareProber) CopyDuringLoopback(server, gpu, nic int) float64 {
	srv := hp.cluster.Servers[server]
	bw := srv.PCIe.Bps()
	if srv.GPUSwitch[gpu] == srv.NICSwitch[nic] {
		bw *= nicContentionFrac
	}
	return bw * hp.noise()
}

func (hp *HardwareProber) noise() float64 {
	n := 1 + hp.rng.NormFloat64()*hp.Noise
	if n < 0.5 {
		n = 0.5
	}
	return n
}

package detect

import (
	"math/rand"
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/topology"
)

func defaultServer() topology.ServerSpec {
	return topology.ServerSpec{
		GPUs: []topology.GPUModel{topology.GPUA100, topology.GPUA100, topology.GPUA100, topology.GPUA100},
		NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
	}
}

func detectOne(t *testing.T, servers ...topology.ServerSpec) *Result {
	t.Helper()
	c, err := topology.NewCluster(topology.TransportRDMA, servers...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(c, NewHardwareProber(c, rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRecoversNICAffinity(t *testing.T) {
	srv := defaultServer()
	srv.NICNuma = []int{1} // plant the NIC on NUMA node 1
	res := detectOne(t, srv)
	if got := res.Layouts[0].NICAffinityNuma[0]; got != 1 {
		t.Fatalf("inferred NIC NUMA %d, want 1", got)
	}
}

func TestRecoversSwitchGroups(t *testing.T) {
	srv := defaultServer()
	srv.GPUSwitch = []int{0, 0, 1, 1} // GPUs 0,1 share a switch; 2,3 share another
	res := detectOne(t, srv)
	l := res.Layouts[0]
	if len(l.SwitchGroups) != 2 {
		t.Fatalf("inferred %d switch groups %v, want 2", len(l.SwitchGroups), l.SwitchGroups)
	}
	if !l.SameSwitch(0, 1) || !l.SameSwitch(2, 3) {
		t.Errorf("co-located pairs not detected: %v", l.SwitchGroups)
	}
	if l.SameSwitch(0, 2) || l.SameSwitch(1, 3) {
		t.Errorf("cross-switch pairs wrongly merged: %v", l.SwitchGroups)
	}
}

func TestRecoversNICLocality(t *testing.T) {
	srv := defaultServer()
	srv.GPUSwitch = []int{0, 0, 1, 1}
	srv.NICSwitch = []int{0} // NIC hangs off switch 0, next to GPUs 0 and 1
	res := detectOne(t, srv)
	l := res.Layouts[0]
	for g := 0; g < 4; g++ {
		want := g < 2
		if got := l.GPUSharesNICSwitch[g][0]; got != want {
			t.Errorf("GPU %d shares NIC switch = %v, want %v", g, got, want)
		}
	}
}

func TestRecoveryUnderRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nGPU := 2 + rng.Intn(6)
		srv := topology.ServerSpec{
			GPUs:      make([]topology.GPUModel, nGPU),
			NICs:      []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
			NUMACount: 2,
			GPUNuma:   make([]int, nGPU),
			GPUSwitch: make([]int, nGPU),
			NICNuma:   []int{rng.Intn(2)},
			NICSwitch: []int{rng.Intn(2)},
		}
		for i := 0; i < nGPU; i++ {
			srv.GPUs[i] = topology.GPUA100
			srv.GPUNuma[i] = rng.Intn(2)
			srv.GPUSwitch[i] = rng.Intn(2)
		}
		c, err := topology.NewCluster(topology.TransportRDMA, srv)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Detect(c, NewHardwareProber(c, rand.New(rand.NewSource(int64(trial)))))
		if err != nil {
			t.Fatal(err)
		}
		l := res.Layouts[0]
		if got := l.NICAffinityNuma[0]; got != srv.NICNuma[0] {
			t.Errorf("trial %d: NIC NUMA %d, want %d", trial, got, srv.NICNuma[0])
		}
		for a := 0; a < nGPU; a++ {
			for b := a + 1; b < nGPU; b++ {
				want := srv.GPUSwitch[a] == srv.GPUSwitch[b]
				if got := l.SameSwitch(a, b); got != want {
					t.Errorf("trial %d: SameSwitch(%d,%d) = %v, want %v", trial, a, b, got, want)
				}
			}
			want := srv.GPUSwitch[a] == srv.NICSwitch[0]
			if got := l.GPUSharesNICSwitch[a][0]; got != want {
				t.Errorf("trial %d: GPU %d/NIC locality = %v, want %v", trial, a, got, want)
			}
		}
	}
}

func TestInferenceTimeConstantInScale(t *testing.T) {
	one := detectOne(t, defaultServer())
	six := detectOne(t, defaultServer(), defaultServer(), defaultServer(),
		defaultServer(), defaultServer(), defaultServer())
	if one.InferenceTime != six.InferenceTime {
		t.Fatalf("inference time grew with scale: %v (1 server) vs %v (6 servers); probing is concurrent per server",
			one.InferenceTime, six.InferenceTime)
	}
	// The paper measures ≈1.2 s for a 4-GPU server.
	if one.InferenceTime < 500*time.Millisecond || one.InferenceTime > 3*time.Second {
		t.Errorf("inference time %v implausibly far from the paper's 1.2 s", one.InferenceTime)
	}
}

func TestGraphBuiltAndValid(t *testing.T) {
	res := detectOne(t, defaultServer(), defaultServer())
	if res.Graph == nil {
		t.Fatal("no graph produced")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	if got := len(res.Graph.GPUs()); got != 8 {
		t.Fatalf("graph has %d GPUs, want 8", got)
	}
	// Instance connectivity goes through the core switch: each NIC has
	// one uplink and one downlink port edge.
	network := 0
	for _, e := range res.Graph.Edges() {
		if e.Type.Network() {
			network++
		}
	}
	if network != 4 {
		t.Fatalf("network edges = %d, want 4 (2 NICs x up/down port)", network)
	}
	if _, ok := res.Graph.Switch(); !ok {
		t.Fatal("no core switch in multi-server graph")
	}
}

func TestDetectNilArgs(t *testing.T) {
	if _, err := Detect(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestSameSwitchUnknownGPU(t *testing.T) {
	l := &ServerLayout{SwitchGroups: [][]int{{0, 1}}}
	if l.SameSwitch(0, 5) {
		t.Fatal("unknown GPU reported as co-located")
	}
}

func TestFragmentedAllocationHasNoNVLinkEdges(t *testing.T) {
	// The cloud resource-fragmentation case of Sec. II-A: allocated GPUs
	// share no NVLink, so the detector's graph must route everything over
	// the PCIe host path.
	c, err := topology.NewCluster(topology.TransportRDMA, cluster.FragmentedA100Server(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(c, NewHardwareProber(c, rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Graph.Edges() {
		if e.Type == topology.LinkNVLink {
			t.Fatalf("fragmented allocation produced an NVLink edge %v->%v", e.From, e.To)
		}
	}
	// Every GPU still reaches the NIC over PCIe.
	nic, ok := res.Graph.NICOfServer(0, 0)
	if !ok {
		t.Fatal("no NIC")
	}
	for r := 0; r < 4; r++ {
		id, ok := res.Graph.GPUByRank(r)
		if !ok {
			t.Fatalf("rank %d missing", r)
		}
		if _, ok := res.Graph.EdgeBetween(id, nic); !ok {
			t.Errorf("rank %d has no host path to the NIC", r)
		}
	}
}

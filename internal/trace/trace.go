// Package trace records virtual-time execution events — chunk transfers on
// links, aggregation kernels, collective milestones — and exports them in
// the Chrome trace-event format, so a simulated collective can be inspected
// visually in chrome://tracing or Perfetto exactly like a real NCCL/NSight
// timeline.
//
// The recorder is wired into the collective executor with
// Executor.SetTracer; it is inert (and costs nothing) when unset. All
// methods assume the single-threaded simulation loop: the recorder is not
// safe for concurrent use.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Phase is the Chrome trace-event phase of an event.
type Phase string

const (
	// Complete events ("X") span a duration on one track.
	Complete Phase = "X"
	// Instant events ("i") mark a point in time.
	Instant Phase = "i"
)

// Event is one recorded occurrence, timed on the virtual clock.
type Event struct {
	// Name labels the event in the viewer ("sub0 flow3 chunk17").
	Name string
	// Cat is the Chrome category used for filtering ("net", "kernel").
	Cat string
	// PID selects the process track group (a rank, or the network group).
	PID int
	// TID selects the thread track within the group (a stream or a link).
	TID int
	// Start is the event's virtual start time.
	Start time.Duration
	// Dur is the event's duration (zero for instants).
	Dur time.Duration
	// Phase defaults to Complete when empty.
	Phase Phase
	// Args carries extra key/values shown in the viewer's detail pane.
	Args map[string]any
}

// Tracer accumulates events and track labels.
type Tracer struct {
	events     []Event
	procNames  map[int]string
	procSort   map[int]int
	threadName map[[2]int]string
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{
		procNames:  make(map[int]string),
		procSort:   make(map[int]int),
		threadName: make(map[[2]int]string),
	}
}

// LabelProcess names a process track group (idempotent).
func (t *Tracer) LabelProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.procNames[pid] = name
	if _, ok := t.procSort[pid]; !ok {
		t.procSort[pid] = pid
	}
}

// LabelThread names a thread track within a process group (idempotent).
func (t *Tracer) LabelThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.threadName[[2]int{pid, tid}] = name
}

// Add records one event. Nil tracers ignore the call so instrumentation
// sites don't need a guard.
func (t *Tracer) Add(ev Event) {
	if t == nil {
		return
	}
	if ev.Phase == "" {
		ev.Phase = Complete
	}
	t.events = append(t.events, ev)
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in insertion order. The slice is the
// tracer's own backing store; callers must not mutate it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Reset discards all recorded events but keeps track labels.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
}

// jsonEvent is the wire form of the Chrome trace-event format.
type jsonEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the trace as a Chrome trace-event JSON array: metadata
// events naming every labelled track, then the recorded events in start
// order. The output loads directly into chrome://tracing and Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	var out []jsonEvent
	pids := make([]int, 0, len(t.procNames))
	for pid := range t.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out = append(out, jsonEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": t.procNames[pid]},
		})
		out = append(out, jsonEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]any{"sort_index": t.procSort[pid]},
		})
	}
	keys := make([][2]int, 0, len(t.threadName))
	for k := range t.threadName {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		out = append(out, jsonEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": t.threadName[k]},
		})
	}

	evs := append([]Event(nil), t.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	for _, ev := range evs {
		je := jsonEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(ev.Phase),
			TS:   micros(ev.Start),
			PID:  ev.PID,
			TID:  ev.TID,
			Args: ev.Args,
		}
		if ev.Phase == Complete {
			d := micros(ev.Dur)
			je.Dur = &d
		}
		if ev.Phase == Instant {
			je.Scope = "t" // thread-scoped tick mark
		}
		out = append(out, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New()
	tr.LabelProcess(3, "rank 3")
	tr.LabelThread(3, 0, "sub0 stream")
	tr.Add(Event{
		Name: "xfer", Cat: "net", PID: 3, TID: 0,
		Start: 10 * time.Microsecond, Dur: 5 * time.Microsecond,
		Args: map[string]any{"bytes": 4096},
	})
	tr.Add(Event{
		Name: "mark", Cat: "milestone", PID: 3, TID: 0,
		Start: 20 * time.Microsecond, Phase: Instant,
	})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 process metadata + 1 thread metadata + 2 events.
	if len(out) != 5 {
		t.Fatalf("emitted %d records, want 5", len(out))
	}
	byName := make(map[string]map[string]any)
	for _, rec := range out {
		byName[rec["name"].(string)] = rec
	}
	x := byName["xfer"]
	if x["ph"] != "X" {
		t.Errorf("xfer phase = %v, want X", x["ph"])
	}
	if x["ts"].(float64) != 10 {
		t.Errorf("xfer ts = %v µs, want 10", x["ts"])
	}
	if x["dur"].(float64) != 5 {
		t.Errorf("xfer dur = %v µs, want 5", x["dur"])
	}
	i := byName["mark"]
	if i["ph"] != "i" {
		t.Errorf("mark phase = %v, want i", i["ph"])
	}
	if _, hasDur := i["dur"]; hasDur {
		t.Error("instant event carries a duration")
	}
	if i["s"] != "t" {
		t.Errorf("instant scope = %v, want thread", i["s"])
	}
	m := byName["process_name"]
	if m["ph"] != "M" {
		t.Errorf("metadata phase = %v, want M", m["ph"])
	}
}

func TestEventsSortedByStartInOutput(t *testing.T) {
	tr := New()
	tr.Add(Event{Name: "b", PID: 1, Start: 30 * time.Microsecond, Dur: time.Microsecond})
	tr.Add(Event{Name: "a", PID: 1, Start: 10 * time.Microsecond, Dur: time.Microsecond})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, rec := range out {
		if rec["ph"] == "M" {
			continue
		}
		ts := rec["ts"].(float64)
		if ts < last {
			t.Fatalf("events out of order: %v after %v", ts, last)
		}
		last = ts
	}
	// Insertion order preserved in Events().
	if tr.Events()[0].Name != "b" {
		t.Error("Events() reordered the backing store")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Add(Event{Name: "x"})  // must not panic
	tr.LabelProcess(1, "p")   // must not panic
	tr.LabelThread(1, 2, "t") // must not panic
	tr.Reset()                // must not panic
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer reports events")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil tracer serialised successfully")
	}
}

func TestResetKeepsLabels(t *testing.T) {
	tr := New()
	tr.LabelProcess(1, "p1")
	tr.Add(Event{Name: "x", PID: 1, Dur: time.Microsecond})
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after reset = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range out {
		if rec["name"] == "process_name" {
			found = true
		}
	}
	if !found {
		t.Error("labels lost on reset")
	}
}

// Package health closes the fault loop opened by the resilient controller:
// where RunResilient permanently writes a faulted link or rank off the
// synthesis topology, the health Monitor watches that excluded hardware and
// earns it back. Each watched target runs a per-target state machine on
// virtual time,
//
//	excluded ──quarantine──▶ probing ──success──▶ probation ──K successes──▶ healthy
//	    ▲                       │                     │
//	    └──────── relapse ──────┴─────── relapse ─────┘        (GiveUpAfter
//	                                                            relapses ▶ condemned)
//
// driven by lightweight background probes over the live fabric (and, for
// rank targets, a kernel-liveness launch on the device). Hysteresis keeps a
// flapping link from thrashing the synthesizer: a minimum quarantine before
// the first probe, K consecutive successful probe cycles before promotion,
// and an exponentially growing quarantine for repeat offenders. Promotion
// re-profiles just the healed edges (a reduced-size pass of the Sec. IV-B
// probe plan) so the synthesizer reclaims the capacity with fresh α–β
// values, then hands the event to the owner, which re-admits the hardware
// and drops its strategy caches.
//
// A target that keeps failing is eventually condemned (GiveUpAfter
// relapses): probing stops, the exclusion becomes permanent, and the
// simulation engine can drain. Hold/Release lets the resilient controller
// suspend promotions while a collective's fault loop is in flight, so the
// bounded-attempts termination argument keeps holding (see DESIGN.md §9).
package health

import (
	"fmt"
	"time"

	"adapcc/internal/device"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/profile"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// State is a watched target's position in the healing state machine.
type State int

const (
	// StateExcluded: quarantined, waiting for the next probe window.
	StateExcluded State = iota
	// StateProbing: a probe cycle is in flight, no success yet this episode.
	StateProbing
	// StateProbation: at least one success, accumulating the K-streak.
	StateProbation
	// StateCondemned: GiveUpAfter relapses exhausted — written off for good.
	StateCondemned
)

func (s State) String() string {
	switch s {
	case StateExcluded:
		return "excluded"
	case StateProbing:
		return "probing"
	case StateProbation:
		return "probation"
	case StateCondemned:
		return "condemned"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Kind says what a target (or a heal event) refers to.
type Kind int

const (
	// KindLink is a node pair excluded by a link fault (both directions).
	KindLink Kind = iota
	// KindRank is a worker excluded by a stall/crash fault.
	KindRank
)

func (k Kind) String() string {
	if k == KindRank {
		return "rank"
	}
	return "link"
}

// Options tunes the healing hysteresis. Zero values take the defaults.
type Options struct {
	// Quarantine is the minimum exclusion dwell before the first probe
	// (default 5ms). Repeat offenders wait Quarantine·BackoffFactor^relapses.
	Quarantine time.Duration
	// ProbeInterval separates successive probe cycles inside probation
	// (default 1ms).
	ProbeInterval time.Duration
	// ProbationK is the consecutive-success streak required for promotion
	// (default 3).
	ProbationK int
	// ProbeBytes is the probe transfer size (default 64 KiB — small enough
	// to be invisible next to collective traffic).
	ProbeBytes int64
	// DeadlineMult × the nominal transfer time is the probe deadline
	// (default 8), floored at DeadlineFloor (default 1ms).
	DeadlineMult  float64
	DeadlineFloor time.Duration
	// GiveUpAfter condemns a target after this many relapses (failed probe
	// cycles) across the watch episode (default 6). Condemnation is what
	// lets the engine drain when hardware never comes back.
	GiveUpAfter int
	// BackoffFactor grows the quarantine per relapse (default 2), capped at
	// MaxQuarantine (default 500ms).
	BackoffFactor float64
	MaxQuarantine time.Duration
	// ReprofileCombos is the reduced (n,s) probe plan run on healed edges
	// before promotion (default {4×64KiB, 2×256KiB}).
	ReprofileCombos []profile.Combo
}

func (o Options) withDefaults() Options {
	if o.Quarantine <= 0 {
		o.Quarantine = 5 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Millisecond
	}
	if o.ProbationK <= 0 {
		o.ProbationK = 3
	}
	if o.ProbeBytes <= 0 {
		o.ProbeBytes = 64 << 10
	}
	if o.DeadlineMult <= 0 {
		o.DeadlineMult = 8
	}
	if o.DeadlineFloor <= 0 {
		o.DeadlineFloor = time.Millisecond
	}
	if o.GiveUpAfter <= 0 {
		o.GiveUpAfter = 6
	}
	if o.BackoffFactor < 1 {
		o.BackoffFactor = 2
	}
	if o.MaxQuarantine <= 0 {
		o.MaxQuarantine = 500 * time.Millisecond
	}
	if len(o.ReprofileCombos) == 0 {
		o.ReprofileCombos = []profile.Combo{
			{Count: 4, Size: 64 << 10},
			{Count: 2, Size: 256 << 10},
		}
	}
	return o
}

// Event is one promotion (healed) or condemnation, handed to Hooks.
type Event struct {
	Kind Kind
	// From/To name the healed node pair for KindLink (From < To); -1 for
	// rank events.
	From, To topology.NodeID
	// Rank is the healed worker for KindRank; -1 for link events.
	Rank int
	// ExcludedAt is when this watch episode started, At when the event
	// fired; TimeToHeal is the difference (holds included, honestly).
	ExcludedAt sim.Time
	At         sim.Time
	TimeToHeal time.Duration
	// Probes and Relapses count this episode's probe cycles and failures.
	Probes   int
	Relapses int
	// Edges are the directed edges the target covers.
	Edges []topology.EdgeID
	// Measurements is the healed-edge re-profiling result (promotions only).
	Measurements []profile.Measurement
}

// Hooks are the monitor's outputs. OnHeal owns re-admission: it fires after
// the healed edges were re-profiled (and after any Hold released).
type Hooks struct {
	OnHeal    func(Event)
	OnCondemn func(Event)
}

type targetKey struct {
	kind Kind
	a, b topology.NodeID // normalized lo/hi pair for links
	rank int
}

type target struct {
	key        targetKey
	state      State
	edges      []topology.EdgeID
	excludedAt sim.Time
	streak     int
	relapses   int
	probes     int
	gen        uint64 // bumps on Stop/condemn to invalidate in-flight cycles
	// measurements holds the re-profiling result while a promotion waits
	// out a Hold.
	measurements []profile.Measurement
}

// Monitor watches excluded links and ranks and earns them back. It is
// single-threaded on the simulation engine, like everything else here.
type Monitor struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	g     *topology.Graph
	gpus  map[int]*device.GPU
	opts  Options
	hooks Hooks

	targets map[targetKey]*target
	// relapseHistory remembers repeat offenders across watch episodes, so a
	// link that heals and faults again starts from a longer quarantine.
	relapseHistory map[targetKey]int
	// reclaimedBps tracks the nominal bandwidth each healed key returned,
	// so a re-fault subtracts exactly what its heal added.
	reclaimedBps      map[targetKey]float64
	reclaimedTotalBps float64

	held    bool
	pending []*target // promotions matured while held

	healed    int
	condemned int
	stopped   bool

	// kernel probe scratch (contents are throwaway).
	kdst, ksrc []float32

	hm *healthMetrics // nil when metrics are disabled
	// healWorld/healClassify opt the time-to-heal histogram into labeled
	// series (see SetHealLabels); nil classify keeps the unlabeled one.
	healWorld    string
	healClassify func(Event) string
}

// New builds a monitor over a fabric and its devices. Targets arrive via
// WatchLink/WatchRank; nothing probes until then.
func New(eng *sim.Engine, fab *fabric.Fabric, gpus map[int]*device.GPU, opts Options, hooks Hooks) *Monitor {
	return &Monitor{
		eng:            eng,
		fab:            fab,
		g:              fab.Graph(),
		gpus:           gpus,
		opts:           opts.withDefaults(),
		hooks:          hooks,
		targets:        make(map[targetKey]*target),
		relapseHistory: make(map[targetKey]int),
		reclaimedBps:   make(map[targetKey]float64),
		kdst:           make([]float32, 64),
		ksrc:           make([]float32, 64),
	}
}

// Options returns the monitor's effective (defaulted) knobs.
func (m *Monitor) Options() Options { return m.opts }

// WatchLink starts (or keeps) watching an excluded node pair. Both directed
// edges between the nodes are probed. Idempotent; a condemned pair stays
// condemned.
func (m *Monitor) WatchLink(from, to topology.NodeID) {
	if m.stopped {
		return
	}
	lo, hi := from, to
	if hi < lo {
		lo, hi = hi, lo
	}
	k := targetKey{kind: KindLink, a: lo, b: hi, rank: -1}
	var edges []topology.EdgeID
	if eid, ok := m.g.EdgeBetween(lo, hi); ok {
		edges = append(edges, eid)
	}
	if eid, ok := m.g.EdgeBetween(hi, lo); ok {
		edges = append(edges, eid)
	}
	if len(edges) == 0 {
		return // no physical edges between the nodes: nothing to probe
	}
	m.watch(k, edges)
}

// WatchRank starts (or keeps) watching an excluded worker: its device gets
// a kernel-liveness probe and every adjacent link a transfer probe.
func (m *Monitor) WatchRank(rank int) {
	if m.stopped {
		return
	}
	id, ok := m.g.GPUByRank(rank)
	if !ok {
		return
	}
	k := targetKey{kind: KindRank, a: -1, b: -1, rank: rank}
	edges := append([]topology.EdgeID(nil), m.g.Out(id)...)
	edges = append(edges, m.g.In(id)...)
	m.watch(k, edges)
}

func (m *Monitor) watch(k targetKey, edges []topology.EdgeID) {
	if _, ok := m.targets[k]; ok {
		return // already watched (possibly condemned)
	}
	if prev := m.reclaimedBps[k]; prev > 0 {
		// A previously healed target faulted again: its bandwidth is no
		// longer reclaimed.
		m.reclaimedTotalBps -= prev
		delete(m.reclaimedBps, k)
		if m.hm != nil {
			m.hm.reclaimedBps.Set(m.eng.Now(), m.reclaimedTotalBps)
		}
	}
	t := &target{
		key:        k,
		state:      StateExcluded,
		edges:      edges,
		excludedAt: m.eng.Now(),
		relapses:   m.relapseHistory[k],
	}
	m.targets[k] = t
	if m.hm != nil {
		m.hm.watched.Set(m.eng.Now(), float64(m.watchedCount()))
	}
	m.scheduleWake(t)
}

func (m *Monitor) watchedCount() int {
	n := 0
	for _, t := range m.targets {
		if t.state != StateCondemned {
			n++
		}
	}
	return n
}

// quarantineFor grows the dwell exponentially with the relapse count.
func (m *Monitor) quarantineFor(relapses int) time.Duration {
	q := float64(m.opts.Quarantine)
	for i := 0; i < relapses && i < 32; i++ {
		q *= m.opts.BackoffFactor
		if q >= float64(m.opts.MaxQuarantine) {
			return m.opts.MaxQuarantine
		}
	}
	if q > float64(m.opts.MaxQuarantine) {
		q = float64(m.opts.MaxQuarantine)
	}
	return time.Duration(q)
}

func (m *Monitor) scheduleWake(t *target) {
	gen := t.gen
	m.eng.After(m.quarantineFor(t.relapses), func() {
		if m.stopped || t.gen != gen || t.state == StateCondemned {
			return
		}
		t.state = StateProbing
		m.runCycle(t, gen)
	})
}

// runCycle runs one probe pass over the target: the kernel-liveness launch
// first for rank targets (fail fast on a hung device), then each edge in
// turn, short-circuiting on the first failure.
func (m *Monitor) runCycle(t *target, gen uint64) {
	if m.stopped || t.gen != gen {
		return
	}
	t.probes++
	var stepEdge func(i int)
	finish := func(ok bool) {
		if m.stopped || t.gen != gen {
			return
		}
		if m.hm != nil {
			if ok {
				m.hm.probesOK.Inc(m.eng.Now())
			} else {
				m.hm.probesFail.Inc(m.eng.Now())
			}
		}
		if ok {
			m.cycleSucceeded(t)
		} else {
			m.cycleFailed(t)
		}
	}
	stepEdge = func(i int) {
		if m.stopped || t.gen != gen {
			return
		}
		if i >= len(t.edges) {
			finish(true)
			return
		}
		m.probeEdge(t.edges[i], func(ok bool) {
			if !ok {
				finish(false)
				return
			}
			stepEdge(i + 1)
		})
	}
	if t.key.kind == KindRank {
		m.probeKernel(t.key.rank, func(ok bool) {
			if m.stopped || t.gen != gen {
				return
			}
			if !ok {
				finish(false)
				return
			}
			stepEdge(0)
		})
		return
	}
	stepEdge(0)
}

func (m *Monitor) cycleSucceeded(t *target) {
	t.streak++
	t.state = StateProbation
	if t.streak >= m.opts.ProbationK {
		m.promote(t)
		return
	}
	gen := t.gen
	m.eng.After(m.opts.ProbeInterval, func() {
		if m.stopped || t.gen != gen {
			return
		}
		m.runCycle(t, gen)
	})
}

func (m *Monitor) cycleFailed(t *target) {
	t.streak = 0
	t.relapses++
	m.relapseHistory[t.key] = t.relapses
	if t.relapses >= m.opts.GiveUpAfter {
		m.condemn(t)
		return
	}
	t.state = StateExcluded
	m.scheduleWake(t)
}

func (m *Monitor) condemn(t *target) {
	t.state = StateCondemned
	t.gen++
	m.condemned++
	if m.hm != nil {
		now := m.eng.Now()
		m.hm.condemnedTotal.Inc(now)
		m.hm.watched.Set(now, float64(m.watchedCount()))
	}
	if m.hooks.OnCondemn != nil {
		m.hooks.OnCondemn(m.event(t, nil))
	}
}

// promote starts the healed-edge re-profiling pass; the heal event fires
// when the measurements are in (and any Hold has been released).
func (m *Monitor) promote(t *target) {
	gen := t.gen
	prof := profile.New(m.fab, profile.Options{
		NVLinkCombos:  m.opts.ReprofileCombos,
		NetworkCombos: m.opts.ReprofileCombos,
	})
	prof.ProbeEdges(t.edges, func(ms []profile.Measurement) {
		if m.stopped || t.gen != gen {
			return
		}
		t.measurements = ms
		if m.held {
			m.pending = append(m.pending, t)
			return
		}
		m.finishPromotion(t)
	})
}

func (m *Monitor) finishPromotion(t *target) {
	delete(m.targets, t.key)
	delete(m.relapseHistory, t.key) // healed: offender history is forgiven
	m.healed++
	now := m.eng.Now()
	var bps float64
	for _, eid := range t.edges {
		bps += m.g.Edge(eid).BandwidthBps
	}
	m.reclaimedBps[t.key] = bps
	m.reclaimedTotalBps += bps
	ev := m.event(t, t.measurements)
	if m.hm != nil {
		m.hm.healedTotal.Inc(now)
		if m.healClassify != nil {
			m.hm.reg.Histogram("adapcc_time_to_heal_seconds",
				"exclusion-to-re-admission latency per healed target",
				metrics.DurationBuckets,
				"world", m.healWorld, "locality", m.healClassify(ev)).
				ObserveDuration(now, ev.TimeToHeal)
		} else {
			m.hm.timeToHeal.ObserveDuration(now, ev.TimeToHeal)
		}
		m.hm.reclaimedBps.Set(now, m.reclaimedTotalBps)
		m.hm.watched.Set(now, float64(m.watchedCount()))
	}
	if m.hooks.OnHeal != nil {
		m.hooks.OnHeal(ev)
	}
}

func (m *Monitor) event(t *target, ms []profile.Measurement) Event {
	now := m.eng.Now()
	ev := Event{
		Kind:         t.key.kind,
		From:         t.key.a,
		To:           t.key.b,
		Rank:         t.key.rank,
		ExcludedAt:   t.excludedAt,
		At:           now,
		TimeToHeal:   now - t.excludedAt,
		Probes:       t.probes,
		Relapses:     t.relapses,
		Edges:        append([]topology.EdgeID(nil), t.edges...),
		Measurements: ms,
	}
	return ev
}

// Hold suspends promotions: targets finishing probation park until Release.
// The resilient controller holds the monitor for the duration of a
// RunResilient call, so no exclusion can be undone between attempts and the
// every-attempt-shrinks-the-topology termination argument stays intact.
func (m *Monitor) Hold() { m.held = true }

// Release lifts Hold and fires any promotions that matured meanwhile, in
// arrival order.
func (m *Monitor) Release() {
	if !m.held {
		return
	}
	m.held = false
	pending := m.pending
	m.pending = nil
	for _, t := range pending {
		if m.stopped || t.state == StateCondemned {
			continue
		}
		m.finishPromotion(t)
	}
}

// Held reports whether promotions are currently suspended.
func (m *Monitor) Held() bool { return m.held }

// probeEdge sends one probe transfer and reports whether it arrived within
// the deadline. The deadline scales off the edge's nominal α–β cost; on
// expiry the transfer is aborted (generation-checked: a transfer that
// delivered in the same instant wins).
func (m *Monitor) probeEdge(eid topology.EdgeID, then func(ok bool)) {
	e := m.g.Edge(eid)
	nominal := time.Duration(0)
	if e.BandwidthBps > 0 {
		nominal = time.Duration(float64(m.opts.ProbeBytes) / e.BandwidthBps * 1e9)
	}
	deadline := time.Duration(m.opts.DeadlineMult * float64(e.Alpha+nominal))
	if deadline < m.opts.DeadlineFloor {
		deadline = m.opts.DeadlineFloor
	}
	done := false
	var deadlineEv *sim.Event
	tr := m.fab.Send(eid, m.opts.ProbeBytes, nil, func(any) {
		if done {
			return
		}
		done = true
		if deadlineEv != nil {
			m.eng.Cancel(deadlineEv)
		}
		then(true)
	})
	gen := tr.Gen()
	deadlineEv = m.eng.After(deadline, func() {
		if done {
			return
		}
		if m.fab.Abort(tr, gen) {
			done = true
			then(false)
			return
		}
		// Abort refused: the transfer delivered in this same instant and
		// the arrival callback is about to fire — let it win.
	})
}

// probeKernel launches a tiny reduce on a fresh stream of the rank's device
// and reports whether it retired within the deadline. A hung or crashed
// device keeps the kernel for the stall duration; the late retirement is
// ignored (kernels cannot be cancelled). A fresh stream per probe keeps a
// stuck earlier probe from serialising behind this one.
func (m *Monitor) probeKernel(rank int, then func(ok bool)) {
	gpu := m.gpus[rank]
	if gpu == nil {
		then(true)
		return
	}
	deadline := m.opts.DeadlineFloor +
		time.Duration(m.opts.DeadlineMult*float64(device.KernelLaunchLatency))
	done := false
	var deadlineEv *sim.Event
	st := gpu.NewStream()
	st.LaunchReduce(m.kdst, m.ksrc, func() {
		if done {
			return
		}
		done = true
		if deadlineEv != nil {
			m.eng.Cancel(deadlineEv)
		}
		then(true)
	})
	deadlineEv = m.eng.After(deadline, func() {
		if done {
			return
		}
		done = true
		then(false)
	})
}

// LinkState reports the state of a watched node pair.
func (m *Monitor) LinkState(from, to topology.NodeID) (State, bool) {
	lo, hi := from, to
	if hi < lo {
		lo, hi = hi, lo
	}
	t, ok := m.targets[targetKey{kind: KindLink, a: lo, b: hi, rank: -1}]
	if !ok {
		return 0, false
	}
	return t.state, true
}

// RankState reports the state of a watched worker.
func (m *Monitor) RankState(rank int) (State, bool) {
	t, ok := m.targets[targetKey{kind: KindRank, a: -1, b: -1, rank: rank}]
	if !ok {
		return 0, false
	}
	return t.state, true
}

// Watched returns how many targets are under active watch (condemned ones
// excluded).
func (m *Monitor) Watched() int { return m.watchedCount() }

// Healed returns how many targets have been promoted and re-admitted.
func (m *Monitor) Healed() int { return m.healed }

// Condemned returns how many targets were written off permanently.
func (m *Monitor) Condemned() int { return m.condemned }

// ReclaimedBandwidthBps returns the nominal bandwidth currently reclaimed
// by heals (healed minus re-faulted).
func (m *Monitor) ReclaimedBandwidthBps() float64 { return m.reclaimedTotalBps }

// Stop retires the monitor: in-flight probe cycles become no-ops and no new
// wakes fire. Watched targets are forgotten.
func (m *Monitor) Stop() {
	m.stopped = true
	for _, t := range m.targets {
		t.gen++
	}
	m.targets = make(map[targetKey]*target)
	m.pending = nil
}

// healthMetrics is the pre-resolved instrument bundle (see SetMetrics).
type healthMetrics struct {
	reg            *metrics.Registry
	probesOK       *metrics.Counter
	probesFail     *metrics.Counter
	healedTotal    *metrics.Counter
	condemnedTotal *metrics.Counter
	timeToHeal     *metrics.Histogram
	reclaimedBps   *metrics.Gauge
	watched        *metrics.Gauge
}

// SetHealLabels opts the time-to-heal histogram into labeled series: each
// promotion is observed as adapcc_time_to_heal_seconds{world, locality}
// instead of the unlabeled aggregate, with the locality produced by
// classify (the resilient controller classifies by server geometry).
// Inert until SetMetrics installs a registry.
func (m *Monitor) SetHealLabels(world string, classify func(Event) string) {
	m.healWorld, m.healClassify = world, classify
}

// SetMetrics installs (or, with nil, removes) a metrics registry: probe
// outcomes, heals/condemnations, the time-to-heal histogram and the
// reclaimed-bandwidth gauge. Inert when unset, like every other subsystem.
func (m *Monitor) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		m.hm = nil
		return
	}
	m.hm = &healthMetrics{
		reg: reg,
		probesOK: reg.Counter("adapcc_health_probes_total",
			"health probe cycles by result", "result", "ok"),
		probesFail: reg.Counter("adapcc_health_probes_total",
			"health probe cycles by result", "result", "fail"),
		healedTotal: reg.Counter("adapcc_health_healed_total",
			"targets promoted to healthy and re-admitted"),
		condemnedTotal: reg.Counter("adapcc_health_condemned_total",
			"targets written off after exhausting GiveUpAfter relapses"),
		timeToHeal: reg.Histogram("adapcc_time_to_heal_seconds",
			"exclusion-to-re-admission latency per healed target",
			metrics.DurationBuckets),
		reclaimedBps: reg.Gauge("adapcc_health_reclaimed_bandwidth_bps",
			"nominal bandwidth of currently re-admitted hardware"),
		watched: reg.Gauge("adapcc_health_watched",
			"targets under active watch"),
	}
}

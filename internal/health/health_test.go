package health

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/profile"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func testEnv(t *testing.T) *backend.Env {
	t.Helper()
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// tightOptions keeps the healing timeline in single-digit milliseconds.
func tightOptions() Options {
	return Options{
		Quarantine:    500 * time.Microsecond,
		ProbeInterval: 200 * time.Microsecond,
		ProbationK:    3,
		ProbeBytes:    16 << 10,
		GiveUpAfter:   4,
		MaxQuarantine: 5 * time.Millisecond,
	}
}

// nvlinkPair returns the endpoints of some NVLink edge.
func nvlinkPair(t *testing.T, g *topology.Graph) (topology.NodeID, topology.NodeID, topology.EdgeID) {
	t.Helper()
	for _, e := range g.Edges() {
		if e.Type == topology.LinkNVLink {
			return e.From, e.To, e.ID
		}
	}
	t.Fatal("no NVLink edge in graph")
	return 0, 0, 0
}

func TestHealthyLinkPromotesAfterK(t *testing.T) {
	env := testEnv(t)
	from, to, _ := nvlinkPair(t, env.Graph)
	var events []Event
	m := New(env.Engine, env.Fabric, env.GPUs, tightOptions(), Hooks{
		OnHeal: func(ev Event) { events = append(events, ev) },
	})
	m.WatchLink(from, to)
	if st, ok := m.LinkState(from, to); !ok || st != StateExcluded {
		t.Fatalf("fresh watch: state %v ok=%v, want excluded", st, ok)
	}
	env.Engine.Run()
	if len(events) != 1 {
		t.Fatalf("heal events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != KindLink {
		t.Fatalf("kind = %v, want link", ev.Kind)
	}
	if ev.Probes != 3 {
		t.Fatalf("probes = %d, want exactly K=3 on a healthy link", ev.Probes)
	}
	if ev.Relapses != 0 {
		t.Fatalf("relapses = %d, want 0", ev.Relapses)
	}
	if len(ev.Measurements) != len(ev.Edges) {
		t.Fatalf("measurements for %d of %d edges", len(ev.Measurements), len(ev.Edges))
	}
	for _, ms := range ev.Measurements {
		if ms.StreamBps <= 0 {
			t.Fatalf("edge %d re-profiled StreamBps = %v", ms.Edge, ms.StreamBps)
		}
	}
	if ev.TimeToHeal <= 0 {
		t.Fatalf("TimeToHeal = %v", ev.TimeToHeal)
	}
	if _, ok := m.LinkState(from, to); ok {
		t.Fatal("healed target still watched")
	}
	if m.Healed() != 1 || m.Watched() != 0 {
		t.Fatalf("healed=%d watched=%d", m.Healed(), m.Watched())
	}
	if m.ReclaimedBandwidthBps() <= 0 {
		t.Fatal("no reclaimed bandwidth after heal")
	}
}

func TestDeadLinkIsCondemnedNeverHealed(t *testing.T) {
	env := testEnv(t)
	from, to, eid := nvlinkPair(t, env.Graph)
	env.Fabric.SetScale(eid, 0)
	if rev, ok := env.Graph.EdgeBetween(to, from); ok {
		env.Fabric.SetScale(rev, 0)
	}
	healed := 0
	var condemned []Event
	m := New(env.Engine, env.Fabric, env.GPUs, tightOptions(), Hooks{
		OnHeal:    func(Event) { healed++ },
		OnCondemn: func(ev Event) { condemned = append(condemned, ev) },
	})
	m.WatchLink(from, to)
	env.Engine.Run()
	if healed != 0 {
		t.Fatalf("dead link healed %d times", healed)
	}
	if len(condemned) != 1 {
		t.Fatalf("condemnations = %d, want 1", len(condemned))
	}
	if condemned[0].Relapses != 4 {
		t.Fatalf("relapses = %d, want GiveUpAfter=4", condemned[0].Relapses)
	}
	if st, ok := m.LinkState(from, to); !ok || st != StateCondemned {
		t.Fatalf("state %v ok=%v, want condemned", st, ok)
	}
	// A condemned target is not re-animated by a later watch.
	m.WatchLink(from, to)
	env.Engine.Run()
	if healed != 0 || len(condemned) != 1 {
		t.Fatalf("re-watch changed outcome: healed=%d condemned=%d", healed, len(condemned))
	}
}

func TestFlappingLinkHealsAfterWindowCloses(t *testing.T) {
	env := testEnv(t)
	from, to, eid := nvlinkPair(t, env.Graph)
	var rev topology.EdgeID = -1
	if r, ok := env.Graph.EdgeBetween(to, from); ok {
		rev = r
	}
	down := func() {
		env.Fabric.SetScale(eid, 0)
		if rev >= 0 {
			env.Fabric.SetScale(rev, 0)
		}
	}
	up := func() {
		env.Fabric.SetScale(eid, 1)
		if rev >= 0 {
			env.Fabric.SetScale(rev, 1)
		}
	}
	down()
	// Restore for good at 4ms — the monitor should relapse while the link
	// is down, then promote after.
	env.Engine.After(4*time.Millisecond, up)
	var events []Event
	opts := tightOptions()
	opts.GiveUpAfter = 20
	m := New(env.Engine, env.Fabric, env.GPUs, opts, Hooks{
		OnHeal: func(ev Event) { events = append(events, ev) },
	})
	m.WatchLink(from, to)
	env.Engine.Run()
	if len(events) != 1 {
		t.Fatalf("heal events = %d, want 1", len(events))
	}
	if events[0].Relapses == 0 {
		t.Fatal("expected at least one relapse while the link was down")
	}
	if got := sim.Time(events[0].At); got < 4*time.Millisecond {
		t.Fatalf("healed at %v, before the link was restored", got)
	}
}

func TestQuarantineGrowsForRepeatOffenders(t *testing.T) {
	env := testEnv(t)
	m := New(env.Engine, env.Fabric, env.GPUs, Options{
		Quarantine:    time.Millisecond,
		BackoffFactor: 2,
		MaxQuarantine: 10 * time.Millisecond,
	}, Hooks{})
	if got := m.quarantineFor(0); got != time.Millisecond {
		t.Fatalf("quarantineFor(0) = %v", got)
	}
	if got := m.quarantineFor(2); got != 4*time.Millisecond {
		t.Fatalf("quarantineFor(2) = %v, want 4ms", got)
	}
	if got := m.quarantineFor(10); got != 10*time.Millisecond {
		t.Fatalf("quarantineFor(10) = %v, want the 10ms cap", got)
	}
}

func TestHoldParksPromotionsUntilRelease(t *testing.T) {
	env := testEnv(t)
	from, to, _ := nvlinkPair(t, env.Graph)
	healedAt := sim.Time(-1)
	m := New(env.Engine, env.Fabric, env.GPUs, tightOptions(), Hooks{
		OnHeal: func(ev Event) { healedAt = ev.At },
	})
	m.Hold()
	m.WatchLink(from, to)
	env.Engine.Run()
	if healedAt != -1 {
		t.Fatal("promotion fired while held")
	}
	if m.Watched() != 1 {
		t.Fatalf("watched = %d under hold, want 1", m.Watched())
	}
	m.Release()
	if healedAt < 0 {
		t.Fatal("promotion did not fire on release")
	}
	if m.Held() {
		t.Fatal("still held after release")
	}
}

func TestHungRankFailsKernelProbe(t *testing.T) {
	env := testEnv(t)
	const rank = 1
	// Device hangs until 3ms, links stay healthy: only the kernel probe
	// can detect this, and it must also stop failing once the hang ends.
	env.GPUs[rank].SetKernelStall(func(now sim.Time) time.Duration {
		if now < 3*time.Millisecond {
			return 3*time.Millisecond - now
		}
		return 0
	})
	var events []Event
	opts := tightOptions()
	opts.GiveUpAfter = 20
	m := New(env.Engine, env.Fabric, env.GPUs, opts, Hooks{
		OnHeal: func(ev Event) { events = append(events, ev) },
	})
	m.WatchRank(rank)
	env.Engine.Run()
	if len(events) != 1 {
		t.Fatalf("heal events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != KindRank || ev.Rank != rank {
		t.Fatalf("event = %+v, want rank %d", ev, rank)
	}
	if ev.Relapses == 0 {
		t.Fatal("expected relapses while the device hung")
	}
	if sim.Time(ev.At) < 3*time.Millisecond {
		t.Fatalf("healed at %v, before the hang ended", ev.At)
	}
}

func TestReclaimedBandwidthRetractsOnRefault(t *testing.T) {
	env := testEnv(t)
	from, to, _ := nvlinkPair(t, env.Graph)
	m := New(env.Engine, env.Fabric, env.GPUs, tightOptions(), Hooks{})
	m.WatchLink(from, to)
	env.Engine.Run()
	reclaimed := m.ReclaimedBandwidthBps()
	if reclaimed <= 0 {
		t.Fatal("nothing reclaimed after heal")
	}
	// The same pair faults again: its bandwidth is no longer reclaimed.
	m.WatchLink(from, to)
	if got := m.ReclaimedBandwidthBps(); got != 0 {
		t.Fatalf("reclaimed = %v after re-fault, want 0", got)
	}
	env.Engine.Run()
	if got := m.ReclaimedBandwidthBps(); got != reclaimed {
		t.Fatalf("reclaimed = %v after second heal, want %v", got, reclaimed)
	}
}

func TestProbeEdgesMeasuresOnlyNamedDirections(t *testing.T) {
	env := testEnv(t)
	_, _, eid := nvlinkPair(t, env.Graph)
	p := profile.New(env.Fabric, profile.Options{
		NVLinkCombos: []profile.Combo{{Count: 2, Size: 32 << 10}},
	})
	var got []profile.Measurement
	p.ProbeEdges([]topology.EdgeID{eid}, func(ms []profile.Measurement) { got = ms })
	env.Engine.Run()
	if len(got) != 1 {
		t.Fatalf("measurements = %d, want 1 (no mirroring)", len(got))
	}
	if got[0].Edge != eid {
		t.Fatalf("measured edge %d, want %d", got[0].Edge, eid)
	}
	if got[0].StreamBps <= 0 {
		t.Fatalf("StreamBps = %v", got[0].StreamBps)
	}
}

package collective

import (
	"math/rand"
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// TestRelaySubsetsNeverDeadlock is DESIGN.md invariant 5: for random
// active/relay splits on synthesised graphs, the executor always
// terminates and every active rank holds the sum over active ranks only.
func TestRelaySubsetsNeverDeadlock(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 1 << 20
	for trial := 0; trial < 12; trial++ {
		// Random split: at least 2 active, the rest relays.
		var active, relays []int
		activeSet := make(map[int]bool)
		for r := 0; r < 8; r++ {
			if rng.Float64() < 0.3 && len(relays) < 5 {
				relays = append(relays, r)
			} else {
				active = append(active, r)
				activeSet[r] = true
			}
		}
		if len(active) < 2 {
			active = append(active, relays[0])
			activeSet[relays[0]] = true
			relays = relays[1:]
		}

		e := newEnv(t, c)
		res, err := synth.Synthesize(e.costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes,
			Ranks: active, Relays: relays, Root: -1,
			M: 1 + rng.Intn(4),
		})
		if err != nil {
			t.Fatalf("trial %d (active=%v relays=%v): %v", trial, active, relays, err)
		}
		inputs := pattern(res.Strategy.Participants(), elemsOf(bytes))
		want := sumOfActive(inputs, activeSet, elemsOf(bytes))
		done := false
		var got Result
		err = e.ex.Run(Op{
			Strategy: res.Strategy, Inputs: inputs, Active: activeSet,
			OnDone: func(r Result) { got = r; done = true },
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e.eng.Run()
		if !done {
			t.Fatalf("trial %d deadlocked (active=%v relays=%v)", trial, active, relays)
		}
		for _, r := range active {
			out := got.Outputs[r]
			if out == nil {
				t.Fatalf("trial %d: active rank %d got no output", trial, r)
			}
			for i := 0; i < len(want); i += 97 {
				if !approxEqual(out[i], want[i]) {
					t.Fatalf("trial %d rank %d elem %d = %v, want %v", trial, r, i, out[i], want[i])
				}
			}
		}
	}
}

// TestPredictorExecutorConsistency is DESIGN.md invariant 3 across several
// topologies, primitives and strategies: the analytic Eq. 2–6 evaluation
// must track the event-driven executor within a modest band.
func TestPredictorExecutorConsistency(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*topology.Cluster, error)
		prim  strategy.Primitive
		m     int
	}{
		{"homo-2x4-allreduce", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportRDMA, 2, 4) }, strategy.AllReduce, 4},
		{"heter-4x2-allreduce", func() (*topology.Cluster, error) { return cluster.Heterogeneous(topology.TransportRDMA, 2) }, strategy.AllReduce, 4},
		{"heter-4x4-reduce", func() (*topology.Cluster, error) { return cluster.Heterogeneous(topology.TransportRDMA, 4) }, strategy.Reduce, 2},
		{"tcp-2x4-allreduce", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportTCP, 2, 4) }, strategy.AllReduce, 4},
		{"homo-4x2-alltoall", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportRDMA, 4, 2) }, strategy.AlltoAll, 2},
		{"homo-2x2-broadcast", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportRDMA, 2, 2) }, strategy.Broadcast, 2},
	}
	const bytes = 16 << 20
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			e := newEnv(t, c)
			root := -1
			if tc.prim == strategy.Reduce || tc.prim == strategy.Broadcast {
				root = 0
			}
			res, err := synth.Synthesize(e.costs, synth.Request{
				Primitive: tc.prim, Bytes: bytes, Root: root, M: tc.m,
			})
			if err != nil {
				t.Fatal(err)
			}
			inputs := pattern(res.Strategy.Participants(), elemsOf(bytes))
			var got Result
			if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
				t.Fatal(err)
			}
			e.eng.Run()
			ratio := float64(got.Elapsed) / float64(res.Eval.Time)
			t.Logf("%s: predicted %v, measured %v (ratio %.2f)", tc.name, res.Eval.Time, got.Elapsed, ratio)
			if ratio < 0.6 || ratio > 1.6 {
				t.Errorf("predictor and executor diverge: ratio %.2f", ratio)
			}
		})
	}
}

package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/device"
	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// env bundles an executor over a cluster.
type env struct {
	eng   *sim.Engine
	fab   *fabric.Fabric
	ex    *Executor
	costs *synth.Costs
	c     *topology.Cluster
}

func newEnv(t *testing.T, c *topology.Cluster) *env {
	t.Helper()
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(11)
	fab := fabric.New(eng, g)
	gpus := make(map[int]*device.GPU)
	for _, id := range g.GPUs() {
		n := g.Node(id)
		model, err := c.ModelOfRank(n.Rank)
		if err != nil {
			t.Fatal(err)
		}
		gpus[n.Rank] = device.New(eng, model, n.Rank)
	}
	return &env{eng: eng, fab: fab, ex: NewExecutor(fab, gpus), costs: synth.NewCosts(g, nil), c: c}
}

func testbedEnv(t *testing.T) *env {
	t.Helper()
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	return newEnv(t, c)
}

// pattern fills deterministic per-rank inputs.
func pattern(ranks []int, elems int) map[int][]float32 {
	in := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		v := make([]float32, elems)
		for i := range v {
			v[i] = float32(r+1) + float32(i%13)*0.5
		}
		in[r] = v
	}
	return in
}

func ranksOf(c *topology.Cluster) []int {
	out := make([]int, c.NumGPUs())
	for i := range out {
		out[i] = i
	}
	return out
}

func approxEqual(a, b float32) bool {
	diff := float64(a - b)
	return math.Abs(diff) < 1e-3
}

func sumOfActive(inputs map[int][]float32, active map[int]bool, elems int) []float32 {
	sum := make([]float32, elems)
	for r, v := range inputs {
		if active != nil && !active[r] {
			continue
		}
		for i := range v {
			sum[i] += v[i]
		}
	}
	return sum
}

func TestAllReduceCorrectness(t *testing.T) {
	e := testbedEnv(t)
	ranks := ranksOf(e.c)
	const bytes = 8 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern(ranks, elemsOf(bytes))
	want := sumOfActive(inputs, nil, elemsOf(bytes))

	var got Result
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if got.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	for _, r := range ranks {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("rank %d got no output", r)
		}
		for i := range want {
			if !approxEqual(out[i], want[i]) {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
}

func TestReduceRootHoldsSum(t *testing.T) {
	e := testbedEnv(t)
	ranks := ranksOf(e.c)
	const bytes = 4 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.Reduce, Bytes: bytes, Ranks: ranks, Root: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern(ranks, elemsOf(bytes))
	want := sumOfActive(inputs, nil, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	out := got.Outputs[0]
	if out == nil {
		t.Fatal("root got no output")
	}
	for i := range want {
		if !approxEqual(out[i], want[i]) {
			t.Fatalf("elem %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestBroadcastDeliversRootTensor(t *testing.T) {
	e := testbedEnv(t)
	ranks := ranksOf(e.c)
	const bytes = 4 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.Broadcast, Bytes: bytes, Ranks: ranks, Root: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern(ranks, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	want := inputs[3]
	for _, r := range ranks {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("rank %d got no output", r)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
}

func TestAlltoAllExchange(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, c)
	ranks := ranksOf(c)
	const bytes = 4 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AlltoAll, Bytes: bytes, Ranks: ranks,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern(ranks, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()

	spans, err := partitionSpans(res.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ranks)
	for _, recv := range ranks {
		out := got.Outputs[recv]
		if out == nil {
			t.Fatalf("rank %d got no output", recv)
		}
		for m := range spans {
			for _, send := range ranks {
				// Receiver slot `send` holds sender's slot `recv`.
				dst := equalBlock(spans[m], n, send)
				src := equalBlock(spans[m], n, recv)
				for k := 0; k < dst.Len(); k++ {
					want := inputs[send][src.Start+k]
					if out[dst.Start+k] != want {
						t.Fatalf("recv %d sub %d slot %d elem %d = %v, want %v",
							recv, m, send, k, out[dst.Start+k], want)
					}
				}
			}
			// The undivided tail stays local.
			tail := alltoallTail(spans[m], n)
			for k := tail.Start; k < tail.End; k++ {
				if out[k] != inputs[recv][k] {
					t.Fatalf("recv %d tail elem %d = %v, want local %v", recv, k, out[k], inputs[recv][k])
				}
			}
		}
	}
}

func TestAllReduceWithRelays(t *testing.T) {
	e := testbedEnv(t)
	// Ranks 5 and 13 are stragglers: active everywhere else; relays
	// assist. Every active rank must end with the sum over ACTIVE ranks
	// only (phase 2 catches the stragglers up later).
	all := ranksOf(e.c)
	active := make(map[int]bool)
	var ready []int
	for _, r := range all {
		if r == 5 || r == 13 {
			continue
		}
		active[r] = true
		ready = append(ready, r)
	}
	const bytes = 8 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytes,
		Ranks: ready, Relays: []int{5, 13}, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern(all, elemsOf(bytes))
	want := sumOfActive(inputs, active, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, Active: active, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	for _, r := range ready {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("active rank %d got no output", r)
		}
		for i := range want {
			if !approxEqual(out[i], want[i]) {
				t.Fatalf("rank %d elem %d = %v, want %v (sum over active only)", r, i, out[i], want[i])
			}
		}
	}
}

func TestAllReduceRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		servers := 1 + rng.Intn(3)
		gpus := 1 + rng.Intn(3)
		if servers*gpus < 2 {
			gpus = 2
		}
		var c *topology.Cluster
		var err error
		if trial%2 == 0 {
			c, err = cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
		} else {
			c, err = cluster.Heterogeneous(topology.TransportTCP, gpus)
		}
		if err != nil {
			t.Fatal(err)
		}
		e := newEnv(t, c)
		ranks := ranksOf(c)
		bytes := int64((1 + rng.Intn(64)) * 64 * 1024)
		res, err := synth.Synthesize(e.costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
			M: 1 + rng.Intn(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		inputs := pattern(ranks, elemsOf(bytes))
		want := sumOfActive(inputs, nil, elemsOf(bytes))
		var got Result
		if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
			t.Fatal(err)
		}
		e.eng.Run()
		for _, r := range ranks {
			out := got.Outputs[r]
			if out == nil {
				t.Fatalf("trial %d: rank %d got no output", trial, r)
			}
			for i := range want {
				if !approxEqual(out[i], want[i]) {
					t.Fatalf("trial %d: rank %d elem %d = %v, want %v", trial, r, i, out[i], want[i])
				}
			}
		}
	}
}

// TestTimingMatchesPredictor cross-validates the event-driven executor
// against the analytic Eq. 2–6 evaluator on a contention-free single-flow
// strategy (DESIGN.md invariant 3).
func TestTimingMatchesPredictor(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, c)
	g := e.fab.Graph()
	a, _ := g.GPUByRank(1)
	b, _ := g.GPUByRank(0)
	const bytes = 64 << 20
	st := &strategy.Strategy{
		Primitive:  strategy.Reduce,
		TotalBytes: bytes,
		SubCollectives: []strategy.SubCollective{{
			ID: 0, Bytes: bytes, ChunkBytes: 4 << 20, Root: 0,
			Flows: []strategy.Flow{{ID: 0, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{a, b}}},
		}},
	}
	ev, err := synth.Evaluate(e.costs, st)
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern([]int{0, 1}, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{Strategy: st, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	// The executor additionally charges kernel launches and per-hop α
	// sequencing; allow 25% tolerance.
	ratio := float64(got.Elapsed) / float64(ev.Time)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("executor %v vs predicted %v (ratio %.2f)", got.Elapsed, ev.Time, ratio)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (time.Duration, float32) {
		c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
		if err != nil {
			t.Fatal(err)
		}
		e := newEnv(t, c)
		ranks := ranksOf(c)
		const bytes = 2 << 20
		res, err := synth.Synthesize(e.costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		inputs := pattern(ranks, elemsOf(bytes))
		var got Result
		if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
			t.Fatal(err)
		}
		e.eng.Run()
		return got.Elapsed, got.Outputs[0][0]
	}
	e1, v1 := run()
	e2, v2 := run()
	if e1 != e2 || v1 != v2 {
		t.Fatalf("non-deterministic execution: (%v,%v) vs (%v,%v)", e1, v1, e2, v2)
	}
}

func TestRunValidation(t *testing.T) {
	e := testbedEnv(t)
	if err := e.ex.Run(Op{}); err == nil {
		t.Error("nil strategy accepted")
	}
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: 1 << 20, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Missing inputs.
	if err := e.ex.Run(Op{Strategy: res.Strategy}); err == nil {
		t.Error("missing inputs accepted")
	}
	// Wrong length.
	bad := map[int][]float32{}
	for _, r := range res.Strategy.Participants() {
		bad[r] = make([]float32, 7)
	}
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: bad}); err == nil {
		t.Error("short inputs accepted")
	}
	// All inactive.
	inputs := pattern(res.Strategy.Participants(), elemsOf(1<<20))
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, Active: map[int]bool{}}); err == nil {
		t.Error("empty active set accepted")
	}
}

func TestAlgoBandwidth(t *testing.T) {
	if got := AlgoBandwidthBps(1<<30, time.Second); got != float64(1<<30) {
		t.Errorf("AlgoBandwidthBps = %v", got)
	}
	if got := AlgoBandwidthBps(1, 0); got != 0 {
		t.Errorf("zero elapsed should give 0, got %v", got)
	}
}

func TestLayoutHelpers(t *testing.T) {
	p := span{Start: 100, End: 200}
	// Equal blocks of 100/3 = 33 with 1 tail element.
	for i := 0; i < 3; i++ {
		b := equalBlock(p, 3, i)
		if b.Len() != 33 {
			t.Errorf("block %d len = %d, want 33", i, b.Len())
		}
		if b.Start != 100+33*i {
			t.Errorf("block %d start = %d", i, b.Start)
		}
	}
	tail := alltoallTail(p, 3)
	if tail.Start != 199 || tail.End != 200 {
		t.Errorf("tail = %+v, want [199,200)", tail)
	}
	chunks := chunkSpans(span{Start: 0, End: 10}, 4)
	if len(chunks) != 3 || chunks[2].Len() != 2 {
		t.Errorf("chunkSpans = %+v", chunks)
	}
	if got := chunkSpans(span{}, 4); got != nil {
		t.Errorf("empty span chunks = %v", got)
	}
}

// Property: chunkSpans covers a span exactly, in order, without overlap.
func TestChunkSpansProperty(t *testing.T) {
	f := func(startRaw, lenRaw, chunkRaw uint16) bool {
		start := int(startRaw % 1000)
		length := int(lenRaw % 5000)
		chunk := int(chunkRaw%257) + 1
		s := span{Start: start, End: start + length}
		chunks := chunkSpans(s, chunk)
		pos := s.Start
		for _, c := range chunks {
			if c.Start != pos || c.Len() <= 0 || c.Len() > chunk {
				return false
			}
			pos = c.End
		}
		return pos == s.End
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: equalBlock slots are disjoint, in order, equal length, and with
// the tail they cover the partition exactly.
func TestEqualBlockProperty(t *testing.T) {
	f := func(lenRaw uint16, partsRaw uint8) bool {
		length := int(lenRaw % 4000)
		parts := int(partsRaw%23) + 1
		s := span{Start: 100, End: 100 + length}
		pos := s.Start
		for i := 0; i < parts; i++ {
			blk := equalBlock(s, parts, i)
			if blk.Start != pos || blk.Len() != length/parts {
				return false
			}
			pos = blk.End
		}
		tail := alltoallTail(s, parts)
		return tail.Start == pos && tail.End == s.End && tail.Len() < parts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteXMLParsedStrategy exercises the paper's full pipeline: the
// synthesizer emits the strategy as XML, the Communicator parses it back
// and executes it — results must be identical to executing the original.
func TestExecuteXMLParsedStrategy(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 4 << 20
	run := func(viaXML bool) (Result, time.Duration) {
		e := newEnv(t, c)
		res, err := synth.Synthesize(e.costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Strategy
		if viaXML {
			data, err := st.MarshalXMLBytes()
			if err != nil {
				t.Fatal(err)
			}
			st, err = strategy.ParseXML(data)
			if err != nil {
				t.Fatal(err)
			}
		}
		inputs := pattern(st.Participants(), elemsOf(bytes))
		var got Result
		if err := e.ex.Run(Op{Strategy: st, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
			t.Fatal(err)
		}
		e.eng.Run()
		return got, got.Elapsed
	}
	direct, dt := run(false)
	parsed, pt := run(true)
	if dt != pt {
		t.Fatalf("XML round trip changed timing: %v vs %v", dt, pt)
	}
	for r, out := range direct.Outputs {
		po := parsed.Outputs[r]
		if po == nil {
			t.Fatalf("rank %d missing after XML round trip", r)
		}
		for i := 0; i < len(out); i += 131 {
			if out[i] != po[i] {
				t.Fatalf("rank %d elem %d differs after XML round trip", r, i)
			}
		}
	}
}

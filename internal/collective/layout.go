// Package collective implements AdapCC's Communicator (paper Sec. V): it
// executes synthesised strategies on the simulated fabric, moving real
// float32 tensors chunk-by-chunk with per-sub-collective transmission
// contexts, one device stream per context (multi-stream parallelism),
// pipelined chunk transmission, aggregation kernels where flows terminate,
// relay behaviour driven by the <isActive,hasRecv,hasKernel,hasSend>
// tuples, and reduce‖broadcast stage pipelining for AllReduce.
package collective

import (
	"fmt"

	"adapcc/internal/strategy"
)

// elemsOf converts a byte count to float32 elements (rounding down).
func elemsOf(bytes int64) int { return int(bytes / 4) }

// span is a half-open element range [Start, End).
type span struct {
	Start, End int
}

func (s span) Len() int { return s.End - s.Start }

// partitionSpans returns each sub-collective's element range within the
// tensor. Partition byte sizes are float32-aligned by the synthesizer
// except possibly the last, whose stray bytes are dropped (tensors are
// whole float32s).
func partitionSpans(s *strategy.Strategy) ([]span, error) {
	total := elemsOf(s.TotalBytes)
	spans := make([]span, len(s.SubCollectives))
	off := 0
	for i := range s.SubCollectives {
		n := elemsOf(s.SubCollectives[i].Bytes)
		if i == len(s.SubCollectives)-1 {
			n = total - off
		}
		if n < 0 || off+n > total {
			return nil, fmt.Errorf("collective: partition %d overflows tensor (%d+%d of %d elems)", i, off, n, total)
		}
		spans[i] = span{Start: off, End: off + n}
		off += n
	}
	if off != total {
		return nil, fmt.Errorf("collective: partitions cover %d of %d elems", off, total)
	}
	return spans, nil
}

// equalBlock splits a partition span into `participants` equal blocks of
// floor(len/participants) elements and returns the idx-th. The tail that
// does not divide evenly (fewer than `participants` elements) is not part
// of any block; AlltoAll keeps it local (see alltoallTail).
func equalBlock(p span, participants, idx int) span {
	base := p.Len() / participants
	start := p.Start + idx*base
	return span{Start: start, End: start + base}
}

// alltoallTail is the partition suffix not covered by equal blocks.
func alltoallTail(p span, participants int) span {
	base := p.Len() / participants
	return span{Start: p.Start + participants*base, End: p.End}
}

// chunkSpans slices a span into pipeline chunks of at most chunkElems.
func chunkSpans(s span, chunkElems int) []span {
	if chunkElems <= 0 {
		chunkElems = s.Len()
	}
	if s.Len() == 0 {
		return nil
	}
	var out []span
	for start := s.Start; start < s.End; start += chunkElems {
		end := start + chunkElems
		if end > s.End {
			end = s.End
		}
		out = append(out, span{Start: start, End: end})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

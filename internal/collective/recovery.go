package collective

import (
	"fmt"
	"time"

	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// Recovery defaults. The deadline multiple is deliberately loose: a chunk's
// modelled time assumes an uncontended link at nominal bandwidth, and a
// healthy transfer can legitimately run several times slower when many
// streams share the edge. The floor keeps tiny chunks from racing their own
// launch latency.
const (
	DefaultDeadlineMult  = 16.0
	DefaultDeadlineFloor = 2 * time.Millisecond
	DefaultMaxRetries    = 4
	DefaultRetryBackoff  = 500 * time.Microsecond
	DefaultStallTimeout  = 250 * time.Millisecond
)

// Recovery configures chunk-granularity fault detection for one collective
// (Op.Recovery). When set, every chunk transfer is guarded by a deadline
// with bounded exponential-backoff retransmission, and the whole op by a
// progress watchdog that catches hung kernels/workers; exhausting either
// budget declares a fault via OnFault instead of hanging. Nil (the default)
// disables all of it at the cost of two pointer comparisons per chunk hop.
type Recovery struct {
	// DeadlineMult scales a chunk's nominal transfer time (α + bytes at
	// nominal bandwidth) into its delivery deadline (default 16; the
	// deadline doubles on every retry of the same chunk).
	DeadlineMult float64
	// DeadlineFloor is the minimum per-chunk deadline (default 2 ms).
	DeadlineFloor time.Duration
	// MaxRetries bounds retransmissions per chunk hop (default 4); the
	// retry after which the hop's link is declared faulted.
	MaxRetries int
	// Backoff is the first retransmission delay, doubling per retry
	// (default 500 µs).
	Backoff time.Duration
	// StallTimeout is the op-level progress deadline: if no chunk arrives,
	// no retry fires and no kernel retires for this long, the op declares
	// a stall fault (default 250 ms; 0 keeps the chunk deadlines only).
	StallTimeout time.Duration
	// OnFault receives the first (and only) fault declaration of the op.
	// The op is dead afterwards: its OnDone never fires, and the caller —
	// typically core.RunResilient — excludes the reported link or rank
	// and re-synthesizes over the surviving topology.
	OnFault func(FaultReport)
}

// normalized returns a copy with defaults applied.
func (r Recovery) normalized() Recovery {
	if r.DeadlineMult <= 0 {
		r.DeadlineMult = DefaultDeadlineMult
	}
	if r.DeadlineFloor <= 0 {
		r.DeadlineFloor = DefaultDeadlineFloor
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = DefaultMaxRetries
	}
	if r.Backoff <= 0 {
		r.Backoff = DefaultRetryBackoff
	}
	return r
}

// FaultKind classifies a fault declaration.
type FaultKind int

const (
	// LinkFault: a chunk exhausted its retransmission budget on one edge.
	LinkFault FaultKind = iota
	// StallFault: the op made no progress for StallTimeout (hung kernel,
	// crashed worker with nothing left in flight).
	StallFault
)

func (k FaultKind) String() string {
	if k == LinkFault {
		return "link"
	}
	return "stall"
}

// FaultReport describes an unrecoverable fault detected mid-collective.
type FaultReport struct {
	Kind FaultKind
	// Edge and its endpoints, for LinkFault (Edge is -1 for StallFault).
	Edge     topology.EdgeID
	From, To topology.NodeID
	// Rank is the implicated worker for StallFault (the rank with a hung
	// aggregation kernel), or -1 when no single rank can be blamed.
	Rank int
	// Retries is how many retransmissions were spent before declaring.
	Retries int
	// At is the absolute virtual time of the declaration; At-Started is
	// the detection latency.
	At      time.Duration
	Started time.Duration
}

func (r FaultReport) String() string {
	if r.Kind == LinkFault {
		return fmt.Sprintf("link fault on edge %d (%v->%v) after %d retries at %v",
			r.Edge, r.From, r.To, r.Retries, r.At)
	}
	return fmt.Sprintf("stall fault (rank %d) at %v", r.Rank, r.At)
}

// RecoveryStats counts detection and retry activity across an executor's
// lifetime (all ops).
type RecoveryStats struct {
	// Deadlines is how many chunk transfers were aborted by their deadline.
	Deadlines int
	// Retransmits is how many aborted chunks were re-posted.
	Retransmits int
	// LinkFaults / StallFaults are the fault declarations by kind.
	LinkFaults  int
	StallFaults int
}

// RecoveryStats returns the executor's accumulated detection/retry counters.
func (e *Executor) RecoveryStats() RecoveryStats { return e.stats }

// armDeadline schedules this hop's delivery deadline: the chunk's nominal
// uncontended time scaled by DeadlineMult, floored, and doubled per retry
// already spent.
func (h *hopSend) armDeadline() {
	op := h.s.op
	rec := op.rec
	e := op.ex.fab.Graph().Edge(h.eid)
	nominal := e.Alpha + time.Duration(float64(h.bytes)/e.BandwidthBps*1e9)
	d := time.Duration(rec.DeadlineMult * float64(nominal))
	if d < rec.DeadlineFloor {
		d = rec.DeadlineFloor
	}
	if n := h.retries; n > 0 {
		if n > 16 {
			n = 16
		}
		d <<= uint(n)
	}
	h.watchdog = op.engine().After(d, h.onDeadline)
}

// onDeadline fires when a chunk missed its delivery deadline: withdraw it
// from the link and either retransmit (bounded, exponential backoff) or
// declare the link faulted. If the withdrawal fails the chunk was actually
// delivered — its arrival callback is pending behind the link latency — and
// the deadline stands down; OnArrive still owns this struct.
func (h *hopSend) onDeadline() {
	h.watchdog = nil
	op := h.s.op
	if !op.ex.fab.Abort(h.transfer, h.tgen) {
		return
	}
	h.transfer, h.tgen = nil, 0
	op.ex.stats.Deadlines++
	op.stats.Deadlines++
	if em := op.ex.em; em != nil {
		em.deadlines.Inc(op.engine().Now())
	}
	if op.failed {
		op.ex.putHop(h)
		return
	}
	rec := op.rec
	if h.retries >= rec.MaxRetries {
		e := op.ex.fab.Graph().Edge(h.eid)
		rep := FaultReport{
			Kind:    LinkFault,
			Edge:    h.eid,
			From:    e.From,
			To:      e.To,
			Rank:    -1,
			Retries: h.retries,
			At:      op.engine().Now(),
			Started: op.started,
		}
		h.s.traceFault(h.msg, h.eid)
		op.ex.stats.LinkFaults++
		op.ex.putHop(h)
		op.fail(rep)
		return
	}
	h.retries++
	op.ex.stats.Retransmits++
	op.stats.Retransmits++
	if em := op.ex.em; em != nil {
		em.retransmits.Inc(op.engine().Now())
	}
	op.progress()
	h.s.traceRetry(h.msg, h.eid, h.retries)
	backoff := rec.Backoff << uint(h.retries-1)
	op.engine().DoCallAfter(backoff, h)
}

// progress stamps op-level liveness for the stall watchdog.
func (r *opRun) progress() {
	r.lastProgress = r.engine().Now()
}

// fail declares the op's single fault: it never completes (OnDone does not
// fire) and every still-pending callback of the run becomes a no-op. The
// arena is deliberately NOT released — aggregation kernels already queued on
// device streams will still retire (harmlessly, guarded) and read their
// scratch buffers; releasing those buffers to the next attempt's op would
// corrupt it. One dead run's scratch is the (bounded) price of a fault.
func (r *opRun) fail(rep FaultReport) {
	if r.failed || r.finished {
		return
	}
	r.failed = true
	if reg := r.ex.reg; reg != nil {
		// Cold path: faults are rare, so the per-kind counter is resolved
		// on demand rather than pre-bound.
		reg.Counter("adapcc_collective_faults_total",
			"fault declarations by kind", "kind", rep.Kind.String()).
			Inc(r.engine().Now())
	}
	if r.rec.OnFault != nil {
		r.rec.OnFault(rep)
	}
}

// progressWatch is the op-level stall watchdog: it re-arms itself against
// the latest progress stamp and declares a StallFault when the op has been
// idle for StallTimeout — the case chunk deadlines cannot see, e.g. a hung
// aggregation kernel with nothing left in flight.
type progressWatch struct{ op *opRun }

func (w *progressWatch) Call() {
	op := w.op
	if op.failed || op.finished {
		return
	}
	rec := op.rec
	idle := op.engine().Now() - op.lastProgress
	if idle < rec.StallTimeout {
		op.engine().DoCallAfter(rec.StallTimeout-idle, w)
		return
	}
	op.ex.stats.StallFaults++
	op.fail(FaultReport{
		Kind:    StallFault,
		Edge:    -1,
		Rank:    op.culprit(),
		At:      op.engine().Now(),
		Started: op.started,
	})
}

// culprit names the rank responsible for a stall: first a rank with an
// aggregation kernel launched but not retired (a hung device), else -1
// (unattributable — e.g. every in-flight path is parked, which the chunk
// deadlines will catch on their own schedule).
func (r *opRun) culprit() int {
	best := -1
	for rank, n := range r.pendingKernels {
		if n > 0 && (best == -1 || rank < best) {
			best = rank
		}
	}
	return best
}

// traceRetry records a chunk retransmission as an instant on the link track.
func (s *subRun) traceRetry(msg chunkMsg, eid topology.EdgeID, attempt int) {
	tr := s.op.ex.tracer
	if tr == nil {
		return
	}
	tr.Add(trace.Event{
		Name:  fmt.Sprintf("retry s%d f%d c%d #%d", s.idx, msg.flowIdx, msg.chunk, attempt),
		Cat:   "recovery",
		PID:   NetPID,
		TID:   int(eid),
		Start: s.op.engine().Now(),
		Phase: trace.Instant,
	})
}

// traceFault records a fault declaration as an instant on the link track.
func (s *subRun) traceFault(msg chunkMsg, eid topology.EdgeID) {
	tr := s.op.ex.tracer
	if tr == nil {
		return
	}
	tr.Add(trace.Event{
		Name:  fmt.Sprintf("FAULT s%d f%d c%d", s.idx, msg.flowIdx, msg.chunk),
		Cat:   "recovery",
		PID:   NetPID,
		TID:   int(eid),
		Start: s.op.engine().Now(),
		Phase: trace.Instant,
	})
}

package collective_test

import (
	"math"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// TestSmallTensorSweep drives the latency-bound regime end to end: tensors
// from one float32 element (4 B) to 64 KiB synthesised and executed as
// dense AllReduces, asserting the synthesizer emits no zero-byte
// sub-collectives and every rank ends with the true element-wise sum.
func TestSmallTensorSweep(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for bytes := int64(4); bytes <= 64<<10; bytes *= 4 {
		env, err := backend.NewEnv(c, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		})
		if err != nil {
			t.Fatalf("bytes=%d: synthesize: %v", bytes, err)
		}
		for i, sc := range res.Strategy.SubCollectives {
			if sc.Bytes <= 0 {
				t.Fatalf("bytes=%d: sub-collective %d is empty (%d bytes)", bytes, i, sc.Bytes)
			}
		}

		ranks := env.AllRanks()
		inputs := backend.MakeInputs(ranks, bytes)
		want := make([]float32, bytes/4)
		for _, in := range inputs {
			for i, v := range in {
				want[i] += v
			}
		}

		var done collective.Result
		err = env.Exec.Run(collective.Op{
			Strategy: res.Strategy,
			Inputs:   inputs,
			OnDone:   func(r collective.Result) { done = r },
		})
		if err != nil {
			t.Fatalf("bytes=%d: run: %v", bytes, err)
		}
		env.Engine.Run()
		if done.Outputs == nil {
			t.Fatalf("bytes=%d: collective never finished", bytes)
		}
		if done.Elapsed <= 0 {
			t.Errorf("bytes=%d: non-positive elapsed %v", bytes, done.Elapsed)
		}
		for _, r := range ranks {
			out, ok := done.Outputs[r]
			if !ok {
				t.Fatalf("bytes=%d: rank %d has no output", bytes, r)
			}
			if len(out) != len(want) {
				t.Fatalf("bytes=%d: rank %d output has %d elems, want %d", bytes, r, len(out), len(want))
			}
			for i := range out {
				if math.Abs(float64(out[i]-want[i])) > 1e-3 {
					t.Fatalf("bytes=%d: rank %d elem %d = %v, want %v", bytes, r, i, out[i], want[i])
				}
			}
		}
	}
}

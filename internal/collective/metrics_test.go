package collective_test

import (
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/metrics"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// TestMetricsCoverCollective runs an AllReduce with a registry installed
// across the environment and checks that every layer recorded: fabric link
// counters, GPU kernel instruments, executor chunk-hop instruments — and
// that the registry's figures reconcile with the run's StatsReport.
func TestMetricsCoverCollective(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	env.SetMetrics(reg)

	const bytesTotal = 8 << 20
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytesTotal, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done collective.Result
	err = env.Exec.Run(collective.Op{
		Strategy: res.Strategy,
		Inputs:   backend.MakeInputs(env.AllRanks(), bytesTotal),
		OnDone:   func(r collective.Result) { done = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if done.Outputs == nil {
		t.Fatal("collective never finished")
	}

	st := done.Stats
	if st.ChunksDelivered <= 0 || st.ChunkHops < st.ChunksDelivered {
		t.Errorf("stats: ChunksDelivered=%d ChunkHops=%d", st.ChunksDelivered, st.ChunkHops)
	}
	if st.BytesOnWire <= 0 || st.Kernels <= 0 {
		t.Errorf("stats: BytesOnWire=%d Kernels=%d", st.BytesOnWire, st.Kernels)
	}
	if st.Elapsed != done.Elapsed {
		t.Errorf("stats elapsed %v != result elapsed %v", st.Elapsed, done.Elapsed)
	}
	if st.Deadlines != 0 || st.Retransmits != 0 {
		t.Errorf("fault-free run counted Deadlines=%d Retransmits=%d", st.Deadlines, st.Retransmits)
	}

	snap := reg.Snapshot()
	mustFamily := func(name string) metrics.FamilySnap {
		t.Helper()
		f, ok := snap.Family(name)
		if !ok {
			t.Fatalf("family %s missing from snapshot", name)
		}
		return f
	}

	// Fabric: bytes on links reconcile with the executor's wire count.
	linkBytes := mustFamily("adapcc_link_bytes_total")
	if got := int64(linkBytes.Total()); got != st.BytesOnWire {
		t.Errorf("link bytes %d != stats BytesOnWire %d", got, st.BytesOnWire)
	}
	mustFamily("adapcc_link_wait_seconds")
	mustFamily("adapcc_link_utilization")
	mustFamily("adapcc_link_queue_depth")

	// Device: kernel launches cover at least the aggregation kernels.
	gpuKernels := mustFamily("adapcc_gpu_kernels_total")
	if got := int(gpuKernels.Total()); got < st.Kernels {
		t.Errorf("gpu kernels %d < stats Kernels %d", got, st.Kernels)
	}
	mustFamily("adapcc_gpu_kernel_seconds")

	// Executor: hop count and latency observations match the stats.
	hops := mustFamily("adapcc_chunk_hops_total")
	if got := int(hops.Total()); got != st.ChunkHops {
		t.Errorf("chunk hops metric %d != stats ChunkHops %d", got, st.ChunkHops)
	}
	hopLat := mustFamily("adapcc_chunk_hop_seconds")
	if got := hopLat.Series[0].Count; got != uint64(st.ChunkHops) {
		t.Errorf("hop latency observations %d != ChunkHops %d", got, st.ChunkHops)
	}
	if cols := mustFamily("adapcc_collectives_total").Total(); cols != 1 {
		t.Errorf("collectives counter = %v, want 1", cols)
	}

	// Per-flow progress totals the end-to-end deliveries, which is at
	// least one per completion event (multi-hop flows deliver once).
	flow := mustFamily("adapcc_flow_chunks_total")
	if got := int(flow.Total()); got < st.ChunksDelivered {
		t.Errorf("flow chunk deliveries %d < ChunksDelivered %d", got, st.ChunksDelivered)
	}

	// Virtual timestamps: no sample stamped after completion.
	maxMillis := metrics.VirtualMillisOf(env.Engine.Now())
	for _, f := range snap.Families {
		for _, s := range f.Series {
			if s.VirtualMillis < 0 || s.VirtualMillis > maxMillis {
				t.Errorf("%s stamped at %dms outside [0, %d]", f.Name, s.VirtualMillis, maxMillis)
			}
		}
	}
}

// TestStatsReportWithoutMetrics checks the per-collective StatsReport is
// populated with no registry installed (plain counters, no instruments).
func TestStatsReportWithoutMetrics(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	const bytesTotal = 1 << 20
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytesTotal, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done collective.Result
	err = env.Exec.Run(collective.Op{
		Strategy: res.Strategy,
		Inputs:   backend.MakeInputs(env.AllRanks(), bytesTotal),
		OnDone:   func(r collective.Result) { done = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if done.Outputs == nil {
		t.Fatal("collective never finished")
	}
	if done.Stats.ChunksDelivered <= 0 || done.Stats.BytesOnWire <= 0 {
		t.Errorf("StatsReport empty without metrics: %+v", done.Stats)
	}
}

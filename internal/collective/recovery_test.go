package collective

import (
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/device"
	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// recoveryEnv is env plus the GPU map (for kernel-stall injection).
type recoveryEnv struct {
	*env
	gpus map[int]*device.GPU
}

func testbedRecoveryEnv(t *testing.T) *recoveryEnv {
	t.Helper()
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(11)
	fab := fabric.New(eng, g)
	gpus := make(map[int]*device.GPU)
	for _, id := range g.GPUs() {
		n := g.Node(id)
		model, err := c.ModelOfRank(n.Rank)
		if err != nil {
			t.Fatal(err)
		}
		gpus[n.Rank] = device.New(eng, model, n.Rank)
	}
	return &recoveryEnv{
		env:  &env{eng: eng, fab: fab, ex: NewExecutor(fab, gpus), costs: synth.NewCosts(g, nil), c: c},
		gpus: gpus,
	}
}

// tightRecovery is a Recovery tuned so faults are detected within a few
// milliseconds of virtual time (test speed, not realism).
func tightRecovery() *Recovery {
	return &Recovery{
		DeadlineMult:  2,
		DeadlineFloor: 200 * time.Microsecond,
		MaxRetries:    8,
		Backoff:       100 * time.Microsecond,
		StallTimeout:  time.Second,
	}
}

// TestRetransmitThroughTransientStall: every link goes dark mid-collective
// and comes back; chunk deadlines must abort the stalled transfers and the
// retransmissions must carry the op to a correct completion — no fault, no
// hang, right sums.
func TestRetransmitThroughTransientStall(t *testing.T) {
	e := testbedRecoveryEnv(t)
	ranks := ranksOf(e.c)
	const bytes = 4 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dark window: 1 ms → 4 ms on every edge.
	g := e.fab.Graph()
	e.eng.At(time.Millisecond, func() {
		for i := 0; i < g.NumEdges(); i++ {
			e.fab.SetScale(topology.EdgeID(i), 0)
		}
	})
	e.eng.At(4*time.Millisecond, func() {
		for i := 0; i < g.NumEdges(); i++ {
			e.fab.SetScale(topology.EdgeID(i), 1)
		}
	})

	rec := tightRecovery()
	rec.OnFault = func(rep FaultReport) { t.Errorf("unexpected fault: %v", rep) }
	inputs := pattern(ranks, elemsOf(bytes))
	want := sumOfActive(inputs, nil, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{
		Strategy: res.Strategy, Inputs: inputs, Recovery: rec,
		OnDone: func(r Result) { got = r },
	}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if got.Elapsed <= 0 {
		t.Fatal("collective never completed")
	}
	for _, r := range ranks {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("rank %d got no output", r)
		}
		for i := 0; i < len(out); i += 997 {
			if !approxEqual(out[i], want[i]) {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
	stats := e.ex.RecoveryStats()
	if stats.Deadlines == 0 {
		t.Error("no chunk deadline fired through a 3 ms dark window")
	}
	if stats.Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
	if stats.LinkFaults != 0 || stats.StallFaults != 0 {
		t.Errorf("spurious faults: %+v", stats)
	}
}

// TestPermanentLinkDownDeclaresFault: one strategy edge dies for good; the
// retry budget must exhaust and declare a LinkFault naming a dead edge —
// and the engine must drain rather than hang.
func TestPermanentLinkDownDeclaresFault(t *testing.T) {
	e := testbedRecoveryEnv(t)
	ranks := ranksOf(e.c)
	const bytes = 4 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the first hop of the first flow, both directions, from t=0.
	g := e.fab.Graph()
	path := res.Strategy.SubCollectives[0].Flows[0].Path
	fwd, ok := g.EdgeBetween(path[0], path[1])
	if !ok {
		t.Fatal("strategy hop has no edge")
	}
	dead := map[topology.EdgeID]bool{fwd: true}
	e.fab.SetScale(fwd, 0)
	if rev, ok := g.EdgeBetween(path[1], path[0]); ok {
		e.fab.SetScale(rev, 0)
		dead[rev] = true
	}

	rec := tightRecovery()
	var fault *FaultReport
	rec.OnFault = func(rep FaultReport) {
		if fault != nil {
			t.Errorf("second fault declared: %v", rep)
			return
		}
		fault = &rep
	}
	done := false
	if err := e.ex.Run(Op{
		Strategy: res.Strategy, Inputs: pattern(ranks, elemsOf(bytes)), Recovery: rec,
		OnDone: func(Result) { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if done {
		t.Error("OnDone fired for a faulted op")
	}
	if fault == nil {
		t.Fatal("no fault declared with a permanently dead strategy edge")
	}
	if fault.Kind != LinkFault {
		t.Fatalf("fault kind = %v, want link", fault.Kind)
	}
	if !dead[fault.Edge] {
		t.Errorf("fault names edge %d, want one of the dead edges %v", fault.Edge, dead)
	}
	if fault.Retries != rec.MaxRetries {
		t.Errorf("fault after %d retries, want %d", fault.Retries, rec.MaxRetries)
	}
	stats := e.ex.RecoveryStats()
	if stats.LinkFaults != 1 {
		t.Errorf("LinkFaults = %d, want 1", stats.LinkFaults)
	}
	if stats.Retransmits < rec.MaxRetries {
		t.Errorf("Retransmits = %d, want >= %d", stats.Retransmits, rec.MaxRetries)
	}
}

// TestHungKernelDeclaresStallFault: a worker's aggregation kernels never
// retire; with nothing left in flight the op-level watchdog must declare a
// StallFault naming that rank.
func TestHungKernelDeclaresStallFault(t *testing.T) {
	e := testbedRecoveryEnv(t)
	ranks := ranksOf(e.c)
	const bytes = 1 << 20
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is the chain root of the testbed strategies: it always
	// aggregates, so its hang is observable for any synthesized plan.
	const hungRank = 0
	e.gpus[hungRank].SetKernelStall(func(sim.Time) time.Duration { return 1e6 * time.Second })

	rec := tightRecovery()
	rec.StallTimeout = 20 * time.Millisecond
	var fault *FaultReport
	rec.OnFault = func(rep FaultReport) {
		if fault == nil {
			fault = &rep
		}
	}
	done := false
	if err := e.ex.Run(Op{
		Strategy: res.Strategy, Inputs: pattern(ranks, elemsOf(bytes)), Recovery: rec,
		OnDone: func(Result) { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if done {
		t.Error("OnDone fired with a hung aggregation kernel")
	}
	if fault == nil {
		t.Fatal("no stall fault declared")
	}
	if fault.Kind != StallFault {
		t.Fatalf("fault kind = %v, want stall", fault.Kind)
	}
	if fault.Rank != hungRank {
		t.Errorf("culprit rank = %d, want %d", fault.Rank, hungRank)
	}
	if s := e.ex.RecoveryStats(); s.StallFaults != 1 {
		t.Errorf("StallFaults = %d, want 1", s.StallFaults)
	}
}

// TestRecoveryDeterminism: the same workload with the same recovery config
// and the same fault schedule replays the same timeline — elapsed times and
// counters are bit-identical across fresh environments.
func TestRecoveryDeterminism(t *testing.T) {
	run := func() (time.Duration, RecoveryStats) {
		e := testbedRecoveryEnv(t)
		ranks := ranksOf(e.c)
		const bytes = 4 << 20
		res, err := synth.Synthesize(e.costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Ranks: ranks, Root: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := e.fab.Graph()
		e.eng.At(time.Millisecond, func() {
			for i := 0; i < g.NumEdges(); i++ {
				e.fab.SetScale(topology.EdgeID(i), 0)
			}
		})
		e.eng.At(3*time.Millisecond, func() {
			for i := 0; i < g.NumEdges(); i++ {
				e.fab.SetScale(topology.EdgeID(i), 1)
			}
		})
		var got Result
		if err := e.ex.Run(Op{
			Strategy: res.Strategy, Inputs: pattern(ranks, elemsOf(bytes)),
			Recovery: tightRecovery(), OnDone: func(r Result) { got = r },
		}); err != nil {
			t.Fatal(err)
		}
		e.eng.Run()
		return got.Elapsed, e.ex.RecoveryStats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 {
		t.Errorf("elapsed differs across replays: %v vs %v", e1, e2)
	}
	if s1 != s2 {
		t.Errorf("stats differ across replays: %+v vs %+v", s1, s2)
	}
	if e1 <= 0 {
		t.Error("replayed run never completed")
	}
}

package collective

import (
	"fmt"
	"time"

	"adapcc/internal/device"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/payload"
	"adapcc/internal/relay"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// Executor runs synthesised strategies over a fabric with simulated GPUs.
type Executor struct {
	fab    *fabric.Fabric
	gpus   map[int]*device.GPU
	tracer *trace.Tracer
	// hopFree recycles the per-hop send/arrive callback structs — the
	// single hottest allocation site of a run (one per chunk per hop).
	hopFree []*hopSend
	// stats accumulates fault-detection counters across ops (see
	// RecoveryStats); untouched when ops run without Recovery.
	stats RecoveryStats
	// reg/em are the metrics registry and its pre-resolved instrument
	// bundle; both nil (free) unless SetMetrics installed a registry.
	reg *metrics.Registry
	em  *execMetrics
}

func (e *Executor) getHop() *hopSend {
	if n := len(e.hopFree); n > 0 {
		h := e.hopFree[n-1]
		e.hopFree[n-1] = nil
		e.hopFree = e.hopFree[:n-1]
		return h
	}
	return new(hopSend)
}

func (e *Executor) putHop(h *hopSend) {
	*h = hopSend{}
	e.hopFree = append(e.hopFree, h)
}

// NewExecutor wires an executor to a fabric and the per-rank GPUs.
func NewExecutor(fab *fabric.Fabric, gpus map[int]*device.GPU) *Executor {
	return &Executor{fab: fab, gpus: gpus}
}

// Fabric returns the executor's data plane.
func (e *Executor) Fabric() *fabric.Fabric { return e.fab }

// Op is one collective invocation.
type Op struct {
	Strategy *strategy.Strategy
	// Mode selects the data plane: Dense (default) moves real float32s,
	// Phantom moves provenance metadata only. Timing is identical either
	// way — the simulation charges time from byte counts alone.
	Mode payload.Mode
	// Inputs holds each active rank's tensor (TotalBytes/4 float32s).
	// Dense mode only; ignored for ranks present in Payloads.
	Inputs map[int][]float32
	// Payloads optionally supplies pre-built payloads per rank (e.g. to
	// chain one collective's outputs into the next stage). Takes
	// precedence over Inputs. In Phantom mode ranks without an entry get
	// a synthesised PhantomInput carrying their own provenance.
	Payloads map[int]payload.Payload
	// Active marks contributing ranks; nil means every participant of
	// the strategy is active. Inactive participants act as relays per
	// their behaviour tuples.
	Active map[int]bool
	// SingleStream forces every flow of the collective onto one logical
	// stream — the NCCL single-channel behaviour, which caps the whole
	// collective at one stream's TCP rate.
	SingleStream bool
	// Class is the fabric traffic class every chunk of this collective
	// competes under at shared links (communicator-group scheduling).
	// Zero is the default best-effort class.
	Class fabric.ClassID
	// Recovery, when non-nil, arms chunk-granularity fault detection:
	// per-chunk transfer deadlines with bounded retransmission and an
	// op-level stall watchdog. See the Recovery type.
	Recovery *Recovery
	// OnDone fires when the collective completes.
	OnDone func(Result)
}

// Result is the outcome of one collective.
type Result struct {
	// Outputs maps rank → result tensor. Which ranks hold outputs
	// depends on the primitive: the roots for Reduce, every tree rank
	// for AllReduce/Broadcast, every participant for AlltoAll.
	// Populated in Dense mode only; nil for Phantom runs.
	Outputs map[int][]float32
	// Payloads maps rank → result payload in both modes. Phantom results
	// carry provenance and a positional checksum instead of data.
	Payloads map[int]payload.Payload
	// Elapsed is the virtual time from start to the last delivery.
	Elapsed time.Duration
	// Stats summarises the run: chunk deliveries, wire bytes, kernels,
	// retransmission activity.
	Stats StatsReport
}

// AlgoBandwidthBps is the evaluation metric of Sec. VI-C: input tensor
// size divided by completion time.
func AlgoBandwidthBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds()
}

// Run validates and starts the collective. All progress happens on the
// fabric's simulation engine; Run itself returns immediately.
func (e *Executor) Run(op Op) error {
	st := op.Strategy
	if st == nil {
		return fmt.Errorf("collective: nil strategy")
	}
	g := e.fab.Graph()
	if err := st.Validate(g); err != nil {
		return err
	}

	active := op.Active
	if active == nil {
		active = make(map[int]bool)
		for _, r := range st.Participants() {
			active[r] = true
		}
	}
	totalElems := elemsOf(st.TotalBytes)
	anyActive := false
	inputs := make(map[int]payload.Payload)
	for r, a := range active {
		if !a {
			continue
		}
		anyActive = true
		switch p, ok := op.Payloads[r]; {
		case ok:
			if p.Mode() != op.Mode {
				return fmt.Errorf("collective: rank %d payload is %v, op is %v", r, p.Mode(), op.Mode)
			}
			if p.Len() != totalElems {
				return fmt.Errorf("collective: rank %d input has %d elems, want %d", r, p.Len(), totalElems)
			}
			inputs[r] = p
		case op.Mode == payload.Phantom:
			inputs[r] = payload.PhantomInput(r, totalElems)
		default:
			in, ok := op.Inputs[r]
			if !ok {
				return fmt.Errorf("collective: active rank %d has no input", r)
			}
			if len(in) != totalElems {
				return fmt.Errorf("collective: rank %d input has %d elems, want %d", r, len(in), totalElems)
			}
			inputs[r] = payload.WrapDense(in)
		}
		if _, ok := e.gpus[r]; !ok {
			return fmt.Errorf("collective: rank %d has no GPU", r)
		}
	}
	if !anyActive {
		return fmt.Errorf("collective: no active ranks")
	}

	spans, err := partitionSpans(st)
	if err != nil {
		return err
	}

	run := &opRun{
		ex:      e,
		st:      st,
		mode:    op.Mode,
		class:   op.Class,
		active:  active,
		inputs:  inputs,
		outputs: make(map[int]payload.Payload),
		arena:   payload.NewArena(op.Mode),
		started: e.fab.Engine().Now(),
		streams: make(map[streamKey]*device.Stream),
		onDone:  op.OnDone,
	}
	if op.SingleStream {
		run.rankStream = make(map[int]fabric.StreamID)
	}
	if op.Recovery != nil {
		rec := op.Recovery.normalized()
		run.rec = &rec
		run.lastProgress = run.started
		run.pendingKernels = make(map[int]int)
	}

	subs := make([]*subRun, len(st.SubCollectives))
	expected := 0
	for i := range st.SubCollectives {
		sub, err := newSubRun(run, &st.SubCollectives[i], i, spans[i])
		if err != nil {
			return err
		}
		subs[i] = sub
		expected += sub.expectedEvents
	}
	if expected == 0 {
		return fmt.Errorf("collective: nothing to communicate (no carrying flows)")
	}
	run.subs = subs
	run.expected = expected
	run.remaining = sim.NewCountdown(expected, run.finish)
	for _, sub := range subs {
		sub.start()
	}
	if run.rec != nil && run.rec.StallTimeout > 0 {
		run.engine().DoCallAfter(run.rec.StallTimeout, &progressWatch{op: run})
	}
	return nil
}

type streamKey struct {
	rank  int
	sub   int
	stage int // 0 = forward, 1 = allreduce broadcast stage
}

// opRun is the shared state of one in-flight collective.
type opRun struct {
	ex     *Executor
	st     *strategy.Strategy
	mode   payload.Mode
	class  fabric.ClassID
	active map[int]bool
	inputs map[int]payload.Payload
	// outputs maps rank → result payload (allocated on first write).
	outputs map[int]payload.Payload
	// arena owns the aggregation scratch buffers; released back to the
	// pool in finish(), after the last delivery has consumed them.
	arena     *payload.Arena
	started   sim.Time
	remaining *sim.Countdown
	streams   map[streamKey]*device.Stream
	// rankStream, when non-nil, gives every rank exactly one stream for
	// all its flows and stages (single-channel mode: NCCL's one CUDA
	// stream per device).
	rankStream map[int]fabric.StreamID
	// subs/expected/stats feed the per-collective StatsReport; the counters
	// are plain ints, so tracking costs nothing whether or not metrics are
	// enabled.
	subs     []*subRun
	expected int
	stats    StatsReport
	// streamFree serialises chunk send-initiations per stream: each
	// initiation costs a kernel/copy launch, so a single stream issues
	// sends strictly one after another while parallel contexts overlap
	// them (Sec. V-A multi-stream parallelism).
	streamFree map[fabric.StreamID]sim.Time
	onDone     func(Result)

	// Fault-detection state (nil/zero unless Op.Recovery was set).
	rec      *Recovery
	failed   bool
	finished bool
	// lastProgress is the latest arrival/retry/kernel-retire instant, the
	// stall watchdog's liveness stamp.
	lastProgress sim.Time
	// pendingKernels counts launched-but-unretired aggregation kernels
	// per rank, so a stall can be attributed to a hung device.
	pendingKernels map[int]int
}

// initiate charges the per-chunk launch cost on a stream and runs send when
// the stream's initiation slot frees up.
func (r *opRun) initiate(stream fabric.StreamID, send sim.Caller) {
	if r.streamFree == nil {
		r.streamFree = make(map[fabric.StreamID]sim.Time)
	}
	eng := r.engine()
	start := eng.Now()
	if free := r.streamFree[stream]; free > start {
		start = free
	}
	start += device.KernelLaunchLatency
	r.streamFree[stream] = start
	eng.DoCall(start, send)
}

func (r *opRun) engine() *sim.Engine { return r.ex.fab.Engine() }

// output returns (allocating on first use) a rank's result tensor.
func (r *opRun) output(rank int) payload.Payload {
	out, ok := r.outputs[rank]
	if !ok {
		out = r.ex.gpus[rank].AllocPayload(elemsOf(r.st.TotalBytes), r.mode)
		r.outputs[rank] = out
	}
	return out
}

func (r *opRun) stream(k streamKey) *device.Stream {
	s, ok := r.streams[k]
	if !ok {
		s = r.ex.gpus[k.rank].NewStream()
		r.streams[k] = s
	}
	return s
}

func (r *opRun) finish() {
	r.finished = true
	elapsed := time.Duration(r.engine().Now() - r.started)
	r.stats.ChunksDelivered = r.expected
	r.stats.Elapsed = elapsed
	r.recordFinish(elapsed)
	if r.onDone != nil {
		res := Result{
			Payloads: r.outputs,
			Elapsed:  elapsed,
			Stats:    r.stats,
		}
		if r.mode == payload.Dense {
			res.Outputs = make(map[int][]float32, len(r.outputs))
			for rank, p := range r.outputs {
				res.Outputs[rank] = p.Float32()
			}
		}
		r.onDone(res)
	}
	// Every delivery has happened; scratch buffers can recycle.
	r.arena.Release()
}

// subRun executes one sub-collective (one transmission context per rank).
type subRun struct {
	op     *opRun
	sc     *strategy.SubCollective
	idx    int
	pspan  span
	chunks []span // chunk layout of the partition (rooted primitives)

	flows   []flowRun
	carries []bool // does flow fi move any data?
	tuples  map[int]relay.Tuple

	// originFlow[rank] = index of the flow the rank originates (-1 if
	// none). Valid for rooted primitives only.
	originFlow map[int]int
	// aggs[node] tracks aggregation progress at flow-terminal GPU nodes.
	aggs map[topology.NodeID]*aggState

	// participantsSorted is the sorted participant rank list (AlltoAll
	// block indexing).
	participantsSorted []int
	rankIndex          map[int]int

	expectedEvents int
}

type flowRun struct {
	f         *strategy.Flow
	edges     []topology.EdgeID
	revEdges  []topology.EdgeID
	streamFwd fabric.StreamID
	streamRev fabric.StreamID
	sender    *flowSender // forward-stage sender
	revSender *flowSender // AllReduce broadcast-stage sender
	// blockChunks is the AlltoAll chunk layout of this flow's block.
	blockChunks []span
	blockDst    span // where the receiver stores the block
	// delivered counts this flow's end-to-end chunk deliveries (both
	// stages), the per-flow progress figure of the metrics layer.
	delivered int
}

type aggState struct {
	rank     int
	node     topology.NodeID
	expected int                       // carrying terminal flows
	got      map[int][]payload.Payload // chunk -> received buffers
	hasLocal bool
}

func newSubRun(op *opRun, sc *strategy.SubCollective, idx int, pspan span) (*subRun, error) {
	g := op.ex.fab.Graph()
	s := &subRun{
		op:         op,
		sc:         sc,
		idx:        idx,
		pspan:      pspan,
		tuples:     relay.Tuples(g, sc, op.st.Primitive, op.active),
		originFlow: make(map[int]int),
		aggs:       make(map[topology.NodeID]*aggState),
		rankIndex:  make(map[int]int),
	}
	chunkElems := elemsOf(sc.ChunkBytes)
	if chunkElems <= 0 {
		chunkElems = 1
	}
	s.chunks = chunkSpans(pspan, chunkElems)

	// Resolve flow hop edges. Streams follow the paper's transmission
	// contexts: within one sub-collective, all flows originating at one
	// GPU share a logical stream per stage (its persistent context
	// thread / QP), so chunks of one source deliver strictly in order
	// and the M parallel contexts aggregate bandwidth on capped links.
	fab := op.ex.fab
	fwdStream := make(map[int]fabric.StreamID)
	revStream := make(map[int]fabric.StreamID)
	streamOf := func(m map[int]fabric.StreamID, src int) fabric.StreamID {
		if op.rankStream != nil {
			// Single-channel mode: one stream per device, shared by
			// every flow and stage of that rank.
			m = op.rankStream
		}
		id, ok := m[src]
		if !ok {
			id = fab.NewStreamID()
			m[src] = id
		}
		return id
	}
	s.flows = make([]flowRun, len(sc.Flows))
	for i := range sc.Flows {
		f := &sc.Flows[i]
		fr := flowRun{
			f:         f,
			streamFwd: streamOf(fwdStream, f.SrcRank),
			streamRev: streamOf(revStream, f.DstRank),
		}
		for h := 1; h < len(f.Path); h++ {
			eid, ok := g.EdgeBetween(f.Path[h-1], f.Path[h])
			if !ok {
				return nil, fmt.Errorf("collective: flow %d missing edge", f.ID)
			}
			fr.edges = append(fr.edges, eid)
		}
		for h := len(f.Path) - 1; h >= 1; h-- {
			eid, ok := g.EdgeBetween(f.Path[h], f.Path[h-1])
			if !ok {
				return nil, fmt.Errorf("collective: flow %d has no reverse edge %v -> %v (needed for the AllReduce broadcast stage)",
					f.ID, f.Path[h], f.Path[h-1])
			}
			fr.revEdges = append(fr.revEdges, eid)
		}
		s.flows[i] = fr
	}

	// Carrying analysis: a flow moves data if its source is active or
	// data terminates at its origin (relay continuation). AlltoAll flows
	// are independent: each carries exactly when its source is active.
	s.carries = make([]bool, len(sc.Flows))
	if op.st.Primitive == strategy.AlltoAll {
		for i := range sc.Flows {
			s.carries[i] = op.active[sc.Flows[i].SrcRank]
		}
	} else {
		carriesAt := make(map[topology.NodeID]bool)
		order, err := relay.FlowDependencyOrder(sc)
		if err != nil {
			return nil, err
		}
		for _, fi := range order {
			f := &sc.Flows[fi]
			carry := op.active[f.SrcRank] || carriesAt[f.Path[0]]
			s.carries[fi] = carry
			if carry {
				carriesAt[f.Path[len(f.Path)-1]] = true
			}
		}
	}

	for i := range sc.Flows {
		s.originFlow[sc.Flows[i].SrcRank] = i
	}

	switch op.st.Primitive {
	case strategy.Reduce, strategy.AllReduce:
		s.setupReduce(g)
	case strategy.Broadcast:
		s.setupBroadcast()
	case strategy.AlltoAll:
		s.setupAlltoAll()
	}
	return s, nil
}

// setupReduce prepares aggregation states and completion counts.
func (s *subRun) setupReduce(g *topology.Graph) {
	// Aggregators: GPU nodes where carrying flows terminate, plus the
	// root (which always finalises chunks even with no carrying input
	// if it is active).
	termCount := make(map[topology.NodeID]int)
	for fi := range s.flows {
		if !s.carries[fi] {
			continue
		}
		p := s.flows[fi].f.Path
		termCount[p[len(p)-1]]++
	}
	for node, n := range termCount {
		rank := g.Node(node).Rank
		s.aggs[node] = &aggState{
			rank:     rank,
			node:     node,
			expected: n,
			got:      make(map[int][]payload.Payload),
			hasLocal: s.op.active[rank],
		}
	}

	rootID, _ := g.GPUByRank(s.sc.Root)
	treeRanks := s.treeRankCount()
	switch s.op.st.Primitive {
	case strategy.Reduce:
		s.expectedEvents = len(s.chunks)
	case strategy.AllReduce:
		// Root completion + one reversed delivery per non-root tree
		// rank, per chunk.
		s.expectedEvents = len(s.chunks) * treeRanks
	}
	// Degenerate: the root has no carrying input (it is the only active
	// rank, or everything upstream idle). The collective still
	// completes: the root's "aggregate" is its own data.
	_ = rootID
}

func (s *subRun) treeRankCount() int {
	set := make(map[int]bool)
	for i := range s.flows {
		set[s.flows[i].f.SrcRank] = true
		set[s.flows[i].f.DstRank] = true
	}
	return len(set)
}

// setupBroadcast counts terminal deliveries.
func (s *subRun) setupBroadcast() {
	s.expectedEvents = len(s.chunks) * len(s.flows)
}

// setupAlltoAll computes block layouts per flow: each partition is split
// into n equal blocks of floor(len/n) elements (slot k of sender j goes to
// rank k and lands in the receiver's slot j); the sub-element-count tail
// that does not divide evenly (< n elements per partition) stays local.
func (s *subRun) setupAlltoAll() {
	for _, r := range s.op.st.Participants() {
		s.participantsSorted = append(s.participantsSorted, r)
	}
	for i, r := range s.participantsSorted {
		s.rankIndex[r] = i
	}
	n := len(s.participantsSorted)
	chunkElems := elemsOf(s.sc.ChunkBytes)
	if chunkElems <= 0 {
		chunkElems = 1
	}
	s.expectedEvents = 0
	for fi := range s.flows {
		f := s.flows[fi].f
		if !s.op.active[f.SrcRank] {
			continue
		}
		srcIdx := s.rankIndex[f.SrcRank]
		dstIdx := s.rankIndex[f.DstRank]
		src := equalBlock(s.pspan, n, dstIdx)
		dst := equalBlock(s.pspan, n, srcIdx)
		if src.Len() == 0 {
			continue
		}
		s.flows[fi].blockChunks = chunkSpans(src, chunkElems)
		s.flows[fi].blockDst = dst
		s.expectedEvents += len(s.flows[fi].blockChunks)
	}
}

// start kicks off the sub-collective.
func (s *subRun) start() {
	switch s.op.st.Primitive {
	case strategy.Reduce, strategy.AllReduce:
		s.startReduce()
	case strategy.Broadcast:
		s.startBroadcast()
	case strategy.AlltoAll:
		s.startAlltoAll()
	}
}

// startReduce: pure sources (active, no carrying inputs) stream their
// local chunks; aggregators fire as inputs arrive. A root with no carrying
// inputs finalises its own data immediately.
func (s *subRun) startReduce() {
	g := s.op.ex.fab.Graph()
	for fi := range s.flows {
		if !s.carries[fi] {
			continue
		}
		f := s.flows[fi].f
		origin := f.Path[0]
		if _, isAgg := s.aggs[origin]; isAgg {
			continue // fed by aggregation completions
		}
		// Pure source: must be active (otherwise carries would be false).
		for c := range s.chunks {
			s.sender(fi).enqueue(c, s.localChunk(f.SrcRank, c))
		}
	}
	// Root with no carrying input: finalise all chunks directly.
	rootID, _ := g.GPUByRank(s.sc.Root)
	if _, ok := s.aggs[rootID]; !ok {
		for c := range s.chunks {
			s.finalizeRootChunk(c, s.localChunk(s.sc.Root, c))
		}
	}
}

func (s *subRun) startBroadcast() {
	// Root copies its own partition into its output and streams chunks
	// down each flow it originates.
	root := s.sc.Root
	out := s.op.output(root)
	for c, sp := range s.chunks {
		data := s.localChunk(root, c)
		out.View(sp.Start, sp.End).CopyFrom(data)
		for fi := range s.flows {
			if s.flows[fi].f.SrcRank == root {
				s.sender(fi).enqueue(c, data)
			}
		}
	}
}

func (s *subRun) startAlltoAll() {
	n := len(s.participantsSorted)
	for _, rank := range s.participantsSorted {
		if !s.op.active[rank] {
			continue
		}
		// Self block plus the undivided tail: local copies.
		idx := s.rankIndex[rank]
		sp := equalBlock(s.pspan, n, idx)
		out := s.op.output(rank)
		in := s.op.inputs[rank]
		out.View(sp.Start, sp.End).CopyFrom(in.View(sp.Start, sp.End))
		tail := alltoallTail(s.pspan, n)
		out.View(tail.Start, tail.End).CopyFrom(in.View(tail.Start, tail.End))
	}
	for fi := range s.flows {
		fr := &s.flows[fi]
		if len(fr.blockChunks) == 0 {
			continue
		}
		for c, sp := range fr.blockChunks {
			s.sender(fi).enqueue(c, s.op.inputs[fr.f.SrcRank].View(sp.Start, sp.End))
		}
	}
}

// localChunk returns a view of a rank's input for chunk c of this partition.
func (s *subRun) localChunk(rank, c int) payload.Payload {
	sp := s.chunks[c]
	return s.op.inputs[rank].View(sp.Start, sp.End)
}

// sender lazily creates the pipelined sender of a flow.
func (s *subRun) sender(fi int) *flowSender {
	if s.flows[fi].sender == nil {
		s.flows[fi].sender = &flowSender{sub: s, flowIdx: fi}
	}
	return s.flows[fi].sender
}

// chunkMsg is one chunk in flight. data is a payload view; the wire cost
// comes from its SizeBytes, never its contents.
type chunkMsg struct {
	flowIdx  int
	chunk    int
	hop      int // index of the hop just traversed (0-based)
	data     payload.Payload
	reversed bool // AllReduce broadcast stage
}

// flowSender pipelines chunks onto a flow's first hop: the next chunk is
// posted when the previous finishes serialising on the first link, so
// chunks stream hop-by-hop exactly as the Eq. 5 pipeline model assumes.
// The queue drains through head (rather than re-slicing) so its backing
// array is reused across the whole run.
type flowSender struct {
	sub      *subRun
	flowIdx  int
	reversed bool
	queue    []chunkMsg
	head     int
	busy     bool
}

func (fs *flowSender) enqueue(chunk int, data payload.Payload) {
	fs.queue = append(fs.queue, chunkMsg{
		flowIdx:  fs.flowIdx,
		chunk:    chunk,
		data:     data,
		reversed: fs.reversed,
	})
	if !fs.busy {
		fs.kick()
	}
}

func (fs *flowSender) kick() {
	if fs.head == len(fs.queue) {
		fs.queue = fs.queue[:0]
		fs.head = 0
		fs.busy = false
		return
	}
	fs.busy = true
	msg := fs.queue[fs.head]
	fs.queue[fs.head] = chunkMsg{}
	fs.head++
	fs.sub.sendHop(msg, fs)
}

// hopSend carries one chunk across one hop. One pooled struct serves as the
// launch callback (Call posts the chunk onto the wire) and the fabric
// arrival callback (OnArrive), so the hottest path of a run — one
// launch+transfer+arrival per chunk per hop — allocates nothing in steady
// state.
type hopSend struct {
	s         *subRun
	msg       chunkMsg
	eid       topology.EdgeID
	stream    fabric.StreamID
	bytes     int64
	sendStart sim.Time
	// fs, on a flow's first hop, is the sender released to post its next
	// chunk once this hop's serialisation+latency completes.
	fs *flowSender
	// Fault-detection state (zero unless the op runs with Recovery): the
	// (handle, gen) pair of the current wire attempt, its deadline event,
	// and how many retransmissions this chunk hop has spent.
	transfer *fabric.Transfer
	tgen     uint64
	watchdog *sim.Event
	retries  int
}

// Call posts the chunk onto the wire (the send initiation completing, or a
// retransmission backoff expiring).
func (h *hopSend) Call() {
	op := h.s.op
	if op.failed {
		op.ex.putHop(h)
		return
	}
	h.sendStart = op.engine().Now()
	t := op.ex.fab.SendStreamClassTo(h.eid, h.stream, op.class, h.bytes, nil, h)
	if op.rec != nil {
		h.transfer, h.tgen = t, t.Gen()
		h.armDeadline()
	}
}

// OnArrive handles the chunk landing after this hop.
func (h *hopSend) OnArrive(any) {
	s, msg, eid, sendStart, bytes, fs := h.s, h.msg, h.eid, h.sendStart, h.bytes, h.fs
	if h.watchdog != nil {
		s.op.engine().Cancel(h.watchdog)
	}
	s.op.ex.putHop(h)
	if s.op.failed {
		return
	}
	if s.op.rec != nil {
		s.op.progress()
	}
	s.op.stats.ChunkHops++
	s.op.stats.BytesOnWire += bytes
	if em := s.op.ex.em; em != nil {
		now := s.op.engine().Now()
		em.hops.Inc(now)
		em.bytes.Add(now, float64(bytes))
		em.hopLatency.ObserveDuration(now, time.Duration(now-sendStart))
	}
	s.traceTransfer(msg, eid, sendStart, bytes)
	if fs != nil {
		fs.kick()
	}
	s.arrived(msg)
}

// sendHop transmits msg over its next hop. fs (nil for forwarding hops) is
// the flow sender to release when this hop completes. The source hop
// additionally pays the per-chunk launch cost, serialised on the flow's
// stream.
func (s *subRun) sendHop(msg chunkMsg, fs *flowSender) {
	fr := &s.flows[msg.flowIdx]
	edges := fr.edges
	stream := fr.streamFwd
	if msg.reversed {
		edges = fr.revEdges
		stream = fr.streamRev
	}
	eid := edges[msg.hop]
	bytes := msg.data.SizeBytes()
	if bytes == 0 {
		bytes = 4 // metadata-only chunk, still costs a message
	}
	h := s.op.ex.getHop()
	*h = hopSend{s: s, msg: msg, eid: eid, stream: stream, bytes: bytes, fs: fs}
	if msg.hop == 0 {
		s.op.initiate(stream, h)
		return
	}
	h.Call()
}

// arrived handles a chunk landing at the node after hop msg.hop.
func (s *subRun) arrived(msg chunkMsg) {
	fr := &s.flows[msg.flowIdx]
	path := fr.f.Path
	var node topology.NodeID
	if msg.reversed {
		node = path[len(path)-2-msg.hop]
	} else {
		node = path[msg.hop+1]
	}
	lastHop := msg.hop == len(fr.edges)-1
	if !lastHop {
		msg.hop++
		s.sendHop(msg, nil)
		return
	}
	fr.delivered++
	if msg.reversed {
		s.reversedDelivered(msg, node)
		return
	}
	switch s.op.st.Primitive {
	case strategy.Reduce, strategy.AllReduce:
		s.aggArrival(node, msg)
	case strategy.Broadcast:
		s.broadcastDelivered(node, msg)
	case strategy.AlltoAll:
		s.alltoallDelivered(msg)
	}
}

// aggArrival collects a chunk at an aggregation point and launches the
// kernel when all expected inputs for that chunk are present.
func (s *subRun) aggArrival(node topology.NodeID, msg chunkMsg) {
	agg := s.aggs[node]
	if agg == nil {
		panic(fmt.Sprintf("collective: chunk arrived at non-aggregating node %v", node))
	}
	agg.got[msg.chunk] = append(agg.got[msg.chunk], msg.data)
	if len(agg.got[msg.chunk]) < agg.expected {
		return
	}
	inputs := agg.got[msg.chunk]
	delete(agg.got, msg.chunk)
	tuple := s.tuples[agg.rank]
	chunk := msg.chunk

	if !tuple.HasKernel {
		// Single-stream relay: forward the data untouched, no kernel.
		if len(inputs) != 1 || agg.hasLocal {
			panic("collective: kernel-less aggregation with multiple inputs")
		}
		s.aggregated(agg, chunk, inputs[0])
		return
	}
	// Aggregate into a pooled scratch buffer: local chunk (if any) plus
	// inputs. The seeding copy is free on the simulation clock (it models
	// the kernel reading its first operand); the reduce kernel is charged
	// from the remaining inputs' bytes.
	sp := s.chunks[chunk]
	buf := s.op.arena.Scratch(sp.Len())
	if agg.hasLocal {
		buf.CopyFrom(s.localChunk(agg.rank, chunk))
	} else {
		buf.CopyFrom(inputs[0])
		inputs = inputs[1:]
	}
	key := streamKey{rank: agg.rank, sub: s.idx}
	kernelStart := s.op.engine().Now()
	nInputs := len(inputs)
	s.op.stats.Kernels++
	if s.op.rec != nil {
		s.op.pendingKernels[agg.rank]++
	}
	s.op.stream(key).LaunchReduceInto(buf, inputs, func() {
		if s.op.rec != nil {
			s.op.pendingKernels[agg.rank]--
			s.op.progress()
		}
		if s.op.failed {
			return
		}
		s.traceKernel(agg.rank, chunk, nInputs, kernelStart)
		s.aggregated(agg, chunk, buf)
	})
}

// aggregated routes a completed aggregation: onward to the parent, or
// finalisation at the root.
func (s *subRun) aggregated(agg *aggState, chunk int, data payload.Payload) {
	if agg.rank == s.sc.Root {
		s.finalizeRootChunk(chunk, data)
		return
	}
	fi, ok := s.originFlow[agg.rank]
	if !ok {
		panic(fmt.Sprintf("collective: aggregator rank %d has no continuation flow", agg.rank))
	}
	s.sender(fi).enqueue(chunk, data)
}

// finalizeRootChunk records the fully reduced chunk at the root and, for
// AllReduce, immediately pipelines it down the reversed tree (multi-stage
// parallelism, Sec. V-B).
func (s *subRun) finalizeRootChunk(chunk int, data payload.Payload) {
	sp := s.chunks[chunk]
	out := s.op.output(s.sc.Root)
	out.View(sp.Start, sp.End).CopyFrom(data)
	s.traceRootChunk(chunk)
	s.op.remaining.Done()
	if s.op.st.Primitive != strategy.AllReduce {
		return
	}
	// Broadcast stage: reversed flows originating at the root are the
	// original flows that terminated at the root.
	rootID, _ := s.op.ex.fab.Graph().GPUByRank(s.sc.Root)
	for fi := range s.flows {
		p := s.flows[fi].f.Path
		if p[len(p)-1] == rootID {
			s.reverseSender(fi).enqueue(chunk, data)
		}
	}
}

// reverseSender lazily creates the broadcast-stage sender of a flow.
func (s *subRun) reverseSender(fi int) *flowSender {
	fr := &s.flows[fi]
	if fr.revSender == nil {
		fr.revSender = &flowSender{sub: s, flowIdx: fi, reversed: true}
	}
	return fr.revSender
}

// reversedDelivered handles an AllReduce broadcast-stage chunk reaching a
// tree rank: store the result and cascade further down.
func (s *subRun) reversedDelivered(msg chunkMsg, node topology.NodeID) {
	g := s.op.ex.fab.Graph()
	rank := g.Node(node).Rank
	sp := s.chunks[msg.chunk]
	out := s.op.output(rank)
	out.View(sp.Start, sp.End).CopyFrom(msg.data)
	s.op.remaining.Done()
	// Cascade: reversed flows originating here are the original flows
	// that terminated at this node.
	for fi := range s.flows {
		p := s.flows[fi].f.Path
		if p[len(p)-1] == node {
			s.reverseSender(fi).enqueue(msg.chunk, msg.data)
		}
	}
}

// broadcastDelivered stores a Broadcast chunk at a flow destination and
// forwards it down the out-tree.
func (s *subRun) broadcastDelivered(node topology.NodeID, msg chunkMsg) {
	g := s.op.ex.fab.Graph()
	rank := g.Node(node).Rank
	sp := s.chunks[msg.chunk]
	out := s.op.output(rank)
	out.View(sp.Start, sp.End).CopyFrom(msg.data)
	s.op.remaining.Done()
	for fi := range s.flows {
		if s.flows[fi].f.SrcRank == rank {
			s.sender(fi).enqueue(msg.chunk, msg.data)
		}
	}
}

// alltoallDelivered stores a block chunk at its receiver.
func (s *subRun) alltoallDelivered(msg chunkMsg) {
	fr := &s.flows[msg.flowIdx]
	srcChunk := fr.blockChunks[msg.chunk]
	// Map the chunk's offset within the source block onto the
	// receiver-side block (blocks are equal length by construction).
	srcBlock := equalBlock(s.pspan, len(s.participantsSorted), s.rankIndex[fr.f.DstRank])
	offset := srcChunk.Start - srcBlock.Start
	dst := s.op.output(fr.f.DstRank)
	dst.View(fr.blockDst.Start+offset, fr.blockDst.Start+offset+srcChunk.Len()).CopyFrom(msg.data)
	s.op.remaining.Done()
}

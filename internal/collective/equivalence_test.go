package collective_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/payload"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// timelineEvent is the timing-plane fingerprint of one trace event: every
// field the simulation clock produced, none of the data plane.
type timelineEvent struct {
	Name       string
	Cat        string
	PID, TID   int
	Start, Dur time.Duration
}

// runTimeline executes one synthesised collective in the given payload
// mode and returns its full traced timeline plus the result.
func runTimeline(t *testing.T, build func() (*topology.Cluster, error), prim strategy.Primitive, bytes int64, m int, mode payload.Mode) ([]timelineEvent, collective.Result) {
	t.Helper()
	c, err := build()
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 13)
	if err != nil {
		t.Fatal(err)
	}
	req := synth.Request{Primitive: prim, Bytes: bytes, Root: -1, M: m}
	if prim == strategy.Reduce || prim == strategy.Broadcast {
		req.Root = 0
	}
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), req)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	env.Exec.SetTracer(tr)
	op := collective.Op{Strategy: res.Strategy, Mode: mode}
	if mode == payload.Dense {
		op.Inputs = backend.MakeInputs(env.AllRanks(), bytes)
	}
	var got collective.Result
	op.OnDone = func(r collective.Result) { got = r }
	if err := env.Exec.Run(op); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if got.Elapsed <= 0 {
		t.Fatalf("%v collective never completed", mode)
	}
	evs := make([]timelineEvent, 0, tr.Len())
	for _, e := range tr.Events() {
		evs = append(evs, timelineEvent{Name: e.Name, Cat: e.Cat, PID: e.PID, TID: e.TID, Start: e.Start, Dur: e.Dur})
	}
	return evs, got
}

// TestDensePhantomTimelinesIdentical is the load-bearing guarantee of the
// payload split: a phantom run of a collective produces a bit-identical
// virtual timeline — same events, same order, same timestamps, same
// completion time — as the dense run of the same seed. Every timing sweep
// that defaults to phantom mode rests on this.
func TestDensePhantomTimelinesIdentical(t *testing.T) {
	shapes := []struct {
		name  string
		build func() (*topology.Cluster, error)
	}{
		{"1x4", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportRDMA, 1, 4) }},
		{"3x2tcp", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportTCP, 3, 2) }},
		{"a2v2", func() (*topology.Cluster, error) {
			return topology.NewCluster(topology.TransportRDMA, cluster.A100Server(2), cluster.V100Server(2))
		}},
	}
	prims := []strategy.Primitive{strategy.Reduce, strategy.Broadcast, strategy.AllReduce, strategy.AlltoAll}
	for _, sh := range shapes {
		for _, prim := range prims {
			for _, m := range []int{1, 4} {
				name := fmt.Sprintf("%s/%v/M%d", sh.name, prim, m)
				t.Run(name, func(t *testing.T) {
					const bytes = 2 << 20
					dEvs, dRes := runTimeline(t, sh.build, prim, bytes, m, payload.Dense)
					pEvs, pRes := runTimeline(t, sh.build, prim, bytes, m, payload.Phantom)
					if dRes.Elapsed != pRes.Elapsed {
						t.Errorf("elapsed diverged: dense %v, phantom %v", dRes.Elapsed, pRes.Elapsed)
					}
					if len(dEvs) != len(pEvs) {
						t.Fatalf("event counts diverged: dense %d, phantom %d", len(dEvs), len(pEvs))
					}
					for i := range dEvs {
						if dEvs[i] != pEvs[i] {
							t.Fatalf("event %d diverged:\ndense   %+v\nphantom %+v", i, dEvs[i], pEvs[i])
						}
					}
					if dRes.Outputs == nil || pRes.Outputs != nil {
						t.Error("dense should populate Outputs, phantom should not")
					}
				})
			}
		}
	}
}

// TestDensePhantomEquivalenceProperty drives random topologies, primitives
// and tensor sizes (hence chunk layouts) through both modes and demands
// identical timelines and per-rank completion metadata everywhere.
func TestDensePhantomEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	f := func(srvSel, gpuSel, primSel, sizeSel, mSel uint8) bool {
		servers := 1 + int(srvSel)%3 // 1..3
		gpus := 1 + int(gpuSel)%3    // 1..3
		if servers*gpus < 2 {
			gpus = 2
		}
		prims := []strategy.Primitive{strategy.Reduce, strategy.Broadcast, strategy.AllReduce, strategy.AlltoAll}
		prim := prims[int(primSel)%len(prims)]
		// Odd sizes exercise chunk-tail handling and AlltoAll remainders.
		sizes := []int64{64 << 10, 1 << 20, (1 << 20) + 4, 3<<20 + 12}
		bytes := sizes[int(sizeSel)%len(sizes)]
		m := []int{1, 2, 4}[int(mSel)%3]
		build := func() (*topology.Cluster, error) {
			return cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
		}
		dEvs, dRes := runTimeline(t, build, prim, bytes, m, payload.Dense)
		pEvs, pRes := runTimeline(t, build, prim, bytes, m, payload.Phantom)
		return dRes.Elapsed == pRes.Elapsed && reflect.DeepEqual(dEvs, pEvs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPhantomCollectiveProvenance verifies the phantom data plane carries
// meaningful semantics: collective outputs report exactly which ranks'
// contributions reached them, with the positional reference checksum.
func TestPhantomCollectiveProvenance(t *testing.T) {
	run := func(prim strategy.Primitive, root int) (collective.Result, []int, int) {
		c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		env, err := backend.NewEnv(c, 7)
		if err != nil {
			t.Fatal(err)
		}
		req := synth.Request{Primitive: prim, Bytes: 1 << 20, Root: root, M: 2}
		res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), req)
		if err != nil {
			t.Fatal(err)
		}
		var got collective.Result
		err = env.Exec.Run(collective.Op{
			Strategy: res.Strategy,
			Mode:     payload.Phantom,
			OnDone:   func(r collective.Result) { got = r },
		})
		if err != nil {
			t.Fatal(err)
		}
		env.Engine.Run()
		return got, env.AllRanks(), int((1 << 20) / 4)
	}

	t.Run("allreduce", func(t *testing.T) {
		got, ranks, elems := run(strategy.AllReduce, -1)
		if len(got.Payloads) != len(ranks) {
			t.Fatalf("got %d outputs, want %d", len(got.Payloads), len(ranks))
		}
		want := payload.PhantomChecksum(ranks, 0, elems)
		for r, p := range got.Payloads {
			if !reflect.DeepEqual(p.Provenance(), ranks) {
				t.Errorf("rank %d provenance = %v, want all ranks %v", r, p.Provenance(), ranks)
			}
			if p.Checksum() != want {
				t.Errorf("rank %d checksum = %#x, want %#x", r, p.Checksum(), want)
			}
		}
	})
	t.Run("reduce", func(t *testing.T) {
		got, ranks, elems := run(strategy.Reduce, 0)
		p := got.Payloads[0]
		if p == nil {
			t.Fatal("root has no output payload")
		}
		if !reflect.DeepEqual(p.Provenance(), ranks) {
			t.Errorf("root provenance = %v, want %v", p.Provenance(), ranks)
		}
		if want := payload.PhantomChecksum(ranks, 0, elems); p.Checksum() != want {
			t.Errorf("root checksum = %#x, want %#x", p.Checksum(), want)
		}
	})
	t.Run("broadcast", func(t *testing.T) {
		got, ranks, elems := run(strategy.Broadcast, 0)
		if len(got.Payloads) != len(ranks) {
			t.Fatalf("got %d outputs, want %d", len(got.Payloads), len(ranks))
		}
		want := payload.PhantomChecksum([]int{0}, 0, elems)
		for r, p := range got.Payloads {
			if !reflect.DeepEqual(p.Provenance(), []int{0}) {
				t.Errorf("rank %d provenance = %v, want just the root", r, p.Provenance())
			}
			if p.Checksum() != want {
				t.Errorf("rank %d checksum = %#x, want %#x", r, p.Checksum(), want)
			}
		}
	})
	t.Run("alltoall", func(t *testing.T) {
		got, ranks, elems := run(strategy.AlltoAll, -1)
		if len(got.Payloads) != len(ranks) {
			t.Fatalf("got %d outputs, want %d", len(got.Payloads), len(ranks))
		}
		for r, p := range got.Payloads {
			// Provenance is the intersection over the window; no single
			// sender covers a whole AlltoAll output, so it must be empty.
			if len(p.Provenance()) != 0 {
				t.Errorf("rank %d whole-tensor provenance = %v, want none", r, p.Provenance())
			}
			// But sampling elementwise, every sender's block must appear.
			union := map[int]bool{}
			for i := 0; i < elems; i += 64 {
				for _, s := range p.View(i, i+1).Provenance() {
					union[s] = true
				}
			}
			if len(union) != len(ranks) {
				t.Errorf("rank %d received blocks from %d senders, want %d", r, len(union), len(ranks))
			}
		}
	})
}

// TestPhantomAllocationsAreMetadataSized guards the point of phantom mode:
// a phantom AllReduce must allocate memory proportional to chunk metadata,
// not to tensor elements. 4 ranks × 32 MiB dense would touch >256 MiB of
// float32s (inputs + outputs + scratch); phantom must stay under a few MiB.
func TestPhantomAllocationsAreMetadataSized(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 32 << 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	env, err := backend.NewEnv(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	err = env.Exec.Run(collective.Op{
		Strategy: res.Strategy,
		Mode:     payload.Phantom,
		OnDone:   func(collective.Result) { done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	runtime.ReadMemStats(&after)
	if !done {
		t.Fatal("collective never completed")
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > 8<<20 {
		t.Errorf("phantom AllReduce allocated %d bytes; want metadata-sized (<8 MiB) for a %d-byte tensor", allocated, int64(bytes))
	}
}

package collective

import (
	"fmt"

	"adapcc/internal/sim"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// NetPID is the Chrome-trace process group that holds one thread track per
// fabric link; GPU ranks use their rank number as the process group.
const NetPID = 10000

// SetTracer attaches (or, with nil, detaches) a trace recorder to the
// executor. While attached, every chunk transfer on a link, every
// aggregation kernel and every root-chunk finalisation of subsequent
// collectives is recorded on the virtual clock, ready for
// trace.Tracer.WriteJSON and chrome://tracing.
func (e *Executor) SetTracer(t *trace.Tracer) {
	e.tracer = t
	if t == nil {
		return
	}
	g := e.fab.Graph()
	t.LabelProcess(NetPID, "network links")
	for rank := range e.gpus {
		if id, ok := g.GPUByRank(rank); ok {
			t.LabelProcess(rank, fmt.Sprintf("rank %d (%v)", rank, g.Node(id)))
		}
	}
	for _, ed := range g.Edges() {
		t.LabelThread(NetPID, int(ed.ID),
			fmt.Sprintf("%v -> %v [%v]", g.Node(ed.From), g.Node(ed.To), ed.Type))
	}
}

// Tracer returns the attached trace recorder, or nil.
func (e *Executor) Tracer() *trace.Tracer { return e.tracer }

// traceTransfer records one chunk's serialisation+latency on one link.
func (s *subRun) traceTransfer(msg chunkMsg, eid topology.EdgeID, start sim.Time, bytes int64) {
	tr := s.op.ex.tracer
	if tr == nil {
		return
	}
	stage := "fwd"
	if msg.reversed {
		stage = "bcast"
	}
	tr.Add(trace.Event{
		Name:  fmt.Sprintf("s%d f%d c%d", s.idx, msg.flowIdx, msg.chunk),
		Cat:   "net",
		PID:   NetPID,
		TID:   int(eid),
		Start: start,
		Dur:   s.op.engine().Now() - start,
		Args: map[string]any{
			"bytes": bytes,
			"stage": stage,
			"flow":  fmt.Sprintf("%d->%d", s.flows[msg.flowIdx].f.SrcRank, s.flows[msg.flowIdx].f.DstRank),
		},
	})
}

// traceKernel records one aggregation kernel on the owning rank's track.
func (s *subRun) traceKernel(rank, chunk, inputs int, start sim.Time) {
	tr := s.op.ex.tracer
	if tr == nil {
		return
	}
	tr.LabelThread(rank, s.idx, fmt.Sprintf("sub%d reduce stream", s.idx))
	tr.Add(trace.Event{
		Name:  fmt.Sprintf("reduce s%d c%d", s.idx, chunk),
		Cat:   "kernel",
		PID:   rank,
		TID:   s.idx,
		Start: start,
		Dur:   s.op.engine().Now() - start,
		Args:  map[string]any{"inputs": inputs},
	})
}

// traceRootChunk marks a chunk's full reduction at the root.
func (s *subRun) traceRootChunk(chunk int) {
	tr := s.op.ex.tracer
	if tr == nil {
		return
	}
	tr.LabelThread(s.sc.Root, s.idx, fmt.Sprintf("sub%d reduce stream", s.idx))
	tr.Add(trace.Event{
		Name:  fmt.Sprintf("root final s%d c%d", s.idx, chunk),
		Cat:   "milestone",
		PID:   s.sc.Root,
		TID:   s.idx,
		Start: s.op.engine().Now(),
		Phase: trace.Instant,
	})
}

package collective

import (
	"strconv"
	"time"

	"adapcc/internal/metrics"
)

// StatsReport summarises one collective run quantitatively. It is tracked
// as plain counters on the run (free whether or not metrics are enabled)
// and returned in Result.Stats, so callers get per-collective numbers
// without a registry.
type StatsReport struct {
	// ChunksDelivered is the number of terminal chunk deliveries (the
	// completion events the collective waited on).
	ChunksDelivered int
	// ChunkHops is the number of chunk-hop wire deliveries (one chunk
	// crossing one link once; retransmitted attempts count on success only).
	ChunkHops int
	// BytesOnWire is the bytes serialised across all chunk hops.
	BytesOnWire int64
	// Kernels is the number of aggregation kernels launched.
	Kernels int
	// Deadlines / Retransmits count fault-detection activity of this run
	// (zero without Op.Recovery).
	Deadlines   int
	Retransmits int
	// Elapsed is the virtual start-to-finish time (same as Result.Elapsed).
	Elapsed time.Duration
}

// execMetrics is the executor's pre-resolved instrument bundle (see
// SetMetrics). Per-flow counters are resolved lazily at op completion — a
// cold path — because flow identities vary per strategy.
type execMetrics struct {
	hops        *metrics.Counter   // chunk-hop wire deliveries
	bytes       *metrics.Counter   // bytes serialised across chunk hops
	hopLatency  *metrics.Histogram // launch-to-arrival latency per chunk hop
	deadlines   *metrics.Counter   // transfers aborted by their deadline
	retransmits *metrics.Counter   // chunks re-posted after a deadline
	collectives *metrics.Counter   // completed collectives
	opTime      *metrics.Histogram // elapsed virtual time per collective
}

// SetMetrics installs (or, with nil, removes) the metrics registry. The
// executor records per-chunk hop latency, wire bytes, retransmission
// activity, per-collective elapsed time and per-flow chunk progress.
func (e *Executor) SetMetrics(reg *metrics.Registry) {
	e.reg = reg
	if reg == nil {
		e.em = nil
		return
	}
	e.em = &execMetrics{
		hops: reg.Counter("adapcc_chunk_hops_total",
			"chunk-hop wire deliveries"),
		bytes: reg.Counter("adapcc_collective_wire_bytes_total",
			"bytes serialised across chunk hops"),
		hopLatency: reg.Histogram("adapcc_chunk_hop_seconds",
			"virtual launch-to-arrival latency per chunk hop",
			metrics.DurationBuckets),
		deadlines: reg.Counter("adapcc_chunk_deadlines_total",
			"chunk transfers aborted by their delivery deadline"),
		retransmits: reg.Counter("adapcc_chunk_retransmits_total",
			"chunks re-posted after a missed deadline"),
		collectives: reg.Counter("adapcc_collectives_total",
			"completed collectives"),
		opTime: reg.Histogram("adapcc_collective_seconds",
			"virtual elapsed time per completed collective",
			metrics.DurationBuckets),
	}
}

// recordFinish emits the op-completion metrics: collective counters plus
// per-flow chunk-progress counters, labelled by sub-collective and flow id.
func (r *opRun) recordFinish(elapsed time.Duration) {
	em := r.ex.em
	if em == nil {
		return
	}
	now := r.engine().Now()
	em.collectives.Inc(now)
	em.opTime.ObserveDuration(now, elapsed)
	for _, sub := range r.subs {
		for fi := range sub.flows {
			fr := &sub.flows[fi]
			if fr.delivered == 0 {
				continue
			}
			r.ex.reg.Counter("adapcc_flow_chunks_total",
				"end-to-end chunk deliveries per flow",
				"sub", strconv.Itoa(sub.idx),
				"flow", strconv.Itoa(int(fr.f.ID))).
				Add(now, float64(fr.delivered))
		}
	}
}

package collective

import (
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// dualNICServer builds an A100 server with two 100 Gbps NICs (one per NUMA
// node), the multi-rail configuration AdapCC's NIC rotation exploits.
func dualNICServer() topology.ServerSpec {
	return topology.ServerSpec{
		GPUs: []topology.GPUModel{topology.GPUA100, topology.GPUA100, topology.GPUA100, topology.GPUA100},
		NICs: []topology.NICSpec{
			{BandwidthBps: topology.Gbps(100)},
			{BandwidthBps: topology.Gbps(100)},
		},
		NICNuma: []int{0, 1},
	}
}

// TestMultiNICSpreadsSubCollectives: with two NICs per server, the M
// parallel sub-collectives must use both rails (the per-sub NIC rotation),
// roughly doubling cross-server AllReduce bandwidth vs a single rail.
func TestMultiNICSpreadsSubCollectives(t *testing.T) {
	dual, err := topology.NewCluster(topology.TransportRDMA, dualNICServer(), dualNICServer())
	if err != nil {
		t.Fatal(err)
	}
	single, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 32 << 20

	elapsed := func(c *topology.Cluster) (Result, *synth.Result, *env) {
		e := newEnv(t, c)
		res, err := synth.Synthesize(e.costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		inputs := pattern(res.Strategy.Participants(), elemsOf(bytes))
		var got Result
		if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
			t.Fatal(err)
		}
		e.eng.Run()
		return got, res, e
	}

	dualRes, dualStrat, dualEnv := elapsed(dual)
	singleRes, _, _ := elapsed(single)

	t.Logf("dual-NIC %v vs single-NIC %v", dualRes.Elapsed, singleRes.Elapsed)
	if float64(dualRes.Elapsed) > 0.7*float64(singleRes.Elapsed) {
		t.Errorf("two rails (%v) should be well under one rail (%v)", dualRes.Elapsed, singleRes.Elapsed)
	}

	// Both NICs of server 0 must have carried data.
	g := dualEnv.fab.Graph()
	sw, _ := g.Switch()
	for nic := 0; nic < 2; nic++ {
		nid, ok := g.NICOfServer(0, nic)
		if !ok {
			t.Fatal("missing NIC")
		}
		eid, ok := g.EdgeBetween(nid, sw)
		if !ok {
			t.Fatal("missing uplink")
		}
		if dualEnv.fab.BytesDelivered(eid) == 0 {
			t.Errorf("NIC %d uplink idle: sub-collectives did not spread across rails", nic)
		}
	}
	_ = dualStrat
}

// TestFragmentedAllocationEndToEnd reproduces the Sec. II-A motivation: a
// cloud allocation without NVLink. Collectives must still be correct over
// the PCIe host path, and AdapCC must not lose to NCCL's fallback.
func TestFragmentedAllocationEndToEnd(t *testing.T) {
	c, err := topology.NewCluster(topology.TransportRDMA,
		cluster.FragmentedA100Server(4), cluster.FragmentedA100Server(4))
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 8 << 20
	e := newEnv(t, c)
	res, err := synth.Synthesize(e.costs, synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := pattern(res.Strategy.Participants(), elemsOf(bytes))
	want := sumOfActive(inputs, nil, elemsOf(bytes))
	var got Result
	if err := e.ex.Run(Op{Strategy: res.Strategy, Inputs: inputs, OnDone: func(r Result) { got = r }}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	for _, r := range res.Strategy.Participants() {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("rank %d got no output on fragmented topology", r)
		}
		for i := 0; i < len(want); i += 211 {
			if !approxEqual(out[i], want[i]) {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
	// Everything crossed the PCIe host path: no NVLink edges exist.
	for _, edge := range e.fab.Graph().Edges() {
		if edge.Type == topology.LinkNVLink {
			t.Fatal("fragmented topology has NVLink edges")
		}
	}
}

package collective_test

import (
	"fmt"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// TestExecutionMatrix sweeps the full cross-product of primitive × cluster
// shape × transport × M through synthesis and execution, verifying data
// correctness everywhere. This is the integration surface where routing,
// chunking, stream assignment and aggregation interact.
func TestExecutionMatrix(t *testing.T) {
	shapes := []struct {
		name  string
		build func(tp topology.Transport) (*topology.Cluster, error)
	}{
		{"1x4", func(tp topology.Transport) (*topology.Cluster, error) {
			return cluster.Homogeneous(tp, 1, 4)
		}},
		{"2x2", func(tp topology.Transport) (*topology.Cluster, error) {
			return cluster.Homogeneous(tp, 2, 2)
		}},
		{"3x2", func(tp topology.Transport) (*topology.Cluster, error) {
			return cluster.Homogeneous(tp, 3, 2)
		}},
		{"a2v2", func(tp topology.Transport) (*topology.Cluster, error) {
			return topology.NewCluster(tp, cluster.A100Server(2), cluster.V100Server(2))
		}},
		{"frag", func(tp topology.Transport) (*topology.Cluster, error) {
			return topology.NewCluster(tp, cluster.FragmentedA100Server(2), cluster.A100Server(2))
		}},
	}
	prims := []strategy.Primitive{strategy.Reduce, strategy.Broadcast, strategy.AllReduce, strategy.AlltoAll}
	transports := []topology.Transport{topology.TransportRDMA, topology.TransportTCP}
	const bytes = 2 << 20

	for _, sh := range shapes {
		for _, tp := range transports {
			for _, prim := range prims {
				for _, m := range []int{1, 4} {
					name := fmt.Sprintf("%s/%v/%v/M%d", sh.name, tp, prim, m)
					t.Run(name, func(t *testing.T) {
						c, err := sh.build(tp)
						if err != nil {
							t.Fatal(err)
						}
						env, err := backend.NewEnv(c, 13)
						if err != nil {
							t.Fatal(err)
						}
						req := synth.Request{Primitive: prim, Bytes: bytes, Root: -1, M: m}
						if prim == strategy.Reduce || prim == strategy.Broadcast {
							req.Root = 0
						}
						res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), req)
						if err != nil {
							t.Fatal(err)
						}
						if err := res.Strategy.Validate(env.Graph); err != nil {
							t.Fatalf("synthesised strategy invalid: %v", err)
						}
						ranks := env.AllRanks()
						inputs := backend.MakeInputs(ranks, bytes)
						var got collective.Result
						err = env.Exec.Run(collective.Op{
							Strategy: res.Strategy,
							Inputs:   inputs,
							OnDone:   func(r collective.Result) { got = r },
						})
						if err != nil {
							t.Fatal(err)
						}
						env.Engine.Run()
						if got.Outputs == nil {
							t.Fatal("collective never completed")
						}
						if got.Elapsed <= 0 {
							t.Fatal("no elapsed time")
						}
						verify(t, prim, ranks, inputs, got)
					})
				}
			}
		}
	}
}

// verify checks the primitive's postcondition on real data.
func verify(t *testing.T, prim strategy.Primitive, ranks []int, inputs map[int][]float32, got collective.Result) {
	t.Helper()
	n := len(inputs[ranks[0]])
	const eps = 1e-2
	switch prim {
	case strategy.Reduce, strategy.AllReduce:
		want := make([]float32, n)
		for _, in := range inputs {
			for i := range in {
				want[i] += in[i]
			}
		}
		check := ranks
		if prim == strategy.Reduce {
			check = []int{0}
		}
		for _, r := range check {
			out := got.Outputs[r]
			if out == nil {
				t.Fatalf("rank %d missing output", r)
			}
			for i := 0; i < n; i += 1 + n/31 {
				if d := out[i] - want[i]; d > eps || d < -eps {
					t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
				}
			}
		}
	case strategy.Broadcast:
		want := inputs[0]
		for _, r := range ranks {
			out := got.Outputs[r]
			if out == nil {
				t.Fatalf("rank %d missing output", r)
			}
			for i := 0; i < n; i += 1 + n/31 {
				if out[i] != want[i] {
					t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
				}
			}
		}
	case strategy.AlltoAll:
		// Slot k of sender j lands in receiver k's slot j; the undivided
		// tail stays local.
		block := n / len(ranks)
		for ki, k := range ranks {
			out := got.Outputs[k]
			if out == nil {
				t.Fatalf("rank %d missing output", k)
			}
			for ji, j := range ranks {
				src := inputs[j][ki*block : (ki+1)*block]
				dst := out[ji*block : (ji+1)*block]
				for i := 0; i < block; i += 1 + block/7 {
					if dst[i] != src[i] {
						t.Fatalf("recv %d block %d elem %d = %v, want %v", k, ji, i, dst[i], src[i])
					}
				}
			}
			tailStart := block * len(ranks)
			for i := tailStart; i < n; i++ {
				if out[i] != inputs[k][i] {
					t.Fatalf("rank %d tail elem %d = %v, want local %v", k, i, out[i], inputs[k][i])
				}
			}
		}
	}
}

// TestExecutionMatrixSingleStream re-runs a slice of the matrix in
// single-channel mode (one logical stream per device, the NCCL model):
// correctness must be unaffected, and on per-stream-capped TCP links the
// run must be slower than the multi-stream equivalent.
func TestExecutionMatrixSingleStream(t *testing.T) {
	const bytes = 2 << 20
	for _, prim := range []strategy.Primitive{strategy.Reduce, strategy.AllReduce, strategy.AlltoAll} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			run := func(single bool) (collective.Result, map[int][]float32, []int) {
				c, err := cluster.Homogeneous(topology.TransportTCP, 2, 2)
				if err != nil {
					t.Fatal(err)
				}
				env, err := backend.NewEnv(c, 13)
				if err != nil {
					t.Fatal(err)
				}
				req := synth.Request{Primitive: prim, Bytes: bytes, Root: -1, M: 4}
				if prim == strategy.Reduce {
					req.Root = 0
				}
				res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), req)
				if err != nil {
					t.Fatal(err)
				}
				ranks := env.AllRanks()
				inputs := backend.MakeInputs(ranks, bytes)
				var got collective.Result
				err = env.Exec.Run(collective.Op{
					Strategy:     res.Strategy,
					Inputs:       inputs,
					SingleStream: single,
					OnDone:       func(r collective.Result) { got = r },
				})
				if err != nil {
					t.Fatal(err)
				}
				env.Engine.Run()
				if got.Outputs == nil {
					t.Fatal("collective never completed")
				}
				return got, inputs, ranks
			}
			single, inputs, ranks := run(true)
			multi, _, _ := run(false)
			verify(t, prim, ranks, inputs, single)
			// One channel can never beat parallel streams; for the
			// tree-based primitives, whose M contexts share links, the
			// cap binds and it is strictly slower. (AlltoAll at this
			// size bottlenecks on the NIC aggregate either way.)
			if single.Elapsed < multi.Elapsed {
				t.Errorf("single-channel (%v) beat multi-stream (%v)", single.Elapsed, multi.Elapsed)
			}
			if prim != strategy.AlltoAll && single.Elapsed == multi.Elapsed {
				t.Errorf("single-channel not slower than multi-stream (%v) on capped TCP", multi.Elapsed)
			}
		})
	}
}

package collective_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// TestExecutorTraceCoversCollective attaches a tracer, runs an AllReduce
// and checks the recorded timeline is a faithful Chrome trace: transfers on
// link tracks, kernels on rank tracks, every event inside the measured
// elapsed window, and serialisable JSON.
func TestExecutorTraceCoversCollective(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	env.Exec.SetTracer(tr)
	if env.Exec.Tracer() != tr {
		t.Fatal("tracer not attached")
	}

	const bytesTotal = 8 << 20
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.AllReduce, Bytes: bytesTotal, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done collective.Result
	err = env.Exec.Run(collective.Op{
		Strategy: res.Strategy,
		Inputs:   backend.MakeInputs(env.AllRanks(), bytesTotal),
		OnDone:   func(r collective.Result) { done = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if done.Outputs == nil {
		t.Fatal("collective never finished")
	}

	var nets, kernels, milestones int
	for _, ev := range tr.Events() {
		switch ev.Cat {
		case "net":
			nets++
			if ev.PID != collective.NetPID {
				t.Errorf("net event on pid %d, want %d", ev.PID, collective.NetPID)
			}
			if ev.Dur <= 0 {
				t.Errorf("net event %q has non-positive duration %v", ev.Name, ev.Dur)
			}
		case "kernel":
			kernels++
			if ev.PID == collective.NetPID {
				t.Errorf("kernel event %q on the network pid", ev.Name)
			}
		case "milestone":
			milestones++
		}
		if ev.Start < 0 || ev.Start+ev.Dur > done.Elapsed {
			t.Errorf("event %q [%v +%v] outside the collective window %v",
				ev.Name, ev.Start, ev.Dur, done.Elapsed)
		}
	}
	if nets == 0 {
		t.Error("no transfer events recorded")
	}
	if kernels == 0 {
		t.Error("no kernel events recorded")
	}
	if milestones == 0 {
		t.Error("no root-finalisation milestones recorded")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(out) <= tr.Len() {
		t.Errorf("JSON has %d records for %d events; metadata labels missing", len(out), tr.Len())
	}

	// Detaching stops recording.
	env.Exec.SetTracer(nil)
	n := tr.Len()
	err = env.Exec.Run(collective.Op{
		Strategy: res.Strategy,
		Inputs:   backend.MakeInputs(env.AllRanks(), bytesTotal),
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if tr.Len() != n {
		t.Error("detached tracer kept recording")
	}
}

// TestTraceTransferBytesAccount sums the traced bytes on each first-hop
// link of a Reduce and checks the total equals what the strategy actually
// moves — the trace is complete, not sampled.
func TestTraceTransferBytesAccount(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	env.Exec.SetTracer(tr)

	const bytesTotal = 4 << 20
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.Reduce, Bytes: bytesTotal, Root: 0, M: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = env.Exec.Run(collective.Op{
		Strategy: res.Strategy,
		Inputs:   backend.MakeInputs(env.AllRanks(), bytesTotal),
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()

	// Every strategy flow is a single NVLink hop here (star onto rank 0),
	// so total traced bytes = sum over flows of the partition bytes.
	var want int64
	for _, sc := range res.Strategy.SubCollectives {
		want += sc.Bytes * int64(len(sc.Flows))
	}
	var got int64
	for _, ev := range tr.Events() {
		if ev.Cat != "net" {
			continue
		}
		got += ev.Args["bytes"].(int64)
	}
	if got != want {
		t.Errorf("traced %d bytes on links, strategy moves %d", got, want)
	}
}

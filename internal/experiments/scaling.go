package experiments

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// Scaling is an extension beyond the paper's figures: strong scaling of
// AllReduce algorithm bandwidth as the job grows from 2 to 8 four-GPU
// servers, comparing AdapCC's searched strategies against both of NCCL's
// algorithms (dual complementary trees and the ring). It makes the regimes
// behind Figs. 11–12 visible in one sweep: trees flatten as interior
// servers saturate, rings hold per-NIC load constant, and AdapCC's
// M-parallel hierarchy tracks the best of both while profiling keeps it
// honest on heterogeneous extensions. It also exposes a real limit of the
// paper's search space: at 8 homogeneous servers the ring overtakes,
// because the Eq. 1-6 model prices deep rotated-chain ensembles (which
// would match the ring) conservatively and the search therefore avoids
// them — see EXPERIMENTS.md D6.
func Scaling(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "scaling",
		Title:   "AllReduce algorithm bandwidth vs job scale (GB/s) [extension]",
		Columns: []string{"AdapCC", "NCCL-tree", "NCCL-ring"},
	}
	scales := []int{2, 4, 6, 8}
	if cfg.Quick {
		scales = []int{2, 4}
	}
	for _, servers := range scales {
		cl, err := cluster.Homogeneous(topology.TransportRDMA, servers, 4)
		if err != nil {
			return nil, err
		}

		adapccBw, err := scalingAdapCC(cl, cfg)
		if err != nil {
			return nil, err
		}
		treeBw, err := scalingNCCL(cl, cfg, false)
		if err != nil {
			return nil, err
		}
		ringBw, err := scalingNCCL(cl, cfg, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d servers (%d GPUs)", servers, servers*4),
			adapccBw/1e9, treeBw/1e9, ringBw/1e9)
	}
	// The heterogeneous counterpoint: one ring hop over a 50 Gbps V100
	// NIC gates the whole ring, while AdapCC's profiled hierarchy routes
	// around it — the regime the paper actually evaluates.
	heter, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, err
	}
	adapccBw, err := scalingAdapCC(heter, cfg)
	if err != nil {
		return nil, err
	}
	treeBw, err := scalingNCCL(heter, cfg, false)
	if err != nil {
		return nil, err
	}
	ringBw, err := scalingNCCL(heter, cfg, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("6 servers heterogeneous", adapccBw/1e9, treeBw/1e9, ringBw/1e9)

	t.Note("extension sweep (not a paper figure): AdapCC leads through the paper's 6-server scale and always beats NCCL's tree")
	t.Note("heterogeneous row: one V100 NIC hop gates the whole ring, while profiling routes AdapCC around it")
	t.Note("at 8 homogeneous servers the ring overtakes: the paper's candidate family prices deep rotated-chain ensembles conservatively (a forced M=8 server-chain *measures* ~6.7 GB/s here, above the ring, but Eq. 1-6 overpredicts its cost ~2.9x, so the search avoids it)")
	return t, nil
}

func scalingAdapCC(cl *topology.Cluster, cfg Config) (float64, error) {
	env, err := backend.NewEnv(cl, cfg.Seed)
	if err != nil {
		return 0, err
	}
	a, err := core.New(env)
	if err != nil {
		return 0, err
	}
	a.Setup(func() {})
	env.Engine.Run()
	elapsed, err := backend.Measure(env, a, backend.Request{
		Primitive: strategy.AllReduce, Bytes: cfg.Bytes, Root: -1, Mode: cfg.mode(),
	})
	if err != nil {
		return 0, err
	}
	return collective.AlgoBandwidthBps(cfg.Bytes, elapsed), nil
}

func scalingNCCL(cl *topology.Cluster, cfg Config, ring bool) (float64, error) {
	env, err := backend.NewEnv(cl, cfg.Seed)
	if err != nil {
		return 0, err
	}
	n := nccl.New(env)
	var st *strategy.Strategy
	if ring {
		st, err = n.RingStrategy(strategy.AllReduce, cfg.Bytes, env.AllRanks(), -1)
	} else {
		st, err = n.BuildStrategy(strategy.AllReduce, cfg.Bytes, env.AllRanks(), -1)
	}
	if err != nil {
		return 0, err
	}
	var elapsed time.Duration
	op := collective.Op{
		Strategy:     st,
		Mode:         cfg.mode(),
		SingleStream: true,
		OnDone:       func(r collective.Result) { elapsed = r.Elapsed },
	}
	if cfg.DenseData {
		op.Inputs = backend.MakeInputs(env.AllRanks(), cfg.Bytes)
	}
	err = env.Exec.Run(op)
	if err != nil {
		return 0, err
	}
	env.Engine.Run()
	return collective.AlgoBandwidthBps(cfg.Bytes, elapsed), nil
}

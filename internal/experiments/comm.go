package experiments

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/blink"
	"adapcc/internal/baseline/msccl"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// systemNames is the column order of the Fig. 11–13 benchmarks.
var systemNames = []string{"AdapCC", "MSCCL", "NCCL", "Blink"}

// makeBackend builds one communication system over a fresh environment.
// AdapCC runs its full init+setup pipeline (detection, profiling,
// synthesis) before measurement, exactly as adapcc.init()/setup() would.
func makeBackend(name string, env *backend.Env) (backend.Backend, error) {
	switch name {
	case "AdapCC":
		a, err := core.New(env)
		if err != nil {
			return nil, err
		}
		done := false
		a.Setup(func() { done = true })
		env.Engine.Run()
		if !done {
			return nil, fmt.Errorf("experiments: AdapCC setup incomplete")
		}
		return a, nil
	case "MSCCL":
		return msccl.New(env), nil
	case "NCCL":
		return nccl.New(env), nil
	case "Blink":
		return blink.New(env), nil
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", name)
	}
}

// algoBandwidthGBps measures one collective's algorithm bandwidth on a
// fresh environment (GB/s). A NaN-signalling -1 is returned for
// unsupported combinations (e.g. Blink multi-server AlltoAll).
func algoBandwidthGBps(cfg Config, bc cluster.Case, system string, prim strategy.Primitive) (float64, error) {
	cl, err := bc.Build(topology.TransportRDMA)
	if err != nil {
		return 0, err
	}
	env, err := backend.NewEnv(cl, cfg.Seed)
	if err != nil {
		return 0, err
	}
	b, err := makeBackend(system, env)
	if err != nil {
		return 0, err
	}
	bw, err := backend.AlgoBandwidth(env, b, backend.Request{
		Primitive: prim,
		Bytes:     cfg.Bytes,
		Root:      rootFor(prim),
		Mode:      cfg.mode(),
	})
	if err != nil {
		return -1, nil // unsupported combination: hole in the figure
	}
	return bw / 1e9, nil
}

func rootFor(p strategy.Primitive) int {
	if p == strategy.Reduce || p == strategy.Broadcast {
		return 0
	}
	return -1
}

// benchCases returns the Fig. 11–13 x-axis, trimmed in Quick mode.
func benchCases(cfg Config) []cluster.Case {
	cases := cluster.BenchmarkCases()
	if cfg.Quick {
		return []cluster.Case{cases[0], cases[3]}
	}
	return cases
}

// commFigure runs one of the Fig. 11–13 benchmarks.
func commFigure(cfg Config, id, title string, prim strategy.Primitive, systems []string) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{ID: id, Title: title, Columns: append([]string(nil), systems...)}
	speedups := make(map[string][]float64)
	for _, bc := range benchCases(cfg) {
		row := make([]float64, 0, len(systems))
		byName := make(map[string]float64, len(systems))
		for _, sys := range systems {
			bw, err := algoBandwidthGBps(cfg, bc, sys, prim)
			if err != nil {
				return nil, fmt.Errorf("%s %s %s: %w", id, bc.Name, sys, err)
			}
			row = append(row, bw)
			byName[sys] = bw
		}
		t.AddRow(bc.Name, row...)
		for _, sys := range systems[1:] {
			if byName[sys] > 0 && byName["AdapCC"] > 0 {
				speedups[sys] = append(speedups[sys], byName["AdapCC"]/byName[sys])
			}
		}
	}
	for _, sys := range systems[1:] {
		if g := geomean(speedups[sys]); g > 0 {
			t.Note("AdapCC vs %s: %.2fx geomean speedup", sys, g)
		}
	}
	t.Note("algorithm bandwidth in GB/s, %d MiB payload, M=4; -1 marks unsupported combinations", cfg.Bytes>>20)
	return t, nil
}

// Fig11Reduce reproduces Fig. 11: Reduce algorithm bandwidth per GPU-count
// case for AdapCC, MSCCL, NCCL and Blink.
func Fig11Reduce(cfg Config) (*Table, error) {
	return commFigure(cfg, "fig11", "Reduce algorithm bandwidth (GB/s)", strategy.Reduce, systemNames)
}

// Fig12AllReduce reproduces Fig. 12: AllReduce algorithm bandwidth.
func Fig12AllReduce(cfg Config) (*Table, error) {
	return commFigure(cfg, "fig12", "AllReduce algorithm bandwidth (GB/s)", strategy.AllReduce, systemNames)
}

// Fig13AlltoAll reproduces Fig. 13: AlltoAll algorithm bandwidth (the
// paper compares NCCL and MSCCL only; Blink has no multi-server AlltoAll).
func Fig13AlltoAll(cfg Config) (*Table, error) {
	return commFigure(cfg, "fig13", "AlltoAll algorithm bandwidth (GB/s)", strategy.AlltoAll,
		[]string{"AdapCC", "MSCCL", "NCCL"})
}

// Fig19aParallelism reproduces Fig. 19a: AdapCC's communication speed-up
// over NCCL as the number of parallel sub-collectives M varies, on the
// full testbed with VGG16-sized tensors.
func Fig19aParallelism(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "fig19a",
		Title:   "AllReduce speed-up over NCCL vs parallelization degree M",
		Columns: []string{"speedup", "gpu-streams"},
	}
	cl, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		return nil, err
	}

	envN, err := backend.NewEnv(cl, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ncclTime, err := backend.Measure(envN, nccl.New(envN), backend.Request{
		Primitive: strategy.AllReduce, Bytes: cfg.Bytes, Root: -1, Mode: cfg.mode(),
	})
	if err != nil {
		return nil, err
	}

	ms := []int{1, 2, 4, 8}
	if cfg.Quick {
		ms = []int{1, 4}
	}
	for _, m := range ms {
		env, err := backend.NewEnv(cl, cfg.Seed)
		if err != nil {
			return nil, err
		}
		a, err := core.New(env, core.WithExactM(m))
		if err != nil {
			return nil, err
		}
		a.Setup(func() {})
		env.Engine.Run()
		elapsed, err := backend.Measure(env, a, backend.Request{
			Primitive: strategy.AllReduce, Bytes: cfg.Bytes, Root: -1, Mode: cfg.mode(),
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("M=%d", m), float64(ncclTime)/float64(elapsed), float64(2*m))
	}
	t.Note("NCCL reference time %v; gpu-streams counts reduce+broadcast streams per GPU (resource cost of larger M)", ncclTime.Round(time.Microsecond))
	t.Note("the paper picks M=4 as the speed-up/GPU-resource sweet spot")
	return t, nil
}

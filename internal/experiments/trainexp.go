package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cloudtrace"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

// trainEnv bundles a training run's pieces.
type trainEnv struct {
	cluster *topology.Cluster
	env     *backend.Env
	adapcc  *core.AdapCC // nil for baseline runs
}

func newTrainEnv(cl *topology.Cluster, seed int64, withAdapCC bool) (*trainEnv, error) {
	env, err := backend.NewEnv(cl, seed)
	if err != nil {
		return nil, err
	}
	te := &trainEnv{cluster: cl, env: env}
	if withAdapCC {
		a, err := core.New(env)
		if err != nil {
			return nil, err
		}
		done := false
		a.Setup(func() { done = true })
		env.Engine.Run()
		if !done {
			return nil, fmt.Errorf("experiments: AdapCC setup incomplete")
		}
		te.adapcc = a
	}
	return te, nil
}

// runTrainingWith executes a trainer to completion on the env's engine.
func runTrainingWith(te *trainEnv, w train.Workload, driver train.Driver, iterations int, opts ...train.Option) (*train.Stats, error) {
	tr, err := train.New(w, te.env, te.cluster, driver, iterations, opts...)
	if err != nil {
		return nil, err
	}
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	te.env.Engine.Run()
	if stats == nil {
		return nil, fmt.Errorf("experiments: training never completed")
	}
	return stats, nil
}

// trainOnce runs one (cluster, workload, backend) training combination and
// returns the stats plus the driver used.
func trainOnce(cfg Config, cl *topology.Cluster, w train.Workload, system string, iters, batch int, inf *train.Interference, transportSensitiveSeed int64) (*train.Stats, train.Driver, error) {
	withAdapCC := system == "AdapCC"
	te, err := newTrainEnv(cl, cfg.Seed+transportSensitiveSeed, withAdapCC)
	if err != nil {
		return nil, nil, err
	}
	var driver train.Driver
	switch system {
	case "AdapCC":
		if w.Collective == strategy.AllReduce {
			d, err := train.NewAdaptiveDriver(te.adapcc, te.env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil, nil)
			if err != nil {
				return nil, nil, err
			}
			driver = d
		} else {
			// MoE AlltoAll: relay control drives AllReduce; the
			// AlltoAll path uses AdapCC's synthesised strategies
			// under the usual readiness barrier.
			driver = train.NewWaitAllDriver(te.env, train.AdapCCPlanner(te.adapcc), w.Collective, w.ParamBytes, te.env.AllRanks())
		}
	case "NCCL":
		driver = train.NewWaitAllDriver(te.env, train.NCCLPlanner(te.env), w.Collective, w.ParamBytes, te.env.AllRanks())
	case "MSCCL":
		driver = train.NewWaitAllDriver(te.env, train.MSCCLPlanner(te.env), w.Collective, w.ParamBytes, te.env.AllRanks())
	case "Blink":
		driver = train.NewWaitAllDriver(te.env, train.BlinkPlanner(te.env), w.Collective, w.ParamBytes, te.env.AllRanks())
	default:
		return nil, nil, fmt.Errorf("experiments: unknown training system %q", system)
	}
	stats, err := runTrainingWith(te, w, driver, iters,
		train.WithBatchPerGPU(batch),
		train.WithInterference(inf),
		train.WithSeed(cfg.Seed))
	return stats, driver, err
}

// Fig03bWaitRatio reproduces Fig. 3b: the CDF of the wait-time ratio
// (straggler wait over collective execution time) when training GPT-2 with
// a wait-for-all backend, heterogeneous vs homogeneous.
func Fig03bWaitRatio(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(200)
	t := &Table{
		ID:      "fig3b",
		Title:   "GPT-2 wait-time ratio CDF (wait / AllReduce execution)",
		Columns: []string{"p10", "p25", "p50", "p75", "p90"},
	}
	settings := []struct {
		label string
		build func() (*topology.Cluster, error)
	}{
		{"heterogeneous (2xV100+2xA100)", func() (*topology.Cluster, error) {
			return cluster.Heterogeneous(topology.TransportRDMA, 4)
		}},
		{"homogeneous (4xA100)", func() (*topology.Cluster, error) {
			return cluster.Homogeneous(topology.TransportRDMA, 4, 4)
		}},
	}
	for _, s := range settings {
		cl, err := s.build()
		if err != nil {
			return nil, err
		}
		stats, _, err := trainOnce(cfg, cl, train.GPT2(), "NCCL", iters, 16, nil, 0)
		if err != nil {
			return nil, err
		}
		ratios := stats.WaitRatios()
		t.AddRow(s.label,
			percentile(ratios, 10), percentile(ratios, 25), percentile(ratios, 50),
			percentile(ratios, 75), percentile(ratios, 90))
	}
	t.Note("paper medians: >0.23 heterogeneous, >0.10 homogeneous; the simulated fabric is faster than the testbed, inflating the ratio (see EXPERIMENTS.md)")
	return t, nil
}

// Fig14TrainingComm reproduces Fig. 14: per-iteration communication time
// (straggler wait + execution) for the four workloads under
// homogeneous/heterogeneous clusters and RDMA/TCP transports, AdapCC vs
// NCCL.
func Fig14TrainingComm(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(50)
	t := &Table{
		ID:      "fig14",
		Title:   "Per-iteration communication time (ms), AdapCC vs NCCL",
		Columns: []string{"AdapCC", "NCCL", "speedup"},
	}
	workloads := train.Workloads()
	if cfg.Quick {
		workloads = []train.Workload{train.VGG16(), train.MoE()}
	}
	transports := []topology.Transport{topology.TransportRDMA, topology.TransportTCP}
	for _, w := range workloads {
		for _, hetero := range []bool{false, true} {
			for _, tp := range transports {
				var (
					cl  *topology.Cluster
					err error
				)
				if hetero {
					cl, err = cluster.Heterogeneous(tp, 4)
				} else {
					cl, err = cluster.Homogeneous(tp, 4, 4)
				}
				if err != nil {
					return nil, err
				}
				setting := "homo"
				if hetero {
					setting = "heter"
				}
				label := fmt.Sprintf("%s/%s/%s", w.Name, setting, tp)
				if w.Collective == strategy.AlltoAll && hetero {
					// The MoE run in the paper uses the homogeneous
					// servers for expert parallelism.
					continue
				}
				aStats, _, err := trainOnce(cfg, cl, w, "AdapCC", iters, 0, nil, int64(len(label)))
				if err != nil {
					return nil, fmt.Errorf("%s adapcc: %w", label, err)
				}
				nStats, _, err := trainOnce(cfg, cl, w, "NCCL", iters, 0, nil, int64(len(label)))
				if err != nil {
					return nil, fmt.Errorf("%s nccl: %w", label, err)
				}
				a := aStats.MeanComm().Seconds() * 1e3
				n := nStats.MeanComm().Seconds() * 1e3
				t.AddRow(label, a, n, n/a)
			}
		}
	}
	t.Note("paper: 1.12-1.30x homogeneous, up to 2x heterogeneous; TCP gains come from parallel sub-collectives vs NCCL's ~20 Gbps single channel")
	return t, nil
}

// Fig15RelayProbability reproduces Fig. 15: how often each worker is
// chosen as a relay during VGG16 training, heterogeneous vs homogeneous.
func Fig15RelayProbability(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(100)
	t := &Table{
		ID:      "fig15",
		Title:   "Per-rank relay probability during VGG16 training",
		Columns: []string{"relay-prob", "gpu-kind"},
	}
	run := func(label string, cl *topology.Cluster) error {
		te, err := newTrainEnv(cl, cfg.Seed, true)
		if err != nil {
			return err
		}
		d, err := train.NewAdaptiveDriver(te.adapcc, te.env.AllRanks(), strategy.AllReduce, train.VGG16().ParamBytes, nil, nil)
		if err != nil {
			return err
		}
		if _, err := runTrainingWith(te, train.VGG16(), d, iters, train.WithSeed(cfg.Seed)); err != nil {
			return err
		}
		st := d.Coordinator().Stats()
		for _, r := range te.env.AllRanks() {
			model, err := cl.ModelOfRank(r)
			if err != nil {
				return err
			}
			kind := 0.0 // A100
			if model == topology.GPUV100 {
				kind = 1.0
			}
			t.AddRow(fmt.Sprintf("%s rank %2d (%s)", label, r, model), st.RelayProbability(r), kind)
		}
		return nil
	}
	heter, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, err
	}
	if err := run("heter", heter); err != nil {
		return nil, err
	}
	homo, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		return nil, err
	}
	if err := run("homo", homo); err != nil {
		return nil, err
	}
	t.Note("paper: lower-compute GPUs (V100) are selected far more often in the heterogeneous case; homogeneous selection is spread evenly")
	return t, nil
}

// batchSweep runs a throughput-vs-batch-size sweep for one workload.
func batchSweep(cfg Config, id string, w train.Workload, batches []int) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(40)
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s training throughput (samples/s) vs per-GPU batch", w.Name),
		Columns: []string{"AdapCC", "NCCL", "improvement%"},
	}
	cl, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, err
	}
	if cfg.Quick && len(batches) > 2 {
		batches = []int{batches[0], batches[len(batches)-1]}
	}
	for _, b := range batches {
		aStats, _, err := trainOnce(cfg, cl, w, "AdapCC", iters, b, nil, int64(b))
		if err != nil {
			return nil, err
		}
		nStats, _, err := trainOnce(cfg, cl, w, "NCCL", iters, b, nil, int64(b))
		if err != nil {
			return nil, err
		}
		a, n := aStats.Throughput(), nStats.Throughput()
		t.AddRow(fmt.Sprintf("batch %d", b), a, n, (a/n-1)*100)
	}
	t.Note("larger batches widen compute-time variance, where adaptive relay control gains most (paper: up to 31%% GPT-2, 20%% ViT)")
	return t, nil
}

// Fig16GPT2Batch reproduces Fig. 16.
func Fig16GPT2Batch(cfg Config) (*Table, error) {
	return batchSweep(cfg, "fig16", train.GPT2(), []int{8, 16, 24, 32})
}

// Fig17ViTBatch reproduces Fig. 17.
func Fig17ViTBatch(cfg Config) (*Table, error) {
	return batchSweep(cfg, "fig17", train.ViT(), []int{64, 128, 192, 256})
}

// Fig18aVolatile reproduces Fig. 18a: training makespan under volatile
// cloud bandwidth, with the trace's excursions amplified by x. AdapCC
// reprofiles every 500 iterations and reconstructs its graphs; NCCL keeps
// its static graph.
func Fig18aVolatile(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(2000)
	t := &Table{
		ID:      "fig18a",
		Title:   "Training makespan (s) under amplified bandwidth volatility",
		Columns: []string{"AdapCC", "NCCL", "reduction%"},
	}
	amps := []float64{0, 0.3, 0.6, 0.9}
	if cfg.Quick {
		amps = []float64{0, 0.6}
	}
	for _, x := range amps {
		makespan := func(system string) (time.Duration, error) {
			cl, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
			if err != nil {
				return 0, err
			}
			te, err := newTrainEnv(cl, cfg.Seed, system == "AdapCC")
			if err != nil {
				return 0, err
			}
			traces := cloudtrace.PerServerTraces(cfg.Seed, len(cl.Servers), x, cloudtrace.GenOptions{
				Duration: 12 * time.Hour,
				Step:     30 * time.Second,
			})
			app := cloudtrace.ApplyPerServer(te.env.Fabric, traces)
			defer app.Stop()

			var driver train.Driver
			topts := []train.Option{train.WithSeed(cfg.Seed)}
			if system == "AdapCC" {
				d, err := train.NewAdaptiveDriver(te.adapcc, te.env.AllRanks(), strategy.AllReduce, train.VGG16().ParamBytes, nil, nil)
				if err != nil {
					return 0, err
				}
				driver = d
				topts = append(topts, train.WithReprofile(500, func(done func()) {
					te.adapcc.Reconstruct(func(time.Duration) { done() })
				}))
			} else {
				driver = train.NewWaitAllDriver(te.env, train.NCCLPlanner(te.env), strategy.AllReduce, train.VGG16().ParamBytes, te.env.AllRanks())
			}
			stats, err := runTrainingWith(te, train.VGG16(), driver, iters, topts...)
			if err != nil {
				return 0, err
			}
			return stats.Makespan, nil
		}
		a, err := makespan("AdapCC")
		if err != nil {
			return nil, err
		}
		n, err := makespan("NCCL")
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("x=%.1f", x), a.Seconds(), n.Seconds(), (1-a.Seconds()/n.Seconds())*100)
	}
	t.Note("profiling period 500 iterations; paper: AdapCC's makespan reduction grows as the network becomes more unstable")
	return t, nil
}

// Fig18bInterference reproduces Fig. 18b: communication speed-up over
// NCCL as the co-located online-serving CPU interference level grows.
func Fig18bInterference(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(60)
	t := &Table{
		ID:      "fig18b",
		Title:   "Communication speed-up over NCCL vs CPU interference level",
		Columns: []string{"AdapCC-ms", "NCCL-ms", "speedup"},
	}
	levels := []float64{0, 100, 200, 300, 400}
	if cfg.Quick {
		levels = []float64{0, 400}
	}
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		return nil, err
	}
	for _, level := range levels {
		comm := func(system string) (time.Duration, error) {
			inf := train.NewInterference(cl, level, rand.New(rand.NewSource(cfg.Seed)))
			stats, _, err := trainOnce(cfg, cl, train.VGG16(), system, iters, 0, inf, int64(level))
			if err != nil {
				return 0, err
			}
			return stats.MeanComm(), nil
		}
		a, err := comm("AdapCC")
		if err != nil {
			return nil, err
		}
		n, err := comm("NCCL")
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("level %.0f%%", level),
			a.Seconds()*1e3, n.Seconds()*1e3, float64(n)/float64(a))
	}
	t.Note("0-2 GPUs per server host online tasks, re-chosen every 5 min; paper reports up to 1.49x at high interference")
	return t, nil
}

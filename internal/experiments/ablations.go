package experiments

import (
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// Ablations isolates the contribution of individual design choices
// (DESIGN.md Sec. 4) as slowdown factors against the full system. The
// training-loop ablation (ski rental vs always-wait/always-proceed) lives
// in BenchmarkAblationRelayPolicy; everything executor-priced is here so
// `adapcc-bench -experiment ablations` covers it without a bench run.
func Ablations(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "ablations",
		Title:   "Design-choice ablations (slowdown vs the full system)",
		Columns: []string{"slowdown-x"},
	}
	heter, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, err
	}

	exec := func(mutate func(*synth.Request)) (time.Duration, error) {
		env, err := backend.NewEnv(heter, cfg.Seed)
		if err != nil {
			return 0, err
		}
		req := synth.Request{Primitive: strategy.AllReduce, Bytes: cfg.Bytes, Root: -1}
		if mutate != nil {
			mutate(&req)
		}
		res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), req)
		if err != nil {
			return 0, err
		}
		var elapsed time.Duration
		op := collective.Op{
			Strategy: res.Strategy,
			Mode:     cfg.mode(),
			OnDone:   func(r collective.Result) { elapsed = r.Elapsed },
		}
		if cfg.DenseData {
			op.Inputs = backend.MakeInputs(env.AllRanks(), cfg.Bytes)
		}
		err = env.Exec.Run(op)
		if err != nil {
			return 0, err
		}
		env.Engine.Run()
		return elapsed, nil
	}

	full, err := exec(nil)
	if err != nil {
		return nil, err
	}
	fixed8M, err := exec(func(r *synth.Request) { r.ChunkGrid = []int64{8 << 20} })
	if err != nil {
		return nil, err
	}
	t.AddRow("fixed 8MB chunks (Blink) vs searched", float64(fixed8M)/float64(full))

	agg, err := exec(func(r *synth.Request) { r.ForceVariant = "hier-star" })
	if err != nil {
		return nil, err
	}
	noAgg, err := exec(func(r *synth.Request) { r.ForceVariant = "flat-star" })
	if err != nil {
		return nil, err
	}
	t.AddRow("no aggregation control (flat star)", float64(noAgg)/float64(agg))

	// Profiled vs nominal synthesis with one silently degraded server —
	// through the full core pipeline, so profiling also steers the root
	// plans away from the degraded ports (that placement, not the α–β
	// numbers alone, is most of the win).
	homo4, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		return nil, err
	}
	degraded := func(skipProfiling bool) (time.Duration, error) {
		env, err := backend.NewEnv(homo4, cfg.Seed)
		if err != nil {
			return 0, err
		}
		env.Fabric.SetServerNetworkScale(2, 0.3)
		var copts []core.Option
		if skipProfiling {
			copts = append(copts, core.WithSkipProfiling())
		}
		a, err := core.New(env, copts...)
		if err != nil {
			return 0, err
		}
		a.Setup(func() {})
		env.Engine.Run()
		return backend.Measure(env, a, backend.Request{
			Primitive: strategy.AllReduce, Bytes: cfg.Bytes, Root: -1, Mode: cfg.mode(),
		})
	}
	profiled, err := degraded(false)
	if err != nil {
		return nil, err
	}
	nominal, err := degraded(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("nominal labels w/ degraded server", float64(nominal)/float64(profiled))

	// NCCL's own design space: dual trees vs ring at four servers.
	ncclAlgo := func(ring bool) (time.Duration, error) {
		c, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
		if err != nil {
			return 0, err
		}
		env, err := backend.NewEnv(c, cfg.Seed)
		if err != nil {
			return 0, err
		}
		n := nccl.New(env)
		var st *strategy.Strategy
		if ring {
			st, err = n.RingStrategy(strategy.AllReduce, cfg.Bytes, env.AllRanks(), -1)
		} else {
			st, err = n.BuildStrategy(strategy.AllReduce, cfg.Bytes, env.AllRanks(), -1)
		}
		if err != nil {
			return 0, err
		}
		var elapsed time.Duration
		op := collective.Op{
			Strategy:     st,
			Mode:         cfg.mode(),
			SingleStream: true,
			OnDone:       func(r collective.Result) { elapsed = r.Elapsed },
		}
		if cfg.DenseData {
			op.Inputs = backend.MakeInputs(env.AllRanks(), cfg.Bytes)
		}
		err = env.Exec.Run(op)
		if err != nil {
			return 0, err
		}
		env.Engine.Run()
		return elapsed, nil
	}
	tree, err := ncclAlgo(false)
	if err != nil {
		return nil, err
	}
	ring, err := ncclAlgo(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("NCCL dual trees vs ring (4 servers)", float64(tree)/float64(ring))

	t.Note("values > 1 mean the ablated variant is slower (the design choice pays off)")
	t.Note("ski-rental vs always-wait/always-proceed needs the training loop: go test -bench=BenchmarkAblationRelayPolicy")
	return t, nil
}

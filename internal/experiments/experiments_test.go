package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

// quickCfg shrinks each experiment enough for CI while keeping its shape
// assertions meaningful.
func quickCfg() Config {
	return Config{Seed: 3, Bytes: 32 << 20, Quick: true}
}

func run(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := Run(id, quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("table id %q, want %q", tab.ID, id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var sb strings.Builder
	tab.Format(&sb)
	t.Logf("\n%s", sb.String())
	return tab
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3b", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18a", "fig18b", "fig19a", "fig19b",
		"fig19c", "fig19d", "summary", "ablations", "scaling",
		"metrics",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	tab := run(t, "fig1")
	for _, r := range tab.Rows {
		if r.Values[0] > 100 || r.Values[0] < 60 {
			t.Errorf("%s bandwidth %.1f%% outside (60,100]", r.Label, r.Values[0])
		}
		if r.Values[1] < 100 || r.Values[1] > 120 {
			t.Errorf("%s latency %.1f%% outside [100,120)", r.Label, r.Values[1])
		}
	}
}

func TestFig3bShape(t *testing.T) {
	tab := run(t, "fig3b")
	heterMed, ok1 := tab.Value("heterogeneous (2xV100+2xA100)", "p50")
	homoMed, ok2 := tab.Value("homogeneous (4xA100)", "p50")
	if !ok1 || !ok2 {
		t.Fatal("missing medians")
	}
	if heterMed <= homoMed {
		t.Errorf("hetero median %.2f not above homo %.2f", heterMed, homoMed)
	}
}

func TestFig12Shape(t *testing.T) {
	tab := run(t, "fig12")
	for _, r := range tab.Rows {
		adapcc, _ := tab.Value(r.Label, "AdapCC")
		for _, sys := range []string{"NCCL", "MSCCL", "Blink"} {
			v, ok := tab.Value(r.Label, sys)
			if !ok || v < 0 {
				continue
			}
			// MSCCL's pareto algorithms can tie AdapCC on small
			// homogeneous cases (the paper's low end is 1.02x);
			// require no more than 3% regression per case.
			if adapcc < v*0.97 {
				t.Errorf("%s: AdapCC %.2f below %s %.2f", r.Label, adapcc, sys, v)
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tab := run(t, "fig13")
	for _, r := range tab.Rows {
		adapcc, _ := tab.Value(r.Label, "AdapCC")
		ncclV, _ := tab.Value(r.Label, "NCCL")
		if adapcc <= ncclV {
			t.Errorf("%s: AdapCC %.2f not above NCCL %.2f", r.Label, adapcc, ncclV)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	tab := run(t, "fig14")
	for _, r := range tab.Rows {
		speedup := r.Values[2]
		if speedup < 1.0 {
			t.Errorf("%s: AdapCC slower than NCCL (%.2fx)", r.Label, speedup)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	tab := run(t, "fig15")
	// In the heterogeneous rows, V100 ranks must relay more often than
	// A100 ranks on average.
	var v100, a100 []float64
	for _, r := range tab.Rows {
		if !strings.HasPrefix(r.Label, "heter") {
			continue
		}
		if r.Values[1] == 1 {
			v100 = append(v100, r.Values[0])
		} else {
			a100 = append(a100, r.Values[0])
		}
	}
	if len(v100) == 0 || len(a100) == 0 {
		t.Fatal("missing GPU kinds in fig15")
	}
	if mean(v100) <= mean(a100) {
		t.Errorf("V100 relay probability %.3f not above A100 %.3f", mean(v100), mean(a100))
	}
}

func TestFig16Fig17Shape(t *testing.T) {
	for _, id := range []string{"fig16", "fig17"} {
		tab := run(t, id)
		best := 0.0
		for _, r := range tab.Rows {
			if r.Values[2] < 0 {
				t.Errorf("%s %s: AdapCC throughput below NCCL (%.1f%%)", id, r.Label, r.Values[2])
			}
			if r.Values[2] > best {
				best = r.Values[2]
			}
		}
		// AdapCC's throughput advantage must be material somewhere in
		// the sweep. (The paper's monotone growth with batch size
		// depends on its compute/communication balance; see
		// EXPERIMENTS.md for the deviation discussion.)
		if best < 2 {
			t.Errorf("%s: best improvement %.1f%% too small", id, best)
		}
	}
}

func TestFig18aShape(t *testing.T) {
	tab := run(t, "fig18a")
	base := tab.Rows[0].Values[2]
	worst := tab.Rows[len(tab.Rows)-1].Values[2]
	if worst < base {
		t.Errorf("makespan reduction should grow with volatility: x=0 %.1f%% vs max %.1f%%", base, worst)
	}
	for _, r := range tab.Rows {
		if r.Values[2] < -2 {
			t.Errorf("%s: AdapCC made things worse (%.1f%%)", r.Label, r.Values[2])
		}
	}
}

func TestFig18bShape(t *testing.T) {
	tab := run(t, "fig18b")
	for _, r := range tab.Rows {
		if r.Values[2] < 1.0 {
			t.Errorf("%s: AdapCC slower than NCCL (%.2fx)", r.Label, r.Values[2])
		}
	}
}

func TestFig19aShape(t *testing.T) {
	tab := run(t, "fig19a")
	m1, _ := tab.Value("M=1", "speedup")
	m4, _ := tab.Value("M=4", "speedup")
	if m4 <= m1 {
		t.Errorf("M=4 speedup %.2f not above M=1 %.2f", m4, m1)
	}
	if m4 < 1.0 {
		t.Errorf("M=4 not faster than NCCL (%.2f)", m4)
	}
}

func TestFig19bShape(t *testing.T) {
	tab := run(t, "fig19b")
	adapcc, _ := tab.Value("AdapCC", "final")
	ncclV, _ := tab.Value("NCCL", "final")
	ncclGraph, _ := tab.Value("AdapCC-nccl-graph", "final")
	async, _ := tab.Value("Relay Async", "final")
	if d := adapcc - ncclV; d > 0.015 || d < -0.015 {
		t.Errorf("AdapCC final %.3f diverges from NCCL %.3f", adapcc, ncclV)
	}
	if d := adapcc - ncclGraph; d > 0.015 || d < -0.015 {
		t.Errorf("aggregation order changed convergence: %.3f vs %.3f", adapcc, ncclGraph)
	}
	if async >= adapcc-0.01 {
		t.Errorf("Relay Async %.3f should converge below AdapCC %.3f", async, adapcc)
	}
}

func TestFig19cShape(t *testing.T) {
	tab := run(t, "fig19c")
	for _, r := range tab.Rows {
		saved := r.Values[5]
		if saved < 60 || saved > 95 {
			t.Errorf("%s: saved %.0f%% outside the paper's 74-91%% band (±tolerance)", r.Label, saved)
		}
	}
}

func TestFig19dShape(t *testing.T) {
	tab := run(t, "fig19d")
	p90, ok := tab.Value("p90", "latency-ms")
	if !ok {
		t.Fatal("missing p90")
	}
	if p90 > 1.8 {
		t.Errorf("p90 RPC latency %.2f ms, paper: 90%% under 1.5 ms", p90)
	}
}

func TestSummaryShape(t *testing.T) {
	tab := run(t, "summary")
	for _, r := range tab.Rows {
		for i, sys := range []string{"vs NCCL", "vs MSCCL"} {
			if r.Values[i] <= 1.0 {
				t.Errorf("%s %s: geomean speedup %.2f not above 1", r.Label, sys, r.Values[i])
			}
		}
	}
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func TestFormatCSV(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "t", Columns: []string{"a", "b"},
	}
	tab.AddRow("row,with,commas", 1.5, 2)
	tab.Note("ignored in csv")
	var sb strings.Builder
	if err := tab.FormatCSV(&sb); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(sb.String()))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("CSV output unparseable: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want header+1", len(recs))
	}
	if recs[0][0] != "label" || recs[0][2] != "b" {
		t.Errorf("bad header %v", recs[0])
	}
	if recs[1][0] != "row,with,commas" || recs[1][1] != "1.5" {
		t.Errorf("bad row %v", recs[1])
	}
	if strings.Contains(sb.String(), "ignored") {
		t.Error("notes leaked into CSV")
	}
}

func TestAblationsAllPayOff(t *testing.T) {
	tab := run(t, "ablations")
	if len(tab.Rows) != 4 {
		t.Fatalf("%d ablation rows, want 4", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Values[0] <= 1 {
			t.Errorf("%s: slowdown %.3fx — the ablated variant should be slower", r.Label, r.Values[0])
		}
	}
}

func TestScalingShape(t *testing.T) {
	tab, err := Run("scaling", Config{Seed: 3, Bytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d scale points, want 4 homogeneous + 1 heterogeneous", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		adapcc, tree, ring := r.Values[0], r.Values[1], r.Values[2]
		// AdapCC never loses to the tree (the paper's NCCL comparison).
		if adapcc < tree {
			t.Errorf("%s: AdapCC %.2f below the NCCL tree %.2f", r.Label, adapcc, tree)
		}
		// Within the paper's tested scale (<= 6 servers) AdapCC leads the
		// ring too; at 8 homogeneous servers the ring overtakes (D6).
		if i != 3 && adapcc < ring {
			t.Errorf("%s: AdapCC %.2f below the ring %.2f inside the paper's regime", r.Label, adapcc, ring)
		}
	}
	// Trees flatten with scale; rings hold up better at 8 servers.
	at8 := tab.Rows[3]
	if at8.Values[2] <= at8.Values[1] {
		t.Errorf("at 8 servers the ring (%.2f) should beat the tree (%.2f)", at8.Values[2], at8.Values[1])
	}
	// Heterogeneity inverts it: the slowest NIC gates the whole ring.
	heter := tab.Rows[4]
	if heter.Values[0] < 1.2*heter.Values[2] {
		t.Errorf("heterogeneous: AdapCC %.2f should clearly beat the gated ring %.2f", heter.Values[0], heter.Values[2])
	}
}

func TestMetricsReportShape(t *testing.T) {
	tab := run(t, "metrics")
	for _, r := range tab.Rows {
		gbps, wireMB, hops := r.Values[0], r.Values[1], r.Values[2]
		p50, p99, kernels := r.Values[3], r.Values[4], r.Values[5]
		if gbps <= 0 || wireMB <= 0 || hops <= 0 || kernels <= 0 {
			t.Errorf("%s: non-positive figures %v", r.Label, r.Values)
		}
		if p50 <= 0 || p99 < p50 {
			t.Errorf("%s: hop latency quantiles inverted (p50=%.1fus p99=%.1fus)", r.Label, p50, p99)
		}
	}
	// More payload means more wire traffic.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if last.Values[1] <= first.Values[1] {
		t.Errorf("wire traffic did not grow with payload: %.1f MB vs %.1f MB",
			first.Values[1], last.Values[1])
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Invariant 7 at the highest level: same seed, same table, cell for
	// cell — across an executor-driven figure and a training-driven one.
	for _, id := range []string{"fig1", "fig12", "fig3b"} {
		a, err := Run(id, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ (%d vs %d)", id, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			if a.Rows[i].Label != b.Rows[i].Label {
				t.Fatalf("%s row %d: labels differ", id, i)
			}
			for j := range a.Rows[i].Values {
				if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
					t.Errorf("%s cell (%s, %s): %v vs %v — not deterministic",
						id, a.Rows[i].Label, a.Columns[j],
						a.Rows[i].Values[j], b.Rows[i].Values[j])
				}
			}
		}
	}
}

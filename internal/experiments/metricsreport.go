package experiments

import (
	"fmt"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/metrics"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// MetricsReport summarises AllReduce runs from the virtual-time metrics
// registry rather than the executor's return value: the wire traffic,
// chunk-hop latency distribution and device activity the observability
// layer recorded while each collective ran. It doubles as an end-to-end
// exercise of the registry wiring — wire bytes must reconcile with the
// executor's own StatsReport, cell for cell.
func MetricsReport(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "metrics",
		Title:   "AllReduce observability summary (metrics registry)",
		Columns: []string{"GB/s", "wire-MB", "hops", "hop-p50-us", "hop-p99-us", "kernels", "gpu-busy-ms"},
	}
	sizes := []int64{1 << 20, 8 << 20, cfg.Bytes}
	if cfg.Quick {
		sizes = []int64{1 << 20, cfg.Bytes}
	}
	cl, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		return nil, err
	}
	for _, bytes := range sizes {
		env, err := backend.NewEnv(cl, cfg.Seed)
		if err != nil {
			return nil, err
		}
		a, err := core.New(env)
		if err != nil {
			return nil, err
		}
		done := false
		a.Setup(func() { done = true })
		env.Engine.Run()
		if !done {
			return nil, fmt.Errorf("metrics: AdapCC setup incomplete")
		}

		// Install the registry after set-up so the report covers exactly
		// one collective, not the profiling sweeps.
		reg := metrics.New()
		a.SetMetrics(reg)
		var res collective.Result
		elapsed, err := backend.Measure(env, a, backend.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Mode: cfg.mode(),
			OnDone: func(r collective.Result) { res = r },
		})
		if err != nil {
			return nil, err
		}

		snap := reg.Snapshot()
		wire := famTotal(snap, "adapcc_link_bytes_total")
		if int64(wire) != res.Stats.BytesOnWire {
			return nil, fmt.Errorf("metrics: link bytes %g do not reconcile with StatsReport %d",
				wire, res.Stats.BytesOnWire)
		}
		var p50, p99 float64
		if f, ok := snap.Family("adapcc_chunk_hop_seconds"); ok && len(f.Series) > 0 {
			p50 = f.Series[0].Quantile(0.50) * 1e6
			p99 = f.Series[0].Quantile(0.99) * 1e6
		}
		t.AddRow(fmt.Sprintf("%d MiB", bytes>>20),
			collective.AlgoBandwidthBps(bytes, elapsed)/1e9,
			wire/1e6,
			famTotal(snap, "adapcc_chunk_hops_total"),
			p50,
			p99,
			famTotal(snap, "adapcc_gpu_kernels_total"),
			famTotal(snap, "adapcc_gpu_busy_seconds_total")*1e3,
		)
	}
	t.Note("registry installed after set-up, so each row covers exactly one collective")
	t.Note("wire-MB is read from adapcc_link_bytes_total and verified against the executor's StatsReport")
	return t, nil
}

// famTotal sums a family's series in a snapshot, 0 when absent.
func famTotal(snap metrics.Snapshot, name string) float64 {
	f, ok := snap.Family(name)
	if !ok {
		return 0
	}
	return f.Total()
}

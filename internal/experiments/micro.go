package experiments

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cloudtrace"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

// Fig01CloudTrace reproduces Fig. 1: bandwidth and latency between two
// cloud instances over a 6-hour window, as multiplicative deviations from
// peak.
func Fig01CloudTrace(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "fig1",
		Title:   "Cloud instance-pair network performance over 6 hours",
		Columns: []string{"bandwidth%", "latency%"},
	}
	tr := cloudtrace.Generate(cfg.Seed, cloudtrace.GenOptions{})
	step := 30 * time.Minute
	if cfg.Quick {
		step = 2 * time.Hour
	}
	for at := time.Duration(0); at <= tr.Duration(); at += step {
		s := tr.At(at)
		t.AddRow(fmt.Sprintf("t=%v", at), s.BandwidthScale*100, s.LatencyScale*100)
	}
	st := tr.Summarize()
	t.Note("worst bandwidth %.0f%% of peak (paper: degradation up to 34%%), worst latency %.0f%% (paper: up to 17%%)",
		st.MinBandwidthScale*100, st.MaxLatencyScale*100)
	return t, nil
}

// Fig19bAccuracy reproduces Fig. 19b: VGG16 top-1 accuracy on the
// downscaled ImageNet under four arms — AdapCC (phase-1+phase-2), NCCL,
// AdapCC on the graph dumped from NCCL, and Relay Async (late gradients
// dropped).
func Fig19bAccuracy(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(4000)
	t := &Table{
		ID:      "fig19b",
		Title:   "VGG16 top-1 accuracy (downscaled ImageNet)",
		Columns: []string{"25%", "50%", "75%", "final"},
	}
	sim := train.DefaultAccuracySim()

	// Gradient-quality sequences. AdapCC, NCCL and AdapCC-nccl-graph all
	// aggregate every worker's gradient each iteration (phase 2 restores
	// consistency; a different aggregation order does not change the
	// sum): q = 1 throughout. The Relay Async arm's qualities come from
	// an actual training run with phase 2 disabled — each iteration's
	// fraction of aggregated workers is whatever the coordinator's
	// decisions produced.
	full := make([]float64, iters)
	for i := range full {
		full[i] = 1
	}
	async, err := relayAsyncQualities(cfg, iters)
	if err != nil {
		return nil, err
	}
	arms := []struct {
		label     string
		qualities []float64
		seed      int64
	}{
		{"AdapCC", full, cfg.Seed + 1},
		{"NCCL", full, cfg.Seed + 2},
		{"AdapCC-nccl-graph", full, cfg.Seed + 3},
		{"Relay Async", async, cfg.Seed + 4},
	}
	for _, arm := range arms {
		curve := sim.Curve(arm.qualities, arm.seed)
		t.AddRow(arm.label,
			curve[len(curve)/4], curve[len(curve)/2], curve[3*len(curve)/4],
			train.FinalAccuracy(curve, len(curve)/20))
	}
	t.Note("paper: AdapCC matches NCCL's accuracy exactly and a different aggregation order (nccl graph) does not affect convergence; dropping relay tensors (Relay Async) hurts it")
	return t, nil
}

// relayAsyncQualities trains VGG16 on the heterogeneous cluster with
// phase 2 disabled and records each iteration's aggregated-worker
// fraction, tiling the observed sequence to the requested length.
func relayAsyncQualities(cfg Config, iters int) ([]float64, error) {
	heter, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, err
	}
	te, err := newTrainEnv(heter, cfg.Seed, true)
	if err != nil {
		return nil, err
	}
	d, err := train.NewAdaptiveDriver(te.adapcc, te.env.AllRanks(), strategy.AllReduce, train.VGG16().ParamBytes, nil, nil)
	if err != nil {
		return nil, err
	}
	d.DropLateTensors = true
	observe := cfg.iters(120)
	var qualities []float64
	if _, err := runTrainingWith(te, train.VGG16(), d, observe,
		train.WithSeed(cfg.Seed),
		train.WithOnIteration(func(i int, _ train.IterStats) {
			qualities = append(qualities, d.Quality())
		})); err != nil {
		return nil, err
	}
	out := make([]float64, iters)
	for i := range out {
		out[i] = qualities[i%len(qualities)]
	}
	return out, nil
}

// Fig19cReconstruction reproduces Fig. 19c: the cost of adopting a new
// communication graph at different job scales — AdapCC's live
// reconstruction (profile + solve + context set-up, no restart) vs
// checkpointing and relaunching an NCCL job — plus the constant topology
// inference time.
func Fig19cReconstruction(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "fig19c",
		Title:   "Graph reconstruction overhead (s) vs NCCL restart",
		Columns: []string{"AdapCC", "profile", "solve", "setup", "NCCL-restart", "saved%"},
	}
	scales := []int{2, 4, 6}
	if cfg.Quick {
		scales = []int{2, 6}
	}
	var inferTime time.Duration
	for _, servers := range scales {
		var specs []topology.ServerSpec
		for i := 0; i < servers; i++ {
			if i < 4 {
				specs = append(specs, cluster.A100Server(4))
			} else {
				specs = append(specs, cluster.V100Server(4))
			}
		}
		cl, err := topology.NewCluster(topology.TransportRDMA, specs...)
		if err != nil {
			return nil, err
		}
		env, err := backend.NewEnv(cl, cfg.Seed)
		if err != nil {
			return nil, err
		}
		a, err := core.New(env)
		if err != nil {
			return nil, err
		}
		inferTime = a.InitTime()

		var overhead time.Duration
		a.Reconstruct(func(d time.Duration) { overhead = d })
		env.Engine.Run()
		// Solving happens lazily per collective: force the main
		// strategy synthesis the reconstruction exists for.
		if _, err := a.Strategy(strategy.AllReduce, 512<<20, nil, nil, -1); err != nil {
			return nil, err
		}
		prof, solve, setup := a.Overheads()
		total := overhead + solve

		restart := ncclRestartCost(servers)
		t.AddRow(fmt.Sprintf("%d servers (%d GPUs)", servers, servers*4),
			total.Seconds(), prof.Seconds(), solve.Seconds(), setup.Seconds(),
			restart.Seconds(), (1-total.Seconds()/restart.Seconds())*100)
	}
	t.Note("topology inference runs once at job start, concurrently on each server: %v (paper: 1.2 s, constant in scale)", inferTime.Round(10*time.Millisecond))
	t.Note("paper: AdapCC saves 74-91%% of the NCCL restart cost")
	return t, nil
}

// ncclRestartCost models what adopting a new graph costs an NCCL job:
// checkpoint the model, tear down, relaunch the process group, rebuild the
// NCCL communicator, restore the model (Sec. II-B / VI-E).
func ncclRestartCost(servers int) time.Duration {
	const (
		checkpoint   = 800 * time.Millisecond // ~500 MB model to shared storage
		restore      = 600 * time.Millisecond
		processGroup = 1200 * time.Millisecond
		perServer    = 450 * time.Millisecond // rendezvous + communicator init scale with servers
	)
	return checkpoint + restore + processGroup + time.Duration(servers)*perServer
}

// Fig19dRPCDelay reproduces Fig. 19d: the CDF of the relay-negotiation RPC
// latency between workers and the coordinator across VGG16 training
// iterations on six servers.
func Fig19dRPCDelay(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	iters := cfg.iters(1000)
	cl, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		return nil, err
	}
	te, err := newTrainEnv(cl, cfg.Seed, true)
	if err != nil {
		return nil, err
	}
	d, err := train.NewAdaptiveDriver(te.adapcc, te.env.AllRanks(), strategy.AllReduce, train.VGG16().ParamBytes, nil, nil)
	if err != nil {
		return nil, err
	}
	if _, err := runTrainingWith(te, train.VGG16(), d, iters, train.WithSeed(cfg.Seed)); err != nil {
		return nil, err
	}
	samples := d.Coordinator().Stats().RPCSamples
	ms := make([]float64, len(samples))
	for i, s := range samples {
		ms[i] = s.Seconds() * 1e3
	}
	t := &Table{
		ID:      "fig19d",
		Title:   "Relay-negotiation RPC latency CDF (ms)",
		Columns: []string{"latency-ms"},
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		t.AddRow(fmt.Sprintf("p%.0f", p), percentile(ms, p))
	}
	under := 0
	for _, v := range ms {
		if v < 1.5 {
			under++
		}
	}
	t.Note("%d samples over %d iterations; %.0f%% below 1.5 ms (paper: 90%%)",
		len(samples), iters, 100*float64(under)/float64(len(ms)))
	return t, nil
}

// SummarySpeedups prints the Sec. VI-C headline numbers: geometric-mean
// speedups of AdapCC over each baseline, per primitive.
func SummarySpeedups(cfg Config) (*Table, error) {
	cfg = cfg.defaults()
	t := &Table{
		ID:      "summary",
		Title:   "Geometric-mean Algo.bw speedup of AdapCC over baselines",
		Columns: []string{"vs NCCL", "vs MSCCL", "vs Blink"},
	}
	figs := []struct {
		label string
		run   Runner
	}{
		{"Reduce (fig11)", Fig11Reduce},
		{"AllReduce (fig12)", Fig12AllReduce},
		{"AlltoAll (fig13)", Fig13AlltoAll},
	}
	for _, f := range figs {
		tab, err := f.run(cfg)
		if err != nil {
			return nil, err
		}
		speedup := func(sys string) float64 {
			var ratios []float64
			for _, r := range tab.Rows {
				a, okA := tab.Value(r.Label, "AdapCC")
				b, okB := tab.Value(r.Label, sys)
				if okA && okB && a > 0 && b > 0 {
					ratios = append(ratios, a/b)
				}
			}
			return geomean(ratios)
		}
		t.AddRow(f.label, speedup("NCCL"), speedup("MSCCL"), speedup("Blink"))
	}
	t.Note("paper geomeans: Reduce 1.17x/1.19x/1.46x, AllReduce 1.19x/1.15x/1.49x, AlltoAll 1.31x/1.14x/- (vs NCCL/MSCCL/Blink)")
	return t, nil
}

package experiments

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	tests := []struct {
		give []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{[]float64{3}, 3},
		{[]float64{1, -2}, 0}, // non-positive input is rejected
	}
	for _, tt := range tests {
		if got := geomean(tt.give); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("geomean(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

// Property: the geomean lies between min and max of the inputs.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), 0.0
		for i, r := range raw {
			vals[i] = float64(r%1000) + 1
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		g := geomean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, tt := range tests {
		if got := percentile(vals, tt.p); got != tt.want {
			t.Errorf("percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	if vals[0] != 5 {
		t.Error("percentile mutated its input")
	}
}

func TestTableFormatAndValue(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "demo",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("row1", 1.5, 2.5)
	tab.AddRow("row2", 3, 4)
	tab.Note("hello %d", 7)

	var sb strings.Builder
	tab.Format(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "row1", "row2", "hello 7", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}

	if v, ok := tab.Value("row2", "b"); !ok || v != 4 {
		t.Errorf("Value(row2,b) = %v,%v", v, ok)
	}
	if _, ok := tab.Value("row2", "nope"); ok {
		t.Error("unknown column found")
	}
	if _, ok := tab.Value("nope", "a"); ok {
		t.Error("unknown row found")
	}
}

func TestConfigDefaultsAndIters(t *testing.T) {
	c := Config{}.defaults()
	if c.Seed == 0 || c.Bytes == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if got := (Config{}).iters(100); got != 100 {
		t.Errorf("iters default = %d", got)
	}
	if got := (Config{Iterations: 7}).iters(100); got != 7 {
		t.Errorf("iters override = %d", got)
	}
	if got := (Config{Quick: true}).iters(100); got != 10 {
		t.Errorf("quick iters = %d", got)
	}
	if got := (Config{Quick: true}).iters(20); got != 5 {
		t.Errorf("quick floor = %d", got)
	}
}

// Package experiments reproduces every figure of the paper's evaluation
// (Sec. VI): each runner regenerates one figure's series as a printable
// table, running the same workloads through AdapCC and the baselines over
// the simulated testbed. Absolute numbers come from the simulator, so the
// claims under test are the *shapes* — who wins, by what rough factor, and
// where crossovers fall. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"adapcc/internal/payload"
)

// Table is one reproduced figure: labelled rows of named columns.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one line of a table.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row (values must match Columns).
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	width := 28
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(w, "%-*s", width+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%14.4g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FormatCSV renders the table as CSV: a header of "label" plus the column
// names, then one record per row. Notes are omitted — CSV output is for
// plotting pipelines, which EXPERIMENTS.md's commentary does not feed.
func (t *Table) FormatCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"label"}, t.Columns...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Value looks up a cell by row label and column name.
func (t *Table) Value(label, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == label && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}

// Config parameterises experiment runs.
type Config struct {
	// Seed drives every random stream.
	Seed int64
	// Bytes is the collective payload for the micro-benchmarks
	// (default 32 MiB; the paper uses 256 MiB and notes that "similar
	// performance is observed in various data sizes").
	Bytes int64
	// Iterations scales training-loop experiments (default per
	// experiment; Quick divides further).
	Iterations int
	// Quick shrinks workloads for test runs.
	Quick bool
	// DenseData forces real float32 tensors through the timing sweeps.
	// The default (false) runs them with phantom payloads — provenance
	// metadata instead of element data — which is safe because dense and
	// phantom runs of the same seed produce bit-identical timelines (see
	// DESIGN.md "Data plane vs timing plane"). Correctness tests always
	// use dense payloads regardless of this knob.
	DenseData bool
}

// mode maps the DenseData knob to the payload mode of timing sweeps.
func (c Config) mode() payload.Mode {
	if c.DenseData {
		return payload.Dense
	}
	return payload.Phantom
}

func (c Config) defaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Bytes <= 0 {
		c.Bytes = 32 << 20
	}
	return c
}

// iters picks an iteration count honouring overrides and Quick mode.
func (c Config) iters(def int) int {
	n := def
	if c.Iterations > 0 {
		n = c.Iterations
	}
	if c.Quick && n > def/10 {
		n = def / 10
		if n < 5 {
			n = 5
		}
	}
	return n
}

// Runner produces one figure's table.
type Runner func(Config) (*Table, error)

// Registry maps experiment ids to runners, in presentation order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig1", Fig01CloudTrace},
		{"fig3b", Fig03bWaitRatio},
		{"fig11", Fig11Reduce},
		{"fig12", Fig12AllReduce},
		{"fig13", Fig13AlltoAll},
		{"fig14", Fig14TrainingComm},
		{"fig15", Fig15RelayProbability},
		{"fig16", Fig16GPT2Batch},
		{"fig17", Fig17ViTBatch},
		{"fig18a", Fig18aVolatile},
		{"fig18b", Fig18bInterference},
		{"fig19a", Fig19aParallelism},
		{"fig19b", Fig19bAccuracy},
		{"fig19c", Fig19cReconstruction},
		{"fig19d", Fig19dRPCDelay},
		{"summary", SummarySpeedups},
		{"ablations", Ablations},
		{"scaling", Scaling},
		{"metrics", MetricsReport},
	}
}

// Run looks up and executes one experiment by id.
func Run(id string, cfg Config) (*Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have: %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists the registered experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// geomean computes the geometric mean of positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sumLog += math.Log(v)
	}
	return math.Exp(sumLog / float64(len(vals)))
}

// percentile returns the p-th percentile (0..100) of vals.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

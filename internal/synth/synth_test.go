package synth

import (
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func costsFor(t *testing.T, c *topology.Cluster) *Costs {
	t.Helper()
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	return NewCosts(g, nil)
}

func testbedCosts(t *testing.T) *Costs {
	t.Helper()
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	return costsFor(t, c)
}

const MB = 1 << 20

func TestSynthesizeAllPrimitivesValid(t *testing.T) {
	costs := testbedCosts(t)
	for _, p := range []strategy.Primitive{
		strategy.Reduce, strategy.Broadcast, strategy.AllReduce, strategy.AlltoAll,
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := Synthesize(costs, Request{Primitive: p, Bytes: 64 * MB, Root: rootFor(p)})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Strategy.Validate(costs.Graph()); err != nil {
				t.Fatalf("synthesised invalid strategy: %v", err)
			}
			if res.Eval.Time <= 0 {
				t.Fatal("non-positive predicted time")
			}
			if got := len(res.Strategy.SubCollectives); got < 1 || got > DefaultM {
				t.Errorf("sub-collectives = %d, want 1..%d (M is a cap)", got, DefaultM)
			}
			if res.SolveTime <= 0 {
				t.Error("no solve time accounted")
			}
		})
	}
}

func rootFor(p strategy.Primitive) int {
	if p == strategy.AllReduce || p == strategy.AlltoAll {
		return -1
	}
	return 0
}

func TestEvaluateMatchesHandComputation(t *testing.T) {
	// 2 A100 GPUs, one NVLink edge: α = 2 µs, 150 GB/s.
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs := costsFor(t, c)
	g := costs.Graph()
	a, _ := g.GPUByRank(1)
	b, _ := g.GPUByRank(0)
	s := &strategy.Strategy{
		Primitive:  strategy.Reduce,
		TotalBytes: 64 * MB,
		SubCollectives: []strategy.SubCollective{{
			ID: 0, Bytes: 64 * MB, ChunkBytes: 4 * MB, Root: 0,
			Flows: []strategy.Flow{{ID: 0, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{a, b}}},
		}},
	}
	ev, err := Evaluate(costs, s)
	if err != nil {
		t.Fatal(err)
	}
	// Per chunk: α (2 µs) + launch (4 µs) + transfer at 150 GB/s; the
	// aggregation kernel (launch + 2·C at 600 GB/s) is an extra pipeline
	// stage that charges the first chunk's latency once.
	chunkSec := float64(4*MB) / 150e9
	tChunk := 2*time.Microsecond + 4*time.Microsecond + time.Duration(chunkSec*float64(time.Second))
	kernelSec := float64(2*4*MB) / 600e9
	aggKernel := 4*time.Microsecond + time.Duration(kernelSec*float64(time.Second))
	want := tChunk + aggKernel + 16*tChunk // h_dst + ceil(S/C)·bottleneck
	diff := ev.Time - want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("Evaluate = %v, hand computation = %v", ev.Time, want)
	}
	if ev.Subs[0].Chunks != 16 {
		t.Errorf("chunks = %d, want 16", ev.Subs[0].Chunks)
	}
}

func TestChunkSizeTradeoff(t *testing.T) {
	// On a high-latency TCP link, tiny chunks pay α per chunk and huge
	// chunks lose pipelining; the middle of the grid must win.
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	costs := costsFor(t, c)
	timeFor := func(chunk int64) time.Duration {
		res, err := Synthesize(costs, Request{
			Primitive: strategy.Reduce, Bytes: 64 * MB, Root: 0, M: 1,
			ChunkGrid: []int64{chunk},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Eval.Time
	}
	tiny := timeFor(16 << 10)
	mid := timeFor(2 * MB)
	huge := timeFor(64 * MB)
	if mid >= tiny {
		t.Errorf("2MB chunks (%v) not better than 16KB (%v)", mid, tiny)
	}
	if mid >= huge {
		t.Errorf("2MB chunks (%v) not better than one 64MB chunk (%v)", mid, huge)
	}
}

func TestSearchedBeatsForcedVariants(t *testing.T) {
	costs := testbedCosts(t)
	best, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: 256 * MB, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"hier-star", "flat-star", "server-chain", "server-tree"} {
		res, err := Synthesize(costs, Request{
			Primitive: strategy.Reduce, Bytes: 256 * MB, Root: 0, ForceVariant: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		if best.Eval.Time > res.Eval.Time {
			t.Errorf("full search (%v) worse than forced %s (%v)", best.Eval.Time, v, res.Eval.Time)
		}
	}
}

func TestParallelSubCollectivesHelpOnTCP(t *testing.T) {
	// TCP caps one stream at ~20 Gbps; M = 4 sub-collectives multiply
	// throughput (the mechanism behind Fig. 19a).
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	costs := costsFor(t, c)
	timeForM := func(m int) time.Duration {
		res, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: 256 * MB, Root: 0, M: m})
		if err != nil {
			t.Fatal(err)
		}
		return res.Eval.Time
	}
	t1, t4 := timeForM(1), timeForM(4)
	if float64(t4) > 0.5*float64(t1) {
		t.Errorf("M=4 (%v) should be ≥2× faster than M=1 (%v) on TCP", t4, t1)
	}
}

func TestHeterogeneousAvoidsSlowBottleneck(t *testing.T) {
	// With V100 servers on 50 Gbps NICs, a naive flat star into a V100
	// root forces everything through the slow NIC; the search must do
	// better than the worst variant.
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		t.Fatal(err)
	}
	costs := costsFor(t, c)
	best, err := Synthesize(costs, Request{Primitive: strategy.AllReduce, Bytes: 256 * MB, Root: -1})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Synthesize(costs, Request{
		Primitive: strategy.AllReduce, Bytes: 256 * MB, Root: 15, // V100 root
		ForceVariant: "flat-star", M: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Eval.Time >= flat.Eval.Time {
		t.Errorf("searched strategy (%v) not better than naive flat star into V100 (%v)",
			best.Eval.Time, flat.Eval.Time)
	}
}

func TestRelaysBecomeLeaders(t *testing.T) {
	costs := testbedCosts(t)
	// Ranks 4..7 (server 1) are not ready; rank 4 offered as relay.
	ready := []int{0, 1, 2, 3, 8, 9, 10, 11}
	res, err := Synthesize(costs, Request{
		Primitive: strategy.Reduce, Bytes: 64 * MB, Root: 0,
		Ranks: ready, Relays: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Strategy.Validate(costs.Graph()); err != nil {
		t.Fatalf("relay strategy invalid: %v", err)
	}
	// Relay rank 4 is on a server with no ready workers, so it cannot
	// aggregate anything useful there; but the strategy must still be
	// buildable and only route ready workers' data.
	for _, sc := range res.Strategy.SubCollectives {
		for _, f := range sc.Flows {
			if f.SrcRank == 4 && f.DstRank != 0 {
				t.Errorf("unexpected relay flow %+v", f)
			}
		}
	}
}

func TestRelayOnReadyServerAggregates(t *testing.T) {
	costs := testbedCosts(t)
	// Server 1 has ready ranks 5,6,7 and relay rank 4: the relay should
	// serve as the server's aggregation leader in some sub-collective.
	ready := []int{0, 1, 2, 3, 5, 6, 7}
	res, err := Synthesize(costs, Request{
		Primitive: strategy.Reduce, Bytes: 64 * MB, Root: 0,
		Ranks: ready, Relays: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	usedRelay := false
	for _, sc := range res.Strategy.SubCollectives {
		for _, f := range sc.Flows {
			if f.DstRank == 4 || f.SrcRank == 4 {
				usedRelay = true
			}
		}
	}
	if res.Variant != "flat-star" && !usedRelay {
		t.Errorf("hierarchical strategy (%s) ignored the relay", res.Variant)
	}
}

func TestAlltoAllLoadsSum(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs := costsFor(t, c)
	res, err := Synthesize(costs, Request{Primitive: strategy.AlltoAll, Bytes: 16 * MB, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Strategy.SubCollectives[0]
	if got, want := len(sc.Flows), 12; got != want { // 4 ranks × 3 peers
		t.Fatalf("flows = %d, want %d", got, want)
	}
	loads := make([]int, costs.Graph().NumEdges())
	if err := accumulateLoads(costs.Graph(), &sc, false, loads); err != nil {
		t.Fatal(err)
	}
	// Each server's 2 GPUs send to 2 remote GPUs: every port edge
	// carries 4 cross-server flows.
	for eid, load := range loads {
		if costs.Graph().Edge(topology.EdgeID(eid)).Type.Network() && load != 4 {
			t.Errorf("port edge %v load = %d, want 4", eid, load)
		}
	}
}

func TestReduceAggregationCollapsesLoad(t *testing.T) {
	costs := testbedCosts(t)
	res, err := Synthesize(costs, Request{
		Primitive: strategy.Reduce, Bytes: 64 * MB, Root: 0,
		ForceVariant: "hier-star", M: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Strategy.SubCollectives[0]
	loads := make([]int, costs.Graph().NumEdges())
	if err := accumulateLoads(costs.Graph(), &sc, false, loads); err != nil {
		t.Fatal(err)
	}
	// Leaders aggregate 4 local tensors into one flow, so every server
	// UPLINK carries load exactly 1; the root's ingress port carries one
	// flow per remote server.
	g := costs.Graph()
	sw, ok := g.Switch()
	if !ok {
		t.Fatal("no switch")
	}
	for eid, load := range loads {
		if load == 0 {
			continue // edge carries no flow (e.g. the root server's uplink)
		}
		e := g.Edge(topology.EdgeID(eid))
		if !e.Type.Network() {
			continue
		}
		if e.To == sw && load != 1 {
			t.Errorf("uplink %v load = %d, want 1 after aggregation", eid, load)
		}
		if e.From == sw && load != 5 {
			t.Errorf("root ingress %v load = %d, want 5 (one flow per remote server)", eid, load)
		}
	}
}

func TestPartitionsAlignedAndSumToTotal(t *testing.T) {
	costs := testbedCosts(t)
	total := int64(256*MB) + 4 // deliberately awkward
	res, err := Synthesize(costs, Request{Primitive: strategy.AllReduce, Bytes: total, Root: -1})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, sc := range res.Strategy.SubCollectives {
		sum += sc.Bytes
		if sc.Bytes%4 != 0 && sc.Bytes != total-sum+sc.Bytes {
			t.Errorf("partition %d not float32-aligned", sc.Bytes)
		}
	}
	if sum != total {
		t.Fatalf("partitions sum %d, want %d", sum, total)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	costs := testbedCosts(t)
	if _, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: MB, Ranks: []int{0}}); err == nil {
		t.Error("single rank accepted")
	}
	if _, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: 0, Root: 0}); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: MB, Root: 0, ForceVariant: "nope"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: MB, Ranks: []int{0, 99}}); err == nil {
		t.Error("unknown rank accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	costs := testbedCosts(t)
	req := Request{Primitive: strategy.AllReduce, Bytes: 128 * MB, Root: -1}
	a, err := Synthesize(costs, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(costs, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval.Time != b.Eval.Time || a.Variant != b.Variant {
		t.Fatalf("non-deterministic synthesis: %v/%s vs %v/%s",
			a.Eval.Time, a.Variant, b.Eval.Time, b.Variant)
	}
	ax, _ := a.Strategy.MarshalXMLBytes()
	bx, _ := b.Strategy.MarshalXMLBytes()
	if string(ax) != string(bx) {
		t.Fatal("strategies differ across identical runs")
	}
}

func TestFragmentedServerFeasible(t *testing.T) {
	// No NVLink at all: flows must bounce via the NIC host path.
	c, err := topology.NewCluster(topology.TransportRDMA, cluster.FragmentedA100Server(4))
	if err != nil {
		t.Fatal(err)
	}
	costs := costsFor(t, c)
	res, err := Synthesize(costs, Request{Primitive: strategy.Reduce, Bytes: 16 * MB, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Strategy.Validate(costs.Graph()); err != nil {
		t.Fatalf("fragmented strategy invalid: %v", err)
	}
}

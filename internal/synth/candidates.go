package synth

import (
	"fmt"
	"sort"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// members groups participating ranks by server.
type members struct {
	byServer map[int][]int
	servers  []int // sorted
}

func groupByServer(g *topology.Graph, ranks []int) (members, error) {
	m := members{byServer: make(map[int][]int)}
	for _, r := range ranks {
		id, ok := g.GPUByRank(r)
		if !ok {
			return members{}, fmt.Errorf("synth: unknown rank %d", r)
		}
		s := g.Node(id).Server
		m.byServer[s] = append(m.byServer[s], r)
	}
	for s, rs := range m.byServer {
		sort.Ints(rs)
		m.byServer[s] = rs
		m.servers = append(m.servers, s)
	}
	sort.Ints(m.servers)
	return m, nil
}

// subBuilder caches the rank groupings shared by every candidate of one
// synthesis request. The search evaluates hundreds of (variant, chunk, M,
// root-plan) candidates over the same participant set, so grouping ranks
// by server once per candidate — rather than once per request — dominated
// allocation profiles.
type subBuilder struct {
	g              *topology.Graph
	ranks          []int
	relays         []int
	mem            members
	relaysByServer map[int][]int
	// Sketch restrictions (sketch.go): per-server leader pools and the
	// inter-server ring orientation. Both nil/false without a sketch.
	leadersByServer map[int][]int
	desc            bool
	// cache reuses built sub-collectives across candidates: the flow
	// structure depends only on (primitive, variant, root, sub index),
	// never on the chunk size or partition bytes the search sweeps, so
	// the same structure is requested many times per synthesis. Cached
	// entries share their Flows slice between candidate strategies —
	// safe because flows are immutable once built.
	cache map[subKey]*strategy.SubCollective
	// intraCache is the per-subdomain fragment cache: the flows feeding
	// one server's leader depend only on (server, leader, sub index), so
	// every hierarchical variant — and every root placement whose leader
	// choice coincides — shares one built fragment per server subdomain.
	// Fragments keep their paths immutable; IDs are assigned at assembly.
	intraCache map[intraKey][]strategy.Flow
}

// intraKey identifies one server subdomain's cached local-aggregation
// fragment.
type intraKey struct {
	server int
	leader int
	sub    int
}

// subKey identifies one cached sub-collective structure.
type subKey struct {
	prim strategy.Primitive
	v    variant
	root int
	sub  int
}

// sub returns the (cached) flow structure of one sub-collective. Callers
// own the returned struct's scalar fields (ID, Bytes, ChunkBytes are
// overwritten per candidate) but must treat Flows as read-only.
func (bld *subBuilder) sub(p strategy.Primitive, v variant, root, m int) (*strategy.SubCollective, error) {
	key := subKey{prim: p, v: v, root: root, sub: m}
	if sc, ok := bld.cache[key]; ok {
		return sc, nil
	}
	var (
		sc  *strategy.SubCollective
		err error
	)
	switch p {
	case strategy.Broadcast:
		sc, err = bld.broadcastSub(v, root, m)
	case strategy.Reduce, strategy.AllReduce:
		sc, err = bld.reduceSub(v, root, m)
	case strategy.AlltoAll:
		sc, err = bld.alltoallSub(m)
	default:
		err = fmt.Errorf("synth: unsupported primitive %v", p)
	}
	if err != nil {
		return nil, err
	}
	if bld.cache == nil {
		bld.cache = make(map[subKey]*strategy.SubCollective)
	}
	bld.cache[key] = sc
	return sc, nil
}

func newSubBuilder(g *topology.Graph, ranks, relays []int, sk *Sketch) (*subBuilder, error) {
	mem, err := groupByServer(g, ranks)
	if err != nil {
		return nil, err
	}
	rbs := make(map[int][]int)
	for _, r := range relays {
		if id, ok := g.GPUByRank(r); ok {
			s := g.Node(id).Server
			rbs[s] = append(rbs[s], r)
		}
	}
	for s := range rbs {
		sort.Ints(rbs[s])
	}
	bld := &subBuilder{g: g, ranks: ranks, relays: relays, mem: mem, relaysByServer: rbs}
	if set := sk.leaderSet(); set != nil {
		bld.leadersByServer = make(map[int][]int)
		for s, rs := range mem.byServer {
			for _, r := range rs {
				if set[r] {
					bld.leadersByServer[s] = append(bld.leadersByServer[s], r)
				}
			}
		}
		for s, rl := range rbs {
			for _, r := range rl {
				if set[r] {
					bld.leadersByServer[s] = append(bld.leadersByServer[s], r)
				}
			}
		}
		for s := range bld.leadersByServer {
			sort.Ints(bld.leadersByServer[s])
		}
	}
	if sk != nil {
		bld.desc = sk.RingOrder == RingDesc
	}
	return bld, nil
}

// intraFlows returns the (cached) local-aggregation fragment of one server
// subdomain: the flows feeding each of the server's contributors into its
// leader. The fragment is independent of variant and — when the leader
// choice coincides — of the root, so hierarchical per-subdomain synthesis
// builds each server's flows once and shares them across every candidate
// and every request routed through the same builder. Flow IDs are assigned
// by the caller at assembly (addFlow); paths are immutable once built.
func (bld *subBuilder) intraFlows(server, leader, m int) ([]strategy.Flow, error) {
	key := intraKey{server: server, leader: leader, sub: m}
	if frag, ok := bld.intraCache[key]; ok {
		return frag, nil
	}
	pb := pathBuilder{g: bld.g}
	frag := []strategy.Flow{}
	for _, r := range bld.mem.byServer[server] {
		if r == leader {
			continue
		}
		path, err := pb.route(r, leader, m)
		if err != nil {
			return nil, err
		}
		frag = append(frag, strategy.Flow{SrcRank: r, DstRank: leader, Path: path})
	}
	if bld.intraCache == nil {
		bld.intraCache = make(map[intraKey][]strategy.Flow)
	}
	bld.intraCache[key] = frag
	return frag, nil
}

// builderFor resolves the builder through the planner's cache when one is
// in play, or builds a throwaway for a one-shot synthesis.
func builderFor(pl *Planner, g *topology.Graph, ranks, relays []int, sk *Sketch) (*subBuilder, error) {
	if pl != nil {
		return pl.builder(g, ranks, relays, sk)
	}
	return newSubBuilder(g, ranks, relays, sk)
}

// pathBuilder constructs routed paths over the logical graph.
type pathBuilder struct {
	g *topology.Graph
}

func (pb pathBuilder) gpu(rank int) (topology.NodeID, error) {
	id, ok := pb.g.GPUByRank(rank)
	if !ok {
		return 0, fmt.Errorf("synth: unknown rank %d", rank)
	}
	return id, nil
}

// nic picks the idx-th NIC of a server (modulo the NIC count) so
// sub-collectives can spread across NICs on multi-NIC servers.
func (pb pathBuilder) nic(server, idx int) (topology.NodeID, error) {
	var nics []topology.NodeID
	for _, n := range pb.g.Nodes() {
		if n.Kind == topology.KindNIC && n.Server == server {
			nics = append(nics, n.ID)
		}
	}
	if len(nics) == 0 {
		return 0, fmt.Errorf("synth: server %d has no NIC", server)
	}
	return nics[idx%len(nics)], nil
}

// intra returns a path between two GPUs on the same server: the direct
// NVLink edge when present, otherwise a bounce through the server's NIC
// host path (the PCIe fallback of fragmented allocations), optionally via a
// relay GPU.
func (pb pathBuilder) intra(from, to topology.NodeID, nicIdx int) ([]topology.NodeID, error) {
	if _, ok := pb.g.EdgeBetween(from, to); ok {
		return []topology.NodeID{from, to}, nil
	}
	nic, err := pb.nic(pb.g.Node(from).Server, nicIdx)
	if err != nil {
		return nil, err
	}
	if _, ok := pb.g.EdgeBetween(from, nic); !ok {
		return nil, fmt.Errorf("synth: no path %v -> %v", from, to)
	}
	if _, ok := pb.g.EdgeBetween(nic, to); !ok {
		return nil, fmt.Errorf("synth: no path %v -> %v", from, to)
	}
	return []topology.NodeID{from, nic, to}, nil
}

// inter returns the cross-server path src → srcNIC → core switch →
// dstNIC → dst.
func (pb pathBuilder) inter(from, to topology.NodeID, nicIdx int) ([]topology.NodeID, error) {
	fromNIC, err := pb.nic(pb.g.Node(from).Server, nicIdx)
	if err != nil {
		return nil, err
	}
	toNIC, err := pb.nic(pb.g.Node(to).Server, nicIdx)
	if err != nil {
		return nil, err
	}
	sw, ok := pb.g.Switch()
	if !ok {
		return nil, fmt.Errorf("synth: no core switch in a multi-server graph")
	}
	path := []topology.NodeID{from, fromNIC, sw, toNIC, to}
	for i := 1; i < len(path); i++ {
		if _, ok := pb.g.EdgeBetween(path[i-1], path[i]); !ok {
			return nil, fmt.Errorf("synth: missing edge %v -> %v", path[i-1], path[i])
		}
	}
	return path, nil
}

// route returns a path between any two GPUs.
func (pb pathBuilder) route(fromRank, toRank, nicIdx int) ([]topology.NodeID, error) {
	from, err := pb.gpu(fromRank)
	if err != nil {
		return nil, err
	}
	to, err := pb.gpu(toRank)
	if err != nil {
		return nil, err
	}
	if pb.g.SameServer(from, to) {
		return pb.intra(from, to, nicIdx)
	}
	return pb.inter(from, to, nicIdx)
}

// variant names a candidate communication-graph family.
type variant int

const (
	// variantHierStar: per-server leader aggregation, leaders send
	// directly to the root's server.
	variantHierStar variant = iota + 1
	// variantFlatStar: every GPU sends directly to the root (aggregation
	// only at the root).
	variantFlatStar
	// variantServerChain: leaders form an aggregation chain ending at
	// the root's server, ordered by server index rotation.
	variantServerChain
	// variantServerTree: leaders form a binary aggregation tree.
	variantServerTree
)

func (v variant) String() string {
	switch v {
	case variantHierStar:
		return "hier-star"
	case variantFlatStar:
		return "flat-star"
	case variantServerChain:
		return "server-chain"
	case variantServerTree:
		return "server-tree"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

func allVariants() []variant {
	return []variant{variantHierStar, variantFlatStar, variantServerChain, variantServerTree}
}

// addFlow appends a flow with the next sequential ID.
func addFlow(sc *strategy.SubCollective, src, dst int, path []topology.NodeID) {
	sc.Flows = append(sc.Flows, strategy.Flow{ID: len(sc.Flows), SrcRank: src, DstRank: dst, Path: path})
}

// reduceSub builds the flow set of one Reduce sub-collective.
//
// root is the sub-collective's root rank; m rotates leader and NIC choices
// so the M parallel sub-collectives use different resources; the builder's
// relays list non-contributing ranks usable as extra aggregation/forwarding
// points (Sec. IV-C relay control) and its ranks the contributing workers.
func (bld *subBuilder) reduceSub(v variant, root, m int) (*strategy.SubCollective, error) {
	g := bld.g
	pb := pathBuilder{g: g}
	mem := bld.mem
	relaysByServer := bld.relaysByServer
	rootID, err := pb.gpu(root)
	if err != nil {
		return nil, err
	}
	rootServer := g.Node(rootID).Server

	sc := &strategy.SubCollective{ID: m, Root: root}

	// leader returns the aggregation point of a server: the root on the
	// root's server; otherwise a rank rotated by m among the server's
	// contributors. A sketch's leader hints, when any land on the server,
	// restrict the pool to exactly them. Without hints, alternate
	// sub-collectives prefer a relay GPU when one is available — the relay
	// absorbs aggregation work and adds links (Sec. IV-C) — while the
	// others keep a ready leader, so a straggling relay's host path never
	// carries the whole partition set.
	leader := func(server int) int {
		if server == rootServer {
			return root
		}
		if pool := bld.leadersByServer[server]; len(pool) > 0 {
			return pool[m%len(pool)]
		}
		rl := relaysByServer[server]
		rs := mem.byServer[server]
		if len(rl) > 0 && (m%2 == 1 || len(rs) == 0) {
			return rl[m%len(rl)]
		}
		if len(rs) == 0 {
			return rl[m%len(rl)]
		}
		return rs[m%len(rs)]
	}

	if v == variantFlatStar {
		for _, r := range bld.ranks {
			if r == root {
				continue
			}
			path, err := pb.route(r, root, m)
			if err != nil {
				return nil, err
			}
			addFlow(sc, r, root, path)
		}
		return sc, nil
	}

	// Hierarchical variants: local flows into each server's leader.
	leaders := make(map[int]int, len(mem.servers))
	for _, s := range mem.servers {
		leaders[s] = leader(s)
	}
	// The root's server always has a leader (the root), even if no
	// contributor lives there.
	leaders[rootServer] = root
	for _, s := range mem.servers {
		frag, err := bld.intraFlows(s, leaders[s], m)
		if err != nil {
			return nil, err
		}
		for _, f := range frag {
			addFlow(sc, f.SrcRank, f.DstRank, f.Path)
		}
	}

	// Inter-server structure over the leader set.
	var others []int // servers other than root's, deterministic order
	for _, s := range mem.servers {
		if s != rootServer {
			others = append(others, s)
		}
	}
	// A descending-ring sketch reverses the server ordering before the
	// rotation, flipping the chain/tree orientation.
	if bld.desc {
		for i, j := 0, len(others)-1; i < j; i, j = i+1, j-1 {
			others[i], others[j] = others[j], others[i]
		}
	}
	// Rotate the order by m so parallel sub-collectives chain and pair
	// servers differently.
	if len(others) > 1 {
		rot := m % len(others)
		others = append(append([]int(nil), others[rot:]...), others[:rot]...)
	}

	switch v {
	case variantHierStar:
		for _, s := range others {
			l := leaders[s]
			path, err := pb.route(l, root, m)
			if err != nil {
				return nil, err
			}
			addFlow(sc, l, root, path)
		}
	case variantServerChain:
		for i, s := range others {
			l := leaders[s]
			next := root
			if i+1 < len(others) {
				next = leaders[others[i+1]]
			}
			path, err := pb.route(l, next, m)
			if err != nil {
				return nil, err
			}
			addFlow(sc, l, next, path)
		}
	case variantServerTree:
		// Binary in-tree: index i sends to (i-1)/2; index 0 to root.
		for i, s := range others {
			l := leaders[s]
			next := root
			if i > 0 {
				next = leaders[others[(i-1)/2]]
			}
			path, err := pb.route(l, next, m)
			if err != nil {
				return nil, err
			}
			addFlow(sc, l, next, path)
		}
	default:
		return nil, fmt.Errorf("synth: unsupported reduce variant %v", v)
	}
	return sc, nil
}

// broadcastSub builds a Broadcast sub-collective by reversing the
// corresponding Reduce structure (paper Sec. IV-D: AllReduce executes
// Broadcast reversely; plain Broadcast uses the same trees outward).
func (bld *subBuilder) broadcastSub(v variant, root, m int) (*strategy.SubCollective, error) {
	red, err := bld.reduceSub(v, root, m)
	if err != nil {
		return nil, err
	}
	out := &strategy.SubCollective{ID: m, Root: root}
	for i := len(red.Flows) - 1; i >= 0; i-- {
		f := red.Flows[i]
		rev := make([]topology.NodeID, len(f.Path))
		for j, n := range f.Path {
			rev[len(f.Path)-1-j] = n
		}
		out.Flows = append(out.Flows, strategy.Flow{
			ID:      len(out.Flows),
			SrcRank: f.DstRank,
			DstRank: f.SrcRank,
			Path:    rev,
		})
	}
	return out, nil
}

// alltoallSub builds the AlltoAll flow set: one directly-routed flow per
// ordered rank pair, with NIC selection rotated by m.
func (bld *subBuilder) alltoallSub(m int) (*strategy.SubCollective, error) {
	pb := pathBuilder{g: bld.g}
	sc := &strategy.SubCollective{ID: m, Root: -1}
	id := 0
	for _, src := range bld.ranks {
		for _, dst := range bld.ranks {
			if src == dst {
				continue
			}
			path, err := pb.route(src, dst, m)
			if err != nil {
				return nil, err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
			id++
		}
	}
	return sc, nil
}

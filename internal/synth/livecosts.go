package synth

import (
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/topology"
)

// NewLiveCosts builds a cost view from the fabric's *instantaneous* link
// state (nominal bandwidth × current volatility scale). The training
// simulator uses it to price what a collective actually costs right now —
// as opposed to the possibly stale profiled view AdapCC synthesises
// against, which is exactly the gap the volatile-network experiment
// (Fig. 18a) measures.
func NewLiveCosts(fab *fabric.Fabric) *Costs {
	g := fab.Graph()
	c := &Costs{
		graph:  g,
		alpha:  make([]time.Duration, g.NumEdges()),
		stream: make([]float64, g.NumEdges()),
		agg:    make([]float64, g.NumEdges()),
	}
	for i := 0; i < g.NumEdges(); i++ {
		eid := topology.EdgeID(i)
		e := g.Edge(eid)
		live := fab.LiveBandwidthBps(eid)
		c.alpha[i] = e.Alpha
		c.agg[i] = live
		if e.PerStreamBps > 0 && e.PerStreamBps < live {
			c.stream[i] = e.PerStreamBps
		} else {
			c.stream[i] = live
		}
	}
	return c
}

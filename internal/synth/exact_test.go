package synth

import (
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// enumerateReduceTrees yields every in-tree over the ranks (each non-root
// rank picks a parent among the other ranks; cyclic assignments are
// filtered), with flows routed over the standard intra/inter paths.
func enumerateReduceTrees(t *testing.T, g *topology.Graph, ranks []int, root int) []*strategy.SubCollective {
	t.Helper()
	var nonRoot []int
	for _, r := range ranks {
		if r != root {
			nonRoot = append(nonRoot, r)
		}
	}
	pb := pathBuilder{g: g}
	var out []*strategy.SubCollective

	parents := make(map[int]int, len(nonRoot))
	var rec func(i int)
	rec = func(i int) {
		if i == len(nonRoot) {
			// Acyclic and rooted?
			for _, r := range nonRoot {
				seen := map[int]bool{}
				cur := r
				for cur != root {
					if seen[cur] {
						return
					}
					seen[cur] = true
					next, ok := parents[cur]
					if !ok {
						return
					}
					cur = next
				}
			}
			sc := &strategy.SubCollective{ID: 0, Root: root}
			for fi, r := range nonRoot {
				path, err := pb.route(r, parents[r], 0)
				if err != nil {
					return // infeasible routing
				}
				sc.Flows = append(sc.Flows, strategy.Flow{ID: fi, SrcRank: r, DstRank: parents[r], Path: path})
			}
			out = append(out, sc)
			return
		}
		r := nonRoot[i]
		for _, p := range ranks {
			if p == r {
				continue
			}
			parents[r] = p
			rec(i + 1)
		}
		delete(parents, r)
	}
	rec(0)
	return out
}

// TestSearchWithinFactorOfExhaustive is DESIGN.md's heuristic-validation
// check: on small instances, exhaustively enumerate every reduce in-tree ×
// chunk size (at M = 1) and verify the synthesizer's choice is within a
// small factor of the optimum under the model's own objective.
func TestSearchWithinFactorOfExhaustive(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*topology.Cluster, error)
	}{
		{"homo-2x2", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportRDMA, 2, 2) }},
		{"heter-2+2", func() (*topology.Cluster, error) {
			return topology.NewCluster(topology.TransportRDMA, cluster.A100Server(2), cluster.V100Server(2))
		}},
		{"tcp-4x1", func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportTCP, 4, 1) }},
	}
	const bytes = 16 << 20
	grid := []int64{256 << 10, 1 << 20, 4 << 20}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			g, err := c.LogicalGraph()
			if err != nil {
				t.Fatal(err)
			}
			costs := NewCosts(g, nil)
			ranks := make([]int, c.NumGPUs())
			for i := range ranks {
				ranks[i] = i
			}

			// Exhaustive optimum over all trees × chunk sizes.
			var bestExact *Eval
			trees := enumerateReduceTrees(t, g, ranks, 0)
			if len(trees) < 3 {
				t.Fatalf("only %d trees enumerated", len(trees))
			}
			for _, tree := range trees {
				for _, chunk := range grid {
					sc := *tree
					sc.Bytes = bytes
					sc.ChunkBytes = chunk
					st := &strategy.Strategy{
						Primitive:      strategy.Reduce,
						TotalBytes:     bytes,
						SubCollectives: []strategy.SubCollective{sc},
					}
					if err := st.Validate(g); err != nil {
						continue
					}
					ev, err := Evaluate(costs, st)
					if err != nil {
						continue
					}
					if bestExact == nil || ev.Time < bestExact.Time {
						bestExact = ev
					}
				}
			}
			if bestExact == nil {
				t.Fatal("no feasible tree evaluated")
			}

			res, err := Synthesize(costs, Request{
				Primitive: strategy.Reduce, Bytes: bytes, Root: 0,
				M: 1, ChunkGrid: grid,
			})
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(res.Eval.Time) / float64(bestExact.Time)
			t.Logf("%s: search %v vs exhaustive optimum %v (%.2fx, %d trees)",
				tc.name, res.Eval.Time, bestExact.Time, ratio, len(trees))
			if ratio > 1.15 {
				t.Errorf("search is %.2fx the exhaustive optimum", ratio)
			}
		})
	}
}

// Package synth implements AdapCC's Synthesizer (paper Sec. IV-D): given
// the logical graph and profiled α–β link properties it derives, for each
// collective primitive, M parallel sub-collectives with routing paths,
// partition sizes, chunk sizes and per-node aggregation control, minimising
// the predicted completion time of Eq. (4) subject to the flow, chunking
// and bandwidth-sharing constraints of Eq. (1)–(3), (5)–(6).
//
// The paper solves the mixed-integer program with Gurobi; Gurobi is
// proprietary, so this package substitutes a structured search: candidate
// communication graphs (hierarchical leader trees, flat stars, server
// chains) are generated from the topology, and an analytic evaluator of the
// paper's own timing model scores every combination of candidate graph,
// chunk size and aggregation flags, with a partition-rebalancing loop over
// the M sub-collectives. A brute-force enumerator (exact.go) validates the
// heuristic on small instances in tests.
package synth

import (
	"time"

	"adapcc/internal/profile"
	"adapcc/internal/topology"
)

// Costs is the α–β view of the logical graph the synthesizer optimises
// against: profiled values where available, nominal hardware values
// elsewhere.
type Costs struct {
	graph  *topology.Graph
	alpha  []time.Duration
	stream []float64
	agg    []float64
	// sc is the evaluator's reusable working state (see evalScratch).
	sc *evalScratch
}

// NewCosts merges a graph with a profiling report (which may be nil,
// falling back entirely to nominal values — the "AdapCC without profiling"
// ablation).
func NewCosts(g *topology.Graph, rep *profile.Report) *Costs {
	c := &Costs{
		graph:  g,
		alpha:  make([]time.Duration, g.NumEdges()),
		stream: make([]float64, g.NumEdges()),
		agg:    make([]float64, g.NumEdges()),
	}
	for i := 0; i < g.NumEdges(); i++ {
		eid := topology.EdgeID(i)
		e := g.Edge(eid)
		if rep != nil {
			c.alpha[i] = rep.Alpha(g, eid)
			c.stream[i] = rep.StreamBps(g, eid)
			c.agg[i] = rep.AggregateBps(g, eid)
			continue
		}
		c.alpha[i] = e.Alpha
		c.agg[i] = e.BandwidthBps
		if e.PerStreamBps > 0 && e.PerStreamBps < e.BandwidthBps {
			c.stream[i] = e.PerStreamBps
		} else {
			c.stream[i] = e.BandwidthBps
		}
	}
	return c
}

// Graph returns the underlying logical graph.
func (c *Costs) Graph() *topology.Graph { return c.graph }

// Alpha returns the latency of an edge.
func (c *Costs) Alpha(eid topology.EdgeID) time.Duration { return c.alpha[eid] }

// StreamBps returns the single-flow bandwidth of an edge.
func (c *Costs) StreamBps(eid topology.EdgeID) float64 { return c.stream[eid] }

// AggregateBps returns the many-flow bandwidth of an edge.
func (c *Costs) AggregateBps(eid topology.EdgeID) float64 { return c.agg[eid] }

// SingleStreamView returns a cost view in which an edge's aggregate
// bandwidth is clamped to its single-stream rate: the analytic model of a
// single-channel backend (NCCL), whose flows all share one stream.
func (c *Costs) SingleStreamView() *Costs {
	out := &Costs{graph: c.graph, alpha: c.alpha, stream: c.stream, agg: make([]float64, len(c.agg))}
	for i := range c.agg {
		out.agg[i] = c.agg[i]
		if c.stream[i] < out.agg[i] {
			out.agg[i] = c.stream[i]
		}
	}
	return out
}

// Reweighted returns a view in which every edge's bandwidths (stream and
// aggregate) are multiplied by weight(from, to) — the gray-failure
// down-weight. Unlike fault exclusion the link stays routable: the
// evaluator simply prices its congestion, so the search prefers clean
// alternatives and falls back to the slow link only where nothing else
// connects. Weights outside (0, 1] are treated as 1 (no change); latency
// is untouched (congestion queues serialize bytes, they do not lengthen
// the wire).
func (c *Costs) Reweighted(weight func(from, to topology.NodeID) float64) *Costs {
	out := &Costs{
		graph:  c.graph,
		alpha:  c.alpha,
		stream: make([]float64, len(c.stream)),
		agg:    make([]float64, len(c.agg)),
	}
	for i := 0; i < c.graph.NumEdges(); i++ {
		e := c.graph.Edge(topology.EdgeID(i))
		w := weight(e.From, e.To)
		if w <= 0 || w > 1 {
			w = 1
		}
		out.stream[i] = c.stream[i] * w
		out.agg[i] = c.agg[i] * w
	}
	return out
}

// Fingerprint hashes the cost view's content — per-edge α and bandwidths,
// with bandwidths quantized to whole bytes/s to absorb float noise — into
// a stable identity. The controller keys its strategy cache by it: two
// cost views with equal fingerprints price every candidate identically, so
// a healing flap that restores the previous measurements restores the
// previous cache entries instead of re-solving.
func (c *Costs) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i := range c.alpha {
		mix(uint64(c.alpha[i]))
		mix(uint64(c.stream[i]))
		mix(uint64(c.agg[i]))
	}
	return h
}

// FlowBps returns the bandwidth one flow obtains on an edge carrying load
// concurrent flows (Eq. 3, refined with the per-stream cap): the aggregate
// bandwidth is shared equally, but a single flow can never exceed the
// profiled per-stream rate.
func (c *Costs) FlowBps(eid topology.EdgeID, load int) float64 {
	if load < 1 {
		load = 1
	}
	share := c.agg[eid] / float64(load)
	if c.stream[eid] < share {
		return c.stream[eid]
	}
	return share
}

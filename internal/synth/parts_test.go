package synth

import (
	"testing"

	"adapcc/internal/strategy"
)

func TestEqualPartsEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		total int64
		m     int
		want  []int64
	}{
		{"one part", 1 << 20, 1, []int64{1 << 20}},
		{"even split", 16, 4, []int64{4, 4, 4, 4}},
		{"whole-element remainder", 20, 2, []int64{8, 12}},
		{"total smaller than 4m", 8, 4, []int64{4, 4}},
		{"single element many parts", 4, 8, []int64{4}},
		{"unaligned total", 10, 4, []int64{4, 6}},
		{"one element plus tail", 7, 3, []int64{7}},
		{"two elements plus tail", 11, 3, []int64{4, 7}},
		{"sub-element tensor", 3, 4, []int64{3}},
		{"unaligned one part", 9, 1, []int64{9}},
		{"large aligned", 64 << 20, 4, []int64{16 << 20, 16 << 20, 16 << 20, 16 << 20}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := equalParts(tc.total, tc.m)
			if len(got) != len(tc.want) {
				t.Fatalf("equalParts(%d, %d) = %v, want %v", tc.total, tc.m, got, tc.want)
			}
			var sum int64
			for i, p := range got {
				if p != tc.want[i] {
					t.Fatalf("equalParts(%d, %d) = %v, want %v", tc.total, tc.m, got, tc.want)
				}
				if p <= 0 {
					t.Errorf("partition %d is empty: %v", i, got)
				}
				// Every boundary between partitions is element-aligned:
				// all parts except the last are multiples of 4.
				if i < len(got)-1 && p%4 != 0 {
					t.Errorf("interior partition %d = %d is unaligned", i, p)
				}
				sum += p
			}
			if sum != tc.total {
				t.Errorf("partitions sum to %d, want %d", sum, tc.total)
			}
		})
	}
}

// TestEqualPartsInvariants sweeps small totals and part counts: never a
// zero-byte partition, always the exact total, interior boundaries aligned.
func TestEqualPartsInvariants(t *testing.T) {
	for total := int64(1); total <= 256; total++ {
		for m := 1; m <= 8; m++ {
			got := equalParts(total, m)
			if len(got) == 0 || len(got) > m {
				t.Fatalf("equalParts(%d, %d) returned %d parts", total, m, len(got))
			}
			var sum int64
			for i, p := range got {
				if p <= 0 {
					t.Fatalf("equalParts(%d, %d) = %v has empty partition", total, m, got)
				}
				if i < len(got)-1 && p%4 != 0 {
					t.Fatalf("equalParts(%d, %d) = %v has unaligned interior partition", total, m, got)
				}
				sum += p
			}
			if sum != total {
				t.Fatalf("equalParts(%d, %d) = %v sums to %d", total, m, got, sum)
			}
		}
	}
}

// TestTieBreakIndependentOfGridOrder asserts the deterministic tie-break:
// for a small tensor every chunk-size candidate clamps to the same effective
// chunk, producing genuine cost ties, so reversing the search grid must not
// change the chosen strategy.
func TestTieBreakIndependentOfGridOrder(t *testing.T) {
	costs := testbedCosts(t)
	grid := []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	rev := []int64{2 << 20, 1 << 20, 512 << 10, 256 << 10}
	for _, bytes := range []int64{256, 4 << 10, 64 << 10} {
		a, err := Synthesize(costs, Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, ChunkGrid: grid,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Synthesize(costs, Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, ChunkGrid: rev,
		})
		if err != nil {
			t.Fatal(err)
		}
		if a.Variant != b.Variant || a.Eval.Time != b.Eval.Time {
			t.Fatalf("bytes=%d: grid order changed the winner: %s/%v vs %s/%v",
				bytes, a.Variant, a.Eval.Time, b.Variant, b.Eval.Time)
		}
		ax, _ := a.Strategy.MarshalXMLBytes()
		bx, _ := b.Strategy.MarshalXMLBytes()
		if string(ax) != string(bx) {
			t.Fatalf("bytes=%d: grid order changed the synthesised strategy", bytes)
		}
	}
}

// TestSmallTensorNoZeroByteSubs runs the synthesizer across the tiny-tensor
// range and asserts no sub-collective is ever empty or misaligned at an
// interior boundary.
func TestSmallTensorNoZeroByteSubs(t *testing.T) {
	costs := testbedCosts(t)
	for bytes := int64(4); bytes <= 64<<10; bytes *= 4 {
		res, err := Synthesize(costs, Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		})
		if err != nil {
			t.Fatalf("bytes=%d: %v", bytes, err)
		}
		var sum int64
		n := len(res.Strategy.SubCollectives)
		for i, sc := range res.Strategy.SubCollectives {
			if sc.Bytes <= 0 {
				t.Errorf("bytes=%d: sub %d has %d bytes", bytes, i, sc.Bytes)
			}
			if i < n-1 && sc.Bytes%4 != 0 {
				t.Errorf("bytes=%d: interior sub %d is unaligned (%d)", bytes, i, sc.Bytes)
			}
			if sc.ChunkBytes <= 0 {
				t.Errorf("bytes=%d: sub %d has chunk %d", bytes, i, sc.ChunkBytes)
			}
			sum += sc.Bytes
		}
		if sum != bytes {
			t.Errorf("bytes=%d: subs sum to %d", bytes, sum)
		}
	}
}

package synth

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// degradedChunkBytes caps the pipelining chunk of last-resort strategies.
const degradedChunkBytes = 1 << 20

// RemapTo returns a cost view over a node-preserving clone of this view's
// graph (see topology.CloneFilteredEdges): each edge of the clone inherits
// the α/stream/aggregate values of the matching edge (same endpoints) in
// the original view, so profiled link properties survive fault exclusion
// without re-profiling — re-profiling a fabric with dead links would itself
// hang on them.
func (c *Costs) RemapTo(g *topology.Graph) *Costs {
	out := &Costs{
		graph:  g,
		alpha:  make([]time.Duration, g.NumEdges()),
		stream: make([]float64, g.NumEdges()),
		agg:    make([]float64, g.NumEdges()),
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(topology.EdgeID(i))
		if oid, ok := c.graph.EdgeBetween(e.From, e.To); ok {
			out.alpha[i] = c.alpha[oid]
			out.stream[i] = c.stream[oid]
			out.agg[i] = c.agg[oid]
			continue
		}
		out.alpha[i] = e.Alpha
		out.agg[i] = e.BandwidthBps
		if e.PerStreamBps > 0 && e.PerStreamBps < e.BandwidthBps {
			out.stream[i] = e.PerStreamBps
		} else {
			out.stream[i] = e.BandwidthBps
		}
	}
	return out
}

// DegradedRing synthesizes the last rung of the fault-recovery ladder: a
// single sub-collective whose flows are chained rank-to-rank (a flat ring)
// with every hop routed by shortest path over the — already fault-filtered —
// graph. It trades all of AdapCC's parallelism for feasibility: the
// structured candidate search commits to fixed NIC rotation patterns and
// fails entirely when each pattern touches a dead uplink, while shortest
// paths route around anything that is still connected. AlltoAll degrades to
// shortest-path pairwise flows instead of a chain.
func DegradedRing(c *Costs, req Request) (*Result, error) {
	g := c.graph
	ranks := req.Ranks
	if ranks == nil {
		for _, id := range g.GPUs() {
			ranks = append(ranks, g.Node(id).Rank)
		}
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return nil, fmt.Errorf("synth: degraded ring needs >= 2 ranks, have %d", len(ranks))
	}
	if req.Bytes <= 0 {
		return nil, fmt.Errorf("synth: non-positive size %d", req.Bytes)
	}
	root := ranks[0]
	if req.Primitive != strategy.AlltoAll && req.Root >= 0 {
		for _, r := range ranks {
			if r == req.Root {
				root = req.Root
				break
			}
		}
	}
	// Root-first ring order.
	order := make([]int, 0, len(ranks))
	order = append(order, root)
	for _, r := range ranks {
		if r != root {
			order = append(order, r)
		}
	}

	route := func(src, dst int) ([]topology.NodeID, error) {
		a, ok := g.GPUByRank(src)
		if !ok {
			return nil, fmt.Errorf("synth: unknown rank %d", src)
		}
		b, ok := g.GPUByRank(dst)
		if !ok {
			return nil, fmt.Errorf("synth: unknown rank %d", dst)
		}
		p := g.ShortestPath(a, b)
		if p == nil {
			return nil, fmt.Errorf("synth: rank %d unreachable from rank %d over surviving links", dst, src)
		}
		return p, nil
	}

	var flows []strategy.Flow
	addFlow := func(src, dst int) error {
		p, err := route(src, dst)
		if err != nil {
			return err
		}
		flows = append(flows, strategy.Flow{ID: len(flows), SrcRank: src, DstRank: dst, Path: p})
		return nil
	}

	switch req.Primitive {
	case strategy.Reduce, strategy.AllReduce:
		// In-tree chain toward the root: order[i] sends to order[i-1].
		for i := len(order) - 1; i >= 1; i-- {
			if err := addFlow(order[i], order[i-1]); err != nil {
				return nil, err
			}
		}
		if req.Primitive == strategy.AllReduce {
			// The broadcast stage runs each flow's path in reverse; the
			// reverse edges must exist on the filtered graph too.
			for _, f := range flows {
				for h := len(f.Path) - 1; h >= 1; h-- {
					if _, ok := g.EdgeBetween(f.Path[h], f.Path[h-1]); !ok {
						return nil, fmt.Errorf("synth: no reverse edge %v -> %v for the broadcast stage",
							f.Path[h], f.Path[h-1])
					}
				}
			}
		}
	case strategy.Broadcast:
		// Out-tree chain away from the root: order[i-1] sends to order[i].
		for i := 1; i < len(order); i++ {
			if err := addFlow(order[i-1], order[i]); err != nil {
				return nil, err
			}
		}
	case strategy.AlltoAll:
		root = -1
		for _, a := range ranks {
			for _, b := range ranks {
				if a == b {
					continue
				}
				if err := addFlow(a, b); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("synth: unknown primitive %v", req.Primitive)
	}

	chunk := int64(degradedChunkBytes)
	if chunk > req.Bytes {
		chunk = req.Bytes
	}
	s := &strategy.Strategy{
		Primitive:  req.Primitive,
		TotalBytes: req.Bytes,
		SubCollectives: []strategy.SubCollective{{
			ID:         0,
			Bytes:      req.Bytes,
			ChunkBytes: chunk,
			Root:       root,
			Flows:      flows,
		}},
	}
	eval, err := Evaluate(c, s)
	if err != nil {
		return nil, fmt.Errorf("synth: degraded ring invalid: %w", err)
	}
	return &Result{
		Strategy: s,
		Eval:     eval,
		Variant:  "degraded-ring",
		// One candidate, one evaluation (simulated solver cost; see
		// perEvalCost — deterministic, unlike wall clock).
		SolveTime: perEvalCost,
	}, nil
}

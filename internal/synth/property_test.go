package synth

import (
	"testing"
	"testing/quick"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// TestEvaluateMonotoneInBytesProperty: scaling every sub-collective of a
// synthesised strategy by an integer factor never decreases the predicted
// completion time — the Eq. 1–6 model has no size cliffs.
func TestEvaluateMonotoneInBytesProperty(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(g, nil)
	base, err := Synthesize(costs, Request{
		Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1, M: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	scale := func(st *strategy.Strategy, k int64) *strategy.Strategy {
		out := &strategy.Strategy{Primitive: st.Primitive, TotalBytes: st.TotalBytes * k}
		for _, sc := range st.SubCollectives {
			sc.Bytes *= k
			out.SubCollectives = append(out.SubCollectives, sc)
		}
		return out
	}

	f := func(rawK uint8) bool {
		k := int64(rawK)%16 + 1
		small, err := Evaluate(costs, base.Strategy)
		if err != nil {
			t.Error(err)
			return false
		}
		big, err := Evaluate(costs, scale(base.Strategy, k))
		if err != nil {
			t.Error(err)
			return false
		}
		if big.Time < small.Time {
			t.Errorf("k=%d: %v bytes predicted %v, %v bytes predicted %v (shrank)",
				k, base.Strategy.TotalBytes, small.Time, base.Strategy.TotalBytes*k, big.Time)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSynthesizeMonotoneInBytes: the searched optimum itself is monotone in
// payload size across a doubling ladder (a bigger tensor can never be
// predicted to finish sooner than a smaller one).
func TestSynthesizeMonotoneInBytes(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(g, nil)
	var prev *Eval
	for bytes := int64(1 << 20); bytes <= 128<<20; bytes *= 2 {
		res, err := Synthesize(costs, Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, M: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && res.Eval.Time < prev.Time {
			t.Errorf("%d MiB predicted %v, faster than the previous smaller size (%v)",
				bytes>>20, res.Eval.Time, prev.Time)
		}
		prev = res.Eval
	}
}

// Communication sketches (TACCL's direction, PAPERS.md): a small human- or
// driver-supplied hint set — leader placement, ring orientation, hierarchy
// cut, candidate-family allow/deny, a pinned chunk size — that prunes the
// synthesis candidate space by orders of magnitude. The sketch never adds
// candidates, it only removes them, so every sketched strategy is one the
// unsketched search could also have produced; a sketch that removes every
// candidate is reported as ErrInfeasibleSketch instead of silently falling
// back to the full search.
package synth

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sentinel errors of the sketch surface. Validation failures (a malformed
// sketch, independent of any topology) wrap ErrInvalidSketch; a well-formed
// sketch that admits no candidate on the request at hand wraps
// ErrInfeasibleSketch. Both are matched with errors.Is.
var (
	ErrInvalidSketch    = errors.New("synth: invalid sketch")
	ErrInfeasibleSketch = errors.New("synth: infeasible sketch")
)

// Sketch cut and ring-order values.
const (
	// CutServer keeps only the hierarchical families (per-server leader
	// aggregation): hier-star, server-chain, server-tree.
	CutServer = "server"
	// CutFlat keeps only the flat family (no intra-server aggregation).
	CutFlat = "flat"

	// RingAsc / RingDesc orient the inter-server structures by ascending /
	// descending server index.
	RingAsc  = "asc"
	RingDesc = "desc"
)

// Sketch is a communication sketch: optional hints that restrict the
// synthesis search. The zero value is the empty sketch (no restriction).
type Sketch struct {
	// Leaders restricts aggregation points: on every server that hosts at
	// least one listed rank, only listed ranks may serve as the server's
	// leader; and root placement (for free-root AllReduce) rotates over the
	// listed ranks only. A fixed request root that is not listed is an
	// infeasibility, not an override.
	Leaders []int
	// RingOrder orients the inter-server chain/tree ordering: "" (both /
	// default), RingAsc or RingDesc.
	RingOrder string
	// Cut selects the hierarchy cut: "" (no restriction), CutServer
	// (hierarchical families only) or CutFlat (flat family only).
	Cut string
	// Allow, when non-empty, keeps only the named candidate families
	// ("hier-star", "flat-star", "server-chain", "server-tree").
	Allow []string
	// Deny removes the named candidate families.
	Deny []string
	// ChunkBytes pins the chunk size instead of sweeping the grid
	// (float32-aligned; 0 = sweep).
	ChunkBytes int64
}

// Empty reports whether the sketch restricts nothing.
func (sk *Sketch) Empty() bool {
	return sk == nil || (len(sk.Leaders) == 0 && sk.RingOrder == "" && sk.Cut == "" &&
		len(sk.Allow) == 0 && len(sk.Deny) == 0 && sk.ChunkBytes == 0)
}

// Validate checks the sketch's static well-formedness (everything checkable
// without a topology). Violations wrap ErrInvalidSketch.
func (sk *Sketch) Validate() error {
	if sk == nil {
		return nil
	}
	switch sk.RingOrder {
	case "", RingAsc, RingDesc:
	default:
		return fmt.Errorf("%w: ring order %q (want %q or %q)", ErrInvalidSketch, sk.RingOrder, RingAsc, RingDesc)
	}
	switch sk.Cut {
	case "", CutServer, CutFlat:
	default:
		return fmt.Errorf("%w: cut %q (want %q or %q)", ErrInvalidSketch, sk.Cut, CutServer, CutFlat)
	}
	for _, set := range [][]string{sk.Allow, sk.Deny} {
		for _, name := range set {
			if !knownFamily(name) {
				return fmt.Errorf("%w: unknown candidate family %q", ErrInvalidSketch, name)
			}
		}
	}
	for _, r := range sk.Leaders {
		if r < 0 {
			return fmt.Errorf("%w: negative leader rank %d", ErrInvalidSketch, r)
		}
	}
	if sk.ChunkBytes < 0 {
		return fmt.Errorf("%w: negative chunk size %d", ErrInvalidSketch, sk.ChunkBytes)
	}
	if sk.ChunkBytes > 0 && (sk.ChunkBytes < 4 || sk.ChunkBytes%4 != 0) {
		return fmt.Errorf("%w: chunk size %d not float32-aligned", ErrInvalidSketch, sk.ChunkBytes)
	}
	return nil
}

func knownFamily(name string) bool {
	for _, v := range allVariants() {
		if v.String() == name {
			return true
		}
	}
	return false
}

// Fingerprint canonically encodes the sketch for cache keys. The empty
// sketch fingerprints to "", so unsketched callers build the exact same
// keys (and allocate nothing extra) as before sketches existed.
func (sk *Sketch) Fingerprint() string {
	if sk.Empty() {
		return ""
	}
	var b strings.Builder
	b.WriteString("sk{")
	if len(sk.Leaders) > 0 {
		ls := append([]int(nil), sk.Leaders...)
		sort.Ints(ls)
		b.WriteString("l=")
		for _, r := range ls {
			b.WriteString(strconv.Itoa(r))
			b.WriteByte(',')
		}
	}
	if sk.RingOrder != "" {
		b.WriteString("r=" + sk.RingOrder + ";")
	}
	if sk.Cut != "" {
		b.WriteString("c=" + sk.Cut + ";")
	}
	if len(sk.Allow) > 0 {
		b.WriteString("a=" + canonicalFamilies(sk.Allow) + ";")
	}
	if len(sk.Deny) > 0 {
		b.WriteString("d=" + canonicalFamilies(sk.Deny) + ";")
	}
	if sk.ChunkBytes > 0 {
		b.WriteString("b=" + strconv.FormatInt(sk.ChunkBytes, 10) + ";")
	}
	b.WriteString("}")
	return b.String()
}

func canonicalFamilies(names []string) string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return strings.Join(out, ",")
}

// ParseSketch parses the -sketch CLI grammar: semicolon-separated
// key=value clauses, e.g.
//
//	leaders=0,8;ring=desc;cut=server;allow=hier-star,server-chain;chunk=4194304
//
// Keys: leaders (comma-separated ranks), ring (asc|desc), cut
// (server|flat), allow / deny (comma-separated family names), chunk
// (bytes). An empty string parses to the empty sketch.
func ParseSketch(s string) (*Sketch, error) {
	sk := &Sketch{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("%w: clause %q is not key=value", ErrInvalidSketch, clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "leaders":
			for _, f := range strings.Split(val, ",") {
				r, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("%w: leader rank %q", ErrInvalidSketch, f)
				}
				sk.Leaders = append(sk.Leaders, r)
			}
		case "ring":
			sk.RingOrder = val
		case "cut":
			sk.Cut = val
		case "allow":
			sk.Allow = append(sk.Allow, splitFamilies(val)...)
		case "deny":
			sk.Deny = append(sk.Deny, splitFamilies(val)...)
		case "chunk":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk size %q", ErrInvalidSketch, val)
			}
			sk.ChunkBytes = n
		default:
			return nil, fmt.Errorf("%w: unknown key %q", ErrInvalidSketch, key)
		}
	}
	if err := sk.Validate(); err != nil {
		return nil, err
	}
	return sk, nil
}

func splitFamilies(val string) []string {
	var out []string
	for _, f := range strings.Split(val, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// pruneVariants applies the cut and the allow/deny lists to the candidate
// family set. An empty result is the infeasibility the mutation tests pin:
// a typed error, never a silent fall-back to the full search.
func (sk *Sketch) pruneVariants(variants []variant) ([]variant, error) {
	if sk.Empty() {
		return variants, nil
	}
	keep := func(v variant) bool {
		name := v.String()
		switch sk.Cut {
		case CutServer:
			if v == variantFlatStar {
				return false
			}
		case CutFlat:
			if v != variantFlatStar {
				return false
			}
		}
		if len(sk.Allow) > 0 {
			found := false
			for _, a := range sk.Allow {
				if a == name {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		for _, d := range sk.Deny {
			if d == name {
				return false
			}
		}
		return true
	}
	var out []variant
	for _, v := range variants {
		if keep(v) {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: cut/allow/deny admit no candidate family", ErrInfeasibleSketch)
	}
	return out, nil
}

// pruneGrid pins the chunk size when the sketch carries one.
func (sk *Sketch) pruneGrid(grid []int64) []int64 {
	if sk == nil || sk.ChunkBytes == 0 {
		return grid
	}
	return []int64{sk.ChunkBytes}
}

// leaderSet returns the sketch's leader ranks as a set (nil when the
// sketch places no leader hints).
func (sk *Sketch) leaderSet() map[int]bool {
	if sk == nil || len(sk.Leaders) == 0 {
		return nil
	}
	set := make(map[int]bool, len(sk.Leaders))
	for _, r := range sk.Leaders {
		set[r] = true
	}
	return set
}

// checkRoot verifies a fixed request root against the leader hints: a root
// the sketch excludes from aggregation duty is a contradiction the caller
// must hear about, not silently override.
func (sk *Sketch) checkRoot(root int) error {
	set := sk.leaderSet()
	if set == nil || root < 0 || set[root] {
		return nil
	}
	return fmt.Errorf("%w: fixed root %d is not among the sketched leaders", ErrInfeasibleSketch, root)
}

// leaderRanks intersects the leader hints with the participating ranks,
// preserving rank order. With hints present but no participating leader the
// sketch is infeasible for this request.
func (sk *Sketch) leaderRanks(ranks []int) ([]int, error) {
	set := sk.leaderSet()
	if set == nil {
		return nil, nil
	}
	var out []int
	for _, r := range ranks {
		if set[r] {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no sketched leader participates (leaders %v)", ErrInfeasibleSketch, sk.Leaders)
	}
	return out, nil
}

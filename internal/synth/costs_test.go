package synth

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/profile"
	"adapcc/internal/topology"
)

func tcpCosts(t *testing.T) (*Costs, *topology.Graph) {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	return NewCosts(g, nil), g
}

func TestCostsAccessorsNominal(t *testing.T) {
	costs, g := tcpCosts(t)
	if costs.Graph() != g {
		t.Fatal("Graph() lost the graph")
	}
	for i := 0; i < g.NumEdges(); i++ {
		eid := topology.EdgeID(i)
		e := g.Edge(eid)
		if costs.Alpha(eid) != e.Alpha {
			t.Errorf("edge %d: alpha %v, want nominal %v", i, costs.Alpha(eid), e.Alpha)
		}
		if costs.AggregateBps(eid) != e.BandwidthBps {
			t.Errorf("edge %d: aggregate %v, want nominal %v", i, costs.AggregateBps(eid), e.BandwidthBps)
		}
		want := e.BandwidthBps
		if e.PerStreamBps > 0 && e.PerStreamBps < want {
			want = e.PerStreamBps
		}
		if costs.StreamBps(eid) != want {
			t.Errorf("edge %d: stream %v, want %v", i, costs.StreamBps(eid), want)
		}
	}
}

func TestSingleStreamViewClampsAggregate(t *testing.T) {
	costs, g := tcpCosts(t)
	single := costs.SingleStreamView()
	capped := 0
	for i := 0; i < g.NumEdges(); i++ {
		eid := topology.EdgeID(i)
		if single.AggregateBps(eid) > costs.StreamBps(eid) {
			t.Errorf("edge %d: single-stream aggregate %v above stream rate %v",
				i, single.AggregateBps(eid), costs.StreamBps(eid))
		}
		if single.AggregateBps(eid) < costs.AggregateBps(eid) {
			capped++
		}
	}
	if capped == 0 {
		t.Error("TCP cluster should have per-stream-capped network edges")
	}
	// The original view is untouched.
	for i := 0; i < g.NumEdges(); i++ {
		eid := topology.EdgeID(i)
		if costs.AggregateBps(eid) != g.Edge(eid).BandwidthBps {
			t.Error("SingleStreamView mutated its parent")
		}
	}
}

func TestCostsFromProfileReport(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade a link, then profile: the cost view must see the live rate.
	var victim topology.EdgeID = -1
	for _, e := range env.Graph.Edges() {
		if e.Type.Network() {
			victim = e.ID
			break
		}
	}
	env.Fabric.SetScale(victim, 0.5)
	var rep *profile.Report
	profile.New(env.Fabric, profile.Options{}).Run(func(r *profile.Report) { rep = r })
	env.Engine.Run()
	costs := NewCosts(env.Graph, rep)
	nominal := env.Graph.Edge(victim).BandwidthBps
	got := costs.AggregateBps(victim)
	// The joint port attribution may split a one-directional degradation
	// across the path's segments; what matters is that the cost view sees
	// a clearly degraded port instead of the nominal label.
	if got > 0.75*nominal || got < 0.25*nominal {
		t.Errorf("profiled aggregate %v, want clearly degraded vs nominal %v", got, nominal)
	}
}

func TestNewLiveCostsTracksFabricScale(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	var victim topology.EdgeID = -1
	for _, e := range env.Graph.Edges() {
		if e.Type.Network() {
			victim = e.ID
			break
		}
	}
	before := NewLiveCosts(env.Fabric).AggregateBps(victim)
	env.Fabric.SetScale(victim, 0.25)
	after := NewLiveCosts(env.Fabric).AggregateBps(victim)
	if ratio := after / before; ratio < 0.24 || ratio > 0.26 {
		t.Errorf("live aggregate ratio %v, want 0.25", ratio)
	}
	// The per-stream cap still binds when the live rate is above it.
	live := NewLiveCosts(env.Fabric)
	for _, e := range env.Graph.Edges() {
		if e.PerStreamBps > 0 && live.StreamBps(e.ID) > e.PerStreamBps {
			t.Errorf("edge %d: live stream rate %v above the cap %v",
				e.ID, live.StreamBps(e.ID), e.PerStreamBps)
		}
	}
}

func TestParseVariantNames(t *testing.T) {
	for _, v := range allVariants() {
		if got := parseVariant(v.String()); got != v {
			t.Errorf("parseVariant(%q) = %v", v.String(), got)
		}
	}
	if got := parseVariant("unknown"); got != variantHierStar {
		t.Errorf("unknown variant parsed to %v, want the hier-star default", got)
	}
}

func TestRebalancePreservesTotalAndAlignment(t *testing.T) {
	// Heterogeneous sub-collective speeds: rebalancing shifts bytes toward
	// the faster sub while preserving the exact total and alignment.
	parts := []int64{16 << 20, 16 << 20}
	ev := &Eval{Subs: []SubEval{
		{Time: 40 * time.Millisecond}, // 0.4 GB/s on 16 MiB
		{Time: 10 * time.Millisecond}, // 1.6 GB/s
	}}
	total := int64(32 << 20)
	out := rebalance(parts, ev, total)
	var sum int64
	for i, p := range out {
		sum += p
		if p%4 != 0 {
			t.Errorf("part %d = %d not float32-aligned", i, p)
		}
		if p < 4 {
			t.Errorf("part %d = %d below one element", i, p)
		}
	}
	if sum != total {
		t.Fatalf("parts sum to %d, want %d", sum, total)
	}
	if out[1] <= out[0] {
		t.Errorf("faster sub got %d bytes, slower %d — rebalance went backwards", out[1], out[0])
	}
	// 4x throughput ratio: the fast sub should carry ~4/5 of the bytes.
	frac := float64(out[1]) / float64(total)
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("fast-sub share %.2f, want ~0.8", frac)
	}

	// Degenerate inputs return the original split.
	if got := rebalance(parts, &Eval{}, total); &got[0] == &out[0] {
		t.Error("mismatched eval should return parts unchanged")
	}
	zero := &Eval{Subs: []SubEval{{Time: 0}, {Time: time.Millisecond}}}
	if got := rebalance(parts, zero, total); got[0] != parts[0] || got[1] != parts[1] {
		t.Error("zero-time sub should leave the split unchanged")
	}
}

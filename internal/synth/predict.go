package synth

import (
	"fmt"
	"time"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// SubEval is the predicted timing of one sub-collective under the paper's
// pipeline model.
type SubEval struct {
	// Lead is max_f h^f_dst: when the first chunk of the slowest flow is
	// ready at its destination (Eq. 2).
	Lead time.Duration
	// Bottle is max_f T^f_bottle: the slowest per-chunk stage (Eq. 6).
	Bottle time.Duration
	// Chunks is ceil(S_m / C_m).
	Chunks int
	// Time is max_f T_f (Eq. 5), the sub-collective completion time.
	Time time.Duration
}

// Eval is the predicted timing of a full strategy.
type Eval struct {
	Subs []SubEval
	// Time is the objective of Eq. 4: the completion time of the whole
	// collective (max over sub-collectives and flows).
	Time time.Duration
}

// evalScratch holds the evaluator's working state, reused across the
// hundreds of candidate evaluations of one synthesis search. Node- and
// edge-indexed slices replace per-call maps; everything is reset (O(nodes +
// edges + flows), no allocation) at the start of each use. Costs is
// single-threaded like the simulation it serves, so one scratch per Costs
// suffices.
type evalScratch struct {
	loads    []int           // per-edge flow counts (Eq. 3)
	waitH    []time.Duration // per-node first-chunk ready time
	periodAt []time.Duration // per-node steady-state period
	arrivals []time.Duration // per-flow terminal arrival
	periods  []time.Duration // per-flow bottleneck period
	termAt   [][]int         // per-node: flows terminating there
	deps     [][]int         // per-flow dependents
	indeg    []int           // per-flow in-degree
	queue    []int           // topological work list
	order    []int           // resulting flow order
}

// scratch returns the (lazily created) evaluator scratch sized for the
// graph.
func (c *Costs) scratch() *evalScratch {
	if c.sc == nil {
		n := c.graph.NumNodes()
		c.sc = &evalScratch{
			loads:    make([]int, c.graph.NumEdges()),
			waitH:    make([]time.Duration, n),
			periodAt: make([]time.Duration, n),
			termAt:   make([][]int, n),
		}
	}
	return c.sc
}

// perFlow resizes the per-flow slices for n flows and clears them.
func (sc *evalScratch) perFlow(n int) {
	if cap(sc.arrivals) < n {
		sc.arrivals = make([]time.Duration, n)
		sc.periods = make([]time.Duration, n)
		sc.deps = make([][]int, n)
		sc.indeg = make([]int, n)
	}
	sc.arrivals = sc.arrivals[:n]
	sc.periods = sc.periods[:n]
	sc.deps = sc.deps[:n]
	sc.indeg = sc.indeg[:n]
	for i := 0; i < n; i++ {
		sc.arrivals[i] = 0
		sc.periods[i] = 0
		sc.deps[i] = sc.deps[i][:0]
		sc.indeg[i] = 0
	}
}

// Evaluate scores a strategy against the cost model using the paper's
// analytic formulation: per-edge loads by the bandwidth-sharing rules of
// Eq. 3 (summed across sub-collectives), chunk ready-time recursion of
// Eq. 2, and pipeline completion of Eq. 5–6.
//
// Two of the paper's Eq. 3 cases are encoded structurally in this IR
// rather than as per-node flags: aggregation (a_{m,g} = 1) happens exactly
// where flows terminate, so merged data continues as the aggregator's own
// single flow; and broadcast replica-grouping is realised by hierarchical
// trees in which each edge carries one flow. Under that encoding the load
// N^m_{i,j} of every primitive is simply the number of flows traversing
// the edge, which also matches what the executor physically sends.
//
// For AllReduce the reduce stage is evaluated as synthesised and the
// broadcast stage on the reversed graph; the two stages pipeline
// chunk-by-chunk (Sec. V-B), so the combined time is the lead of both
// stages plus the chunk count times the slower stage's bottleneck.
func Evaluate(c *Costs, s *strategy.Strategy) (*Eval, error) {
	if err := s.Validate(c.graph); err != nil {
		return nil, err
	}

	// Pass 1: per-edge loads summed over all sub-collectives (Eq. 3
	// couples them). The AllReduce broadcast stage pipelines with the
	// reduce stage, and with rotated per-sub roots its reversed flows
	// land on edges the forward stage of other sub-collectives also
	// uses, so both stages contribute to one shared load table.
	scr := c.scratch()
	loads := scr.loads
	clear(loads)
	for i := range s.SubCollectives {
		sc := &s.SubCollectives[i]
		if err := accumulateLoads(c.graph, sc, false, loads); err != nil {
			return nil, err
		}
		if s.Primitive == strategy.AllReduce {
			if err := accumulateLoads(c.graph, sc, true, loads); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: ready-time recursion per sub-collective.
	ev := &Eval{Subs: make([]SubEval, len(s.SubCollectives))}
	for i := range s.SubCollectives {
		sc := &s.SubCollectives[i]
		fwd, err := subEval(c, sc, s.Primitive, loads, false)
		if err != nil {
			return nil, err
		}
		se := fwd
		if s.Primitive == strategy.AllReduce {
			rev, err := subEval(c, sc, s.Primitive, loads, true)
			if err != nil {
				return nil, err
			}
			bottle := fwd.Bottle
			if rev.Bottle > bottle {
				bottle = rev.Bottle
			}
			se = SubEval{
				Lead:   fwd.Lead + rev.Lead,
				Bottle: bottle,
				Chunks: fwd.Chunks,
			}
			se.Time = se.Lead + time.Duration(se.Chunks)*bottle
		}
		ev.Subs[i] = se
		if se.Time > ev.Time {
			ev.Time = se.Time
		}
	}
	return ev, nil
}

// pathNode returns the i-th node of a flow's path, walking backwards for
// the broadcast stage of AllReduce. Index-based so the evaluator (called
// for every candidate strategy of the synthesis search) never materialises
// reversed path slices.
func pathNode(f *strategy.Flow, reversed bool, i int) topology.NodeID {
	if reversed {
		return f.Path[len(f.Path)-1-i]
	}
	return f.Path[i]
}

// accumulateLoads adds one sub-collective's per-edge flow counts.
func accumulateLoads(g *topology.Graph, sc *strategy.SubCollective, reversed bool, loads []int) error {
	for i := range sc.Flows {
		f := &sc.Flows[i]
		for j := 1; j < len(f.Path); j++ {
			eid, ok := g.EdgeBetween(pathNode(f, reversed, j-1), pathNode(f, reversed, j))
			if !ok {
				return fmt.Errorf("synth: no edge %v -> %v", pathNode(f, reversed, j-1), pathNode(f, reversed, j))
			}
			loads[eid]++
		}
	}
	return nil
}

// flowOrder topologically orders flows by their data dependencies: a flow
// originating at node o runs after every flow terminating at o (whose data
// is an input — the aggregated tensor for reduce, the received replica for
// broadcast). Validation guarantees acyclicity; a cycle here is an internal
// error.
func flowOrder(scr *evalScratch, sc *strategy.SubCollective, reversed, dependent bool) ([]int, error) {
	n := len(sc.Flows)
	order := scr.order[:0]
	if !dependent {
		// AlltoAll flows carry independent local data: no ordering.
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		scr.order = order
		return order, nil
	}
	// Reset the termAt entries of every node this sub-collective touches
	// (stale entries at other nodes are never read).
	for i := range sc.Flows {
		f := &sc.Flows[i]
		scr.termAt[pathNode(f, reversed, 0)] = scr.termAt[pathNode(f, reversed, 0)][:0]
		last := pathNode(f, reversed, len(f.Path)-1)
		scr.termAt[last] = scr.termAt[last][:0]
	}
	for i := range sc.Flows {
		f := &sc.Flows[i]
		last := pathNode(f, reversed, len(f.Path)-1)
		scr.termAt[last] = append(scr.termAt[last], i)
	}
	for i := range sc.Flows {
		origin := pathNode(&sc.Flows[i], reversed, 0)
		for _, j := range scr.termAt[origin] {
			scr.deps[j] = append(scr.deps[j], i)
			scr.indeg[i]++
		}
	}
	queue := scr.queue[:0]
	for i := 0; i < n; i++ {
		if scr.indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		f := queue[head]
		order = append(order, f)
		for _, d := range scr.deps[f] {
			scr.indeg[d]--
			if scr.indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	scr.queue = queue
	scr.order = order
	if len(order) != n {
		return nil, fmt.Errorf("synth: flow dependency cycle in sub-collective %d", sc.ID)
	}
	return order, nil
}

// subEval runs the Eq. 2 ready-time recursion for one sub-collective given
// the (global) per-edge loads.
func subEval(c *Costs, sc *strategy.SubCollective, p strategy.Primitive, loads []int, reversed bool) (SubEval, error) {
	dependent := p != strategy.AlltoAll
	scr := c.scratch()
	scr.perFlow(len(sc.Flows))
	// Reset the per-node state of every node this sub-collective touches
	// (stale entries at other nodes are never read).
	for i := range sc.Flows {
		f := &sc.Flows[i]
		origin := pathNode(f, reversed, 0)
		dst := pathNode(f, reversed, len(f.Path)-1)
		scr.waitH[origin], scr.waitH[dst] = 0, 0
		scr.periodAt[origin], scr.periodAt[dst] = 0, 0
	}
	order, err := flowOrder(scr, sc, reversed, dependent)
	if err != nil {
		return SubEval{}, err
	}

	aggregating := p.NeedsAggregation() && !reversed

	chunk := sc.ChunkBytes
	if chunk > sc.Bytes {
		chunk = sc.Bytes
	}
	// Per-chunk GPU-side costs the executor charges: a launch to initiate
	// each chunk's send at the source, and an aggregation kernel at every
	// flow-terminal GPU (launch plus reduce throughput).
	const launch = 4 * time.Microsecond
	aggKernel := launch + time.Duration(float64(2*chunk)/600e9*float64(time.Second))
	t := func(from, to topology.NodeID, firstHop bool) (time.Duration, error) {
		eid, ok := c.graph.EdgeBetween(from, to)
		if !ok {
			return 0, fmt.Errorf("synth: no edge %v -> %v", from, to)
		}
		bps := c.FlowBps(eid, loads[eid])
		if bps <= 0 {
			return 0, fmt.Errorf("synth: edge %v has no bandwidth", eid)
		}
		d := c.alpha[eid] + time.Duration(float64(chunk)/bps*float64(time.Second))
		if firstHop {
			// The source pays a launch per chunk, serialised on its
			// stream ahead of the link.
			d += launch
		}
		return d, nil
	}

	// waitH[n]: when node n's first chunk of data is complete — the max
	// terminal arrival over flows ending at n (Eq. 2's aggregation max;
	// for broadcast, the replica arrival). Flows originating at n start
	// there; pure sources start at 0.
	waitH := scr.waitH
	arrivals := scr.arrivals

	// periodAt[n]: the steady-state per-chunk period of the data stream
	// held at node n — the slowest link along the merged upstream tree.
	// The Eq. 2 aggregation skew (waiting for the slowest sibling's
	// FIRST chunk) is paid once and lands in the lead term; in steady
	// state the pipeline refills, so each subsequent chunk costs only
	// the bottleneck link time (this matches the event-driven executor).
	periodAt := scr.periodAt
	periods := scr.periods

	for _, fi := range order {
		f := &sc.Flows[fi]
		// h accumulates the hop-by-hop first-chunk latency; only the
		// terminal value matters, so no per-flow slice is materialised.
		h := time.Duration(0)
		period := time.Duration(0)
		if dependent {
			h = waitH[pathNode(f, reversed, 0)]
			period = periodAt[pathNode(f, reversed, 0)]
		}
		for i := 1; i < len(f.Path); i++ {
			tt, err := t(pathNode(f, reversed, i-1), pathNode(f, reversed, i), i == 1)
			if err != nil {
				return SubEval{}, err
			}
			h += tt
			if tt > period {
				period = tt
			}
		}
		if aggregating {
			// The terminal aggregation kernel is one more pipeline
			// stage: it overlaps transfers on the device stream, so
			// it gates the period only if it is the slowest stage,
			// and adds once to the first chunk's latency.
			h += aggKernel
			if aggKernel > period {
				period = aggKernel
			}
		}
		arrival := h
		arrivals[fi] = arrival
		periods[fi] = period
		dst := pathNode(f, reversed, len(f.Path)-1)
		if arrival > waitH[dst] {
			waitH[dst] = arrival
		}
		if period > periodAt[dst] {
			periodAt[dst] = period
		}
	}

	chunks := sc.Chunks()
	if p == strategy.AlltoAll {
		// Each AlltoAll flow moves only its block — one participant's
		// share of the partition — not the whole partition.
		n := len(participantSet(sc))
		if n > 0 {
			block := sc.Bytes / int64(n)
			if block < 1 {
				block = 1
			}
			c := sc.ChunkBytes
			if c > block {
				c = block
			}
			chunks = int((block + c - 1) / c)
		}
	}
	var se SubEval
	se.Chunks = chunks
	for fi := range sc.Flows {
		f := &sc.Flows[fi]
		dst := pathNode(f, reversed, len(f.Path)-1)
		// Under aggregation the flow's first chunk is usable only once
		// all sibling chunks arrived (Eq. 2's max).
		hDst := arrivals[fi]
		if aggregating {
			hDst = waitH[dst]
		}
		bottle := periods[fi]
		tf := hDst + time.Duration(chunks)*bottle
		if hDst > se.Lead {
			se.Lead = hDst
		}
		if bottle > se.Bottle {
			se.Bottle = bottle
		}
		if tf > se.Time {
			se.Time = tf
		}
	}
	return se, nil
}

// participantSet returns the distinct ranks in a sub-collective's flows.
func participantSet(sc *strategy.SubCollective) map[int]bool {
	set := make(map[int]bool)
	for i := range sc.Flows {
		set[sc.Flows[i].SrcRank] = true
		set[sc.Flows[i].DstRank] = true
	}
	return set
}

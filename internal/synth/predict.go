package synth

import (
	"fmt"
	"time"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// SubEval is the predicted timing of one sub-collective under the paper's
// pipeline model.
type SubEval struct {
	// Lead is max_f h^f_dst: when the first chunk of the slowest flow is
	// ready at its destination (Eq. 2).
	Lead time.Duration
	// Bottle is max_f T^f_bottle: the slowest per-chunk stage (Eq. 6).
	Bottle time.Duration
	// Chunks is ceil(S_m / C_m).
	Chunks int
	// Time is max_f T_f (Eq. 5), the sub-collective completion time.
	Time time.Duration
}

// Eval is the predicted timing of a full strategy.
type Eval struct {
	Subs []SubEval
	// Time is the objective of Eq. 4: the completion time of the whole
	// collective (max over sub-collectives and flows).
	Time time.Duration
}

// Evaluate scores a strategy against the cost model using the paper's
// analytic formulation: per-edge loads by the bandwidth-sharing rules of
// Eq. 3 (summed across sub-collectives), chunk ready-time recursion of
// Eq. 2, and pipeline completion of Eq. 5–6.
//
// Two of the paper's Eq. 3 cases are encoded structurally in this IR
// rather than as per-node flags: aggregation (a_{m,g} = 1) happens exactly
// where flows terminate, so merged data continues as the aggregator's own
// single flow; and broadcast replica-grouping is realised by hierarchical
// trees in which each edge carries one flow. Under that encoding the load
// N^m_{i,j} of every primitive is simply the number of flows traversing
// the edge, which also matches what the executor physically sends.
//
// For AllReduce the reduce stage is evaluated as synthesised and the
// broadcast stage on the reversed graph; the two stages pipeline
// chunk-by-chunk (Sec. V-B), so the combined time is the lead of both
// stages plus the chunk count times the slower stage's bottleneck.
func Evaluate(c *Costs, s *strategy.Strategy) (*Eval, error) {
	if err := s.Validate(c.graph); err != nil {
		return nil, err
	}

	// Pass 1: per-edge loads summed over all sub-collectives (Eq. 3
	// couples them). The AllReduce broadcast stage pipelines with the
	// reduce stage, and with rotated per-sub roots its reversed flows
	// land on edges the forward stage of other sub-collectives also
	// uses, so both stages contribute to one shared load map.
	loads := make(map[topology.EdgeID]int)
	for i := range s.SubCollectives {
		sc := &s.SubCollectives[i]
		if err := accumulateLoads(c.graph, sc, false, loads); err != nil {
			return nil, err
		}
		if s.Primitive == strategy.AllReduce {
			if err := accumulateLoads(c.graph, sc, true, loads); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: ready-time recursion per sub-collective.
	ev := &Eval{Subs: make([]SubEval, len(s.SubCollectives))}
	for i := range s.SubCollectives {
		sc := &s.SubCollectives[i]
		fwd, err := subEval(c, sc, s.Primitive, loads, false)
		if err != nil {
			return nil, err
		}
		se := fwd
		if s.Primitive == strategy.AllReduce {
			rev, err := subEval(c, sc, s.Primitive, loads, true)
			if err != nil {
				return nil, err
			}
			bottle := fwd.Bottle
			if rev.Bottle > bottle {
				bottle = rev.Bottle
			}
			se = SubEval{
				Lead:   fwd.Lead + rev.Lead,
				Bottle: bottle,
				Chunks: fwd.Chunks,
			}
			se.Time = se.Lead + time.Duration(se.Chunks)*bottle
		}
		ev.Subs[i] = se
		if se.Time > ev.Time {
			ev.Time = se.Time
		}
	}
	return ev, nil
}

// flowPath returns a flow's path, reversed for the broadcast stage of
// AllReduce.
func flowPath(f *strategy.Flow, reversed bool) []topology.NodeID {
	if !reversed {
		return f.Path
	}
	out := make([]topology.NodeID, len(f.Path))
	for i, n := range f.Path {
		out[len(f.Path)-1-i] = n
	}
	return out
}

// accumulateLoads adds one sub-collective's per-edge flow counts.
func accumulateLoads(g *topology.Graph, sc *strategy.SubCollective, reversed bool, loads map[topology.EdgeID]int) error {
	for i := range sc.Flows {
		path := flowPath(&sc.Flows[i], reversed)
		for j := 1; j < len(path); j++ {
			eid, ok := g.EdgeBetween(path[j-1], path[j])
			if !ok {
				return fmt.Errorf("synth: no edge %v -> %v", path[j-1], path[j])
			}
			loads[eid]++
		}
	}
	return nil
}

// flowOrder topologically orders flows by their data dependencies: a flow
// originating at node o runs after every flow terminating at o (whose data
// is an input — the aggregated tensor for reduce, the received replica for
// broadcast). Validation guarantees acyclicity; a cycle here is an internal
// error.
func flowOrder(sc *strategy.SubCollective, reversed, dependent bool) ([]int, error) {
	n := len(sc.Flows)
	if !dependent {
		// AlltoAll flows carry independent local data: no ordering.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
	terminatesAt := make(map[topology.NodeID][]int)
	for i := range sc.Flows {
		p := flowPath(&sc.Flows[i], reversed)
		last := p[len(p)-1]
		terminatesAt[last] = append(terminatesAt[last], i)
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i := range sc.Flows {
		origin := flowPath(&sc.Flows[i], reversed)[0]
		for _, j := range terminatesAt[origin] {
			dependents[j] = append(dependents[j], i)
			indeg[i]++
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		order = append(order, f)
		for _, d := range dependents[f] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("synth: flow dependency cycle in sub-collective %d", sc.ID)
	}
	return order, nil
}

// subEval runs the Eq. 2 ready-time recursion for one sub-collective given
// the (global) per-edge loads.
func subEval(c *Costs, sc *strategy.SubCollective, p strategy.Primitive, loads map[topology.EdgeID]int, reversed bool) (SubEval, error) {
	dependent := p != strategy.AlltoAll
	order, err := flowOrder(sc, reversed, dependent)
	if err != nil {
		return SubEval{}, err
	}

	aggregating := p.NeedsAggregation() && !reversed

	chunk := sc.ChunkBytes
	if chunk > sc.Bytes {
		chunk = sc.Bytes
	}
	// Per-chunk GPU-side costs the executor charges: a launch to initiate
	// each chunk's send at the source, and an aggregation kernel at every
	// flow-terminal GPU (launch plus reduce throughput).
	const launch = 4 * time.Microsecond
	aggKernel := launch + time.Duration(float64(2*chunk)/600e9*float64(time.Second))
	t := func(from, to topology.NodeID, firstHop bool) (time.Duration, error) {
		eid, ok := c.graph.EdgeBetween(from, to)
		if !ok {
			return 0, fmt.Errorf("synth: no edge %v -> %v", from, to)
		}
		bps := c.FlowBps(eid, loads[eid])
		if bps <= 0 {
			return 0, fmt.Errorf("synth: edge %v has no bandwidth", eid)
		}
		d := c.alpha[eid] + time.Duration(float64(chunk)/bps*float64(time.Second))
		if firstHop {
			// The source pays a launch per chunk, serialised on its
			// stream ahead of the link.
			d += launch
		}
		return d, nil
	}

	// waitH[n]: when node n's first chunk of data is complete — the max
	// terminal arrival over flows ending at n (Eq. 2's aggregation max;
	// for broadcast, the replica arrival). Flows originating at n start
	// there; pure sources start at 0.
	waitH := make(map[topology.NodeID]time.Duration)
	type result struct {
		hops    []time.Duration
		arrival time.Duration
	}
	results := make([]result, len(sc.Flows))

	// periodAt[n]: the steady-state per-chunk period of the data stream
	// held at node n — the slowest link along the merged upstream tree.
	// The Eq. 2 aggregation skew (waiting for the slowest sibling's
	// FIRST chunk) is paid once and lands in the lead term; in steady
	// state the pipeline refills, so each subsequent chunk costs only
	// the bottleneck link time (this matches the event-driven executor).
	periodAt := make(map[topology.NodeID]time.Duration)
	periods := make([]time.Duration, len(sc.Flows))

	for _, fi := range order {
		path := flowPath(&sc.Flows[fi], reversed)
		hops := make([]time.Duration, len(path))
		period := time.Duration(0)
		if dependent {
			hops[0] = waitH[path[0]]
			period = periodAt[path[0]]
		}
		for i := 1; i < len(path); i++ {
			tt, err := t(path[i-1], path[i], i == 1)
			if err != nil {
				return SubEval{}, err
			}
			hops[i] = hops[i-1] + tt
			if tt > period {
				period = tt
			}
		}
		if aggregating {
			// The terminal aggregation kernel is one more pipeline
			// stage: it overlaps transfers on the device stream, so
			// it gates the period only if it is the slowest stage,
			// and adds once to the first chunk's latency.
			hops[len(hops)-1] += aggKernel
			if aggKernel > period {
				period = aggKernel
			}
		}
		arrival := hops[len(hops)-1]
		results[fi] = result{hops: hops, arrival: arrival}
		periods[fi] = period
		dst := path[len(path)-1]
		if arrival > waitH[dst] {
			waitH[dst] = arrival
		}
		if period > periodAt[dst] {
			periodAt[dst] = period
		}
	}

	chunks := sc.Chunks()
	if p == strategy.AlltoAll {
		// Each AlltoAll flow moves only its block — one participant's
		// share of the partition — not the whole partition.
		n := len(participantSet(sc))
		if n > 0 {
			block := sc.Bytes / int64(n)
			if block < 1 {
				block = 1
			}
			c := sc.ChunkBytes
			if c > block {
				c = block
			}
			chunks = int((block + c - 1) / c)
		}
	}
	var se SubEval
	se.Chunks = chunks
	for fi := range sc.Flows {
		res := results[fi]
		path := flowPath(&sc.Flows[fi], reversed)
		dst := path[len(path)-1]
		// Under aggregation the flow's first chunk is usable only once
		// all sibling chunks arrived (Eq. 2's max).
		hDst := res.arrival
		if aggregating {
			hDst = waitH[dst]
		}
		bottle := periods[fi]
		tf := hDst + time.Duration(chunks)*bottle
		if hDst > se.Lead {
			se.Lead = hDst
		}
		if bottle > se.Bottle {
			se.Bottle = bottle
		}
		if tf > se.Time {
			se.Time = tf
		}
	}
	return se, nil
}

// participantSet returns the distinct ranks in a sub-collective's flows.
func participantSet(sc *strategy.SubCollective) map[int]bool {
	set := make(map[int]bool)
	for i := range sc.Flows {
		set[sc.Flows[i].SrcRank] = true
		set[sc.Flows[i].DstRank] = true
	}
	return set
}

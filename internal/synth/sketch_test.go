package synth

import (
	"errors"
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/ir"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// sketchBoundFactor bounds how much worse a sketched optimum may be than
// the unsketched one. A sketch only prunes candidates, so the sketched
// best is the best of a subset — it can lose, but on the small testbed
// topologies below the worst admissible family (flat-star over TCP) stays
// within this factor. A regression past it means pruning broke the search,
// not that a hint was merely costly.
const sketchBoundFactor = 8.0

func testTopologies(t *testing.T) map[string]*Costs {
	t.Helper()
	out := make(map[string]*Costs)
	for name, build := range map[string]func() (*topology.Cluster, error){
		"rdma-2x4":  func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportRDMA, 2, 4) },
		"tcp-4x4":   func() (*topology.Cluster, error) { return cluster.Homogeneous(topology.TransportTCP, 4, 4) },
		"hetero-2s": func() (*topology.Cluster, error) { return cluster.Heterogeneous(topology.TransportRDMA, 2) },
	} {
		c, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := c.LogicalGraph()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = NewCosts(g, nil)
	}
	return out
}

// validSketches enumerates feasible sketches over the given rank set:
// every hint kind alone and a few compositions. All of them must admit at
// least one candidate on any topology hosting those ranks.
func validSketches(ranks []int) []*Sketch {
	half := ranks[:len(ranks)/2]
	return []*Sketch{
		{},
		{Cut: CutServer},
		{Cut: CutFlat},
		{RingOrder: RingAsc},
		{RingOrder: RingDesc},
		{Allow: []string{"hier-star", "server-chain"}},
		{Deny: []string{"server-tree"}},
		{Leaders: append([]int(nil), ranks...)},
		{Leaders: half},
		{ChunkBytes: 1 << 20},
		{Leaders: half, RingOrder: RingDesc, Cut: CutServer, ChunkBytes: 2 << 20},
		{Cut: CutServer, Deny: []string{"server-chain"}, ChunkBytes: 512 << 10},
	}
}

// TestSketchPropertyVerifiedAndBounded is the satellite property test: on
// every <=16-rank testbed topology, every valid sketch yields a strategy
// that (a) the chunk-level IR verifier proves correct and (b) costs no
// more than sketchBoundFactor x the unsketched optimum.
func TestSketchPropertyVerifiedAndBounded(t *testing.T) {
	for name, costs := range testTopologies(t) {
		var ranks []int
		for _, id := range costs.Graph().GPUs() {
			ranks = append(ranks, costs.Graph().Node(id).Rank)
		}
		if len(ranks) > 16 {
			t.Fatalf("%s: %d ranks, property test wants <= 16", name, len(ranks))
		}
		base, err := Synthesize(costs, Request{
			Primitive: strategy.AllReduce, Bytes: 8 << 20, Root: -1, M: 4,
		})
		if err != nil {
			t.Fatalf("%s: unsketched synthesis: %v", name, err)
		}
		for i, sk := range validSketches(ranks) {
			if err := sk.Validate(); err != nil {
				t.Fatalf("%s sketch %d: not valid: %v", name, i, err)
			}
			res, err := Synthesize(costs, Request{
				Primitive: strategy.AllReduce, Bytes: 8 << 20, Root: -1, M: 4, Sketch: sk,
			})
			if err != nil {
				t.Errorf("%s sketch %d (%s): synthesis failed: %v", name, i, sk.Fingerprint(), err)
				continue
			}
			prog, err := ir.FromStrategy(res.Strategy)
			if err == nil {
				err = ir.Verify(prog)
			}
			if err != nil {
				t.Errorf("%s sketch %d (%s): IR verification rejected the sketched strategy: %v",
					name, i, sk.Fingerprint(), err)
			}
			if limit := time64(base.Eval.Time) * sketchBoundFactor; time64(res.Eval.Time) > limit {
				t.Errorf("%s sketch %d (%s): predicted %v, more than %gx the unsketched %v",
					name, i, sk.Fingerprint(), res.Eval.Time, sketchBoundFactor, base.Eval.Time)
			}
			if sk.ChunkBytes > 0 {
				for _, sc := range res.Strategy.SubCollectives {
					want := clampChunk(sk.ChunkBytes, sc.Bytes)
					if sc.ChunkBytes != want {
						t.Errorf("%s sketch %d: sub %d chunk %d, pinned %d", name, i, sc.ID, sc.ChunkBytes, want)
					}
				}
			}
		}
	}
}

func time64(d interface{ Seconds() float64 }) float64 { return d.Seconds() }

// TestSketchInfeasibleIsTyped is the satellite mutation test: a sketch
// that admits no candidate must surface ErrInfeasibleSketch (and a
// malformed one ErrInvalidSketch) — never a silent fall-back to the full
// search.
func TestSketchInfeasibleIsTyped(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(g, nil)
	for _, tc := range []struct {
		name string
		req  Request
		want error
	}{
		{"deny-everything", Request{
			Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1,
			Sketch: &Sketch{Deny: []string{"hier-star", "flat-star", "server-chain", "server-tree"}},
		}, ErrInfeasibleSketch},
		{"cut-vs-allow-contradiction", Request{
			Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1,
			Sketch: &Sketch{Cut: CutServer, Allow: []string{"flat-star"}},
		}, ErrInfeasibleSketch},
		{"leaders-disjoint-from-ranks", Request{
			Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1,
			Sketch: &Sketch{Leaders: []int{100, 101}},
		}, ErrInfeasibleSketch},
		{"fixed-root-not-a-leader", Request{
			Primitive: strategy.Reduce, Bytes: 4 << 20, Root: 0,
			Sketch: &Sketch{Leaders: []int{1, 2}},
		}, ErrInfeasibleSketch},
		{"malformed-ring-order", Request{
			Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1,
			Sketch: &Sketch{RingOrder: "sideways"},
		}, ErrInvalidSketch},
	} {
		res, err := Synthesize(costs, tc.req)
		if res != nil || !errors.Is(err, tc.want) {
			t.Errorf("%s: got (%v, %v), want a nil result wrapping %v", tc.name, res, err, tc.want)
		}
	}
}

// TestParseSketchGrammar pins the CLI grammar round trip and its error
// typing.
func TestParseSketchGrammar(t *testing.T) {
	sk, err := ParseSketch("leaders=0,4; ring=desc; cut=server; allow=hier-star,server-chain; chunk=4194304")
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Leaders) != 2 || sk.RingOrder != RingDesc || sk.Cut != CutServer ||
		len(sk.Allow) != 2 || sk.ChunkBytes != 4<<20 {
		t.Fatalf("parsed %+v", sk)
	}
	if sk2, err := ParseSketch(""); err != nil || !sk2.Empty() {
		t.Fatalf("empty spec: (%+v, %v), want empty sketch", sk2, err)
	}
	for _, spec := range []string{
		"leaders",            // not key=value
		"speed=11",           // unknown key
		"leaders=a,b",        // bad rank
		"chunk=two",          // bad size
		"chunk=-4",           // negative
		"chunk=6",            // not float32-aligned
		"ring=sideways",      // bad order
		"cut=rack",           // bad cut
		"allow=mystery-tree", // unknown family
	} {
		if _, err := ParseSketch(spec); !errors.Is(err, ErrInvalidSketch) {
			t.Errorf("spec %q: err %v, want ErrInvalidSketch", spec, err)
		}
	}
}

// TestSketchFingerprintCanonical: hint order must not affect the cache
// key, and the empty sketch must fingerprint to "" (so unsketched cache
// keys are byte-identical to the pre-sketch era).
func TestSketchFingerprintCanonical(t *testing.T) {
	a := &Sketch{Leaders: []int{4, 0}, Allow: []string{"server-chain", "hier-star"}}
	b := &Sketch{Leaders: []int{0, 4}, Allow: []string{"hier-star", "server-chain"}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("order-sensitive fingerprints: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	var empty *Sketch
	if empty.Fingerprint() != "" || (&Sketch{}).Fingerprint() != "" {
		t.Error("empty sketch must fingerprint to the empty string")
	}
}

// TestPlannerReusesBuilders: repeated synthesis over the same (graph,
// participants, sketch) triple must share one subBuilder — the
// hierarchical per-subdomain reuse the planner exists for — while a
// different sketch gets its own.
func TestPlannerReusesBuilders(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(g, nil)
	pl := NewPlanner()
	req := Request{Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1, M: 4}
	for i := 0; i < 3; i++ {
		if _, err := pl.Synthesize(costs, req); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(pl.builders); n != 1 {
		t.Errorf("3 identical syntheses built %d builders, want 1", n)
	}
	req.Sketch = &Sketch{Cut: CutServer}
	if _, err := pl.Synthesize(costs, req); err != nil {
		t.Fatal(err)
	}
	if n := len(pl.builders); n != 2 {
		t.Errorf("sketched synthesis reused the unsketched builder (%d builders, want 2)", n)
	}
	// Sub-collective synthesis over a subdomain of the same graph adds its
	// own builder but leaves the full-set one untouched.
	sub := Request{Primitive: strategy.AllReduce, Bytes: 4 << 20, Root: -1, M: 2, Ranks: []int{0, 1, 2, 3}}
	if _, err := pl.Synthesize(costs, sub); err != nil {
		t.Fatal(err)
	}
	if n := len(pl.builders); n != 3 {
		t.Errorf("subdomain synthesis: %d builders, want 3", n)
	}
}

// excludePair finds a node pair on a flow of the strategy whose exclusion
// leaves every affected flow an alternative route, plus the filtered
// graph. Deterministic: first hop (in flow order) that qualifies.
func excludePair(t *testing.T, g *topology.Graph, st *strategy.Strategy) ([2]topology.NodeID, *topology.Graph) {
	t.Helper()
	for _, sc := range st.SubCollectives {
		for _, f := range sc.Flows {
			for i := 1; i < len(f.Path); i++ {
				pair := [2]topology.NodeID{f.Path[i-1], f.Path[i]}
				fg := g.CloneFilteredEdges(func(e topology.Edge) bool {
					return !(e.From == pair[0] && e.To == pair[1]) &&
						!(e.From == pair[1] && e.To == pair[0])
				})
				ok := true
				for _, sc2 := range st.SubCollectives {
					for _, f2 := range sc2.Flows {
						if !pathUsesPair(f2.Path, pair) {
							continue
						}
						if fg.ShortestPath(f2.Path[0], f2.Path[len(f2.Path)-1]) == nil {
							ok = false
						}
					}
				}
				if ok {
					return pair, fg
				}
			}
		}
	}
	t.Fatal("no excludable pair leaves the strategy routable")
	return [2]topology.NodeID{}, nil
}

// TestPatchExcludeReroutesOnlyAffected is the incremental-synthesis core
// invariant: a single-link exclusion patch reroutes exactly the flows
// that crossed the pair, leaves every untouched sub-collective sharing
// its Flows slice with the previous strategy by pointer, and produces a
// program the IR verifier accepts.
func TestPatchExcludeReroutesOnlyAffected(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(g, nil)
	prev, err := Synthesize(costs, Request{
		Primitive: strategy.AllReduce, Bytes: 8 << 20, Root: -1, M: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair, fg := excludePair(t, g, prev.Strategy)
	patched, stats, err := Patch(costs.RemapTo(fg), prev, Delta{Kind: DeltaExclude, Pair: pair})
	if err != nil {
		t.Fatalf("patch around %v: %v", pair, err)
	}
	if stats.FlowsRerouted == 0 || stats.SubsPatched == 0 {
		t.Fatalf("pair %v was on a flow, but stats = %+v", pair, stats)
	}
	if stats.SubsTotal != len(prev.Strategy.SubCollectives) {
		t.Errorf("SubsTotal %d, want %d", stats.SubsTotal, len(prev.Strategy.SubCollectives))
	}
	if patched.Strategy == prev.Strategy {
		t.Error("patched strategy aliases the previous one despite rerouted flows")
	}
	for si := range prev.Strategy.SubCollectives {
		prevSC := &prev.Strategy.SubCollectives[si]
		patchSC := &patched.Strategy.SubCollectives[si]
		touched := false
		for _, f := range prevSC.Flows {
			if pathUsesPair(f.Path, pair) {
				touched = true
			}
		}
		if !touched {
			if len(prevSC.Flows) > 0 && &prevSC.Flows[0] != &patchSC.Flows[0] {
				t.Errorf("sub %d untouched by the delta but its Flows were copied", si)
			}
			continue
		}
		for _, f := range patchSC.Flows {
			if pathUsesPair(f.Path, pair) {
				t.Errorf("sub %d flow %d->%d still crosses excluded pair %v", si, f.SrcRank, f.DstRank, pair)
			}
		}
	}
	if patched.SolveTime != perEvalCost {
		t.Errorf("patch charged %v, want one evaluation (%v)", patched.SolveTime, perEvalCost)
	}
	prog, err := ir.FromStrategy(patched.Strategy)
	if err == nil {
		err = ir.Verify(prog)
	}
	if err != nil {
		t.Errorf("IR verification rejected the patched strategy: %v", err)
	}
}

// TestPatchReweightKeepsStructure: a reweight/readmit delta re-prices the
// previous strategy without touching its structure — the returned
// strategy is the same pointer, so downstream caches stay
// pointer-identical across a degrade/restore flap.
func TestPatchReweightKeepsStructure(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	costs := NewCosts(g, nil)
	prev, err := Synthesize(costs, Request{
		Primitive: strategy.AllReduce, Bytes: 8 << 20, Root: -1, M: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair := [2]topology.NodeID{prev.Strategy.SubCollectives[0].Flows[0].Path[0],
		prev.Strategy.SubCollectives[0].Flows[0].Path[1]}
	soft := costs.Reweighted(func(from, to topology.NodeID) float64 {
		if (from == pair[0] && to == pair[1]) || (from == pair[1] && to == pair[0]) {
			return 0.25
		}
		return 1
	})
	for _, kind := range []DeltaKind{DeltaReweight, DeltaReadmit} {
		patched, stats, err := Patch(soft, prev, Delta{Kind: kind, Pair: pair})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if patched.Strategy != prev.Strategy {
			t.Errorf("%v: structure was copied; want the previous strategy pointer", kind)
		}
		if stats.SubsPatched != 0 || stats.FlowsRerouted != 0 {
			t.Errorf("%v: stats %+v, want untouched", kind, stats)
		}
	}
	if _, _, err := Patch(costs, nil, Delta{Kind: DeltaReweight, Pair: pair}); err == nil {
		t.Error("patching a nil result must error")
	}
}

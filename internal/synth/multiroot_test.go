package synth_test

import (
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

func multiRootEnv(t *testing.T, servers, gpus int) *backend.Env {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestMultiRootAssemblies pins the structural contract of the multi-root
// synthesis: one sub-collective per rank, sub i rooted at sorted rank i
// carrying shard i, bytes covering the whole tensor, and a strategy the
// routing validator accepts.
func TestMultiRootAssemblies(t *testing.T) {
	for _, prim := range []strategy.Primitive{strategy.Reduce, strategy.Broadcast} {
		for _, sh := range []struct{ servers, gpus int }{{1, 4}, {2, 4}, {4, 4}} {
			env := multiRootEnv(t, sh.servers, sh.gpus)
			n := sh.servers * sh.gpus
			const bytes = 4 << 20
			res, err := synth.MultiRoot(synth.NewCosts(env.Graph, nil), synth.Request{
				Primitive: prim, Bytes: bytes,
			})
			if err != nil {
				t.Fatalf("%v %dx%d: %v", prim, sh.servers, sh.gpus, err)
			}
			st := res.Strategy
			if st.Primitive != prim {
				t.Fatalf("assembly primitive %v, want %v", st.Primitive, prim)
			}
			if len(st.SubCollectives) != n {
				t.Fatalf("%d sub-collectives, want %d", len(st.SubCollectives), n)
			}
			if err := st.Validate(env.Graph); err != nil {
				t.Fatalf("assembly fails routing validation: %v", err)
			}
			ranks := st.Participants()
			var total int64
			for i := range st.SubCollectives {
				sc := &st.SubCollectives[i]
				if sc.Root != ranks[i] {
					t.Errorf("sub %d rooted at %d, want %d", i, sc.Root, ranks[i])
				}
				if sc.Bytes <= 0 || sc.ChunkBytes <= 0 || sc.ChunkBytes > sc.Bytes {
					t.Errorf("sub %d has bad sizes: %d bytes, %d chunk", i, sc.Bytes, sc.ChunkBytes)
				}
				total += sc.Bytes
			}
			if total != bytes {
				t.Errorf("shards cover %d bytes, want %d", total, bytes)
			}
			if res.Eval == nil || res.SolveTime <= 0 {
				t.Errorf("missing evaluation metadata: eval=%v solve=%v", res.Eval, res.SolveTime)
			}
		}
	}
}

// TestMultiRootRejections pins the request contract.
func TestMultiRootRejections(t *testing.T) {
	env := multiRootEnv(t, 1, 4)
	costs := synth.NewCosts(env.Graph, nil)
	cases := []struct {
		name string
		req  synth.Request
	}{
		{"allreduce primitive", synth.Request{Primitive: strategy.AllReduce, Bytes: 1 << 20}},
		{"alltoall primitive", synth.Request{Primitive: strategy.AlltoAll, Bytes: 1 << 20}},
		{"one rank", synth.Request{Primitive: strategy.Reduce, Bytes: 1 << 20, Ranks: []int{0}}},
		{"no bytes", synth.Request{Primitive: strategy.Reduce, Bytes: 0}},
		{"unknown variant", synth.Request{Primitive: strategy.Reduce, Bytes: 1 << 20, ForceVariant: "no-such"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := synth.MultiRoot(costs, tc.req); err == nil {
				t.Error("request accepted, want error")
			}
		})
	}
}

// TestMultiRootFastSearch checks the latency-sensitive path still yields
// a valid assembly.
func TestMultiRootFastSearch(t *testing.T) {
	env := multiRootEnv(t, 2, 2)
	res, err := synth.MultiRoot(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.Broadcast, Bytes: 1 << 20, FastSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Strategy.Validate(env.Graph); err != nil {
		t.Fatal(err)
	}
	if len(res.Strategy.SubCollectives) != 4 {
		t.Fatalf("%d sub-collectives, want 4", len(res.Strategy.SubCollectives))
	}
}

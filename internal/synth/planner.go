// Planner: the stateful face of the synthesizer. A Planner keeps the
// subBuilder (and through it every built flow structure and intra-server
// fragment) alive across synthesis calls, so hierarchical per-subdomain
// synthesis re-derives nothing: two requests over the same participant set
// — or the same subdomain of it — share one builder, and a re-synthesis
// after a fault rebuilds only what the changed topology invalidates.
// Patch is the incremental rung below a full re-synthesis: a single-link
// delta against an already-solved strategy reroutes only the affected
// flows and re-prices the result with one evaluator pass.
package synth

import (
	"fmt"
	"strconv"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// Planner caches subBuilders across synthesis calls. The zero value is not
// usable; construct with NewPlanner. A Planner is not concurrency-safe —
// like the rest of the synthesizer it runs on the controller's event loop.
type Planner struct {
	builders map[builderKey]*subBuilder
}

// builderKey identifies one cached builder: the graph identity plus the
// canonical participant/relay/sketch signature. A fault that filters the
// graph produces a different *topology.Graph and therefore different
// builders; a healing flap that restores a previous graph pointer gets its
// old builders (and their flow caches) back verbatim.
type builderKey struct {
	g   *topology.Graph
	sig string
}

// NewPlanner returns an empty planner.
func NewPlanner() *Planner {
	return &Planner{builders: make(map[builderKey]*subBuilder)}
}

// builder returns the cached subBuilder for (graph, ranks, relays, sketch),
// building and memoising it on first use.
func (pl *Planner) builder(g *topology.Graph, ranks, relays []int, sk *Sketch) (*subBuilder, error) {
	key := builderKey{g: g, sig: participantSig(ranks, relays) + sk.Fingerprint()}
	if bld, ok := pl.builders[key]; ok {
		return bld, nil
	}
	bld, err := newSubBuilder(g, ranks, relays, sk)
	if err != nil {
		return nil, err
	}
	pl.builders[key] = bld
	return bld, nil
}

// participantSig canonically encodes sorted rank/relay sets (callers pass
// already-sorted ranks).
func participantSig(ranks, relays []int) string {
	b := make([]byte, 0, 4*(len(ranks)+len(relays))+2)
	for _, r := range ranks {
		b = strconv.AppendInt(b, int64(r), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	for _, r := range relays {
		b = strconv.AppendInt(b, int64(r), 10)
		b = append(b, ',')
	}
	return string(b)
}

// Synthesize is Synthesize with the planner's builder cache.
func (pl *Planner) Synthesize(c *Costs, req Request) (*Result, error) {
	return synthesize(pl, c, req)
}

// MultiRoot is MultiRoot with the planner's builder cache.
func (pl *Planner) MultiRoot(c *Costs, req Request) (*Result, error) {
	return multiRoot(pl, c, req)
}

// DeltaKind classifies a single-link topology/cost change.
type DeltaKind int

const (
	// DeltaExclude: the pair was written off; flows over it must reroute.
	DeltaExclude DeltaKind = iota + 1
	// DeltaReadmit: a previously excluded pair returned; the strategy's
	// structure stays valid and only the pricing changes.
	DeltaReadmit
	// DeltaReweight: the pair was down-weighted or restored (gray
	// failure); structure stays, pricing changes.
	DeltaReweight
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaExclude:
		return "exclude"
	case DeltaReadmit:
		return "readmit"
	case DeltaReweight:
		return "reweight"
	default:
		return fmt.Sprintf("delta(%d)", int(k))
	}
}

// Delta is one single-link change against a previously solved strategy.
type Delta struct {
	Kind DeltaKind
	Pair [2]topology.NodeID
}

// PatchStats reports how much of the previous strategy a Patch touched.
type PatchStats struct {
	// SubsTotal is the sub-collective count of the strategy.
	SubsTotal int
	// SubsPatched counts sub-collectives with at least one rerouted flow;
	// the rest share their Flows slices with the previous strategy by
	// pointer (the "patches only affected sub-collectives" invariant).
	SubsPatched int
	// FlowsRerouted counts individual rerouted flows.
	FlowsRerouted int
}

// Patch incrementally re-synthesises a previously solved strategy against
// a single-link delta, instead of re-running the candidate search:
//
//   - DeltaExclude reroutes only the flows whose path traverses the pair
//     (shortest path over the cost view's graph, which must already
//     exclude it); every untouched sub-collective shares its Flows slice
//     with the previous strategy verbatim.
//   - DeltaReadmit / DeltaReweight keep the whole structure and only
//     re-price it under the new cost view.
//
// The patched strategy is validated and evaluated once; SolveTime is a
// single evaluation's charge, versus the tens-to-hundreds a full search
// pays. Callers gate adoption through the IR verifier (ir.Verify) and fall
// back to full synthesis when Patch errors or the proof fails.
func Patch(c *Costs, prev *Result, d Delta) (*Result, PatchStats, error) {
	stats := PatchStats{}
	if prev == nil || prev.Strategy == nil {
		return nil, stats, fmt.Errorf("synth: nothing to patch")
	}
	st := prev.Strategy
	stats.SubsTotal = len(st.SubCollectives)
	out := st
	if d.Kind == DeltaExclude {
		patched := *st
		patched.SubCollectives = append([]strategy.SubCollective(nil), st.SubCollectives...)
		for si := range patched.SubCollectives {
			sc := &patched.SubCollectives[si]
			touched := false
			for _, f := range sc.Flows {
				if pathUsesPair(f.Path, d.Pair) {
					touched = true
					break
				}
			}
			if !touched {
				continue // Flows slice shared with prev by pointer
			}
			stats.SubsPatched++
			sc.Flows = append([]strategy.Flow(nil), sc.Flows...)
			for fi := range sc.Flows {
				f := &sc.Flows[fi]
				if !pathUsesPair(f.Path, d.Pair) {
					continue
				}
				np := c.graph.ShortestPath(f.Path[0], f.Path[len(f.Path)-1])
				if np == nil {
					return nil, stats, fmt.Errorf("%v flow %d->%d has no surviving route around (%d,%d)",
						st.Primitive, f.SrcRank, f.DstRank, d.Pair[0], d.Pair[1])
				}
				f.Path = np
				stats.FlowsRerouted++
			}
		}
		if stats.FlowsRerouted > 0 {
			out = &patched
		} else {
			// The excluded pair carried no flow of the plan (the fault was
			// collateral, e.g. probe traffic): the old structure stands and
			// only the pricing refreshes.
			stats.SubsPatched = 0
		}
	}
	ev, err := Evaluate(c, out)
	if err != nil {
		return nil, stats, fmt.Errorf("patched strategy rejected: %w", err)
	}
	return &Result{
		Strategy:  out,
		Eval:      ev,
		Variant:   prev.Variant,
		SolveTime: perEvalCost,
	}, stats, nil
}

// pathUsesPair reports whether a routed path traverses the node pair in
// either direction.
func pathUsesPair(path []topology.NodeID, pair [2]topology.NodeID) bool {
	for i := 1; i < len(path); i++ {
		if (path[i-1] == pair[0] && path[i] == pair[1]) ||
			(path[i-1] == pair[1] && path[i] == pair[0]) {
			return true
		}
	}
	return false
}

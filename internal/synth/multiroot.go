package synth

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/strategy"
)

// MultiRoot synthesises a multi-root assembly: one sub-collective per
// participating rank, with sub i rooted at ranks[i] and carrying shard i
// of the tensor. A Reduce request yields the ReduceScatter plan (every
// rank ends holding its own fully reduced shard); a Broadcast request
// yields the AllGather plan (every rank's shard reaches everyone). This
// replaces the API-layer one-collective-per-root composition: the whole
// assembly is a single strategy the executor runs as one op, and a single
// IR program the verifier can check end to end.
//
// The search mirrors Synthesize's variant × chunk-size sweep, but the
// sub-collective count and root placement are fixed by the semantics, so
// there is no M search and no root-plan search.
func MultiRoot(c *Costs, req Request) (*Result, error) {
	return multiRoot(nil, c, req)
}

func multiRoot(pl *Planner, c *Costs, req Request) (*Result, error) {
	if req.Primitive != strategy.Reduce && req.Primitive != strategy.Broadcast {
		return nil, fmt.Errorf("synth: multi-root assemblies are built from Reduce or Broadcast, not %v", req.Primitive)
	}
	ranks := req.Ranks
	if ranks == nil {
		for _, id := range c.graph.GPUs() {
			ranks = append(ranks, c.graph.Node(id).Rank)
		}
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("synth: need at least 2 participating ranks, have %d", n)
	}
	if req.Bytes <= 0 {
		return nil, fmt.Errorf("synth: non-positive tensor size %d", req.Bytes)
	}
	shards := equalParts(req.Bytes, n)
	if len(shards) != n {
		return nil, fmt.Errorf("synth: tensor of %d bytes cannot shard across %d ranks (one float32 per rank minimum)", req.Bytes, n)
	}

	grid := req.ChunkGrid
	if len(grid) == 0 {
		grid = defaultChunkGrid
	}
	variants := allVariants()
	if req.ForceVariant != "" {
		variants = nil
		for _, v := range allVariants() {
			if v.String() == req.ForceVariant {
				variants = []variant{v}
			}
		}
		if variants == nil {
			return nil, fmt.Errorf("synth: unknown variant %q", req.ForceVariant)
		}
	}
	if req.FastSearch {
		variants = variants[:1]
		if req.Sketch.Empty() || req.Sketch.ChunkBytes == 0 {
			grid = []int64{1 << 20, 4 << 20}
		}
	}
	// Sketch restrictions: the roots are fixed by the assembly's semantics
	// (one per rank), so leader hints only steer the per-server leader
	// choice inside the builder; family and chunk pruning apply as in the
	// single-root search.
	if sk := req.Sketch; !sk.Empty() {
		if err := sk.Validate(); err != nil {
			return nil, err
		}
		grid = sk.pruneGrid(grid)
		var err error
		if variants, err = sk.pruneVariants(variants); err != nil {
			return nil, err
		}
	}

	bld, err := builderFor(pl, c.graph, ranks, req.Relays, req.Sketch)
	if err != nil {
		return nil, err
	}

	evals := 0
	var best *Result
	for _, v := range variants {
		for _, chunk := range grid {
			s := &strategy.Strategy{Primitive: req.Primitive, TotalBytes: req.Bytes}
			feasible := true
			for i, root := range ranks {
				sc, err := bld.sub(req.Primitive, v, root, i)
				if err != nil {
					feasible = false
					break
				}
				sc.ID = i
				sc.Bytes = shards[i]
				sc.ChunkBytes = clampChunk(chunk, shards[i])
				s.SubCollectives = append(s.SubCollectives, *sc)
			}
			if !feasible {
				continue
			}
			evals++
			ev, err := Evaluate(c, s)
			if err != nil {
				return nil, err
			}
			res := &Result{Strategy: s, Eval: ev, Variant: v.String()}
			if best == nil || better(res, best) {
				best = res
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("synth: no feasible multi-root %v assembly over %d ranks", req.Primitive, n)
	}
	best.SolveTime = time.Duration(evals) * perEvalCost
	return best, nil
}

package synth

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// DefaultM is the default number of parallel sub-collectives (the paper
// chooses M = 4 for its testbed, Fig. 19a).
const DefaultM = 4

// defaultChunkGrid is the chunk-size search grid. The optimum trades
// pipeline depth (small chunks hide latency and kernel launches) against
// per-chunk α overhead (large chunks amortise it) — Eq. 5.
var defaultChunkGrid = []int64{
	256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20,
}

// Request describes one collective to synthesise a strategy for.
type Request struct {
	Primitive strategy.Primitive
	// Bytes is the tensor size S each GPU communicates.
	Bytes int64
	// Ranks are the contributing workers (nil = every GPU in the graph).
	Ranks []int
	// Relays are non-contributing workers whose GPUs may be used as
	// aggregation/forwarding intermediaries (Sec. IV-C).
	Relays []int
	// Root is the root rank for Reduce/Broadcast. For AllReduce a
	// negative Root lets the synthesizer rotate per-sub-collective roots
	// to spread load.
	Root int
	// M is the number of parallel sub-collectives (default DefaultM).
	M int
	// ChunkGrid overrides the chunk-size candidates.
	ChunkGrid []int64
	// ForceVariant pins the graph family ("hier-star", "flat-star",
	// "server-chain", "server-tree") — used by ablation benches. Empty
	// searches all.
	ForceVariant string
	// ExactM pins the sub-collective count to M instead of letting the
	// search also consider a single sub-collective (used by the Fig. 19a
	// parallelization-degree sweep).
	ExactM bool
	// FastSearch restricts the search to one variant and one chunk size
	// and skips partition rebalancing. The relay coordinator uses it for
	// the per-iteration phase-1/phase-2 strategies, where synthesis
	// latency matters more than the last few percent of quality (the
	// full search still produces the steady-state strategies).
	FastSearch bool
	// Sketch, when non-nil and non-empty, prunes the candidate space with
	// the supplied communication sketch (sketch.go). A sketch that admits
	// no candidate yields ErrInfeasibleSketch, never a silent full search.
	Sketch *Sketch
}

// Result is a synthesised strategy with its predicted timing.
type Result struct {
	Strategy *strategy.Strategy
	Eval     *Eval
	// Variant is the graph family chosen.
	Variant string
	// SolveTime is the simulated cost of running the synthesis (part of
	// the reconstruction overhead of Fig. 19c), derived from the number
	// of candidate evaluations.
	SolveTime time.Duration
}

// perEvalCost approximates the wall time one candidate evaluation costs the
// optimiser on rank 0 (the paper's Gurobi solve times in Fig. 19c are tens
// to hundreds of ms at testbed scale; the structured search is cheaper but
// not free).
const perEvalCost = 4 * time.Millisecond

// Synthesize derives the best strategy for the request. Callers that
// synthesise repeatedly over the same participant sets should go through a
// Planner, which keeps the flow-structure caches alive across calls.
func Synthesize(c *Costs, req Request) (*Result, error) {
	return synthesize(nil, c, req)
}

func synthesize(pl *Planner, c *Costs, req Request) (*Result, error) {
	ranks := req.Ranks
	if ranks == nil {
		for _, id := range c.graph.GPUs() {
			ranks = append(ranks, c.graph.Node(id).Rank)
		}
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return nil, fmt.Errorf("synth: need at least 2 participating ranks, have %d", len(ranks))
	}
	if req.Bytes <= 0 {
		return nil, fmt.Errorf("synth: non-positive tensor size %d", req.Bytes)
	}

	m := req.M
	if m <= 0 {
		m = DefaultM
	}
	// Partitions must hold at least one float32 element each.
	for m > 1 && req.Bytes/int64(m) < 4 {
		m--
	}

	grid := req.ChunkGrid
	if len(grid) == 0 {
		grid = defaultChunkGrid
	}

	variants, err := requestVariants(req)
	if err != nil {
		return nil, err
	}
	// Sketch pruning: families, chunk size, leader/root placement. The
	// AlltoAll structure is fixed (one flow per ordered pair), so family
	// and leader hints don't apply to it — only the chunk pin does.
	var sketchLeaders []int
	if sk := req.Sketch; !sk.Empty() {
		if err := sk.Validate(); err != nil {
			return nil, err
		}
		grid = sk.pruneGrid(grid)
		if req.Primitive != strategy.AlltoAll {
			if variants, err = sk.pruneVariants(variants); err != nil {
				return nil, err
			}
			if err := sk.checkRoot(req.Root); err != nil {
				return nil, err
			}
			if sketchLeaders, err = sk.leaderRanks(ranks); err != nil {
				return nil, err
			}
		}
	}
	bld, err := builderFor(pl, c.graph, ranks, req.Relays, req.Sketch)
	if err != nil {
		return nil, err
	}
	if req.FastSearch {
		variants = variants[:1]
		if req.Sketch.Empty() || req.Sketch.ChunkBytes == 0 {
			grid = []int64{1 << 20, 4 << 20}
		}
	}

	evals := 0
	var best *Result
	bestPerVariant := make(map[variant]*Result, len(variants))
	consider := func(s *strategy.Strategy, v variant) (*Result, error) {
		evals++
		ev, err := Evaluate(c, s)
		if err != nil {
			return nil, err
		}
		res := &Result{Strategy: s, Eval: ev, Variant: v.String()}
		if cur := bestPerVariant[v]; cur == nil || better(res, cur) {
			bestPerVariant[v] = res
		}
		if best == nil || better(res, best) {
			best = res
		}
		return res, nil
	}

	// M is a cap, not a mandate: a single sub-collective can win when
	// per-message latency dominates (small tensors, latency-bound
	// AlltoAll), so the search also evaluates m = 1.
	ms := []int{m}
	if m > 1 && !req.FastSearch && !req.ExactM {
		ms = append(ms, 1)
	}
	plans := rootPlans(c, req, ranks, sketchLeaders)
	for _, v := range variants {
		for _, chunk := range grid {
			for _, mm := range ms {
				for _, plan := range plans {
					// equalParts may clamp the partition count below mm
					// (tiny tensors), so the strategy is built from the
					// parts actually produced.
					parts := equalParts(req.Bytes, mm)
					s, err := buildStrategy(bld, req, v, len(parts), parts, chunk, plan)
					if err != nil {
						// A variant can be infeasible on this topology
						// (e.g. no NVLink and no NIC path); skip it.
						continue
					}
					if _, err := consider(s, v); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("synth: no feasible strategy for %v over %d ranks", req.Primitive, len(ranks))
	}

	// Partition rebalancing: shift bytes toward faster sub-collectives,
	// applied to every variant's best so a variant that rebalances well
	// can still win.
	if m > 1 && !req.FastSearch {
		for _, v := range variants {
			seed := bestPerVariant[v]
			if seed == nil {
				continue
			}
			chunk := seed.Strategy.SubCollectives[0].ChunkBytes
			parts := partsOf(seed.Strategy)
			ev := seed.Eval
			plan := rootsOf(seed.Strategy)
			for iter := 0; iter < 3 && len(parts) > 1; iter++ {
				parts = rebalance(parts, ev, req.Bytes)
				s, err := buildStrategy(bld, req, v, len(parts), parts, chunk, plan)
				if err != nil {
					break
				}
				res, err := consider(s, v)
				if err != nil {
					return nil, err
				}
				ev = res.Eval
			}
		}
	}

	best.SolveTime = time.Duration(evals) * perEvalCost
	return best, nil
}

// better is the search's deterministic total order: predicted time, then
// variant ordinal, then smaller chunk size, then more sub-collectives.
// Equal-cost candidates are routine for small tensors (every chunk size in
// the grid clamps to the same effective value), and comparing on time alone
// would let the candidate-loop evaluation order pick the winner — a benign
// loop reorder would silently change the synthesised strategy and break
// deterministic replay.
func better(a, b *Result) bool {
	if a.Eval.Time != b.Eval.Time {
		return a.Eval.Time < b.Eval.Time
	}
	if av, bv := parseVariant(a.Variant), parseVariant(b.Variant); av != bv {
		return av < bv
	}
	ac := a.Strategy.SubCollectives[0].ChunkBytes
	bc := b.Strategy.SubCollectives[0].ChunkBytes
	if ac != bc {
		return ac < bc
	}
	return len(a.Strategy.SubCollectives) > len(b.Strategy.SubCollectives)
}

func requestVariants(req Request) ([]variant, error) {
	if req.Primitive == strategy.AlltoAll {
		return []variant{variantFlatStar}, nil // structure fixed; name unused
	}
	if req.ForceVariant == "" {
		return allVariants(), nil
	}
	for _, v := range allVariants() {
		if v.String() == req.ForceVariant {
			return []variant{v}, nil
		}
	}
	return nil, fmt.Errorf("synth: unknown variant %q", req.ForceVariant)
}

func parseVariant(name string) variant {
	for _, v := range allVariants() {
		if v.String() == name {
			return v
		}
	}
	return variantHierStar
}

// rootPlan assigns each sub-collective index a root rank.
type rootPlan func(sub, m int) int

// rootPlans builds candidate root placements. A fixed request root yields
// one plan; AllReduce with a free root gets (a) rotation across all ranks
// (spreads load evenly — right when links are uniform) and (b) roots
// concentrated on the servers with the best profiled port bandwidth (what
// the paper's Fig. 2a adaptation does when a server's ingress degrades).
// Sketch leader hints collapse the free-root search to a single rotation
// over the hinted ranks — the placement the sketch author asked for.
func rootPlans(c *Costs, req Request, ranks, sketchLeaders []int) []rootPlan {
	if req.Primitive != strategy.AllReduce || req.Root >= 0 {
		return []rootPlan{func(sub, m int) int { return req.Root }}
	}
	if len(sketchLeaders) > 0 {
		return []rootPlan{func(sub, m int) int {
			return sketchLeaders[(sub*len(sketchLeaders)/m)%len(sketchLeaders)]
		}}
	}
	rotate := func(sub, m int) int {
		return ranks[(sub*len(ranks)/m)%len(ranks)]
	}
	plans := []rootPlan{rotate}
	if req.FastSearch {
		return plans
	}
	if good := goodServerRanks(c, ranks); len(good) > 0 && len(good) < len(ranks) {
		plans = append(plans, func(sub, m int) int {
			return good[(sub*len(good)/m)%len(good)]
		})
	}
	return plans
}

// rootsOf reconstructs a plan from an existing strategy's roots.
func rootsOf(s *strategy.Strategy) rootPlan {
	roots := make([]int, len(s.SubCollectives))
	for i := range s.SubCollectives {
		roots[i] = s.SubCollectives[i].Root
	}
	return func(sub, m int) int {
		if sub < len(roots) {
			return roots[sub]
		}
		return roots[0]
	}
}

// goodServerRanks returns the participating ranks on servers whose
// profiled aggregate port bandwidth is within 85% of the best server's —
// rooting sub-collectives only there steers the extra root-ingress load
// away from degraded servers.
func goodServerRanks(c *Costs, ranks []int) []int {
	g := c.graph
	score := make(map[int]float64)
	for _, e := range g.Edges() {
		if !e.Type.Network() {
			continue
		}
		endpoint := g.Node(e.From)
		if endpoint.Kind != topology.KindNIC {
			endpoint = g.Node(e.To)
		}
		if endpoint.Kind == topology.KindNIC {
			score[endpoint.Server] += c.agg[e.ID]
		}
	}
	best := 0.0
	for _, sc := range score {
		if sc > best {
			best = sc
		}
	}
	if best <= 0 {
		return nil
	}
	var out []int
	for _, r := range ranks {
		id, ok := g.GPUByRank(r)
		if !ok {
			continue
		}
		if score[g.Node(id).Server] >= 0.85*best {
			out = append(out, r)
		}
	}
	return out
}

// buildStrategy assembles M sub-collectives of one variant with the given
// partition sizes, a common chunk size and a root placement.
func buildStrategy(bld *subBuilder, req Request, v variant, m int, parts []int64, chunk int64, plan rootPlan) (*strategy.Strategy, error) {
	s := &strategy.Strategy{
		Primitive:  req.Primitive,
		TotalBytes: req.Bytes,
	}
	for i := 0; i < m; i++ {
		root := -1
		if req.Primitive != strategy.AlltoAll {
			root = plan(i, m)
			if root < 0 {
				root = bld.ranks[0]
			}
		}
		sc, err := bld.sub(req.Primitive, v, root, i)
		if err != nil {
			return nil, err
		}
		sc.ID = i
		sc.Bytes = parts[i]
		sc.ChunkBytes = clampChunk(chunk, parts[i])
		s.SubCollectives = append(s.SubCollectives, *sc)
	}
	return s, nil
}

// equalParts splits total into at most m non-empty float32-aligned
// partitions. The count is clamped to the number of whole elements (down to
// one), so a tiny tensor never produces zero-byte partitions, and the
// remainder — whole leftover elements plus any sub-element byte tail —
// folds into the last partition, keeping every boundary between partitions
// element-aligned.
func equalParts(total int64, m int) []int64 {
	elems := total / 4
	if elems < 1 {
		elems = 1 // sub-element tensor: one partition carries it whole
	}
	if int64(m) > elems {
		m = int(elems)
	}
	if m < 1 {
		m = 1
	}
	parts := make([]int64, m)
	base := elems / int64(m) * 4
	var used int64
	for i := 0; i < m; i++ {
		parts[i] = base
		used += base
	}
	parts[m-1] += total - used
	return parts
}

// partsOf extracts the partition sizes of a strategy.
func partsOf(s *strategy.Strategy) []int64 {
	parts := make([]int64, len(s.SubCollectives))
	for i := range s.SubCollectives {
		parts[i] = s.SubCollectives[i].Bytes
	}
	return parts
}

// rebalance reallocates bytes proportionally to each sub-collective's
// achieved throughput, keeping float32 alignment and the exact total.
func rebalance(parts []int64, ev *Eval, total int64) []int64 {
	m := len(parts)
	if m != len(ev.Subs) {
		return parts
	}
	thr := make([]float64, m)
	var sum float64
	for i, se := range ev.Subs {
		t := se.Time.Seconds()
		if t <= 0 {
			return parts
		}
		thr[i] = float64(parts[i]) / t
		sum += thr[i]
	}
	if sum <= 0 {
		return parts
	}
	out := make([]int64, m)
	var used int64
	for i := 0; i < m; i++ {
		share := int64(float64(total)*thr[i]/sum) / 4 * 4
		if share < 4 {
			share = 4
		}
		out[i] = share
		used += share
	}
	// Give the remainder (possibly negative) to the fastest sub.
	fastest := 0
	for i := 1; i < m; i++ {
		if thr[i] > thr[fastest] {
			fastest = i
		}
	}
	out[fastest] += total - used
	if out[fastest] < 4 {
		return parts // degenerate; keep previous partitioning
	}
	return out
}

func clampChunk(chunk, part int64) int64 {
	if chunk > part {
		chunk = part
	}
	if chunk < 4 {
		chunk = 4
	}
	return chunk / 4 * 4
}

package cloudtrace

import (
	"testing"
	"testing/quick"
	"time"
)

// TestGenerateBoundsProperty: for every seed, every sample of a generated
// trace stays inside the Fig. 1 envelope — bandwidth never below
// 1 − MaxBandwidthDrop of peak, latency never above 1 + MaxLatencyRise —
// and sample times are strictly increasing.
func TestGenerateBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := Generate(seed, GenOptions{})
		if len(tr.Samples) == 0 {
			t.Error("empty trace")
			return false
		}
		prev := time.Duration(-1)
		for _, s := range tr.Samples {
			if s.BandwidthScale < 1-0.34-1e-9 || s.BandwidthScale > 1+1e-9 {
				t.Errorf("seed %d: bandwidth scale %v outside [0.66, 1]", seed, s.BandwidthScale)
				return false
			}
			if s.LatencyScale < 1-1e-9 || s.LatencyScale > 1+0.17+1e-9 {
				t.Errorf("seed %d: latency scale %v outside [1, 1.17]", seed, s.LatencyScale)
				return false
			}
			if s.At <= prev {
				t.Errorf("seed %d: sample times not increasing (%v after %v)", seed, s.At, prev)
				return false
			}
			prev = s.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAmplifyBoundsProperty: amplification by any x in [0, 1) keeps every
// sample within the documented hard clamps and never *improves* a degraded
// sample (bandwidth below peak only drops further, latency above best only
// rises further).
func TestAmplifyBoundsProperty(t *testing.T) {
	f := func(seed int64, rawX uint8) bool {
		x := float64(rawX%90) / 100 // 0.00 .. 0.89
		base := Generate(seed, GenOptions{})
		amp := base.Amplify(x)
		if len(amp.Samples) != len(base.Samples) {
			t.Error("Amplify changed the sample count")
			return false
		}
		for i, s := range amp.Samples {
			b := base.Samples[i]
			if s.BandwidthScale < 0.05-1e-9 || s.BandwidthScale > 4+1e-9 {
				t.Errorf("amplified bandwidth %v outside clamps", s.BandwidthScale)
				return false
			}
			if s.LatencyScale < 0.25-1e-9 || s.LatencyScale > 8+1e-9 {
				t.Errorf("amplified latency %v outside clamps", s.LatencyScale)
				return false
			}
			if b.BandwidthScale < 1 && s.BandwidthScale > b.BandwidthScale+1e-9 {
				t.Errorf("amplification improved degraded bandwidth: %v -> %v", b.BandwidthScale, s.BandwidthScale)
				return false
			}
			if b.LatencyScale > 1 && s.LatencyScale < b.LatencyScale-1e-9 {
				t.Errorf("amplification improved inflated latency: %v -> %v", b.LatencyScale, s.LatencyScale)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

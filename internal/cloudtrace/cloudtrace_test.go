package cloudtrace

import (
	"testing"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func TestGenerateMatchesFig1Statistics(t *testing.T) {
	tr := Generate(42, GenOptions{})
	if got := tr.Duration(); got != 6*time.Hour {
		t.Fatalf("duration = %v, want 6h", got)
	}
	s := tr.Summarize()
	// The paper observes up to 34% bandwidth degradation and 17% latency
	// inflation: the trace must show substantial dips but never exceed
	// the configured bounds.
	if s.MinBandwidthScale < 0.66-1e-9 {
		t.Errorf("min bandwidth scale %.3f below paper floor 0.66", s.MinBandwidthScale)
	}
	if s.MinBandwidthScale > 0.80 {
		t.Errorf("min bandwidth scale %.3f: trace shows no meaningful dip", s.MinBandwidthScale)
	}
	if s.MaxLatencyScale > 1.17+1e-9 {
		t.Errorf("max latency scale %.3f exceeds paper ceiling 1.17", s.MaxLatencyScale)
	}
	if s.MaxLatencyScale < 1.08 {
		t.Errorf("max latency scale %.3f: no meaningful latency inflation", s.MaxLatencyScale)
	}
	for _, sm := range tr.Samples {
		if sm.BandwidthScale > 1 || sm.BandwidthScale <= 0 {
			t.Fatalf("bandwidth scale %v out of (0,1]", sm.BandwidthScale)
		}
		if sm.LatencyScale < 1 {
			t.Fatalf("latency scale %v below 1", sm.LatencyScale)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, GenOptions{Duration: time.Hour})
	b := Generate(7, GenOptions{Duration: time.Hour})
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	c := Generate(8, GenOptions{Duration: time.Hour})
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAtIsStepwiseAndClamped(t *testing.T) {
	tr := &Trace{Step: time.Minute, Samples: []Sample{
		{At: 0, BandwidthScale: 1.0, LatencyScale: 1.0},
		{At: time.Minute, BandwidthScale: 0.8, LatencyScale: 1.1},
	}}
	if got := tr.At(30 * time.Second).BandwidthScale; got != 1.0 {
		t.Errorf("At(30s) = %v, want 1.0", got)
	}
	if got := tr.At(90 * time.Second).BandwidthScale; got != 0.8 {
		t.Errorf("At(90s) = %v, want 0.8", got)
	}
	if got := tr.At(time.Hour).BandwidthScale; got != 0.8 {
		t.Errorf("At(beyond end) = %v, want last sample", got)
	}
	if got := tr.At(-time.Second).BandwidthScale; got != 1.0 {
		t.Errorf("At(negative) = %v, want first sample", got)
	}
}

func TestEmptyTraceAt(t *testing.T) {
	tr := &Trace{Step: time.Minute}
	s := tr.At(0)
	if s.BandwidthScale != 1 || s.LatencyScale != 1 {
		t.Fatalf("empty trace At = %+v, want nominal", s)
	}
	if tr.Duration() != 0 {
		t.Fatal("empty trace has nonzero duration")
	}
}

func TestAmplifyFollowsPaperRule(t *testing.T) {
	tr := &Trace{Step: time.Minute, Samples: []Sample{
		{At: 0, BandwidthScale: 0.8, LatencyScale: 1.1}, // degraded
		{At: time.Minute, BandwidthScale: 1.0, LatencyScale: 1.0},
	}}
	amp := tr.Amplify(0.5)
	// Dropped bandwidth: 0.8 × (1−0.5) = 0.4.
	if got := amp.Samples[0].BandwidthScale; got != 0.4 {
		t.Errorf("amplified drop = %v, want 0.4", got)
	}
	// Inflated latency: 1.1 × (1+0.5) = 1.65.
	if got := amp.Samples[0].LatencyScale; got < 1.649 || got > 1.651 {
		t.Errorf("amplified latency = %v, want 1.65", got)
	}
	// Nominal samples are unchanged.
	if amp.Samples[1].BandwidthScale != 1.0 {
		t.Errorf("nominal sample changed: %v", amp.Samples[1].BandwidthScale)
	}
	// x = 0 is the identity.
	id := tr.Amplify(0)
	for i := range tr.Samples {
		if id.Samples[i] != tr.Samples[i] {
			t.Fatalf("Amplify(0) changed sample %d", i)
		}
	}
}

func TestAmplifyFloorsBandwidth(t *testing.T) {
	tr := &Trace{Step: time.Minute, Samples: []Sample{
		{At: 0, BandwidthScale: 0.1, LatencyScale: 1.0},
	}}
	amp := tr.Amplify(0.99)
	if got := amp.Samples[0].BandwidthScale; got < 0.05 {
		t.Fatalf("amplified bandwidth %v below floor", got)
	}
}

func TestApplierDrivesFabric(t *testing.T) {
	c, err := topology.NewCluster(topology.TransportRDMA,
		topology.ServerSpec{GPUs: []topology.GPUModel{topology.GPUA100}, NICs: []topology.NICSpec{{BandwidthBps: 1e9}}},
		topology.ServerSpec{GPUs: []topology.GPUModel{topology.GPUA100}, NICs: []topology.NICSpec{{BandwidthBps: 1e9}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	fab := fabric.New(eng, g)
	tr := &Trace{Step: time.Minute, Samples: []Sample{
		{At: 0, BandwidthScale: 0.9, LatencyScale: 1},
		{At: time.Minute, BandwidthScale: 0.5, LatencyScale: 1.1},
	}}
	app := ApplyPerServer(fab, map[int]*Trace{1: tr})

	var netEdge topology.EdgeID = -1
	for _, e := range g.Edges() {
		if e.Type.Network() && g.Node(e.To).Server == 1 {
			netEdge = e.ID
			break
		}
	}
	if netEdge < 0 {
		t.Fatal("no network edge found")
	}
	if got := fab.Scale(netEdge); got != 0.9 {
		t.Fatalf("initial scale = %v, want 0.9", got)
	}
	eng.RunUntil(sim.Time(90 * time.Second))
	if got := fab.Scale(netEdge); got != 0.5 {
		t.Fatalf("scale after step = %v, want 0.5", got)
	}
	app.Stop()
	eng.Run()
}

func TestPerServerTracesDistinct(t *testing.T) {
	traces := PerServerTraces(3, 4, 0, GenOptions{Duration: time.Hour})
	if len(traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(traces))
	}
	a, b := traces[0], traces[1]
	same := true
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("per-server traces identical; servers would degrade in lockstep")
	}
}

func TestAmplifyIncreasesSeverity(t *testing.T) {
	base := Generate(11, GenOptions{Duration: time.Hour})
	for _, x := range []float64{0.2, 0.5, 0.8} {
		amp := base.Amplify(x)
		if amp.Summarize().MinBandwidthScale >= base.Summarize().MinBandwidthScale {
			t.Errorf("Amplify(%v) did not deepen the worst dip", x)
		}
	}
}

// Package cloudtrace generates synthetic public-cloud network-performance
// traces and applies them to a running fabric.
//
// The paper measures bandwidth and latency between two reserved cloud
// instances over six hours and observes degradation of up to 34% in
// bandwidth and 17% in latency from peak (Fig. 1), driven by cross-traffic.
// Those measurements are proprietary, so this package synthesises traces
// with the same statistics: a slow diurnal component, a bounded random walk
// and occasional sharp congestion dips, with latency inversely correlated
// to bandwidth. Fig. 18a amplifies the trace's excursions by a factor x; the
// Amplify method reproduces exactly the paper's rule (drops multiplied by
// 1−x, rises by 1+x).
package cloudtrace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
)

// Sample is one point of a trace: multiplicative deviations from nominal.
type Sample struct {
	At time.Duration
	// BandwidthScale multiplies nominal link bandwidth (1.0 = peak).
	BandwidthScale float64
	// LatencyScale multiplies nominal link latency (1.0 = best).
	LatencyScale float64
}

// Trace is a step-wise bandwidth/latency schedule.
type Trace struct {
	Step    time.Duration
	Samples []Sample
}

// GenOptions configures trace synthesis.
type GenOptions struct {
	Duration time.Duration // total trace length (default 6 h, as in Fig. 1)
	Step     time.Duration // sampling period (default 1 min)
	// MaxBandwidthDrop is the deepest sustained bandwidth degradation
	// (default 0.34, the paper's −34%).
	MaxBandwidthDrop float64
	// MaxLatencyRise is the worst latency inflation (default 0.17).
	MaxLatencyRise float64
}

func (o *GenOptions) defaults() {
	if o.Duration <= 0 {
		o.Duration = 6 * time.Hour
	}
	if o.Step <= 0 {
		o.Step = time.Minute
	}
	if o.MaxBandwidthDrop <= 0 {
		o.MaxBandwidthDrop = 0.34
	}
	if o.MaxLatencyRise <= 0 {
		o.MaxLatencyRise = 0.17
	}
}

// Generate synthesises a trace from the seed. Identical seeds and options
// yield identical traces.
func Generate(seed int64, opts GenOptions) *Trace {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))
	n := int(opts.Duration/opts.Step) + 1
	tr := &Trace{Step: opts.Step, Samples: make([]Sample, 0, n)}

	walk := 0.0
	congestion := 0.0
	phase := rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		at := time.Duration(i) * opts.Step
		hours := at.Hours()

		// Slow diurnal-style swell (cross-traffic follows tenant load).
		diurnal := 0.5 + 0.5*math.Sin(2*math.Pi*hours/6+phase) // 0..1

		// Bounded random walk.
		walk += rng.NormFloat64() * 0.05
		walk = clamp(walk, -0.5, 0.5)

		// Occasional sharp congestion events with exponential decay.
		if rng.Float64() < 0.03 {
			congestion = 0.6 + 0.4*rng.Float64()
		}
		congestion *= 0.7

		// Combine into a degradation level in [0,1].
		level := clamp(0.55*diurnal+0.35*(walk+0.5)+0.6*congestion, 0, 1)

		bw := 1 - opts.MaxBandwidthDrop*level
		lat := 1 + opts.MaxLatencyRise*level
		tr.Samples = append(tr.Samples, Sample{At: at, BandwidthScale: bw, LatencyScale: lat})
	}
	return tr
}

// At returns the sample in effect at the given offset (step-wise, holding
// the last sample beyond the end).
func (t *Trace) At(at time.Duration) Sample {
	if len(t.Samples) == 0 {
		return Sample{BandwidthScale: 1, LatencyScale: 1}
	}
	idx := int(at / t.Step)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(t.Samples) {
		idx = len(t.Samples) - 1
	}
	return t.Samples[idx]
}

// Duration returns the trace length.
func (t *Trace) Duration() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].At
}

// Amplify returns a copy whose deviations from nominal are scaled by the
// paper's Fig. 18a rule: when the traced bandwidth is below nominal the
// amplified value is trace×(1−x); when above, trace×(1+x). Latency is
// amplified symmetrically. Bandwidth is floored at 5% of nominal so links
// never vanish entirely.
func (t *Trace) Amplify(x float64) *Trace {
	out := &Trace{Step: t.Step, Samples: make([]Sample, len(t.Samples))}
	for i, s := range t.Samples {
		bw := s.BandwidthScale
		switch {
		case bw < 1:
			bw *= 1 - x
		case bw > 1:
			bw *= 1 + x
		}
		lat := s.LatencyScale
		switch {
		case lat > 1:
			lat *= 1 + x
		case lat < 1:
			lat *= 1 - x
		}
		out.Samples[i] = Sample{
			At:             s.At,
			BandwidthScale: clamp(bw, 0.05, 4),
			LatencyScale:   clamp(lat, 0.25, 8),
		}
	}
	return out
}

// Stats summarises a trace: worst-case and mean degradation.
type Stats struct {
	MinBandwidthScale  float64
	MeanBandwidthScale float64
	MaxLatencyScale    float64
	MeanLatencyScale   float64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	if len(t.Samples) == 0 {
		return Stats{MinBandwidthScale: 1, MeanBandwidthScale: 1, MaxLatencyScale: 1, MeanLatencyScale: 1}
	}
	st := Stats{MinBandwidthScale: math.Inf(1)}
	for _, s := range t.Samples {
		st.MinBandwidthScale = math.Min(st.MinBandwidthScale, s.BandwidthScale)
		st.MaxLatencyScale = math.Max(st.MaxLatencyScale, s.LatencyScale)
		st.MeanBandwidthScale += s.BandwidthScale
		st.MeanLatencyScale += s.LatencyScale
	}
	st.MeanBandwidthScale /= float64(len(t.Samples))
	st.MeanLatencyScale /= float64(len(t.Samples))
	return st
}

// String renders a short human-readable summary.
func (t *Trace) String() string {
	s := t.Summarize()
	return fmt.Sprintf("trace{%v, bw %.0f%%..100%%, lat up to +%.0f%%}",
		t.Duration(), s.MinBandwidthScale*100, (s.MaxLatencyScale-1)*100)
}

// Applier replays traces onto a fabric's network links. Each server gets its
// own trace (distinct phase/seed) applied to all network edges it touches —
// the simulator's analogue of running `tc` on every server (Sec. VI-D).
type Applier struct {
	fab     *fabric.Fabric
	tickers []*sim.Ticker
}

// ApplyPerServer starts replaying per-server traces. traces[i] governs
// server i's network edges (both directions). Servers without an entry keep
// nominal bandwidth. Replay stops by itself at the end of each trace (the
// last sample stays in effect), so a drained engine terminates; call Stop
// to cease replay earlier.
func ApplyPerServer(fab *fabric.Fabric, traces map[int]*Trace) *Applier {
	a := &Applier{fab: fab}
	eng := fab.Engine()
	for server, tr := range traces {
		server, tr := server, tr
		apply := func() {
			s := tr.At(eng.Now())
			fab.SetServerNetworkScale(server, s.BandwidthScale)
		}
		apply()
		var tk *sim.Ticker
		tk = sim.NewTicker(eng, tr.Step, func() {
			apply()
			if eng.Now() >= tr.Duration() {
				tk.Stop()
			}
		})
		a.tickers = append(a.tickers, tk)
	}
	return a
}

// Stop ceases trace replay (link scales remain at their last value).
func (a *Applier) Stop() {
	for _, t := range a.tickers {
		t.Stop()
	}
}

// PerServerTraces generates one trace per server of a cluster, seeded
// deterministically from seed, all amplified by x.
func PerServerTraces(seed int64, servers int, x float64, opts GenOptions) map[int]*Trace {
	out := make(map[int]*Trace, servers)
	for i := 0; i < servers; i++ {
		out[i] = Generate(seed+int64(i)*7919, opts).Amplify(x)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

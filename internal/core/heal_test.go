package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/chaos"
	"adapcc/internal/collective"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// strategyNVLinkHop returns a GPU→GPU hop of the strategy the first
// attempt will use, so a fault on it is guaranteed to hit the collective.
func strategyNVLinkHop(t *testing.T, a *AdapCC, bytes int64, ranks []int) (topology.NodeID, topology.NodeID) {
	t.Helper()
	g := a.Env().Graph
	res, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range res.Strategy.SubCollectives {
		for _, f := range sub.Flows {
			for h := 0; h+1 < len(f.Path); h++ {
				if g.Node(f.Path[h]).Kind == topology.KindGPU && g.Node(f.Path[h+1]).Kind == topology.KindGPU {
					return f.Path[h], f.Path[h+1]
				}
			}
		}
	}
	t.Skip("strategy uses no NVLink hop")
	return 0, 0
}

// tightHeal keeps the healing timeline within the chaos window's scale.
func tightHeal() health.Options {
	return health.Options{
		Quarantine:    500 * time.Microsecond,
		ProbeInterval: 200 * time.Microsecond,
		ProbationK:    3,
		ProbeBytes:    256 << 10,
		DeadlineFloor: 200 * time.Microsecond,
		GiveUpAfter:   50,
		MaxQuarantine: 5 * time.Millisecond,
	}
}

// runOnce runs one resilient collective to completion and returns the
// result plus the virtual time it took.
func runOnce(t *testing.T, env *backend.Env, a *AdapCC, bytes int64, opts ...ResilientOption) (ResilientResult, time.Duration) {
	t.Helper()
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, bytes)
	var got ResilientResult
	var gotErr error
	start := env.Engine.Now()
	doneAt := start
	err := a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		got, gotErr = r, err
		doneAt = env.Engine.Now()
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// Run drains past completion (stall watchdogs, background healing);
	// elapsed is measured at the completion callback.
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	checkSums(t, got, inputs, int(bytes/4))
	return got, time.Duration(doneAt - start)
}

// TestHealEndToEnd is the issue's acceptance scenario: a seeded
// degrade-with-duration chaos window collapses a strategy NVLink, the
// resilient run detects and excludes it, and after the window closes the
// health monitor probes the link back to health and re-admits it — so a
// third collective runs the full topology at pre-fault speed, with the
// heal visible in the metrics snapshot.
func TestHealEndToEnd(t *testing.T) {
	env, a := resilientEnv(t)
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph

	from, to := strategyNVLinkHop(t, a, bytes, ranks)
	fwd, ok := g.EdgeBetween(from, to)
	if !ok {
		t.Fatal("no forward edge")
	}

	// Leg 1: healthy baseline.
	base, baseElapsed := runOnce(t, env, a, bytes, WithRecovery(tightRecovery()))
	if base.Attempts != 1 {
		t.Fatalf("baseline took %d attempts", base.Attempts)
	}

	// Leg 2: a degrade window collapses the link for the first 30ms of
	// virtual time, then lifts. Both directions degrade (a sick
	// transceiver hits the lane pair).
	spec := chaos.Spec{Seed: 11, Faults: []chaos.Fault{
		{Kind: chaos.Degrade, Start: 0, Dur: 30 * time.Millisecond,
			Edge: fwd, Rank: -1, Scale: 0.0001},
	}}
	if rev, ok := g.EdgeBetween(to, from); ok {
		spec.Faults = append(spec.Faults, chaos.Fault{
			Kind: chaos.Degrade, Start: 0, Dur: 30 * time.Millisecond,
			Edge: rev, Rank: -1, Scale: 0.0001})
	}
	// The schedule itself knows when the fault clears — the healer's
	// earliest legal promotion time.
	windowEnd, permanent := spec.EdgeFaultEnd(fwd)
	if permanent || windowEnd != 30*time.Millisecond {
		t.Fatalf("EdgeFaultEnd = %v permanent=%v", windowEnd, permanent)
	}
	armAt := time.Duration(env.Engine.Now())
	ch := chaos.New(env.Engine, env.Fabric, env.GPUs, spec)
	ch.SetMetrics(reg)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}

	var healEvents []health.Event
	faulted, faultedElapsed := runOnce(t, env, a, bytes,
		WithRecovery(tightRecovery()),
		WithHeal(HealOptions{
			Options: tightHeal(),
			OnHeal:  func(ev health.Event) { healEvents = append(healEvents, ev) },
		}))
	if faulted.Attempts < 2 {
		t.Fatalf("degraded run took %d attempts, want >= 2", faulted.Attempts)
	}
	if faulted.Events[0].Report.Kind != collective.LinkFault {
		t.Fatalf("fault kind = %v, want link fault", faulted.Events[0].Report.Kind)
	}
	// The drain above also ran the healer to completion: the window
	// closed, probes passed probation, the link was re-admitted.
	if len(healEvents) != 1 {
		t.Fatalf("heal events = %d, want 1", len(healEvents))
	}
	ev := healEvents[0]
	if ev.Kind != health.KindLink {
		t.Fatalf("heal kind = %v, want link", ev.Kind)
	}
	if ev.At < sim.Time(armAt+windowEnd) {
		t.Fatalf("healed at %v, before the chaos window closed at %v",
			time.Duration(ev.At), armAt+windowEnd)
	}
	if ev.TimeToHeal <= 0 {
		t.Fatalf("TimeToHeal = %v", ev.TimeToHeal)
	}
	if left := a.ExcludedLinks(); len(left) != 0 {
		t.Fatalf("exclusions after heal: %v", left)
	}
	if a.Healer().Healed() != 1 {
		t.Fatalf("monitor healed = %d, want 1", a.Healer().Healed())
	}
	_ = faultedElapsed

	// Leg 3: the healed topology performs like the pre-fault one.
	healedRun, healedElapsed := runOnce(t, env, a, bytes, WithRecovery(tightRecovery()))
	if healedRun.Attempts != 1 {
		t.Fatalf("post-heal run took %d attempts", healedRun.Attempts)
	}
	ratio := healedElapsed.Seconds() / baseElapsed.Seconds()
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("post-heal elapsed %v vs baseline %v (ratio %.3f), want within 5%%",
			healedElapsed, baseElapsed, ratio)
	}

	// The heal shows up in the metrics snapshot.
	snap := reg.Snapshot()
	tth, ok := snap.Family("adapcc_time_to_heal_seconds")
	if !ok {
		t.Fatal("no adapcc_time_to_heal_seconds family")
	}
	var count uint64
	for _, s := range tth.Series {
		count += s.Count
	}
	if count < 1 {
		t.Fatalf("time_to_heal count = %d, want >= 1", count)
	}
	if fam, ok := snap.Family("adapcc_health_reclaimed_bandwidth_bps"); !ok || fam.Total() <= 0 {
		t.Fatalf("reclaimed bandwidth gauge missing or zero (ok=%v)", ok)
	}
	if fam, ok := snap.Family("adapcc_core_readmissions_total"); !ok || fam.Total() < 1 {
		t.Fatalf("core readmissions missing (ok=%v)", ok)
	}
}

// TestHealDisabledKeepsExclusions is the control leg: the identical
// degrade window without ResilientOptions.Heal leaves the link excluded
// forever — healing is strictly opt-in.
func TestHealDisabledKeepsExclusions(t *testing.T) {
	env, a := resilientEnv(t)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph

	from, to := strategyNVLinkHop(t, a, bytes, ranks)
	fwd, _ := g.EdgeBetween(from, to)
	spec := chaos.Spec{Seed: 11, Faults: []chaos.Fault{
		{Kind: chaos.Degrade, Start: 0, Dur: 30 * time.Millisecond,
			Edge: fwd, Rank: -1, Scale: 0.0001},
	}}
	if rev, ok := g.EdgeBetween(to, from); ok {
		spec.Faults = append(spec.Faults, chaos.Fault{
			Kind: chaos.Degrade, Start: 0, Dur: 30 * time.Millisecond,
			Edge: rev, Rank: -1, Scale: 0.0001})
	}
	ch := chaos.New(env.Engine, env.Fabric, env.GPUs, spec)
	if err := ch.Arm(); err != nil {
		t.Fatal(err)
	}

	faulted, _ := runOnce(t, env, a, bytes, WithRecovery(tightRecovery()))
	if faulted.Attempts < 2 {
		t.Fatalf("degraded run took %d attempts, want >= 2", faulted.Attempts)
	}
	if a.Healer() != nil {
		t.Fatal("healer installed without opt-in")
	}
	if left := a.ExcludedLinks(); len(left) == 0 {
		t.Fatal("exclusion vanished without healing enabled")
	}
}

// TestReadmitLinkAndRankAPI exercises the manual re-admission surface.
func TestReadmitLinkAndRankAPI(t *testing.T) {
	_, a := resilientEnv(t)
	if a.ReadmitLink(1, 2) {
		t.Fatal("readmitted a link that was never excluded")
	}
	a.ExcludeLink(1, 2)
	if len(a.ExcludedLinks()) != 1 {
		t.Fatalf("excluded links = %v", a.ExcludedLinks())
	}
	if !a.ReadmitLink(2, 1) { // order-insensitive
		t.Fatal("ReadmitLink did not lift the exclusion")
	}
	if len(a.ExcludedLinks()) != 0 {
		t.Fatalf("excluded links = %v after readmit", a.ExcludedLinks())
	}
	if a.ReadmitRank(0) {
		t.Fatal("readmitted a rank that was never excluded")
	}
	a.ExcludeRank(0)
	if !a.ReadmitRank(0) {
		t.Fatal("ReadmitRank did not lift the exclusion")
	}
}

package core_test

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// Example mirrors the paper's Sec. VI-A usage: init (detection), setup
// (profiling + contexts), then collectives. Everything runs on the
// deterministic simulation engine, so the output is stable.
func Example() {
	cl, _ := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	env, _ := backend.NewEnv(cl, 1)
	a, _ := core.New(env) // adapcc.init()
	a.Setup(func() {})    // adapcc.setup()
	env.Engine.Run()

	const bytes = 4 << 20
	inputs := backend.MakeInputs(env.AllRanks(), bytes)
	want := float32(0)
	for _, in := range inputs {
		want += in[0]
	}
	var got collective.Result
	_ = a.Run(backend.Request{ // adapcc.allreduce(tensor)
		Primitive: strategy.AllReduce,
		Bytes:     bytes,
		Inputs:    inputs,
		OnDone:    func(r collective.Result) { got = r },
	})
	env.Engine.Run()

	sumOK := true
	for _, r := range env.AllRanks() {
		if d := got.Outputs[r][0] - want; d > 1e-3 || d < -1e-3 {
			sumOK = false
		}
	}
	fmt.Printf("ranks: %d\n", len(got.Outputs))
	fmt.Printf("every rank holds the true sum: %v\n", sumOK)
	// Output:
	// ranks: 4
	// every rank holds the true sum: true
}

// ExampleAdapCC_Send shows the point-to-point path used for pipeline
// parallelism.
func ExampleAdapCC_Send() {
	cl, _ := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	env, _ := backend.NewEnv(cl, 1)
	a, _ := core.New(env)
	a.Setup(func() {})
	env.Engine.Run()

	payload := []float32{1, 2, 3, 4}
	var received []float32
	_ = a.Send(0, 3, payload, func(data []float32, _ time.Duration) { received = data })
	env.Engine.Run()
	fmt.Println(received)
	// Output:
	// [1 2 3 4]
}

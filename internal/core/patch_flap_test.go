package core

import (
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/metrics"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// patchableHop finds a hop of the synthesised AllReduce strategy that (a)
// stays inside one server — a 2-GPU server keeps every endpoint routable
// around one missing intra-server edge — and (b) is absent from at least
// one sub-collective, so an adopted patch must keep that sub verbatim.
// Returns (-1, -1) when the strategy offers none.
func patchableHop(t *testing.T, a *AdapCC, bytes int64, ranks []int) (topology.NodeID, topology.NodeID) {
	t.Helper()
	res, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	g := a.env.Graph
	usesPair := func(sc *strategy.SubCollective, x, y topology.NodeID) bool {
		for _, f := range sc.Flows {
			for h := 0; h+1 < len(f.Path); h++ {
				if (f.Path[h] == x && f.Path[h+1] == y) || (f.Path[h] == y && f.Path[h+1] == x) {
					return true
				}
			}
		}
		return false
	}
	for si := range res.Strategy.SubCollectives {
		for _, f := range res.Strategy.SubCollectives[si].Flows {
			for h := 0; h+1 < len(f.Path); h++ {
				x, y := f.Path[h], f.Path[h+1]
				if g.Node(x).Server < 0 || g.Node(x).Server != g.Node(y).Server {
					continue
				}
				for sj := range res.Strategy.SubCollectives {
					if !usesPair(&res.Strategy.SubCollectives[sj], x, y) {
						return x, y
					}
				}
			}
		}
	}
	return -1, -1
}

// TestPatchedResynthesisCounters: an exclusion whose delta is patchable
// must resolve the next strategy through synth.Patch, not a full search —
// and the patched-vs-full counters must prove that only the affected
// sub-collectives were touched while the patched program passed the IR
// verifier.
func TestPatchedResynthesisCounters(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Two pinned sub-collectives: the exclusion below hits one of them,
	// so "kept" has something to count.
	a, err := New(env, WithSkipProfiling(), WithExactM(2))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()
	const bytes = 1 << 20

	from, to := patchableHop(t, a, bytes, ranks)
	if from < 0 {
		t.Skip("no same-server hop absent from some sub-collective")
	}
	base, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	subs := len(base.Strategy.SubCollectives)

	a.ExcludeLink(from, to)
	patched, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if patched == base {
		t.Fatal("exclusion returned the unexcluded strategy")
	}

	snap := reg.Snapshot()
	if n := seriesValue(snap, "adapcc_synth_patches_total", map[string]string{"result": "adopted"}); n != 1 {
		t.Fatalf("adapcc_synth_patches_total{adopted} = %v, want 1", n)
	}
	if n := seriesValue(snap, "adapcc_synth_patches_total", map[string]string{"result": "rejected"}); n != 0 {
		t.Errorf("adapcc_synth_patches_total{rejected} = %v, want 0", n)
	}
	touched := seriesValue(snap, "adapcc_synth_patched_subs_total", map[string]string{"state": "patched"})
	kept := seriesValue(snap, "adapcc_synth_patched_subs_total", map[string]string{"state": "kept"})
	if touched < 1 || kept < 1 {
		t.Errorf("patched/kept = %v/%v, want both >= 1 (only affected subs may be touched)", touched, kept)
	}
	if int(touched+kept) != subs {
		t.Errorf("patched %v + kept %v != %d sub-collectives", touched, kept, subs)
	}
	if n := seriesValue(snap, "adapcc_synth_resolves_total", map[string]string{"mode": "patched"}); n != 1 {
		t.Errorf("adapcc_synth_resolves_total{patched} = %v, want 1", n)
	}
	if n := seriesValue(snap, "adapcc_synth_resolves_total", map[string]string{"mode": "full"}); n < 1 {
		t.Errorf("adapcc_synth_resolves_total{full} = %v, want >= 1 (the pre-fault synthesis)", n)
	}
	// Patched programs are verified unconditionally, even without
	// WithVerify: the adoption above must have recorded an IR accept.
	if n := seriesValue(snap, "adapcc_ir_verify_total", map[string]string{"result": "accept"}); n < 1 {
		t.Errorf("adapcc_ir_verify_total{accept} = %v, want >= 1 (patch adoption is gated on ir.Verify)", n)
	}
	if n := seriesValue(snap, "adapcc_ir_verify_total", map[string]string{"result": "reject"}); n != 0 {
		t.Errorf("adapcc_ir_verify_total{reject} = %v, want 0", n)
	}

	// The patched entry is cached under the exclusion fingerprint: asking
	// again is a pointer-identity hit, no second patch.
	again, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if again != patched {
		t.Error("second resolution under the same exclusion re-synthesised")
	}
	if n := seriesValue(reg.Snapshot(), "adapcc_synth_patches_total", nil); n != 1 {
		t.Errorf("cache hit ran another patch (%v attempts)", n)
	}
}

// TestFlapSoakCacheHits is the flap soak: heal flaps (exclude/readmit) and
// gray flaps (degrade/restore) cycling over the same links must converge
// to pure cache service — after the first full cycle every state revisit
// returns the previously synthesised strategy by pointer and the
// synthesizer never runs again. Run with -race in CI; the soak also
// doubles as a determinism check on the fingerprint keying.
func TestFlapSoakCacheHits(t *testing.T) {
	env, a := resilientEnv(t)
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph
	g0, _ := g.GPUByRank(0)
	g1, _ := g.GPUByRank(1)
	g2, _ := g.GPUByRank(2)

	resolve := func() *synth.Result {
		t.Helper()
		res, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	synthRuns := func() float64 {
		return seriesValue(reg.Snapshot(), "adapcc_synth_resolves_total", nil)
	}

	// One cycle visits four states: clean, excluded, degraded, both.
	cycle := func() [4]*synth.Result {
		var out [4]*synth.Result
		out[0] = resolve()
		a.ExcludeLink(g0, g1)
		out[1] = resolve()
		a.ReadmitLink(g0, g1)
		a.DegradeLink(g1, g2, 0.25)
		out[2] = resolve()
		a.ExcludeLink(g0, g1)
		out[3] = resolve()
		a.ReadmitLink(g0, g1)
		a.RestoreLink(g1, g2)
		return out
	}

	first := cycle()
	warmRuns := synthRuns()
	warmSize := a.CachedStrategies()
	const soak = 16
	for i := 0; i < soak; i++ {
		got := cycle()
		for s := range got {
			if got[s] != first[s] {
				t.Fatalf("soak cycle %d state %d missed the cache (new strategy pointer)", i, s)
			}
		}
	}
	if runs := synthRuns(); runs != warmRuns {
		t.Errorf("soak ran the synthesizer %v more times after warm-up", runs-warmRuns)
	}
	if size := a.CachedStrategies(); size != warmSize {
		t.Errorf("soak grew the cache %d -> %d; flaps must be revisits", warmSize, size)
	}
	if hits := seriesValue(reg.Snapshot(), "adapcc_strategy_cache_total", map[string]string{"result": "hit"}); hits < 4*soak {
		t.Errorf("adapcc_strategy_cache_total{hit} = %v, want >= %d", hits, 4*soak)
	}
}

package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/fabric"
	"adapcc/internal/grayfail"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// strategyNetworkEdge returns a network edge the first strategy routes a
// flow over, so congestion on it is guaranteed to hit the collective.
func strategyNetworkEdge(t *testing.T, a *AdapCC, bytes int64) topology.EdgeID {
	t.Helper()
	g := a.Env().Graph
	res, err := a.Strategy(strategy.AllReduce, bytes, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range res.Strategy.SubCollectives {
		for _, f := range sub.Flows {
			for h := 0; h+1 < len(f.Path); h++ {
				if e, ok := g.EdgeBetween(f.Path[h], f.Path[h+1]); ok && g.Edge(e).Type.Network() {
					return e
				}
			}
		}
	}
	t.Skip("strategy uses no network edge")
	return 0
}

// TestDegradeLinkReweightsSynthesis exercises the reweight rung without the
// detector: degrading every network pair makes the cross-server prediction
// strictly slower (the evaluator prices the down-weight), the strategy
// cache keeps the clean and degraded plans under separate fingerprints, and
// restoring the pairs lands back on the cached clean entry.
func TestDegradeLinkReweightsSynthesis(t *testing.T) {
	_, a := resilientEnv(t)
	const bytes = 4 << 20

	clean, err := a.Predict(strategy.AllReduce, bytes, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	cached := a.CachedStrategies()

	g := a.Env().Graph
	pairs := make(map[[2]topology.NodeID]bool)
	for _, e := range g.Edges() {
		if e.Type.Network() {
			pairs[[2]topology.NodeID{e.From, e.To}] = true
		}
	}
	for p := range pairs {
		a.DegradeLink(p[0], p[1], 0.1)
	}
	if len(a.DegradedLinks()) == 0 {
		t.Fatal("no degraded links recorded")
	}
	if a.fingerprint == "" {
		t.Fatal("degraded links left the exclusion fingerprint empty")
	}
	slow, err := a.Predict(strategy.AllReduce, bytes, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if slow <= clean {
		t.Errorf("degrading every network link did not slow the prediction: clean %v, degraded %v", clean, slow)
	}
	if got := a.CachedStrategies(); got != cached+1 {
		t.Errorf("degraded synthesis should add one cache entry: %d -> %d", cached, got)
	}

	for p := range pairs {
		a.RestoreLink(p[0], p[1])
	}
	if a.fingerprint != "" {
		t.Fatalf("restore left fingerprint %q", a.fingerprint)
	}
	if a.RestoreLink(0, 1) {
		t.Error("RestoreLink reported a change on a never-degraded pair")
	}
	back, err := a.Predict(strategy.AllReduce, bytes, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if back != clean {
		t.Errorf("restored prediction %v differs from clean %v (cache miss?)", back, clean)
	}
	if got := a.CachedStrategies(); got != cached+1 {
		t.Errorf("restored synthesis should hit the clean cache entry: have %d entries, want %d", got, cached+1)
	}
}

// TestGrayfailEndToEnd drives the full verdict loop on the live fabric: a
// rogue PFC pause throttles a strategy network port to a trickle, the
// collective's own traffic backs up behind it, the detector rules the link
// degraded (down-weighting it for the next synthesis), and once the pause
// is withdrawn the probe machinery restores it to full weight.
func TestGrayfailEndToEnd(t *testing.T) {
	env, a := resilientEnv(t)
	reg := metrics.New()
	a.SetMetrics(reg)
	const bytes = 2 << 20

	hot := strategyNetworkEdge(t, a, bytes)
	cong := env.Fabric.EnableCongestion(fabric.CongestOptions{})

	var degradedAt, restoredAt []time.Duration
	var duringDegrade int
	mon := a.EnableGrayfail(GrayfailOptions{
		// The whole backed-up neighborhood degrades behind the paused port,
		// so its probes contend with each other on the shared NIC and
		// switch ports: give them headroom above the default barely-above-
		// nominal deadline, while staying far under the 50x pause trickle.
		Options: grayfail.Options{Heal: health.Options{
			DeadlineMult: 8,
			ProbeBytes:   256 << 10,
		}},
		OnVerdict: func(ev grayfail.Event) {
			switch ev.Verdict {
			case grayfail.VerdictDegraded:
				degradedAt = append(degradedAt, time.Duration(ev.At))
				duringDegrade = len(a.DegradedLinks())
			case grayfail.VerdictRestored:
				restoredAt = append(restoredAt, time.Duration(ev.At))
				if len(a.DegradedLinks()) == 0 {
					a.Grayfail().Stop()
				}
			}
		},
	})
	if a.EnableGrayfail(GrayfailOptions{}) != mon {
		t.Fatal("EnableGrayfail is not idempotent")
	}
	// Safety horizon: if the heal machinery never promotes, stop anyway so
	// the engine can drain and the assertions below report what happened.
	env.Engine.After(time.Second, mon.Stop)

	cong.ForcePause(hot, true)
	inputs := backend.MakeInputs(env.AllRanks(), bytes)
	var done bool
	err := a.Run(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
		OnDone: func(collective.Result) {
			done = true
			cong.ForcePause(hot, false) // storm ends; the link should heal
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()

	if !done {
		t.Fatal("collective never completed")
	}
	if len(degradedAt) == 0 {
		t.Fatal("paused strategy port drew no degraded verdict")
	}
	if duringDegrade == 0 {
		t.Error("degraded verdict did not down-weight the link")
	}
	if len(restoredAt) == 0 {
		t.Fatal("link never restored after the pause was withdrawn")
	}
	if len(a.DegradedLinks()) != 0 {
		t.Errorf("links still degraded after restore: %v", a.DegradedLinks())
	}
	snap := reg.Snapshot()
	if f, ok := snap.Family("adapcc_grayfail_verdicts_total"); !ok || len(f.Series) == 0 {
		t.Error("no adapcc_grayfail_verdicts_total samples")
	}
	var reweights float64
	if f, ok := snap.Family("adapcc_core_recoveries_total"); ok {
		for _, s := range f.Series {
			if s.Labels["ladder"] == "reweight" {
				reweights += s.Value
			}
		}
	}
	if reweights == 0 {
		t.Error("no reweight recoveries recorded")
	}
}

package core

import (
	"adapcc/internal/backend"
	"adapcc/internal/collective"
)

// Queue is the Work/Result queue pair of Sec. III: the ML framework pushes
// communication requests in gradient-bucket order and they execute
// strictly in order; completed tensors surface through the result
// callback. One Queue per training session.
type Queue struct {
	a       *AdapCC
	pending []backend.Request
	busy    bool
	// Depth statistics (exposed for tests and micro-benchmarks).
	submitted int
	completed int
}

// NewQueue returns an empty work queue bound to the instance.
func (a *AdapCC) NewQueue() *Queue { return &Queue{a: a} }

// Submit appends a request to the work queue. Requests execute in
// submission order; each request's OnDone fires before the next request
// starts (matching the in-order execution of the paper's work queue).
// Errors starting a request are delivered by panicking on the engine, as
// they indicate an invalid request against an already-validated session.
func (q *Queue) Submit(req backend.Request) {
	q.submitted++
	userDone := req.OnDone
	req.OnDone = func(res collective.Result) {
		q.completed++
		if userDone != nil {
			userDone(res)
		}
		q.busy = false
		q.kick()
	}
	q.pending = append(q.pending, req)
	q.kick()
}

// Len reports queued (not yet started) requests.
func (q *Queue) Len() int { return len(q.pending) }

// Completed reports how many requests have finished.
func (q *Queue) Completed() int { return q.completed }

func (q *Queue) kick() {
	if q.busy || len(q.pending) == 0 {
		return
	}
	q.busy = true
	req := q.pending[0]
	q.pending = q.pending[1:]
	if err := q.a.Run(req); err != nil {
		panic("core: queued request failed to start: " + err.Error())
	}
}

package core

import (
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/topology"
)

func TestSendDeliversAcrossServers(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)

	data := make([]float32, 1<<18)
	for i := range data {
		data[i] = float32(i%97) * 0.5
	}
	var got []float32
	var elapsed time.Duration
	if err := a.Send(0, 3, data, func(out []float32, d time.Duration) {
		got, elapsed = out, d
	}); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if got == nil {
		t.Fatal("send never delivered")
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], data[i])
		}
	}
}

func TestSendErrors(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)
	if err := a.Send(0, 0, []float32{1}, nil); err == nil {
		t.Error("self-send accepted")
	}
	if err := a.Send(0, 1, nil, nil); err == nil {
		t.Error("empty send accepted")
	}
}

func TestGatherConcatenatesInRankOrder(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)

	const shardLen = 1 << 14
	shards := make(map[int][]float32, 4)
	for r := 0; r < 4; r++ {
		sh := make([]float32, shardLen)
		for i := range sh {
			sh[i] = float32(r*1000 + i%13)
		}
		shards[r] = sh
	}
	var got []float32
	if err := a.Gather(nil, 2, shards, func(out []float32, _ time.Duration) { got = out }); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if len(got) != 4*shardLen {
		t.Fatalf("gathered %d elems, want %d", len(got), 4*shardLen)
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < shardLen; i += 997 {
			if got[r*shardLen+i] != shards[r][i] {
				t.Fatalf("slot %d elem %d = %v, want %v", r, i, got[r*shardLen+i], shards[r][i])
			}
		}
	}
}

func TestScatterInvertsGather(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)

	const shardLen = 1 << 14
	tensor := make([]float32, 4*shardLen)
	for i := range tensor {
		tensor[i] = float32(i % 31)
	}
	var got map[int][]float32
	if err := a.Scatter(nil, 1, tensor, func(out map[int][]float32, _ time.Duration) { got = out }); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if got == nil {
		t.Fatal("scatter never completed")
	}
	for r := 0; r < 4; r++ {
		sh := got[r]
		if len(sh) != shardLen {
			t.Fatalf("rank %d shard has %d elems, want %d", r, len(sh), shardLen)
		}
		for i := 0; i < shardLen; i += 991 {
			if sh[i] != tensor[r*shardLen+i] {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, sh[i], tensor[r*shardLen+i])
			}
		}
	}
}

func TestGatherScatterErrors(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)

	if err := a.Gather(nil, 9, map[int][]float32{0: {1}, 1: {1}, 2: {1}, 3: {1}}, nil); err == nil {
		t.Error("gather with foreign root accepted")
	}
	if err := a.Gather(nil, 0, map[int][]float32{0: {1}, 1: {1, 2}, 2: {1}, 3: {1}}, nil); err == nil {
		t.Error("gather with ragged shards accepted")
	}
	if err := a.Gather([]int{0}, 0, map[int][]float32{0: {1}}, nil); err == nil {
		t.Error("single-rank gather accepted")
	}
	if err := a.Scatter(nil, 0, make([]float32, 7), nil); err == nil {
		t.Error("indivisible scatter accepted")
	}
	if err := a.Scatter(nil, 9, make([]float32, 8), nil); err == nil {
		t.Error("scatter with foreign root accepted")
	}
	if err := a.Scatter([]int{0}, 0, make([]float32, 4), nil); err == nil {
		t.Error("single-rank scatter accepted")
	}
}

// Fault-aware execution: the Fig. 19c reconstruction path driven by
// chunk-granularity fault detections instead of iteration-boundary worker
// deaths. RunResilient executes a collective with the executor's Recovery
// machinery armed; on an unrecoverable link or rank fault the controller
// excludes it, charges the reconstruction overhead (strategy re-solve +
// transmission-context set-up — profiling is skipped, because probing a
// fabric with dead links would itself hang on them), re-synthesizes over
// the surviving topology, and re-runs. The synthesis ladder degrades
// gracefully: full candidate search, then the restricted fast search, then
// a shortest-path flat ring (synth.DegradedRing), before giving up.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/relay"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// DefaultMaxAttempts bounds RunResilient's execution attempts. Every failed
// attempt permanently excludes a link or a rank, so the loop terminates
// regardless; the cap is a safety valve against pathological schedules.
const DefaultMaxAttempts = 8

// ResilientOptions is the resolved configuration of RunResilient. Callers
// construct it through the With* resilient options; the struct stays
// exported so the resolved configuration can be inspected.
type ResilientOptions struct {
	// Recovery sets the detection knobs (deadline multiple, retry budget,
	// stall timeout). Its OnFault is owned by RunResilient and must be
	// nil. Zero values take the collective package defaults.
	Recovery collective.Recovery
	// MaxAttempts bounds execution attempts (default DefaultMaxAttempts).
	MaxAttempts int
	// Coordinator, when non-nil, receives every fault via ReportLinkFault
	// so rank exclusions propagate to the training control loop alongside
	// the T_fault path. With healing enabled it also receives Readmit
	// calls for ranks that recover.
	Coordinator *relay.Coordinator
	// Heal, when non-nil, opts into elastic healing (heal.go): every
	// exclusion this run makes is watched by a background health monitor
	// and re-admitted once it passes probation. The first RunResilient
	// with Heal set installs the monitor; its knobs win over later calls.
	Heal *HealOptions
}

// ResilientOption configures one RunResilient call, in the package-wide
// With* functional-option style.
type ResilientOption func(*ResilientOptions)

// WithRecovery sets the fault-detection knobs (deadline multiple, retry
// budget, stall timeout). Its OnFault is owned by RunResilient and must
// be nil.
func WithRecovery(rec collective.Recovery) ResilientOption {
	return func(o *ResilientOptions) { o.Recovery = rec }
}

// WithMaxAttempts bounds execution attempts (default DefaultMaxAttempts).
func WithMaxAttempts(n int) ResilientOption {
	return func(o *ResilientOptions) { o.MaxAttempts = n }
}

// WithCoordinator propagates every fault to a relay coordinator via
// ReportLinkFault (and, with healing, Readmit).
func WithCoordinator(co *relay.Coordinator) ResilientOption {
	return func(o *ResilientOptions) { o.Coordinator = co }
}

// WithHeal opts into elastic healing: every exclusion this run makes is
// watched by the background health monitor and re-admitted once it passes
// probation.
func WithHeal(h HealOptions) ResilientOption {
	return func(o *ResilientOptions) { o.Heal = &h }
}

// Fault-locality classes (RecoveryEvent.Locality). The classification
// mirrors the scale path's domain decomposition, where every server is one
// simulation domain: a fault whose blast radius stays inside one server can
// be repaired by patching that server's sub-collective alone, while a fault
// on the cross-server fabric forces the global degradation ladder.
const (
	LocalityDomainLocal = "domain_local"
	LocalityBoundary    = "boundary"
)

// RecoveryEvent records one detect→exclude→re-synthesize cycle.
type RecoveryEvent struct {
	// Attempt is the (0-based) attempt that faulted.
	Attempt int
	// Report is the executor's fault declaration.
	Report collective.FaultReport
	// ExcludedPair is the link written off ([2]{-1,-1} for rank faults).
	ExcludedPair [2]topology.NodeID
	// ExcludedRanks are the ranks dropped in this cycle: the implicated
	// rank and/or ranks left unreachable by the link exclusion.
	ExcludedRanks []int
	// Ladder is the synthesis rung the retry used: "incremental", "full",
	// "fast" or "degraded-ring".
	Ladder string
	// Locality classifies the fault: LocalityDomainLocal for faults
	// confined to one server's domain, LocalityBoundary for faults on the
	// cross-server fabric.
	Locality string
	// DetectLatency is fault declaration minus attempt start.
	DetectLatency time.Duration
	// Overhead is the reconstruction charge before the retry started
	// (strategy re-solve + context set-up).
	Overhead time.Duration
}

// ResilientResult is the outcome of a RunResilient call.
type ResilientResult struct {
	// Result is the completed collective over the survivors.
	Result collective.Result
	// Survivors are the ranks that participated in the successful attempt.
	Survivors []int
	// Attempts is how many executions ran (1 = no fault).
	Attempts int
	// Events are the recovery cycles, in order.
	Events []RecoveryEvent
	// Elapsed is start-to-completion virtual time, recoveries included.
	Elapsed time.Duration
}

// TimeToRecover sums detection latency + reconstruction overhead across all
// recovery cycles: the total virtual time the fault path cost this
// collective compared to a fault-free run of the final strategy.
func (r *ResilientResult) TimeToRecover() time.Duration {
	var t time.Duration
	for _, ev := range r.Events {
		t += ev.DetectLatency + ev.Overhead
	}
	return t
}

// noteDelta records a single-link change about to be applied: the cache
// prefix of the epoch being left behind plus the delta itself, so the next
// cache miss can patch forward from that epoch's entries (patchFromPrevious)
// instead of re-searching. Must run before the mutation that moves the
// fingerprint. Successive single-link changes chain — each patch starts
// from the strategy the previous one produced.
func (a *AdapCC) noteDelta(k synth.DeltaKind, from, to topology.NodeID) {
	a.prevPrefix = a.prefix()
	a.lastDelta = &synth.Delta{Kind: k, Pair: [2]topology.NodeID{from, to}}
}

// clearDelta forgets the patch anchor: rank-level and wholesale changes
// invalidate too much structure for a single-link patch to be sound.
func (a *AdapCC) clearDelta() { a.lastDelta = nil }

// ExcludeLink writes a directed link (both directions) off the synthesis
// topology: cached strategies are dropped and every future synthesis routes
// around it. The fabric is untouched — the link may still carry traffic of
// previously-started collectives.
func (a *AdapCC) ExcludeLink(from, to topology.NodeID) {
	a.noteDelta(synth.DeltaExclude, from, to)
	a.deadPairs[[2]topology.NodeID{from, to}] = true
	a.deadPairs[[2]topology.NodeID{to, from}] = true
	a.exclusionsChanged()
}

// ExcludeRank writes a worker off the synthesis topology: its GPU node's
// links are dropped and it is removed from default participant sets.
func (a *AdapCC) ExcludeRank(rank int) {
	a.clearDelta()
	a.deadRanks[rank] = true
	a.exclusionsChanged()
}

// ExcludedRanks returns the written-off workers, sorted.
func (a *AdapCC) ExcludedRanks() []int {
	out := make([]int, 0, len(a.deadRanks))
	for r := range a.deadRanks {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ClearExclusions forgets all fault exclusions (elastic re-admission after
// repair: the counterpart of relay.Coordinator.Readmit).
func (a *AdapCC) ClearExclusions() {
	a.clearDelta()
	a.deadPairs = make(map[[2]topology.NodeID]bool)
	a.deadRanks = make(map[int]bool)
	a.exclusionsChanged()
}

// exclusionsChanged refreshes the fault-filtered views after the exclusion
// set moved. The strategy cache survives: entries are keyed under the
// exclusion fingerprint (see synthesize), so strategies solved for other
// fault sets stay addressable and a healing flap that restores a previous
// topology hits the cache instead of re-solving. Only cost changes
// (Reconstruct, AbsorbMeasurements) wipe the cache outright.
func (a *AdapCC) exclusionsChanged() {
	a.survGraph, a.survCosts, a.softCosts = nil, nil, nil
	a.fingerprint = a.exclusionFingerprint()
}

// exclusionFingerprint canonically encodes the exclusion set: the sorted
// dead pairs, the sorted dead ranks, then the sorted degraded pairs with
// their down-weights quantized to percent (a weight wobble below 1% is
// noise, not a new topology). Empty when nothing is excluded or degraded,
// so the fault-free fast path builds the exact same cache keys (and
// allocates nothing extra) as before fault support existed.
func (a *AdapCC) exclusionFingerprint() string {
	if len(a.deadPairs) == 0 && len(a.deadRanks) == 0 && len(a.softPairs) == 0 {
		return ""
	}
	links := a.ExcludedLinks()
	ranks := a.ExcludedRanks()
	soft := a.DegradedLinks()
	b := make([]byte, 0, 8+12*len(links)+6*len(ranks)+16*len(soft))
	b = append(b, "x!"...)
	for _, p := range links {
		b = strconv.AppendInt(b, int64(p[0]), 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(p[1]), 10)
		b = append(b, ',')
	}
	b = append(b, '/')
	for _, r := range ranks {
		b = strconv.AppendInt(b, int64(r), 10)
		b = append(b, ',')
	}
	if len(soft) > 0 {
		b = append(b, '~')
		for _, p := range soft {
			b = strconv.AppendInt(b, int64(p[0]), 10)
			b = append(b, '-')
			b = strconv.AppendInt(b, int64(p[1]), 10)
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(a.softPairs[p]*100), 10)
			b = append(b, ',')
		}
	}
	b = append(b, '|')
	return string(b)
}

// faultLocality classifies a fault report by server geometry: a link whose
// endpoints share a server — or a rank fault, since a GPU and its intra-
// server links live on exactly one server — is domain-local; a link between
// servers is a boundary fault on the shared fabric.
func (a *AdapCC) faultLocality(rep collective.FaultReport) string {
	if rep.Kind != collective.LinkFault {
		return LocalityDomainLocal
	}
	g := a.env.Graph
	if rep.From >= 0 && rep.To >= 0 &&
		g.Node(rep.From).Server == g.Node(rep.To).Server {
		return LocalityDomainLocal
	}
	return LocalityBoundary
}

// activeGraph returns the synthesis topology: the full graph, or a
// node-preserving clone without excluded links and without any link
// touching an excluded rank's GPU (a crashed worker cannot forward).
func (a *AdapCC) activeGraph() *topology.Graph {
	if len(a.deadPairs) == 0 && len(a.deadRanks) == 0 {
		return a.env.Graph
	}
	if a.survGraph == nil {
		deadNodes := make(map[topology.NodeID]bool, len(a.deadRanks))
		for r := range a.deadRanks {
			if id, ok := a.env.Graph.GPUByRank(r); ok {
				deadNodes[id] = true
			}
		}
		a.survGraph = a.env.Graph.CloneFilteredEdges(func(e topology.Edge) bool {
			return !a.deadPairs[[2]topology.NodeID{e.From, e.To}] &&
				!deadNodes[e.From] && !deadNodes[e.To]
		})
	}
	return a.survGraph
}

// activeCosts returns the synthesizer's cost view over activeGraph,
// remapping profiled values onto the filtered clone and down-weighting
// links the gray-failure detector has ruled degraded.
func (a *AdapCC) activeCosts() *synth.Costs {
	g := a.activeGraph()
	base := a.costs
	if g != a.env.Graph {
		if a.survCosts == nil {
			a.survCosts = a.costs.RemapTo(g)
		}
		base = a.survCosts
	}
	if len(a.softPairs) == 0 {
		return base
	}
	if a.softCosts == nil {
		a.softCosts = base.Reweighted(func(from, to topology.NodeID) float64 {
			if w, ok := a.softPairs[[2]topology.NodeID{from, to}]; ok {
				return w
			}
			return 1
		})
	}
	return a.softCosts
}

// pruneUnreachable splits ranks into the largest mutually-reachable group
// on the surviving topology and the rest. Round-trip reachability is what
// the executor needs (AllReduce runs each path forward and reversed). Ties
// between equally large groups break toward the lowest-ranked member.
func (a *AdapCC) pruneUnreachable(ranks []int) (alive, dropped []int) {
	g := a.activeGraph()
	node := make(map[int]topology.NodeID, len(ranks))
	var usable []int
	for _, r := range ranks {
		if a.deadRanks[r] {
			dropped = append(dropped, r)
			continue
		}
		id, ok := g.GPUByRank(r)
		if !ok {
			dropped = append(dropped, r)
			continue
		}
		node[r] = id
		usable = append(usable, r)
	}
	sort.Ints(usable)
	mutual := func(x, y int) bool {
		return g.ShortestPath(node[x], node[y]) != nil && g.ShortestPath(node[y], node[x]) != nil
	}
	var best []int
	for _, base := range usable {
		group := []int{base}
		for _, r := range usable {
			if r != base && mutual(base, r) {
				group = append(group, r)
			}
		}
		if len(group) > len(best) {
			best = group
		}
	}
	sort.Ints(best)
	inBest := make(map[int]bool, len(best))
	for _, r := range best {
		inBest[r] = true
	}
	for _, r := range usable {
		if !inBest[r] {
			dropped = append(dropped, r)
		}
	}
	sort.Ints(dropped)
	return best, dropped
}

// synthesizeLadder walks the degradation ladder for the survivors: the full
// candidate search, the restricted fast search, then the shortest-path flat
// ring. It returns the strategy and the rung name.
func (a *AdapCC) synthesizeLadder(req backend.Request, ranks []int) (*synth.Result, string, error) {
	res, err := a.Strategy(req.Primitive, req.Bytes, ranks, nil, req.Root)
	if err == nil {
		return res, "full", nil
	}
	res, ferr := a.FastStrategy(req.Primitive, req.Bytes, ranks, nil, req.Root)
	if ferr == nil {
		return res, "fast", nil
	}
	res, derr := synth.DegradedRing(a.activeCosts(), synth.Request{
		Primitive: req.Primitive,
		Bytes:     req.Bytes,
		Ranks:     ranks,
		Root:      req.Root,
		M:         1,
	})
	if derr == nil {
		a.lastSolveTime += res.SolveTime
		a.recordSynth("degraded-ring", res.SolveTime)
		return res, "degraded-ring", nil
	}
	return nil, "", fmt.Errorf("core: no feasible strategy over survivors: %v; fast: %v; degraded ring: %v", err, ferr, derr)
}

// patchResult is the incremental rung above the synthesis ladder: after a
// domain-local link fault it hands the last executed result and the excluded
// pair to synth.Patch, which reroutes only the flows whose path traverses
// the pair — every untouched sub-collective shares its flows with the
// previous strategy verbatim, and all partition/chunk/aggregation tuning is
// kept. The patched plan must validate on the surviving graph and pass the
// IR verifier (unconditionally); on any failure the caller falls back to
// the full ladder.
func (a *AdapCC) patchResult(prev *synth.Result, pair [2]topology.NodeID) *synth.Result {
	res, stats, err := synth.Patch(a.activeCosts(), prev, synth.Delta{Kind: synth.DeltaExclude, Pair: pair})
	if err != nil {
		a.recordPatch(stats, false)
		return nil
	}
	if err := res.Strategy.Validate(a.activeGraph()); err != nil {
		a.recordPatch(stats, false)
		return nil
	}
	if err := a.verifyPatched(res.Strategy, false); err != nil {
		a.recordPatch(stats, false)
		return nil
	}
	a.recordPatch(stats, true)
	a.recordSynth("patched", res.SolveTime)
	a.lastSolveTime += res.SolveTime
	return res
}

// resilientRun is the state of one RunResilient invocation.
type resilientRun struct {
	a      *AdapCC
	req    backend.Request
	opts   ResilientOptions
	onDone func(ResilientResult, error)

	started  time.Duration
	attempts int
	events   []RecoveryEvent
	ranks    []int
	world    int

	// Incremental-recovery state: the synthesis result the last attempt
	// executed and — when the pending fault qualifies (domain-local link
	// fault, no ranks dropped) — the excluded pair to patch around instead
	// of re-synthesizing from scratch.
	lastResult     *synth.Result
	tryIncremental bool
	patchPair      [2]topology.NodeID
}

// RunResilient executes a collective with chunk-granularity fault recovery.
// Progress happens on the simulation engine; completion or terminal failure
// is delivered through onDone (exactly once). The immediate return error
// covers malformed calls only. Like the executor it feeds, RunResilient is
// single-flight: start the next collective after onDone fires.
//
// Ranks already excluded by earlier faults are silently dropped from the
// request's participant set; the collective completes with correct
// aggregates over the survivors of the final attempt.
//
//	a.RunResilient(req, cb, core.WithMaxAttempts(4), core.WithHeal(hopts))
func (a *AdapCC) RunResilient(req backend.Request, onDone func(ResilientResult, error), options ...ResilientOption) error {
	var opts ResilientOptions
	for _, o := range options {
		o(&opts)
	}
	return a.RunResilientWithOptions(req, opts, onDone)
}

// RunResilientWithOptions is RunResilient over an explicit options struct.
//
// Deprecated: use RunResilient with With* resilient options.
func (a *AdapCC) RunResilientWithOptions(req backend.Request, opts ResilientOptions, onDone func(ResilientResult, error)) error {
	if onDone == nil {
		return fmt.Errorf("core: RunResilient needs an onDone callback")
	}
	if err := req.ValidateIn(a.env); err != nil {
		return err
	}
	if opts.Recovery.OnFault != nil {
		return fmt.Errorf("core: ResilientOptions.Recovery.OnFault is owned by RunResilient")
	}
	if req.OnDone != nil {
		return fmt.Errorf("core: use the RunResilient onDone, not Request.OnDone")
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	ranks := req.Ranks
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	if opts.Heal != nil {
		a.EnableHealing(*opts.Heal)
	}
	if opts.Coordinator != nil {
		a.healCo = opts.Coordinator
	}
	rr := &resilientRun{
		a:       a,
		req:     req,
		opts:    opts,
		onDone:  onDone,
		started: a.env.Engine.Now(),
		ranks:   append([]int(nil), ranks...),
		world:   len(ranks),
	}
	// Fault↔heal livelock guard: promotions are held for the duration of
	// the run, so every failed attempt strictly shrinks the topology and
	// the MaxAttempts termination argument still holds.
	if a.healer != nil {
		a.healer.Hold()
	}
	rr.attempt()
	return nil
}

// attempt prunes the participant set, synthesizes via the ladder and starts
// one execution; the rung used is recorded on the pending recovery event.
func (rr *resilientRun) attempt() {
	a := rr.a
	alive, droppedNow := a.pruneUnreachable(rr.ranks)
	rr.ranks = alive
	if n := len(rr.events); n > 0 && len(droppedNow) > 0 {
		rr.events[n-1].ExcludedRanks = append(rr.events[n-1].ExcludedRanks, droppedNow...)
	}
	if len(alive) < 2 {
		rr.fail(fmt.Errorf("core: only %d rank(s) survive — nothing to communicate", len(alive)))
		return
	}
	var strat *synth.Result
	var ladder string
	if rr.tryIncremental {
		rr.tryIncremental = false
		if rr.lastResult != nil && len(droppedNow) == 0 {
			if p := a.patchResult(rr.lastResult, rr.patchPair); p != nil {
				strat, ladder = p, "incremental"
			}
		}
		if strat == nil {
			// The cheap domain-local patch failed: pay the rest of the
			// full reconstruction charge (onFault charged only the
			// incremental share) before the full ladder runs.
			diff := a.setupTime() - a.incrementalSetupTime()
			if n := len(rr.events); n > 0 {
				rr.events[n-1].Overhead += diff
			}
			a.lastSetupTime = a.setupTime()
			a.env.Engine.After(diff, func() { rr.attempt() })
			return
		}
	}
	if strat == nil {
		res, l, err := a.synthesizeLadder(rr.req, alive)
		if err != nil {
			rr.fail(err)
			return
		}
		strat, ladder = res, l
	}
	if n := len(rr.events); n > 0 {
		rr.events[n-1].Ladder = ladder
		a.recordRecovery(ladder, rr.events[n-1].Locality)
	}
	rr.lastResult = strat
	active := make(map[int]bool, len(alive))
	for _, r := range alive {
		active[r] = true
	}
	rec := rr.opts.Recovery
	rec.OnFault = rr.onFault
	rr.attempts++
	err := a.env.Exec.Run(collective.Op{
		Strategy: strat.Strategy,
		Mode:     rr.req.Mode,
		Inputs:   rr.req.Inputs,
		Active:   active,
		Recovery: &rec,
		OnDone:   rr.complete,
	})
	if err != nil {
		rr.fail(fmt.Errorf("core: attempt %d failed to start: %w", rr.attempts, err))
	}
}

// onFault is the executor's fault callback: exclude, report, charge the
// reconstruction overhead, retry.
func (rr *resilientRun) onFault(rep collective.FaultReport) {
	a := rr.a
	ev := RecoveryEvent{
		Attempt:       rr.attempts - 1,
		Report:        rep,
		ExcludedPair:  [2]topology.NodeID{-1, -1},
		Locality:      a.faultLocality(rep),
		DetectLatency: rep.At - rep.Started,
	}
	a.recordFault(rep.Kind.String())
	rr.tryIncremental = false
	switch rep.Kind {
	case collective.LinkFault:
		a.ExcludeLink(rep.From, rep.To)
		ev.ExcludedPair = [2]topology.NodeID{rep.From, rep.To}
		// A link fault confined to one server qualifies for the
		// incremental rung: patch the last strategy around the pair
		// instead of walking the global synthesis ladder.
		rr.tryIncremental = ev.Locality == LocalityDomainLocal
		rr.patchPair = ev.ExcludedPair
		if a.healer != nil {
			a.healer.WatchLink(rep.From, rep.To)
		}
	case collective.StallFault:
		if rep.Rank < 0 {
			rr.events = append(rr.events, ev)
			rr.fail(fmt.Errorf("core: unattributable stall at %v — no link or rank to exclude", rep.At))
			return
		}
		a.ExcludeRank(rep.Rank)
		ev.ExcludedRanks = append(ev.ExcludedRanks, rep.Rank)
		if a.healer != nil {
			a.healer.WatchRank(rep.Rank)
		}
	}
	if rr.opts.Coordinator != nil {
		rr.opts.Coordinator.ReportLinkFault(relay.LinkFault{
			Edge: rep.Edge, From: rep.From, To: rep.To, Rank: rep.Rank, At: rep.At,
		})
	}
	if rr.attempts >= rr.opts.MaxAttempts {
		rr.events = append(rr.events, ev)
		rr.fail(fmt.Errorf("core: fault on final attempt %d/%d: %v", rr.attempts, rr.opts.MaxAttempts, rep))
		return
	}
	// The Fig. 19c reconstruction charge, minus profiling: contexts are
	// re-registered for the new strategy, the solver re-runs (charged via
	// SolveTime inside synthesis), nothing restarts. A fault that
	// qualifies for the incremental rung is charged only the faulted
	// server's share up front; if the patch then fails, attempt() charges
	// the remainder before falling back to the full ladder.
	setup := a.setupTime()
	if rr.tryIncremental {
		setup = a.incrementalSetupTime()
	}
	a.lastSetupTime = setup
	a.setupCount++
	a.recordReconstruct()
	ev.Overhead = setup
	rr.events = append(rr.events, ev)
	a.env.Engine.After(setup, func() { rr.attempt() })
}

func (rr *resilientRun) complete(res collective.Result) {
	if rr.a.healer != nil {
		rr.a.healer.Release()
	}
	out := ResilientResult{
		Result:    res,
		Survivors: append([]int(nil), rr.ranks...),
		Attempts:  rr.attempts,
		Events:    rr.events,
		Elapsed:   rr.a.env.Engine.Now() - rr.started,
	}
	rr.a.recordRecovered(out.Attempts, out.TimeToRecover())
	rr.a.recordRecoveryEvents(rr.world, rr.events)
	rr.onDone(out, nil)
}

func (rr *resilientRun) fail(err error) {
	if rr.a.healer != nil {
		rr.a.healer.Release()
	}
	out := ResilientResult{
		Survivors: append([]int(nil), rr.ranks...),
		Attempts:  rr.attempts,
		Events:    rr.events,
		Elapsed:   rr.a.env.Engine.Now() - rr.started,
	}
	rr.onDone(out, err)
}

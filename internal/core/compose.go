package core

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
)

// AllGather gathers each rank's shard into every rank: the result of rank
// r is the concatenation of all shards in rank order. It runs as ONE
// multi-root Broadcast assembly (synth.MultiRoot): n out-trees, the one
// rooted at rank i carrying shard i, executed as a single op — a single
// synthesised strategy, a single setup, a single completion — instead of
// the previous one-Broadcast-per-root composition (surviving unexported as
// composedAllGather). With verification enabled the assembly is lowered
// to IR and proven to deliver every shard everywhere before running.
//
// shards maps rank → its shard; every shard must have equal length.
// onDone receives rank → concatenated tensor and the elapsed time.
// Options (comm group, traffic class, relays) apply to the whole op.
func (a *AdapCC) AllGather(ranks []int, shards map[int][]float32, onDone func(map[int][]float32, time.Duration), opts ...backend.RunOption) error {
	ranks, shardLen, err := validateShards(a, ranks, shards)
	if err != nil {
		return fmt.Errorf("core: allgather %w", err)
	}
	cfg := backend.BuildRunConfig(opts)
	totalLen := shardLen * len(ranks)
	res, err := a.multiRootStrategy(strategy.Broadcast, int64(totalLen)*4, ranks, cfg)
	if err != nil {
		return fmt.Errorf("core: allgather: %w", err)
	}

	// Each rank's full-size input carries its own shard at its own slot;
	// sub-collective i (rooted at ranks[i], spanning the i-th partition)
	// broadcasts exactly that slice.
	inputs := make(map[int][]float32, len(ranks))
	for slot, r := range ranks {
		in := make([]float32, totalLen)
		copy(in[slot*shardLen:(slot+1)*shardLen], shards[r])
		inputs[r] = in
	}
	start := a.env.Engine.Now()
	op := collective.Op{
		Strategy: res.Strategy,
		Inputs:   inputs,
		Class:    cfg.Class,
		OnDone: func(res collective.Result) {
			results := make(map[int][]float32, len(ranks))
			for _, r := range ranks {
				out := res.Outputs[r]
				if out == nil {
					// The executor may elide a root's self-delivery; its own
					// input already holds every locally-rooted shard.
					out = inputs[r]
				}
				results[r] = out
			}
			if onDone != nil {
				onDone(results, a.env.Engine.Now()-start)
			}
		},
	}
	applyPartial(&op, cfg, ranks)
	return a.env.Exec.Run(op)
}

// ReduceScatter reduces the full tensors element-wise and leaves each
// rank with its own shard of the sum (rank i gets the i-th of len(ranks)
// equal slices). It runs as ONE multi-root Reduce assembly: n in-trees,
// the one rooted at rank i reducing shard i, executed as a single op —
// the per-root composition it replaced is gone. The tensor length must be
// divisible by the rank count.
func (a *AdapCC) ReduceScatter(ranks []int, tensors map[int][]float32, onDone func(map[int][]float32, time.Duration), opts ...backend.RunOption) error {
	ranks, total, err := validateTensors(a, ranks, tensors)
	if err != nil {
		return fmt.Errorf("core: reducescatter %w", err)
	}
	if total%len(ranks) != 0 {
		return fmt.Errorf("core: tensor length %d not divisible by %d ranks", total, len(ranks))
	}
	shardLen := total / len(ranks)
	cfg := backend.BuildRunConfig(opts)
	res, err := a.multiRootStrategy(strategy.Reduce, int64(total)*4, ranks, cfg)
	if err != nil {
		return fmt.Errorf("core: reducescatter: %w", err)
	}

	start := a.env.Engine.Now()
	op := collective.Op{
		Strategy: res.Strategy,
		Inputs:   tensors,
		Class:    cfg.Class,
		OnDone: func(res collective.Result) {
			results := make(map[int][]float32, len(ranks))
			for slot, r := range ranks {
				out := res.Outputs[r]
				if out == nil {
					// Root-output-elided case: fall back to the rank's own
					// contribution, mirroring AllGather's guard.
					out = tensors[r]
				}
				results[r] = out[slot*shardLen : (slot+1)*shardLen]
			}
			if onDone != nil {
				onDone(results, a.env.Engine.Now()-start)
			}
		},
	}
	applyPartial(&op, cfg, ranks)
	return a.env.Exec.Run(op)
}

// AlltoAll transposes the rank-indexed blocks: rank i's tensor is split
// into len(ranks) blocks and rank j ends up with the concatenation of
// every rank's j-th block (the MoE dispatch/combine pattern). This is a
// thin wrapper over Run with the first-class AlltoAll primitive.
func (a *AdapCC) AlltoAll(ranks []int, tensors map[int][]float32, onDone func(map[int][]float32, time.Duration), opts ...backend.RunOption) error {
	ranks, total, err := validateTensors(a, ranks, tensors)
	if err != nil {
		return fmt.Errorf("core: alltoall %w", err)
	}
	start := a.env.Engine.Now()
	return a.Run(backend.Request{
		Primitive: strategy.AlltoAll,
		Bytes:     int64(total) * 4,
		Ranks:     ranks,
		Root:      -1,
		Inputs:    tensors,
		OnDone: func(res collective.Result) {
			if onDone != nil {
				onDone(res.Outputs, a.env.Engine.Now()-start)
			}
		},
	}, opts...)
}

// applyPartial mirrors Run's relay handling for the first-class composed
// ops: with relays attached, only the request's ranks contribute data.
func applyPartial(op *collective.Op, cfg backend.RunConfig, ranks []int) {
	if cfg.Relays == nil {
		return
	}
	active := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		active[r] = true
	}
	op.Active = active
}

// validateTensors normalises the rank list and checks equal full-tensor
// lengths.
func validateTensors(a *AdapCC, ranks []int, tensors map[int][]float32) ([]int, int, error) {
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return nil, 0, fmt.Errorf("needs >= 2 ranks")
	}
	total := -1
	for _, r := range ranks {
		in, ok := tensors[r]
		if !ok {
			return nil, 0, fmt.Errorf("rank %d has no tensor", r)
		}
		if total == -1 {
			total = len(in)
		} else if len(in) != total {
			return nil, 0, fmt.Errorf("tensor lengths differ")
		}
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("empty tensors")
	}
	return ranks, total, nil
}

// composeDeps is the slice of AdapCC the per-root composed collectives
// depend on, injectable so tests can fake executor behaviour (e.g. a
// backend that elides root outputs).
type composeDeps struct {
	run      func(backend.Request, ...backend.RunOption) error
	now      func() sim.Time
	allRanks func() []int
}

func (a *AdapCC) composeDeps() composeDeps {
	return composeDeps{run: a.Run, now: a.env.Engine.Now, allRanks: a.env.AllRanks}
}

// composedAllGather is the paper's API-layer construction (Sec. IV-D): one
// Broadcast per GPU, all running concurrently over synthesised trees.
// AllGather's single multi-root op superseded it as the public route; it
// survives unexported as the one per-root fallback for backends without
// multi-root synthesis (its ReduceScatter sibling had no such caller left
// and is gone). Options are threaded through to every per-root Run, so
// group and traffic-class routing applies.
func composedAllGather(deps composeDeps, ranks []int, shardLen int, shards map[int][]float32, onDone func(map[int][]float32, time.Duration), opts ...backend.RunOption) error {
	start := deps.now()
	results := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		results[r] = make([]float32, shardLen*len(ranks))
	}
	barrier := sim.NewCountdown(len(ranks), func() {
		if onDone != nil {
			onDone(results, deps.now()-start)
		}
	})
	bytes := int64(shardLen) * 4
	for slot, root := range ranks {
		slot, root := slot, root
		inputs := make(map[int][]float32, len(ranks))
		for _, r := range ranks {
			inputs[r] = shards[root] // only the root's input is read
		}
		err := deps.run(backend.Request{
			Primitive: strategy.Broadcast,
			Bytes:     bytes,
			Ranks:     ranks,
			Root:      root,
			Inputs:    inputs,
			OnDone: func(res collective.Result) {
				for _, r := range ranks {
					out := res.Outputs[r]
					if out == nil && r == root {
						out = shards[root]
					}
					copy(results[r][slot*shardLen:(slot+1)*shardLen], out)
				}
				barrier.Done()
			},
		}, opts...)
		if err != nil {
			return fmt.Errorf("core: allgather broadcast from %d: %w", root, err)
		}
	}
	return nil
}

package core

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
)

// AllGather gathers each rank's shard into every rank: the result of rank
// r is the concatenation of all shards in rank order. Per the paper
// (Sec. IV-D) it is composed of one Broadcast per GPU, all running
// concurrently over synthesised trees.
//
// shards maps rank → its shard; every shard must have equal length.
// onDone receives rank → concatenated tensor and the elapsed time.
func (a *AdapCC) AllGather(ranks []int, shards map[int][]float32, onDone func(map[int][]float32, time.Duration)) error {
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return fmt.Errorf("core: allgather needs >= 2 ranks")
	}
	shardLen := -1
	for _, r := range ranks {
		sh, ok := shards[r]
		if !ok {
			return fmt.Errorf("core: rank %d has no shard", r)
		}
		if shardLen == -1 {
			shardLen = len(sh)
		} else if len(sh) != shardLen {
			return fmt.Errorf("core: shard lengths differ (%d vs %d)", len(sh), shardLen)
		}
	}
	if shardLen == 0 {
		return fmt.Errorf("core: empty shards")
	}

	start := a.env.Engine.Now()
	results := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		results[r] = make([]float32, shardLen*len(ranks))
	}
	barrier := sim.NewCountdown(len(ranks), func() {
		if onDone != nil {
			onDone(results, a.env.Engine.Now()-start)
		}
	})
	bytes := int64(shardLen) * 4
	for slot, root := range ranks {
		slot, root := slot, root
		inputs := make(map[int][]float32, len(ranks))
		for _, r := range ranks {
			inputs[r] = shards[root] // only the root's input is read
		}
		err := a.Run(backend.Request{
			Primitive: strategy.Broadcast,
			Bytes:     bytes,
			Ranks:     ranks,
			Root:      root,
			Inputs:    inputs,
			OnDone: func(res collective.Result) {
				for _, r := range ranks {
					out := res.Outputs[r]
					if out == nil && r == root {
						out = shards[root]
					}
					copy(results[r][slot*shardLen:(slot+1)*shardLen], out)
				}
				barrier.Done()
			},
		})
		if err != nil {
			return fmt.Errorf("core: allgather broadcast from %d: %w", root, err)
		}
	}
	return nil
}

// ReduceScatter reduces the full tensors element-wise and leaves each rank
// with its own shard of the sum (rank i gets the i-th of len(ranks) equal
// slices). It is composed of one Reduce per GPU over synthesised trees.
// The tensor length must be divisible by the rank count.
func (a *AdapCC) ReduceScatter(ranks []int, tensors map[int][]float32, onDone func(map[int][]float32, time.Duration)) error {
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return fmt.Errorf("core: reducescatter needs >= 2 ranks")
	}
	total := -1
	for _, r := range ranks {
		in, ok := tensors[r]
		if !ok {
			return fmt.Errorf("core: rank %d has no tensor", r)
		}
		if total == -1 {
			total = len(in)
		} else if len(in) != total {
			return fmt.Errorf("core: tensor lengths differ")
		}
	}
	if total == 0 || total%len(ranks) != 0 {
		return fmt.Errorf("core: tensor length %d not divisible by %d ranks", total, len(ranks))
	}
	shardLen := total / len(ranks)

	start := a.env.Engine.Now()
	results := make(map[int][]float32, len(ranks))
	barrier := sim.NewCountdown(len(ranks), func() {
		if onDone != nil {
			onDone(results, a.env.Engine.Now()-start)
		}
	})
	bytes := int64(shardLen) * 4
	for slot, root := range ranks {
		slot, root := slot, root
		inputs := make(map[int][]float32, len(ranks))
		for _, r := range ranks {
			inputs[r] = tensors[r][slot*shardLen : (slot+1)*shardLen]
		}
		err := a.Run(backend.Request{
			Primitive: strategy.Reduce,
			Bytes:     bytes,
			Ranks:     ranks,
			Root:      root,
			Inputs:    inputs,
			OnDone: func(res collective.Result) {
				results[root] = res.Outputs[root]
				barrier.Done()
			},
		})
		if err != nil {
			return fmt.Errorf("core: reducescatter reduce to %d: %w", root, err)
		}
	}
	return nil
}

package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/metrics"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// seriesValue sums the counter series of a family matching every given
// label pair (zero when absent).
func seriesValue(snap metrics.Snapshot, name string, labels map[string]string) float64 {
	fam, ok := snap.Family(name)
	if !ok {
		return 0
	}
	var total float64
	for _, se := range fam.Series {
		match := true
		for k, v := range labels {
			if se.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += se.Value
		}
	}
	return total
}

// strategyHop finds the first hop of the synthesized AllReduce strategy
// matching pred, or (-1, -1).
func strategyHop(t *testing.T, a *AdapCC, bytes int64, ranks []int,
	pred func(g *topology.Graph, from, to topology.NodeID) bool) (topology.NodeID, topology.NodeID) {
	t.Helper()
	res, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	g := a.env.Graph
	for _, sub := range res.Strategy.SubCollectives {
		for _, f := range sub.Flows {
			for h := 0; h+1 < len(f.Path); h++ {
				if pred(g, f.Path[h], f.Path[h+1]) {
					return f.Path[h], f.Path[h+1]
				}
			}
		}
	}
	return -1, -1
}

// TestResilientIncrementalDomainLocalPatch: a same-server NVLink hop dies
// mid-collective. The fault is domain-local, so recovery must take the
// incremental path — the previous strategy patched in place (only the flows
// crossing the dead pair rerouted) instead of a global re-synthesis — and
// charge only the subdomain setup cost. Survivor sums stay exact.
func TestResilientIncrementalDomainLocalPatch(t *testing.T) {
	env, a := resilientEnv(t)
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph

	from, to := strategyHop(t, a, bytes, ranks, func(g *topology.Graph, x, y topology.NodeID) bool {
		return g.Node(x).Kind == topology.KindGPU && g.Node(y).Kind == topology.KindGPU &&
			g.Node(x).Server == g.Node(y).Server
	})
	if from < 0 {
		t.Skip("strategy uses no same-server NVLink hop")
	}
	kill := func(x, y topology.NodeID) {
		if eid, ok := g.EdgeBetween(x, y); ok {
			env.Fabric.SetScale(eid, 0)
		}
	}
	env.Engine.After(200*time.Microsecond, func() { kill(from, to); kill(to, from) })

	inputs := backend.MakeInputs(ranks, bytes)
	var got ResilientResult
	var gotErr error
	err := a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		got, gotErr = r, err
	}, WithRecovery(tightRecovery()))
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got.Events) == 0 {
		t.Fatal("no recovery events recorded")
	}
	ev := got.Events[0]
	if ev.Report.Kind != collective.LinkFault {
		t.Fatalf("event kind = %v, want link fault", ev.Report.Kind)
	}
	if ev.Locality != LocalityDomainLocal {
		t.Errorf("locality = %q, want %q", ev.Locality, LocalityDomainLocal)
	}
	if ev.Ladder != "incremental" {
		t.Errorf("ladder = %q, want incremental (global search must not run for a domain-local fault)", ev.Ladder)
	}
	if ev.Overhead != a.incrementalSetupTime() {
		t.Errorf("overhead = %v, want the incremental setup charge %v (full setup is %v)",
			ev.Overhead, a.incrementalSetupTime(), a.setupTime())
	}
	if a.incrementalSetupTime() >= a.setupTime() {
		t.Errorf("incremental setup %v not cheaper than full setup %v", a.incrementalSetupTime(), a.setupTime())
	}
	if len(got.Survivors) != len(ranks) {
		t.Errorf("survivors = %v, want all %d ranks", got.Survivors, len(ranks))
	}
	checkSums(t, got, inputs, int(bytes/4))

	snap := reg.Snapshot()
	if n := seriesValue(snap, "adapcc_core_recoveries_total",
		map[string]string{"ladder": "incremental", "locality": LocalityDomainLocal}); n != 1 {
		t.Errorf("adapcc_core_recoveries_total{incremental,domain_local} = %v, want 1", n)
	}
	if n := seriesValue(snap, "adapcc_core_recoveries_total",
		map[string]string{"locality": LocalityBoundary}); n != 0 {
		t.Errorf("boundary recovery recorded for a same-server fault: %v", n)
	}
	// The family holds the unlabeled aggregate histogram plus one labeled
	// series per (world, locality) recovery.
	fam, ok := snap.Family("adapcc_time_to_recover_seconds")
	if !ok {
		t.Fatal("no adapcc_time_to_recover_seconds family")
	}
	labeled := false
	for _, se := range fam.Series {
		if se.Labels["world"] != "" && se.Labels["locality"] == LocalityDomainLocal {
			labeled = true
		}
	}
	if !labeled {
		t.Error("no {world, locality=domain_local} time-to-recover series recorded")
	}
}

// TestResilientBoundaryFaultFullLadder: a cross-server hop dies. Boundary
// faults cannot be patched domain-locally, so recovery must classify the
// event as boundary and fall back to the global synthesis ladder.
func TestResilientBoundaryFaultFullLadder(t *testing.T) {
	env, a := resilientEnv(t)
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph

	from, to := strategyHop(t, a, bytes, ranks, func(g *topology.Graph, x, y topology.NodeID) bool {
		return g.Node(x).Server != g.Node(y).Server
	})
	if from < 0 {
		t.Skip("strategy uses no cross-server hop")
	}
	kill := func(x, y topology.NodeID) {
		if eid, ok := g.EdgeBetween(x, y); ok {
			env.Fabric.SetScale(eid, 0)
		}
	}
	env.Engine.After(200*time.Microsecond, func() { kill(from, to); kill(to, from) })

	inputs := backend.MakeInputs(ranks, bytes)
	var got ResilientResult
	var gotErr error
	err := a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		got, gotErr = r, err
	}, WithRecovery(tightRecovery()), WithMaxAttempts(10))
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got.Events) == 0 {
		t.Fatal("no recovery events recorded")
	}
	ev := got.Events[0]
	if ev.Locality != LocalityBoundary {
		t.Errorf("locality = %q, want %q", ev.Locality, LocalityBoundary)
	}
	if ev.Ladder == "incremental" || ev.Ladder == "" {
		t.Errorf("ladder = %q, want a global ladder rung for a boundary fault", ev.Ladder)
	}
	if ev.Overhead != a.setupTime() {
		t.Errorf("overhead = %v, want the full setup charge %v", ev.Overhead, a.setupTime())
	}
	checkSums(t, got, inputs, int(bytes/4))
	snap := reg.Snapshot()
	if n := seriesValue(snap, "adapcc_core_recoveries_total",
		map[string]string{"locality": LocalityBoundary}); n < 1 {
		t.Errorf("no boundary recovery counted: %v", n)
	}
}

// TestFingerprintCacheAcrossHealFlap: exclusion flips no longer wipe the
// strategy cache — entries are keyed by the exclusion-set fingerprint, so a
// healing flap (exclude → readmit → re-exclude the same link) hits the
// cache on every revisit of a previously seen exclusion set.
func TestFingerprintCacheAcrossHealFlap(t *testing.T) {
	env, a := resilientEnv(t)
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph
	g0, _ := g.GPUByRank(0)
	g1, _ := g.GPUByRank(1)

	base, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	c0 := a.CachedStrategies()

	a.ExcludeLink(g0, g1)
	excl1, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	c1 := a.CachedStrategies()
	if c1 <= c0 {
		t.Fatalf("exclusion did not add a fingerprinted cache entry (%d -> %d)", c0, c1)
	}

	// Heal: back to the unexcluded fingerprint — the original entry must
	// still be there.
	a.ReadmitLink(g0, g1)
	healed, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if healed != base {
		t.Error("readmission did not restore the cached unexcluded strategy")
	}
	if a.CachedStrategies() != c1 {
		t.Errorf("readmission changed the cache size (%d -> %d)", c1, a.CachedStrategies())
	}

	// Relapse: the same exclusion set returns — its fingerprinted entry
	// must hit, not re-synthesize.
	a.ExcludeLink(g0, g1)
	relapse, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if relapse != excl1 {
		t.Error("relapsed exclusion set missed its fingerprinted cache entry")
	}
	if a.CachedStrategies() != c1 {
		t.Errorf("relapse changed the cache size (%d -> %d)", c1, a.CachedStrategies())
	}

	snap := reg.Snapshot()
	if hits := seriesValue(snap, "adapcc_strategy_cache_total", map[string]string{"result": "hit"}); hits < 2 {
		t.Errorf("adapcc_strategy_cache_total{hit} = %v, want >= 2 (heal + relapse)", hits)
	}

	// Cost changes still invalidate everything, fingerprints included.
	a.AbsorbMeasurements(nil) // no-op: empty measurement set keeps the cache
	if a.CachedStrategies() != c1 {
		t.Errorf("empty AbsorbMeasurements changed the cache size (%d -> %d)", c1, a.CachedStrategies())
	}
}

package core

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
)

// Send moves one rank's tensor to another over a synthesised route — the
// point-to-point primitive the paper's AlltoAll builds on (ncclSend/
// ncclRecv equivalents), exposed for pipeline parallelism: stage
// activations and gradients travel between neighbouring stages through the
// same profiled, chunk-pipelined fabric as the collectives.
func (a *AdapCC) Send(src, dst int, data []float32, onDone func([]float32, time.Duration), opts ...backend.RunOption) error {
	if src == dst {
		return fmt.Errorf("core: send to self (rank %d)", src)
	}
	if len(data) == 0 {
		return fmt.Errorf("core: empty send")
	}
	start := a.env.Engine.Now()
	return a.Run(backend.Request{
		Primitive: strategy.Broadcast,
		Bytes:     int64(len(data)) * 4,
		Ranks:     []int{src, dst},
		Root:      src,
		Inputs:    map[int][]float32{src: data, dst: data},
		OnDone: func(res collective.Result) {
			if onDone != nil {
				onDone(res.Outputs[dst], a.env.Engine.Now()-start)
			}
		},
	}, opts...)
}

// Gather collects every rank's shard at the root, concatenated in rank
// order (the inverse of Scatter). Composed of one point-to-point transfer
// per non-root rank, all in flight concurrently.
func (a *AdapCC) Gather(ranks []int, root int, shards map[int][]float32, onDone func([]float32, time.Duration), opts ...backend.RunOption) error {
	ranks, shardLen, err := validateShards(a, ranks, shards)
	if err != nil {
		return fmt.Errorf("core: gather: %w", err)
	}
	slot := slotOf(ranks, root)
	if slot < 0 {
		return fmt.Errorf("core: gather root %d not among ranks %v", root, ranks)
	}

	start := a.env.Engine.Now()
	out := make([]float32, shardLen*len(ranks))
	copy(out[slot*shardLen:(slot+1)*shardLen], shards[root])
	barrier := sim.NewCountdown(len(ranks)-1, func() {
		if onDone != nil {
			onDone(out, a.env.Engine.Now()-start)
		}
	})
	for i, r := range ranks {
		if r == root {
			continue
		}
		i := i
		err := a.Send(r, root, shards[r], func(data []float32, _ time.Duration) {
			copy(out[i*shardLen:(i+1)*shardLen], data)
			barrier.Done()
		}, opts...)
		if err != nil {
			return fmt.Errorf("core: gather from %d: %w", r, err)
		}
	}
	return nil
}

// Scatter slices the root's tensor into len(ranks) equal shards and
// delivers the i-th to the i-th rank in sorted order (the root keeps its
// own slot). The tensor length must divide evenly.
func (a *AdapCC) Scatter(ranks []int, root int, tensor []float32, onDone func(map[int][]float32, time.Duration), opts ...backend.RunOption) error {
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return fmt.Errorf("core: scatter needs >= 2 ranks")
	}
	if len(tensor) == 0 || len(tensor)%len(ranks) != 0 {
		return fmt.Errorf("core: tensor length %d not divisible by %d ranks", len(tensor), len(ranks))
	}
	slot := slotOf(ranks, root)
	if slot < 0 {
		return fmt.Errorf("core: scatter root %d not among ranks %v", root, ranks)
	}
	shardLen := len(tensor) / len(ranks)

	start := a.env.Engine.Now()
	results := make(map[int][]float32, len(ranks))
	results[root] = tensor[slot*shardLen : (slot+1)*shardLen]
	barrier := sim.NewCountdown(len(ranks)-1, func() {
		if onDone != nil {
			onDone(results, a.env.Engine.Now()-start)
		}
	})
	for i, r := range ranks {
		if r == root {
			continue
		}
		r := r
		err := a.Send(root, r, tensor[i*shardLen:(i+1)*shardLen], func(data []float32, _ time.Duration) {
			results[r] = data
			barrier.Done()
		}, opts...)
		if err != nil {
			return fmt.Errorf("core: scatter to %d: %w", r, err)
		}
	}
	return nil
}

// validateShards normalises the rank list and checks equal shard lengths.
func validateShards(a *AdapCC, ranks []int, shards map[int][]float32) ([]int, int, error) {
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	ranks = append([]int(nil), ranks...)
	sort.Ints(ranks)
	if len(ranks) < 2 {
		return nil, 0, fmt.Errorf("needs >= 2 ranks")
	}
	shardLen := -1
	for _, r := range ranks {
		sh, ok := shards[r]
		if !ok {
			return nil, 0, fmt.Errorf("rank %d has no shard", r)
		}
		if shardLen == -1 {
			shardLen = len(sh)
		} else if len(sh) != shardLen {
			return nil, 0, fmt.Errorf("shard lengths differ (%d vs %d)", len(sh), shardLen)
		}
	}
	if shardLen == 0 {
		return nil, 0, fmt.Errorf("empty shards")
	}
	return ranks, shardLen, nil
}

func slotOf(ranks []int, r int) int {
	for i, x := range ranks {
		if x == r {
			return i
		}
	}
	return -1
}

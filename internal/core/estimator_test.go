package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func TestPredictEstimatorScaling(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)

	est := &PredictEstimator{A: a, TensorBytes: 64 << 20, World: 16}
	full := est.FullTime(env.AllRanks())
	if full <= 0 {
		t.Fatal("no full-time estimate")
	}
	// Partial cost scales with the ready fraction.
	half := est.PartialTime(env.AllRanks()[:8], env.AllRanks()[8:])
	if half <= 0 || half >= full {
		t.Fatalf("partial(8/16) = %v, want in (0, full=%v)", half, full)
	}
	want := time.Duration(float64(full) * 7 / 15)
	if d := half - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("partial = %v, want ≈%v", half, want)
	}
	// Degenerate sets cost nothing.
	if est.PartialTime([]int{0}, nil) != 0 {
		t.Error("single-rank partial should cost 0")
	}
	if est.CatchupTime(nil) != 0 {
		t.Error("empty catch-up should cost 0")
	}
	// Catch-up is priced at half a pass regardless of late count.
	if got := est.CatchupTime([]int{3}); got != full/2 {
		t.Errorf("catch-up = %v, want %v", got, full/2)
	}
	// The full estimate is memoised.
	if est.FullTime(nil) != full {
		t.Error("full time not memoised")
	}
}

func TestFastStrategyCachesSeparately(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)

	full, err := a.Strategy(strategy.AllReduce, 32<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := a.FastStrategy(strategy.AllReduce, 32<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if full == fast {
		t.Fatal("fast and full searches share a cache entry")
	}
	// The restricted search can never beat the full one (by prediction).
	if fast.Eval.Time < full.Eval.Time {
		t.Errorf("fast search predicted faster (%v) than full (%v)", fast.Eval.Time, full.Eval.Time)
	}
	again, err := a.FastStrategy(strategy.AllReduce, 32<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if again != fast {
		t.Error("fast strategy not cached")
	}
}

func TestAggregateBandwidthSingleServer(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	_ = env
	// No network edges: fall back to accumulated NVLink bandwidth.
	if bw := a.AggregateBandwidthBps([]int{0, 1, 2, 3}, nil); bw <= 0 {
		t.Fatalf("single-server aggregate bandwidth = %v", bw)
	}
}

func TestQueuePanicsOnInvalidRequest(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)
	q := a.NewQueue()
	defer func() {
		if recover() == nil {
			t.Error("queued invalid request did not panic")
		}
	}()
	q.Submit(backend.Request{Primitive: strategy.AllReduce, Bytes: -5})
}

func TestCoreAccessors(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	if a.Env() != env {
		t.Error("Env() does not return the wired environment")
	}
	if a.Costs() == nil {
		t.Error("no cost view before setup")
	}
	if a.Name() != "AdapCC" {
		t.Errorf("Name() = %q", a.Name())
	}
	if a.Report() != nil {
		t.Error("profiling report exists before Setup")
	}
	setup(t, env, a)
	if a.Report() == nil {
		t.Error("no profiling report after Setup")
	}
	// Profiled branch of the aggregate-bandwidth accumulator: two servers'
	// ports, roughly twice one server's.
	both := a.AggregateBandwidthBps(env.AllRanks(), nil)
	one := a.AggregateBandwidthBps(env.AllRanks()[:2], nil)
	if both <= one {
		t.Errorf("two servers aggregate %v, one server %v", both, one)
	}
	if ratio := both / one; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("aggregate ratio %.2f, want ~2 for twin servers", ratio)
	}
}

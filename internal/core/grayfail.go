// Gray-failure adaptation: the congestion half of the fault story. The
// recovery ladder of resilient.go handles links that die; this file handles
// links that merely *degrade* — ECMP hash collisions, PFC pause storms and
// incast queues deliver every byte, just slowly, so no deadline ever
// declares them dead. A grayfail.Monitor samples the watched links against
// their profiled baselines and the controller reacts one rung above the
// exclusion ladder ("reweight"): degraded links stay on the synthesis
// topology with their bandwidths down-weighted, so the next synthesis
// steers traffic around them while they remain a route of last resort.
// Restored links get their full weight back; links the probe machinery
// gives up on are condemned into the hard-exclusion path. See DESIGN.md
// §15.
package core

import (
	"sort"
	"strconv"

	"adapcc/internal/grayfail"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// DefaultDegradedWeight is the bandwidth multiplier applied to a degraded
// link when GrayfailOptions.Weight is unset: pessimistic enough that any
// clean alternative wins the cost comparison, large enough that a degraded
// bottleneck link still beats an excluded one (infeasibility).
const DefaultDegradedWeight = 0.25

// GrayfailOptions opts the controller into in-fabric congestion awareness.
// The embedded grayfail.Options set the detector knobs (zero values take
// the grayfail package defaults).
type GrayfailOptions struct {
	grayfail.Options
	// Weight is the bandwidth multiplier for degraded links, in (0, 1)
	// (default DefaultDegradedWeight).
	Weight float64
	// OnVerdict observes every verdict after the controller has applied it
	// (link down-weighted, restored or condemned; caches refreshed).
	OnVerdict func(grayfail.Event)
}

// EnableGrayfail installs the in-fabric congestion detector from an
// explicit options struct — a thin wrapper over the installer StartGrayfail
// shares.
//
// Deprecated: use StartGrayfail with With* grayfail options.
func (a *AdapCC) EnableGrayfail(opts GrayfailOptions) *grayfail.Monitor {
	return a.installGrayfail(opts)
}

// installGrayfail is the detector installer behind StartGrayfail and
// EnableGrayfail (idempotent: the first call's knobs win, later calls
// return the existing monitor). Every network edge is watched against its
// current nominal service rate — enable after Setup, so profiled baselines
// are in place, and before any congestion starts. Verdicts drive the
// adaptation:
//
//   - degraded  → DegradeLink: the link's bandwidths are down-weighted in
//     the cost view and the next synthesis re-solves around it (counted as
//     a "reweight" recovery, the rung above the exclusion ladder);
//   - restored  → RestoreLink: full weight back, cached strategies for the
//     pre-degradation fingerprint become addressable again;
//   - condemned → ExcludeLink: the link never recovered, hand it to the
//     hard-fault path.
//
// The monitor ticks until Stop is called on it; stop it (or keep a bounded
// horizon) before draining the engine.
func (a *AdapCC) installGrayfail(opts GrayfailOptions) *grayfail.Monitor {
	if a.grayMon != nil {
		return a.grayMon
	}
	a.grayOnVerdict = opts.OnVerdict
	a.grayWeight = opts.Weight
	if a.grayWeight <= 0 || a.grayWeight >= 1 {
		a.grayWeight = DefaultDegradedWeight
	}
	m := grayfail.New(a.env.Engine, a.env.Fabric, opts.Options, a.onGrayVerdict)
	g := a.env.Graph
	for _, e := range g.Edges() {
		if e.Type.Network() {
			m.Watch(e.ID)
		}
	}
	a.grayMon = m
	m.Start()
	return m
}

// Grayfail returns the installed congestion monitor (nil before
// EnableGrayfail).
func (a *AdapCC) Grayfail() *grayfail.Monitor { return a.grayMon }

// onGrayVerdict is the monitor's event hook: apply the verdict to the cost
// model, record it, then let the user observe.
func (a *AdapCC) onGrayVerdict(ev grayfail.Event) {
	locality := LocalityBoundary
	if a.env.Graph.Node(ev.From).Server == a.env.Graph.Node(ev.To).Server {
		locality = LocalityDomainLocal
	}
	switch ev.Verdict {
	case grayfail.VerdictDegraded:
		a.DegradeLink(ev.From, ev.To, a.grayWeight)
		a.recordRecovery("reweight", locality)
	case grayfail.VerdictRestored:
		a.RestoreLink(ev.From, ev.To)
	case grayfail.VerdictCondemned:
		a.RestoreLink(ev.From, ev.To)
		a.ExcludeLink(ev.From, ev.To)
	}
	a.recordGrayVerdict(ev.Verdict.String())
	if a.grayOnVerdict != nil {
		a.grayOnVerdict(ev)
	}
}

// DegradeLink down-weights a node pair (both directions) in the synthesis
// cost view: the link stays routable but its bandwidths are multiplied by
// weight, so re-synthesis prefers clean alternatives. Weights outside
// (0, 1) take DefaultDegradedWeight. The strategy cache survives — entries
// are keyed under the exclusion fingerprint, which now carries the degraded
// set, so a congestion flap that restores a previous state hits the cache
// instead of re-solving.
func (a *AdapCC) DegradeLink(from, to topology.NodeID, weight float64) {
	if weight <= 0 || weight >= 1 {
		weight = DefaultDegradedWeight
	}
	a.noteDelta(synth.DeltaReweight, from, to)
	a.softPairs[[2]topology.NodeID{from, to}] = weight
	a.softPairs[[2]topology.NodeID{to, from}] = weight
	a.exclusionsChanged()
}

// RestoreLink returns a previously degraded node pair (both directions) to
// full weight. It reports whether the pair was actually degraded; caches
// refresh only on a real change.
func (a *AdapCC) RestoreLink(from, to topology.NodeID) bool {
	k1 := [2]topology.NodeID{from, to}
	k2 := [2]topology.NodeID{to, from}
	if _, ok := a.softPairs[k1]; !ok {
		if _, ok := a.softPairs[k2]; !ok {
			return false
		}
	}
	a.noteDelta(synth.DeltaReweight, from, to)
	delete(a.softPairs, k1)
	delete(a.softPairs, k2)
	a.exclusionsChanged()
	return true
}

// DegradedLinks returns the currently down-weighted node pairs, each once
// as (lo, hi), sorted — the gray sibling of ExcludedLinks.
func (a *AdapCC) DegradedLinks() [][2]topology.NodeID {
	seen := make(map[[2]topology.NodeID]bool, len(a.softPairs))
	for p := range a.softPairs {
		lo, hi := p[0], p[1]
		if hi < lo {
			lo, hi = hi, lo
		}
		seen[[2]topology.NodeID{lo, hi}] = true
	}
	out := make([][2]topology.NodeID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// recordGrayVerdict counts one applied gray-failure verdict (cold path:
// the counter resolves on demand). The name and labels match the scale
// path's export, so dashboards aggregate across both.
func (a *AdapCC) recordGrayVerdict(verdict string) {
	if a.reg == nil {
		return
	}
	a.reg.Counter("adapcc_grayfail_verdicts_total",
		"gray-failure verdicts issued by the congestion detector",
		"world", strconv.Itoa(len(a.env.AllRanks())), "verdict", verdict).Inc(a.env.Engine.Now())
}

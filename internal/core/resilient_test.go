package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func resilientEnv(t *testing.T) (*backend.Env, *AdapCC) {
	t.Helper()
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(env, WithSkipProfiling())
	if err != nil {
		t.Fatal(err)
	}
	return env, a
}

// tightRecovery keeps detection latencies in the low milliseconds so the
// tests run a short virtual timeline.
func tightRecovery() collective.Recovery {
	return collective.Recovery{
		DeadlineMult:  2,
		DeadlineFloor: 200 * time.Microsecond,
		MaxRetries:    4,
		Backoff:       100 * time.Microsecond,
		StallTimeout:  50 * time.Millisecond,
	}
}

func checkSums(t *testing.T, res ResilientResult, inputs map[int][]float32, elems int) {
	t.Helper()
	want := make([]float32, elems)
	for _, r := range res.Survivors {
		for i, v := range inputs[r] {
			want[i] += v
		}
	}
	if len(res.Survivors) == 0 {
		t.Fatal("no survivors")
	}
	for _, r := range res.Survivors {
		out := res.Result.Outputs[r]
		if out == nil {
			t.Fatalf("survivor %d has no output", r)
		}
		for i := 0; i < len(out); i += 509 {
			diff := out[i] - want[i]
			if diff < -1e-3 || diff > 1e-3 {
				t.Fatalf("survivor %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
}

func TestResilientCompletesWithoutFault(t *testing.T) {
	env, a := resilientEnv(t)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	inputs := backend.MakeInputs(ranks, bytes)
	var got ResilientResult
	var gotErr error
	err := a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		got, gotErr = r, err
	}, WithRecovery(tightRecovery()))
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Attempts != 1 || len(got.Events) != 0 {
		t.Errorf("healthy run took %d attempts, %d events", got.Attempts, len(got.Events))
	}
	if len(got.Survivors) != len(ranks) {
		t.Errorf("survivors = %v, want all %d ranks", got.Survivors, len(ranks))
	}
	checkSums(t, got, inputs, int(bytes/4))
}

// TestResilientReroutesAroundDeadLink: an NVLink hop of the running
// strategy dies permanently mid-collective. The fault must be detected,
// the link excluded, synthesis re-run over the survivors and the
// collective completed with every rank still participating (the server's
// PCIe/NIC path remains).
func TestResilientReroutesAroundDeadLink(t *testing.T) {
	env, a := resilientEnv(t)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph

	// Find an NVLink (GPU→GPU) hop of the strategy the first attempt uses.
	res, err := a.Strategy(strategy.AllReduce, bytes, ranks, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	var from, to topology.NodeID = -1, -1
	for _, sub := range res.Strategy.SubCollectives {
		for _, f := range sub.Flows {
			for h := 0; h+1 < len(f.Path); h++ {
				if g.Node(f.Path[h]).Kind == topology.KindGPU && g.Node(f.Path[h+1]).Kind == topology.KindGPU {
					from, to = f.Path[h], f.Path[h+1]
					break
				}
			}
		}
	}
	if from < 0 {
		t.Skip("strategy uses no NVLink hop")
	}
	kill := func(x, y topology.NodeID) {
		if eid, ok := g.EdgeBetween(x, y); ok {
			env.Fabric.SetScale(eid, 0)
		}
	}
	env.Engine.After(200*time.Microsecond, func() { kill(from, to); kill(to, from) })

	inputs := backend.MakeInputs(ranks, bytes)
	var got ResilientResult
	var gotErr error
	err = a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		got, gotErr = r, err
	}, WithRecovery(tightRecovery()))
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Attempts < 2 {
		t.Fatalf("dead link produced %d attempts, want >= 2", got.Attempts)
	}
	if len(got.Events) == 0 {
		t.Fatal("no recovery events recorded")
	}
	ev := got.Events[0]
	if ev.Report.Kind != collective.LinkFault {
		t.Errorf("event kind = %v, want link fault", ev.Report.Kind)
	}
	if ev.Ladder == "" {
		t.Error("recovery event records no synthesis ladder rung")
	}
	if ev.Overhead <= 0 {
		t.Error("recovery charged no reconstruction overhead")
	}
	if len(got.Survivors) != len(ranks) {
		t.Errorf("survivors = %v, want all %d ranks (PCIe route remains)", got.Survivors, len(ranks))
	}
	if got.TimeToRecover() <= 0 {
		t.Error("TimeToRecover = 0 after a recovery")
	}
	checkSums(t, got, inputs, int(bytes/4))

	// The exclusion persists: the next collective avoids the link without
	// faulting again.
	var again ResilientResult
	err = a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		again, gotErr = r, err
	}, WithRecovery(tightRecovery()))
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if again.Attempts != 1 {
		t.Errorf("post-exclusion run took %d attempts, want 1", again.Attempts)
	}
}

// TestResilientDropsCrashedRank: a worker dies outright — every link
// touching its GPU goes dark and its kernels hang. The controller must
// write off enough of the rank's connectivity (or the rank itself) to
// finish the collective over the survivors.
func TestResilientDropsCrashedRank(t *testing.T) {
	env, a := resilientEnv(t)
	ranks := env.AllRanks()
	const bytes = 1 << 20
	g := env.Graph
	const crashed = 3
	gid, ok := g.GPUByRank(crashed)
	if !ok {
		t.Fatal("no GPU for rank 3")
	}
	env.Engine.After(100*time.Microsecond, func() {
		for _, eid := range g.Out(gid) {
			env.Fabric.SetScale(eid, 0)
		}
		for _, eid := range g.In(gid) {
			env.Fabric.SetScale(eid, 0)
		}
		env.GPUs[crashed].SetKernelStall(func(sim.Time) time.Duration { return 1e6 * time.Second })
	})

	inputs := backend.MakeInputs(ranks, bytes)
	var got ResilientResult
	var gotErr error
	err := a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r ResilientResult, err error) {
		got, gotErr = r, err
	}, WithRecovery(tightRecovery()), WithMaxAttempts(10))
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	for _, r := range got.Survivors {
		if r == crashed {
			t.Fatalf("crashed rank %d listed as survivor", crashed)
		}
	}
	if len(got.Survivors) != len(ranks)-1 {
		t.Errorf("survivors = %v, want the other %d ranks", got.Survivors, len(ranks)-1)
	}
	if got.Attempts < 2 {
		t.Errorf("crash recovered in %d attempts, want >= 2", got.Attempts)
	}
	checkSums(t, got, inputs, int(bytes/4))
}

// TestExclusionState: the bookkeeping under the resilient loop — filtered
// graphs, cache purging, reachability pruning, re-admission.
func TestExclusionState(t *testing.T) {
	env, a := resilientEnv(t)
	g := env.Graph
	if a.activeGraph() != g {
		t.Fatal("activeGraph is not the identity without exclusions")
	}
	if a.activeCosts() != a.costs {
		t.Fatal("activeCosts is not the identity without exclusions")
	}

	// Excluding one NVLink pair keeps everyone reachable.
	g0, _ := g.GPUByRank(0)
	g1, _ := g.GPUByRank(1)
	a.ExcludeLink(g0, g1)
	ag := a.activeGraph()
	if ag == g {
		t.Fatal("activeGraph did not change after ExcludeLink")
	}
	if ag.NumNodes() != g.NumNodes() {
		t.Errorf("filtered graph has %d nodes, want %d", ag.NumNodes(), g.NumNodes())
	}
	if _, ok := ag.EdgeBetween(g0, g1); ok {
		t.Error("excluded edge still present in activeGraph")
	}
	if _, ok := ag.EdgeBetween(g1, g0); ok {
		t.Error("reverse of excluded edge still present (exclusion must be bidirectional)")
	}
	alive, dropped := a.pruneUnreachable(env.AllRanks())
	if len(dropped) != 0 {
		t.Errorf("NVLink exclusion dropped ranks %v; PCIe route should remain", dropped)
	}
	if len(alive) != len(env.AllRanks()) {
		t.Errorf("alive = %v, want all ranks", alive)
	}

	// Excluding a rank prunes it.
	a.ExcludeRank(2)
	alive, dropped = a.pruneUnreachable(env.AllRanks())
	for _, r := range alive {
		if r == 2 {
			t.Error("excluded rank 2 still alive")
		}
	}
	if len(dropped) != 1 || dropped[0] != 2 {
		t.Errorf("dropped = %v, want [2]", dropped)
	}
	if got := a.ExcludedRanks(); len(got) != 1 || got[0] != 2 {
		t.Errorf("ExcludedRanks = %v, want [2]", got)
	}

	// ClearExclusions restores the identity view.
	a.ClearExclusions()
	if a.activeGraph() != g {
		t.Error("activeGraph not restored by ClearExclusions")
	}
	if len(a.ExcludedRanks()) != 0 {
		t.Error("ExcludedRanks non-empty after ClearExclusions")
	}
}

package core

import (
	"fmt"

	"adapcc/internal/metrics"
	"adapcc/internal/scale"
	"adapcc/internal/topology"
)

// ScaleRequest configures a thousand-rank AllReduce sweep over a generated
// datacenter topology. This path bypasses the per-rank detection/profiling
// pipeline (which is sized for testbed-scale jobs) and drives the
// partitioned event engine directly: the topology's pod/group structure
// becomes the domain decomposition.
type ScaleRequest struct {
	// Topo is a generated-topology spec accepted by topology.ParseTopo,
	// e.g. "rail:groups=16,servers=8,rails=8" or "fattree:pods=8".
	Topo string
	// Workers sizes the engine's worker pool (minimum 1).
	Workers int
	// Monolithic forces single-domain execution (the reference order).
	Monolithic bool
	// SegBytes is the per-segment transfer size (default 256 KiB).
	SegBytes int64
	// Seed drives engines and synthetic data.
	Seed int64
	// Metrics optionally receives per-domain engine stats.
	Metrics *metrics.Registry
}

// RunScale parses, builds, partitions and sweeps a generated topology,
// returning the verified result.
func RunScale(req ScaleRequest) (*scale.Result, error) {
	spec, err := topology.ParseTopo(req.Topo)
	if err != nil {
		return nil, err
	}
	topo, err := spec.Build()
	if err != nil {
		return nil, err
	}
	res, err := scale.Run(scale.Options{
		Topo:       topo,
		Workers:    req.Workers,
		Monolithic: req.Monolithic,
		SegBytes:   req.SegBytes,
		Seed:       req.Seed,
		Metrics:    req.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("core: scale sweep %s: %w", spec.Name(), err)
	}
	return res, nil
}

package core

import (
	"fmt"

	"adapcc/internal/chaos"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/scale"
	"adapcc/internal/topology"
)

// ScaleRequest configures a thousand-rank AllReduce sweep over a generated
// datacenter topology. This path bypasses the per-rank detection/profiling
// pipeline (which is sized for testbed-scale jobs) and drives the
// partitioned event engine directly: the topology's pod/group structure
// becomes the domain decomposition.
type ScaleRequest struct {
	// Topo is a generated-topology spec accepted by topology.ParseTopo,
	// e.g. "rail:groups=16,servers=8,rails=8" or "fattree:pods=8".
	Topo string
	// Workers sizes the engine's worker pool (minimum 1).
	Workers int
	// Monolithic forces single-domain execution (the reference order).
	Monolithic bool
	// SegBytes is the per-segment transfer size (default 256 KiB).
	SegBytes int64
	// Seed drives engines and synthetic data.
	Seed int64
	// Metrics optionally receives per-domain engine stats.
	Metrics *metrics.Registry
	// Chaos, when non-empty, is a fault schedule in the chaos grammar
	// ("seed=7;down@2ms+10ms:edge=3;...") armed against the sharded fabric:
	// every fault is routed to the domain owning its target, and the sweep
	// runs with the per-chunk recovery machinery (transfer deadlines,
	// bounded-backoff retransmission, blacklist re-routing, progress
	// watchdog). Kinds needing the kernel model (hang, straggler) are
	// rejected loudly rather than silently ignored.
	Chaos string
	// Heal, when non-nil, arms background healing on the recovery layer:
	// blacklisted edges are probed by per-domain health monitors and
	// re-admitted (with a domain-local re-profiling pass) once they pass
	// probation. Requires Chaos — without faults nothing is ever
	// blacklisted.
	Heal *health.Options
	// Iterations runs the sweep as a multi-round training loop with a
	// verified barrier between rounds (default 1). Per-round durations are
	// reported in the result — the congestion benchmarks' tail metric.
	Iterations int
	// Congest, when non-nil, enables the fabric's congestion plane and the
	// per-domain gray-failure detectors; with Congest.Adaptive the sweep
	// also reroutes flows around links ruled degraded. Congestion chaos
	// kinds (pfcstorm, incast, hashcollide) require this.
	Congest *scale.CongestSpec
}

// RunScale parses, builds, partitions and sweeps a generated topology,
// returning the verified result.
func RunScale(req ScaleRequest) (*scale.Result, error) {
	spec, err := topology.ParseTopo(req.Topo)
	if err != nil {
		return nil, err
	}
	topo, err := spec.Build()
	if err != nil {
		return nil, err
	}
	opts := scale.Options{
		Topo:       topo,
		Workers:    req.Workers,
		Monolithic: req.Monolithic,
		SegBytes:   req.SegBytes,
		Seed:       req.Seed,
		Metrics:    req.Metrics,
		Iterations: req.Iterations,
		Congest:    req.Congest,
	}
	if req.Heal != nil && req.Chaos == "" {
		return nil, fmt.Errorf("core: scale healing requires a chaos schedule (without faults nothing is ever excluded)")
	}
	if req.Chaos != "" {
		spec, err := chaos.ParseSpec(req.Chaos)
		if err != nil {
			return nil, err
		}
		opts.Chaos = &spec
	}
	if req.Heal != nil {
		opts.Recovery = &scale.Resilience{Heal: req.Heal}
	}
	res, err := scale.Run(opts)
	if err != nil {
		return nil, fmt.Errorf("core: scale sweep %s: %w", spec.Name(), err)
	}
	return res, nil
}

package core

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/relay"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
)

// Adaptive is a per-training-job AllReduce session with the relay control
// of Sec. IV-C enabled: each iteration, workers report tensor readiness;
// the coordinator decides between waiting and a phase-1/phase-2 split with
// straggler GPUs as relays, and faulty workers are excluded on the fly.
type Adaptive struct {
	a     *AdapCC
	co    *relay.Coordinator
	bytes int64

	// per-iteration state
	inputs      map[int][]float32
	onIterDone  func(results map[int][]float32, elapsed time.Duration)
	iterStart   sim.Time
	phase1Out   map[int][]float32
	phase1Ready []int
	lastResults map[int][]float32
}

// AdaptiveOptions tunes the session.
type AdaptiveOptions struct {
	// Policy overrides the wait-vs-proceed rule (default break-even
	// ski rental).
	Policy relay.Policy
	// Cycle overrides the coordinator decision period.
	Cycle time.Duration
	// OnFault is invoked when workers are excluded (the training side
	// redistributes its data loader here).
	OnFault func(faulty []int)
}

// NewAdaptiveAllReduce builds an adaptive AllReduce session for the given
// world and per-iteration tensor size.
func (a *AdapCC) NewAdaptiveAllReduce(world []int, tensorBytes int64, opts AdaptiveOptions) (*Adaptive, error) {
	if tensorBytes <= 0 {
		return nil, fmt.Errorf("core: non-positive tensor size %d", tensorBytes)
	}
	ad := &Adaptive{a: a, bytes: tensorBytes}
	est := &PredictEstimator{A: a, TensorBytes: tensorBytes, World: len(world)}
	co, err := relay.NewCoordinator(relay.Config{
		Engine:    a.env.Engine,
		World:     world,
		Policy:    opts.Policy,
		Cycle:     opts.Cycle,
		Estimator: est,
		Callbacks: relay.Callbacks{
			StartFull:   ad.startFull,
			StartPhase1: ad.startPhase1,
			StartPhase2: ad.startPhase2,
			OnFault:     opts.OnFault,
		},
	})
	if err != nil {
		return nil, err
	}
	ad.co = co
	return ad, nil
}

// Coordinator exposes the session's coordinator (relay statistics, alive
// set, fault history).
func (ad *Adaptive) Coordinator() *relay.Coordinator { return ad.co }

// BeginIteration arms the session with this iteration's tensors. onDone
// receives each alive rank's aggregated tensor and the communication
// elapsed time (including straggler wait).
func (ad *Adaptive) BeginIteration(inputs map[int][]float32, onDone func(map[int][]float32, time.Duration)) {
	ad.inputs = inputs
	ad.onIterDone = onDone
	ad.iterStart = ad.a.env.Engine.Now()
	ad.phase1Out = nil
	ad.phase1Ready = nil
	ad.co.BeginIteration(func() {
		done := ad.onIterDone
		ad.onIterDone = nil
		if done != nil {
			done(ad.lastResults, ad.a.env.Engine.Now()-ad.iterStart)
		}
	})
}

// WorkerReady reports that a worker finished computing its gradients.
func (ad *Adaptive) WorkerReady(rank int) { ad.co.WorkerReady(rank) }

func (ad *Adaptive) startFull(ranks []int, done func()) {
	err := ad.a.Run(backend.Request{
		Primitive: strategy.AllReduce,
		Bytes:     ad.bytes,
		Ranks:     ranks,
		Root:      -1,
		Inputs:    ad.inputs,
		OnDone: func(res collective.Result) {
			ad.lastResults = res.Outputs
			done()
		},
	})
	if err != nil {
		panic(fmt.Sprintf("core: adaptive full allreduce: %v", err))
	}
}

func (ad *Adaptive) startPhase1(ready, relays []int, done func()) {
	ad.phase1Ready = append([]int(nil), ready...)
	err := ad.a.Run(backend.Request{
		Primitive: strategy.AllReduce,
		Bytes:     ad.bytes,
		Ranks:     ready,
		Root:      -1,
		Inputs:    ad.inputs,
		OnDone: func(res collective.Result) {
			ad.phase1Out = res.Outputs
			// If every straggler is caught up in phase 1 or excluded
			// as faulty, the coordinator finishes without a phase 2:
			// the phase-1 aggregate is then the iteration's result.
			ad.lastResults = res.Outputs
			done()
		},
	}, backend.WithRelays(relays...))
	if err != nil {
		panic(fmt.Sprintf("core: adaptive phase-1 allreduce: %v", err))
	}
}

// startPhase2 catches late workers up (Sec. IV-C: chunks not aggregated in
// phase 1 are broadcast and locally combined with the phase-1 results from
// the relay GPUs' result queues). To keep the catch-up cheap it is staged:
//
//  1. the late workers' tensors are reduced onto one late root (a single
//     partial Reduce, with the ready workers' GPUs available as relays),
//  2. that aggregate is broadcast once to all alive workers, and the
//     phase-1 aggregate is broadcast to the late workers,
//  3. every worker locally combines.
func (ad *Adaptive) startPhase2(participants, late []int, done func()) {
	elems := int(ad.bytes / 4)
	anchor := ad.phase1Ready[0]
	lateRoot := late[0]

	lateAgg := make(map[int][]float32) // rank -> reduced late tensor
	aggForLate := make(map[int][]float32)

	lateSet := make(map[int]bool, len(late))
	for _, l := range late {
		lateSet[l] = true
	}

	// Stage 3: local combine on every alive rank. Late ranks always use
	// the broadcast phase-1 aggregate: a relay may appear in only some
	// sub-collectives' trees, so its own phase-1 buffer can be partial.
	combineAll := func() {
		results := make(map[int][]float32, len(participants))
		combine := sim.NewCountdown(len(participants), func() {
			ad.lastResults = results
			done()
		})
		for _, rank := range participants {
			rank := rank
			base := ad.phase1Out[rank]
			if lateSet[rank] || base == nil {
				base = aggForLate[rank]
			}
			if base == nil {
				panic(fmt.Sprintf("core: rank %d has no phase-1 aggregate", rank))
			}
			lateSum := lateAgg[rank]
			if lateSum == nil {
				panic(fmt.Sprintf("core: rank %d has no late aggregate", rank))
			}
			buf := make([]float32, elems)
			copy(buf, base)
			gpu := ad.a.env.GPUs[rank]
			if gpu == nil {
				panic(fmt.Sprintf("core: rank %d has no GPU", rank))
			}
			gpu.NewStream().LaunchReduce(buf, lateSum, func() {
				results[rank] = buf
				combine.Done()
			})
		}
	}

	// Stage 2: broadcast the late aggregate to all alive workers and the
	// phase-1 aggregate to the late workers, concurrently.
	stage2 := func(lateSum []float32) {
		barrier := sim.NewCountdown(2, combineAll)
		bcastInputs := make(map[int][]float32, len(participants))
		for _, r := range participants {
			bcastInputs[r] = lateSum
		}
		err := ad.a.Run(backend.Request{
			Primitive: strategy.Broadcast,
			Bytes:     ad.bytes,
			Ranks:     participants,
			Root:      lateRoot,
			Inputs:    bcastInputs,
			OnDone: func(res collective.Result) {
				for _, r := range participants {
					if out := res.Outputs[r]; out != nil {
						lateAgg[r] = out
					}
				}
				lateAgg[lateRoot] = lateSum
				barrier.Done()
			},
		}, backend.WithFastPath())
		if err != nil {
			panic(fmt.Sprintf("core: phase-2 late-aggregate broadcast: %v", err))
		}

		group := append(append([]int(nil), late...), anchor)
		aggInputs := make(map[int][]float32, len(group))
		for _, r := range group {
			aggInputs[r] = ad.phase1Out[anchor]
		}
		err = ad.a.Run(backend.Request{
			Primitive: strategy.Broadcast,
			Bytes:     ad.bytes,
			Ranks:     group,
			Root:      anchor,
			Inputs:    aggInputs,
			OnDone: func(res collective.Result) {
				for _, l := range late {
					aggForLate[l] = res.Outputs[l]
				}
				barrier.Done()
			},
		}, backend.WithFastPath())
		if err != nil {
			panic(fmt.Sprintf("core: phase-2 aggregate broadcast: %v", err))
		}
	}

	// Stage 1: reduce the late tensors onto the late root.
	if len(late) == 1 {
		stage2(ad.inputs[lateRoot])
		return
	}
	err := ad.a.Run(backend.Request{
		Primitive: strategy.Reduce,
		Bytes:     ad.bytes,
		Ranks:     late,
		Root:      lateRoot,
		Inputs:    ad.inputs,
		OnDone: func(res collective.Result) {
			stage2(res.Outputs[lateRoot])
		},
	}, backend.WithRelays(ad.phase1Ready...))
	if err != nil {
		panic(fmt.Sprintf("core: phase-2 late reduce: %v", err))
	}
}

// PredictEstimator prices the coordinator's wait-vs-proceed decision by
// scaling the synthesizer's cached full-collective prediction with the
// paper's S/B volume ratios: phase 1 moves 2(n−1)/2(N−1) of the full
// volume; phase 2 reduces the late tensors (l−1 transfers) and adds two
// broadcasts.
type PredictEstimator struct {
	A           *AdapCC
	TensorBytes int64
	World       int

	full time.Duration
}

var _ relay.CostEstimator = (*PredictEstimator)(nil)

func (e *PredictEstimator) base() time.Duration {
	if e.full == 0 {
		t, err := e.A.Predict(strategy.AllReduce, e.TensorBytes, nil, nil, -1)
		if err != nil || t <= 0 {
			t = time.Second
		}
		e.full = t
	}
	return e.full
}

// PartialTime implements relay.CostEstimator.
func (e *PredictEstimator) PartialTime(ready, relays []int) time.Duration {
	n := len(ready)
	if n < 2 || e.World < 2 {
		return 0
	}
	return time.Duration(float64(e.base()) * float64(n-1) / float64(e.World-1))
}

// CatchupTime implements relay.CostEstimator. Phase 2 is one
// allreduce-shaped pass over the fraction of the late tensors that missed
// phase 1; stragglers usually join partway (Sec. IV-C), so the estimate
// prices half a pass.
func (e *PredictEstimator) CatchupTime(late []int) time.Duration {
	if len(late) == 0 {
		return 0
	}
	return e.base() / 2
}

// FullTime implements relay.CostEstimator.
func (e *PredictEstimator) FullTime(all []int) time.Duration { return e.base() }

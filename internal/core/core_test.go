package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/relay"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func newInstance(t *testing.T, c *topology.Cluster, opts ...Option) (*backend.Env, *AdapCC) {
	t.Helper()
	env, err := backend.NewEnv(c, 21)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(env, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return env, a
}

func testbedInstance(t *testing.T) (*backend.Env, *AdapCC) {
	t.Helper()
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	return newInstance(t, c)
}

func setup(t *testing.T, env *backend.Env, a *AdapCC) {
	t.Helper()
	done := false
	a.Setup(func() { done = true })
	env.Engine.Run()
	if !done {
		t.Fatal("Setup never completed")
	}
}

func TestNewRunsDetection(t *testing.T) {
	_, a := testbedInstance(t)
	if a.InitTime() <= 0 {
		t.Error("no detection time accounted")
	}
	if got := len(a.Detection().Layouts); got != 6 {
		t.Errorf("layouts = %d, want 6", got)
	}
	if a.Name() != "AdapCC" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestSetupProfilesAndCharges(t *testing.T) {
	env, a := testbedInstance(t)
	if a.Report() != nil {
		t.Fatal("report before setup")
	}
	setup(t, env, a)
	if a.Report() == nil {
		t.Fatal("no profiling report after setup")
	}
	prof, solve, su := a.Overheads()
	if prof <= 0 {
		t.Error("no profiling time")
	}
	if su <= 0 {
		t.Error("no setup time")
	}
	_ = solve // solve time accrues lazily with Strategy calls
	if env.Engine.Now() < prof+su {
		t.Errorf("engine advanced %v, less than overheads %v", env.Engine.Now(), prof+su)
	}
}

func TestRunAllReduceThroughBackendInterface(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	elapsed, err := backend.Measure(env, a, backend.Request{
		Primitive: strategy.AllReduce,
		Bytes:     16 << 20,
		Root:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestStrategyCaching(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	r1, err := a.Strategy(strategy.AllReduce, 16<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Strategy(strategy.AllReduce, 16<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical request not cached")
	}
	done := false
	a.Reconstruct(func(time.Duration) { done = true })
	env.Engine.Run()
	if !done {
		t.Fatal("Reconstruct never completed")
	}
	r3, err := a.Strategy(strategy.AllReduce, 16<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("cache not invalidated by Reconstruct")
	}
}

func TestReconstructReactsToDegradedLink(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	before, err := a.Predict(strategy.AllReduce, 256<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade server 1's network sharply and reconstruct.
	env.Fabric.SetServerNetworkScale(1, 0.2)
	reconstructed := false
	a.Reconstruct(func(time.Duration) { reconstructed = true })
	env.Engine.Run()
	if !reconstructed {
		t.Fatal("reconstruct incomplete")
	}
	after, err := a.Predict(strategy.AllReduce, 256<<20, nil, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("prediction after degradation (%v) should exceed before (%v)", after, before)
	}
}

func TestAdaptiveAllReduceFullPath(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	world := env.AllRanks()
	const bytes = 4 << 20
	ad, err := a.NewAdaptiveAllReduce(world, bytes, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := backend.MakeInputs(world, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var results map[int][]float32
	ad.BeginIteration(inputs, func(res map[int][]float32, elapsed time.Duration) {
		results = res
	})
	for _, r := range world {
		r := r
		env.Engine.After(time.Millisecond, func() { ad.WorkerReady(r) })
	}
	env.Engine.Run()
	if results == nil {
		t.Fatal("iteration never completed")
	}
	for _, r := range world {
		out := results[r]
		if out == nil {
			t.Fatalf("rank %d has no result", r)
		}
		for i := range want {
			if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
	st := ad.Coordinator().Stats()
	if st.FullRuns != 1 || st.PartialRuns != 0 {
		t.Errorf("stats = %+v, want one full run", st)
	}
}

func TestAdaptiveAllReduceStragglerPath(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	world := env.AllRanks()
	const bytes = 32 << 20
	ad, err := a.NewAdaptiveAllReduce(world, bytes, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := backend.MakeInputs(world, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var results map[int][]float32
	ad.BeginIteration(inputs, func(res map[int][]float32, elapsed time.Duration) {
		results = res
	})
	straggler := world[len(world)-1]
	for _, r := range world {
		r := r
		delay := time.Millisecond
		if r == straggler {
			// Late enough to trigger phase 1, early enough to beat
			// the fault deadline so phase 2 catches it up.
			delay = 60 * time.Millisecond
		}
		env.Engine.After(delay, func() { ad.WorkerReady(r) })
	}
	env.Engine.Run()
	if results == nil {
		t.Fatal("iteration never completed")
	}
	st := ad.Coordinator().Stats()
	if st.PartialRuns != 1 {
		t.Fatalf("stats = %+v, want one partial run", st)
	}
	if st.RelayCounts[straggler] != 1 {
		t.Errorf("straggler relay count = %d, want 1", st.RelayCounts[straggler])
	}
	// Model-update consistency (Fig. 19b): the phase-1+phase-2 result
	// must equal the full-collective sum on every alive rank.
	for _, r := range world {
		out := results[r]
		if out == nil {
			t.Fatalf("rank %d has no result", r)
		}
		for i := range want {
			if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
				t.Fatalf("rank %d elem %d = %v, want %v (phase-2 must preserve accuracy)", r, i, out[i], want[i])
			}
		}
	}
}

func TestAdaptiveFaultContinuesTraining(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	world := env.AllRanks()
	const bytes = 8 << 20
	var faulted []int
	ad, err := a.NewAdaptiveAllReduce(world, bytes, AdaptiveOptions{
		OnFault: func(f []int) { faulted = append(faulted, f...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := backend.MakeInputs(world, bytes)
	dead := world[len(world)-1]

	completed := 0
	runIter := func() {
		ad.BeginIteration(inputs, func(map[int][]float32, time.Duration) { completed++ })
		for _, r := range world {
			if r == dead {
				continue // never reports ready
			}
			r := r
			env.Engine.After(time.Millisecond, func() { ad.WorkerReady(r) })
		}
		env.Engine.Run()
	}
	runIter()
	if completed != 1 {
		t.Fatal("iteration with dead worker never completed")
	}
	if len(faulted) != 1 || faulted[0] != dead {
		t.Fatalf("faulted = %v, want [%d]", faulted, dead)
	}
	// Next iteration proceeds with survivors.
	runIter()
	if completed != 2 {
		t.Fatal("post-fault iteration never completed")
	}
	alive := ad.Coordinator().Alive()
	if len(alive) != len(world)-1 {
		t.Fatalf("alive = %d, want %d", len(alive), len(world)-1)
	}
}

func TestAdaptivePolicyOverride(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	world := env.AllRanks()
	ad, err := a.NewAdaptiveAllReduce(world, 4<<20, AdaptiveOptions{Policy: relay.AlwaysWait{}})
	if err != nil {
		t.Fatal(err)
	}
	inputs := backend.MakeInputs(world, 4<<20)
	doneAt := time.Duration(-1)
	ad.BeginIteration(inputs, func(_ map[int][]float32, elapsed time.Duration) { doneAt = elapsed })
	for i, r := range world {
		r := r
		delay := time.Millisecond
		if i == 0 {
			delay = 80 * time.Millisecond
		}
		env.Engine.After(delay, func() { ad.WorkerReady(r) })
	}
	env.Engine.Run()
	if doneAt < 80*time.Millisecond {
		t.Fatalf("always-wait finished in %v before the straggler", doneAt)
	}
	if st := ad.Coordinator().Stats(); st.PartialRuns != 0 {
		t.Errorf("always-wait ran a partial collective: %+v", st)
	}
}

func TestAllGather(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)
	ranks := env.AllRanks()
	const shardLen = 1 << 18
	shards := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		sh := make([]float32, shardLen)
		for i := range sh {
			sh[i] = float32(r*100) + float32(i%5)
		}
		shards[r] = sh
	}
	var results map[int][]float32
	if err := a.AllGather(ranks, shards, func(res map[int][]float32, _ time.Duration) { results = res }); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if results == nil {
		t.Fatal("allgather never completed")
	}
	for _, r := range ranks {
		out := results[r]
		if len(out) != shardLen*len(ranks) {
			t.Fatalf("rank %d result len %d", r, len(out))
		}
		for slot, src := range ranks {
			for i := 0; i < shardLen; i += shardLen / 7 {
				if out[slot*shardLen+i] != shards[src][i] {
					t.Fatalf("rank %d slot %d elem %d = %v, want %v",
						r, slot, i, out[slot*shardLen+i], shards[src][i])
				}
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)
	ranks := env.AllRanks()
	total := 1 << 20
	tensors := make(map[int][]float32, len(ranks))
	want := make([]float32, total)
	for _, r := range ranks {
		v := make([]float32, total)
		for i := range v {
			v[i] = float32(r + 1)
			want[i] += v[i]
		}
		tensors[r] = v
	}
	var results map[int][]float32
	if err := a.ReduceScatter(ranks, tensors, func(res map[int][]float32, _ time.Duration) { results = res }); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if results == nil {
		t.Fatal("reducescatter never completed")
	}
	shardLen := total / len(ranks)
	for slot, r := range ranks {
		out := results[r]
		if len(out) != shardLen {
			t.Fatalf("rank %d shard len = %d, want %d", r, len(out), shardLen)
		}
		for i := 0; i < shardLen; i += shardLen / 9 {
			if d := out[i] - want[slot*shardLen+i]; d > 1e-3 || d < -1e-3 {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[slot*shardLen+i])
			}
		}
	}
}

func TestQueueExecutesInOrder(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	q := a.NewQueue()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		q.Submit(backend.Request{
			Primitive: strategy.AllReduce,
			Bytes:     1 << 20,
			Root:      -1,
			Inputs:    backend.MakeInputs(env.AllRanks(), 1<<20),
			OnDone:    func(collective.Result) { order = append(order, i) },
		})
	}
	if q.Len() == 0 {
		t.Log("queue drained synchronously before engine ran (first op started eagerly)")
	}
	env.Engine.Run()
	if len(order) != 3 {
		t.Fatalf("completed %d ops, want 3", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
	if q.Completed() != 3 {
		t.Errorf("Completed = %d", q.Completed())
	}
}

func TestComposeValidation(t *testing.T) {
	env, a := testbedInstance(t)
	setup(t, env, a)
	if err := a.AllGather([]int{0}, map[int][]float32{0: {1}}, nil); err == nil {
		t.Error("single-rank allgather accepted")
	}
	if err := a.AllGather([]int{0, 1}, map[int][]float32{0: {1}, 1: {1, 2}}, nil); err == nil {
		t.Error("ragged shards accepted")
	}
	if err := a.ReduceScatter([]int{0, 1}, map[int][]float32{0: make([]float32, 3), 1: make([]float32, 3)}, nil); err == nil {
		t.Error("non-divisible reducescatter accepted")
	}
	_ = env
}

package core

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// classShareSeen reports whether any link recorded a bandwidth share for
// the named traffic class.
func classShareSeen(reg *metrics.Registry, class string) bool {
	for _, f := range reg.Snapshot().Families {
		if f.Name != "adapcc_link_class_share" {
			continue
		}
		for _, s := range f.Series {
			if s.Labels["class"] == class {
				return true
			}
		}
	}
	return false
}

// TestGroupedCollectivesCarryClass is the regression for the dropped
// RunOption threading: every composed and point-to-point API must honour
// backend.WithGroup, so a grouped call's traffic lands in its group's
// traffic class on the fabric. Before the fix AllGather, ReduceScatter,
// Send, Gather and Scatter silently ignored their options.
func TestGroupedCollectivesCarryClass(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c)
	setup(t, env, a)
	reg := metrics.New()
	a.SetMetrics(reg)
	ranks := env.AllRanks()

	const shardLen = 1 << 14
	shards := make(map[int][]float32, len(ranks))
	tensors := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		shards[r] = make([]float32, shardLen)
		tensors[r] = make([]float32, shardLen*len(ranks))
	}

	calls := []struct {
		name string
		call func(opt backend.RunOption) error
	}{
		{"allgather", func(opt backend.RunOption) error {
			return a.AllGather(ranks, shards, nil, opt)
		}},
		{"reducescatter", func(opt backend.RunOption) error {
			return a.ReduceScatter(ranks, tensors, nil, opt)
		}},
		{"alltoall", func(opt backend.RunOption) error {
			return a.AlltoAll(ranks, tensors, nil, opt)
		}},
		{"send", func(opt backend.RunOption) error {
			return a.Send(ranks[0], ranks[1], shards[ranks[0]], nil, opt)
		}},
		{"gather", func(opt backend.RunOption) error {
			return a.Gather(ranks, ranks[0], shards, nil, opt)
		}},
		{"scatter", func(opt backend.RunOption) error {
			return a.Scatter(ranks, ranks[0], tensors[ranks[0]], nil, opt)
		}},
		{"composed-allgather", func(opt backend.RunOption) error {
			return composedAllGather(a.composeDeps(), ranks, 1<<14, shards, nil, opt)
		}},
	}
	for _, tc := range calls {
		class := env.Fabric.NewClass(fabric.Class{Name: "grp-" + tc.name, Weight: 2})
		if err := tc.call(backend.WithGroup("g-"+tc.name, class)); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
	env.Engine.Run()
	for _, tc := range calls {
		if !classShareSeen(reg, "grp-"+tc.name) {
			t.Errorf("%s: no fabric traffic carried class grp-%s — its RunOption was dropped", tc.name, tc.name)
		}
	}
}

// TestComposedAllGatherElidedRootOutput pins the nil-root-output guard on
// the surviving per-root fallback: a backend that elides a root's
// self-delivery (its output equals its own input slice) must not crash the
// composition, and each root's own slot must fall back to its shard.
func TestComposedAllGatherElidedRootOutput(t *testing.T) {
	ranks := []int{0, 1}
	shards := map[int][]float32{0: {5, 6}, 1: {7, 8}}
	deps := composeDeps{
		run: func(req backend.Request, opts ...backend.RunOption) error {
			req.OnDone(collective.Result{Outputs: map[int][]float32{}})
			return nil
		},
		now:      func() sim.Time { return 0 },
		allRanks: func() []int { return ranks },
	}
	var results map[int][]float32
	err := composedAllGather(deps, ranks, 2, shards, func(res map[int][]float32, _ time.Duration) {
		results = res
	})
	if err != nil {
		t.Fatal(err)
	}
	if results == nil {
		t.Fatal("allgather never completed")
	}
	// Each root's own slot must carry its shard via the fallback.
	if got := results[0]; got[0] != 5 || got[1] != 6 {
		t.Errorf("rank 0 result = %v, want own shard [5 6] at slot 0", got)
	}
	if got := results[1]; got[2] != 7 || got[3] != 8 {
		t.Errorf("rank 1 result = %v, want own shard [7 8] at slot 1", got)
	}
}

// TestWithVerifyEndToEnd turns the verifier on for a live instance: every
// synthesised strategy — single-root, rootless and multi-root — must pass
// verification, and every decision must be counted in
// adapcc_ir_verify_total{result="accept"}.
func TestWithVerifyEndToEnd(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := newInstance(t, c, WithVerify())
	reg := metrics.New()
	a.SetMetrics(reg)
	setup(t, env, a)
	ranks := env.AllRanks()

	const bytes = 1 << 20
	done := 0
	if err := a.Run(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		Inputs: backend.MakeInputs(ranks, bytes),
		OnDone: func(collective.Result) { done++ },
	}); err != nil {
		t.Fatal(err)
	}
	shards := make(map[int][]float32, len(ranks))
	tensors := make(map[int][]float32, len(ranks))
	for _, r := range ranks {
		shards[r] = make([]float32, 1<<14)
		tensors[r] = make([]float32, len(ranks)<<14)
	}
	if err := a.AllGather(ranks, shards, func(map[int][]float32, time.Duration) { done++ }); err != nil {
		t.Fatal(err)
	}
	if err := a.ReduceScatter(ranks, tensors, func(map[int][]float32, time.Duration) { done++ }); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if done != 3 {
		t.Fatalf("%d of 3 verified collectives completed", done)
	}

	var accepts, rejects float64
	for _, f := range reg.Snapshot().Families {
		if f.Name != "adapcc_ir_verify_total" {
			continue
		}
		for _, s := range f.Series {
			switch s.Labels["result"] {
			case "accept":
				accepts = s.Value
			case "reject":
				rejects = s.Value
			}
		}
	}
	if accepts < 3 {
		t.Errorf("adapcc_ir_verify_total{result=accept} = %v, want >= 3", accepts)
	}
	if rejects != 0 {
		t.Errorf("adapcc_ir_verify_total{result=reject} = %v, want 0", rejects)
	}
}

// Elastic healing: the re-admission half of the fault story. RunResilient
// (resilient.go) permanently excludes faulted links and ranks; with
// ResilientOptions.Heal set, every exclusion is also handed to a
// health.Monitor that probes the hardware in the background and, once it
// passes probation, re-admits it here — folding freshly re-profiled α–β
// values into the cost model and dropping the strategy caches so the next
// synthesis reclaims the capacity. See DESIGN.md §9.
package core

import (
	"sort"
	"strconv"

	"adapcc/internal/health"
	"adapcc/internal/profile"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// HealOptions opts a resilient controller into elastic healing. The
// embedded health.Options set the hysteresis knobs (zero values take the
// health package defaults).
type HealOptions struct {
	health.Options
	// OnHeal observes each promotion after the controller has applied it
	// (exclusion lifted, measurements absorbed, coordinator notified).
	OnHeal func(health.Event)
	// OnCondemn observes targets written off permanently after
	// GiveUpAfter relapses.
	OnCondemn func(health.Event)
}

// EnableHealing installs the background health monitor from an explicit
// options struct — a thin wrapper over the installer StartHealing shares.
//
// Deprecated: use StartHealing with With* heal options.
func (a *AdapCC) EnableHealing(opts HealOptions) *health.Monitor {
	return a.installHealing(opts)
}

// installHealing is the monitor installer behind StartHealing and
// EnableHealing (idempotent: the first call's knobs win, later calls
// return the existing monitor). It also runs implicitly from RunResilient
// when ResilientOptions.Heal is set. Exclusions registered by the fault
// path are watched, probed over the live fabric and devices, and — after K
// consecutive successful probes — re-admitted: ReadmitLink/ReadmitRank,
// measurements absorbed, the last known coordinator told to Readmit the
// rank.
func (a *AdapCC) installHealing(opts HealOptions) *health.Monitor {
	if a.healer != nil {
		return a.healer
	}
	a.healOnHeal, a.healOnCondemn = opts.OnHeal, opts.OnCondemn
	m := health.New(a.env.Engine, a.env.Fabric, a.env.GPUs, opts.Options, health.Hooks{
		OnHeal: a.onHealed,
		OnCondemn: func(ev health.Event) {
			a.recordHealEvent("condemned", ev.Kind.String())
			if a.healOnCondemn != nil {
				a.healOnCondemn(ev)
			}
		},
	})
	m.SetMetrics(a.reg)
	m.SetHealLabels(strconv.Itoa(len(a.env.AllRanks())), func(ev health.Event) string {
		if ev.Kind == health.KindLink && ev.From >= 0 && ev.To >= 0 &&
			a.env.Graph.Node(ev.From).Server != a.env.Graph.Node(ev.To).Server {
			return LocalityBoundary
		}
		return LocalityDomainLocal
	})
	a.healer = m
	return m
}

// Healer returns the installed health monitor (nil before EnableHealing).
func (a *AdapCC) Healer() *health.Monitor { return a.healer }

// onHealed is the monitor's promotion hook: lift the exclusion, absorb the
// re-profiled measurements, propagate the rank to the coordinator, then let
// the user observe.
func (a *AdapCC) onHealed(ev health.Event) {
	switch ev.Kind {
	case health.KindLink:
		a.ReadmitLink(ev.From, ev.To)
	case health.KindRank:
		a.ReadmitRank(ev.Rank)
		if a.healCo != nil {
			a.healCo.Readmit(ev.Rank)
		}
	}
	a.AbsorbMeasurements(ev.Measurements)
	a.recordHealEvent("healed", ev.Kind.String())
	if a.healOnHeal != nil {
		a.healOnHeal(ev)
	}
}

// ReadmitLink returns a previously excluded node pair (both directions) to
// the synthesis topology — the per-link counterpart of the all-or-nothing
// ClearExclusions. It reports whether the pair was actually excluded;
// caches drop only on a real change.
func (a *AdapCC) ReadmitLink(from, to topology.NodeID) bool {
	k1 := [2]topology.NodeID{from, to}
	k2 := [2]topology.NodeID{to, from}
	if !a.deadPairs[k1] && !a.deadPairs[k2] {
		return false
	}
	a.noteDelta(synth.DeltaReadmit, from, to)
	delete(a.deadPairs, k1)
	delete(a.deadPairs, k2)
	a.exclusionsChanged()
	return true
}

// ReadmitRank returns a previously excluded worker to the synthesis
// topology and to default participant sets. It reports whether the rank was
// actually excluded.
func (a *AdapCC) ReadmitRank(rank int) bool {
	if !a.deadRanks[rank] {
		return false
	}
	a.clearDelta()
	delete(a.deadRanks, rank)
	a.exclusionsChanged()
	return true
}

// ExcludedLinks returns the written-off node pairs, each once as (lo, hi),
// sorted — the link sibling of ExcludedRanks.
func (a *AdapCC) ExcludedLinks() [][2]topology.NodeID {
	seen := make(map[[2]topology.NodeID]bool, len(a.deadPairs))
	for p := range a.deadPairs {
		lo, hi := p[0], p[1]
		if hi < lo {
			lo, hi = hi, lo
		}
		seen[[2]topology.NodeID{lo, hi}] = true
	}
	out := make([][2]topology.NodeID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// AbsorbMeasurements folds fresh per-edge measurements (the healed-edge
// re-profiling pass) into the cost model without a full Reconstruct: the
// report gains the edges and costs rebuild from it. Unmeasured edges keep
// their previous (or nominal) values. The strategy cache survives — entries
// are re-keyed under the new cost fingerprint (see prefix), so strategies
// solved under other measurement sets stay addressable, and a healing flap
// that restores byte-identical measurements restores the previous cache
// prefix: its strategies come back as pointer-identity hits instead of
// re-solves. Only Reconstruct (a full re-profiling) wipes outright.
func (a *AdapCC) AbsorbMeasurements(ms []profile.Measurement) {
	if len(ms) == 0 {
		return
	}
	if a.report == nil {
		a.report = &profile.Report{ByEdge: make(map[topology.EdgeID]profile.Measurement, len(ms))}
	}
	for _, m := range ms {
		a.report.ByEdge[m.Edge] = m
	}
	a.costs = synth.NewCosts(a.env.Graph, a.report)
	if fp := a.costs.Fingerprint(); fp == a.baseCostFP {
		a.costPrefix = ""
	} else {
		a.costPrefix = "c!" + strconv.FormatUint(fp, 16) + "|"
	}
	a.exclusionsChanged()
}

// recordHealEvent counts one heal-path event (cold path: the counter
// resolves on demand).
func (a *AdapCC) recordHealEvent(outcome, kind string) {
	if a.reg != nil {
		a.reg.Counter("adapcc_core_readmissions_total",
			"heal-path outcomes applied by the controller, by outcome and kind",
			"outcome", outcome, "kind", kind).Inc(a.env.Engine.Now())
	}
}

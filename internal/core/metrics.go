package core

import (
	"time"

	"adapcc/internal/metrics"
)

// coreMetrics is the controller's pre-resolved instrument bundle (see
// SetMetrics). Per-kind fault counters resolve lazily in the (cold) fault
// path.
type coreMetrics struct {
	reconstructions *metrics.Counter   // Reconstruct + fault-retry set-up charges
	attempts        *metrics.Counter   // resilient execution attempts
	timeToRecover   *metrics.Histogram // per-collective TimeToRecover
}

// SetMetrics installs (or, with nil, removes) a metrics registry on the
// controller and the whole hardware environment beneath it (fabric links,
// GPUs, executor). The controller itself records reconstructions, resilient
// attempts, fault declarations by kind and TimeToRecover.
func (a *AdapCC) SetMetrics(reg *metrics.Registry) {
	a.env.SetMetrics(reg)
	a.reg = reg
	if a.healer != nil {
		a.healer.SetMetrics(reg)
	}
	if reg == nil {
		a.cm = nil
		return
	}
	a.cm = &coreMetrics{
		reconstructions: reg.Counter("adapcc_reconstructions_total",
			"transmission-context (re)constructions: Setup, Reconstruct and fault retries"),
		attempts: reg.Counter("adapcc_resilient_attempts_total",
			"execution attempts started by RunResilient"),
		timeToRecover: reg.Histogram("adapcc_time_to_recover_seconds",
			"detection latency + reconstruction overhead per recovered collective",
			metrics.DurationBuckets),
	}
}

// recordReconstruct counts one context (re)construction charge.
func (a *AdapCC) recordReconstruct() {
	if a.cm != nil {
		a.cm.reconstructions.Inc(a.env.Engine.Now())
	}
}

// recordFault counts one fault declaration by kind (cold path: the counter
// resolves on demand).
func (a *AdapCC) recordFault(kind string) {
	if a.reg != nil {
		a.reg.Counter("adapcc_core_faults_total",
			"fault declarations handled by the resilient controller, by kind",
			"kind", kind).Inc(a.env.Engine.Now())
	}
}

// recordRecovered records a completed resilient collective: its attempt
// count and, when it recovered from faults, the TimeToRecover.
func (a *AdapCC) recordRecovered(attempts int, ttr time.Duration) {
	if a.cm == nil {
		return
	}
	now := a.env.Engine.Now()
	a.cm.attempts.Add(now, float64(attempts))
	if ttr > 0 {
		a.cm.timeToRecover.ObserveDuration(now, ttr)
	}
}

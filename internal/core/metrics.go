package core

import (
	"strconv"
	"time"

	"adapcc/internal/metrics"
	"adapcc/internal/synth"
)

// coreMetrics is the controller's pre-resolved instrument bundle (see
// SetMetrics). Per-kind fault counters resolve lazily in the (cold) fault
// path.
type coreMetrics struct {
	reconstructions *metrics.Counter   // Reconstruct + fault-retry set-up charges
	attempts        *metrics.Counter   // resilient execution attempts
	timeToRecover   *metrics.Histogram // per-collective TimeToRecover
}

// SetMetrics installs (or, with nil, removes) a metrics registry on the
// controller and the whole hardware environment beneath it (fabric links,
// GPUs, executor). The controller itself records reconstructions, resilient
// attempts, fault declarations by kind and TimeToRecover.
func (a *AdapCC) SetMetrics(reg *metrics.Registry) {
	a.env.SetMetrics(reg)
	a.reg = reg
	if a.healer != nil {
		a.healer.SetMetrics(reg)
	}
	if reg == nil {
		a.cm = nil
		return
	}
	a.cm = &coreMetrics{
		reconstructions: reg.Counter("adapcc_reconstructions_total",
			"transmission-context (re)constructions: Setup, Reconstruct and fault retries"),
		attempts: reg.Counter("adapcc_resilient_attempts_total",
			"execution attempts started by RunResilient"),
		timeToRecover: reg.Histogram("adapcc_time_to_recover_seconds",
			"detection latency + reconstruction overhead per recovered collective",
			metrics.DurationBuckets),
	}
}

// recordReconstruct counts one context (re)construction charge.
func (a *AdapCC) recordReconstruct() {
	if a.cm != nil {
		a.cm.reconstructions.Inc(a.env.Engine.Now())
	}
}

// recordFault counts one fault declaration by kind (cold path: the counter
// resolves on demand).
func (a *AdapCC) recordFault(kind string) {
	if a.reg != nil {
		a.reg.Counter("adapcc_core_faults_total",
			"fault declarations handled by the resilient controller, by kind",
			"kind", kind).Inc(a.env.Engine.Now())
	}
}

// recordRecovered records a completed resilient collective: its attempt
// count and, when it recovered from faults, the TimeToRecover.
func (a *AdapCC) recordRecovered(attempts int, ttr time.Duration) {
	if a.cm == nil {
		return
	}
	now := a.env.Engine.Now()
	a.cm.attempts.Add(now, float64(attempts))
	if ttr > 0 {
		a.cm.timeToRecover.ObserveDuration(now, ttr)
	}
}

// recordCacheLookup counts one strategy-cache lookup. With the cache keyed
// by exclusion fingerprint, the hit counter is what proves a healing flap
// re-used a previously solved strategy instead of re-synthesizing.
func (a *AdapCC) recordCacheLookup(hit bool) {
	if a.reg == nil {
		return
	}
	result := "miss"
	if hit {
		result = "hit"
	}
	a.reg.Counter("adapcc_strategy_cache_total",
		"strategy-cache lookups by result",
		"result", result).Inc(a.env.Engine.Now())
}

// recordRecovery counts one recovery cycle by the synthesis rung the retry
// used and the fault's locality (cold path: the counter resolves on
// demand). The domain_local/incremental cell is the scale-out headline —
// it asserts that single-server faults never invoked the global search.
func (a *AdapCC) recordRecovery(ladder, locality string) {
	if a.reg == nil {
		return
	}
	a.reg.Counter("adapcc_core_recoveries_total",
		"recovery cycles completed by the resilient controller, by synthesis rung and fault locality",
		"ladder", ladder, "locality", locality).Inc(a.env.Engine.Now())
}

// recordRecoveryEvents observes the labeled time-to-recover series — one
// sample per recovery cycle, labeled by world size, fault locality and the
// synthesis rung ("mode") the retry used — alongside the unlabeled
// aggregate histogram recordRecovered keeps. The mode split is what shows
// incremental recoveries bounding TTR while full re-syntheses pay the
// whole search.
func (a *AdapCC) recordRecoveryEvents(world int, events []RecoveryEvent) {
	if a.reg == nil || len(events) == 0 {
		return
	}
	now := a.env.Engine.Now()
	w := strconv.Itoa(world)
	for _, ev := range events {
		a.reg.Histogram("adapcc_time_to_recover_seconds",
			"detection latency + reconstruction overhead per recovered collective",
			metrics.DurationBuckets,
			"world", w, "locality", ev.Locality, "mode", ev.Ladder).ObserveDuration(now, ev.DetectLatency+ev.Overhead)
	}
}

// recordSynth counts one strategy resolution that actually ran the
// synthesizer (cache hits are not resolutions) by mode — "full", "fast",
// "multiroot", "patched" or "degraded-ring" — and observes its virtual
// solve time. The patched-vs-full split across these two instruments is
// the incremental-synthesis headline.
func (a *AdapCC) recordSynth(mode string, solve time.Duration) {
	if a.reg == nil {
		return
	}
	now := a.env.Engine.Now()
	a.reg.Counter("adapcc_synth_resolves_total",
		"strategy resolutions that ran the synthesizer, by mode",
		"mode", mode).Inc(now)
	a.reg.Histogram("adapcc_resynthesis_seconds",
		"virtual solve time per synthesizer run, by mode",
		metrics.DurationBuckets,
		"mode", mode).ObserveDuration(now, solve)
}

// recordPatch counts one synth.Patch attempt and, when the patch was
// adopted, how many sub-collectives it touched versus kept — the proof
// that an incremental repair patched only the affected sub-collectives.
func (a *AdapCC) recordPatch(stats synth.PatchStats, adopted bool) {
	if a.reg == nil {
		return
	}
	now := a.env.Engine.Now()
	result := "rejected"
	if adopted {
		result = "adopted"
	}
	a.reg.Counter("adapcc_synth_patches_total",
		"incremental strategy patches attempted, by outcome",
		"result", result).Inc(now)
	if !adopted {
		return
	}
	a.reg.Counter("adapcc_synth_patched_subs_total",
		"sub-collectives of adopted patches, by whether they were rerouted or kept verbatim",
		"state", "patched").Add(now, float64(stats.SubsPatched))
	a.reg.Counter("adapcc_synth_patched_subs_total",
		"sub-collectives of adopted patches, by whether they were rerouted or kept verbatim",
		"state", "kept").Add(now, float64(stats.SubsTotal-stats.SubsPatched))
}

package core

import (
	"fmt"
	"strconv"

	"adapcc/internal/backend"
	"adapcc/internal/ir"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
)

// multiRootStrategy synthesises (with caching) the multi-root assembly a
// first-class AllGather (Broadcast trees) or ReduceScatter (Reduce
// trees) runs as one op. Cached under its own key family so it never
// collides with the single-root entries of the same shape.
func (a *AdapCC) multiRootStrategy(p strategy.Primitive, bytes int64, ranks []int, cfg backend.RunConfig) (*synth.Result, error) {
	key := "multiroot|" + cacheKey(p, bytes, ranks, cfg.Relays, -1)
	if cfg.FastPath {
		key = "fast|" + key
	}
	full := key
	if pre := a.prefix(); pre != "" {
		full = pre + key
	}
	if res, ok := a.cache[full]; ok {
		a.recordCacheLookup(true)
		return res, nil
	}
	a.recordCacheLookup(false)
	if res := a.patchFromPrevious(key, true); res != nil {
		a.cache[full] = res
		a.lastSolveTime += res.SolveTime
		return res, nil
	}
	res, err := a.planner.MultiRoot(a.activeCosts(), synth.Request{
		Primitive:  p,
		Bytes:      bytes,
		Ranks:      ranks,
		Relays:     cfg.Relays,
		ChunkGrid:  a.opts.ChunkGrid,
		FastSearch: cfg.FastPath,
		Sketch:     a.opts.Sketch,
	})
	if err != nil {
		return nil, err
	}
	if err := a.verifyStrategy(res.Strategy, true); err != nil {
		return nil, err
	}
	a.recordSynth("multiroot", res.SolveTime)
	a.cache[full] = res
	a.lastSolveTime += res.SolveTime
	return res, nil
}

// verifyStrategy, when WithVerify is enabled, lowers a freshly
// synthesised strategy to the chunk-level IR and runs the verifier,
// recording the decision in adapcc_ir_verify_total{result}. multiRoot
// selects the ReduceScatter/AllGather lowering; otherwise the strategy's
// own primitive decides. Verification runs once per synthesis — cached
// strategies were proven when first built.
func (a *AdapCC) verifyStrategy(st *strategy.Strategy, multiRoot bool) error {
	if !a.opts.Verify {
		return nil
	}
	var (
		prog *ir.Program
		err  error
	)
	switch {
	case multiRoot && st.Primitive == strategy.Reduce:
		prog, err = ir.ReduceScatterFromStrategy(st)
	case multiRoot && st.Primitive == strategy.Broadcast:
		prog, err = ir.AllGatherFromStrategy(st)
	default:
		prog, err = ir.FromStrategy(st)
	}
	if err == nil {
		err = ir.Verify(prog)
	}
	ir.RecordVerify(a.reg, a.env.Engine.Now(), err)
	if err != nil {
		return fmt.Errorf("core: synthesised %v strategy (%s bytes) failed verification: %w",
			st.Primitive, strconv.FormatInt(st.TotalBytes, 10), err)
	}
	return nil
}

// verifyPatched is the unconditional IR gate on incrementally patched
// strategies: unlike verifyStrategy it runs regardless of Options.Verify,
// because a patch bypasses the search's vetted candidate space — its flows
// were rerouted by shortest-path surgery, so correctness is proven (chunk
// delivery + exactly-once reduction), never assumed. Decisions land in the
// same adapcc_ir_verify_total{result} counter.
func (a *AdapCC) verifyPatched(st *strategy.Strategy, multiRoot bool) error {
	var (
		prog *ir.Program
		err  error
	)
	switch {
	case multiRoot && st.Primitive == strategy.Reduce:
		prog, err = ir.ReduceScatterFromStrategy(st)
	case multiRoot && st.Primitive == strategy.Broadcast:
		prog, err = ir.AllGatherFromStrategy(st)
	default:
		prog, err = ir.FromStrategy(st)
	}
	if err == nil {
		err = ir.Verify(prog)
	}
	ir.RecordVerify(a.reg, a.env.Engine.Now(), err)
	if err != nil {
		return fmt.Errorf("core: patched %v strategy failed verification: %w", st.Primitive, err)
	}
	return nil
}

// VerifyStrategy lowers and verifies an already-built strategy program —
// the adapccsim -verify flag uses it to check whatever plan a run is
// about to execute — and returns the IR program for reporting. The
// lowering is chosen like verifyStrategy's.
func VerifyStrategy(st *strategy.Strategy, multiRoot bool) (*ir.Program, error) {
	var (
		prog *ir.Program
		err  error
	)
	switch {
	case multiRoot && st.Primitive == strategy.Reduce:
		prog, err = ir.ReduceScatterFromStrategy(st)
	case multiRoot && st.Primitive == strategy.Broadcast:
		prog, err = ir.AllGatherFromStrategy(st)
	default:
		prog, err = ir.FromStrategy(st)
	}
	if err != nil {
		return nil, err
	}
	return prog, ir.Verify(prog)
}

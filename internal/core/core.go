// Package core is AdapCC's public API (paper Sec. III, VI-A): it wires the
// Controller — Detector, Profiler, Synthesizer and relay Coordinator — to
// the Communicator/Executor. The lifecycle mirrors the paper's Python
// module:
//
//	a, _ := core.New(env)       // adapcc.init(): detect topology
//	a.Setup(done)                               // adapcc.setup(): profile + register contexts
//	a.Run(backend.Request{...})                 // adapcc.allreduce() / alltoall() / ...
//	a.Reconstruct(done)                         // runtime re-profiling + graph reconstruction
//
// Strategies are synthesised from profiled link properties and cached per
// (primitive, size, participant set); Reconstruct invalidates the cache
// after re-profiling, without checkpointing or restarting anything.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/detect"
	"adapcc/internal/grayfail"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/profile"
	"adapcc/internal/relay"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// Options configures an AdapCC instance. Callers construct it through the
// With* functional options of New; the struct stays exported so the
// resolved configuration can be inspected.
type Options struct {
	// M is the number of parallel sub-collectives (default synth.DefaultM).
	M int
	// ExactM pins M instead of treating it as a cap (Fig. 19a sweep).
	ExactM bool
	// ChunkGrid overrides the chunk-size search grid.
	ChunkGrid []int64
	// SkipProfiling makes the synthesizer run on nominal hardware labels
	// (the profiling ablation).
	SkipProfiling bool
	// Verify lowers every freshly synthesised strategy to the chunk-level
	// IR (internal/ir) and rejects it unless the verifier proves the
	// schedule delivers each rank its required chunks with every
	// contribution reduced exactly once. Decisions are counted in
	// adapcc_ir_verify_total{result}.
	Verify bool
	// Sketch, when non-nil, restricts every synthesis this instance runs
	// (synth.Sketch: leader hints, ring orientation, hierarchy cut,
	// candidate-family allow/deny, pinned chunk). Validated by New; a
	// sketch that is well-formed but infeasible for a given request
	// surfaces as synth.ErrInfeasibleSketch from that request.
	Sketch *synth.Sketch
}

// Option configures New, in the package-wide With* functional-option
// style (see doc.go of internal/comm for the convention).
type Option func(*Options)

// WithM caps the number of parallel sub-collectives (transmission
// contexts) the synthesizer may use.
func WithM(m int) Option {
	return func(o *Options) { o.M = m }
}

// WithExactM pins the sub-collective count to exactly m (the Fig. 19a
// ablation sweep), instead of treating it as a cap.
func WithExactM(m int) Option {
	return func(o *Options) { o.M, o.ExactM = m, true }
}

// WithChunkGrid overrides the chunk-size search grid.
func WithChunkGrid(grid ...int64) Option {
	return func(o *Options) { o.ChunkGrid = grid }
}

// WithSkipProfiling makes the synthesizer run on nominal hardware labels
// instead of profiled ones (the profiling ablation; also what keeps
// timing independent of the profiling phase's seed).
func WithSkipProfiling() Option {
	return func(o *Options) { o.SkipProfiling = true }
}

// WithVerify proves every freshly synthesised strategy correct through
// the chunk-level IR verifier before it is cached or executed (the
// adapccsim -verify flag).
func WithVerify() Option {
	return func(o *Options) { o.Verify = true }
}

// AdapCC is one job-wide library instance (logically replicated on every
// worker; the controller modules run on rank 0).
type AdapCC struct {
	env  *backend.Env
	opts Options

	detection *detect.Result
	report    *profile.Report
	costs     *synth.Costs

	// planner is the stateful synthesizer face: it keeps subBuilders (and
	// their per-subdomain flow fragments) alive across every synthesis this
	// instance runs, so hierarchical re-synthesis after a fault re-derives
	// only what the changed topology invalidates.
	planner *synth.Planner

	cache map[string]*synth.Result

	// Fault-exclusion state (chunk-granularity recovery, resilient.go):
	// links and ranks the controller has written off. Synthesis runs over
	// a clone of the graph without them; the fabric keeps the full graph,
	// so previously-cached node paths remain executable.
	deadPairs map[[2]topology.NodeID]bool
	deadRanks map[int]bool
	survGraph *topology.Graph // lazily built fault-filtered clone
	survCosts *synth.Costs    // cost view remapped onto survGraph
	// Gray-failure state (grayfail.go): links the congestion detector has
	// ruled degraded — alive, delivering, just slow. They stay on the
	// synthesis topology but their bandwidths are down-weighted by the
	// stored factor, so re-synthesis steers around them without writing
	// them off. softPairs holds both directions of each pair.
	softPairs map[[2]topology.NodeID]float64
	softCosts *synth.Costs // lazily reweighted view over activeCosts' base
	// fingerprint canonically encodes the current exclusion set (sorted
	// dead pairs + dead ranks); empty when nothing is excluded. It prefixes
	// strategy-cache keys, so strategies synthesised under different fault
	// sets coexist and a healing flap that restores a previous topology
	// hits the cache instead of re-solving (see exclusionsChanged).
	fingerprint string
	// baseCostFP is the cost view's content hash captured at the last
	// Reconstruct; costPrefix is empty while the current costs still match
	// it (the fault-free fast path allocates nothing extra) and carries the
	// hash otherwise, so strategies solved under different measurement sets
	// coexist in the cache instead of wiping each other (heal.go).
	baseCostFP uint64
	costPrefix string
	// prevPrefix/lastDelta remember the cache prefix before the most recent
	// single-link change and what that change was, so a cache miss after an
	// exclusion, re-admission or reweight first tries synth.Patch against
	// the previous epoch's entry — gated through ir.Verify — before paying
	// a full search. Rank-level and wholesale changes clear the delta.
	prevPrefix string
	lastDelta  *synth.Delta

	// Elastic healing (heal.go): the background monitor re-admitting
	// excluded hardware, the last coordinator to tell about healed ranks,
	// and the user observers. All nil/free until EnableHealing.
	healer        *health.Monitor
	healCo        *relay.Coordinator
	healOnHeal    func(health.Event)
	healOnCondemn func(health.Event)

	// Gray-failure detection (grayfail.go): the in-fabric congestion
	// monitor and its observer. Nil/free until EnableGrayfail.
	grayMon       *grayfail.Monitor
	grayOnVerdict func(grayfail.Event)
	grayWeight    float64

	// Accounting for the reconstruction-overhead experiment (Fig. 19c).
	lastProfileTime time.Duration
	lastSolveTime   time.Duration
	lastSetupTime   time.Duration
	setupCount      int

	// reg/cm are the metrics registry and the controller's pre-resolved
	// instrument bundle; both nil (free) unless SetMetrics was called.
	reg *metrics.Registry
	cm  *coreMetrics
}

var _ backend.Backend = (*AdapCC)(nil)

// New runs topology detection (adapcc.init()) and returns the instance.
// Detection probes the physical cluster through the hardware prober; its
// cost is the constant per-server probe time (Sec. VI-E: ≈1.2 s,
// concurrent across servers) and is reported by InitTime rather than
// charged to the engine, since it happens before training starts.
//
//	a, err := core.New(env, core.WithM(4), core.WithSkipProfiling())
func New(env *backend.Env, options ...Option) (*AdapCC, error) {
	var opts Options
	for _, o := range options {
		o(&opts)
	}
	return NewWithOptions(env, opts)
}

// NewWithOptions is New over an explicit Options struct.
//
// Deprecated: use New with With* functional options.
func NewWithOptions(env *backend.Env, opts Options) (*AdapCC, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if opts.M <= 0 {
		opts.M = synth.DefaultM
	}
	if err := opts.Sketch.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	prober := detect.NewHardwareProber(env.Cluster, env.Engine.Fork())
	det, err := detect.Detect(env.Cluster, prober)
	if err != nil {
		return nil, fmt.Errorf("core: detection: %w", err)
	}
	a := &AdapCC{
		env:       env,
		opts:      opts,
		detection: det,
		costs:     synth.NewCosts(env.Graph, nil),
		planner:   synth.NewPlanner(),
		cache:     make(map[string]*synth.Result),
		deadPairs: make(map[[2]topology.NodeID]bool),
		deadRanks: make(map[int]bool),
		softPairs: make(map[[2]topology.NodeID]float64),
	}
	a.baseCostFP = a.costs.Fingerprint()
	return a, nil
}

// Name implements backend.Backend.
func (a *AdapCC) Name() string { return "AdapCC" }

// Env returns the simulated hardware environment.
func (a *AdapCC) Env() *backend.Env { return a.env }

// InitTime is the topology-inference cost (constant in job scale).
func (a *AdapCC) InitTime() time.Duration { return a.detection.InferenceTime }

// Detection exposes the inferred per-server layouts.
func (a *AdapCC) Detection() *detect.Result { return a.detection }

// Costs returns the current α–β view used by the synthesizer.
func (a *AdapCC) Costs() *synth.Costs { return a.costs }

// Report returns the latest profiling report (nil before Setup).
func (a *AdapCC) Report() *profile.Report { return a.report }

// Setup profiles the links and registers transmission contexts
// (adapcc.setup()); onDone fires on the engine when ready. Training must
// not start before it completes.
func (a *AdapCC) Setup(onDone func()) {
	a.Reconstruct(func(time.Duration) {
		if onDone != nil {
			onDone()
		}
	})
}

// Reconstruct re-profiles the links, refreshes the cost model, drops the
// strategy cache and re-registers transmission contexts. The training job
// is never checkpointed or restarted: onDone receives the full overhead —
// profiling + strategy solving + context set-up — which is what Fig. 19c
// measures against an NCCL restart.
func (a *AdapCC) Reconstruct(onDone func(overhead time.Duration)) {
	start := a.env.Engine.Now()
	run := func(rep *profile.Report) {
		if rep != nil {
			a.report = rep
			a.costs = synth.NewCosts(a.env.Graph, rep)
			a.lastProfileTime = rep.Duration()
		} else {
			a.lastProfileTime = 0
		}
		a.survGraph, a.survCosts, a.softCosts = nil, nil, nil // rebuilt from the fresh costs
		a.cache = make(map[string]*synth.Result)
		// The fresh measurements become the new cost baseline: the
		// fault-free path keys with no cost prefix again, and any
		// pending single-link delta is meaningless against it.
		a.baseCostFP = a.costs.Fingerprint()
		a.costPrefix = ""
		a.lastDelta = nil
		a.lastSolveTime = 0
		setup := a.setupTime()
		a.lastSetupTime = setup
		a.setupCount++
		a.recordReconstruct()
		a.env.Engine.After(setup, func() {
			if onDone != nil {
				onDone(a.env.Engine.Now() - start)
			}
		})
	}
	if a.opts.SkipProfiling {
		run(nil)
		return
	}
	profile.New(a.env.Fabric, profile.Options{}).Run(run)
}

// setupTime models the transmission-context set-up phase of Sec. V-A:
// buffer allocation, CUDA IPC handle creation, the handle AllGather within
// each server and the host-IP exchange across servers. Registered memory
// is reused afterwards, so this is paid once per (re)construction.
const (
	setupBase       = 120 * time.Millisecond
	setupPerContext = 30 * time.Millisecond
	setupPerServer  = 12 * time.Millisecond
)

func (a *AdapCC) setupTime() time.Duration {
	servers := len(a.env.Cluster.Servers)
	return setupBase +
		time.Duration(a.opts.M)*setupPerContext +
		time.Duration(servers*a.opts.M)*setupPerServer
}

// incrementalSetupTime is the reduced context charge of the incremental
// recovery rung (resilient.go): a domain-local patch keeps every partition,
// chunk size and aggregation site, so only the faulted server's M contexts
// re-register — one server's share of setupTime, with no base charge.
func (a *AdapCC) incrementalSetupTime() time.Duration {
	return setupPerContext + time.Duration(a.opts.M)*setupPerServer
}

// Overheads reports the components of the last reconstruction.
func (a *AdapCC) Overheads() (profiling, solving, setup time.Duration) {
	return a.lastProfileTime, a.lastSolveTime, a.lastSetupTime
}

// Run implements backend.Backend: it validates the request, synthesises
// (or reuses) the strategy, and executes it. It is the single execution
// entry point — what used to be RunPartial and the internal fast path are
// expressed as options:
//
//	a.Run(req)                                   // full collective
//	a.Run(req, backend.WithRelays(relays...))    // partial: req.Ranks ready, relays attached
//	a.Run(req, backend.WithFastPath())           // restricted per-iteration synthesis
//	a.Run(req, backend.WithGroup("tp0", class))  // on behalf of a communicator group
func (a *AdapCC) Run(req backend.Request, opts ...backend.RunOption) error {
	if err := req.ValidateIn(a.env); err != nil {
		return err
	}
	cfg := backend.BuildRunConfig(opts)
	synthesize := a.Strategy
	if cfg.FastPath {
		synthesize = a.FastStrategy
	}
	res, err := synthesize(req.Primitive, req.Bytes, req.Ranks, cfg.Relays, req.Root)
	if err != nil {
		return err
	}
	op := collective.Op{
		Strategy: res.Strategy,
		Mode:     req.Mode,
		Inputs:   req.Inputs,
		Class:    cfg.Class,
		OnDone:   req.OnDone,
	}
	if cfg.Relays != nil {
		// Partial collective: only the request's ranks contribute data;
		// the relays participate per their behaviour tuples.
		active := make(map[int]bool, len(req.Ranks))
		for _, r := range req.Ranks {
			active[r] = true
		}
		op.Active = active
	}
	return a.env.Exec.Run(op)
}

// RunPartial executes a collective among ready workers only, using the
// given relays (phase 1 of the adaptive relay control).
//
// Deprecated: use Run with backend.WithRelays.
func (a *AdapCC) RunPartial(req backend.Request, relays []int) error {
	if relays == nil {
		relays = []int{}
	}
	return a.Run(req, backend.WithRelays(relays...))
}

// Strategy synthesises (with caching) the plan for a collective using the
// full candidate search.
func (a *AdapCC) Strategy(p strategy.Primitive, bytes int64, ranks, relays []int, root int) (*synth.Result, error) {
	return a.synthesize(p, bytes, ranks, relays, root, false)
}

// FastStrategy synthesises with the restricted per-iteration search the
// relay coordinator uses for phase-1/phase-2 plans over transient
// ready-sets (synthesis latency is on the iteration's critical path).
func (a *AdapCC) FastStrategy(p strategy.Primitive, bytes int64, ranks, relays []int, root int) (*synth.Result, error) {
	return a.synthesize(p, bytes, ranks, relays, root, true)
}

// prefix composes the cache-key prefix of the current epoch: the cost
// fingerprint (non-empty only after AbsorbMeasurements moved the costs off
// the Reconstruct baseline) followed by the exclusion fingerprint. Empty on
// the fault-free path, so those keys allocate nothing extra.
func (a *AdapCC) prefix() string { return a.costPrefix + a.fingerprint }

func (a *AdapCC) synthesize(p strategy.Primitive, bytes int64, ranks, relays []int, root int, fast bool) (*synth.Result, error) {
	if ranks == nil {
		ranks = a.env.AllRanks()
	}
	key := cacheKey(p, bytes, ranks, relays, root)
	if fast {
		key = "fast|" + key
	}
	full := key
	if pre := a.prefix(); pre != "" {
		full = pre + key
	}
	if res, ok := a.cache[full]; ok {
		a.recordCacheLookup(true)
		return res, nil
	}
	a.recordCacheLookup(false)
	if res := a.patchFromPrevious(key, false); res != nil {
		a.cache[full] = res
		a.lastSolveTime += res.SolveTime
		return res, nil
	}
	res, err := a.planner.Synthesize(a.activeCosts(), synth.Request{
		Primitive:  p,
		Bytes:      bytes,
		Ranks:      ranks,
		Relays:     relays,
		Root:       root,
		M:          a.opts.M,
		ExactM:     a.opts.ExactM,
		ChunkGrid:  a.opts.ChunkGrid,
		FastSearch: fast,
		Sketch:     a.opts.Sketch,
	})
	if err != nil {
		return nil, err
	}
	if err := a.verifyStrategy(res.Strategy, false); err != nil {
		return nil, err
	}
	mode := "full"
	if fast {
		mode = "fast"
	}
	a.recordSynth(mode, res.SolveTime)
	a.cache[full] = res
	a.lastSolveTime += res.SolveTime
	return res, nil
}

// patchFromPrevious is the incremental tier of the strategy cache: when the
// most recent topology change was a single-link delta, a miss under the new
// prefix first looks the same shape up under the previous epoch's prefix and
// asks synth.Patch to reroute/re-price that result instead of re-searching.
// The patched strategy must validate on the surviving graph and pass the IR
// verifier (unconditionally — patches skip the search's vetted candidate
// space, so they are never adopted on trust); any failure falls back to the
// full synthesis the caller was about to run anyway.
func (a *AdapCC) patchFromPrevious(key string, multiRoot bool) *synth.Result {
	if a.lastDelta == nil {
		return nil
	}
	cur := a.prefix()
	if a.prevPrefix == cur {
		return nil
	}
	prev, ok := a.cache[a.prevPrefix+key]
	if !ok {
		return nil
	}
	res, stats, err := synth.Patch(a.activeCosts(), prev, *a.lastDelta)
	if err != nil {
		a.recordPatch(stats, false)
		return nil
	}
	if err := res.Strategy.Validate(a.activeGraph()); err != nil {
		a.recordPatch(stats, false)
		return nil
	}
	if err := a.verifyPatched(res.Strategy, multiRoot); err != nil {
		a.recordPatch(stats, false)
		return nil
	}
	a.recordPatch(stats, true)
	a.recordSynth("patched", res.SolveTime)
	return res
}

// CachedStrategies reports the number of synthesized strategies in the
// shared cache. Communicator groups (internal/comm) with identical
// participant sets resolve to one entry — the cache is keyed by shape,
// not by group.
func (a *AdapCC) CachedStrategies() int { return len(a.cache) }

// Predict returns the synthesizer's predicted completion time for a
// collective (the coordinator's cost estimates use this).
func (a *AdapCC) Predict(p strategy.Primitive, bytes int64, ranks, relays []int, root int) (time.Duration, error) {
	res, err := a.Strategy(p, bytes, ranks, relays, root)
	if err != nil {
		return 0, err
	}
	return res.Eval.Time, nil
}

// AggregateBandwidthBps implements the paper's B: the accumulated profiled
// bandwidth of the network links feeding the servers that host the given
// workers (plus relays).
func (a *AdapCC) AggregateBandwidthBps(ready, relays []int) float64 {
	g := a.env.Graph
	servers := make(map[int]bool)
	for _, set := range [][]int{ready, relays} {
		for _, r := range set {
			if id, ok := g.GPUByRank(r); ok {
				servers[g.Node(id).Server] = true
			}
		}
	}
	var sum float64
	for _, e := range g.Edges() {
		if !e.Type.Network() {
			continue
		}
		// NIC port edges (to/from the core switch) of involved servers.
		endpoint := g.Node(e.From)
		if endpoint.Kind != topology.KindNIC {
			endpoint = g.Node(e.To)
		}
		if endpoint.Kind != topology.KindNIC || !servers[endpoint.Server] {
			continue
		}
		if a.report != nil {
			sum += a.report.AggregateBps(g, e.ID)
		} else {
			sum += e.BandwidthBps
		}
	}
	sum /= 2 // each port was counted for both directions
	if sum == 0 && len(servers) == 1 {
		// Single-server job: accumulate NVLink bandwidth instead.
		for _, e := range g.Edges() {
			if e.Type == topology.LinkNVLink {
				sum += e.BandwidthBps
			}
		}
	}
	return sum
}

func cacheKey(p strategy.Primitive, bytes int64, ranks, relays []int, root int) string {
	b := make([]byte, 0, 64)
	b = strconv.AppendInt(b, int64(p), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, bytes, 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(root), 10)
	for _, set := range [][]int{ranks, relays} {
		b = append(b, '|')
		sorted := append([]int(nil), set...)
		sort.Ints(sorted)
		for _, r := range sorted {
			b = strconv.AppendInt(b, int64(r), 10)
			b = append(b, ',')
		}
	}
	return string(b)
}

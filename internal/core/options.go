// One option shape for the controller's opt-in subsystems. New, healing
// and gray-failure detection historically took three different
// configuration forms (functional options, HealOptions struct,
// GrayfailOptions struct); this file unifies them on the package-wide
// With* functional-option convention with typed validation — a malformed
// option surfaces as ErrInvalidOption at enable time, not as a silent
// fallback to a default deep in the subsystem. The struct forms survive as
// thin wrappers for callers that build configuration programmatically.
package core

import (
	"errors"
	"fmt"
	"time"

	"adapcc/internal/grayfail"
	"adapcc/internal/health"
	"adapcc/internal/synth"
)

// ErrInvalidOption is wrapped by every option-validation failure of New,
// StartHealing and StartGrayfail; match with errors.Is.
var ErrInvalidOption = errors.New("core: invalid option")

// WithSketch restricts every synthesis of the instance with a
// communication sketch (synth.Sketch): leader hints, ring orientation,
// hierarchy cut, candidate-family allow/deny and a pinned chunk size. The
// sketch is validated by New (ErrInvalidOption wrapping the synth error);
// a sketch that is well-formed but infeasible for a given request fails
// that request with synth.ErrInfeasibleSketch.
func WithSketch(sk *synth.Sketch) Option {
	return func(o *Options) { o.Sketch = sk }
}

// HealOption configures StartHealing. Unlike the plain With* option funcs
// of New, heal options validate: a nonsensical knob is reported as
// ErrInvalidOption instead of being silently replaced by a default.
type HealOption func(*HealOptions) error

// WithHealQuarantine sets the minimum exclusion dwell before the first
// probe. Must be positive.
func WithHealQuarantine(d time.Duration) HealOption {
	return func(o *HealOptions) error {
		if d <= 0 {
			return fmt.Errorf("%w: heal quarantine %v must be positive", ErrInvalidOption, d)
		}
		o.Quarantine = d
		return nil
	}
}

// WithHealProbation sets the consecutive-success streak required for
// promotion. Must be positive.
func WithHealProbation(k int) HealOption {
	return func(o *HealOptions) error {
		if k <= 0 {
			return fmt.Errorf("%w: heal probation streak %d must be positive", ErrInvalidOption, k)
		}
		o.ProbationK = k
		return nil
	}
}

// WithHealGiveUpAfter sets the relapse count after which a target is
// condemned. Must be positive.
func WithHealGiveUpAfter(n int) HealOption {
	return func(o *HealOptions) error {
		if n <= 0 {
			return fmt.Errorf("%w: heal give-up count %d must be positive", ErrInvalidOption, n)
		}
		o.GiveUpAfter = n
		return nil
	}
}

// WithHealProbeInterval sets the cadence of probe cycles inside probation.
// Must be positive.
func WithHealProbeInterval(d time.Duration) HealOption {
	return func(o *HealOptions) error {
		if d <= 0 {
			return fmt.Errorf("%w: heal probe interval %v must be positive", ErrInvalidOption, d)
		}
		o.ProbeInterval = d
		return nil
	}
}

// WithOnHeal observes each promotion after the controller has applied it.
// The observer must be non-nil.
func WithOnHeal(fn func(health.Event)) HealOption {
	return func(o *HealOptions) error {
		if fn == nil {
			return fmt.Errorf("%w: nil OnHeal observer", ErrInvalidOption)
		}
		o.OnHeal = fn
		return nil
	}
}

// WithOnCondemn observes targets written off permanently. The observer
// must be non-nil.
func WithOnCondemn(fn func(health.Event)) HealOption {
	return func(o *HealOptions) error {
		if fn == nil {
			return fmt.Errorf("%w: nil OnCondemn observer", ErrInvalidOption)
		}
		o.OnCondemn = fn
		return nil
	}
}

// StartHealing installs the background health monitor from functional
// options — the canonical form of EnableHealing. Idempotent like it: the
// first installer's knobs win and later calls return the existing monitor,
// though their options are still validated.
func (a *AdapCC) StartHealing(options ...HealOption) (*health.Monitor, error) {
	var opts HealOptions
	for _, o := range options {
		if err := o(&opts); err != nil {
			return nil, err
		}
	}
	return a.installHealing(opts), nil
}

// GrayfailOption configures StartGrayfail, validating like HealOption.
type GrayfailOption func(*GrayfailOptions) error

// WithGrayWeight sets the bandwidth multiplier applied to degraded links.
// Must lie strictly between 0 and 1.
func WithGrayWeight(w float64) GrayfailOption {
	return func(o *GrayfailOptions) error {
		if w <= 0 || w >= 1 {
			return fmt.Errorf("%w: degraded weight %v must be in (0, 1)", ErrInvalidOption, w)
		}
		o.Weight = w
		return nil
	}
}

// WithGrayInterval sets the congestion-sampling cadence. Must be positive.
func WithGrayInterval(d time.Duration) GrayfailOption {
	return func(o *GrayfailOptions) error {
		if d <= 0 {
			return fmt.Errorf("%w: grayfail interval %v must be positive", ErrInvalidOption, d)
		}
		o.Interval = d
		return nil
	}
}

// WithGrayDegradeAfter sets the consecutive-bad-sample streak that
// triggers the degraded verdict. Must be positive.
func WithGrayDegradeAfter(n int) GrayfailOption {
	return func(o *GrayfailOptions) error {
		if n <= 0 {
			return fmt.Errorf("%w: grayfail degrade streak %d must be positive", ErrInvalidOption, n)
		}
		o.DegradeAfter = n
		return nil
	}
}

// WithOnVerdict observes every congestion verdict after the controller has
// applied it. The observer must be non-nil.
func WithOnVerdict(fn func(grayfail.Event)) GrayfailOption {
	return func(o *GrayfailOptions) error {
		if fn == nil {
			return fmt.Errorf("%w: nil OnVerdict observer", ErrInvalidOption)
		}
		o.OnVerdict = fn
		return nil
	}
}

// StartGrayfail installs the in-fabric congestion detector from functional
// options — the canonical form of EnableGrayfail. Idempotent like it.
func (a *AdapCC) StartGrayfail(options ...GrayfailOption) (*grayfail.Monitor, error) {
	var opts GrayfailOptions
	for _, o := range options {
		if err := o(&opts); err != nil {
			return nil, err
		}
	}
	return a.installGrayfail(opts), nil
}

// Package baseline_test exercises the three baseline backends on the same
// fabric and checks both data correctness and the relative performance
// ordering the paper reports (AdapCC > MSCCL ≳ NCCL > Blink on the
// heterogeneous multi-server testbed).
package baseline_test

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/blink"
	"adapcc/internal/baseline/msccl"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func newEnv(t *testing.T, c *topology.Cluster) *backend.Env {
	t.Helper()
	env, err := backend.NewEnv(c, 33)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func testbedEnv(t *testing.T) *backend.Env {
	t.Helper()
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	return newEnv(t, c)
}

func checkAllReduceSum(t *testing.T, env *backend.Env, b backend.Backend, bytes int64) time.Duration {
	t.Helper()
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var got collective.Result
	elapsed, err := backend.Measure(env, b, backend.Request{
		Primitive: strategy.AllReduce,
		Bytes:     bytes,
		Inputs:    inputs,
		OnDone:    func(r collective.Result) { got = r },
	})
	if err != nil {
		t.Fatalf("%s: %v", b.Name(), err)
	}
	for _, r := range ranks {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("%s: rank %d has no output", b.Name(), r)
		}
		for i := 0; i < len(want); i += 1 + len(want)/97 {
			if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
				t.Fatalf("%s: rank %d elem %d = %v, want %v", b.Name(), r, i, out[i], want[i])
			}
		}
	}
	return elapsed
}

func TestNCCLAllReduceCorrect(t *testing.T) {
	env := testbedEnv(t)
	checkAllReduceSum(t, env, nccl.New(env), 16<<20)
}

func TestMSCCLAllReduceCorrect(t *testing.T) {
	env := testbedEnv(t)
	checkAllReduceSum(t, env, msccl.New(env), 16<<20)
}

func TestBlinkAllReduceCorrect(t *testing.T) {
	env := testbedEnv(t)
	checkAllReduceSum(t, env, blink.New(env), 16<<20)
}

func TestPaperOrderingOnHeterogeneousReduce(t *testing.T) {
	// One shared workload; fresh env per system so timings don't
	// interfere. Paper Fig. 12: AdapCC 1.05–1.29× over NCCL, 1.02–1.21×
	// over MSCCL, 1.30–1.61× over Blink.
	const bytes = 128 << 20
	timeOf := func(name string) time.Duration {
		env := testbedEnv(t)
		var b backend.Backend
		switch name {
		case "nccl":
			b = nccl.New(env)
		case "msccl":
			b = msccl.New(env)
		case "blink":
			b = blink.New(env)
		case "adapcc":
			a, err := core.New(env)
			if err != nil {
				t.Fatal(err)
			}
			a.Setup(func() {})
			env.Engine.Run()
			b = a
		}
		elapsed, err := backend.Measure(env, b, backend.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return elapsed
	}
	adapcc := timeOf("adapcc")
	ncclT := timeOf("nccl")
	mscclT := timeOf("msccl")
	blinkT := timeOf("blink")
	t.Logf("AllReduce %dMB: adapcc=%v msccl=%v nccl=%v blink=%v", bytes>>20, adapcc, mscclT, ncclT, blinkT)

	if adapcc >= ncclT {
		t.Errorf("AdapCC (%v) not faster than NCCL (%v)", adapcc, ncclT)
	}
	if adapcc >= mscclT {
		t.Errorf("AdapCC (%v) not faster than MSCCL (%v)", adapcc, mscclT)
	}
	if adapcc >= blinkT {
		t.Errorf("AdapCC (%v) not faster than Blink (%v)", adapcc, blinkT)
	}
	if blinkT <= ncclT {
		t.Errorf("Blink (%v) should be slowest in multi-server setting (NCCL %v)", blinkT, ncclT)
	}
}

func TestNCCLSingleChannelHurtsOnTCP(t *testing.T) {
	// Paper Sec. VI-D: a single channel peaks around 20 Gbps on TCP;
	// AdapCC's parallel sub-collectives do much better.
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 64 << 20
	envN := newEnv(t, c)
	ncclT, err := backend.Measure(envN, nccl.New(envN), backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	envA := newEnv(t, c)
	a, err := core.New(envA)
	if err != nil {
		t.Fatal(err)
	}
	a.Setup(func() {})
	envA.Engine.Run()
	adapccT, err := backend.Measure(envA, a, backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TCP AllReduce: adapcc=%v nccl=%v (%.2fx)", adapccT, ncclT, float64(ncclT)/float64(adapccT))
	if float64(adapccT) > 0.6*float64(ncclT) {
		t.Errorf("AdapCC on TCP (%v) should be well under NCCL (%v) via parallel streams", adapccT, ncclT)
	}
}

func TestBlinkRejectsMultiServerAlltoAll(t *testing.T) {
	env := testbedEnv(t)
	err := blink.New(env).Run(backend.Request{
		Primitive: strategy.AlltoAll, Bytes: 1 << 20,
		Inputs: backend.MakeInputs(env.AllRanks(), 1<<20),
	})
	if err == nil {
		t.Fatal("multi-server AlltoAll accepted by Blink")
	}
}

func TestBlinkSingleServerAlltoAll(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, c)
	elapsed, err := backend.Measure(env, blink.New(env), backend.Request{
		Primitive: strategy.AlltoAll, Bytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestNCCLAlltoAllCorrect(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, c)
	ranks := env.AllRanks()
	const bytes = 4 << 20
	inputs := backend.MakeInputs(ranks, bytes)
	var got collective.Result
	_, err = backend.Measure(env, nccl.New(env), backend.Request{
		Primitive: strategy.AlltoAll, Bytes: bytes, Inputs: inputs,
		OnDone: func(r collective.Result) { got = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranks {
		if got.Outputs[r] == nil {
			t.Fatalf("rank %d has no output", r)
		}
	}
}

func TestNCCLStrategyShape(t *testing.T) {
	env := testbedEnv(t)
	b := nccl.New(env)
	st, err := b.BuildStrategy(strategy.AllReduce, 64<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != 2 {
		t.Errorf("NCCL trees = %d, want 2 (dual complementary trees in one channel)", len(st.SubCollectives))
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatalf("invalid NCCL strategy: %v", err)
	}
	if got := st.SubCollectives[0].ChunkBytes; got != nccl.ChunkBytes {
		t.Errorf("chunk = %d, want %d", got, nccl.ChunkBytes)
	}
}

func TestMSCCLStrategyShape(t *testing.T) {
	env := testbedEnv(t)
	b := msccl.New(env)
	st, err := b.BuildStrategy(strategy.AllReduce, 64<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != msccl.Channels {
		t.Errorf("MSCCL channels = %d, want %d", len(st.SubCollectives), msccl.Channels)
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatalf("invalid MSCCL strategy: %v", err)
	}
	// Fixed chunk COUNT: chunk size scales with the buffer.
	sc := st.SubCollectives[0]
	if got, want := sc.Chunks(), msccl.FixedChunkCount; got != want {
		t.Errorf("chunk count = %d, want %d", got, want)
	}
}

package blink_test

import (
	"fmt"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/blink"
	"adapcc/internal/cluster"
	"adapcc/internal/ir"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// TestIRVerifyBlinkStages proves every barrier-separated Blink stage —
// local reduce trees, the inter-server tree, local broadcasts — through
// the chunk-level verifier at 4, 8 and 16 ranks. Each stage strategy is a
// standalone collective over its own rank subset, so each is lowered and
// checked on its own.
func TestIRVerifyBlinkStages(t *testing.T) {
	shapes := []struct{ servers, gpus int }{{1, 4}, {2, 4}, {4, 4}}
	for _, sh := range shapes {
		c, err := cluster.Homogeneous(topology.TransportRDMA, sh.servers, sh.gpus)
		if err != nil {
			t.Fatal(err)
		}
		env, err := backend.NewEnv(c, 33)
		if err != nil {
			t.Fatal(err)
		}
		b := blink.New(env)
		for _, pc := range []struct {
			prim strategy.Primitive
			root int
		}{
			{strategy.Reduce, 0},
			{strategy.AllReduce, -1},
		} {
			t.Run(fmt.Sprintf("%dx%d/%v", sh.servers, sh.gpus, pc.prim), func(t *testing.T) {
				stages, err := b.StagePlans(pc.prim, 1<<20, env.AllRanks(), pc.root)
				if err != nil {
					t.Fatal(err)
				}
				if len(stages) == 0 {
					t.Fatal("no stages")
				}
				verified := 0
				for si, stage := range stages {
					for sj, st := range stage {
						if st == nil || len(st.Participants()) < 2 {
							continue
						}
						prog, err := ir.FromStrategy(st)
						if err != nil {
							t.Fatalf("stage %d plan %d: %v", si, sj, err)
						}
						if err := ir.Verify(prog); err != nil {
							t.Errorf("stage %d plan %d rejected: %v", si, sj, err)
						}
						verified++
					}
				}
				if verified == 0 {
					t.Fatal("no stage plans verified")
				}
			})
		}
	}
}

// Package blink models the Blink baseline (Sec. VI-B): topology-aware
// spanning trees for intra-server communication, NCCL-style operations for
// inter-server aggregation, and an empirically fixed 8 MB chunk size. As
// the paper observes, Blink's two stages — intra-server and inter-server —
// are not pipelined with each other, so this backend executes them with a
// hard barrier in between: the full intra-server reduction finishes before
// any byte crosses a NIC, and the inter-server stage finishes before the
// local re-broadcast starts. Blink does not support multi-server AlltoAll.
package blink

import (
	"adapcc/internal/baseline/common"
	"fmt"
	"sort"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/payload"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
)

// ChunkBytes is Blink's empirical chunk size (8 MB).
const ChunkBytes = 8 << 20

// Backend is the Blink-like baseline.
type Backend struct {
	env *backend.Env
}

var _ backend.Backend = (*Backend)(nil)

// New returns a Blink baseline over the environment.
func New(env *backend.Env) *Backend { return &Backend{env: env} }

// Name implements backend.Backend.
func (b *Backend) Name() string { return "Blink" }

// Run implements backend.Backend. Blink's staged pipeline moves bytes
// directly on the fabric, so per-invocation options (relays, fast path,
// traffic class) are ignored.
func (b *Backend) Run(req backend.Request, _ ...backend.RunOption) error {
	if err := req.ValidateIn(b.env); err != nil {
		return err
	}
	ranks := req.Ranks
	if ranks == nil {
		ranks = b.env.AllRanks()
	}
	byServer, servers, err := common.GroupRanks(b.env.Graph, ranks, "blink")
	if err != nil {
		return err
	}
	switch req.Primitive {
	case strategy.AllReduce, strategy.Reduce:
		return b.runReduceLike(req, ranks, byServer, servers)
	case strategy.AlltoAll:
		if len(servers) > 1 {
			return fmt.Errorf("blink: AlltoAll unsupported across servers")
		}
		return b.runLocalAlltoAll(req, ranks)
	default:
		return fmt.Errorf("blink: unsupported primitive %v", req.Primitive)
	}
}

// runReduceLike executes the staged pipeline: local spanning-tree reduce →
// barrier → inter-server reduce(+broadcast) among leaders → barrier →
// local broadcast (AllReduce only).
func (b *Backend) runReduceLike(req backend.Request, ranks []int, byServer map[int][]int, servers []int) error {
	g := b.env.Graph
	eng := b.env.Engine
	start := eng.Now()

	root := req.Root
	if req.Primitive == strategy.AllReduce || root < 0 {
		root = ranks[0]
	}
	rootID, ok := g.GPUByRank(root)
	if !ok {
		return fmt.Errorf("blink: unknown root %d", root)
	}
	rootServer := g.Node(rootID).Server

	leaders := make(map[int]int, len(servers))
	var leaderRanks []int
	for _, s := range servers {
		l := byServer[s][0]
		if s == rootServer {
			l = root
		}
		leaders[s] = l
		leaderRanks = append(leaderRanks, l)
	}
	sort.Ints(leaderRanks)

	// inputPayload is a rank's original contribution, stage-chained as a
	// payload so dense and phantom modes flow through the same pipeline.
	inputPayload := func(r int) payload.Payload {
		if req.Mode == payload.Phantom {
			return payload.PhantomInput(r, int(req.Bytes/4))
		}
		return payload.WrapDense(req.Inputs[r])
	}

	finalPayloads := make(map[int]payload.Payload)
	var finalOutputs map[int][]float32
	if req.Mode == payload.Dense {
		finalOutputs = make(map[int][]float32)
	}
	record := func(r int, p payload.Payload) {
		finalPayloads[r] = p
		if finalOutputs != nil {
			finalOutputs[r] = p.Float32()
		}
	}
	finish := func() {
		if req.OnDone != nil {
			req.OnDone(collective.Result{Outputs: finalOutputs, Payloads: finalPayloads, Elapsed: eng.Now() - start})
		}
	}

	// Stage 2 inputs: per-leader local sums.
	stage2Inputs := make(map[int]payload.Payload, len(leaderRanks))

	stage3 := func() {
		if req.Primitive == strategy.Reduce {
			finish()
			return
		}
		// Local broadcast from each leader.
		var ops int
		for _, s := range servers {
			if len(byServer[s]) > 1 {
				ops++
			}
		}
		if ops == 0 {
			finish()
			return
		}
		barrier := sim.NewCountdown(ops, finish)
		for _, s := range servers {
			rs := byServer[s]
			if len(rs) <= 1 {
				continue
			}
			l := leaders[s]
			st, err := b.localTree(strategy.Broadcast, req.Bytes, rs, l)
			if err != nil {
				panic(err) // structure was validated in stage 1
			}
			inputs := map[int]payload.Payload{l: finalPayloads[l]}
			for _, r := range rs {
				if r != l {
					inputs[r] = finalPayloads[l] // unused by broadcast non-roots
				}
			}
			err = b.env.Exec.Run(collective.Op{
				Strategy: st,
				Mode:     req.Mode,
				Payloads: inputs,
				OnDone: func(res collective.Result) {
					for r, out := range res.Payloads {
						record(r, out)
					}
					barrier.Done()
				},
			})
			if err != nil {
				panic(err)
			}
		}
	}

	stage2 := func() {
		if len(leaderRanks) == 1 {
			record(leaderRanks[0], stage2Inputs[leaderRanks[0]])
			stage3()
			return
		}
		prim := strategy.Reduce
		if req.Primitive == strategy.AllReduce {
			prim = strategy.AllReduce
		}
		st, err := b.interTree(prim, req.Bytes, leaderRanks, root)
		if err != nil {
			panic(err)
		}
		err = b.env.Exec.Run(collective.Op{
			Strategy: st,
			Mode:     req.Mode,
			Payloads: stage2Inputs,
			OnDone: func(res collective.Result) {
				for r, out := range res.Payloads {
					record(r, out)
				}
				stage3()
			},
		})
		if err != nil {
			panic(err)
		}
	}

	// Stage 1: local spanning-tree reduce on every multi-GPU server.
	var ops int
	for _, s := range servers {
		if len(byServer[s]) > 1 {
			ops++
		} else {
			l := leaders[s]
			stage2Inputs[l] = inputPayload(l)
		}
	}
	if ops == 0 {
		stage2()
		return nil
	}
	barrier := sim.NewCountdown(ops, stage2)
	for _, s := range servers {
		rs := byServer[s]
		if len(rs) <= 1 {
			continue
		}
		l := leaders[s]
		st, err := b.localTree(strategy.Reduce, req.Bytes, rs, l)
		if err != nil {
			return err
		}
		inputs := make(map[int]payload.Payload, len(rs))
		for _, r := range rs {
			inputs[r] = inputPayload(r)
		}
		err = b.env.Exec.Run(collective.Op{
			Strategy: st,
			Mode:     req.Mode,
			Payloads: inputs,
			OnDone: func(res collective.Result) {
				stage2Inputs[l] = res.Payloads[l]
				barrier.Done()
			},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// localTree builds the intra-server spanning tree (a star onto the leader
// over NVLink, or via the host path without NVLink).
func (b *Backend) localTree(p strategy.Primitive, bytes int64, rs []int, leader int) (*strategy.Strategy, error) {
	g := b.env.Graph
	sc := strategy.SubCollective{ID: 0, Bytes: bytes, ChunkBytes: common.ChunkFor(bytes, ChunkBytes), Root: leader}
	id := 0
	rt := common.Router{G: g, Sys: "blink"}
	for _, r := range rs {
		if r == leader {
			continue
		}
		path, err := rt.Route(r, leader)
		if err != nil {
			return nil, err
		}
		sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: r, DstRank: leader, Path: path})
		id++
	}
	st := &strategy.Strategy{Primitive: p, TotalBytes: bytes, SubCollectives: []strategy.SubCollective{sc}}
	if p == strategy.Broadcast {
		st = common.ReverseRooted(st)
	}
	return st, nil
}

// interTree builds the NCCL-style binary tree among server leaders.
func (b *Backend) interTree(p strategy.Primitive, bytes int64, leaders []int, root int) (*strategy.Strategy, error) {
	g := b.env.Graph
	sc := strategy.SubCollective{ID: 0, Bytes: bytes, ChunkBytes: common.ChunkFor(bytes, ChunkBytes), Root: root}
	var others []int
	for _, l := range leaders {
		if l != root {
			others = append(others, l)
		}
	}
	id := 0
	for i, l := range others {
		up := root
		if i > 0 {
			up = others[(i-1)/2]
		}
		path, err := common.Router{G: g, Sys: "blink"}.Route(l, up)
		if err != nil {
			return nil, err
		}
		sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: l, DstRank: up, Path: path})
		id++
	}
	return &strategy.Strategy{Primitive: p, TotalBytes: bytes, SubCollectives: []strategy.SubCollective{sc}}, nil
}

func (b *Backend) runLocalAlltoAll(req backend.Request, ranks []int) error {
	g := b.env.Graph
	sc := strategy.SubCollective{ID: 0, Bytes: req.Bytes, ChunkBytes: common.ChunkFor(req.Bytes, ChunkBytes), Root: -1}
	id := 0
	for _, src := range ranks {
		for _, dst := range ranks {
			if src == dst {
				continue
			}
			path, err := common.Router{G: g, Sys: "blink"}.Route(src, dst)
			if err != nil {
				return err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
			id++
		}
	}
	st := &strategy.Strategy{Primitive: strategy.AlltoAll, TotalBytes: req.Bytes, SubCollectives: []strategy.SubCollective{sc}}
	return b.env.Exec.Run(collective.Op{Strategy: st, Mode: req.Mode, Inputs: req.Inputs, OnDone: req.OnDone})
}

// StagePlans returns the strategies of each barrier-separated stage for
// analytic evaluation by the training simulator: stage 1 holds one local
// reduce tree per multi-GPU server (they run in parallel), stage 2 the
// inter-server tree among leaders, stage 3 the local broadcasts (AllReduce
// only). The stage structure is identical to what Run executes.
func (b *Backend) StagePlans(p strategy.Primitive, bytes int64, ranks []int, root int) ([][]*strategy.Strategy, error) {
	if p != strategy.AllReduce && p != strategy.Reduce {
		return nil, fmt.Errorf("blink: StagePlans supports Reduce/AllReduce only")
	}
	g := b.env.Graph
	byServer, servers, err := common.GroupRanks(g, ranks, "blink")
	if err != nil {
		return nil, err
	}
	if p == strategy.AllReduce || root < 0 {
		root = ranks[0]
	}
	rootID, ok := g.GPUByRank(root)
	if !ok {
		return nil, fmt.Errorf("blink: unknown root %d", root)
	}
	rootServer := g.Node(rootID).Server

	leaders := make(map[int]int, len(servers))
	var leaderRanks []int
	for _, s := range servers {
		l := byServer[s][0]
		if s == rootServer {
			l = root
		}
		leaders[s] = l
		leaderRanks = append(leaderRanks, l)
	}
	sort.Ints(leaderRanks)

	var stage1, stage2, stage3 []*strategy.Strategy
	for _, s := range servers {
		rs := byServer[s]
		if len(rs) <= 1 {
			continue
		}
		st, err := b.localTree(strategy.Reduce, bytes, rs, leaders[s])
		if err != nil {
			return nil, err
		}
		stage1 = append(stage1, st)
		if p == strategy.AllReduce {
			bc, err := b.localTree(strategy.Broadcast, bytes, rs, leaders[s])
			if err != nil {
				return nil, err
			}
			stage3 = append(stage3, bc)
		}
	}
	if len(leaderRanks) > 1 {
		st, err := b.interTree(p, bytes, leaderRanks, root)
		if err != nil {
			return nil, err
		}
		stage2 = append(stage2, st)
	}
	var stages [][]*strategy.Strategy
	for _, st := range [][]*strategy.Strategy{stage1, stage2, stage3} {
		if len(st) > 0 {
			stages = append(stages, st)
		}
	}
	return stages, nil
}

package blink

import (
	"adapcc/internal/baseline/common"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func newEnv(t *testing.T, c *topology.Cluster) *backend.Env {
	t.Helper()
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func homoEnv(t *testing.T, servers, gpus int) *backend.Env {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
	if err != nil {
		t.Fatal(err)
	}
	return newEnv(t, c)
}

func TestChunkForCapsAtEightMB(t *testing.T) {
	if got := common.ChunkFor(64<<20, ChunkBytes); got != ChunkBytes {
		t.Errorf("chunkFor(64MB) = %d, want the fixed 8 MB", got)
	}
	if got := common.ChunkFor(1<<20, ChunkBytes); got != 1<<20 {
		t.Errorf("chunkFor(1MB) = %d, want the whole buffer", got)
	}
	if got := common.ChunkFor(2, ChunkBytes); got != 4 {
		t.Errorf("chunkFor(2) = %d, want the 4-byte floor", got)
	}
}

func TestLocalTreeIsStarOntoLeader(t *testing.T) {
	env := homoEnv(t, 1, 4)
	st, err := New(env).localTree(strategy.Reduce, 8<<20, []int{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc := st.SubCollectives[0]
	if sc.Root != 2 {
		t.Errorf("root = %d, want 2", sc.Root)
	}
	if len(sc.Flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(sc.Flows))
	}
	for _, f := range sc.Flows {
		if f.DstRank != 2 {
			t.Errorf("flow %d->%d is not a star spoke onto the leader", f.SrcRank, f.DstRank)
		}
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestLocalBroadcastTreeReversed(t *testing.T) {
	env := homoEnv(t, 1, 4)
	st, err := New(env).localTree(strategy.Broadcast, 8<<20, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range st.SubCollectives[0].Flows {
		if f.SrcRank != 0 {
			t.Errorf("broadcast flow %d->%d does not originate at the leader", f.SrcRank, f.DstRank)
		}
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestInterTreeBinaryShape(t *testing.T) {
	env := homoEnv(t, 4, 1)
	st, err := New(env).interTree(strategy.Reduce, 8<<20, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := st.SubCollectives[0]
	if len(sc.Flows) != 3 {
		t.Fatalf("flows = %d, want one per non-root leader", len(sc.Flows))
	}
	// Fan-in of a binary tree: no node receives more than 2 children.
	fanIn := map[int]int{}
	for _, f := range sc.Flows {
		fanIn[f.DstRank]++
	}
	for r, n := range fanIn {
		if n > 2 {
			t.Errorf("leader %d has fan-in %d, want <= 2", r, n)
		}
	}
}

func TestStagePlansStructure(t *testing.T) {
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, c)
	b := New(env)

	stages, err := b.StagePlans(strategy.AllReduce, 64<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("AllReduce stages = %d, want 3 (reduce / inter / broadcast)", len(stages))
	}
	servers := 6 // the paper's testbed
	if got := len(stages[0]); got != servers {
		t.Errorf("stage 1 has %d local trees, want one per server (%d)", got, servers)
	}
	if got := len(stages[1]); got != 1 {
		t.Errorf("stage 2 has %d plans, want the single leader tree", got)
	}
	if got := len(stages[2]); got != servers {
		t.Errorf("stage 3 has %d local broadcasts, want %d", got, servers)
	}
	for si, stage := range stages {
		for _, st := range stage {
			if err := st.Validate(env.Graph); err != nil {
				t.Errorf("stage %d plan invalid: %v", si+1, err)
			}
		}
	}

	// Reduce drops the re-broadcast stage.
	stages, err = b.StagePlans(strategy.Reduce, 64<<20, env.AllRanks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Errorf("Reduce stages = %d, want 2", len(stages))
	}

	if _, err := b.StagePlans(strategy.AlltoAll, 1<<20, env.AllRanks(), -1); err == nil {
		t.Error("StagePlans accepted AlltoAll")
	}
}

func TestSingleServerAllReduceSkipsInterStage(t *testing.T) {
	env := homoEnv(t, 1, 4)
	ranks := env.AllRanks()
	const bytes = 4 << 20
	inputs := backend.MakeInputs(ranks, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var got collective.Result
	if _, err := backend.Measure(env, New(env), backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Inputs: inputs,
		OnDone: func(r collective.Result) { got = r },
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range ranks {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("rank %d missing output", r)
		}
		for i := 0; i < len(want); i += 499 {
			if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
}

func TestReduceDeliversOnlyToRoot(t *testing.T) {
	env := homoEnv(t, 2, 2)
	ranks := env.AllRanks()
	const bytes = 4 << 20
	inputs := backend.MakeInputs(ranks, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var got collective.Result
	if _, err := backend.Measure(env, New(env), backend.Request{
		Primitive: strategy.Reduce, Bytes: bytes, Root: 2, Inputs: inputs,
		OnDone: func(r collective.Result) { got = r },
	}); err != nil {
		t.Fatal(err)
	}
	out := got.Outputs[2]
	if out == nil {
		t.Fatal("root has no output")
	}
	for i := 0; i < len(want); i += 499 {
		if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
			t.Fatalf("root elem %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestStagesDoNotOverlap(t *testing.T) {
	// The whole point of the Blink model: with a hard barrier, a
	// two-server AllReduce must cost at least the sum of a local reduce
	// and the inter-server exchange — i.e. strictly more than the
	// inter-server exchange alone on the same byte count.
	env1 := homoEnv(t, 2, 4)
	full, err := backend.Measure(env1, New(env1), backend.Request{
		Primitive: strategy.AllReduce, Bytes: 32 << 20, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	env2 := homoEnv(t, 2, 1) // leaders only: no local stages at all
	interOnly, err := backend.Measure(env2, New(env2), backend.Request{
		Primitive: strategy.AllReduce, Bytes: 32 << 20, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full <= interOnly {
		t.Errorf("staged AllReduce (%v) not slower than the bare inter-server stage (%v)", full, interOnly)
	}
}

func TestErrorPaths(t *testing.T) {
	env := homoEnv(t, 2, 2)
	b := New(env)
	if err := b.Run(backend.Request{Primitive: strategy.Broadcast, Bytes: 1 << 20}); err == nil {
		t.Error("broadcast accepted (Blink models Reduce/AllReduce/local AlltoAll only)")
	}
	if err := b.Run(backend.Request{Primitive: strategy.Reduce, Bytes: 1 << 20, Root: 99,
		Ranks: []int{0, 99}}); err == nil {
		t.Error("unknown rank accepted")
	}
	if got := b.Name(); got != "Blink" {
		t.Errorf("Name() = %q", got)
	}
}

// Package msccl models the MSCCL baseline (Sec. VI-B): the paper runs the
// pareto-optimal SCCL algorithm family through MSCCL's runtime. Those
// algorithms search latency-bandwidth tradeoffs for DGX-like topologies,
// so they use good hierarchical graphs and two channels — but the sketches
// assume a fixed architecture: the chunk count is fixed regardless of
// tensor or link properties, no link is ever profiled, and heterogeneous
// NICs/GPUs are treated as identical.
package msccl

import (
	"fmt"
	"sort"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

const (
	// Channels is the number of parallel channels the recommended
	// algorithms instantiate.
	Channels = 2
	// FixedChunkCount: each channel's buffer is always split into this
	// many chunks, whatever its size (the paper: "the chunk size also
	// remains fixed" in the provided sketches).
	FixedChunkCount = 8
)

// Backend is the MSCCL-like baseline.
type Backend struct {
	env *backend.Env
}

var _ backend.Backend = (*Backend)(nil)

// New returns an MSCCL baseline over the environment.
func New(env *backend.Env) *Backend { return &Backend{env: env} }

// Name implements backend.Backend.
func (b *Backend) Name() string { return "MSCCL" }

// Run implements backend.Backend.
func (b *Backend) Run(req backend.Request) error {
	ranks := req.Ranks
	if ranks == nil {
		ranks = b.env.AllRanks()
	}
	st, err := b.BuildStrategy(req.Primitive, req.Bytes, ranks, req.Root)
	if err != nil {
		return err
	}
	return b.env.Exec.Run(collective.Op{
		Strategy: st,
		Inputs:   req.Inputs,
		OnDone:   req.OnDone,
	})
}

// BuildStrategy constructs the MSCCL-style plan: per channel, a DGX-like
// hierarchical graph — NVLink star onto a per-channel leader, then direct
// leader-to-root transfers (the sketches' inter-node stage, written for a
// homogeneous topology and blind to actual NIC speeds).
func (b *Backend) BuildStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error) {
	g := b.env.Graph
	byServer, servers, err := groupRanks(g, ranks)
	if err != nil {
		return nil, err
	}

	st := &strategy.Strategy{Primitive: p, TotalBytes: bytes}
	parts := splitBytes(bytes, Channels)
	for ch := 0; ch < Channels; ch++ {
		chunk := parts[ch] / FixedChunkCount / 4 * 4
		if chunk < 4 {
			chunk = 4
		}
		var sc *strategy.SubCollective
		switch p {
		case strategy.Reduce, strategy.AllReduce, strategy.Broadcast:
			chRoot := root
			if p == strategy.AllReduce || chRoot < 0 {
				// Channels alternate root servers, as the DGX
				// sketches do.
				chRoot = byServer[servers[ch%len(servers)]][0]
			}
			sc, err = b.rootedSub(p, byServer, servers, chRoot, ch)
		case strategy.AlltoAll:
			sc, err = b.alltoallSub(ranks, ch)
		default:
			return nil, fmt.Errorf("msccl: unsupported primitive %v", p)
		}
		if err != nil {
			return nil, err
		}
		sc.ID = ch
		sc.Bytes = parts[ch]
		sc.ChunkBytes = chunk
		st.SubCollectives = append(st.SubCollectives, *sc)
	}
	if p == strategy.Broadcast {
		st = reverseRooted(st)
	}
	return st, nil
}

func (b *Backend) rootedSub(p strategy.Primitive, byServer map[int][]int, servers []int, root, ch int) (*strategy.SubCollective, error) {
	g := b.env.Graph
	rootID, ok := g.GPUByRank(root)
	if !ok {
		return nil, fmt.Errorf("msccl: unknown root %d", root)
	}
	rootServer := g.Node(rootID).Server
	pb := pathResolver{g: g}

	sc := &strategy.SubCollective{Root: root}
	id := 0
	add := func(src, dst int) error {
		path, err := pb.route(src, dst)
		if err != nil {
			return err
		}
		sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
		id++
		return nil
	}

	leader := make(map[int]int, len(servers))
	for _, s := range servers {
		rs := byServer[s]
		l := rs[ch%len(rs)] // channels use different leaders
		if s == rootServer {
			l = root
		}
		leader[s] = l
		for _, r := range rs {
			if r == l || r == root {
				continue
			}
			if err := add(r, l); err != nil {
				return nil, err
			}
		}
	}
	// Inter-node stage: direct transfers at small scale, a binary tree
	// over leaders beyond that (the pareto-optimal algorithms switch to
	// trees as hop counts grow) — but always ordered by server index,
	// blind to actual NIC speeds.
	var others []int
	for _, s := range servers {
		if s != rootServer {
			others = append(others, s)
		}
	}
	for i, s := range others {
		up := root
		if len(others) > 2 && i > 0 {
			up = leader[others[(i-1)/2]]
		}
		if err := add(leader[s], up); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

func (b *Backend) alltoallSub(ranks []int, ch int) (*strategy.SubCollective, error) {
	pb := pathResolver{g: b.env.Graph}
	sc := &strategy.SubCollective{Root: -1}
	id := 0
	for _, src := range ranks {
		for _, dst := range ranks {
			if src == dst {
				continue
			}
			path, err := pb.route(src, dst)
			if err != nil {
				return nil, err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
			id++
		}
	}
	return sc, nil
}

func splitBytes(total int64, n int) []int64 {
	parts := make([]int64, n)
	base := total / int64(n) / 4 * 4
	var used int64
	for i := range parts {
		parts[i] = base
		used += base
	}
	parts[n-1] += total - used
	return parts
}

func groupRanks(g *topology.Graph, ranks []int) (map[int][]int, []int, error) {
	byServer := make(map[int][]int)
	for _, r := range ranks {
		id, ok := g.GPUByRank(r)
		if !ok {
			return nil, nil, fmt.Errorf("msccl: unknown rank %d", r)
		}
		byServer[g.Node(id).Server] = append(byServer[g.Node(id).Server], r)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer {
		sort.Ints(byServer[s])
		servers = append(servers, s)
	}
	sort.Ints(servers)
	return byServer, servers, nil
}

type pathResolver struct {
	g *topology.Graph
}

func (pr pathResolver) route(fromRank, toRank int) ([]topology.NodeID, error) {
	g := pr.g
	from, ok := g.GPUByRank(fromRank)
	if !ok {
		return nil, fmt.Errorf("msccl: unknown rank %d", fromRank)
	}
	to, ok := g.GPUByRank(toRank)
	if !ok {
		return nil, fmt.Errorf("msccl: unknown rank %d", toRank)
	}
	if g.SameServer(from, to) {
		if _, direct := g.EdgeBetween(from, to); direct {
			return []topology.NodeID{from, to}, nil
		}
		nic, ok := g.NICOfServer(g.Node(from).Server, 0)
		if !ok {
			return nil, fmt.Errorf("msccl: server %d has no NIC", g.Node(from).Server)
		}
		return []topology.NodeID{from, nic, to}, nil
	}
	fromNIC, ok := g.NICOfServer(g.Node(from).Server, 0)
	if !ok {
		return nil, fmt.Errorf("msccl: server %d has no NIC", g.Node(from).Server)
	}
	toNIC, ok := g.NICOfServer(g.Node(to).Server, 0)
	if !ok {
		return nil, fmt.Errorf("msccl: server %d has no NIC", g.Node(to).Server)
	}
	sw, ok := g.Switch()
	if !ok {
		return nil, fmt.Errorf("msccl: no core switch in a multi-server graph")
	}
	return []topology.NodeID{from, fromNIC, sw, toNIC, to}, nil
}

func reverseRooted(st *strategy.Strategy) *strategy.Strategy {
	out := &strategy.Strategy{Primitive: st.Primitive, TotalBytes: st.TotalBytes}
	for _, sc := range st.SubCollectives {
		rev := strategy.SubCollective{ID: sc.ID, Bytes: sc.Bytes, ChunkBytes: sc.ChunkBytes, Root: sc.Root}
		for i := len(sc.Flows) - 1; i >= 0; i-- {
			f := sc.Flows[i]
			path := make([]topology.NodeID, len(f.Path))
			for j, n := range f.Path {
				path[len(f.Path)-1-j] = n
			}
			rev.Flows = append(rev.Flows, strategy.Flow{
				ID:      len(rev.Flows),
				SrcRank: f.DstRank,
				DstRank: f.SrcRank,
				Path:    path,
			})
		}
		out.SubCollectives = append(out.SubCollectives, rev)
	}
	return out
}

// Package msccl models the MSCCL baseline (Sec. VI-B): the paper runs the
// pareto-optimal SCCL algorithm family through MSCCL's runtime. Those
// algorithms search latency-bandwidth tradeoffs for DGX-like topologies,
// so they use good hierarchical graphs and two channels — but the sketches
// assume a fixed architecture: the chunk count is fixed regardless of
// tensor or link properties, no link is ever profiled, and heterogeneous
// NICs/GPUs are treated as identical.
package msccl

import (
	"adapcc/internal/baseline/common"
	"fmt"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
)

const (
	// Channels is the number of parallel channels the recommended
	// algorithms instantiate.
	Channels = 2
	// FixedChunkCount: each channel's buffer is always split into this
	// many chunks, whatever its size (the paper: "the chunk size also
	// remains fixed" in the provided sketches).
	FixedChunkCount = 8
)

// Backend is the MSCCL-like baseline.
type Backend struct {
	env *backend.Env
}

var _ backend.Backend = (*Backend)(nil)

// New returns an MSCCL baseline over the environment.
func New(env *backend.Env) *Backend { return &Backend{env: env} }

// Name implements backend.Backend.
func (b *Backend) Name() string { return "MSCCL" }

// Run implements backend.Backend. Relay and fast-path options do not
// apply to MSCCL's fixed sketches and are ignored; a traffic class set
// via backend.WithGroup is honoured.
func (b *Backend) Run(req backend.Request, opts ...backend.RunOption) error {
	if err := req.ValidateIn(b.env); err != nil {
		return err
	}
	cfg := backend.BuildRunConfig(opts)
	ranks := req.Ranks
	if ranks == nil {
		ranks = b.env.AllRanks()
	}
	st, err := b.BuildStrategy(req.Primitive, req.Bytes, ranks, req.Root)
	if err != nil {
		return err
	}
	return b.env.Exec.Run(collective.Op{
		Strategy: st,
		Mode:     req.Mode,
		Inputs:   req.Inputs,
		Class:    cfg.Class,
		OnDone:   req.OnDone,
	})
}

// BuildStrategy constructs the MSCCL-style plan: per channel, a DGX-like
// hierarchical graph — NVLink star onto a per-channel leader, then direct
// leader-to-root transfers (the sketches' inter-node stage, written for a
// homogeneous topology and blind to actual NIC speeds).
func (b *Backend) BuildStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error) {
	g := b.env.Graph
	byServer, servers, err := common.GroupRanks(g, ranks, "msccl")
	if err != nil {
		return nil, err
	}

	st := &strategy.Strategy{Primitive: p, TotalBytes: bytes}
	parts := splitBytes(bytes, Channels)
	for ch := 0; ch < Channels; ch++ {
		chunk := parts[ch] / FixedChunkCount / 4 * 4
		if chunk < 4 {
			chunk = 4
		}
		var sc *strategy.SubCollective
		switch p {
		case strategy.Reduce, strategy.AllReduce, strategy.Broadcast:
			chRoot := root
			if p == strategy.AllReduce || chRoot < 0 {
				// Channels alternate root servers, as the DGX
				// sketches do.
				chRoot = byServer[servers[ch%len(servers)]][0]
			}
			sc, err = b.rootedSub(p, byServer, servers, chRoot, ch)
		case strategy.AlltoAll:
			sc, err = b.alltoallSub(ranks, ch)
		default:
			return nil, fmt.Errorf("msccl: unsupported primitive %v", p)
		}
		if err != nil {
			return nil, err
		}
		sc.ID = ch
		sc.Bytes = parts[ch]
		sc.ChunkBytes = chunk
		st.SubCollectives = append(st.SubCollectives, *sc)
	}
	if p == strategy.Broadcast {
		st = common.ReverseRooted(st)
	}
	return st, nil
}

func (b *Backend) rootedSub(p strategy.Primitive, byServer map[int][]int, servers []int, root, ch int) (*strategy.SubCollective, error) {
	g := b.env.Graph
	rootID, ok := g.GPUByRank(root)
	if !ok {
		return nil, fmt.Errorf("msccl: unknown root %d", root)
	}
	rootServer := g.Node(rootID).Server
	pb := common.Router{G: g, Sys: "msccl"}

	sc := &strategy.SubCollective{Root: root}
	id := 0
	add := func(src, dst int) error {
		path, err := pb.Route(src, dst)
		if err != nil {
			return err
		}
		sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
		id++
		return nil
	}

	leader := make(map[int]int, len(servers))
	for _, s := range servers {
		rs := byServer[s]
		l := rs[ch%len(rs)] // channels use different leaders
		if s == rootServer {
			l = root
		}
		leader[s] = l
		for _, r := range rs {
			if r == l || r == root {
				continue
			}
			if err := add(r, l); err != nil {
				return nil, err
			}
		}
	}
	// Inter-node stage: direct transfers at small scale, a binary tree
	// over leaders beyond that (the pareto-optimal algorithms switch to
	// trees as hop counts grow) — but always ordered by server index,
	// blind to actual NIC speeds.
	var others []int
	for _, s := range servers {
		if s != rootServer {
			others = append(others, s)
		}
	}
	for i, s := range others {
		up := root
		if len(others) > 2 && i > 0 {
			up = leader[others[(i-1)/2]]
		}
		if err := add(leader[s], up); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

func (b *Backend) alltoallSub(ranks []int, ch int) (*strategy.SubCollective, error) {
	pb := common.Router{G: b.env.Graph, Sys: "msccl"}
	sc := &strategy.SubCollective{Root: -1}
	id := 0
	for _, src := range ranks {
		for _, dst := range ranks {
			if src == dst {
				continue
			}
			path, err := pb.Route(src, dst)
			if err != nil {
				return nil, err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
			id++
		}
	}
	return sc, nil
}

func splitBytes(total int64, n int) []int64 {
	parts := make([]int64, n)
	base := total / int64(n) / 4 * 4
	var used int64
	for i := range parts {
		parts[i] = base
		used += base
	}
	parts[n-1] += total - used
	return parts
}

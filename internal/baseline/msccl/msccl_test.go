package msccl

import (
	"testing"
	"testing/quick"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func newEnv(t *testing.T, servers, gpus int) *backend.Env {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestChannelsAlternateRootServers(t *testing.T) {
	env := newEnv(t, 2, 4)
	st, err := New(env).BuildStrategy(strategy.AllReduce, 32<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != Channels {
		t.Fatalf("channels = %d, want %d", len(st.SubCollectives), Channels)
	}
	g := env.Graph
	serverOf := func(rank int) int {
		id, _ := g.GPUByRank(rank)
		return g.Node(id).Server
	}
	s0 := serverOf(st.SubCollectives[0].Root)
	s1 := serverOf(st.SubCollectives[1].Root)
	if s0 == s1 {
		t.Errorf("both channels root on server %d; the DGX sketches alternate", s0)
	}
}

func TestFixedChunkCountAcrossSizes(t *testing.T) {
	env := newEnv(t, 2, 2)
	for _, bytes := range []int64{1 << 20, 16 << 20, 256 << 20} {
		st, err := New(env).BuildStrategy(strategy.AllReduce, bytes, env.AllRanks(), -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range st.SubCollectives {
			if got := sc.Chunks(); got != FixedChunkCount {
				t.Errorf("bytes=%d channel %d: %d chunks, want %d (MSCCL never re-chunks)",
					bytes, sc.ID, got, FixedChunkCount)
			}
		}
	}
}

func TestChannelsUseDifferentIntraLeaders(t *testing.T) {
	env := newEnv(t, 2, 4)
	// Root pinned to rank 0 so both channels share a root but may differ in
	// the non-root server's leader.
	st, err := New(env).BuildStrategy(strategy.Reduce, 32<<20, env.AllRanks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	leaderOfServer1 := func(sc strategy.SubCollective) int {
		// Server 1 ranks are 4..7; its leader is the one whose flow
		// crosses servers.
		g := env.Graph
		for _, f := range sc.Flows {
			src, _ := g.GPUByRank(f.SrcRank)
			dst, _ := g.GPUByRank(f.DstRank)
			if g.Node(src).Server == 1 && g.Node(dst).Server != 1 {
				return f.SrcRank
			}
		}
		t.Fatalf("channel %d: server 1 never crosses to the root", sc.ID)
		return -1
	}
	l0 := leaderOfServer1(st.SubCollectives[0])
	l1 := leaderOfServer1(st.SubCollectives[1])
	if l0 == l1 {
		t.Errorf("both channels drain server 1 through rank %d; channels should use different leaders", l0)
	}
}

func TestInterStageBecomesTreeAtScale(t *testing.T) {
	// With > 3 servers the inter-node stage must not be a flat star on the
	// root (that collapsed at scale; the pareto algorithms switch to trees).
	env := newEnv(t, 4, 1)
	st, err := New(env).BuildStrategy(strategy.AllReduce, 32<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	sc := st.SubCollectives[0]
	nonRootDst := 0
	for _, f := range sc.Flows {
		if f.DstRank != sc.Root {
			nonRootDst++
		}
	}
	if nonRootDst == 0 {
		t.Error("4-server inter stage is a flat star; want a tree with interior leaders")
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBytesProperty(t *testing.T) {
	f := func(total int64, n uint8) bool {
		if total < 0 {
			total = -total
		}
		total %= 1 << 30
		k := int(n%7) + 1
		parts := splitBytes(total, k)
		var sum int64
		for i, p := range parts {
			sum += p
			if p < 0 {
				return false
			}
			// All but the remainder-carrying last part are 4-aligned.
			if i < len(parts)-1 && p%4 != 0 {
				return false
			}
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBroadcastValidatesAsOutTree(t *testing.T) {
	env := newEnv(t, 2, 2)
	st, err := New(env).BuildStrategy(strategy.Broadcast, 8<<20, env.AllRanks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatalf("broadcast strategy invalid: %v", err)
	}
	for _, sc := range st.SubCollectives {
		for _, f := range sc.Flows {
			if f.DstRank == sc.Root {
				t.Errorf("broadcast flow %d->%d terminates at the root", f.SrcRank, f.DstRank)
			}
		}
	}
}

func TestAlltoAllPairCount(t *testing.T) {
	env := newEnv(t, 2, 2)
	st, err := New(env).BuildStrategy(strategy.AlltoAll, 8<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	n := len(env.AllRanks())
	for _, sc := range st.SubCollectives {
		if got, want := len(sc.Flows), n*(n-1); got != want {
			t.Errorf("channel %d: %d flows, want %d pairwise", sc.ID, got, want)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	env := newEnv(t, 1, 2)
	b := New(env)
	if _, err := b.BuildStrategy(strategy.Primitive(99), 1<<20, env.AllRanks(), -1); err == nil {
		t.Error("unknown primitive accepted")
	}
	if _, err := b.BuildStrategy(strategy.Reduce, 1<<20, []int{0, 77}, 0); err == nil {
		t.Error("unknown rank accepted")
	}
	if _, err := b.BuildStrategy(strategy.Reduce, 1<<20, env.AllRanks(), 42); err == nil {
		t.Error("unknown root accepted")
	}
	if got := b.Name(); got != "MSCCL" {
		t.Errorf("Name() = %q", got)
	}
}

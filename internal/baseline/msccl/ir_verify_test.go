package msccl_test

import (
	"fmt"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/msccl"
	"adapcc/internal/cluster"
	"adapcc/internal/ir"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// TestIRVerifyMSCCLStrategies proves the MSCCL-style multi-channel plans
// through the chunk-level verifier at 4, 8 and 16 ranks.
func TestIRVerifyMSCCLStrategies(t *testing.T) {
	shapes := []struct{ servers, gpus int }{{1, 4}, {2, 4}, {4, 4}}
	prims := []struct {
		prim strategy.Primitive
		root int
	}{
		{strategy.Reduce, 0},
		{strategy.Broadcast, 0},
		{strategy.AllReduce, -1},
		{strategy.AlltoAll, -1},
	}
	for _, sh := range shapes {
		c, err := cluster.Homogeneous(topology.TransportRDMA, sh.servers, sh.gpus)
		if err != nil {
			t.Fatal(err)
		}
		env, err := backend.NewEnv(c, 33)
		if err != nil {
			t.Fatal(err)
		}
		b := msccl.New(env)
		for _, pc := range prims {
			t.Run(fmt.Sprintf("%dx%d/%v", sh.servers, sh.gpus, pc.prim), func(t *testing.T) {
				st, err := b.BuildStrategy(pc.prim, 1<<20, env.AllRanks(), pc.root)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := ir.FromStrategy(st)
				if err != nil {
					t.Fatal(err)
				}
				if err := ir.Verify(prog); err != nil {
					t.Errorf("verifier rejected the MSCCL %v plan: %v", pc.prim, err)
				}
			})
		}
	}
}

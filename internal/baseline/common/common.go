// Package common holds the topology helpers every baseline backend
// (NCCL, MSCCL, Blink) needs: bucketing participants by server, routing
// between ranks the way static transports do, reversing a rooted reduce
// tree into its broadcast mirror, and clamping chunk sizes. The three
// systems differ in the plans they build, not in these mechanics, so the
// helpers live here once, parameterised by the backend's error prefix.
package common

import (
	"fmt"
	"sort"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// GroupRanks buckets participant ranks by server, returning the bucket map
// (rank lists sorted) and the sorted server list. sys prefixes error
// messages ("nccl", "msccl", "blink").
func GroupRanks(g *topology.Graph, ranks []int, sys string) (map[int][]int, []int, error) {
	byServer := make(map[int][]int)
	for _, r := range ranks {
		id, ok := g.GPUByRank(r)
		if !ok {
			return nil, nil, fmt.Errorf("%s: unknown rank %d", sys, r)
		}
		s := g.Node(id).Server
		byServer[s] = append(byServer[s], r)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer {
		sort.Ints(byServer[s])
		servers = append(servers, s)
	}
	sort.Ints(servers)
	return byServer, servers, nil
}

// Router resolves rank-to-rank paths the way static transports do: NVLink
// if a direct edge exists, a host/PCIe bounce through the server's NIC
// otherwise, and NIC → core switch → NIC across servers.
type Router struct {
	G *topology.Graph
	// Sys prefixes error messages ("nccl", "msccl", "blink").
	Sys string
}

// Route returns the node path from one rank's GPU to another's.
func (rt Router) Route(fromRank, toRank int) ([]topology.NodeID, error) {
	g := rt.G
	from, ok := g.GPUByRank(fromRank)
	if !ok {
		return nil, fmt.Errorf("%s: unknown rank %d", rt.Sys, fromRank)
	}
	to, ok := g.GPUByRank(toRank)
	if !ok {
		return nil, fmt.Errorf("%s: unknown rank %d", rt.Sys, toRank)
	}
	if g.SameServer(from, to) {
		if _, direct := g.EdgeBetween(from, to); direct {
			return []topology.NodeID{from, to}, nil
		}
		nic, ok := g.NICOfServer(g.Node(from).Server, 0)
		if !ok {
			return nil, fmt.Errorf("%s: server %d has no NIC", rt.Sys, g.Node(from).Server)
		}
		return []topology.NodeID{from, nic, to}, nil
	}
	fromNIC, ok := g.NICOfServer(g.Node(from).Server, 0)
	if !ok {
		return nil, fmt.Errorf("%s: server %d has no NIC", rt.Sys, g.Node(from).Server)
	}
	toNIC, ok := g.NICOfServer(g.Node(to).Server, 0)
	if !ok {
		return nil, fmt.Errorf("%s: server %d has no NIC", rt.Sys, g.Node(to).Server)
	}
	sw, ok := g.Switch()
	if !ok {
		return nil, fmt.Errorf("%s: no core switch in a multi-server graph", rt.Sys)
	}
	return []topology.NodeID{from, fromNIC, sw, toNIC, to}, nil
}

// ReverseRooted turns a reduce in-tree strategy into the broadcast
// out-tree with the same shape: every flow swaps endpoints and walks its
// path backwards, in reverse flow order so dependency chains still
// resolve leaf-last.
func ReverseRooted(st *strategy.Strategy) *strategy.Strategy {
	out := &strategy.Strategy{Primitive: st.Primitive, TotalBytes: st.TotalBytes}
	for _, sc := range st.SubCollectives {
		rev := strategy.SubCollective{ID: sc.ID, Bytes: sc.Bytes, ChunkBytes: sc.ChunkBytes, Root: sc.Root}
		for i := len(sc.Flows) - 1; i >= 0; i-- {
			f := sc.Flows[i]
			path := make([]topology.NodeID, len(f.Path))
			for j, n := range f.Path {
				path[len(f.Path)-1-j] = n
			}
			rev.Flows = append(rev.Flows, strategy.Flow{
				ID:      len(rev.Flows),
				SrcRank: f.DstRank,
				DstRank: f.SrcRank,
				Path:    path,
			})
		}
		out.SubCollectives = append(out.SubCollectives, rev)
	}
	return out
}

// ChunkFor clamps a backend's fixed chunk size to the tensor: min(bytes,
// cap), floored at one element and rounded down to whole float32s. The
// cap is the system-specific policy (NCCL 512 KB, Blink 8 MB); MSCCL's
// count-based split stays in its own package.
func ChunkFor(bytes, cap int64) int64 {
	c := cap
	if c > bytes {
		c = bytes
	}
	if c < 4 {
		c = 4
	}
	return c / 4 * 4
}

package nccl

import (
	"adapcc/internal/baseline/common"
	"fmt"
	"sort"

	"adapcc/internal/strategy"
)

// RingChannels is how many ring channels the ring algorithm instantiates:
// the cyclic ring order is fixed by the topology, and each channel cuts the
// cycle at a different point so the chain roots (and therefore the busiest
// path prefixes) spread around the ring.
const RingChannels = 4

// RingThresholdBytes is the payload size above which AutoStrategy prefers
// the ring algorithm, mirroring NCCL's own tuning: trees win on latency
// (log-depth, few hops per chunk), rings win on bandwidth (every NIC
// carries an identical load, no interior tree nodes doing double duty). On
// this fabric the ring's bandwidth advantage only materialises from three
// servers up — at two servers the dual trees already balance both NICs and
// the ring's longer chain just adds pipeline depth — so AutoStrategy also
// requires a multi-server ring long enough to pay off.
const RingThresholdBytes = 16 << 20

// RingStrategy builds NCCL's ring algorithm for Reduce/AllReduce: the ranks
// are ordered server-by-server (so intra-server hops ride NVLink and each
// server boundary is crossed exactly once per direction), and each channel
// is that cycle cut at a different point, forming a chain onto the
// channel's root. Like the tree algorithm it assumes homogeneous links: the
// ring order is index order, never profiled, so one slow NIC stalls the
// whole pipeline.
//
// NCCL's real rings reduce-scatter segment-by-segment; a store-and-forward
// chain carries whole chunks instead, which preserves the ring's defining
// property (uniform per-NIC load) while fitting the flow IR.
func (b *Backend) RingStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error) {
	if p != strategy.Reduce && p != strategy.AllReduce {
		return nil, fmt.Errorf("nccl: ring algorithm supports Reduce/AllReduce, not %v", p)
	}
	if len(ranks) < 2 {
		return nil, fmt.Errorf("nccl: ring needs at least 2 ranks")
	}
	order, err := b.ringOrder(ranks)
	if err != nil {
		return nil, err
	}
	if p == strategy.Reduce && root >= 0 {
		// Rotate so the requested root sits at a cut point.
		for i, r := range order {
			if r == root {
				order = append(order[i+1:], order[:i+1]...)
				break
			}
		}
	}

	channels := RingChannels
	if len(ranks) < channels {
		channels = len(ranks)
	}
	if p == strategy.Reduce && root >= 0 {
		channels = 1 // a rooted reduce cannot rotate its destination
	}
	parts := make([]int64, channels)
	base := bytes / int64(channels) / 4 * 4
	var used int64
	for i := range parts {
		parts[i] = base
		used += base
	}
	parts[channels-1] += bytes - used

	pb := common.Router{G: b.env.Graph, Sys: "nccl"}
	st := &strategy.Strategy{Primitive: p, TotalBytes: bytes}
	n := len(order)
	for ch := 0; ch < channels; ch++ {
		cut := ch * n / channels
		sc := strategy.SubCollective{
			ID:         ch,
			Bytes:      parts[ch],
			ChunkBytes: common.ChunkFor(parts[ch], ChunkBytes),
			Root:       order[(cut+n-1)%n],
		}
		for i := 0; i < n-1; i++ {
			src := order[(cut+i)%n]
			dst := order[(cut+i+1)%n]
			path, err := pb.Route(src, dst)
			if err != nil {
				return nil, err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: i, SrcRank: src, DstRank: dst, Path: path})
		}
		st.SubCollectives = append(st.SubCollectives, sc)
	}
	return st, nil
}

// AutoStrategy mimics NCCL's algorithm selection: the tree algorithm below
// RingThresholdBytes (latency-bound regime), the ring above it
// (bandwidth-bound regime). Reduce with a pinned root and everything other
// than Reduce/AllReduce always use the tree/pairwise builders.
func (b *Backend) AutoStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error) {
	if (p == strategy.AllReduce || (p == strategy.Reduce && root < 0)) && bytes >= RingThresholdBytes {
		if _, servers, err := common.GroupRanks(b.env.Graph, ranks, "nccl"); err == nil && len(servers) >= 3 {
			return b.RingStrategy(p, bytes, ranks, root)
		}
	}
	return b.BuildStrategy(p, bytes, ranks, root)
}

// ringOrder lays the ranks on the topology-aware cycle: servers in index
// order, each server's GPUs in rank order, so the cycle uses NVLink inside
// a server and one NIC crossing per server boundary.
func (b *Backend) ringOrder(ranks []int) ([]int, error) {
	byServer, servers, err := common.GroupRanks(b.env.Graph, ranks, "nccl")
	if err != nil {
		return nil, err
	}
	order := make([]int, 0, len(ranks))
	for _, s := range servers {
		rs := append([]int(nil), byServer[s]...)
		sort.Ints(rs)
		order = append(order, rs...)
	}
	return order, nil
}

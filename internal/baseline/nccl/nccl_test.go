package nccl

import (
	"adapcc/internal/baseline/common"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func newEnv(t *testing.T, c *topology.Cluster) *backend.Env {
	t.Helper()
	env, err := backend.NewEnv(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func homoEnv(t *testing.T, servers, gpus int) *backend.Env {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
	if err != nil {
		t.Fatal(err)
	}
	return newEnv(t, c)
}

// crossServerEdges extracts the (srcLeader -> dstLeader) pairs of a
// sub-collective's inter-server flows.
func crossServerEdges(g *topology.Graph, sc strategy.SubCollective) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for _, f := range sc.Flows {
		src, _ := g.GPUByRank(f.SrcRank)
		dst, _ := g.GPUByRank(f.DstRank)
		if g.Node(src).Server != g.Node(dst).Server {
			out[[2]int{f.SrcRank, f.DstRank}] = true
		}
	}
	return out
}

func TestDualTreesAreComplementary(t *testing.T) {
	env := homoEnv(t, 4, 4)
	b := New(env)
	st, err := b.BuildStrategy(strategy.AllReduce, 64<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != 2 {
		t.Fatalf("sub-collectives = %d, want 2", len(st.SubCollectives))
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatal(err)
	}
	e0 := crossServerEdges(env.Graph, st.SubCollectives[0])
	e1 := crossServerEdges(env.Graph, st.SubCollectives[1])
	if len(e0) == 0 || len(e1) == 0 {
		t.Fatal("no inter-server flows in a 4-server tree")
	}
	same := true
	for e := range e0 {
		if !e1[e] {
			same = false
		}
	}
	if same {
		t.Error("the two trees route the same inter-server edges; they should be complementary")
	}
	// Both trees split the buffer (4-aligned halves that sum to total).
	total := st.SubCollectives[0].Bytes + st.SubCollectives[1].Bytes
	if total != 64<<20 {
		t.Errorf("tree bytes sum to %d, want %d", total, 64<<20)
	}
	for _, sc := range st.SubCollectives {
		if sc.Bytes%4 != 0 && sc.ID == 0 {
			t.Errorf("tree %d carries unaligned %d bytes", sc.ID, sc.Bytes)
		}
	}
}

func TestInteriorServersSwapBetweenTrees(t *testing.T) {
	env := homoEnv(t, 4, 1) // one GPU per server isolates the server tree
	b := New(env)
	st, err := b.BuildStrategy(strategy.AllReduce, 8<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	// A rank is interior in a tree if some flow terminates at it and it is
	// not the root (the root is interior by construction in both trees).
	interior := func(sc strategy.SubCollective) map[int]bool {
		in := make(map[int]bool)
		for _, f := range sc.Flows {
			if f.DstRank != sc.Root {
				in[f.DstRank] = true
			}
		}
		return in
	}
	i0 := interior(st.SubCollectives[0])
	i1 := interior(st.SubCollectives[1])
	for r := range i0 {
		if i1[r] {
			t.Errorf("rank %d is interior in both complementary trees", r)
		}
	}
	if len(i0) == 0 || len(i1) == 0 {
		t.Fatalf("degenerate trees: interior sets %v and %v", i0, i1)
	}
}

func TestIntraServerChainOntoLeader(t *testing.T) {
	env := homoEnv(t, 2, 4)
	b := New(env)
	st, err := b.BuildStrategy(strategy.Reduce, 8<<20, env.AllRanks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Server 1 holds ranks 4..7 with leader 4: the chain must be
	// 7 -> 6 -> 5 -> 4 in every tree.
	want := map[int]int{5: 4, 6: 5, 7: 6}
	for _, sc := range st.SubCollectives {
		got := make(map[int]int)
		for _, f := range sc.Flows {
			if f.SrcRank >= 4 && f.SrcRank <= 7 {
				got[f.SrcRank] = f.DstRank
			}
		}
		for src, dst := range want {
			if got[src] != dst {
				t.Errorf("tree %d: rank %d sends to %d, want %d", sc.ID, src, got[src], dst)
			}
		}
	}
}

func TestSingleServerBuildsOneTree(t *testing.T) {
	env := homoEnv(t, 1, 4)
	st, err := New(env).BuildStrategy(strategy.AllReduce, 8<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != 1 {
		t.Errorf("single server built %d trees, want 1 (no inter-server stage to mirror)", len(st.SubCollectives))
	}
}

func TestBroadcastIsReversedReduce(t *testing.T) {
	env := homoEnv(t, 2, 2)
	b := New(env)
	red, err := b.BuildStrategy(strategy.Reduce, 8<<20, env.AllRanks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.BuildStrategy(strategy.Broadcast, 8<<20, env.AllRanks(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Validate(env.Graph); err != nil {
		t.Fatalf("broadcast strategy invalid: %v", err)
	}
	for i := range red.SubCollectives {
		rf := red.SubCollectives[i].Flows
		bf := bc.SubCollectives[i].Flows
		if len(rf) != len(bf) {
			t.Fatalf("tree %d: %d reduce flows vs %d broadcast flows", i, len(rf), len(bf))
		}
		// Every broadcast flow must be the reverse of some reduce flow.
		rev := make(map[[2]int]bool, len(rf))
		for _, f := range rf {
			rev[[2]int{f.DstRank, f.SrcRank}] = true
		}
		for _, f := range bf {
			if !rev[[2]int{f.SrcRank, f.DstRank}] {
				t.Errorf("tree %d: broadcast flow %d->%d has no reduce mirror", i, f.SrcRank, f.DstRank)
			}
		}
	}
}

func TestChunkFor(t *testing.T) {
	cases := []struct{ bytes, want int64 }{
		{64 << 20, ChunkBytes}, // large buffers use the fixed chunk
		{100 << 10, 100 << 10}, // small buffers collapse to one chunk
		{3, 4},                 // never below one element
		{1002, 1000},           // 4-aligned
	}
	for _, c := range cases {
		if got := common.ChunkFor(c.bytes, ChunkBytes); got != c.want {
			t.Errorf("chunkFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestRouteShapes(t *testing.T) {
	env := homoEnv(t, 2, 2)
	pr := common.Router{G: env.Graph, Sys: "nccl"}
	intra, err := pr.Route(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(intra) != 2 {
		t.Errorf("NVLink route has %d hops, want direct (2 nodes)", len(intra))
	}
	inter, err := pr.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inter) != 5 {
		t.Errorf("cross-server route has %d nodes, want 5 (gpu-nic-switch-nic-gpu)", len(inter))
	}
	if _, err := pr.Route(0, 99); err == nil {
		t.Error("unknown rank routed without error")
	}
}

func TestUnsupportedPrimitiveRejected(t *testing.T) {
	env := homoEnv(t, 1, 2)
	if _, err := New(env).BuildStrategy(strategy.Primitive(99), 1<<20, env.AllRanks(), -1); err == nil {
		t.Error("unknown primitive accepted")
	}
}

func TestUnknownRootRejected(t *testing.T) {
	env := homoEnv(t, 1, 2)
	if _, err := New(env).BuildStrategy(strategy.Reduce, 1<<20, env.AllRanks(), 42); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestName(t *testing.T) {
	if got := New(homoEnv(t, 1, 2)).Name(); got != "NCCL" {
		t.Errorf("Name() = %q", got)
	}
}

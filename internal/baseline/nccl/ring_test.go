package nccl

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
)

func runAllReduce(t *testing.T, env *backend.Env, st *strategy.Strategy, bytes int64) (time.Duration, collective.Result) {
	t.Helper()
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, bytes)
	start := env.Engine.Now()
	var got collective.Result
	err := env.Exec.Run(collective.Op{
		Strategy:     st,
		Inputs:       inputs,
		SingleStream: true, // both algorithms run in NCCL's one channel model
		OnDone:       func(r collective.Result) { got = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if got.Outputs == nil {
		t.Fatal("collective never completed")
	}
	return env.Engine.Now() - start, got
}

func TestRingAllReduceCorrect(t *testing.T) {
	env := homoEnv(t, 2, 4)
	const bytes = 16 << 20
	st, err := New(env).RingStrategy(strategy.AllReduce, bytes, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var got collective.Result
	if err := env.Exec.Run(collective.Op{
		Strategy: st, Inputs: inputs, SingleStream: true,
		OnDone: func(r collective.Result) { got = r },
	}); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	for _, r := range ranks {
		out := got.Outputs[r]
		if out == nil {
			t.Fatalf("rank %d missing output", r)
		}
		for i := 0; i < len(want); i += 1 + len(want)/97 {
			if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, out[i], want[i])
			}
		}
	}
}

func TestRingChannelsAreHamiltonianChains(t *testing.T) {
	env := homoEnv(t, 4, 4)
	st, err := New(env).RingStrategy(strategy.AllReduce, 64<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != RingChannels {
		t.Fatalf("channels = %d, want %d", len(st.SubCollectives), RingChannels)
	}
	if err := st.Validate(env.Graph); err != nil {
		t.Fatal(err)
	}
	n := len(env.AllRanks())
	roots := make(map[int]bool)
	for _, sc := range st.SubCollectives {
		if len(sc.Flows) != n-1 {
			t.Fatalf("channel %d: %d flows, want %d (a chain over every rank)", sc.ID, len(sc.Flows), n-1)
		}
		out := make(map[int]int)
		in := make(map[int]int)
		for _, f := range sc.Flows {
			out[f.SrcRank]++
			in[f.DstRank]++
		}
		for r := 0; r < n; r++ {
			if out[r] > 1 || in[r] > 1 {
				t.Errorf("channel %d: rank %d has out=%d in=%d, want a simple chain", sc.ID, r, out[r], in[r])
			}
			if r != sc.Root && out[r] != 1 {
				t.Errorf("channel %d: non-root rank %d has %d outgoing flows", sc.ID, r, out[r])
			}
		}
		if out[sc.Root] != 0 {
			t.Errorf("channel %d: root %d sends upstream", sc.ID, sc.Root)
		}
		roots[sc.Root] = true
	}
	if len(roots) != RingChannels {
		t.Errorf("channel roots %v not distinct; cuts should spread around the ring", roots)
	}
}

func TestRingCrossesEachServerBoundaryOnce(t *testing.T) {
	env := homoEnv(t, 4, 4)
	st, err := New(env).RingStrategy(strategy.AllReduce, 64<<20, env.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	g := env.Graph
	for _, sc := range st.SubCollectives {
		cross := 0
		for _, f := range sc.Flows {
			src, _ := g.GPUByRank(f.SrcRank)
			dst, _ := g.GPUByRank(f.DstRank)
			if g.Node(src).Server != g.Node(dst).Server {
				cross++
			}
		}
		// A cycle over 4 servers crosses 4 boundaries; the chain is the
		// cycle minus one edge, so 3 or 4 crossings depending on the cut.
		if cross < 3 || cross > 4 {
			t.Errorf("channel %d crosses %d server boundaries, want 3-4", sc.ID, cross)
		}
	}
}

func TestRingBeatsTreeAtScale(t *testing.T) {
	// Four servers, bandwidth-bound: interior tree servers carry double
	// NIC load while every ring NIC carries exactly the payload once per
	// direction.
	const bytes = 64 << 20
	envT := homoEnv(t, 4, 4)
	tree, err := New(envT).BuildStrategy(strategy.AllReduce, bytes, envT.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	treeT, _ := runAllReduce(t, envT, tree, bytes)

	envR := homoEnv(t, 4, 4)
	ring, err := New(envR).RingStrategy(strategy.AllReduce, bytes, envR.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	ringT, _ := runAllReduce(t, envR, ring, bytes)

	t.Logf("4 servers x 4 GPUs, %dMB: tree=%v ring=%v", bytes>>20, treeT, ringT)
	if ringT >= treeT {
		t.Errorf("ring (%v) not faster than tree (%v) in the bandwidth-bound regime", ringT, treeT)
	}
}

func TestTreeBeatsRingAtTwoServers(t *testing.T) {
	// Two servers: the dual trees already balance both NICs, and the ring
	// pays for its 8-deep chain.
	const bytes = 64 << 20
	envT := homoEnv(t, 2, 4)
	tree, err := New(envT).BuildStrategy(strategy.AllReduce, bytes, envT.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	treeT, _ := runAllReduce(t, envT, tree, bytes)

	envR := homoEnv(t, 2, 4)
	ring, err := New(envR).RingStrategy(strategy.AllReduce, bytes, envR.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	ringT, _ := runAllReduce(t, envR, ring, bytes)

	t.Logf("2 servers x 4 GPUs, %dMB: tree=%v ring=%v", bytes>>20, treeT, ringT)
	if treeT >= ringT {
		t.Errorf("tree (%v) not faster than ring (%v) at two servers", treeT, ringT)
	}
}

func TestAutoStrategySelection(t *testing.T) {
	isRing := func(st *strategy.Strategy, n int) bool {
		// A ring channel is a simple chain: no node has fan-in above 1.
		for _, sc := range st.SubCollectives {
			if len(sc.Flows) != n-1 {
				return false
			}
			in := make(map[int]int)
			for _, f := range sc.Flows {
				if in[f.DstRank]++; in[f.DstRank] > 1 {
					return false
				}
			}
		}
		return len(st.SubCollectives) >= 1
	}
	env4 := homoEnv(t, 4, 4)
	n4 := len(env4.AllRanks())
	big, err := New(env4).AutoStrategy(strategy.AllReduce, 64<<20, env4.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !isRing(big, n4) {
		t.Error("large multi-server AllReduce did not select the ring")
	}
	small, err := New(env4).AutoStrategy(strategy.AllReduce, 1<<20, env4.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if isRing(small, n4) {
		t.Error("small AllReduce selected the ring; trees win the latency-bound regime")
	}
	env2 := homoEnv(t, 2, 4)
	two, err := New(env2).AutoStrategy(strategy.AllReduce, 64<<20, env2.AllRanks(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if isRing(two, len(env2.AllRanks())) {
		t.Error("two-server AllReduce selected the ring; dual trees already balance both NICs")
	}
}

func TestRingRootedReduce(t *testing.T) {
	env := homoEnv(t, 2, 2)
	const bytes = 4 << 20
	st, err := New(env).RingStrategy(strategy.Reduce, bytes, env.AllRanks(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SubCollectives) != 1 {
		t.Fatalf("rooted ring reduce uses %d channels, want 1", len(st.SubCollectives))
	}
	if st.SubCollectives[0].Root != 2 {
		t.Fatalf("root = %d, want 2", st.SubCollectives[0].Root)
	}
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, bytes)
	want := make([]float32, bytes/4)
	for _, in := range inputs {
		for i := range in {
			want[i] += in[i]
		}
	}
	var got collective.Result
	if err := env.Exec.Run(collective.Op{
		Strategy: st, Inputs: inputs, SingleStream: true,
		OnDone: func(r collective.Result) { got = r },
	}); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	out := got.Outputs[2]
	if out == nil {
		t.Fatal("root has no output")
	}
	for i := 0; i < len(want); i += 499 {
		if d := out[i] - want[i]; d > 1e-2 || d < -1e-2 {
			t.Fatalf("root elem %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestRingRejectsUnsupported(t *testing.T) {
	env := homoEnv(t, 2, 2)
	b := New(env)
	if _, err := b.RingStrategy(strategy.AlltoAll, 1<<20, env.AllRanks(), -1); err == nil {
		t.Error("ring accepted AlltoAll")
	}
	if _, err := b.RingStrategy(strategy.AllReduce, 1<<20, []int{0}, -1); err == nil {
		t.Error("ring accepted a single rank")
	}
	if _, err := b.RingStrategy(strategy.AllReduce, 1<<20, []int{0, 77}, -1); err == nil {
		t.Error("ring accepted an unknown rank")
	}
}

// Package nccl models the NCCL v2.14 baseline the paper compares against
// (Sec. VI-B): communication graphs built from link *types* with empirical
// bandwidth labels rather than measured performance, a single intra-server
// channel reducing onto the GPU closest to the NIC, a binary tree across
// servers that assumes homogeneous nodes (so the slowest NIC bottlenecks
// the whole tree), one channel / one CUDA stream per collective (which
// caps TCP throughput at a single stream's rate), and fixed pipeline
// chunking. The graphs never adapt to profiled or time-varying link
// performance.
package nccl

import (
	"adapcc/internal/baseline/common"
	"fmt"
	"sort"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/strategy"
)

// ChunkBytes is NCCL's fixed pipeline chunk size.
const ChunkBytes = 512 << 10

// Backend is the NCCL-like baseline.
type Backend struct {
	env *backend.Env
}

var _ backend.Backend = (*Backend)(nil)

// New returns an NCCL baseline over the environment.
func New(env *backend.Env) *Backend { return &Backend{env: env} }

// Name implements backend.Backend.
func (b *Backend) Name() string { return "NCCL" }

// Run implements backend.Backend. Relay and fast-path options do not
// apply to NCCL's fixed graphs and are ignored; a traffic class set via
// backend.WithGroup is honoured.
func (b *Backend) Run(req backend.Request, opts ...backend.RunOption) error {
	if err := req.ValidateIn(b.env); err != nil {
		return err
	}
	cfg := backend.BuildRunConfig(opts)
	ranks := req.Ranks
	if ranks == nil {
		ranks = b.env.AllRanks()
	}
	st, err := b.BuildStrategy(req.Primitive, req.Bytes, ranks, req.Root)
	if err != nil {
		return err
	}
	return b.env.Exec.Run(collective.Op{
		Strategy:     st,
		Mode:         req.Mode,
		Inputs:       req.Inputs,
		SingleStream: true, // one channel / one stream
		Class:        cfg.Class,
		OnDone:       req.OnDone,
	})
}

// BuildStrategy constructs the NCCL-style communication graph. Exported so
// the accuracy experiment can run AdapCC's executor on "the graph dumped
// from NCCL" (Fig. 19b's AdapCC-nccl-graph arm).
func (b *Backend) BuildStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error) {
	switch p {
	case strategy.Reduce, strategy.AllReduce, strategy.Broadcast:
		return b.rootedStrategy(p, bytes, ranks, root)
	case strategy.AlltoAll:
		return b.alltoallStrategy(bytes, ranks)
	default:
		return nil, fmt.Errorf("nccl: unsupported primitive %v", p)
	}
}

// rootedStrategy: intra-server chain onto the server leader (lowest GPU
// index — the GPU NCCL picks as closest to the NIC), and NCCL's dual
// complementary binary trees across servers: each tree carries half the
// data, so interior tree nodes' NIC load balances out — but both trees
// run in the ONE channel, assume homogeneous nodes, and order servers by
// index, so the slowest NIC still gates every chunk that crosses it.
func (b *Backend) rootedStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error) {
	g := b.env.Graph
	if p == strategy.AllReduce || root < 0 {
		root = ranks[0]
	}
	byServer, servers, err := common.GroupRanks(g, ranks, "nccl")
	if err != nil {
		return nil, err
	}
	rootID, ok := g.GPUByRank(root)
	if !ok {
		return nil, fmt.Errorf("nccl: unknown root %d", root)
	}
	rootServer := g.Node(rootID).Server

	leader := make(map[int]int, len(servers))
	intraParent := make(map[int]int)
	for _, s := range servers {
		rs := byServer[s]
		l := rs[0]
		if s == rootServer {
			l = root
		}
		leader[s] = l
		// Intra-server chain onto the leader: sort, chain neighbours.
		chain := append([]int(nil), rs...)
		sort.Ints(chain)
		for i, r := range chain {
			if r == l {
				chain[0], chain[i] = chain[i], chain[0]
				break
			}
		}
		for i := 1; i < len(chain); i++ {
			intraParent[chain[i]] = chain[i-1]
		}
	}
	others := make([]int, 0, len(servers))
	for _, s := range servers {
		if s != rootServer {
			others = append(others, s)
		}
	}

	trees := 2
	if len(others) == 0 {
		trees = 1 // single server: no inter-server stage to mirror
	}
	parts := make([]int64, trees)
	base := bytes / int64(trees) / 4 * 4
	var used int64
	for i := range parts {
		parts[i] = base
		used += base
	}
	parts[trees-1] += bytes - used

	st := &strategy.Strategy{Primitive: p, TotalBytes: bytes}
	pb := common.Router{G: g, Sys: "nccl"}
	for tree := 0; tree < trees; tree++ {
		parent := make(map[int]int, len(intraParent)+len(others))
		for k, v := range intraParent {
			parent[k] = v
		}
		// Complementary trees: the second uses the reversed server
		// order, so each interior server of one tree is a leaf of the
		// other and per-NIC load halves.
		order := append([]int(nil), others...)
		if tree == 1 {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for i, s := range order {
			up := rootServer
			if i > 0 {
				up = order[(i-1)/2]
			}
			parent[leader[s]] = leader[up]
		}

		sc := strategy.SubCollective{ID: tree, Bytes: parts[tree], ChunkBytes: common.ChunkFor(parts[tree], ChunkBytes), Root: root}
		id := 0
		for _, r := range ranks {
			if r == root {
				continue
			}
			pRank, ok := parent[r]
			if !ok {
				return nil, fmt.Errorf("nccl: rank %d has no parent", r)
			}
			path, err := pb.Route(r, pRank)
			if err != nil {
				return nil, err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: r, DstRank: pRank, Path: path})
			id++
		}
		st.SubCollectives = append(st.SubCollectives, sc)
	}
	if p == strategy.Broadcast {
		st = common.ReverseRooted(st)
	}
	return st, nil
}

// alltoallStrategy: NCCL has no native AlltoAll; the paper implements it
// with pairwise ncclSend/ncclRecv — direct flows, one channel.
func (b *Backend) alltoallStrategy(bytes int64, ranks []int) (*strategy.Strategy, error) {
	pb := common.Router{G: b.env.Graph, Sys: "nccl"}
	sc := strategy.SubCollective{ID: 0, Bytes: bytes, ChunkBytes: common.ChunkFor(bytes, ChunkBytes), Root: -1}
	id := 0
	for _, src := range ranks {
		for _, dst := range ranks {
			if src == dst {
				continue
			}
			path, err := pb.Route(src, dst)
			if err != nil {
				return nil, err
			}
			sc.Flows = append(sc.Flows, strategy.Flow{ID: id, SrcRank: src, DstRank: dst, Path: path})
			id++
		}
	}
	return &strategy.Strategy{
		Primitive:      strategy.AlltoAll,
		TotalBytes:     bytes,
		SubCollectives: []strategy.SubCollective{sc},
	}, nil
}

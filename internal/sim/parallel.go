package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel runs several Engines — domains — under conservative-lookahead
// synchronization, the classic windowed (YAWNS-style) parallel
// discrete-event scheme:
//
//   - Each domain owns a local clock, heap and sequence counter (it is a
//     plain *Engine), so everything scheduled inside a domain fires in the
//     engine's usual deterministic (time, seq) order.
//   - Domains interact only through Post, which delivers a callback into
//     another domain at least `lookahead` of virtual time in the future.
//     Lookahead is the minimum cross-domain link latency: a message sent
//     now cannot be observed remotely sooner than that, which is what
//     bounds the clock skew between domains.
//   - Run repeatedly computes the global minimum next-event time Tmin and
//     lets every domain advance in parallel through the window
//     [Tmin, Tmin+lookahead] (inclusive). Any Post issued inside the
//     window carries a timestamp >= Tmin+lookahead, i.e. outside it, so
//     no domain can receive an event in its own past: causality holds
//     without rollback.
//   - At the window barrier, posted events are merged into their target
//     domains in a deterministic order — (time, then source domain, then
//     per-source sequence) — so the execution is bit-identical for any
//     worker count, including 1.
//
// With a single domain there are no windows at all: Run simply drains the
// engine, which makes the single-domain path byte-identical to Engine.Run.
//
// User callbacks must respect the partitioning: state owned by one domain
// may be touched only from that domain's events (Post a closure to mutate
// another domain's state). The barrier establishes the happens-before edge
// for the closure's captured values.
type Parallel struct {
	lookahead time.Duration
	domains   []*Engine
	names     []string
	inbox     [][]post   // per destination, pending merge
	outbox    [][][]post // [src][dst]: filled during a window by src only
	stats     []DomainStats
	windows   uint64
	runWall   time.Duration
	ran       bool
}

// post is one cross-domain boundary event awaiting its merge.
type post struct {
	at Time
	fn func()
}

// DomainStats is the per-domain accounting the coordinator keeps at window
// barriers (single-threaded points, so collection is race-free).
type DomainStats struct {
	// Name labels the domain (metrics, debugging).
	Name string
	// Fired counts events executed in this domain.
	Fired uint64
	// Stalls counts windows in which the domain had no event inside the
	// lookahead horizon and could only wait at the barrier.
	Stalls uint64
	// MaxQueueDepth is the largest pending-event count observed at any
	// window barrier.
	MaxQueueDepth int
	// BusyWall is the accumulated real time the domain spent executing
	// events (the basis of the speedup estimate).
	BusyWall time.Duration
}

// NewParallel returns a coordinator with the given lookahead. Lookahead
// must be positive once a second domain exists; a single-domain Parallel
// may use zero.
func NewParallel(lookahead time.Duration) *Parallel {
	if lookahead < 0 {
		panic("sim: negative lookahead")
	}
	return &Parallel{lookahead: lookahead}
}

// Lookahead returns the conservative window width.
func (p *Parallel) Lookahead() time.Duration { return p.lookahead }

// NewDomain adds a domain and returns its index and engine. The engine's
// random stream derives from seed. Domains must all be added before Run.
func (p *Parallel) NewDomain(name string, seed int64) (int, *Engine) {
	if p.ran {
		panic("sim: NewDomain after Run")
	}
	id := len(p.domains)
	eng := NewEngine(seed)
	p.domains = append(p.domains, eng)
	if name == "" {
		name = fmt.Sprintf("domain%d", id)
	}
	p.names = append(p.names, name)
	return id, eng
}

// Domain returns the engine of domain i.
func (p *Parallel) Domain(i int) *Engine { return p.domains[i] }

// NumDomains returns the number of domains.
func (p *Parallel) NumDomains() int { return len(p.domains) }

// Post schedules fn to run in domain dst, delay after domain src's current
// time. This is the only legal cross-domain channel. The delay must be at
// least the lookahead — that is the conservative contract that makes the
// windowed schedule causal — and posting with a shorter delay panics.
// Posts merge into the destination at the next window barrier, ordered by
// (time, source domain, per-source issue order).
func (p *Parallel) Post(src, dst int, delay time.Duration, fn func()) {
	if delay < p.lookahead {
		panic(fmt.Sprintf("sim: cross-domain post with delay %v below lookahead %v", delay, p.lookahead))
	}
	p.ensureBoxes()
	at := p.domains[src].Now() + delay
	p.outbox[src][dst] = append(p.outbox[src][dst], post{at: at, fn: fn})
}

// ensureBoxes allocates the inbox/outbox matrices. Called from Post and Run
// (never from worker goroutines: the first Post of a window happens inside
// an event, by which point Run has long since allocated).
func (p *Parallel) ensureBoxes() {
	if p.inbox != nil {
		return
	}
	n := len(p.domains)
	p.inbox = make([][]post, n)
	p.outbox = make([][][]post, n)
	for i := range p.outbox {
		p.outbox[i] = make([][]post, n)
	}
}

// Run executes all domains to completion on the given number of workers
// (values below 1 are treated as 1). It is deterministic for every worker
// count: the firing schedule depends only on the domains' initial events
// and the merge order, never on thread interleaving.
func (p *Parallel) Run(workers int) {
	start := time.Now()
	defer func() { p.runWall += time.Since(start) }()
	if workers < 1 {
		workers = 1
	}
	p.ran = true
	n := len(p.domains)
	if p.stats == nil {
		p.stats = make([]DomainStats, n)
		for i := range p.stats {
			p.stats[i].Name = p.names[i]
		}
	}
	if n == 1 {
		// Degenerate partition: no boundaries, no windows. Draining the
		// engine directly keeps this path byte-identical to Engine.Run.
		d := p.domains[0]
		before := d.Fired()
		d.Run()
		p.stats[0].Fired += d.Fired() - before
		p.stats[0].BusyWall += time.Since(start)
		return
	}
	if p.lookahead <= 0 {
		panic("sim: multi-domain Parallel requires positive lookahead")
	}
	p.ensureBoxes()
	if workers > n {
		workers = n
	}
	for {
		// Merge pending boundary events (already in deterministic order:
		// drainOutboxes concatenates by source domain, then sorts stably
		// by time). Scheduling through At assigns destination-local seqs
		// in exactly that order.
		for dst, in := range p.inbox {
			d := p.domains[dst]
			for _, ev := range in {
				d.At(ev.at, ev.fn)
			}
			p.inbox[dst] = in[:0]
		}
		// Global minimum next-event time over all domains.
		tmin, any := Time(0), false
		for _, d := range p.domains {
			if t, ok := d.NextEventTime(); ok && (!any || t < tmin) {
				tmin, any = t, true
			}
		}
		if !any {
			return
		}
		limit := tmin + p.lookahead
		p.windows++
		if workers == 1 {
			for i, d := range p.domains {
				t0 := time.Now()
				p.windowStep(i, d, limit)
				p.stats[i].BusyWall += time.Since(t0)
			}
		} else {
			var next int64 = -1
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for {
						i := int(atomic.AddInt64(&next, 1))
						if i >= n {
							return
						}
						t0 := time.Now()
						p.windowStep(i, p.domains[i], limit)
						p.stats[i].BusyWall += time.Since(t0)
					}
				}()
			}
			wg.Wait()
		}
		p.drainOutboxes()
	}
}

// windowStep advances one domain through the window ending at limit and
// updates its stats. It runs on the domain's worker goroutine; stats[i] is
// owned by that worker for the duration of the window.
func (p *Parallel) windowStep(i int, d *Engine, limit Time) {
	fired := d.RunWindow(limit)
	s := &p.stats[i]
	s.Fired += uint64(fired)
	if fired == 0 {
		s.Stalls++
	}
	if q := d.Pending(); q > s.MaxQueueDepth {
		s.MaxQueueDepth = q
	}
}

// drainOutboxes moves every posted boundary event into its destination's
// inbox in (time, source domain, issue order) order: sources append in
// index order and the sort is stable on time alone, so equal-time posts
// keep source-then-issue order.
func (p *Parallel) drainOutboxes() {
	for src := range p.outbox {
		for dst, out := range p.outbox[src] {
			if len(out) == 0 {
				continue
			}
			p.inbox[dst] = append(p.inbox[dst], out...)
			p.outbox[src][dst] = out[:0]
		}
	}
	for _, in := range p.inbox {
		if len(in) > 1 {
			stableSortPosts(in)
		}
	}
}

// stableSortPosts sorts by timestamp only, stably (insertion sort: merge
// batches are small — a handful of boundary crossings per window).
func stableSortPosts(ps []post) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].at < ps[j-1].at; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Now returns the maximum domain clock: the virtual time of the last event
// executed anywhere, matching what a single global engine's clock would
// read after the same workload.
func (p *Parallel) Now() Time {
	var t Time
	for _, d := range p.domains {
		if n := d.Now(); n > t {
			t = n
		}
	}
	return t
}

// Fired returns the total events executed across all domains.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, d := range p.domains {
		n += d.Fired()
	}
	return n
}

// Windows returns how many lookahead windows Run has executed.
func (p *Parallel) Windows() uint64 { return p.windows }

// Stats returns a copy of the per-domain accounting.
func (p *Parallel) Stats() []DomainStats {
	out := make([]DomainStats, len(p.stats))
	copy(out, p.stats)
	return out
}

// SpeedupEstimate reports the parallelism the run extracted: the summed
// per-domain busy wall time divided by the coordinator's total wall time.
// 1.0 means the run was effectively serial (one domain, or windows too
// small to overlap); values approaching the worker count mean near-linear
// scaling. It is a wall-clock measurement and therefore not deterministic.
func (p *Parallel) SpeedupEstimate() float64 {
	if p.runWall <= 0 {
		return 0
	}
	var busy time.Duration
	for i := range p.stats {
		busy += p.stats[i].BusyWall
	}
	return float64(busy) / float64(p.runWall)
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of events.
// All AdapCC substrates (network fabric, simulated GPUs, training loops)
// schedule work on one shared Engine so that an entire distributed run is
// reproducible from a single seed: identical seeds produce identical
// timelines, byte-for-byte identical results and identical measurements.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as an offset from simulation start.
// It shares the representation of time.Duration so arithmetic with durations
// is natural (t + 5*time.Millisecond).
type Time = time.Duration

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	call   Caller
	idx    int // heap index, -1 when not queued
	dead   bool
	pooled bool // recyclable: the holder drops the handle at fire/cancel
}

// Caller is a pre-bound callback: the receiver itself carries the state a
// closure would capture, so scheduling one on the hot path allocates
// nothing. Interface dispatch on an existing pointer does not box.
type Caller interface{ Call() }

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct with NewEngine.
//
// Engine is not safe for concurrent use: the simulation is single-threaded by
// design, which is what makes it deterministic.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	free   []*Event // recycled pooled events
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream. All randomness in a
// simulation must come from this stream (or a stream forked from it with
// Fork) to preserve reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fork returns a new independent random stream seeded from the engine's
// stream. Use one fork per logical component so that adding events to one
// component does not perturb another component's randomness.
func (e *Engine) Fork() *rand.Rand { return rand.New(rand.NewSource(e.rng.Int63())) }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality, which is a programming error.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, idx: -1}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Do schedules fn at absolute virtual time t without returning a handle.
// The backing event is recycled after it fires, so fire-and-forget
// scheduling (the per-chunk hot path: kernel completions, chunk launches,
// arrival callbacks) allocates nothing in steady state. Use At when the
// caller may need to Cancel.
func (e *Engine) Do(t Time, fn func()) {
	e.schedule(t, fn, nil)
}

// DoAfter schedules fn to run d after now, handle-free like Do. Negative d
// is clamped to zero.
func (e *Engine) DoAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn, nil)
}

// DoCall schedules c.Call() at absolute virtual time t, pooled and
// handle-free like Do, but without even the closure: the Caller's receiver
// carries the callback state.
func (e *Engine) DoCall(t Time, c Caller) {
	e.schedule(t, nil, c)
}

// DoCallAfter schedules c.Call() d after now, handle-free like DoCall.
// Negative d is clamped to zero.
func (e *Engine) DoCallAfter(d time.Duration, c Caller) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, c)
}

// CallAfter schedules c.Call() d after now on a pooled event and returns
// the handle so the caller may Cancel it. The handle is strictly
// single-use: the event is recycled both when it fires and when it is
// cancelled, so the holder must drop the handle at exactly those two
// points (the fabric's per-link completion event follows this discipline).
// Prefer After when in doubt — its events are never recycled.
func (e *Engine) CallAfter(d time.Duration, c Caller) *Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, nil, c)
}

// schedule queues a pooled event carrying either fn or c.
func (e *Engine) schedule(t Time, fn func(), c Caller) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	*ev = Event{at: t, seq: e.seq, fn: fn, call: c, idx: -1, pooled: true}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Cancel prevents ev from firing. Cancelling a nil, already-fired or
// already-cancelled event is a no-op, so callers need no bookkeeping.
// Cancelled pooled events are recycled immediately, so a handle obtained
// from CallAfter must not be touched after cancelling it.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.idx >= 0 {
		heap.Remove(&e.events, ev.idx)
	}
	if ev.pooled {
		ev.fn, ev.call = nil, nil
		e.free = append(e.free, ev)
	}
}

// Step executes the next event, advancing the clock to its timestamp. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev, ok := heap.Pop(&e.events).(*Event)
		if !ok {
			panic("sim: event heap holds non-event")
		}
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.dead = true
		e.fired++
		fn, call := ev.fn, ev.call
		if ev.pooled {
			// Any handle holder drops the handle at fire time, so the
			// event can be reused as soon as it is off the heap — even
			// by the callback itself.
			ev.fn, ev.call = nil, nil
			e.free = append(e.free, ev)
		}
		if call != nil {
			call.Call()
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (even if the queue still holds later events).
//
// Clock-advance semantics, precisely:
//
//   - The deadline is inclusive: an event scheduled at exactly deadline
//     fires, and so does any event it schedules at deadline — the boundary
//     is drained until no event at or before deadline remains.
//   - Same-timestamp events at the boundary fire in FIFO scheduling order
//     (the heap's (time, seq) order), exactly as they would mid-run.
//   - After draining, the clock is at deadline even if no event fired
//     there, so a subsequent After(d) measures from the deadline.
//   - A deadline in the past is a no-op: the clock never moves backwards.
func (e *Engine) RunUntil(deadline Time) {
	e.RunWindow(deadline)
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWindow executes events with timestamps <= limit (inclusive, with the
// same boundary-drain and FIFO guarantees as RunUntil) and returns how many
// fired. Unlike RunUntil it leaves the clock at the last fired event rather
// than forcing it to limit: the parallel coordinator uses it to advance a
// domain through one conservative-lookahead window without disturbing the
// domain's notion of "now" for windows in which it had nothing to do.
func (e *Engine) RunWindow(limit Time) int {
	n := 0
	for {
		ev := e.peek()
		if ev == nil || ev.at > limit {
			return n
		}
		e.Step()
		n++
	}
}

// NextEventTime returns the timestamp of the earliest pending event, if any.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunFor executes events within the next d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.dead {
			return ev
		}
		heap.Pop(&e.events)
	}
	return nil
}

// eventHeap orders events by (time, insertion sequence); the sequence
// tie-break makes same-timestamp execution order deterministic (FIFO).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic("sim: pushing non-event")
	}
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

package sim

import "time"

// Countdown invokes a callback once a fixed number of Done calls have been
// made. It is the event-driven analogue of sync.WaitGroup for simulated
// components that need to rendezvous (e.g. "all chunks of this partition
// arrived, launch the aggregation kernel").
type Countdown struct {
	remaining int
	fn        func()
	fired     bool
}

// NewCountdown returns a countdown that fires fn after n Done calls. With
// n <= 0 the callback fires immediately.
func NewCountdown(n int, fn func()) *Countdown {
	c := &Countdown{remaining: n, fn: fn}
	if n <= 0 {
		c.fire()
	}
	return c
}

// Done records one completion; the callback fires exactly once, when the
// count reaches zero. Extra Done calls after firing panic, because they
// indicate the simulation produced more completions than were expected.
func (c *Countdown) Done() {
	if c.fired {
		panic("sim: Countdown.Done after fire")
	}
	c.remaining--
	if c.remaining <= 0 {
		c.fire()
	}
}

// Remaining reports how many Done calls are still expected.
func (c *Countdown) Remaining() int { return c.remaining }

func (c *Countdown) fire() {
	c.fired = true
	if c.fn != nil {
		c.fn()
	}
}

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// The coordinator uses one for its 5 ms relay decision cycle.
type Ticker struct {
	eng     *Engine
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
}

// NewTicker starts a ticker on eng with the given period. The first tick
// fires one period from now. period must be positive.
func NewTicker(eng *Engine, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.schedule()
	return t
}

// Stop cancels future ticks. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.ev)
}

func (t *Ticker) schedule() {
	t.ev = t.eng.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}
